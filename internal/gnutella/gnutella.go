// Package gnutella models the Gnutella-style flooding search the thesis
// rejects for mobile devices (§3.2): "one of the biggest performance
// problems is the huge network traffic generated due to the high number of
// query messages". It provides a TTL-bounded flood simulator over an
// abstract topology graph plus the equivalent message accounting for
// PeerHood's neighbour-exchange discovery, so experiment G1 can compare
// per-query traffic between the two designs on identical topologies.
package gnutella

import (
	"fmt"

	"peerhood/internal/rng"
)

// Graph is an undirected topology of n nodes.
type Graph struct {
	n   int
	adj [][]int
}

// NewGraph returns an edgeless graph with n nodes. It panics if n <= 0.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic("gnutella: graph needs at least one node")
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// AddEdge connects a and b (idempotent; self-loops ignored).
func (g *Graph) AddEdge(a, b int) {
	if a == b || a < 0 || b < 0 || a >= g.n || b >= g.n {
		return
	}
	for _, v := range g.adj[a] {
		if v == b {
			return
		}
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

// Neighbors returns a copy of a node's adjacency list.
func (g *Graph) Neighbors(v int) []int {
	return append([]int(nil), g.adj[v]...)
}

// Degree returns a node's degree.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// FloodResult summarises one flooded query.
type FloodResult struct {
	// Messages is the number of query transmissions (every edge traversal
	// counts — duplicate receptions are Gnutella's overhead).
	Messages int
	// Reached is how many distinct nodes saw the query.
	Reached int
	// Found reports whether a holder was reached.
	Found bool
	// Hops is the hop count to the nearest holder reached (0 if the
	// source holds it; -1 if not found).
	Hops int
}

// Flood performs one Gnutella query from src with the given TTL: the
// source sends the query to every neighbour; each node receiving the query
// for the first time forwards it to all its neighbours except the sender
// while TTL remains. Every transmission is counted, including duplicates
// delivered to already-visited nodes — that is the §3.2 traffic problem.
func Flood(g *Graph, src, ttl int, holders map[int]bool) FloodResult {
	res := FloodResult{Hops: -1}
	if src < 0 || src >= g.n {
		return res
	}
	if holders[src] {
		res.Found = true
		res.Hops = 0
	}
	visited := make([]bool, g.n)
	visited[src] = true
	res.Reached = 1

	type hop struct{ from, node int }
	frontier := []hop{}
	for _, nb := range g.adj[src] {
		frontier = append(frontier, hop{src, nb})
	}

	for depth := 1; depth <= ttl && len(frontier) > 0; depth++ {
		var next []hop
		for _, h := range frontier {
			res.Messages++ // transmission happens whether or not duplicate
			if visited[h.node] {
				continue
			}
			visited[h.node] = true
			res.Reached++
			if holders[h.node] && !res.Found {
				res.Found = true
				res.Hops = depth
			}
			for _, nb := range g.adj[h.node] {
				if nb != h.from {
					next = append(next, hop{h.node, nb})
				}
			}
		}
		frontier = next
	}
	return res
}

// MessagesPerFetch is the wire cost of one PeerHood information fetch: a
// device-info request/response plus a neighbourhood request/response over
// one short connection (the unified form of fig 3.7).
const MessagesPerFetch = 4

// PeerHoodRoundMessages counts the transmissions of one full dynamic-
// discovery round on g: every node broadcasts one inquiry, hears one
// response per neighbour, and fetches information from each neighbour.
// Unlike Gnutella the cost is independent of queries: once the storage has
// converged, a search is a local table lookup with zero transmissions
// (§3.3: "the inquiry petition is not repeated like Gnutella network, but
// only sent to the direct neighbours").
func PeerHoodRoundMessages(g *Graph) int {
	total := 0
	for v := 0; v < g.n; v++ {
		deg := len(g.adj[v])
		total += 1 + deg + deg*MessagesPerFetch
	}
	return total
}

// Diameter returns the graph diameter (longest shortest path between
// reachable pairs); PeerHood needs that many discovery rounds for total
// awareness (fig 3.10).
func Diameter(g *Graph) int {
	maxDist := 0
	for src := 0; src < g.n; src++ {
		dist := g.bfs(src)
		for _, d := range dist {
			if d > maxDist {
				maxDist = d
			}
		}
	}
	return maxDist
}

// Reachable returns how many nodes src can reach (including itself).
func (g *Graph) Reachable(src int) int {
	count := 0
	for _, d := range g.bfs(src) {
		if d >= 0 {
			count++
		}
	}
	return count
}

func (g *Graph) bfs(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[v] {
			if dist[nb] < 0 {
				dist[nb] = dist[v] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// RandomConnected generates a connected random graph: a ring backbone plus
// random chords up to roughly the requested average degree.
func RandomConnected(n int, avgDegree float64, src *rng.Source) *Graph {
	if n <= 0 {
		panic("gnutella: need at least one node")
	}
	g := NewGraph(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	if n > 2 {
		g.AddEdge(n-1, 0)
	}
	wantEdges := int(avgDegree * float64(n) / 2)
	if max := n * (n - 1) / 2; wantEdges > max {
		wantEdges = max
	}
	for g.Edges() < wantEdges {
		a, b := src.Intn(n), src.Intn(n)
		if a != b {
			g.AddEdge(a, b)
		}
	}
	return g
}

// String implements fmt.Stringer.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, edges=%d)", g.n, g.Edges())
}
