package gnutella

import (
	"testing"
	"testing/quick"

	"peerhood/internal/rng"
)

func line(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestAddEdgeIdempotentAndBounds(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 0)  // self loop ignored
	g.AddEdge(0, 99) // out of range ignored
	if g.Edges() != 1 {
		t.Fatalf("edges = %d, want 1", g.Edges())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(2))
	}
}

func TestFloodFindsAlongLine(t *testing.T) {
	g := line(6)
	res := Flood(g, 0, 10, map[int]bool{5: true})
	if !res.Found || res.Hops != 5 {
		t.Fatalf("res = %+v, want found at 5 hops", res)
	}
	if res.Reached != 6 {
		t.Fatalf("reached = %d, want 6", res.Reached)
	}
	// Line flood: one message per edge per direction traversed = 5.
	if res.Messages != 5 {
		t.Fatalf("messages = %d, want 5", res.Messages)
	}
}

func TestFloodRespectsTTL(t *testing.T) {
	g := line(10)
	res := Flood(g, 0, 3, map[int]bool{9: true})
	if res.Found {
		t.Fatal("found a holder beyond TTL")
	}
	if res.Reached != 4 { // src + 3 hops
		t.Fatalf("reached = %d, want 4", res.Reached)
	}
}

func TestFloodSourceHolds(t *testing.T) {
	g := line(3)
	res := Flood(g, 1, 5, map[int]bool{1: true})
	if !res.Found || res.Hops != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestFloodCountsDuplicates(t *testing.T) {
	// Triangle: flooding from 0 causes nodes 1 and 2 to cross-send — the
	// duplicate traffic that makes Gnutella expensive.
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	res := Flood(g, 0, 5, nil)
	// Depth 1: 0->1, 0->2 (2 msgs). Depth 2: 1->2, 2->1 (2 duplicate msgs).
	if res.Messages != 4 {
		t.Fatalf("messages = %d, want 4 (duplicates counted)", res.Messages)
	}
	if res.Reached != 3 {
		t.Fatalf("reached = %d", res.Reached)
	}
}

func TestFloodMessagesGrowWithDegree(t *testing.T) {
	src := rng.New(1)
	sparse := RandomConnected(60, 3, src)
	dense := RandomConnected(60, 10, rng.New(2))
	rs := Flood(sparse, 0, 7, nil)
	rd := Flood(dense, 0, 7, nil)
	if rd.Messages <= rs.Messages {
		t.Fatalf("dense flood %d msgs <= sparse %d", rd.Messages, rs.Messages)
	}
}

func TestPeerHoodRoundMessages(t *testing.T) {
	g := line(3) // degrees 1,2,1
	// Per node: 1 inquiry + deg responses + deg*4 fetch messages.
	want := (1 + 1 + 4) + (1 + 2 + 8) + (1 + 1 + 4)
	if got := PeerHoodRoundMessages(g); got != want {
		t.Fatalf("round messages = %d, want %d", got, want)
	}
}

func TestDiameterAndReachable(t *testing.T) {
	g := line(5)
	if d := Diameter(g); d != 4 {
		t.Fatalf("diameter = %d, want 4", d)
	}
	if r := g.Reachable(0); r != 5 {
		t.Fatalf("reachable = %d, want 5", r)
	}
	// Disconnected node.
	g2 := NewGraph(4)
	g2.AddEdge(0, 1)
	if r := g2.Reachable(0); r != 2 {
		t.Fatalf("reachable = %d, want 2", r)
	}
}

func TestRandomConnectedIsConnected(t *testing.T) {
	if err := quick.Check(func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		g := RandomConnected(n, 4, rng.New(seed))
		return g.Reachable(0) == n
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a := RandomConnected(40, 5, rng.New(7))
	b := RandomConnected(40, 5, rng.New(7))
	if a.Edges() != b.Edges() {
		t.Fatalf("same seed, different graphs: %d vs %d edges", a.Edges(), b.Edges())
	}
}

func TestFloodInvalidSource(t *testing.T) {
	g := line(3)
	res := Flood(g, -1, 5, nil)
	if res.Found || res.Reached != 0 {
		t.Fatalf("res = %+v", res)
	}
}
