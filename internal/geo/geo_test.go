package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-2, 0), Pt(2, 0), 4},
		{Pt(0, -3), Pt(0, 3), 6},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEqual(got, c.want) {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	if err := quick.Check(func(ax, ay, bx, by float64) bool {
		ax, ay = clampf(ax), clampf(ay)
		bx, by = clampf(bx), clampf(by)
		a, b := Pt(ax, ay), Pt(bx, by)
		return almostEqual(a.Dist(b), b.Dist(a))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	if err := quick.Check(func(ax, ay, bx, by, cx, cy float64) bool {
		// Constrain to a sane range to avoid float overflow artefacts.
		ax, ay = clampf(ax), clampf(ay)
		bx, by = clampf(bx), clampf(by)
		cx, cy = clampf(cx), clampf(cy)
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func clampf(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func anyNaNInf(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0.5); !almostEqual(got.X, 5) || !almostEqual(got.Y, 10) {
		t.Fatalf("Lerp 0.5 = %v", got)
	}
	if got := p.Lerp(q, 0); got != p {
		t.Fatalf("Lerp 0 = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Fatalf("Lerp 1 = %v, want %v", got, q)
	}
	if got := p.Lerp(q, -3); got != p {
		t.Fatalf("Lerp clamps below: got %v", got)
	}
	if got := p.Lerp(q, 7); got != q {
		t.Fatalf("Lerp clamps above: got %v", got)
	}
}

func TestVectorOps(t *testing.T) {
	v := Vector{3, 4}
	if !almostEqual(v.Len(), 5) {
		t.Fatalf("Len = %v", v.Len())
	}
	u := v.Unit()
	if !almostEqual(u.Len(), 1) {
		t.Fatalf("Unit length = %v", u.Len())
	}
	if z := (Vector{}).Unit(); z.DX != 0 || z.DY != 0 {
		t.Fatalf("zero Unit = %v", z)
	}
	s := v.Scale(2)
	if !almostEqual(s.Len(), 10) {
		t.Fatalf("Scale(2) len = %v", s.Len())
	}
}

func TestAddSub(t *testing.T) {
	p := Pt(1, 2)
	q := p.Add(Vector{3, 4})
	if q != Pt(4, 6) {
		t.Fatalf("Add = %v", q)
	}
	if d := q.Sub(p); d != (Vector{3, 4}) {
		t.Fatalf("Sub = %v", d)
	}
}

func TestRectContainsClamp(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(10, 5)}
	if !r.Contains(Pt(5, 2)) {
		t.Fatal("interior point not contained")
	}
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 5)) {
		t.Fatal("boundary points not contained")
	}
	if r.Contains(Pt(11, 2)) || r.Contains(Pt(5, -1)) {
		t.Fatal("exterior point contained")
	}
	if got := r.Clamp(Pt(20, -3)); got != Pt(10, 0) {
		t.Fatalf("Clamp = %v, want (10,0)", got)
	}
	if got := r.Clamp(Pt(4, 4)); got != Pt(4, 4) {
		t.Fatalf("Clamp moved interior point: %v", got)
	}
}

func TestRectDims(t *testing.T) {
	r := Rect{Min: Pt(1, 2), Max: Pt(5, 10)}
	if r.Width() != 4 || r.Height() != 8 {
		t.Fatalf("dims = %v x %v", r.Width(), r.Height())
	}
}

func TestClampedPointAlwaysContained(t *testing.T) {
	r := Rect{Min: Pt(-5, -5), Max: Pt(5, 5)}
	if err := quick.Check(func(x, y float64) bool {
		if anyNaNInf(x, y) {
			return true
		}
		return r.Contains(r.Clamp(Pt(x, y)))
	}, nil); err != nil {
		t.Fatal(err)
	}
}
