package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCellOf(t *testing.T) {
	cases := []struct {
		p    Point
		size float64
		want Cell
	}{
		{Pt(0, 0), 10, Cell{0, 0}},
		{Pt(9.99, 9.99), 10, Cell{0, 0}},
		{Pt(10, 10), 10, Cell{1, 1}},
		{Pt(-0.1, -0.1), 10, Cell{-1, -1}},
		{Pt(-10, -10), 10, Cell{-1, -1}},
		{Pt(-10.1, 0), 10, Cell{-2, 0}},
		{Pt(25, -35), 10, Cell{2, -4}},
	}
	for _, c := range cases {
		if got := CellOf(c.p, c.size); got != c.want {
			t.Errorf("CellOf(%v, %v) = %v, want %v", c.p, c.size, got, c.want)
		}
	}
}

func TestChebyshevDist(t *testing.T) {
	a := Cell{0, 0}
	cases := []struct {
		b    Cell
		want int
	}{
		{Cell{0, 0}, 0},
		{Cell{1, 0}, 1},
		{Cell{1, 1}, 1},
		{Cell{-1, 1}, 1},
		{Cell{2, 1}, 2},
		{Cell{-3, 2}, 3},
	}
	for _, c := range cases {
		if got := a.ChebyshevDist(c.b); got != c.want {
			t.Errorf("ChebyshevDist(%v, %v) = %d, want %d", a, c.b, got, c.want)
		}
		if got := c.b.ChebyshevDist(a); got != c.want {
			t.Errorf("ChebyshevDist(%v, %v) = %d, want %d (asymmetric)", c.b, a, got, c.want)
		}
	}
}

// TestRingsForCoversRadius is the property the spatial index rests on: any
// point within radius of p lies in a cell within RingsFor(radius, size)
// rings of p's cell.
func TestRingsForCoversRadius(t *testing.T) {
	if err := quick.Check(func(px, py, qx, qy, size, radius float64) bool {
		px, py, qx, qy = clampf(px), clampf(py), clampf(qx), clampf(qy)
		size = 1 + math.Abs(clampf(size))
		radius = math.Abs(clampf(radius))
		p, q := Pt(px, py), Pt(qx, qy)
		if p.Dist(q) > radius {
			return true // premise not met
		}
		rings := RingsFor(radius, size)
		return CellOf(p, size).ChebyshevDist(CellOf(q, size)) <= rings
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRingsFor(t *testing.T) {
	cases := []struct {
		radius, size float64
		want         int
	}{
		{0, 10, 0},
		{5, 10, 1},
		{10, 10, 1},
		{10.1, 10, 2},
		{30, 10, 3},
	}
	for _, c := range cases {
		if got := RingsFor(c.radius, c.size); got != c.want {
			t.Errorf("RingsFor(%v, %v) = %d, want %d", c.radius, c.size, got, c.want)
		}
	}
}

func TestNeighborhood(t *testing.T) {
	var got []Cell
	Cell{2, 3}.Neighborhood(1, func(c Cell) { got = append(got, c) })
	if len(got) != 9 {
		t.Fatalf("3x3 neighbourhood visited %d cells", len(got))
	}
	if got[0] != (Cell{1, 2}) || got[8] != (Cell{3, 4}) {
		t.Fatalf("row-major order violated: first %v, last %v", got[0], got[8])
	}
	seen := make(map[Cell]bool)
	for _, c := range got {
		if seen[c] {
			t.Fatalf("cell %v visited twice", c)
		}
		seen[c] = true
		if c.ChebyshevDist(Cell{2, 3}) > 1 {
			t.Fatalf("cell %v outside 1 ring of centre", c)
		}
	}

	var zero []Cell
	Cell{0, 0}.Neighborhood(0, func(c Cell) { zero = append(zero, c) })
	if len(zero) != 1 || zero[0] != (Cell{0, 0}) {
		t.Fatalf("0-ring neighbourhood = %v, want just the centre", zero)
	}
}
