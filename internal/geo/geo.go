// Package geo provides the minimal 2-D geometry used by the wireless world
// simulator: points in metres, distances, and linear interpolation along
// movement segments.
package geo

import (
	"fmt"
	"math"
)

// Point is a position on the 2-D plane, in metres.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// Add returns p translated by v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.DX, p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q, in metres.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Lerp returns the point a fraction t of the way from p to q.
// t is clamped to [0, 1].
func (p Point) Lerp(q Point, t float64) Point {
	if t <= 0 {
		return p
	}
	if t >= 1 {
		return q
	}
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Vector is a displacement on the plane, in metres.
type Vector struct {
	DX, DY float64
}

// Len returns the vector's magnitude.
func (v Vector) Len() float64 { return math.Hypot(v.DX, v.DY) }

// Scale returns v scaled by k.
func (v Vector) Scale(k float64) Vector { return Vector{v.DX * k, v.DY * k} }

// Unit returns the unit vector in v's direction, or the zero vector if v is
// zero.
func (v Vector) Unit() Vector {
	l := v.Len()
	if l == 0 {
		return Vector{}
	}
	return Vector{v.DX / l, v.DY / l}
}

// Rect is an axis-aligned rectangle, used to bound random-waypoint movement.
type Rect struct {
	Min, Max Point
}

// Contains reports whether p lies within r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// Width returns the rectangle's horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the rectangle's vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }
