package geo

import (
	"fmt"
	"math"
)

// Cell is an integer coordinate on a uniform grid partition of the plane.
// The simulator buckets radios by cell so that range queries only examine a
// small neighbourhood of cells instead of every radio in the world.
type Cell struct {
	CX, CY int
}

// String implements fmt.Stringer.
func (c Cell) String() string { return fmt.Sprintf("[%d,%d]", c.CX, c.CY) }

// CellOf returns the cell containing p on a grid of the given cell size.
// It panics if size <= 0.
func CellOf(p Point, size float64) Cell {
	if size <= 0 {
		panic("geo: CellOf needs positive cell size")
	}
	return Cell{
		CX: int(math.Floor(p.X / size)),
		CY: int(math.Floor(p.Y / size)),
	}
}

// ChebyshevDist returns the Chebyshev (ring) distance between two cells:
// the number of concentric cell rings separating them. Adjacent and
// diagonal neighbours are at distance 1; a cell is at distance 0 from
// itself.
func (c Cell) ChebyshevDist(o Cell) int {
	dx := absI(c.CX - o.CX)
	dy := absI(c.CY - o.CY)
	if dx > dy {
		return dx
	}
	return dy
}

// RingsFor returns how many rings of cells around a centre cell must be
// examined to cover every point within radius of a point in the centre
// cell: any point at distance <= radius lies in a cell at Chebyshev
// distance <= RingsFor(radius, size). RingsFor(r, s) with r <= s is 1,
// the familiar 3x3 neighbourhood.
func RingsFor(radius, size float64) int {
	if size <= 0 {
		panic("geo: RingsFor needs positive cell size")
	}
	if radius <= 0 {
		return 0
	}
	return int(math.Ceil(radius / size))
}

// Neighborhood calls fn for every cell within rings of c (the
// (2*rings+1)^2 block centred on c), in deterministic row-major order.
func (c Cell) Neighborhood(rings int, fn func(Cell)) {
	for dy := -rings; dy <= rings; dy++ {
		for dx := -rings; dx <= rings; dx++ {
			fn(Cell{CX: c.CX + dx, CY: c.CY + dy})
		}
	}
}

func absI(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
