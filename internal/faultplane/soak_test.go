package faultplane_test

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"peerhood"
	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/faultplane"
	"peerhood/internal/simnet"
	"peerhood/internal/storage"
)

// TestChaosSoak is the race-enabled chaos soak (run under -race in CI): a
// 30-node world on a manual clock lives through a seeded fault script —
// a world split into two isolated segments, three daemons crashed
// mid-partition and restarted with fresh storage epochs, then a heal —
// while synchronous discovery rounds keep running throughout. Invariants:
//
//   - no panic and no recorded script error;
//   - after the heal phase every node's storage re-converges on the full
//     census, and the digests are stable across further rounds;
//   - the whole run is a pure function of the seed: the event-bus traces
//     of two observer nodes and the fault-plane trace are identical
//     across two consecutive same-seed runs (determinism regression);
//   - no goroutine leaks after World.Close.
func TestChaosSoak(t *testing.T) {
	const (
		nodes     = 30
		cols      = 6
		spacing   = 1.5 // keeps the whole grid inside one 10 m radio cell
		seed      = 4242
		totalTick = 45
	)
	crashTargets := []string{"n07", "n16", "n28"}
	observers := []string{"n00", "n21"}

	baseline := runtime.NumGoroutine()

	run := func() (busTrace, faultTrace []string) {
		clk := clock.NewManual()
		w := peerhood.NewWorld(peerhood.WorldConfig{Seed: seed, Clock: clk, Instant: true})
		defer w.Close()
		for _, tech := range device.Techs() {
			p := simnet.DefaultParams(tech).Instant()
			p.Bandwidth = 0 // a bandwidth sleep would deadlock the manual clock
			w.Sim().SetParams(tech, p)
		}

		var all []*peerhood.Node
		var left, right []string
		for i := 0; i < nodes; i++ {
			name := fmt.Sprintf("n%02d", i)
			n, err := w.NewNode(peerhood.NodeConfig{
				Name:                 name,
				Position:             peerhood.Pt(float64(i%cols)*spacing, float64(i/cols)*spacing),
				DisableBridge:        true,
				ServiceCheckInterval: 4 * time.Second,
			})
			if err != nil {
				t.Fatalf("NewNode(%s): %v", name, err)
			}
			all = append(all, n)
			if i%cols < cols/2 {
				left = append(left, name)
			} else {
				right = append(right, name)
			}
		}

		var subs []*peerhood.EventSubscription
		for _, name := range observers {
			n, ok := findNode(all, name)
			if !ok {
				t.Fatalf("observer %s missing", name)
			}
			sub := n.Events(0)
			defer sub.Close()
			subs = append(subs, sub)
		}

		script := peerhood.FaultScript{Events: []peerhood.FaultEvent{
			{At: 5 * time.Second, Do: faultplane.Partition{Segments: [][]string{left, right}}},
			{At: 10 * time.Second, Do: faultplane.Crash{Node: crashTargets[0]}},
			{At: 10 * time.Second, Do: faultplane.Crash{Node: crashTargets[1]}},
			{At: 12 * time.Second, Do: faultplane.Crash{Node: crashTargets[2]}},
			{At: 20 * time.Second, Do: faultplane.Restart{Node: crashTargets[0]}},
			{At: 20 * time.Second, Do: faultplane.Restart{Node: crashTargets[1]}},
			{At: 22 * time.Second, Do: faultplane.Restart{Node: crashTargets[2]}},
			{At: 30 * time.Second, Do: faultplane.Heal{}},
		}}
		sched := w.Fault().Load(script)

		drain := func() {
			for i, sub := range subs {
				for {
					select {
					case e, ok := <-sub.C():
						if !ok {
							return
						}
						busTrace = append(busTrace, observers[i]+" "+e.String())
					default:
						goto next
					}
				}
			next:
			}
		}

		for tick := 0; tick < totalTick; tick++ {
			clk.Advance(time.Second)
			sched.ApplyDue()
			w.CheckLinks()
			if tick%2 == 0 {
				w.RunDiscoveryRounds(1)
			}
			drain()
		}
		if !sched.Done() {
			t.Fatal("script did not finish")
		}
		if err := sched.Err(); err != nil {
			t.Fatalf("script errors: %v", err)
		}

		// Post-heal convergence: every node knows the full census again,
		// and two further rounds change nothing (digest stability).
		for _, n := range all {
			if got := len(n.Devices()); got != nodes-1 {
				t.Fatalf("%s knows %d devices after heal, want %d", n.Name(), got, nodes-1)
			}
		}
		digests := make(map[string]storage.Digest, len(all))
		for _, n := range all {
			digests[n.Name()] = n.Daemon().Storage().Digest()
		}
		clk.Advance(time.Second)
		w.RunDiscoveryRounds(2)
		drain()
		for _, n := range all {
			before, now := digests[n.Name()], n.Daemon().Storage().Digest()
			if before.Entries != now.Entries || before.Hash != now.Hash {
				t.Fatalf("%s digest unstable after convergence: %+v -> %+v", n.Name(), before, now)
			}
		}

		for i, sub := range subs {
			busTrace = append(busTrace, fmt.Sprintf("%s dropped=%d", observers[i], sub.Dropped()))
		}
		return busTrace, w.Fault().Trace()
	}

	bus1, fault1 := run()
	bus2, fault2 := run()

	if len(fault1) != 8 {
		t.Fatalf("fault trace has %d entries, want 8: %v", len(fault1), fault1)
	}
	if !reflect.DeepEqual(fault1, fault2) {
		t.Fatalf("same-seed fault traces differ:\n%v\n%v", fault1, fault2)
	}
	if len(bus1) == 0 {
		t.Fatal("observer buses saw no events through the whole soak")
	}
	if !reflect.DeepEqual(bus1, bus2) {
		t.Fatalf("same-seed event-bus traces differ (lengths %d vs %d)", len(bus1), len(bus2))
	}

	// Both worlds are closed; every daemon, responder, and engine
	// goroutine must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+2 {
		t.Fatalf("goroutine leak after World.Close: %d before, %d after", baseline, got)
	}
}

func findNode(nodes []*peerhood.Node, name string) (*peerhood.Node, bool) {
	for _, n := range nodes {
		if n.Name() == name {
			return n, true
		}
	}
	return nil, false
}
