package faultplane

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/simnet"
)

// world returns a deterministic instant manual-clock world with Bluetooth
// radios named after their devices at the given positions.
func world(t *testing.T, seed int64, at map[string]geo.Point) (*simnet.World, *clock.Manual, map[string]*simnet.Radio) {
	t.Helper()
	clk := clock.NewManual()
	opts := []simnet.Option{simnet.WithQualityNoise(0)}
	for _, tech := range device.Techs() {
		p := simnet.DefaultParams(tech).Instant()
		p.Bandwidth = 0
		opts = append(opts, simnet.WithParams(tech, p))
	}
	w := simnet.NewWorld(clk, seed, opts...)
	t.Cleanup(func() { w.Close() })
	radios := make(map[string]*simnet.Radio)
	for name, pos := range at {
		d, err := w.AddDevice(name, mobility.Static{At: pos})
		if err != nil {
			t.Fatalf("AddDevice(%s): %v", name, err)
		}
		r, err := d.AddRadio(device.TechBluetooth)
		if err != nil {
			t.Fatalf("AddRadio(%s): %v", name, err)
		}
		radios[name] = r
	}
	return w, clk, radios
}

func plane(t *testing.T, w *simnet.World, resolve func(string) (NodeHandle, bool)) *Plane {
	t.Helper()
	p, err := New(Config{World: w, Resolve: resolve})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func dial(t *testing.T, radios map[string]*simnet.Radio, from, to string) *simnet.Conn {
	t.Helper()
	l, err := radios[to].Listen(9)
	if err != nil {
		t.Fatalf("Listen(%s): %v", to, err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	c, err := radios[from].Dial(radios[to].Addr(), 9)
	if err != nil {
		t.Fatalf("Dial(%s->%s): %v", from, to, err)
	}
	return c
}

func TestNewRequiresWorld(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a world succeeded")
	}
}

func TestPartitionSeversAndHealRestores(t *testing.T) {
	w, _, radios := world(t, 1, map[string]geo.Point{
		"a": geo.Pt(0, 0), "b": geo.Pt(1, 0), "c": geo.Pt(2, 0),
	})
	p := plane(t, w, nil)
	ab := dial(t, radios, "a", "b")
	ac := dial(t, radios, "a", "c")

	run := p.Load(Script{Events: []Event{
		{At: 0, Do: Partition{Segments: [][]string{{"a", "c"}, {"b"}}}},
	}})
	if n := run.ApplyDue(); n != 1 {
		t.Fatalf("ApplyDue = %d, want 1", n)
	}
	if !p.Partitioned() {
		t.Fatal("plane not partitioned")
	}
	// a|c on one side of the cut keep their link; a|b lose theirs.
	if _, err := ac.Write([]byte("x")); err != nil {
		t.Fatalf("same-segment write: %v", err)
	}
	if _, err := ab.Write([]byte("x")); err == nil {
		t.Fatal("cross-segment write survived the partition")
	}
	if res := radios["a"].Inquire(); len(res) != 1 || res[0].Addr != radios["c"].Addr() {
		t.Fatalf("partition inquiry = %v, want only c", res)
	}
	if _, err := radios["a"].Dial(radios["b"].Addr(), 9); err == nil {
		t.Fatal("cross-segment dial succeeded")
	}

	heal := p.Load(Script{Events: []Event{{At: 0, Do: Heal{}}}})
	heal.ApplyDue()
	if p.Partitioned() {
		t.Fatal("still partitioned after heal")
	}
	if res := radios["a"].Inquire(); len(res) != 2 {
		t.Fatalf("post-heal inquiry found %d radios, want 2", len(res))
	}
}

func TestPartitionUnlistedDevicesShareImplicitSegment(t *testing.T) {
	w, _, radios := world(t, 2, map[string]geo.Point{
		"a": geo.Pt(0, 0), "b": geo.Pt(1, 0), "x": geo.Pt(2, 0), "y": geo.Pt(3, 0),
	})
	p := plane(t, w, nil)
	p.Load(Script{Events: []Event{{At: 0, Do: Partition{Segments: [][]string{{"a"}, {"b"}}}}}}).ApplyDue()

	// x and y are unlisted: they see each other but neither a nor b.
	res := radios["x"].Inquire()
	if len(res) != 1 || res[0].Addr != radios["y"].Addr() {
		t.Fatalf("unlisted inquiry = %v, want only y", res)
	}
}

func TestBlackoutWindowExpiresByTime(t *testing.T) {
	w, clk, radios := world(t, 3, map[string]geo.Point{
		"in": geo.Pt(0, 0), "out": geo.Pt(6, 0), "far": geo.Pt(8, 0),
	})
	p := plane(t, w, nil)
	conn := dial(t, radios, "in", "out")

	run := p.Load(Script{Events: []Event{
		{At: time.Second, Do: Blackout{
			Region:   geo.Rect{Min: geo.Pt(-2, -2), Max: geo.Pt(2, 2)},
			Duration: 5 * time.Second,
		}},
	}})
	if n := run.ApplyDue(); n != 0 {
		t.Fatal("blackout fired before its time")
	}
	clk.Advance(time.Second)
	if n := run.ApplyDue(); n != 1 {
		t.Fatal("blackout did not fire at t=1s")
	}
	if p.ActiveBlackouts() != 1 {
		t.Fatalf("ActiveBlackouts = %d, want 1", p.ActiveBlackouts())
	}
	// The node in the region lost its link and is invisible; nodes
	// outside the region still see each other.
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write into the blackout region survived")
	}
	if res := radios["out"].Inquire(); len(res) != 1 || res[0].Addr != radios["far"].Addr() {
		t.Fatalf("blackout inquiry = %v, want only far", res)
	}

	// The window closes on its own once its time passes.
	clk.Advance(5 * time.Second)
	if p.ActiveBlackouts() != 0 {
		t.Fatal("blackout window did not expire")
	}
	if res := radios["out"].Inquire(); len(res) != 2 {
		t.Fatalf("post-blackout inquiry found %d radios, want 2", len(res))
	}
	if !run.Done() {
		t.Fatal("run not done")
	}
}

func TestImpairAndClearByDeviceName(t *testing.T) {
	w, _, radios := world(t, 4, map[string]geo.Point{"a": geo.Pt(0, 0), "b": geo.Pt(1, 0)})
	p := plane(t, w, nil)
	conn := dial(t, radios, "a", "b")

	p.Load(Script{Events: []Event{
		{At: 0, Do: Impair{From: "a", To: "b", Profile: simnet.Impairment{LossProb: 1}}},
	}}).ApplyDue()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := w.Stats().MessagesDropped; got != 1 {
		t.Fatalf("MessagesDropped = %d, want 1", got)
	}

	p.Load(Script{Events: []Event{{At: 0, Do: ClearImpair{From: "a", To: "b"}}}}).ApplyDue()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatalf("write after clear: %v", err)
	}
	if got := w.Stats().MessagesDropped; got != 1 {
		t.Fatalf("MessagesDropped after clear = %d, want still 1", got)
	}
}

func TestHealClearsImpairments(t *testing.T) {
	w, _, radios := world(t, 5, map[string]geo.Point{"a": geo.Pt(0, 0), "b": geo.Pt(1, 0)})
	p := plane(t, w, nil)
	conn := dial(t, radios, "a", "b")

	p.Load(Script{Events: []Event{
		{At: 0, Do: Impair{From: "a", To: "b", Profile: simnet.Impairment{LossProb: 1}, Symmetric: true}},
		{At: 0, Do: Heal{}},
	}}).ApplyDue()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := w.Stats().MessagesDropped; got != 0 {
		t.Fatalf("MessagesDropped after heal = %d, want 0", got)
	}
}

func TestImpairUnknownDeviceIsRecordedError(t *testing.T) {
	w, _, _ := world(t, 6, map[string]geo.Point{"a": geo.Pt(0, 0)})
	p := plane(t, w, nil)
	run := p.Load(Script{Events: []Event{
		{At: 0, Do: Impair{From: "a", To: "ghost", Profile: simnet.Impairment{LossProb: 1}}},
	}})
	run.ApplyDue()
	if run.Err() == nil {
		t.Fatal("impairing a ghost device reported no error")
	}
}

// fakeNode implements NodeHandle for crash/restart bookkeeping.
type fakeNode struct {
	name              string
	crashes, restarts int
	failNext          error
}

func (f *fakeNode) Name() string { return f.name }
func (f *fakeNode) Crash() error {
	f.crashes++
	return f.failNext
}
func (f *fakeNode) Restart() error {
	f.restarts++
	return f.failNext
}

func TestCrashRestartThroughResolver(t *testing.T) {
	w, clk, radios := world(t, 7, map[string]geo.Point{"a": geo.Pt(0, 0), "b": geo.Pt(1, 0)})
	fake := &fakeNode{name: "b"}
	p := plane(t, w, func(name string) (NodeHandle, bool) {
		if name == fake.name {
			return fake, true
		}
		return nil, false
	})

	run := p.Load(Script{Events: []Event{
		{At: 0, Do: Crash{Node: "b"}},
		{At: 2 * time.Second, Do: Restart{Node: "b"}},
		{At: 3 * time.Second, Do: Crash{Node: "ghost"}},
	}})
	run.ApplyDue()
	if fake.crashes != 1 {
		t.Fatalf("crashes = %d, want 1", fake.crashes)
	}
	dev, _ := w.Device("b")
	if !dev.IsDown() {
		t.Fatal("crashed device not powered down")
	}
	if res := radios["a"].Inquire(); len(res) != 0 {
		t.Fatalf("crashed node still discoverable: %v", res)
	}

	clk.Advance(2 * time.Second)
	run.ApplyDue()
	if fake.restarts != 1 {
		t.Fatalf("restarts = %d, want 1", fake.restarts)
	}
	if dev.IsDown() {
		t.Fatal("restarted device still down")
	}

	clk.Advance(time.Second)
	run.ApplyDue()
	if run.Err() == nil {
		t.Fatal("crashing an unresolvable node reported no error")
	}
}

func TestCheckActionRecordsFailure(t *testing.T) {
	w, _, _ := world(t, 8, map[string]geo.Point{"a": geo.Pt(0, 0)})
	p := plane(t, w, nil)
	boom := errors.New("boom")
	calls := 0
	run := p.Load(Script{Events: []Event{
		{At: 0, Do: Check{Name: "ok", Fn: func() error { calls++; return nil }}},
		{At: 0, Do: Check{Name: "bad", Fn: func() error { calls++; return boom }}},
	}})
	run.ApplyDue()
	if calls != 2 {
		t.Fatalf("checks ran %d times, want 2", calls)
	}
	if err := run.Err(); err == nil || !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want wrapped boom", err)
	}
}

func TestPlayAppliesInOrderAndTraceIsDeterministic(t *testing.T) {
	runOnce := func() []string {
		w, _, _ := world(t, 9, map[string]geo.Point{"a": geo.Pt(0, 0), "b": geo.Pt(1, 0)})
		p := plane(t, w, nil)
		run := p.Load(Script{Events: []Event{
			// Deliberately unordered: Load sorts by At.
			{At: 0, Do: Heal{}},
			{At: 0, Do: Partition{Segments: [][]string{{"a"}, {"b"}}}},
		}})
		if err := run.Play(); err != nil {
			t.Fatalf("Play: %v", err)
		}
		if !run.Done() {
			t.Fatal("Play returned before Done")
		}
		return p.Trace()
	}
	tr1, tr2 := runOnce(), runOnce()
	if len(tr1) != 2 {
		t.Fatalf("trace = %v, want 2 entries", tr1)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("same-seed traces differ:\n%v\n%v", tr1, tr2)
	}
}

func TestDetachRemovesFilter(t *testing.T) {
	w, _, radios := world(t, 10, map[string]geo.Point{"a": geo.Pt(0, 0), "b": geo.Pt(1, 0)})
	p := plane(t, w, nil)
	p.Load(Script{Events: []Event{{At: 0, Do: Partition{Segments: [][]string{{"a"}, {"b"}}}}}}).ApplyDue()
	if res := radios["a"].Inquire(); len(res) != 0 {
		t.Fatal("partition not in force")
	}
	p.Detach()
	if res := radios["a"].Inquire(); len(res) != 1 {
		t.Fatal("detach did not lift the partition")
	}
}

func TestActionStrings(t *testing.T) {
	for _, tc := range []struct {
		a    Action
		want string
	}{
		{Partition{Segments: [][]string{{"a", "b"}, {"c"}}}, "partition a,b | c"},
		{Heal{}, "heal"},
		{Crash{Node: "n"}, "crash n"},
		{Restart{Node: "n"}, "restart n"},
		{Check{Name: "inv"}, "check inv"},
		{ClearImpair{From: "a", To: "b"}, "clear-impair a<->b"},
	} {
		if got := tc.a.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	imp := Impair{From: "a", To: "b", Profile: simnet.Impairment{LossProb: 0.5}}
	if got := imp.String(); got != fmt.Sprintf("impair a->b loss=0.50 burst=%s/%s", time.Duration(0), time.Duration(0)) {
		t.Errorf("Impair.String() = %q", got)
	}
}
