package faultplane

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"peerhood/internal/simnet"
)

// ShardPlane drives the same declarative Scripts against a
// simnet.ShardedWorld that Plane drives against the classic World. Every
// action maps onto the sharded world's own deterministic fault surface
// (Partition/Blackout/Heal/SetImpairment/SetDown), each applied event
// forces a full link sweep, and the trace format is identical — so the
// equivalence tests can compare fault traces between the two substrates
// string-for-string.
type ShardPlane struct {
	w       *simnet.ShardedWorld
	resolve func(name string) (NodeHandle, bool)

	mu       sync.Mutex
	impaired []impairedPair
	trace    []string
}

// ShardConfig parametrises a ShardPlane.
type ShardConfig struct {
	// World is the sharded radio environment (required).
	World *simnet.ShardedWorld
	// Resolve maps a node name to its crash/restart handle; nil disables
	// Crash/Restart actions.
	Resolve func(name string) (NodeHandle, bool)
}

// NewShardPlane returns a ShardPlane over cfg.World.
func NewShardPlane(cfg ShardConfig) (*ShardPlane, error) {
	if cfg.World == nil {
		return nil, errors.New("faultplane: ShardConfig.World is required")
	}
	return &ShardPlane{w: cfg.World, resolve: cfg.Resolve}, nil
}

// World returns the plane's sharded world.
func (p *ShardPlane) World() *simnet.ShardedWorld { return p.w }

// Trace returns the ordered log of applied script events, in the same
// format as Plane.Trace.
func (p *ShardPlane) Trace() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.trace...)
}

func (p *ShardPlane) record(line string) {
	p.mu.Lock()
	p.trace = append(p.trace, line)
	p.mu.Unlock()
}

// Load binds a script to the plane, anchored at the current simulated
// time. Events are applied in At order (stable for equal times).
func (p *ShardPlane) Load(s Script) *ShardRun {
	events := append([]Event(nil), s.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return &ShardRun{p: p, start: p.w.Now(), events: events}
}

// ShardRun is one playback of a Script on a sharded world. The sharded
// world has no background clock, so playback is always synchronous:
// call ApplyDue between supersteps.
type ShardRun struct {
	p     *ShardPlane
	start time.Duration

	events []Event
	idx    int
	errs   []error
}

// ApplyDue applies, in order, every not-yet-applied event whose time has
// come, and returns how many fired.
func (r *ShardRun) ApplyDue() int {
	now := r.p.w.Now()
	n := 0
	for r.idx < len(r.events) && r.start+r.events[r.idx].At <= now {
		ev := r.events[r.idx]
		r.idx++
		r.apply(ev)
		n++
	}
	return n
}

// Done reports whether every event has been applied.
func (r *ShardRun) Done() bool { return r.idx >= len(r.events) }

// Err returns the accumulated event errors joined, or nil.
func (r *ShardRun) Err() error { return errors.Join(r.errs...) }

// apply executes one event, forces a link sweep, and records the outcome
// in the plane trace — mirroring Run.apply, including its format.
func (r *ShardRun) apply(ev Event) {
	err := r.p.applyAction(ev.Do)
	r.p.w.CheckLinks()
	line := fmt.Sprintf("t=%s %s", ev.At, ev.Do)
	if err != nil {
		line += " err=" + err.Error()
		r.errs = append(r.errs, fmt.Errorf("faultplane: t=%s %s: %w", ev.At, ev.Do, err))
	}
	r.p.record(line)
}

// applyAction maps one script action onto the sharded world.
func (p *ShardPlane) applyAction(a Action) error {
	switch act := a.(type) {
	case Partition:
		p.w.Partition(act.Segments)
		return nil
	case Blackout:
		return p.w.Blackout(act.Region, act.Duration)
	case Impair:
		from, to, err := p.sharedTechPair(act.From, act.To)
		if err != nil {
			return err
		}
		p.w.SetImpairment(from, to, &act.Profile)
		if act.Symmetric {
			p.w.SetImpairment(to, from, &act.Profile)
		}
		p.mu.Lock()
		p.impaired = append(p.impaired, impairedPair{from: act.From, to: act.To})
		p.mu.Unlock()
		return nil
	case ClearImpair:
		from, to, err := p.sharedTechPair(act.From, act.To)
		if err != nil {
			return err
		}
		p.w.SetImpairment(from, to, nil)
		p.w.SetImpairment(to, from, nil)
		return nil
	case Heal:
		p.w.Heal()
		p.mu.Lock()
		impaired := p.impaired
		p.impaired = nil
		p.mu.Unlock()
		for _, pr := range impaired {
			if from, to, err := p.sharedTechPair(pr.from, pr.to); err == nil {
				p.w.SetImpairment(from, to, nil)
				p.w.SetImpairment(to, from, nil)
			}
		}
		return nil
	case Crash:
		h, err := p.handle(act.Node)
		if err != nil {
			return err
		}
		if id, ok := p.w.NodeByName(act.Node); ok {
			p.w.SetDown(id, true)
		}
		return h.Crash()
	case Restart:
		h, err := p.handle(act.Node)
		if err != nil {
			return err
		}
		if id, ok := p.w.NodeByName(act.Node); ok {
			p.w.SetDown(id, false)
		}
		return h.Restart()
	case Check:
		return act.apply(nil)
	default:
		return fmt.Errorf("action %s not supported on a sharded world", a)
	}
}

// sharedTechPair resolves two node names and verifies they share a
// technology, with the same error texts as the classic plane's pairAddrs.
func (p *ShardPlane) sharedTechPair(from, to string) (simnet.NodeID, simnet.NodeID, error) {
	fid, ok := p.w.NodeByName(from)
	if !ok {
		return 0, 0, fmt.Errorf("no device %q", from)
	}
	tid, ok := p.w.NodeByName(to)
	if !ok {
		return 0, 0, fmt.Errorf("no device %q", to)
	}
	var maskF, maskT uint8
	for _, t := range p.w.NodeTechs(fid) {
		maskF |= 1 << uint(t)
	}
	for _, t := range p.w.NodeTechs(tid) {
		maskT |= 1 << uint(t)
	}
	if maskF&maskT == 0 {
		return 0, 0, fmt.Errorf("devices %q and %q share no technology", from, to)
	}
	return fid, tid, nil
}

// handle resolves a crash/restart handle, with the classic plane's errors.
func (p *ShardPlane) handle(name string) (NodeHandle, error) {
	if p.resolve == nil {
		return nil, fmt.Errorf("no node resolver configured (node %q)", name)
	}
	h, ok := p.resolve(name)
	if !ok {
		return nil, fmt.Errorf("no node %q", name)
	}
	return h, nil
}
