package faultplane

import (
	"errors"
	"strings"
	"testing"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/simnet"
)

// shardWorld builds a sharded world of static Bluetooth nodes at the
// given positions, with deterministic parameters and no self-discovery.
func shardWorld(t *testing.T, at map[string]geo.Point) (*simnet.ShardedWorld, map[string]simnet.NodeID) {
	t.Helper()
	p := simnet.DefaultParams(device.TechBluetooth).Instant()
	p.Bandwidth = 0
	sw := simnet.NewShardedWorld(simnet.ShardedConfig{
		Seed:   42,
		Params: map[device.Tech]simnet.TechParams{device.TechBluetooth: p},
	})
	t.Cleanup(func() { sw.Close() })
	ids := make(map[string]simnet.NodeID, len(at))
	// Insertion order must be deterministic for link keys; sort by name.
	names := make([]string, 0, len(at))
	for name := range at {
		names = append(names, name)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		id, err := sw.AddNode(simnet.ShardNodeSpec{
			Name:  name,
			Model: mobility.Static{At: at[name]},
			Techs: []device.Tech{device.TechBluetooth},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = id
	}
	return sw, ids
}

func shardPlane(t *testing.T, w *simnet.ShardedWorld, resolve func(string) (NodeHandle, bool)) *ShardPlane {
	t.Helper()
	p, err := NewShardPlane(ShardConfig{World: w, Resolve: resolve})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// applyNow loads a single immediate event and applies it.
func applyNow(t *testing.T, p *ShardPlane, do Action) *ShardRun {
	t.Helper()
	run := p.Load(Script{Events: []Event{{At: 0, Do: do}}})
	if n := run.ApplyDue(); n != 1 {
		t.Fatalf("ApplyDue fired %d events, want 1", n)
	}
	return run
}

func TestNewShardPlaneRequiresWorld(t *testing.T) {
	if _, err := NewShardPlane(ShardConfig{}); err == nil {
		t.Fatal("expected error for nil world")
	}
}

func TestShardPartitionSeversAndHealRestores(t *testing.T) {
	sw, ids := shardWorld(t, map[string]geo.Point{
		"a": geo.Pt(0, 0), "b": geo.Pt(5, 0),
	})
	p := shardPlane(t, sw, nil)
	if err := sw.Connect(ids["a"], ids["b"], device.TechBluetooth); err != nil {
		t.Fatal(err)
	}

	applyNow(t, p, Partition{Segments: [][]string{{"a"}, {"b"}}})
	if sw.Linked(ids["a"], ids["b"], device.TechBluetooth) {
		t.Fatal("partition did not break the link")
	}
	if err := sw.Connect(ids["a"], ids["b"], device.TechBluetooth); err == nil {
		t.Fatal("connect across partition succeeded")
	}

	applyNow(t, p, Heal{})
	if err := sw.Connect(ids["a"], ids["b"], device.TechBluetooth); err != nil {
		t.Fatalf("connect after heal: %v", err)
	}
}

func TestShardBlackoutBreaksLinksAndExpires(t *testing.T) {
	sw, ids := shardWorld(t, map[string]geo.Point{
		"a": geo.Pt(0, 0), "b": geo.Pt(5, 0),
	})
	p := shardPlane(t, sw, nil)
	if err := sw.Connect(ids["a"], ids["b"], device.TechBluetooth); err != nil {
		t.Fatal(err)
	}

	applyNow(t, p, Blackout{
		Region:   geo.Rect{Min: geo.Pt(-1, -1), Max: geo.Pt(1, 1)},
		Duration: 2 * time.Second,
	})
	if sw.ActiveLinks() != 0 {
		t.Fatal("blackout did not break the covered link")
	}
	if err := sw.Connect(ids["a"], ids["b"], device.TechBluetooth); err == nil {
		t.Fatal("connect inside blackout succeeded")
	}
	sw.StepUntil(3 * time.Second)
	if err := sw.Connect(ids["a"], ids["b"], device.TechBluetooth); err != nil {
		t.Fatalf("connect after blackout expiry: %v", err)
	}

	run := applyNow(t, p, Blackout{Duration: 0})
	if run.Err() == nil {
		t.Fatal("zero-duration blackout must error")
	}
}

func TestShardImpairClearAndHeal(t *testing.T) {
	sw, ids := shardWorld(t, map[string]geo.Point{
		"a": geo.Pt(0, 0), "b": geo.Pt(5, 0),
	})
	p := shardPlane(t, sw, nil)

	applyNow(t, p, Impair{From: "a", To: "b",
		Profile: simnet.Impairment{LossProb: 0.5}, Symmetric: true})
	if _, ok := sw.ImpairmentFor(ids["a"], ids["b"]); !ok {
		t.Fatal("impairment a->b not installed")
	}
	if _, ok := sw.ImpairmentFor(ids["b"], ids["a"]); !ok {
		t.Fatal("symmetric impairment b->a not installed")
	}

	applyNow(t, p, ClearImpair{From: "a", To: "b"})
	if _, ok := sw.ImpairmentFor(ids["a"], ids["b"]); ok {
		t.Fatal("impairment survived ClearImpair")
	}

	applyNow(t, p, Impair{From: "a", To: "b", Profile: simnet.Impairment{LossProb: 1}})
	applyNow(t, p, Heal{})
	if _, ok := sw.ImpairmentFor(ids["a"], ids["b"]); ok {
		t.Fatal("impairment survived Heal")
	}

	run := applyNow(t, p, Impair{From: "ghost", To: "b"})
	if err := run.Err(); err == nil || !strings.Contains(err.Error(), `no device "ghost"`) {
		t.Fatalf("unknown device error = %v", err)
	}
	trace := p.Trace()
	last := trace[len(trace)-1]
	if !strings.Contains(last, `err=no device "ghost"`) {
		t.Fatalf("trace line %q missing err suffix", last)
	}
}

func TestShardCrashRestartThroughResolver(t *testing.T) {
	sw, ids := shardWorld(t, map[string]geo.Point{
		"a": geo.Pt(0, 0), "b": geo.Pt(5, 0),
	})
	node := &fakeNode{name: "a"}
	p := shardPlane(t, sw, func(name string) (NodeHandle, bool) {
		if name == "a" {
			return node, true
		}
		return nil, false
	})
	if err := sw.Connect(ids["a"], ids["b"], device.TechBluetooth); err != nil {
		t.Fatal(err)
	}

	applyNow(t, p, Crash{Node: "a"})
	if node.crashes != 1 {
		t.Fatalf("crashes = %d, want 1", node.crashes)
	}
	if !sw.IsDown(ids["a"]) {
		t.Fatal("crash did not power the node down")
	}
	if sw.ActiveLinks() != 0 {
		t.Fatal("crash did not break the node's link")
	}

	applyNow(t, p, Restart{Node: "a"})
	if node.restarts != 1 {
		t.Fatalf("restarts = %d, want 1", node.restarts)
	}
	if sw.IsDown(ids["a"]) {
		t.Fatal("restart did not power the node up")
	}

	run := applyNow(t, p, Crash{Node: "ghost"})
	if err := run.Err(); err == nil || !strings.Contains(err.Error(), `no node "ghost"`) {
		t.Fatalf("unknown node error = %v", err)
	}
}

func TestShardCrashWithoutResolverErrors(t *testing.T) {
	sw, _ := shardWorld(t, map[string]geo.Point{"a": geo.Pt(0, 0)})
	p := shardPlane(t, sw, nil)
	run := applyNow(t, p, Crash{Node: "a"})
	if err := run.Err(); err == nil || !strings.Contains(err.Error(), "no node resolver configured") {
		t.Fatalf("resolver-less crash error = %v", err)
	}
}

var errTest = errors.New("induced failure")

// bogusAction exercises the unsupported-action default branch.
type bogusAction struct{}

func (bogusAction) String() string       { return "bogus" }
func (bogusAction) apply(p *Plane) error { return nil }

func TestShardCheckAndUnsupportedAction(t *testing.T) {
	sw, _ := shardWorld(t, map[string]geo.Point{"a": geo.Pt(0, 0)})
	p := shardPlane(t, sw, nil)

	run := p.Load(Script{Events: []Event{
		{At: 0, Do: Check{Name: "ok", Fn: func() error { return nil }}},
		{At: 0, Do: Check{Name: "boom", Fn: func() error { return errTest }}},
		{At: 0, Do: bogusAction{}},
	}})
	if n := run.ApplyDue(); n != 3 {
		t.Fatalf("ApplyDue fired %d events, want 3", n)
	}
	if !run.Done() {
		t.Fatal("run not done")
	}
	err := run.Err()
	if err == nil || !strings.Contains(err.Error(), "check boom") {
		t.Fatalf("check failure not recorded: %v", err)
	}
	if !strings.Contains(err.Error(), "not supported on a sharded world") {
		t.Fatalf("unsupported action not recorded: %v", err)
	}
	if got := len(p.Trace()); got != 3 {
		t.Fatalf("trace has %d lines, want 3", got)
	}
	if p.World() != sw {
		t.Fatal("World() accessor mismatch")
	}
}

func TestShardLoadAppliesInAtOrder(t *testing.T) {
	sw, _ := shardWorld(t, map[string]geo.Point{
		"a": geo.Pt(0, 0), "b": geo.Pt(5, 0),
	})
	p := shardPlane(t, sw, nil)
	run := p.Load(Script{Events: []Event{
		{At: 2 * time.Second, Do: Heal{}},
		{At: 1 * time.Second, Do: Partition{Segments: [][]string{{"a"}, {"b"}}}},
	}})
	if n := run.ApplyDue(); n != 0 {
		t.Fatalf("events fired before their time: %d", n)
	}
	sw.StepUntil(1 * time.Second)
	if n := run.ApplyDue(); n != 1 {
		t.Fatalf("ApplyDue at 1s fired %d, want 1", n)
	}
	sw.StepUntil(2 * time.Second)
	if n := run.ApplyDue(); n != 1 {
		t.Fatalf("ApplyDue at 2s fired %d, want 1", n)
	}
	trace := p.Trace()
	if len(trace) != 2 || !strings.HasPrefix(trace[0], "t=1s partition") || !strings.HasPrefix(trace[1], "t=2s heal") {
		t.Fatalf("trace out of order: %v", trace)
	}
}
