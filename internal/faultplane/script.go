package faultplane

import (
	"fmt"
	"strings"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/simnet"
)

// Script is an ordered, clock-scheduled list of fault events plus
// assertions — declarative failure weather. Experiments and tests build
// one, Load it on a Plane, and drive it with Run.ApplyDue (manual clock)
// or Run.Play (scaled/real clock).
type Script struct {
	Events []Event
}

// Event schedules one action At a simulated-time offset from Run start.
type Event struct {
	At time.Duration
	Do Action
}

// Action is one fault-plane operation.
type Action interface {
	fmt.Stringer
	apply(p *Plane) error
}

// Partition splits the world into isolated segments: devices in different
// segments cannot discover, dial, or keep links to each other. Devices not
// named in any segment form an implicit segment of their own. A new
// Partition replaces the previous one; Heal removes it.
type Partition struct {
	Segments [][]string
}

func (a Partition) apply(p *Plane) error {
	segs := make(map[string]int)
	for i, seg := range a.Segments {
		for _, name := range seg {
			segs[name] = i + 1 // unlisted devices stay at the zero segment
		}
	}
	p.mu.Lock()
	p.partitioned = true
	p.segments = segs
	p.mu.Unlock()
	return nil
}

func (a Partition) String() string {
	parts := make([]string, len(a.Segments))
	for i, seg := range a.Segments {
		parts[i] = strings.Join(seg, ",")
	}
	return "partition " + strings.Join(parts, " | ")
}

// Blackout takes every radio whose device is inside Region off the air for
// Duration: existing links touching the region break, and no new links or
// discoveries involve it until the window closes (closing needs no event —
// the filter expires it by time).
type Blackout struct {
	Region   geo.Rect
	Duration time.Duration
}

func (a Blackout) apply(p *Plane) error {
	if a.Duration <= 0 {
		return fmt.Errorf("blackout duration %s must be positive", a.Duration)
	}
	p.mu.Lock()
	p.blackouts = append(p.blackouts, blackoutWindow{region: a.Region, until: p.clk.Now().Add(a.Duration)})
	p.mu.Unlock()
	return nil
}

func (a Blackout) String() string {
	return fmt.Sprintf("blackout [%.0f,%.0f]x[%.0f,%.0f] for %s",
		a.Region.Min.X, a.Region.Max.X, a.Region.Min.Y, a.Region.Max.Y, a.Duration)
}

// Impair installs an impairment profile on the From->To direction of
// every shared-technology radio pair between two devices (Symmetric
// applies it both ways). Heal clears it along with all other weather.
type Impair struct {
	From, To  string
	Profile   simnet.Impairment
	Symmetric bool
}

func (a Impair) apply(p *Plane) error {
	addrs, err := p.pairAddrs(a.From, a.To)
	if err != nil {
		return err
	}
	for _, pr := range addrs {
		p.w.SetLinkImpairment(pr[0], pr[1], &a.Profile)
		if a.Symmetric {
			p.w.SetLinkImpairment(pr[1], pr[0], &a.Profile)
		}
	}
	p.mu.Lock()
	p.impaired = append(p.impaired, impairedPair{from: a.From, to: a.To})
	p.mu.Unlock()
	return nil
}

func (a Impair) String() string {
	arrow := "->"
	if a.Symmetric {
		arrow = "<->"
	}
	return fmt.Sprintf("impair %s%s%s loss=%.2f burst=%s/%s", a.From, arrow, a.To,
		a.Profile.LossProb, a.Profile.MeanGood, a.Profile.MeanBad)
}

// ClearImpair removes the impairments Impair installed between two devices
// (both directions).
type ClearImpair struct {
	From, To string
}

func (a ClearImpair) apply(p *Plane) error {
	addrs, err := p.pairAddrs(a.From, a.To)
	if err != nil {
		return err
	}
	for _, pr := range addrs {
		p.w.SetLinkImpairment(pr[0], pr[1], nil)
		p.w.SetLinkImpairment(pr[1], pr[0], nil)
	}
	return nil
}

func (a ClearImpair) String() string { return fmt.Sprintf("clear-impair %s<->%s", a.From, a.To) }

// pairAddrs returns the (from, to) radio address pairs for every
// technology both named devices carry.
func (p *Plane) pairAddrs(from, to string) ([][2]device.Addr, error) {
	df, ok := p.w.Device(from)
	if !ok {
		return nil, fmt.Errorf("no device %q", from)
	}
	dt, ok := p.w.Device(to)
	if !ok {
		return nil, fmt.Errorf("no device %q", to)
	}
	var out [][2]device.Addr
	for _, tech := range device.Techs() {
		rf, okF := df.Radio(tech)
		rt, okT := dt.Radio(tech)
		if okF && okT {
			out = append(out, [2]device.Addr{rf.Addr(), rt.Addr()})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("devices %q and %q share no technology", from, to)
	}
	return out, nil
}

// Heal clears all standing weather: the partition, every open blackout
// window, and every script-installed impairment. (It does not resurrect
// crashed nodes — schedule Restart events for those.)
type Heal struct{}

func (Heal) apply(p *Plane) error {
	p.mu.Lock()
	p.partitioned = false
	p.segments = nil
	p.blackouts = nil
	impaired := p.impaired
	p.impaired = nil
	p.mu.Unlock()
	for _, pr := range impaired {
		if addrs, err := p.pairAddrs(pr.from, pr.to); err == nil {
			for _, ab := range addrs {
				p.w.SetLinkImpairment(ab[0], ab[1], nil)
				p.w.SetLinkImpairment(ab[1], ab[0], nil)
			}
		}
	}
	return nil
}

func (Heal) String() string { return "heal" }

// Crash kills a node's daemon (through its NodeHandle) and powers its
// simulated device down, so it vanishes from the air mid-transfer: links
// break, inquiries stop seeing it, peers age it out.
type Crash struct {
	Node string
}

func (a Crash) apply(p *Plane) error {
	h, err := p.handle(a.Node)
	if err != nil {
		return err
	}
	if dev, ok := p.w.Device(a.Node); ok {
		dev.SetDown(true)
	}
	return h.Crash()
}

func (a Crash) String() string { return "crash " + a.Node }

// Restart powers a crashed node's device back on and rebuilds its daemon
// with a fresh storage epoch — peers that had synced with it detect the
// epoch change and fall back to a full neighbourhood resync.
type Restart struct {
	Node string
}

func (a Restart) apply(p *Plane) error {
	h, err := p.handle(a.Node)
	if err != nil {
		return err
	}
	if dev, ok := p.w.Device(a.Node); ok {
		dev.SetDown(false)
	}
	return h.Restart()
}

func (a Restart) String() string { return "restart " + a.Node }

func (p *Plane) handle(name string) (NodeHandle, error) {
	if p.resolve == nil {
		return nil, fmt.Errorf("no node resolver configured (node %q)", name)
	}
	h, ok := p.resolve(name)
	if !ok {
		return nil, fmt.Errorf("no node %q", name)
	}
	return h, nil
}

// Check runs an in-script assertion; a non-nil error is recorded on the
// Run (and in the trace) without stopping playback.
type Check struct {
	Name string
	Fn   func() error
}

func (a Check) apply(*Plane) error {
	if a.Fn == nil {
		return nil
	}
	if err := a.Fn(); err != nil {
		return fmt.Errorf("check %s: %w", a.Name, err)
	}
	return nil
}

func (a Check) String() string { return "check " + a.Name }
