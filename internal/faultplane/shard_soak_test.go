package faultplane_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/faultplane"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/rng"
	"peerhood/internal/simnet"
)

// soakHandle is a concurrency-safe no-op crash/restart handle.
type soakHandle struct{ name string }

func (h soakHandle) Name() string   { return h.name }
func (h soakHandle) Crash() error   { return nil }
func (h soakHandle) Restart() error { return nil }

// shardSoakRun drives a 5 000-node sharded world through partition,
// blackout, and crash/restart churn and returns its per-step digests.
func shardSoakRun(t *testing.T, seed int64) []string {
	t.Helper()
	const n = 5000
	src := rng.New(seed)

	sw := simnet.NewShardedWorld(simnet.ShardedConfig{
		Seed:         seed,
		QualityNoise: 2,
		AutoLink:     true,
	})
	defer sw.Close()

	names := make([]string, n)
	area := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1000, 1000)}
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		start := geo.Pt(src.Uniform(0, 1000), src.Uniform(0, 1000))
		var model mobility.Model
		if i%4 == 0 {
			model = mobility.Static{At: start}
		} else {
			// Max speed must stay below slack/quantum (15 m/s for WLAN's
			// 60 m regions) or the walkers land on the unbucketed
			// always-candidate list and every inquiry scans all of them.
			model = mobility.NewRandomWaypoint(start, area, 1, 6, time.Second, rng.New(seed+int64(i)))
		}
		if _, err := sw.AddNode(simnet.ShardNodeSpec{
			Name:  names[i],
			Model: model,
			Techs: []device.Tech{device.TechWLAN},
			// Stagger rounds so each superstep carries ~n/8 inquiries.
			DiscoveryEvery: 8 * time.Second,
			DiscoveryPhase: time.Duration(1+i%8) * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}

	plane, err := faultplane.NewShardPlane(faultplane.ShardConfig{
		World:   sw,
		Resolve: func(name string) (faultplane.NodeHandle, bool) { return soakHandle{name: name}, true },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Partition thirds, roll blackouts across districts, and churn a
	// band of nodes through crash/restart while the world keeps stepping.
	var events []faultplane.Event
	events = append(events,
		faultplane.Event{At: 4 * time.Second, Do: faultplane.Partition{
			Segments: [][]string{names[:1500], names[1500:3200]}}},
		faultplane.Event{At: 6 * time.Second, Do: faultplane.Blackout{
			Region: geo.Rect{Min: geo.Pt(100, 100), Max: geo.Pt(450, 450)}, Duration: 5 * time.Second}},
		faultplane.Event{At: 12 * time.Second, Do: faultplane.Heal{}},
		faultplane.Event{At: 14 * time.Second, Do: faultplane.Blackout{
			Region: geo.Rect{Min: geo.Pt(500, 500), Max: geo.Pt(900, 900)}, Duration: 6 * time.Second}},
		faultplane.Event{At: 22 * time.Second, Do: faultplane.Heal{}},
	)
	for i := 0; i < 40; i++ {
		victim := names[(i*97)%n]
		crashAt := time.Duration(5+i%12) * time.Second
		events = append(events,
			faultplane.Event{At: crashAt, Do: faultplane.Crash{Node: victim}},
			faultplane.Event{At: crashAt + 6*time.Second, Do: faultplane.Restart{Node: victim}},
		)
	}
	run := plane.Load(faultplane.Script{Events: events})

	digests := make([]string, 0, 30)
	for step := 0; step < 30; step++ {
		sw.Step()
		run.ApplyDue()
		digests = append(digests, sw.Digest())
	}
	if err := run.Err(); err != nil {
		t.Fatal(err)
	}
	if !run.Done() {
		t.Fatal("soak script did not finish")
	}
	st := sw.Stats()
	if st.Inquiries == 0 || st.DialsAttempted == 0 || st.LinksBroken == 0 {
		t.Fatalf("soak too quiet to be a soak: %+v", st)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return digests
}

// TestShardSoak5kChurn runs 5 000 mobile nodes with partition, blackout,
// and crash/restart churn — twice — and requires byte-identical per-step
// digests plus no goroutine leak once the world closes. Running it under
// the race detector (the CI race job does) validates the parallel phase's
// no-shared-writes discipline at scale.
func TestShardSoak5kChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("5k-node soak skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	d1 := shardSoakRun(t, 606)
	d2 := shardSoakRun(t, 606)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("same-seed soak diverged at step %d:\n  %s\n  %s", i, d1[i], d2[i])
		}
	}

	// Shard workers are spawned per superstep and joined before Step
	// returns, so a closed world must leave no goroutines behind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after Close: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
