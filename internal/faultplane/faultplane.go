// Package faultplane is the deterministic fault-injection layer over the
// simulated wireless world: per-link impairment profiles (loss, jitter,
// Gilbert–Elliott burst outages, asymmetric degradation — see
// simnet.Impairment), world-level fault events (partitions, regional
// blackouts, daemon crash/restart churn), and a small declarative scenario
// runner (Script) that schedules those events on the world clock.
//
// The paper's premise is that mobile links fail in ugly, correlated ways;
// adaptive-middleware work (De Florio & Blondia) argues such systems must
// be validated against explicit environment-change models. The fault plane
// is that model: every stochastic choice draws from the world's seeded
// rng, and every event is applied at a scheduled simulated time, so a
// scenario replays bit-identically from its seed under a manual clock.
//
// A Plane composes the active partition and blackout windows into a single
// simnet link filter; crash/restart events act through NodeHandle, which
// peerhood.Node and phtest.Node implement. Scripts run either
// synchronously (Run.ApplyDue, for manual-clock harnesses that advance
// time themselves) or in the background (Run.Play, for scaled/real-clock
// experiments).
package faultplane

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/geo"
	"peerhood/internal/simnet"
)

// NodeHandle is the crash/restart surface of one PeerHood node: the fault
// plane kills and resurrects daemons through it without knowing how the
// embedding harness (peerhood.World, phtest) builds them. Restart must
// bring the daemon back with a fresh storage epoch, so peers detect the
// restart and fall back to a full neighbourhood resync.
type NodeHandle interface {
	// Name returns the node's device name (the Script's addressing key).
	Name() string
	// Crash stops the node's daemon and services abruptly.
	Crash() error
	// Restart rebuilds and starts the node's daemon with a fresh storage
	// epoch on the same radios.
	Restart() error
}

// Config parametrises a Plane.
type Config struct {
	// World is the simulated radio environment (required).
	World *simnet.World
	// Clock schedules script events and expires blackout windows; nil
	// uses the world's clock.
	Clock clock.Clock
	// Resolve maps a device name to its crash/restart handle; nil
	// disables Crash/Restart actions.
	Resolve func(name string) (NodeHandle, bool)
}

// Plane is the live fault state composed over one world. Installing a
// Plane hooks the world's link filter; all methods are safe for
// concurrent use.
type Plane struct {
	w       *simnet.World
	clk     clock.Clock
	resolve func(name string) (NodeHandle, bool)

	mu          sync.Mutex
	partitioned bool
	segments    map[string]int
	blackouts   []blackoutWindow
	impaired    []impairedPair
	trace       []string
}

type blackoutWindow struct {
	region geo.Rect
	until  time.Time
}

type impairedPair struct {
	from, to string
}

// New returns a Plane over cfg.World with its link filter installed.
func New(cfg Config) (*Plane, error) {
	if cfg.World == nil {
		return nil, errors.New("faultplane: Config.World is required")
	}
	clk := cfg.Clock
	if clk == nil {
		clk = cfg.World.Clock()
	}
	p := &Plane{w: cfg.World, clk: clk, resolve: cfg.Resolve}
	p.w.SetLinkFilter(p.allow)
	return p, nil
}

// World returns the plane's simulated world.
func (p *Plane) World() *simnet.World { return p.w }

// Detach uninstalls the plane's link filter, ending all partition and
// blackout effects (impairments registered on the world remain until
// healed or cleared).
func (p *Plane) Detach() { p.w.SetLinkFilter(nil) }

// allow is the composed link filter: a radio pair may link iff no active
// partition separates their devices and no active blackout covers either
// position. It is called by simnet on every inquiry candidate, dial, and
// link-alive check.
func (p *Plane) allow(a, b *simnet.Radio) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.partitioned && p.segments[a.Device().Name()] != p.segments[b.Device().Name()] {
		return false
	}
	if len(p.blackouts) == 0 {
		return true
	}
	now := p.clk.Now()
	keep := p.blackouts[:0]
	blocked := false
	for _, bo := range p.blackouts {
		if !bo.until.After(now) {
			continue // window over; drop lazily
		}
		keep = append(keep, bo)
		if bo.region.Contains(a.Device().Position()) || bo.region.Contains(b.Device().Position()) {
			blocked = true
		}
	}
	p.blackouts = keep
	return !blocked
}

// Partitioned reports whether a partition is currently in force.
func (p *Plane) Partitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned
}

// ActiveBlackouts returns how many blackout windows are currently open.
func (p *Plane) ActiveBlackouts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clk.Now()
	n := 0
	for _, bo := range p.blackouts {
		if bo.until.After(now) {
			n++
		}
	}
	return n
}

// Trace returns the ordered log of applied script events ("t=6s blackout
// ... broke=3"). Two same-seed runs of the same script produce identical
// traces when driven deterministically — the determinism regression tests
// assert exactly that.
func (p *Plane) Trace() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.trace...)
}

func (p *Plane) record(line string) {
	p.mu.Lock()
	p.trace = append(p.trace, line)
	p.mu.Unlock()
}

// Load binds a script to the plane, anchored at the current simulated
// time: an event with At=6s fires six simulated seconds from now. Events
// are applied in At order (stable for equal times).
func (p *Plane) Load(s Script) *Run {
	events := append([]Event(nil), s.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return &Run{p: p, start: p.clk.Now(), events: events}
}

// Run is one playback of a Script.
type Run struct {
	p     *Plane
	start time.Time

	mu     sync.Mutex
	events []Event
	idx    int
	errs   []error
}

// ApplyDue applies, in order, every not-yet-applied event whose time has
// come, and returns how many fired. Manual-clock harnesses call it after
// each clock advance; the whole scenario then runs on one goroutine and
// replays bit-identically.
func (r *Run) ApplyDue() int {
	now := r.p.clk.Now()
	n := 0
	for {
		r.mu.Lock()
		if r.idx >= len(r.events) || r.start.Add(r.events[r.idx].At).After(now) {
			r.mu.Unlock()
			return n
		}
		ev := r.events[r.idx]
		r.idx++
		r.mu.Unlock()
		r.apply(ev)
		n++
	}
}

// Play blocks, sleeping simulated time between events and applying each at
// its scheduled moment — the driver for scaled/real-clock experiments. It
// returns the first accumulated error, if any.
func (r *Run) Play() error {
	for {
		r.mu.Lock()
		if r.idx >= len(r.events) {
			r.mu.Unlock()
			return r.Err()
		}
		ev := r.events[r.idx]
		r.idx++
		r.mu.Unlock()
		if wait := ev.At - r.p.clk.Since(r.start); wait > 0 {
			r.p.clk.Sleep(wait)
		}
		r.apply(ev)
	}
}

// Go runs Play on its own goroutine and delivers its result.
func (r *Run) Go() <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- r.Play() }()
	return ch
}

// Done reports whether every event has been applied.
func (r *Run) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.idx >= len(r.events)
}

// Err returns the accumulated event errors joined, or nil.
func (r *Run) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return errors.Join(r.errs...)
}

// apply executes one event, sweeps newly-disallowed links, and records
// the outcome in the plane trace. The sweep's broken-link count is NOT
// recorded: transient protocol connections are torn down by background
// responder goroutines, so whether the sweep or the teardown reaps a
// dying link is a scheduling race — the trace holds only the
// deterministic facts (what fired, when, and whether it errored).
func (r *Run) apply(ev Event) {
	err := ev.Do.apply(r.p)
	r.p.w.CheckLinks()
	line := fmt.Sprintf("t=%s %s", ev.At, ev.Do)
	if err != nil {
		line += " err=" + err.Error()
		r.mu.Lock()
		r.errs = append(r.errs, fmt.Errorf("faultplane: t=%s %s: %w", ev.At, ev.Do, err))
		r.mu.Unlock()
	}
	r.p.record(line)
}
