package simnet

import (
	"math"
	"time"

	"peerhood/internal/geo"
)

// The event scheduler replaces per-tick polling in the sharded world: a
// node only costs work when something about it can actually change. Two
// wake-up kinds exist, both derived from mobility.SpeedBounded:
//
//   - evCrossing: the earliest time a node's true position could drift
//     further than the region slack from its bucketed region, at which
//     point it must be re-bucketed so 3x3-region candidate queries stay a
//     superset of the in-range set (the same drift-bounded-exactness
//     argument as the PR 1 grid, at region granularity).
//   - evDiscovery: a node's periodic inquiry round.
//
// A stationary node (speed bound 0) never generates crossing events, and
// a passive node (DiscoveryEvery 0) never generates discovery events, so
// idle nodes cost nothing per superstep. Established links are likewise
// re-checked on a schedule — the earliest time the pair's closing speed
// could carry them out of mutual coverage — kept in a separate serial
// queue drained during the merge phase.

type eventKind uint8

const (
	// evCrossing re-buckets a node before its drift exceeds the slack.
	evCrossing eventKind = iota
	// evDiscovery runs one node's periodic inquiry round.
	evDiscovery
)

// shardEvent is one scheduled wake-up in a shard's queue.
type shardEvent struct {
	at   time.Duration
	node NodeID
	kind eventKind
}

// eventBefore orders events by (time, node, kind); the total order makes
// within-shard processing — and therefore RNG consumption per node —
// independent of insertion order.
func eventBefore(a, b shardEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.kind < b.kind
}

// eventQueue is a binary min-heap of shardEvents.
type eventQueue struct{ h []shardEvent }

func (q *eventQueue) len() int { return len(q.h) }

func (q *eventQueue) push(e shardEvent) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *eventQueue) peek() (shardEvent, bool) {
	if len(q.h) == 0 {
		return shardEvent{}, false
	}
	return q.h[0], true
}

func (q *eventQueue) pop() shardEvent {
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && eventBefore(q.h[l], q.h[small]) {
			small = l
		}
		if r < last && eventBefore(q.h[r], q.h[small]) {
			small = r
		}
		if small == i {
			break
		}
		q.h[i], q.h[small] = q.h[small], q.h[i]
		i = small
	}
	return top
}

// distToCellEdge returns the distance from p to the nearest boundary of
// cell c on a grid of the given size. A point exactly on an edge — or
// outside the cell entirely — is at distance 0.
func distToCellEdge(p geo.Point, c geo.Cell, size float64) float64 {
	minX, minY := float64(c.CX)*size, float64(c.CY)*size
	d := math.Min(
		math.Min(p.X-minX, minX+size-p.X),
		math.Min(p.Y-minY, minY+size-p.Y),
	)
	return math.Max(0, d)
}

// minCrossingDelay keeps a node sitting exactly on a cell edge from
// scheduling a zero-delay self-wakeup loop within one superstep.
const minCrossingDelay = time.Millisecond

// crossingAfter returns how long a node at p, bucketed in cell c and
// moving at most speed m/s, is guaranteed to stay within slackEff metres
// of c — the delay until its next boundary-crossing event must fire. The
// second return is false for stationary nodes (speed bound 0): they never
// need re-bucketing.
//
// slackEff is the region slack minus one superstep of worst-case motion:
// an event due mid-superstep is only applied at the superstep's end, so
// that much drift budget must be held in reserve for the wake-up latency.
func crossingAfter(p geo.Point, c geo.Cell, size, speed, slackEff float64) (time.Duration, bool) {
	if speed <= 0 {
		return 0, false
	}
	if math.IsInf(speed, 1) {
		// No bound: the caller keeps such nodes unbucketed instead.
		return 0, false
	}
	secs := (distToCellEdge(p, c, size) + slackEff) / speed
	d := time.Duration(secs * float64(time.Second))
	if d < minCrossingDelay {
		d = minCrossingDelay
	}
	return d, true
}

// linkCheckAfter returns how long an established link over a technology
// with the given coverage radius cannot possibly break by movement: the
// remaining range margin divided by the pair's combined speed bound. The
// second return is false when both endpoints are stationary — such links
// are only re-checked by forced sweeps (fault events, crashes). quantum
// floors the delay: a link already at the edge is re-checked every
// superstep, never busily within one.
func linkCheckAfter(dist, radius, closing float64, quantum time.Duration) (time.Duration, bool) {
	if closing <= 0 {
		return 0, false
	}
	if math.IsInf(closing, 1) {
		return quantum, true
	}
	margin := radius - dist
	if margin < 0 {
		margin = 0
	}
	d := time.Duration(margin / closing * float64(time.Second))
	if d < quantum {
		d = quantum
	}
	return d, true
}
