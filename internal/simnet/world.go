// Package simnet simulates the wireless world PeerHood runs in: devices
// with positions and mobility models, radios with per-technology coverage
// and link quality, Bluetooth-style inquiry (including its discovery
// asymmetry), lossy slow connection establishment, and bandwidth-limited
// duplex links that break when devices move out of range.
//
// It substitutes for the thesis' physical testbed (laptops and phones with
// Bluetooth radios); every stochastic parameter is calibrated to the numbers
// the thesis reports — see TechParams.
package simnet

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/rng"
	"peerhood/internal/telemetry"
)

// Errors returned by dialing and link operations.
var (
	// ErrNoSuchRadio reports a dial to an address that does not exist.
	ErrNoSuchRadio = errors.New("simnet: no such radio")
	// ErrOutOfRange reports that the target radio is beyond coverage.
	ErrOutOfRange = errors.New("simnet: target out of coverage")
	// ErrConnectFault reports a stochastic connection-establishment failure
	// (the thesis' "normal Bluetooth connection fault", §4.3).
	ErrConnectFault = errors.New("simnet: connection fault")
	// ErrRefused reports that nothing is listening on the target port.
	ErrRefused = errors.New("simnet: connection refused")
	// ErrRadioDown reports that an endpoint's radio is powered off.
	ErrRadioDown = errors.New("simnet: radio down")
	// ErrLinkLost reports that an established link broke, typically because
	// a device moved out of coverage.
	ErrLinkLost = errors.New("simnet: link lost")
	// ErrClosed reports use of a closed connection or listener.
	ErrClosed = errors.New("simnet: closed")
	// ErrTechMismatch reports a dial whose source and target radios use
	// different technologies.
	ErrTechMismatch = errors.New("simnet: technology mismatch")
)

// acceptBacklog bounds pending, not-yet-accepted connections per listener,
// like a TCP accept backlog. Dials beyond it are refused.
const acceptBacklog = 16

// Stats counts world-level events; experiments read them to report traffic
// and fault figures.
type Stats struct {
	Inquiries         int64
	InquiryResponses  int64
	DialsAttempted    int64
	DialsSucceeded    int64
	DialsFaulted      int64
	DialsOutOfRange   int64
	DialsRefused      int64
	LinksBroken       int64
	BytesWritten      int64
	MessagesDelivered int64
	// MessagesDropped counts writes silently lost to link impairments
	// (fault injection; see Impairment).
	MessagesDropped int64
	// GridRefreshes counts full re-indexing passes of the spatial grid;
	// InquiryCandidates sums the radios examined per inquiry (for a full
	// scan this grows by the world's radio count each inquiry, for the
	// grid only by the 3x3-cell occupancy).
	GridRefreshes     int64
	InquiryCandidates int64
}

// Option configures a World.
type Option func(*World)

// WithParams overrides the parameters for one technology.
func WithParams(t device.Tech, p TechParams) Option {
	return func(w *World) { w.params[t] = p }
}

// WithQualityNoise sets the standard deviation of the Gaussian noise added
// to link-quality readings (default 3).
func WithQualityNoise(stddev float64) Option {
	return func(w *World) { w.qualityNoise = stddev }
}

// WithLinearScan disables the spatial grid index: inquiries fall back to
// scanning every radio in the world, as the original implementation did.
// It exists as the reference behaviour for equivalence tests and for A/B
// benchmarking the grid.
func WithLinearScan() Option {
	return func(w *World) { w.linearScan = true }
}

// World is the simulated radio environment. All methods are safe for
// concurrent use.
type World struct {
	clk   clock.Clock
	src   *rng.Source
	epoch time.Time

	mu           sync.Mutex
	devices      map[string]*Device
	radios       map[device.Addr]*Radio
	radioOrder   []*Radio // insertion order, for deterministic iteration
	techRadios   map[device.Tech][]*Radio
	grids        map[device.Tech]*radioGrid
	maxSpeed     float64 // upper bound on any device's speed, m/s
	speedDirty   bool    // maxSpeed may be stale-high; recompute lazily
	linearScan   bool
	listeners    map[listenKey]*Listener
	links        map[int64]*link
	nextLinkID   int64
	macSeq       int
	params       map[device.Tech]TechParams
	qualityNoise float64
	stats        Stats
	// linkFilter, when set, vetoes radio pairs: a pair it rejects cannot
	// discover each other, dial, or keep an established link (fault
	// injection: partitions, regional blackouts).
	linkFilter func(a, b *Radio) bool
	// impairments maps a directional radio pair to the impairment applied
	// to links dialed between them (see SetLinkImpairment).
	impairments map[impairKey]Impairment

	// Telemetry handles, resolved by Instrument; nil-safe, so an
	// uninstrumented world pays one branch per event. They mirror the
	// Stats fields that matter to live scrapes: frame fates, wire bytes,
	// dial outcomes, and link breaks.
	tFramesDelivered *telemetry.Counter
	tFramesDropped   *telemetry.Counter
	tBytes           *telemetry.Counter
	tDialsOK         *telemetry.Counter
	tDialsFaulted    *telemetry.Counter
	tDialsRefused    *telemetry.Counter
	tDialsRange      *telemetry.Counter
	tLinksBroken     *telemetry.Counter

	checkStop chan struct{}
	checkDone chan struct{}
}

// Instrument resolves the world's telemetry handles against reg, so frame
// deliveries, impairment drops, dial outcomes, and link breaks surface as
// live counters next to the per-daemon ones. Call before traffic flows;
// a nil registry leaves the world uninstrumented.
func (w *World) Instrument(reg *telemetry.Registry) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tFramesDelivered = reg.Counter(`peerhood_simnet_frames_total{result="delivered"}`)
	w.tFramesDropped = reg.Counter(`peerhood_simnet_frames_total{result="dropped"}`)
	w.tBytes = reg.Counter(`peerhood_simnet_bytes_total`)
	w.tDialsOK = reg.Counter(`peerhood_simnet_dials_total{result="ok"}`)
	w.tDialsFaulted = reg.Counter(`peerhood_simnet_dials_total{result="faulted"}`)
	w.tDialsRefused = reg.Counter(`peerhood_simnet_dials_total{result="refused"}`)
	w.tDialsRange = reg.Counter(`peerhood_simnet_dials_total{result="out-of-range"}`)
	w.tLinksBroken = reg.Counter(`peerhood_simnet_links_broken_total`)
}

type listenKey struct {
	addr device.Addr
	port uint16
}

// NewWorld creates an empty world on clk with deterministic randomness
// derived from seed.
func NewWorld(clk clock.Clock, seed int64, opts ...Option) *World {
	w := &World{
		clk:          clk,
		src:          rng.New(seed),
		epoch:        clk.Now(),
		devices:      make(map[string]*Device),
		radios:       make(map[device.Addr]*Radio),
		techRadios:   make(map[device.Tech][]*Radio),
		grids:        make(map[device.Tech]*radioGrid),
		listeners:    make(map[listenKey]*Listener),
		links:        make(map[int64]*link),
		params:       make(map[device.Tech]TechParams),
		impairments:  make(map[impairKey]Impairment),
		qualityNoise: 3,
	}
	for _, t := range device.Techs() {
		w.params[t] = DefaultParams(t)
	}
	for _, o := range opts {
		o(w)
	}
	return w
}

// Clock returns the world's clock.
func (w *World) Clock() clock.Clock { return w.clk }

// Params returns the parameters in force for t.
func (w *World) Params(t device.Tech) TechParams {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.params[t]
}

// SetParams replaces the parameters for t at runtime (experiments sweep
// connection-latency profiles this way). Existing links keep their
// bandwidth; new dials and inquiries use the new values.
func (w *World) SetParams(t device.Tech, p TechParams) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.params[t].CoverageRadius != p.CoverageRadius {
		// Cell size derives from the radius; drop the grid and let the
		// next query rebuild it at the new granularity.
		delete(w.grids, t)
	}
	w.params[t] = p
}

// SetLinkFilter installs (or, with nil, clears) a radio-pair veto: a pair
// the filter rejects cannot discover each other, dial, or keep an
// established link — existing links between vetoed pairs are broken
// immediately. The fault plane composes partitions and regional blackouts
// into this single hook; the filter must be symmetric in its arguments and
// must not call back into the World.
func (w *World) SetLinkFilter(f func(a, b *Radio) bool) {
	w.mu.Lock()
	w.linkFilter = f
	w.mu.Unlock()
	if f != nil {
		w.CheckLinks()
	}
}

// allowedLocked reports whether the link filter permits the pair. Callers
// hold w.mu.
func (w *World) allowedLocked(a, b *Radio) bool {
	return w.linkFilter == nil || w.linkFilter(a, b)
}

// allowed is allowedLocked for callers not holding w.mu.
func (w *World) allowed(a, b *Radio) bool {
	w.mu.Lock()
	f := w.linkFilter
	w.mu.Unlock()
	return f == nil || f(a, b)
}

// Stats returns a snapshot of the world counters.
func (w *World) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// ResetStats zeroes the world counters (used between experiment phases).
func (w *World) ResetStats() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stats = Stats{}
}

// AddDevice adds a named device following the given mobility model.
func (w *World) AddDevice(name string, model mobility.Model) (*Device, error) {
	if model == nil {
		model = mobility.Static{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.devices[name]; dup {
		return nil, fmt.Errorf("simnet: duplicate device %q", name)
	}
	d := &Device{
		w:         w,
		name:      name,
		model:     model,
		modelBase: w.clk.Now(),
		speed:     mobility.MaxSpeedOf(model),
		radios:    make(map[device.Tech]*Radio),
	}
	w.devices[name] = d
	w.maxSpeed = math.Max(w.maxSpeed, d.speed)
	return d, nil
}

// Device returns the named device.
func (w *World) Device(name string) (*Device, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	d, ok := w.devices[name]
	return d, ok
}

// FindRadio resolves an address to its radio.
func (w *World) FindRadio(a device.Addr) (*Radio, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	r, ok := w.radios[a]
	return r, ok
}

// Device is one simulated terminal. It may carry several radios (one per
// technology), mirroring PeerHood's multi-plugin design.
type Device struct {
	w    *World
	name string

	mu        sync.Mutex
	model     mobility.Model
	modelBase time.Time
	speed     float64 // model's speed bound, m/s (+Inf if unknown)
	down      bool
	radios    map[device.Tech]*Radio
}

// speedBound returns the current model's speed bound.
func (d *Device) speedBound() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.speed
}

// Name returns the device's name.
func (d *Device) Name() string { return d.name }

// AddRadio attaches a radio of technology t, assigning it a fresh MAC.
func (d *Device) AddRadio(t device.Tech) (*Radio, error) {
	if !t.Valid() {
		return nil, fmt.Errorf("simnet: invalid technology %v", t)
	}
	d.w.mu.Lock()
	d.w.macSeq++
	mac := fmt.Sprintf("02:70:68:%02x:%02x:%02x",
		(d.w.macSeq>>16)&0xff, (d.w.macSeq>>8)&0xff, d.w.macSeq&0xff)
	d.w.mu.Unlock()

	d.mu.Lock()
	if _, dup := d.radios[t]; dup {
		d.mu.Unlock()
		return nil, fmt.Errorf("simnet: device %q already has a %v radio", d.name, t)
	}
	r := &Radio{w: d.w, dev: d, addr: device.Addr{Tech: t, MAC: mac}}
	d.radios[t] = r
	d.mu.Unlock()

	d.w.mu.Lock()
	r.order = len(d.w.radioOrder)
	d.w.radios[r.addr] = r
	d.w.radioOrder = append(d.w.radioOrder, r)
	d.w.techRadios[t] = append(d.w.techRadios[t], r)
	if g := d.w.grids[t]; g != nil {
		// Position is sampled under w.mu so no grid refresh can slip in
		// between sampling and insertion and undercount this radio's
		// drift.
		g.insert(r, d.Position())
	}
	d.w.mu.Unlock()
	return r, nil
}

// Radio returns the device's radio for t, if any.
func (d *Device) Radio(t device.Tech) (*Radio, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.radios[t]
	return r, ok
}

// Position returns the device's current position.
func (d *Device) Position() geo.Point {
	d.mu.Lock()
	model, base := d.model, d.modelBase
	d.mu.Unlock()
	return model.PositionAt(d.w.clk.Since(base))
}

// SetModel replaces the device's mobility model; the new model's elapsed
// time starts now. Used to script scenarios ("at t=30s, start walking").
func (d *Device) SetModel(model mobility.Model) {
	if model == nil {
		model = mobility.Static{At: d.Position()}
	}
	speed := mobility.MaxSpeedOf(model)
	w := d.w

	// The new model may place the device arbitrarily far from the old
	// one. Model swap and grid re-bucketing happen under one w.mu
	// critical section so no concurrent query can see the new positions
	// through the old buckets.
	w.mu.Lock()
	defer w.mu.Unlock()
	d.mu.Lock()
	d.model = model
	d.modelBase = w.clk.Now()
	d.speed = speed
	radios := make([]*Radio, 0, len(d.radios))
	for _, r := range d.radios {
		radios = append(radios, r)
	}
	d.mu.Unlock()

	if speed >= w.maxSpeed {
		w.maxSpeed = speed
	} else {
		// The device may have been the fastest. Recomputing the supremum
		// here would make scripted mass re-models O(N^2); leave the
		// stale-high (conservative, so still exact) bound and let the
		// next grid query recompute once.
		w.speedDirty = true
	}
	pos := d.Position()
	for _, r := range radios {
		if g := w.grids[r.addr.Tech]; g != nil {
			g.remove(r)
			g.insert(r, pos)
		}
	}
}

// SetDown powers the device's radios off (true) or on (false). Links of a
// downed device break on the next CheckLinks.
func (d *Device) SetDown(down bool) {
	d.mu.Lock()
	d.down = down
	d.mu.Unlock()
}

// IsDown reports whether the device is powered off.
func (d *Device) IsDown() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.down
}

// Radio is one network interface of a device.
type Radio struct {
	w    *World
	dev  *Device
	addr device.Addr

	// order is the radio's world-wide insertion index; grid queries sort
	// candidates by it so they visit radios in the same relative order the
	// full scan does. Immutable after AddRadio.
	order int

	// inquiringUntil is guarded by w.mu.
	inquiringUntil time.Time
}

// Addr returns the radio's address.
func (r *Radio) Addr() device.Addr { return r.addr }

// Device returns the radio's owner.
func (r *Radio) Device() *Device { return r.dev }

// Tech returns the radio's technology.
func (r *Radio) Tech() device.Tech { return r.addr.Tech }

// InquiryResult is one response to a device-discovery inquiry.
type InquiryResult struct {
	Addr    device.Addr
	Quality int
}

// Inquire performs one device-discovery inquiry: it occupies the radio for
// the technology's InquiryDuration (during which, for asymmetric
// technologies, this radio is not discoverable by others — §3.4.2), then
// returns the discoverable in-range radios that responded.
func (r *Radio) Inquire() []InquiryResult {
	p := r.w.Params(r.addr.Tech)

	r.w.mu.Lock()
	start := r.w.clk.Now()
	r.inquiringUntil = start.Add(p.InquiryDuration)
	r.w.stats.Inquiries++
	r.w.mu.Unlock()

	if p.InquiryDuration > 0 {
		r.w.clk.Sleep(p.InquiryDuration)
	}

	if r.dev.IsDown() {
		return nil
	}
	selfPos := r.dev.Position()

	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	// Re-read the params under w.mu: a concurrent SetParams during the
	// inquiry sleep may have changed the coverage radius (and rebuilt the
	// grid to match), and the distance filter below must use the same
	// radius the grid's cell geometry covers.
	p = r.w.params[r.addr.Tech]
	// The grid narrows the scan to the 3x3 cell neighbourhood around the
	// inquirer; under WithLinearScan every radio in the world is a
	// candidate, as in the original implementation (the candidates
	// counter still only counts same-technology radios, so grid-vs-scan
	// comparisons stay apples to apples).
	var candidates []*Radio
	if r.w.linearScan {
		candidates = r.w.radioOrder
		r.w.stats.InquiryCandidates += int64(len(r.w.techRadios[r.addr.Tech]))
	} else {
		candidates = r.w.gridLocked(r.addr.Tech).candidates(selfPos, r.w.techRadios[r.addr.Tech])
		r.w.stats.InquiryCandidates += int64(len(candidates))
	}
	var out []InquiryResult
	for _, other := range candidates {
		if other == r || other.addr.Tech != r.addr.Tech || other.dev == r.dev {
			continue
		}
		if other.dev.IsDown() {
			continue
		}
		if !r.w.allowedLocked(r, other) {
			continue
		}
		// Asymmetric technologies: a radio whose own inquiry overlapped any
		// part of our inquiry window was not discoverable during it.
		if p.Asymmetric && other.inquiringUntil.After(start) {
			continue
		}
		d := selfPos.Dist(other.dev.Position())
		if d > p.CoverageRadius {
			continue
		}
		if !r.w.src.Bool(p.ResponseProb) {
			continue
		}
		q := r.w.qualityAtLocked(d, p)
		out = append(out, InquiryResult{Addr: other.addr, Quality: q})
		r.w.stats.InquiryResponses++
	}
	return out
}

// QualityTo returns the current link quality between this radio and the
// addressed one, or 0 if it is out of range, down, or missing.
func (r *Radio) QualityTo(a device.Addr) int {
	other, ok := r.w.FindRadio(a)
	if !ok || other.addr.Tech != r.addr.Tech {
		return 0
	}
	if r.dev.IsDown() || other.dev.IsDown() {
		return 0
	}
	if !r.w.allowed(r, other) {
		return 0
	}
	p := r.w.Params(r.addr.Tech)
	d := r.dev.Position().Dist(other.dev.Position())
	if d > p.CoverageRadius {
		return 0
	}
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	return r.w.qualityAtLocked(d, p)
}

// qualityAtLocked maps distance to the 0–255 quality scale with Gaussian
// noise. Callers hold w.mu.
func (w *World) qualityAtLocked(dist float64, p TechParams) int {
	return qualityAt(dist, p, w.qualityNoise, w.src)
}

// qualityAt maps distance to the 0–255 quality scale, adding Gaussian
// noise of the given stddev sampled from src. It is the single quality
// model shared by the classic World and the ShardedWorld.
func qualityAt(dist float64, p TechParams, noise float64, src *rng.Source) int {
	if dist > p.CoverageRadius {
		return 0
	}
	frac := 0.0
	if p.CoverageRadius > 0 {
		frac = dist / p.CoverageRadius
	}
	base := float64(p.EdgeQuality) + (QualityMax-float64(p.EdgeQuality))*(1-frac)
	if noise > 0 {
		base = src.Normal(base, noise)
	}
	return int(rng.Clamp(base, 0, QualityMax))
}

// Listener accepts incoming connections on one (radio, port).
type Listener struct {
	w      *World
	key    listenKey
	accept chan *Conn
	closed chan struct{}

	closeOnce sync.Once
}

// Listen starts accepting connections on the given port of this radio.
func (r *Radio) Listen(port uint16) (*Listener, error) {
	key := listenKey{addr: r.addr, port: port}
	l := &Listener{
		w:      r.w,
		key:    key,
		accept: make(chan *Conn, acceptBacklog),
		closed: make(chan struct{}),
	}
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	if _, dup := r.w.listeners[key]; dup {
		return nil, fmt.Errorf("simnet: port %d already bound on %v", port, r.addr)
	}
	r.w.listeners[key] = l
	return l, nil
}

// Accept blocks until a connection arrives or the listener closes.
func (l *Listener) Accept() (*Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

// Close stops the listener. Pending un-accepted connections are broken.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		l.w.mu.Lock()
		delete(l.w.listeners, l.key)
		l.w.mu.Unlock()
		close(l.closed)
		for {
			select {
			case c := <-l.accept:
				c.link.breakWith(ErrRefused)
			default:
				return
			}
		}
	})
	return nil
}

// Dial connects this radio to a service port on the addressed radio. It
// blocks for the sampled connection-establishment latency, may fail with
// ErrConnectFault (per TechParams.FaultProb), and re-checks coverage after
// the latency has elapsed — a device that walked away during the 3–18 s
// Bluetooth setup window produces ErrOutOfRange exactly as the thesis
// observed (§5.2.1).
func (r *Radio) Dial(to device.Addr, port uint16) (*Conn, error) {
	w := r.w
	w.mu.Lock()
	w.stats.DialsAttempted++
	w.mu.Unlock()

	if to.Tech != r.addr.Tech {
		return nil, fmt.Errorf("%w: %v -> %v", ErrTechMismatch, r.addr.Tech, to.Tech)
	}
	p := w.Params(r.addr.Tech)

	check := func() (*Radio, error) {
		target, ok := w.FindRadio(to)
		if !ok {
			return nil, fmt.Errorf("%w: %v", ErrNoSuchRadio, to)
		}
		if r.dev.IsDown() || target.dev.IsDown() {
			return nil, ErrRadioDown
		}
		if d := r.dev.Position().Dist(target.dev.Position()); d > p.CoverageRadius {
			w.mu.Lock()
			w.stats.DialsOutOfRange++
			w.tDialsRange.Inc()
			w.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrOutOfRange, to)
		}
		// A filtered pair (partition, blackout) is indistinguishable from
		// an out-of-coverage one at the radio level.
		if !w.allowed(r, target) {
			w.mu.Lock()
			w.stats.DialsOutOfRange++
			w.tDialsRange.Inc()
			w.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrOutOfRange, to)
		}
		return target, nil
	}

	if _, err := check(); err != nil {
		return nil, err
	}

	// Connection-establishment latency, sampled uniformly per the thesis'
	// observed range.
	lat := time.Duration(w.src.Uniform(float64(p.ConnectMin), float64(p.ConnectMax)+1))
	if lat > 0 {
		w.clk.Sleep(lat)
	}

	if w.src.Bool(p.FaultProb) {
		w.mu.Lock()
		w.stats.DialsFaulted++
		w.tDialsFaulted.Inc()
		w.mu.Unlock()
		return nil, fmt.Errorf("%w: dialing %v", ErrConnectFault, to)
	}

	target, err := check()
	if err != nil {
		return nil, err
	}

	w.mu.Lock()
	l, ok := w.listeners[listenKey{addr: to, port: port}]
	if !ok {
		w.stats.DialsRefused++
		w.tDialsRefused.Inc()
		w.mu.Unlock()
		return nil, fmt.Errorf("%w: %v port %d", ErrRefused, to, port)
	}
	w.nextLinkID++
	lk := newLink(w, w.nextLinkID, r, target, p.Bandwidth)
	if imp, ok := w.impairmentForLocked(r.addr, to); ok {
		lk.a.imp = newImpairState(imp, w.src.Fork(), w.clk.Now())
	}
	if imp, ok := w.impairmentForLocked(to, r.addr); ok {
		lk.b.imp = newImpairState(imp, w.src.Fork(), w.clk.Now())
	}
	w.links[lk.id] = lk
	w.stats.DialsSucceeded++
	w.tDialsOK.Inc()
	w.mu.Unlock()

	// Hand the server endpoint to the listener. The buffered channel models
	// an accept backlog; once it is full the dialer blocks until the server
	// accepts or the listener closes, like a saturated TCP SYN queue.
	select {
	case l.accept <- lk.b:
	case <-l.closed:
		lk.breakWith(ErrRefused)
		w.mu.Lock()
		w.stats.DialsRefused++
		w.tDialsRefused.Inc()
		w.mu.Unlock()
		return nil, fmt.Errorf("%w: %v port %d", ErrRefused, to, port)
	}
	return lk.a, nil
}

// CheckLinks breaks every established link whose endpoints are no longer in
// mutual coverage (or whose devices are down). It returns the number of
// links broken. Experiments run it from StartAutoCheck; deterministic tests
// call it directly after moving devices.
func (w *World) CheckLinks() int {
	w.mu.Lock()
	var doomed []*link
	for _, lk := range w.links {
		if !w.linkAliveLocked(lk) {
			doomed = append(doomed, lk)
		}
	}
	w.mu.Unlock()

	for _, lk := range doomed {
		lk.breakWith(ErrLinkLost)
	}
	return len(doomed)
}

func (w *World) linkAliveLocked(lk *link) bool {
	ra, rb := lk.a.local, lk.b.local
	if ra.dev.IsDown() || rb.dev.IsDown() {
		return false
	}
	if !w.allowedLocked(ra, rb) {
		return false
	}
	p := w.params[ra.addr.Tech]
	// Grid fast path: endpoints bucketed far enough apart are certainly
	// out of range even at maximum drift, with no position evaluation.
	// Unusable when the drift bound is unbounded (scanAllRings).
	if !w.linearScan {
		g := w.gridLocked(ra.addr.Tech)
		if g.queryRings != scanAllRings {
			ca, okA := g.loc[ra]
			cb, okB := g.loc[rb]
			if okA && okB && ca.ChebyshevDist(cb) >= g.deadCheb {
				return false
			}
		}
	}
	return ra.dev.Position().Dist(rb.dev.Position()) <= p.CoverageRadius
}

// StartAutoCheck launches a background goroutine that runs CheckLinks every
// interval of simulated time, until Close is called. It is idempotent.
func (w *World) StartAutoCheck(interval time.Duration) {
	w.mu.Lock()
	if w.checkStop != nil {
		w.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	w.checkStop, w.checkDone = stop, done
	w.mu.Unlock()

	go func() {
		defer close(done)
		tk := w.clk.NewTicker(interval)
		defer tk.Stop()
		for {
			select {
			case <-tk.C():
				w.CheckLinks()
			case <-stop:
				return
			}
		}
	}()
}

// Close stops the auto-checker (if running) and breaks every live link.
func (w *World) Close() error {
	w.mu.Lock()
	stop, done := w.checkStop, w.checkDone
	w.checkStop, w.checkDone = nil, nil
	links := make([]*link, 0, len(w.links))
	for _, lk := range w.links {
		links = append(links, lk)
	}
	w.mu.Unlock()

	if stop != nil {
		close(stop)
		<-done
	}
	for _, lk := range links {
		lk.breakWith(ErrClosed)
	}
	return nil
}

// removeLink drops a dead link from the registry.
func (w *World) removeLink(id int64) {
	w.mu.Lock()
	delete(w.links, id)
	w.stats.LinksBroken++
	w.tLinksBroken.Inc()
	w.mu.Unlock()
}

// ActiveLinks reports how many links are currently established.
func (w *World) ActiveLinks() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.links)
}
