package simnet

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
)

// connTestWorld builds a two-node sharded world with the nodes a known
// distance apart on WLAN.
func connTestWorld(t *testing.T, dist float64) (*ShardedWorld, NodeID, NodeID) {
	t.Helper()
	w := NewShardedWorld(ShardedConfig{Seed: 7})
	t.Cleanup(func() { _ = w.Close() })
	a, err := w.AddNode(ShardNodeSpec{
		Name: "a", Model: mobility.Static{At: geo.Pt(0, 0)},
		Techs: []device.Tech{device.TechWLAN},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.AddNode(ShardNodeSpec{
		Name: "b", Model: mobility.Static{At: geo.Pt(dist, 0)},
		Techs: []device.Tech{device.TechWLAN},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Step() // initialise regions and position snapshots
	return w, a, b
}

// TestShardConnCarriesBytes: the sharded transport moves real framed
// bytes both ways, counts them in ShardStats, reports live quality, and
// closes with classic Conn semantics (peer drains then sees EOF).
func TestShardConnCarriesBytes(t *testing.T) {
	w, a, b := connTestWorld(t, 10)
	l, err := w.Listen(b, device.TechWLAN, 99)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := w.Dial(a, b, device.TechWLAN, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Linked(a, b, device.TechWLAN) {
		t.Fatal("dial did not establish the link")
	}
	cb, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if ca.LocalNode() != a || ca.RemoteNode() != b || cb.LocalNode() != b || cb.RemoteNode() != a {
		t.Fatalf("endpoint identities wrong: %v->%v accepted as %v->%v",
			ca.LocalNode(), ca.RemoteNode(), cb.LocalNode(), cb.RemoteNode())
	}

	msg := []byte("sync-request")
	if _, err := ca.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := cb.Read(buf)
	if err != nil || string(buf[:n]) != string(msg) {
		t.Fatalf("read %q, %v; want %q", buf[:n], err, msg)
	}
	reply := []byte("sync-response-with-more-bytes")
	if _, err := cb.Write(reply); err != nil {
		t.Fatal(err)
	}
	n, err = ca.Read(buf)
	if err != nil || string(buf[:n]) != string(reply) {
		t.Fatalf("read %q, %v; want %q", buf[:n], err, reply)
	}

	st := w.Stats()
	wantBytes := int64(len(msg) + len(reply))
	if st.BytesWritten != wantBytes || st.MessagesDelivered != 2 {
		t.Fatalf("stats bytes=%d msgs=%d, want %d and 2", st.BytesWritten, st.MessagesDelivered, wantBytes)
	}
	if q := ca.Quality(); q <= 0 || q > int(QualityMax) {
		t.Fatalf("quality %d out of range", q)
	}

	// Close semantics: cb drains what ca wrote, then sees EOF.
	if _, err := ca.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	_ = ca.Close()
	if n, err := cb.Read(buf); err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("drain read %q, %v", buf[:n], err)
	}
	if _, err := cb.Read(buf); err != io.EOF {
		t.Fatalf("read after peer close = %v, want io.EOF", err)
	}
	_ = cb.Close()
	if w.conns[linkKeyOf(a, b, device.TechWLAN)] != nil {
		t.Fatal("closed stream pair not retired from the registry")
	}
	if !w.Linked(a, b, device.TechWLAN) {
		t.Fatal("closing the stream tore down the link itself")
	}
}

// TestShardConnDialFailures pins the classic outcome classes: no
// listener is refusal, out of coverage is unreachable, and the transport
// registries stay empty for pure simulation worlds.
func TestShardConnDialFailures(t *testing.T) {
	w, a, b := connTestWorld(t, 10)
	if _, err := w.Dial(a, b, device.TechWLAN, 7); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial with no listener = %v, want ErrRefused", err)
	}
	far, err := w.AddNode(ShardNodeSpec{
		Name: "far", Model: mobility.Static{At: geo.Pt(1e6, 0)},
		Techs: []device.Tech{device.TechWLAN},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Listen(far, device.TechWLAN, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Dial(a, far, device.TechWLAN, 7); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("dial out of coverage = %v, want ErrOutOfRange", err)
	}
	if _, err := w.Dial(a, b, device.TechGPRS, 7); !errors.Is(err, ErrTechMismatch) {
		t.Fatalf("dial on absent tech = %v, want ErrTechMismatch", err)
	}
	if w.conns != nil {
		t.Fatal("failed dials left stream registrations behind")
	}
}

// TestShardConnBreaksWithLink: when the link a stream rides on goes away
// (here via a power-down and the forced sweep the fault plane runs),
// both endpoints fail with ErrLinkLost, exactly like the classic Conn.
func TestShardConnBreaksWithLink(t *testing.T) {
	w, a, b := connTestWorld(t, 10)
	l, err := w.Listen(b, device.TechWLAN, 99)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := w.Dial(a, b, device.TechWLAN, 99)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	w.SetDown(b, true)
	if n := w.CheckLinks(); n != 1 {
		t.Fatalf("CheckLinks broke %d links, want 1", n)
	}
	buf := make([]byte, 8)
	if _, err := ca.Read(buf); !errors.Is(err, ErrLinkLost) {
		t.Fatalf("read on broken link = %v, want ErrLinkLost", err)
	}
	if _, err := cb.Write([]byte("x")); !errors.Is(err, ErrLinkLost) {
		t.Fatalf("write on broken link = %v, want ErrLinkLost", err)
	}
	if ca.Quality() != 0 {
		t.Fatalf("broken stream quality %d, want 0", ca.Quality())
	}
	if len(w.conns) != 0 {
		t.Fatal("broken link left stream registrations behind")
	}
}

// TestShardConnImpairmentDropsFrames: a loss profile on one direction
// drops whole frames from that writer while the reverse path stays
// clean, with drops counted in ShardStats.
func TestShardConnImpairmentDropsFrames(t *testing.T) {
	w, a, b := connTestWorld(t, 10)
	l, err := w.Listen(b, device.TechWLAN, 99)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := w.Dial(a, b, device.TechWLAN, 99)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	w.SetImpairment(a, b, &Impairment{LossProb: 1})
	for i := 0; i < 3; i++ {
		if _, err := ca.Write([]byte(fmt.Sprintf("frame%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cb.Write([]byte("upstream")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := ca.Read(buf)
	if err != nil || string(buf[:n]) != "upstream" {
		t.Fatalf("reverse direction read %q, %v", buf[:n], err)
	}
	st := w.Stats()
	if st.MessagesDropped != 3 || st.MessagesDelivered != 1 {
		t.Fatalf("dropped=%d delivered=%d, want 3 and 1", st.MessagesDropped, st.MessagesDelivered)
	}
}
