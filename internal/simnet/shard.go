package simnet

import (
	"slices"
	"sort"
	"sync"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/geo"
)

// A superstep runs in two phases. The parallel phase: each shard's worker
// drains its event queue up to the step end, computing effects against the
// frozen pre-step world state (region buckets, node flags, fault state) —
// it mutates nothing shared, and each node's RNG is consumed only by that
// node's own events. The serial merge phase: all effects are applied in
// global (time, node, kind) order, then due link re-checks drain from the
// serial link queue. State transitions therefore never depend on worker
// scheduling, GOMAXPROCS, or the shard count.

// shard is one event-queue partition with its worker's scratch space.
type shard struct {
	q     eventQueue
	out   []effect
	cand  []NodeID
	stats ShardStats

	// Per-superstep candidate cache: every inquirer in one region asks for
	// the same (cell, time) candidate list, and a region's events all drain
	// on the same shard, so the gather+sort+pack cost is paid once per cell
	// per superstep instead of once per inquiry. The packed records also
	// turn the scan itself into a sequential walk over pointer-free memory.
	cands   map[candKey][]candRec
	candBuf []candRec // arena the cached slices are carved from

	// Result arenas, reset each superstep: inquiry results live only
	// until the merge phase hands them to the discovery hook, so carving
	// them from reusable buffers keeps a 100k-node step from allocating
	// tens of thousands of short-lived slices for the collector to chase.
	resBuf []ShardInquiry
	drBuf  []discResult
}

// candKey addresses one cached candidate list.
type candKey struct {
	cell geo.Cell
	at   time.Duration
}

// candRec is one candidate's hot fields, packed for the inquiry scan.
type candRec struct {
	id   NodeID
	pos  geo.Point
	mask uint8
	down bool
}

// effect is one state transition computed in the parallel phase, applied
// in the merge phase.
type effect struct {
	at   time.Duration
	node NodeID
	kind eventKind

	// evCrossing
	newCell geo.Cell

	// nextAt re-arms the event (0 = none).
	nextAt time.Duration

	// evDiscovery: one entry per technology the node inquired on.
	disc []discResult
}

// discResult is one technology's discovery outcome for one node.
type discResult struct {
	tech    device.Tech
	results []ShardInquiry
}

func effectBefore(a, b *effect) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.kind < b.kind
}

// Step advances the world by one superstep (the quantum).
func (w *ShardedWorld) Step() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.initLocked()
	stepEnd := w.now + w.quantum

	// Parallel phase: one worker per shard with due events. Workers read
	// world state frozen under w.mu (held here across the whole step) and
	// write only their shard's private effect buffer.
	var wg sync.WaitGroup
	due := false
	for _, sh := range w.shards {
		sh.out = sh.out[:0]
		sh.candBuf = sh.candBuf[:0]
		sh.resBuf = sh.resBuf[:0]
		sh.drBuf = sh.drBuf[:0]
		if sh.cands == nil {
			sh.cands = make(map[candKey][]candRec)
		} else {
			clear(sh.cands)
		}
		if ev, ok := sh.q.peek(); ok && ev.at <= stepEnd {
			due = true
		}
	}
	if e, ok := w.linkq.peek(); ok && e.at <= stepEnd {
		due = true
	}
	if due || w.cfg.BruteForce {
		// An idle superstep (no events, no link checks) skips the
		// snapshot entirely, keeping the do-nothing step O(1).
		w.snapshotPositionsLocked(stepEnd)
	}
	for _, sh := range w.shards {
		if ev, ok := sh.q.peek(); !ok || ev.at > stepEnd {
			continue
		}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.run(w, stepEnd)
		}(sh)
	}
	wg.Wait()

	w.mergeLocked(stepEnd)
	w.now = stepEnd
	w.stats.Steps++
	if w.cfg.BruteForce {
		w.rebucketAllLocked()
	}
	w.expireBlackoutsLocked()
}

// StepUntil advances the world to at least t.
func (w *ShardedWorld) StepUntil(t time.Duration) {
	for w.Now() < t {
		w.Step()
	}
}

// run drains the shard's due events, appending effects to sh.out.
func (sh *shard) run(w *ShardedWorld, stepEnd time.Duration) {
	for {
		ev, ok := sh.q.peek()
		if !ok || ev.at > stepEnd {
			return
		}
		sh.q.pop()
		n := &w.nodes[ev.node]
		switch ev.kind {
		case evCrossing:
			// Evaluated at stepEnd — the time the rebucket is applied —
			// so the fresh bucket starts with zero drift.
			pos := w.posAt(ev.node, stepEnd)
			nc := geo.CellOf(pos, w.regionSize)
			e := effect{at: ev.at, node: ev.node, kind: evCrossing, newCell: nc}
			if delay, ok := crossingAfter(pos, nc, w.regionSize, n.speed, n.slackEff); ok {
				e.nextAt = stepEnd + delay
			}
			sh.out = append(sh.out, e)
			sh.stats.Rebuckets++
		case evDiscovery:
			e := effect{at: ev.at, node: ev.node, kind: evDiscovery, nextAt: ev.at + n.every}
			e.disc = sh.inquire(w, n, ev.at)
			sh.out = append(sh.out, e)
		}
	}
}

// inquire runs one node's discovery round at time at: one inquiry per
// technology the node carries, against the 3x3 region neighbourhood of
// its current position plus the unbucketed always-candidates. Candidates
// are visited in ascending NodeID order, so the node's RNG consumption —
// and therefore the whole run — is independent of bucket geometry; the
// pre-RNG filters (tech, power, fault state, exact distance) mirror the
// classic Radio.Inquire.
func (sh *shard) inquire(w *ShardedWorld, n *shardNode, at time.Duration) []discResult {
	sh.stats.Inquiries += int64(len(n.techs))
	dstart := len(sh.drBuf)
	for _, t := range n.techs {
		sh.drBuf = append(sh.drBuf, discResult{tech: t})
	}
	// Carve with full slice expressions: growing the arena later must not
	// alias the slices already handed out.
	out := sh.drBuf[dstart:len(sh.drBuf):len(sh.drBuf)]
	if n.down {
		// A downed node's inquiry occupies the radio but hears nothing,
		// like the classic world's.
		return out
	}
	pos := w.posAt(n.id, at)
	recs := sh.candidates(w, geo.CellOf(pos, w.regionSize), at)

	for i, t := range n.techs {
		p := w.params[t]
		radius := p.CoverageRadius
		rstart := len(sh.resBuf)
		for j := range recs {
			c := &recs[j]
			if c.id == n.id {
				continue
			}
			if c.mask&(1<<uint(t)) == 0 {
				continue
			}
			sh.stats.InquiryCandidates++
			if c.down {
				continue
			}
			cpos := c.pos
			// Bounding-box rejection before anything that touches the
			// candidate's shardNode: most of the 3x3 neighbourhood lies
			// outside the coverage square, and the skipped filters below
			// neither consume randomness nor count stats, so the
			// observable outcome is unchanged.
			if cpos.X-pos.X > radius || pos.X-cpos.X > radius ||
				cpos.Y-pos.Y > radius || pos.Y-cpos.Y > radius {
				continue
			}
			if !w.allowedAtLocked(n.id, c.id, at, pos, cpos) {
				continue
			}
			// Asymmetric technologies: a candidate whose own inquiry
			// window extends past our start is not discoverable. (Only
			// this branch dereferences the candidate's shardNode — the
			// filters above run entirely on the packed records.)
			if p.Asymmetric && w.nodes[c.id].inqUntil[t] > at {
				continue
			}
			d := pos.Dist(cpos)
			if d > radius {
				continue
			}
			if !n.src.Bool(p.ResponseProb) {
				continue
			}
			sh.resBuf = append(sh.resBuf, ShardInquiry{Node: c.id, Quality: qualityAt(d, p, w.cfg.QualityNoise, n.src)})
			sh.stats.InquiryResponses++
		}
		out[i].results = sh.resBuf[rstart:len(sh.resBuf):len(sh.resBuf)]
	}
	return out
}

// candidates returns the packed candidate list for inquiries from cell at
// time at: the cell's 3x3 region neighbourhood plus the unbucketed
// always-candidates, sorted by NodeID, each with its hot filter fields.
// The list is pure frozen-state data, so it is computed once per
// (cell, time) per superstep and shared by every inquirer in the cell.
func (sh *shard) candidates(w *ShardedWorld, cell geo.Cell, at time.Duration) []candRec {
	key := candKey{cell: cell, at: at}
	if recs, ok := sh.cands[key]; ok {
		return recs
	}
	sh.cand = sh.cand[:0]
	cell.Neighborhood(1, func(c geo.Cell) {
		sh.cand = append(sh.cand, w.regions[c]...)
	})
	sh.cand = append(sh.cand, w.unbucketed...)
	// Region lists are individually sorted and mutually disjoint; one
	// global sort yields the canonical candidate order.
	slices.Sort(sh.cand)

	snapHit := at == w.snapAt
	start := len(sh.candBuf)
	for _, id := range sh.cand {
		s := &w.snap[id]
		pos := s.pos
		if !snapHit {
			pos = w.nodes[id].model.PositionAt(at)
		}
		sh.candBuf = append(sh.candBuf, candRec{id: id, pos: pos, mask: s.mask, down: s.down})
	}
	// Carve with a full slice expression: a later append that grows the
	// arena must not alias this cached list.
	recs := sh.candBuf[start:len(sh.candBuf):len(sh.candBuf)]
	sh.cands[key] = recs
	return recs
}

// mergeLocked applies every shard's effects in global (time, node, kind)
// order, re-arms their follow-up events, and drains due link re-checks.
func (w *ShardedWorld) mergeLocked(stepEnd time.Duration) {
	w.effects = w.effects[:0]
	for _, sh := range w.shards {
		w.effects = append(w.effects, sh.out...)
		w.stats.add(sh.stats)
		sh.stats = ShardStats{}
	}
	sort.Slice(w.effects, func(i, j int) bool { return effectBefore(&w.effects[i], &w.effects[j]) })

	for i := range w.effects {
		e := &w.effects[i]
		n := &w.nodes[e.node]
		switch e.kind {
		case evCrossing:
			if !n.bucketed {
				continue // demoted since scheduling; nothing to move
			}
			if e.newCell != n.cell {
				w.regions[n.cell] = removeSorted(w.regions[n.cell], n.id)
				if len(w.regions[n.cell]) == 0 {
					delete(w.regions, n.cell)
				}
				n.cell = e.newCell
				w.regions[n.cell] = insertSorted(w.regions[n.cell], n.id)
			}
			if e.nextAt > 0 {
				w.pushEventLocked(shardEvent{at: e.nextAt, node: e.node, kind: evCrossing})
			}
		case evDiscovery:
			for _, dr := range e.disc {
				t := dr.tech
				n.inqUntil[t] = e.at + w.params[t].InquiryDuration
				if w.cfg.OnDiscovery != nil {
					w.cfg.OnDiscovery(e.at, e.node, t, dr.results)
				}
				if w.cfg.AutoLink {
					for _, r := range dr.results {
						// Best effort, like a daemon redialing next round;
						// faults and races with fault state are expected.
						_ = w.connectLocked(e.node, r.Node, t, e.at)
					}
				}
			}
			if n.every > 0 && e.nextAt > 0 {
				w.pushEventLocked(shardEvent{at: e.nextAt, node: e.node, kind: evDiscovery})
			}
		}
	}
	w.sweepDueLinksLocked(stepEnd)
}

// sweepDueLinksLocked processes scheduled link re-checks due by stepEnd,
// in deterministic (time, key) order. Stale entries — the link broke or
// was re-established since scheduling — are skipped by nextCheck mismatch.
func (w *ShardedWorld) sweepDueLinksLocked(stepEnd time.Duration) {
	for {
		e, ok := w.linkq.peek()
		if !ok || e.at > stepEnd {
			return
		}
		w.linkq.pop()
		lk, ok := w.links[e.key]
		if !ok || lk.nextCheck != e.at {
			continue
		}
		w.stats.LinkChecks++
		if !w.linkAliveLocked(e.key, stepEnd) {
			delete(w.links, e.key)
			w.stats.LinksBroken++
			continue
		}
		a, b := &w.nodes[e.key.A], &w.nodes[e.key.B]
		d := w.posAt(e.key.A, stepEnd).Dist(w.posAt(e.key.B, stepEnd))
		w.scheduleLinkCheckLocked(lk, d, w.params[e.key.Tech].CoverageRadius, a.speed+b.speed, stepEnd)
	}
}

// rebucketAllLocked is the BruteForce reference: every bucketed node is
// re-bucketed from its exact position every superstep, with no crossing
// events. The event scheduler must produce identical discovery results.
func (w *ShardedWorld) rebucketAllLocked() {
	for i := range w.nodes {
		n := &w.nodes[i]
		if !n.bucketed {
			continue
		}
		// Every bucketed node is scanned every step — that per-node cost is
		// exactly what crossing events avoid, so it is what Rebuckets counts
		// here (the event scheduler counts crossing events fired).
		w.stats.Rebuckets++
		nc := geo.CellOf(w.posAt(n.id, w.now), w.regionSize)
		if nc == n.cell {
			continue
		}
		w.regions[n.cell] = removeSorted(w.regions[n.cell], n.id)
		if len(w.regions[n.cell]) == 0 {
			delete(w.regions, n.cell)
		}
		n.cell = nc
		w.regions[n.cell] = insertSorted(w.regions[n.cell], n.id)
	}
}

// expireBlackoutsLocked compacts closed blackout windows. Compaction must
// not run during the parallel phase (workers read the slice), so it
// happens here, between supersteps.
func (w *ShardedWorld) expireBlackoutsLocked() {
	if len(w.blackouts) == 0 {
		return
	}
	keep := w.blackouts[:0]
	for _, bo := range w.blackouts {
		if bo.until > w.now {
			keep = append(keep, bo)
		}
	}
	w.blackouts = keep
}
