package simnet

import (
	"cmp"
	"slices"
	"sync"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/geo"
)

// A superstep runs in two phases. The parallel phase: each shard's worker
// drains its event queue up to the step end, computing effects against the
// frozen pre-step world state (region buckets, node flags, fault state) —
// it mutates nothing shared, and each node's RNG is consumed only by that
// node's own events. The serial merge phase: all effects are applied in
// global (time, node, kind) order, then due link re-checks drain from the
// serial link queue. State transitions therefore never depend on worker
// scheduling, GOMAXPROCS, or the shard count.

// shard is one event-queue partition with its worker's scratch space.
type shard struct {
	q          eventQueue
	out        []effect
	stats      ShardStats
	shrinkRuns int // consecutive low-use supersteps; see recycle

	// Deferred discovery work. run pops every due event in queue order
	// (keeping sh.out sorted) but leaves each discovery effect's results
	// empty; the inquiries then execute sorted by the inquirer's cell,
	// row-major. Spatial order is what keeps the in-place bucket scans
	// cache-resident at a million nodes: consecutive inquiries read the
	// same three rows of region slabs, so each slab crosses memory once
	// per superstep instead of once per inquiring neighbour cell.
	dq []discWork

	// One-entry neighbourhood memo: inquirers in the same cell (common —
	// plazas hold dozens) reuse the 3x3 bucket lookup instead of nine map
	// probes each. Valid within one superstep's parallel phase only;
	// buckets mutate in the merge phase.
	nbCell geo.Cell
	nbOK   bool
	nbN    int
	nb     [9][]candRec
	oneRec [1]candRec // reusable view for scanning unbucketed candidates

	// survBuf collects one technology scan's in-range survivors; sorting
	// it by NodeID before any randomness is drawn is what keeps RNG
	// consumption — and so the whole run — independent of bucket
	// geometry and scan order.
	survBuf []surv

	// Result arenas, reset each superstep: inquiry results live only
	// until the merge phase hands them to the discovery hook, so carving
	// them from reusable buffers keeps a 100k-node step from allocating
	// tens of thousands of short-lived slices for the collector to chase.
	resBuf []ShardInquiry
	drBuf  []discResult
}

// discWork is one deferred discovery inquiry, processed in spatial order.
type discWork struct {
	cell   geo.Cell
	pos    geo.Point
	at     time.Duration
	node   NodeID
	outIdx int // the effect in sh.out awaiting this inquiry's results
}

// surv is one in-range inquiry survivor awaiting its response draw.
type surv struct {
	id NodeID
	d  float64
}

// candRec is one candidate's hot fields, packed for the inquiry scan.
type candRec struct {
	id   NodeID
	pos  geo.Point
	mask uint8
	down bool
}

// effect is one state transition computed in the parallel phase, applied
// in the merge phase.
type effect struct {
	at   time.Duration
	node NodeID
	kind eventKind

	// evCrossing
	newCell geo.Cell

	// nextAt re-arms the event (0 = none).
	nextAt time.Duration

	// evDiscovery: one entry per technology the node inquired on.
	disc []discResult
}

// discResult is one technology's discovery outcome for one node.
type discResult struct {
	tech    device.Tech
	results []ShardInquiry
}

func effectBefore(a, b *effect) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.kind < b.kind
}

// Step advances the world by one superstep (the quantum).
func (w *ShardedWorld) Step() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.initLocked()
	stepEnd := w.now + w.quantum

	// Parallel phase: one worker per shard with due events. Workers read
	// world state frozen under w.mu (held here across the whole step) and
	// write only their shard's private effect buffer.
	var wg sync.WaitGroup
	due := false
	for _, sh := range w.shards {
		sh.recycle()
		if ev, ok := sh.q.peek(); ok && ev.at <= stepEnd {
			due = true
		}
	}
	if e, ok := w.linkq.peek(); ok && e.at <= stepEnd {
		due = true
	}
	if due || w.cfg.BruteForce {
		// An idle superstep (no events, no link checks) skips the
		// snapshot entirely, keeping the do-nothing step O(1).
		w.snapshotPositionsLocked(stepEnd)
		w.refreshBucketsLocked()
	}
	for _, sh := range w.shards {
		if ev, ok := sh.q.peek(); !ok || ev.at > stepEnd {
			continue
		}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.run(w, stepEnd)
		}(sh)
	}
	wg.Wait()

	w.mergeLocked(stepEnd)
	w.now = stepEnd
	w.stats.Steps++
	if w.cfg.BruteForce {
		w.rebucketAllLocked()
	}
	w.expireBlackoutsLocked()
}

// Arena recycling bounds: a scratch capacity that has sat at least 4x over
// actual use for arenaShrinkAfter consecutive supersteps is released, so a
// burst (a rush-hour step, a fault-script spike) does not pin its
// high-water mark for the rest of a long run.
const (
	arenaShrinkFloor = 4096
	arenaShrinkAfter = 8
)

// recycle resets the shard's per-superstep scratch. Arenas keep their
// capacity — steady-state steps allocate nothing — unless sustained low
// use triggers the shrink bound above.
func (sh *shard) recycle() {
	used := len(sh.resBuf)
	if c := cap(sh.resBuf); c > arenaShrinkFloor && used*4 < c {
		if sh.shrinkRuns++; sh.shrinkRuns >= arenaShrinkAfter {
			sh.shrinkRuns = 0
			sh.dq = nil
			sh.survBuf = nil
			sh.resBuf = nil
			sh.drBuf = nil
		}
	} else {
		sh.shrinkRuns = 0
	}
	sh.out = sh.out[:0]
	sh.dq = sh.dq[:0]
	sh.resBuf = sh.resBuf[:0]
	sh.drBuf = sh.drBuf[:0]
	sh.nbOK = false
}

// StepUntil advances the world to at least t.
func (w *ShardedWorld) StepUntil(t time.Duration) {
	for w.Now() < t {
		w.Step()
	}
}

// run drains the shard's due events, appending effects to sh.out. The pop
// loop keeps sh.out in queue (= effectBefore) order, recording discovery
// inquiries in sh.dq instead of executing them; the inquiries then run
// sorted by cell and fill their reserved effects in place. Reordering is
// free: an inquiry reads only frozen state and its own node's RNG stream,
// so its results are the same whenever it executes within the phase.
func (sh *shard) run(w *ShardedWorld, stepEnd time.Duration) {
	for {
		ev, ok := sh.q.peek()
		if !ok || ev.at > stepEnd {
			break
		}
		sh.q.pop()
		n := &w.nodes[ev.node]
		switch ev.kind {
		case evCrossing:
			// Evaluated at stepEnd — the time the rebucket is applied —
			// so the fresh bucket starts with zero drift.
			pos := w.posAt(ev.node, stepEnd)
			nc := geo.CellOf(pos, w.regionSize)
			e := effect{at: ev.at, node: ev.node, kind: evCrossing, newCell: nc}
			if delay, ok := crossingAfter(pos, nc, w.regionSize, n.speed, n.slackEff); ok {
				e.nextAt = stepEnd + delay
			}
			sh.out = append(sh.out, e)
			sh.stats.Rebuckets++
		case evDiscovery:
			pos := w.posAt(ev.node, ev.at)
			sh.out = append(sh.out, effect{at: ev.at, node: ev.node, kind: evDiscovery, nextAt: ev.at + n.every})
			sh.dq = append(sh.dq, discWork{
				cell:   geo.CellOf(pos, w.regionSize),
				pos:    pos,
				at:     ev.at,
				node:   ev.node,
				outIdx: len(sh.out) - 1,
			})
		}
	}
	// Row-major spatial order; the (at, node) tail makes the pass order
	// reproducible, though no outcome depends on it.
	slices.SortFunc(sh.dq, func(a, b discWork) int {
		if c := cmp.Compare(a.cell.CY, b.cell.CY); c != 0 {
			return c
		}
		if c := cmp.Compare(a.cell.CX, b.cell.CX); c != 0 {
			return c
		}
		if c := cmp.Compare(a.at, b.at); c != 0 {
			return c
		}
		return cmp.Compare(a.node, b.node)
	})
	for i := range sh.dq {
		dw := &sh.dq[i]
		sh.out[dw.outIdx].disc = sh.inquire(w, &w.nodes[dw.node], dw.at, dw.pos, dw.cell)
	}
}

// inquire runs one node's discovery round at time at: one inquiry per
// technology the node carries, against the 3x3 region neighbourhood of
// its position plus the unbucketed always-candidates. The scan walks the
// region buckets in place — no gather, no copy — collecting in-range
// survivors, then sorts the survivors by NodeID before drawing any
// randomness. RNG is thereby consumed in ascending-NodeID order over
// exactly the in-range set, the same stream reads the classic
// Radio.Inquire makes, whatever order the buckets were scanned in; the
// pre-RNG filters (tech, power, fault state, exact distance) also mirror
// the classic path.
func (sh *shard) inquire(w *ShardedWorld, n *shardNode, at time.Duration, pos geo.Point, cell geo.Cell) []discResult {
	sh.stats.Inquiries += int64(len(n.techs))
	dstart := len(sh.drBuf)
	for _, t := range n.techs {
		sh.drBuf = append(sh.drBuf, discResult{tech: t})
	}
	// Carve with full slice expressions: growing the arena later must not
	// alias the slices already handed out.
	out := sh.drBuf[dstart:len(sh.drBuf):len(sh.drBuf)]
	if n.down {
		// A downed node's inquiry occupies the radio but hears nothing,
		// like the classic world's.
		return out
	}
	sh.neighborhood(w, cell)
	snapHit := at == w.snapAt

	for i, t := range n.techs {
		p := w.params[t]
		radius := p.CoverageRadius
		bit := uint8(1) << uint(t)
		sh.survBuf = sh.survBuf[:0]
		scan := func(recs []candRec) {
			for j := range recs {
				c := &recs[j]
				if c.id == n.id {
					continue
				}
				if c.mask&bit == 0 {
					continue
				}
				sh.stats.InquiryCandidates++
				if c.down {
					continue
				}
				cpos := c.pos
				if !snapHit {
					// Mid-quantum event (a discovery phase off the step
					// grid): the bucket records hold step-end positions,
					// so ask the model for the exact instant.
					cpos = w.nodes[c.id].model.PositionAt(at)
				}
				// Bounding-box rejection before anything that touches the
				// candidate's shardNode: most of the 3x3 neighbourhood lies
				// outside the coverage square, and the skipped filters below
				// neither consume randomness nor count stats, so the
				// observable outcome is unchanged.
				if cpos.X-pos.X > radius || pos.X-cpos.X > radius ||
					cpos.Y-pos.Y > radius || pos.Y-cpos.Y > radius {
					continue
				}
				if !w.allowedAtLocked(n.id, c.id, at, pos, cpos) {
					continue
				}
				// Asymmetric technologies: a candidate whose own inquiry
				// window extends past our start is not discoverable. (Only
				// this branch dereferences the candidate's shardNode — the
				// filters above run entirely on the packed records.)
				if p.Asymmetric && w.nodes[c.id].inqUntil[t] > at {
					continue
				}
				d := pos.Dist(cpos)
				if d > radius {
					continue
				}
				sh.survBuf = append(sh.survBuf, surv{id: c.id, d: d})
			}
		}
		for _, recs := range sh.nb[:sh.nbN] {
			scan(recs)
		}
		for _, id := range w.unbucketed {
			s := &w.snap[id]
			sh.oneRec[0] = candRec{id: id, pos: s.pos, mask: s.mask, down: s.down}
			scan(sh.oneRec[:])
		}

		// Survivors are collected in scan order (arbitrary); the sort
		// restores the canonical stream order before the first draw.
		slices.SortFunc(sh.survBuf, func(a, b surv) int {
			return cmp.Compare(a.id, b.id)
		})
		rstart := len(sh.resBuf)
		for _, s := range sh.survBuf {
			if !n.src.Bool(p.ResponseProb) {
				continue
			}
			sh.resBuf = append(sh.resBuf, ShardInquiry{Node: s.id, Quality: qualityAt(s.d, p, w.cfg.QualityNoise, n.src)})
			sh.stats.InquiryResponses++
		}
		out[i].results = sh.resBuf[rstart:len(sh.resBuf):len(sh.resBuf)]
	}
	return out
}

// neighborhood resolves the 3x3 bucket slices around cell into sh.nb,
// reusing the previous resolution when the cell repeats (inquiries run in
// spatial order, so same-cell runs are the common case). Bucket slices
// are frozen during the parallel phase; the memo never outlives it.
func (sh *shard) neighborhood(w *ShardedWorld, cell geo.Cell) {
	if sh.nbOK && cell == sh.nbCell {
		return
	}
	sh.nbN = 0
	cell.Neighborhood(1, func(c geo.Cell) {
		if b, ok := w.regions[c]; ok && len(b.recs) > 0 {
			sh.nb[sh.nbN] = b.recs
			sh.nbN++
		}
	})
	sh.nbCell, sh.nbOK = cell, true
}

// mergeLocked applies every shard's effects in global (time, node, kind)
// order, re-arms their follow-up events, and drains due link re-checks.
//
// Each shard's out buffer is already sorted: its event queue pops in
// exactly effectBefore order and run appends one effect per pop. The merge
// is therefore a k-way walk of pre-sorted runs — no global concatenate-
// and-sort, O(E·k) comparisons with k = shard count, and every run is
// consumed as the contiguous stripe its own worker wrote (no cross-shard
// shuffling of effect records through a shared buffer).
func (w *ShardedWorld) mergeLocked(stepEnd time.Duration) {
	if cap(w.runHead) < len(w.shards) {
		w.runHead = make([]int, len(w.shards))
	}
	heads := w.runHead[:len(w.shards)]
	for i, sh := range w.shards {
		heads[i] = 0
		w.stats.add(sh.stats)
		sh.stats = ShardStats{}
	}
	for {
		best := -1
		for i, sh := range w.shards {
			if heads[i] >= len(sh.out) {
				continue
			}
			if best < 0 || effectBefore(&sh.out[heads[i]], &w.shards[best].out[heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := &w.shards[best].out[heads[best]]
		heads[best]++
		w.applyEffectLocked(e)
	}
	w.sweepDueLinksLocked(stepEnd)
}

// applyEffectLocked applies one merged effect to the world state.
func (w *ShardedWorld) applyEffectLocked(e *effect) {
	n := &w.nodes[e.node]
	switch e.kind {
	case evCrossing:
		if !n.bucketed {
			return // demoted since scheduling; nothing to move
		}
		if e.newCell != n.cell {
			w.regionRemoveLocked(n.id, n.cell)
			n.cell = e.newCell
			w.regionInsertLocked(n.id, n.cell)
		}
		if e.nextAt > 0 {
			w.pushEventLocked(shardEvent{at: e.nextAt, node: e.node, kind: evCrossing})
		}
	case evDiscovery:
		for _, dr := range e.disc {
			t := dr.tech
			n.inqUntil[t] = e.at + w.params[t].InquiryDuration
			if w.cfg.OnDiscovery != nil {
				w.cfg.OnDiscovery(e.at, e.node, t, dr.results)
			}
			if w.cfg.AutoLink {
				for _, r := range dr.results {
					// Best effort, like a daemon redialing next round;
					// faults and races with fault state are expected.
					_ = w.connectLocked(e.node, r.Node, t, e.at)
				}
			}
		}
		if n.every > 0 && e.nextAt > 0 {
			w.pushEventLocked(shardEvent{at: e.nextAt, node: e.node, kind: evDiscovery})
		}
	}
}

// sweepDueLinksLocked processes scheduled link re-checks due by stepEnd,
// in deterministic (time, key) order. Stale entries — the link broke or
// was re-established since scheduling — are skipped by nextCheck mismatch.
func (w *ShardedWorld) sweepDueLinksLocked(stepEnd time.Duration) {
	for {
		e, ok := w.linkq.peek()
		if !ok || e.at > stepEnd {
			return
		}
		w.linkq.pop()
		lk, ok := w.linkAt(e.key)
		if !ok || lk.nextCheck != e.at {
			continue
		}
		w.stats.LinkChecks++
		if !w.linkAliveLocked(e.key, stepEnd) {
			w.removeLinkLocked(e.key)
			w.stats.LinksBroken++
			continue
		}
		a, b := &w.nodes[e.key.A], &w.nodes[e.key.B]
		d := w.posAt(e.key.A, stepEnd).Dist(w.posAt(e.key.B, stepEnd))
		w.scheduleLinkCheckLocked(lk, d, w.params[e.key.Tech].CoverageRadius, a.speed+b.speed, stepEnd)
	}
}

// rebucketAllLocked is the BruteForce reference: every bucketed node is
// re-bucketed from its exact position every superstep, with no crossing
// events. The event scheduler must produce identical discovery results.
func (w *ShardedWorld) rebucketAllLocked() {
	for i := range w.nodes {
		n := &w.nodes[i]
		if !n.bucketed {
			continue
		}
		// Every bucketed node is scanned every step — that per-node cost is
		// exactly what crossing events avoid, so it is what Rebuckets counts
		// here (the event scheduler counts crossing events fired).
		w.stats.Rebuckets++
		nc := geo.CellOf(w.posAt(n.id, w.now), w.regionSize)
		if nc == n.cell {
			continue
		}
		w.regionRemoveLocked(n.id, n.cell)
		n.cell = nc
		w.regionInsertLocked(n.id, n.cell)
	}
}

// expireBlackoutsLocked compacts closed blackout windows. Compaction must
// not run during the parallel phase (workers read the slice), so it
// happens here, between supersteps.
func (w *ShardedWorld) expireBlackoutsLocked() {
	if len(w.blackouts) == 0 {
		return
	}
	keep := w.blackouts[:0]
	for _, bo := range w.blackouts {
		if bo.until > w.now {
			keep = append(keep, bo)
		}
	}
	w.blackouts = keep
}
