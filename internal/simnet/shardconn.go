package simnet

import (
	"fmt"
	"sync"

	"peerhood/internal/device"
)

// This file is the sharded world's minimal byte transport: the classic
// world's Conn/Listener surface reduced to what scale runs need so the
// S2/S3 byte-traffic scenarios can run over sharded links. Bytes are
// real — framed protocols run unchanged and byte counters land in
// ShardStats — but transfer is instantaneous: the sharded world has no
// per-connection sleeping clock, so bandwidth delay and jitter are not
// modelled (per-write loss from SetImpairment profiles is). Endpoints are
// addressed by NodeID, not device.Addr: the full daemon stack keeps
// running on the classic world, while harness-driven scale scenarios use
// this adapter to move real protocol frames between linked nodes.

// shardPortKey binds a listener to one (node, tech, port).
type shardPortKey struct {
	node NodeID
	tech device.Tech
	port uint16
}

// ShardConn is one endpoint of a byte stream over an established sharded
// link. Reads block until the peer writes, the peer closes (io.EOF), or
// the link breaks (ErrLinkLost, discarding buffered data — the radio is
// gone, exactly as on the classic Conn).
type ShardConn struct {
	w      *ShardedWorld
	key    shardLinkKey
	local  NodeID
	remote NodeID
	peer   *ShardConn
	rd     pipe

	closeOnce sync.Once
}

// LocalNode returns this endpoint's node.
func (c *ShardConn) LocalNode() NodeID { return c.local }

// RemoteNode returns the peer endpoint's node.
func (c *ShardConn) RemoteNode() NodeID { return c.remote }

// Tech returns the technology of the link the stream rides on.
func (c *ShardConn) Tech() device.Tech { return c.key.Tech }

// Read reads bytes sent by the peer.
func (c *ShardConn) Read(p []byte) (int, error) {
	return c.rd.read(p)
}

// Write sends bytes to the peer. The write fails with ErrLinkLost once
// the underlying link has broken; an impairment profile on the
// local->remote direction may silently drop the whole payload (loss is
// per Write call, so framed protocols lose whole frames, never
// fragments), with the drop drawn from the writing node's own stream so
// scripted runs replay identically.
func (c *ShardConn) Write(p []byte) (int, error) {
	if c.rd.closedLocally() {
		return 0, ErrClosed
	}
	w := c.w
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	if _, ok := w.linkIdx[c.key]; !ok {
		w.mu.Unlock()
		return 0, ErrLinkLost
	}
	if imp, ok := w.impairments[[2]NodeID{c.local, c.remote}]; ok && imp.LossProb > 0 {
		if w.nodes[c.local].src.Bool(imp.LossProb) {
			w.stats.MessagesDropped++
			w.mu.Unlock()
			return len(p), nil
		}
	}
	w.stats.BytesWritten += int64(len(p))
	w.stats.MessagesDelivered++
	w.mu.Unlock()
	if err := c.peer.rd.write(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close shuts this endpoint down: the peer's pending reads drain and then
// see io.EOF, this endpoint's reads and writes fail with ErrClosed.
// Closing the second endpoint retires the stream (the link itself stays
// up — it belongs to the world's link lifecycle, not the stream).
func (c *ShardConn) Close() error {
	c.closeOnce.Do(func() {
		c.rd.closeLocal()
		c.peer.rd.closeWrite()
		if c.peer.rd.closedLocally() {
			c.w.retireConn(c)
		}
	})
	return nil
}

// Quality samples the current link quality on the 0–255 scale from the
// endpoints' live positions, or 0 once the link is broken — the same
// noise-free curve sharded discovery reports.
func (c *ShardConn) Quality() int {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.linkIdx[c.key]; !ok {
		return 0
	}
	d := w.posAt(c.local, w.now).Dist(w.posAt(c.remote, w.now))
	return qualityAt(d, w.params[c.key.Tech], 0, nil)
}

// ShardListener accepts byte streams dialed to one (node, tech, port).
type ShardListener struct {
	w   *ShardedWorld
	key shardPortKey

	mu      sync.Mutex
	cond    *sync.Cond
	backlog []*ShardConn
	closed  bool
}

// Listen binds a port on a node's radio.
func (w *ShardedWorld) Listen(node NodeID, tech device.Tech, port uint16) (*ShardListener, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, ErrClosed
	}
	if node < 0 || int(node) >= len(w.nodes) {
		return nil, fmt.Errorf("simnet: no node %v", node)
	}
	n := &w.nodes[node]
	if n.techMask&(1<<uint(tech)) == 0 {
		return nil, fmt.Errorf("%w: %v", ErrTechMismatch, tech)
	}
	k := shardPortKey{node: node, tech: tech, port: port}
	if _, taken := w.listeners[k]; taken {
		return nil, fmt.Errorf("simnet: port %d already bound on %s/%v", port, n.name, tech)
	}
	l := &ShardListener{w: w, key: k}
	l.cond = sync.NewCond(&l.mu)
	if w.listeners == nil {
		w.listeners = make(map[shardPortKey]*ShardListener)
	}
	w.listeners[k] = l
	return l, nil
}

// Accept returns the next dialed-in stream, blocking until one arrives or
// the listener closes.
func (l *ShardListener) Accept() (*ShardConn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.backlog) == 0 && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil, ErrClosed
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	return c, nil
}

// Close unbinds the port. Pending Accepts fail; already-accepted streams
// are unaffected, backlogged ones are torn down.
func (l *ShardListener) Close() error {
	l.w.mu.Lock()
	if l.w.listeners[l.key] == l {
		delete(l.w.listeners, l.key)
	}
	l.w.mu.Unlock()
	l.fail()
	return nil
}

// fail marks the listener closed, wakes Accept waiters, and tears down
// any backlogged streams nobody will ever accept.
func (l *ShardListener) fail() {
	l.mu.Lock()
	backlog := l.backlog
	l.backlog = nil
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	for _, c := range backlog {
		c.rd.fail(ErrClosed)
		c.peer.rd.fail(ErrClosed)
	}
}

// deliver queues an incoming stream for Accept, or tears it down if the
// listener closed between the dial and the handoff.
func (l *ShardListener) deliver(c *ShardConn) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		c.rd.fail(ErrClosed)
		c.peer.rd.fail(ErrClosed)
		return
	}
	l.backlog = append(l.backlog, c)
	l.cond.Signal()
	l.mu.Unlock()
}

// Dial opens a byte stream to a port on a remote node, mirroring the
// classic Dial's outcome classes: ErrRefused when nothing listens there,
// and the Connect checks (power, coverage, fault weather, the
// technology's stochastic connect fault) when no link is up yet. Dialing
// over an already-established link never re-draws the connect fault, so
// AutoLink scale runs can open streams on the links discovery made.
func (w *ShardedWorld) Dial(from, to NodeID, tech device.Tech, port uint16) (*ShardConn, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if from == to {
		w.mu.Unlock()
		return nil, fmt.Errorf("simnet: node %v dialing itself", from)
	}
	if from < 0 || int(from) >= len(w.nodes) || to < 0 || int(to) >= len(w.nodes) {
		w.mu.Unlock()
		return nil, fmt.Errorf("simnet: no such node pair %v->%v", from, to)
	}
	if w.nodes[from].techMask&(1<<uint(tech)) == 0 || w.nodes[to].techMask&(1<<uint(tech)) == 0 {
		w.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrTechMismatch, tech)
	}
	l, ok := w.listeners[shardPortKey{node: to, tech: tech, port: port}]
	if !ok {
		w.mu.Unlock()
		return nil, fmt.Errorf("%w: port %d on %s", ErrRefused, port, w.nodes[to].name)
	}
	if err := w.connectLocked(from, to, tech, w.now); err != nil {
		w.mu.Unlock()
		return nil, err
	}
	key := linkKeyOf(from, to, tech)
	ca := &ShardConn{w: w, key: key, local: from, remote: to}
	cb := &ShardConn{w: w, key: key, local: to, remote: from}
	ca.peer, cb.peer = cb, ca
	ca.rd.init()
	cb.rd.init()
	if w.conns == nil {
		w.conns = make(map[shardLinkKey][]*ShardConn)
	}
	w.conns[key] = append(w.conns[key], ca)
	w.mu.Unlock()
	l.deliver(cb)
	return ca, nil
}

// retireConn drops a fully-closed stream pair from the per-link registry.
func (w *ShardedWorld) retireConn(c *ShardConn) {
	w.mu.Lock()
	defer w.mu.Unlock()
	cs := w.conns[c.key]
	for i, x := range cs {
		if x == c || x == c.peer {
			cs = append(cs[:i], cs[i+1:]...)
			break
		}
	}
	if len(cs) == 0 {
		delete(w.conns, c.key)
	} else {
		w.conns[c.key] = cs
	}
}

// failConnsLocked tears down every stream riding a link, called when the
// link itself goes away.
func (w *ShardedWorld) failConnsLocked(key shardLinkKey, err error) {
	cs, ok := w.conns[key]
	if !ok {
		return
	}
	delete(w.conns, key)
	for _, c := range cs {
		c.rd.fail(err)
		c.peer.rd.fail(err)
	}
}
