package simnet

import (
	"fmt"
	"math"
	"testing"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/rng"
)

// zeroLatencyOpts keeps every technology's stochastic behaviour (response
// probability, fault probability) but removes inquiry and connection
// latencies, so tests on a manual clock never block waiting for time.
func zeroLatencyOpts() []Option {
	var opts []Option
	for _, tech := range device.Techs() {
		p := DefaultParams(tech)
		p.InquiryDuration = 0
		p.ConnectMin = 0
		p.ConnectMax = 0
		opts = append(opts, WithParams(tech, p))
	}
	return opts
}

// buildTwinWorlds constructs two identical worlds — one grid-indexed, one
// full-scan — from the same seed and placement function, so every RNG draw
// and every position line up between them.
func buildTwinWorlds(t *testing.T, seed int64, noise float64, place func(w *World)) (grid, linear *World) {
	t.Helper()
	opts := append(zeroLatencyOpts(), WithQualityNoise(noise))
	grid = NewWorld(clock.NewManual(), seed, opts...)
	linear = NewWorld(clock.NewManual(), seed, append(opts, WithLinearScan())...)
	place(grid)
	place(linear)
	return grid, linear
}

func sameResults(a, b []InquiryResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGridInquireMatchesFullScan is the grid's equivalence property test:
// for randomized radio placements (across all technologies, with default
// stochastic parameters and quality noise), a grid-backed Inquire returns
// exactly the result set — same radios, same order, same noisy qualities —
// that the full scan returns.
func TestGridInquireMatchesFullScan(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		seed := int64(1000 + trial)
		src := rng.New(seed * 7)
		n := 20 + src.Intn(60)

		type placement struct {
			name  string
			at    geo.Point
			techs []device.Tech
		}
		placements := make([]placement, n)
		for i := range placements {
			techs := []device.Tech{device.TechBluetooth}
			if src.Bool(0.3) {
				techs = append(techs, device.TechWLAN)
			}
			placements[i] = placement{
				name: fmt.Sprintf("d%d", i),
				// Spread over several Bluetooth cells, dense enough that
				// many pairs are in range.
				at:    geo.Pt(src.Uniform(-40, 40), src.Uniform(-40, 40)),
				techs: techs,
			}
		}

		gw, lw := buildTwinWorlds(t, seed, 3, func(w *World) {
			for _, pl := range placements {
				d, err := w.AddDevice(pl.name, mobility.Static{At: pl.at})
				if err != nil {
					t.Fatal(err)
				}
				for _, tech := range pl.techs {
					if _, err := d.AddRadio(tech); err != nil {
						t.Fatal(err)
					}
				}
			}
		})

		for i, pl := range placements {
			for _, tech := range pl.techs {
				gd, _ := gw.Device(pl.name)
				ld, _ := lw.Device(pl.name)
				gr, _ := gd.Radio(tech)
				lr, _ := ld.Radio(tech)
				got, want := gr.Inquire(), lr.Inquire()
				if !sameResults(got, want) {
					t.Fatalf("trial %d: %s/%v: grid %v != full scan %v (radio %d of %d)",
						trial, pl.name, tech, got, want, i, n)
				}
			}
		}

		gs, ls := gw.Stats(), lw.Stats()
		if gs.InquiryResponses != ls.InquiryResponses {
			t.Fatalf("trial %d: response counters diverge: grid %d, linear %d",
				trial, gs.InquiryResponses, ls.InquiryResponses)
		}
		if gs.InquiryCandidates >= ls.InquiryCandidates {
			t.Errorf("trial %d: grid examined %d candidates, full scan %d — no saving",
				trial, gs.InquiryCandidates, ls.InquiryCandidates)
		}
	}
}

// TestGridInquireMatchesFullScanWhileMoving drives moving devices through
// many discovery rounds on a manual clock, exercising the drift-triggered
// re-index path: results must stay identical to the full scan even as
// devices cross cell boundaries between refreshes.
func TestGridInquireMatchesFullScanWhileMoving(t *testing.T) {
	const n = 30
	seed := int64(424242)

	build := func(opts ...Option) (*World, *clock.Manual) {
		clk := clock.NewManual()
		opts = append(append(zeroLatencyOpts(), WithQualityNoise(0)), opts...)
		w := NewWorld(clk, seed, opts...)
		for i := 0; i < n; i++ {
			// Walk in assorted directions at pedestrian-to-vehicle speeds;
			// over the simulated minutes below every device crosses
			// multiple 15 m Bluetooth cells.
			start := geo.Pt(float64(i%6)*7, float64(i/6)*7)
			dest := geo.Pt(float64((i*13)%90)-40, float64((i*29)%90)-40)
			d, err := w.AddDevice(fmt.Sprintf("m%d", i), mobility.Walk(start, dest, 1.0+float64(i%5)))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.AddRadio(device.TechBluetooth); err != nil {
				t.Fatal(err)
			}
		}
		return w, clk
	}

	gw, gclk := build()
	lw, lclk := build(WithLinearScan())

	// 2 s steps with speeds up to 5 m/s walk the drift bound through both
	// regimes: widened (ring-expanded) queries on stale buckets, then a
	// full re-index once drift passes refreshDriftRadii coverage radii.
	for step := 0; step < 24; step++ {
		for i := 0; i < n; i++ {
			gd, _ := gw.Device(fmt.Sprintf("m%d", i))
			ld, _ := lw.Device(fmt.Sprintf("m%d", i))
			gr, _ := gd.Radio(device.TechBluetooth)
			lr, _ := ld.Radio(device.TechBluetooth)
			got, want := gr.Inquire(), lr.Inquire()
			if !sameResults(got, want) {
				t.Fatalf("step %d, device m%d: grid %v != full scan %v", step, i, got, want)
			}
		}
		gclk.Advance(2 * time.Second)
		lclk.Advance(2 * time.Second)
	}
	if refreshes := gw.Stats().GridRefreshes; refreshes < 2 {
		t.Fatalf("moving scenario performed %d grid refreshes, want drift-triggered re-indexing", refreshes)
	}
}

// TestCheckLinksReapsAfterTeleport is the regression test for the grid's
// interaction with SetModel: a device teleported many cells away must
// still have its established link reaped by CheckLinks, and a device
// teleported back into range must keep its link.
func TestCheckLinksReapsAfterTeleport(t *testing.T) {
	w := instantWorld(t, 99)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(5, 0))

	l, err := b.Listen(1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conn, err := a.Dial(b.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Prime the grid so the teleport crosses established buckets.
	a.Inquire()
	if n := w.CheckLinks(); n != 0 {
		t.Fatalf("CheckLinks broke %d links while in range", n)
	}

	// Teleport a across many cells (500 m >> the 10 m Bluetooth radius).
	ad, _ := w.Device("a")
	ad.SetModel(mobility.Static{At: geo.Pt(500, 500)})
	if n := w.CheckLinks(); n != 1 {
		t.Fatalf("CheckLinks broke %d links after teleporting out of range, want 1", n)
	}
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write on reaped link succeeded")
	}

	// A fresh link survives a teleport that stays in range.
	ad.SetModel(mobility.Static{At: geo.Pt(2, 0)})
	conn2, err := a.Dial(b.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	ad.SetModel(mobility.Static{At: geo.Pt(0, 3)})
	if n := w.CheckLinks(); n != 0 {
		t.Fatalf("CheckLinks broke %d links after in-range teleport, want 0", n)
	}
}

// TestGridSeesTeleportedDeviceImmediately: after SetModel, inquiries from
// and about the moved device must reflect its new cell with no discovery
// round or refresh in between.
func TestGridSeesTeleportedDeviceImmediately(t *testing.T) {
	w := instantWorld(t, 7)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	addBT(t, w, "b", geo.Pt(200, 200))

	if res := a.Inquire(); len(res) != 0 {
		t.Fatalf("inquiry found %v, want nothing in range", res)
	}
	ad, _ := w.Device("a")
	ad.SetModel(mobility.Static{At: geo.Pt(195, 200)})
	res := a.Inquire()
	if len(res) != 1 {
		t.Fatalf("inquiry after teleport found %v, want b", res)
	}
}

// orbitModel is a mobility model with no declared speed bound: the grid
// must treat it as able to move arbitrarily fast.
type orbitModel struct{ center geo.Point }

func (o orbitModel) PositionAt(elapsed time.Duration) geo.Point {
	// Jumps around a 30 m circle discontinuously — genuinely unbounded.
	angle := float64(elapsed/time.Second) * 2.39996
	return geo.Pt(o.center.X+30*math.Cos(angle), o.center.Y+30*math.Sin(angle))
}

// TestGridUnboundedModelFallsBackToScan: with a SpeedBounded-less model in
// the world, inquiries must stay exact versus the full scan and must not
// thrash the index with refreshes on every query.
func TestGridUnboundedModelFallsBackToScan(t *testing.T) {
	const n = 20
	seed := int64(31337)
	build := func(opts ...Option) (*World, *clock.Manual) {
		clk := clock.NewManual()
		opts = append(append(zeroLatencyOpts(), WithQualityNoise(0)), opts...)
		w := NewWorld(clk, seed, opts...)
		for i := 0; i < n; i++ {
			var m mobility.Model = mobility.Static{At: geo.Pt(float64(i%5)*20, float64(i/5)*20)}
			if i == 0 {
				m = orbitModel{center: geo.Pt(10, 10)}
			}
			d, err := w.AddDevice(fmt.Sprintf("u%d", i), m)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.AddRadio(device.TechBluetooth); err != nil {
				t.Fatal(err)
			}
		}
		return w, clk
	}
	gw, gclk := build()
	lw, lclk := build(WithLinearScan())

	for step := 0; step < 10; step++ {
		for i := 0; i < n; i++ {
			gd, _ := gw.Device(fmt.Sprintf("u%d", i))
			ld, _ := lw.Device(fmt.Sprintf("u%d", i))
			gr, _ := gd.Radio(device.TechBluetooth)
			lr, _ := ld.Radio(device.TechBluetooth)
			got, want := gr.Inquire(), lr.Inquire()
			if !sameResults(got, want) {
				t.Fatalf("step %d, device u%d: grid %v != full scan %v", step, i, got, want)
			}
		}
		gclk.Advance(time.Second)
		lclk.Advance(time.Second)
	}
	// One initial build is fine; per-query re-indexing is the bug.
	if refreshes := gw.Stats().GridRefreshes; refreshes > 2 {
		t.Fatalf("unbounded model caused %d grid refreshes, want scan fallback instead of thrash", refreshes)
	}

	// Replacing the unbounded model restores cell-based queries: the next
	// inquiry must examine fewer candidates than the full radio list
	// (everything is static and correctly bucketed, so no refresh is
	// needed either).
	ud, _ := gw.Device("u0")
	ud.SetModel(mobility.Static{At: geo.Pt(10, 10)})
	gclk.Advance(time.Second)
	before := gw.Stats().InquiryCandidates
	d1, _ := gw.Device("u1")
	r1, _ := d1.Radio(device.TechBluetooth)
	r1.Inquire()
	if delta := gw.Stats().InquiryCandidates - before; delta >= n {
		t.Fatalf("inquiry after model replacement examined %d candidates, want a cell-bounded subset of %d", delta, n)
	}
}

// TestGridStats sanity-checks the exposed index statistics.
func TestGridStats(t *testing.T) {
	w := instantWorld(t, 5)
	for i := 0; i < 16; i++ {
		addBT(t, w, fmt.Sprintf("d%d", i), geo.Pt(float64(i%4)*20, float64(i/4)*20))
	}
	if gs := w.GridStats(); len(gs) != 0 {
		t.Fatalf("grid instantiated before any query: %+v", gs)
	}
	d, _ := w.Device("d0")
	r, _ := d.Radio(device.TechBluetooth)
	r.Inquire()

	gs := w.GridStats()
	if len(gs) != 1 {
		t.Fatalf("got %d grids, want 1 (Bluetooth)", len(gs))
	}
	g := gs[0]
	if g.Tech != device.TechBluetooth || g.Radios != 16 || g.Cells == 0 || g.Refreshes == 0 {
		t.Fatalf("unexpected grid stats: %+v", g)
	}
	if g.Occupancy.Sum != 16 {
		t.Fatalf("occupancy sums to %v radios, want 16", g.Occupancy.Sum)
	}
	if g.CellSize != 10*(1+gridSlack) {
		t.Fatalf("cell size %v, want coverage radius with slack", g.CellSize)
	}
}

// TestGridRebuildsOnCoverageChange: SetParams with a different radius must
// re-derive the cell size instead of serving queries from stale geometry.
func TestGridRebuildsOnCoverageChange(t *testing.T) {
	w := instantWorld(t, 11)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	addBT(t, w, "b", geo.Pt(25, 0))

	if res := a.Inquire(); len(res) != 0 {
		t.Fatalf("found %v at 25 m with 10 m radius", res)
	}
	p := w.Params(device.TechBluetooth)
	p.CoverageRadius = 30
	w.SetParams(device.TechBluetooth, p)
	if res := a.Inquire(); len(res) != 1 {
		t.Fatalf("found %v at 25 m with 30 m radius, want b", res)
	}
	gs := w.GridStats()
	if len(gs) != 1 || gs[0].CellSize != 30*(1+gridSlack) {
		t.Fatalf("grid not rebuilt for new radius: %+v", gs)
	}
}
