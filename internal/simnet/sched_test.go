package simnet

import (
	"fmt"
	"math"
	"testing"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/rng"
)

func TestEventQueueOrdering(t *testing.T) {
	src := rng.New(7)
	var q eventQueue
	n := 500
	for i := 0; i < n; i++ {
		q.push(shardEvent{
			at:   time.Duration(src.Intn(50)) * time.Second,
			node: NodeID(src.Intn(40)),
			kind: eventKind(src.Intn(2)),
		})
	}
	if q.len() != n {
		t.Fatalf("queue holds %d events, want %d", q.len(), n)
	}
	prev, _ := q.peek()
	for q.len() > 0 {
		e := q.pop()
		if eventBefore(e, prev) {
			t.Fatalf("pop order violated: %+v after %+v", e, prev)
		}
		prev = e
	}
}

func TestDistToCellEdge(t *testing.T) {
	c := geo.Cell{CX: 1, CY: 2} // covers [20,40)x[40,60) at size 20
	cases := []struct {
		p    geo.Point
		want float64
	}{
		{geo.Pt(30, 50), 10}, // dead centre
		{geo.Pt(22, 50), 2},  // near the left edge
		{geo.Pt(30, 58.5), 1.5},
		{geo.Pt(20, 50), 0},   // exactly on an edge
		{geo.Pt(40, 50), 0},   // exactly on the far edge (owned by the next cell)
		{geo.Pt(100, 100), 0}, // outside entirely
	}
	for _, tc := range cases {
		if got := distToCellEdge(tc.p, c, 20); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("distToCellEdge(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestCrossingAfter(t *testing.T) {
	cell := geo.Cell{CX: 0, CY: 0}
	mid := geo.Pt(10, 10)

	// Stationary nodes (speed bound 0) never need re-bucketing.
	if _, ok := crossingAfter(mid, cell, 20, 0, 5); ok {
		t.Error("stationary node scheduled a crossing event")
	}
	if _, ok := crossingAfter(mid, cell, 20, -1, 5); ok {
		t.Error("negative speed bound scheduled a crossing event")
	}
	// Unbounded models are the caller's problem (unbucketed list), never
	// a finite crossing time.
	if _, ok := crossingAfter(mid, cell, 20, math.Inf(1), 5); ok {
		t.Error("unbounded speed scheduled a crossing event")
	}

	// Interior: 10 m to the nearest edge plus 5 m slack at 2 m/s = 7.5 s.
	d, ok := crossingAfter(mid, cell, 20, 2, 5)
	if !ok || d != 7500*time.Millisecond {
		t.Errorf("crossingAfter(interior) = %v, %t; want 7.5s, true", d, ok)
	}

	// A node exactly on a cell edge with zero effective slack cannot get a
	// zero delay (that would busy-loop); it gets the minimum instead.
	d, ok = crossingAfter(geo.Pt(0, 10), cell, 20, 3, 0)
	if !ok || d != minCrossingDelay {
		t.Errorf("crossingAfter(on edge, no slack) = %v, %t; want %v, true", d, ok, minCrossingDelay)
	}
}

func TestLinkCheckAfter(t *testing.T) {
	q := time.Second
	// Both endpoints static: never breaks by movement, no schedule.
	if _, ok := linkCheckAfter(5, 10, 0, q); ok {
		t.Error("static pair got a re-check schedule")
	}
	// Unbounded closing speed: re-check every superstep.
	if d, ok := linkCheckAfter(5, 10, math.Inf(1), q); !ok || d != q {
		t.Errorf("unbounded closing = %v, %t; want quantum, true", d, ok)
	}
	// 20 m of margin at 2 m/s combined = 10 s until it could break.
	if d, ok := linkCheckAfter(10, 30, 2, q); !ok || d != 10*time.Second {
		t.Errorf("margin case = %v, %t; want 10s, true", d, ok)
	}
	// Already at (or past) the edge: floored to the quantum, not zero.
	if d, ok := linkCheckAfter(30, 30, 2, q); !ok || d != q {
		t.Errorf("edge case = %v, %t; want quantum, true", d, ok)
	}
	if d, ok := linkCheckAfter(35, 30, 2, q); !ok || d != q {
		t.Errorf("past-edge case = %v, %t; want quantum, true", d, ok)
	}
}

// TestShardedIdleNodesCostNothing pins the event scheduler's whole point:
// a world of stationary, passive nodes schedules no events at all, so
// supersteps do no per-node work.
func TestShardedIdleNodesCostNothing(t *testing.T) {
	w := NewShardedWorld(ShardedConfig{Seed: 1})
	for i := 0; i < 200; i++ {
		_, err := w.AddNode(ShardNodeSpec{
			Name:  fmt.Sprintf("idle%d", i),
			Model: mobility.Static{At: geo.Pt(float64(i%20)*5, float64(i/20)*5)},
			Techs: []device.Tech{device.TechWLAN},
			// DiscoveryEvery 0: discoverable but never inquires.
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		w.Step()
	}
	s := w.Stats()
	if s.Steps != 50 {
		t.Fatalf("Steps = %d, want 50", s.Steps)
	}
	if s.Inquiries != 0 || s.Rebuckets != 0 || s.LinkChecks != 0 {
		t.Fatalf("idle world did work: %+v", s)
	}
	for i, sh := range w.shards {
		if sh.q.len() != 0 {
			t.Fatalf("shard %d holds %d events in an idle world", i, sh.q.len())
		}
	}
}

// shardedDiscoveryLog records every discovery round's outcome as a
// canonical line; twin worlds must produce identical logs.
type shardedDiscoveryLog struct {
	lines []string
}

func (l *shardedDiscoveryLog) hook() DiscoveryHook {
	return func(at time.Duration, node NodeID, tech device.Tech, results []ShardInquiry) {
		l.lines = append(l.lines, fmt.Sprintf("t=%s n=%d tech=%d res=%v", at, node, tech, results))
	}
}

// buildWakeupWorld populates a sharded world with an adversarial mix for
// the scheduler: static clusters, pedestrian walks, random waypoints, a
// node starting exactly on a region edge, and an unbounded-speed model
// that must live on the unbucketed always-candidate list.
func buildWakeupWorld(t *testing.T, cfg ShardedConfig) *ShardedWorld {
	t.Helper()
	w := NewShardedWorld(cfg)
	add := func(name string, m mobility.Model, techs ...device.Tech) {
		t.Helper()
		if _, err := w.AddNode(ShardNodeSpec{
			Name: name, Model: m, Techs: techs,
			DiscoveryEvery: 2 * time.Second,
			DiscoveryPhase: time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Static cluster inside one WLAN region (region size 60 for WLAN).
	for i := 0; i < 8; i++ {
		add(fmt.Sprintf("s%d", i), mobility.Static{At: geo.Pt(float64(i)*4, 10)},
			device.TechBluetooth, device.TechWLAN)
	}
	// Walkers crossing region boundaries in assorted directions.
	for i := 0; i < 12; i++ {
		start := geo.Pt(float64(i%4)*30, float64(i/4)*30)
		dest := geo.Pt(float64((i*37)%160)-50, float64((i*53)%160)-50)
		add(fmt.Sprintf("w%d", i), mobility.Walk(start, dest, 1.0+float64(i%4)),
			device.TechWLAN)
	}
	// Random waypoints inside a 200x200 box.
	for i := 0; i < 8; i++ {
		rw := mobility.NewRandomWaypoint(
			geo.Pt(float64(i)*20, 100),
			geo.Rect{Min: geo.Pt(-20, -20), Max: geo.Pt(180, 180)},
			1, 6, 3*time.Second, rng.New(9000+int64(i)),
		)
		add(fmt.Sprintf("rw%d", i), rw, device.TechBluetooth, device.TechWLAN)
	}
	// Exactly on a region edge at t=0 (region size 60): the crossing
	// scheduler sees distToCellEdge == 0.
	add("edge", mobility.Walk(geo.Pt(60, 0), geo.Pt(-40, 0), 2.5), device.TechWLAN)
	// Unbounded-speed model: must be an always-candidate, never bucketed.
	add("orbit", orbitModel{center: geo.Pt(30, 30)}, device.TechWLAN)
	return w
}

// TestShardedNoMissedWakeups compares the event-driven scheduler against
// the brute-force reference (every node re-bucketed every superstep, no
// crossing events): with stochastic response probabilities, quality noise,
// connect faults, and Bluetooth inquiry asymmetry all enabled, every
// discovery round and the evolving auto-link set must match exactly —
// i.e. crossing events never fire late enough to let a stale bucket leak
// into results, and never perturb per-node RNG streams.
func TestShardedNoMissedWakeups(t *testing.T) {
	base := ShardedConfig{Seed: 505, QualityNoise: 3, AutoLink: true}
	ev := buildWakeupWorld(t, base)

	bf := base
	bf.BruteForce = true
	br := buildWakeupWorld(t, bf)

	evLog, brLog := &shardedDiscoveryLog{}, &shardedDiscoveryLog{}
	ev.cfg.OnDiscovery = evLog.hook()
	br.cfg.OnDiscovery = brLog.hook()

	for step := 0; step < 90; step++ {
		ev.Step()
		br.Step()
		if len(evLog.lines) != len(brLog.lines) {
			t.Fatalf("step %d: %d event-mode discoveries vs %d brute-force", step, len(evLog.lines), len(brLog.lines))
		}
		for i := range evLog.lines {
			if evLog.lines[i] != brLog.lines[i] {
				t.Fatalf("step %d: discovery diverged:\n  event: %s\n  brute: %s", step, evLog.lines[i], brLog.lines[i])
			}
		}
		evLog.lines, brLog.lines = evLog.lines[:0], brLog.lines[:0]

		got, want := ev.LinkKeys(), br.LinkKeys()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("step %d: link sets diverged:\n  event: %v\n  brute: %v", step, got, want)
		}
	}

	es, bs := ev.Stats(), br.Stats()
	if es.Inquiries == 0 || es.InquiryResponses == 0 {
		t.Fatalf("scenario produced no discovery traffic: %+v", es)
	}
	if es.Inquiries != bs.Inquiries || es.InquiryResponses != bs.InquiryResponses {
		t.Fatalf("discovery counters diverged: event %+v, brute %+v", es, bs)
	}
	// The point of crossing events: far fewer re-buckets than the
	// every-node-every-step reference.
	if es.Rebuckets >= bs.Rebuckets {
		t.Fatalf("event scheduler re-bucketed %d times, brute force %d — no saving", es.Rebuckets, bs.Rebuckets)
	}
}

// TestShardedWorldBasics covers the small lifecycle surface: duplicate
// names, tech validation, positions, power toggling, Connect, Close.
func TestShardedWorldBasics(t *testing.T) {
	w := NewShardedWorld(ShardedConfig{Seed: 3})
	a, err := w.AddNode(ShardNodeSpec{Name: "a", Model: mobility.Static{At: geo.Pt(0, 0)}, Techs: []device.Tech{device.TechWLAN}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.AddNode(ShardNodeSpec{Name: "b", Model: mobility.Static{At: geo.Pt(10, 0)}, Techs: []device.Tech{device.TechWLAN}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddNode(ShardNodeSpec{Name: "a", Techs: []device.Tech{device.TechWLAN}}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := w.AddNode(ShardNodeSpec{Name: "x"}); err == nil {
		t.Fatal("node without technologies accepted")
	}
	if _, err := w.AddNode(ShardNodeSpec{Name: "y", Techs: []device.Tech{device.Tech(9)}}); err == nil {
		t.Fatal("invalid technology accepted")
	}

	if id, ok := w.NodeByName("b"); !ok || id != b {
		t.Fatalf("NodeByName(b) = %v, %t", id, ok)
	}
	if name := w.NodeName(a); name != "a" {
		t.Fatalf("NodeName(a) = %q", name)
	}

	w.Step()
	if got := w.Position(b); got != geo.Pt(10, 0) {
		t.Fatalf("Position(b) = %v", got)
	}

	if err := w.Connect(a, b, device.TechWLAN); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if !w.Linked(a, b, device.TechWLAN) || w.ActiveLinks() != 1 {
		t.Fatal("link not established")
	}
	if err := w.Connect(a, b, device.TechBluetooth); err == nil {
		t.Fatal("Connect across missing tech accepted")
	}
	if err := w.Connect(a, a, device.TechWLAN); err == nil {
		t.Fatal("self-dial accepted")
	}

	w.SetDown(b, true)
	if !w.IsDown(b) {
		t.Fatal("SetDown did not stick")
	}
	if n := w.CheckLinks(); n != 1 {
		t.Fatalf("CheckLinks broke %d links with b down, want 1", n)
	}
	w.SetDown(b, false)
	if err := w.Connect(a, b, device.TechWLAN); err != nil {
		t.Fatalf("reconnect after restart: %v", err)
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.ActiveLinks() != 0 {
		t.Fatal("Close left links behind")
	}
	if err := w.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
}
