package simnet

import (
	"sync"
	"testing"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/geo"
)

// manualWorld returns an instant, unlimited-bandwidth world on a manual
// clock (writes must not sleep, since nothing advances the clock).
func manualWorld(t *testing.T, seed int64) (*World, *clock.Manual) {
	t.Helper()
	clk := clock.NewManual()
	opts := []Option{WithQualityNoise(0)}
	for _, tech := range device.Techs() {
		p := DefaultParams(tech).Instant()
		p.Bandwidth = 0
		opts = append(opts, WithParams(tech, p))
	}
	w := NewWorld(clk, seed, opts...)
	t.Cleanup(func() { w.Close() })
	return w, clk
}

// dialPair connects a to b on port 10 and returns both endpoints.
func dialPair(t *testing.T, a, b *Radio) (cli, srv *Conn) {
	t.Helper()
	l, err := b.Listen(10)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv, err = l.Accept()
	}()
	cli, derr := a.Dial(b.Addr(), 10)
	if derr != nil {
		t.Fatalf("Dial: %v", derr)
	}
	<-done
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	return cli, srv
}

func TestImpairmentLossDropsWholeWrites(t *testing.T) {
	w, _ := manualWorld(t, 7)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(1, 0))
	cli, srv := dialPair(t, a, b)

	cli.SetImpairment(&Impairment{LossProb: 1})
	for i := 0; i < 5; i++ {
		if n, err := cli.Write([]byte("gone")); err != nil || n != 4 {
			t.Fatalf("lossy write: n=%d err=%v", n, err)
		}
	}
	if got := w.Stats().MessagesDropped; got != 5 {
		t.Fatalf("MessagesDropped = %d, want 5", got)
	}

	// Clearing the impairment lets bytes through again, whole-frame: the
	// reader sees exactly the surviving writes, no fragments.
	cli.SetImpairment(nil)
	if _, err := cli.Write([]byte("kept")); err != nil {
		t.Fatalf("clean write: %v", err)
	}
	buf := make([]byte, 16)
	n, err := srv.Read(buf)
	if err != nil || string(buf[:n]) != "kept" {
		t.Fatalf("read = %q, %v; want \"kept\"", buf[:n], err)
	}
}

func TestImpairmentBurstOutageAndQuality(t *testing.T) {
	w, clk := manualWorld(t, 7)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(1, 0))
	cli, _ := dialPair(t, a, b)

	base := cli.Quality()
	if base == 0 {
		t.Fatal("baseline quality 0")
	}

	cli.SetImpairment(&Impairment{
		MeanGood:       2 * time.Second,
		MeanBad:        2 * time.Second,
		QualityPenalty: 30,
	})
	if q := cli.Quality(); q != base-30 {
		t.Fatalf("good-state quality = %d, want %d", q, base-30)
	}

	// Advance far enough that the Gilbert–Elliott chain must have flipped
	// through a bad state at least once; sample densely to catch one.
	sawOutage, sawGood := false, false
	for i := 0; i < 400 && !(sawOutage && sawGood); i++ {
		clk.Advance(100 * time.Millisecond)
		switch q := cli.Quality(); q {
		case 0:
			sawOutage = true
		case base - 30:
			sawGood = true
		default:
			t.Fatalf("quality = %d, want 0 or %d", q, base-30)
		}
	}
	if !sawOutage || !sawGood {
		t.Fatalf("burst chain never alternated: outage=%v good=%v", sawOutage, sawGood)
	}
}

func TestImpairmentDeterministicReplay(t *testing.T) {
	run := func() (dropped int64, pattern []bool) {
		w, clk := manualWorld(t, 99)
		defer w.Close()
		a := addBT(t, w, "a", geo.Pt(0, 0))
		b := addBT(t, w, "b", geo.Pt(1, 0))
		cli, _ := dialPair(t, a, b)
		cli.SetImpairment(&Impairment{
			LossProb: 0.3,
			MeanGood: time.Second,
			MeanBad:  500 * time.Millisecond,
		})
		before := w.Stats().MessagesDropped
		for i := 0; i < 200; i++ {
			clk.Advance(50 * time.Millisecond)
			prev := w.Stats().MessagesDropped
			if _, err := cli.Write([]byte("x")); err != nil {
				panic(err)
			}
			pattern = append(pattern, w.Stats().MessagesDropped > prev)
		}
		return w.Stats().MessagesDropped - before, pattern
	}
	d1, p1 := run()
	d2, p2 := run()
	if d1 != d2 {
		t.Fatalf("drop counts differ: %d vs %d", d1, d2)
	}
	if d1 == 0 || d1 == 200 {
		t.Fatalf("degenerate drop count %d", d1)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("drop pattern diverges at write %d", i)
		}
	}
}

func TestSetLinkImpairmentAppliesToLiveAndFutureLinks(t *testing.T) {
	w, _ := manualWorld(t, 3)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(1, 0))
	cli, srv := dialPair(t, a, b)

	w.SetLinkImpairment(a.Addr(), b.Addr(), &Impairment{LossProb: 1})
	if _, err := cli.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The reverse direction is untouched (asymmetric degradation).
	if _, err := srv.Write([]byte("up")); err != nil {
		t.Fatalf("reverse write: %v", err)
	}
	buf := make([]byte, 8)
	if n, err := cli.Read(buf); err != nil || string(buf[:n]) != "up" {
		t.Fatalf("reverse read = %q, %v", buf[:n], err)
	}
	if got := w.Stats().MessagesDropped; got != 1 {
		t.Fatalf("MessagesDropped = %d, want 1", got)
	}

	// A future link between the same radios inherits the registration.
	cli.Close()
	srv.Close()
	cli2, _ := dialPair(t, a, b)
	if _, err := cli2.Write([]byte("y")); err != nil {
		t.Fatalf("write on new link: %v", err)
	}
	if got := w.Stats().MessagesDropped; got != 2 {
		t.Fatalf("MessagesDropped = %d, want 2", got)
	}

	// Clearing the registration restores delivery on new links.
	w.SetLinkImpairment(a.Addr(), b.Addr(), nil)
	cli2.Close()
	cli3, srv3 := dialPair(t, a, b)
	if _, err := cli3.Write([]byte("z")); err != nil {
		t.Fatalf("write after clear: %v", err)
	}
	if n, err := srv3.Read(buf); err != nil || string(buf[:n]) != "z" {
		t.Fatalf("read after clear = %q, %v", buf[:n], err)
	}
}

func TestLinkFilterSeversDiscoversAndDials(t *testing.T) {
	w, _ := manualWorld(t, 5)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(1, 0))
	cli, _ := dialPair(t, a, b)

	block := func(x, y *Radio) bool {
		n1, n2 := x.Device().Name(), y.Device().Name()
		return !(n1 == "a" && n2 == "b" || n1 == "b" && n2 == "a")
	}
	w.SetLinkFilter(block)

	// The installed filter severed the existing link.
	if _, err := cli.Write([]byte("x")); err == nil {
		t.Fatal("write on filtered link succeeded")
	}
	// Inquiries no longer see the peer; dials fail as out of range.
	if res := a.Inquire(); len(res) != 0 {
		t.Fatalf("inquiry found %d radios through the filter", len(res))
	}
	if q := a.QualityTo(b.Addr()); q != 0 {
		t.Fatalf("QualityTo through filter = %d, want 0", q)
	}
	if _, err := a.Dial(b.Addr(), 10); err == nil {
		t.Fatal("dial through filter succeeded")
	}

	// Healing restores everything.
	w.SetLinkFilter(nil)
	if res := a.Inquire(); len(res) != 1 {
		t.Fatalf("inquiry after heal found %d radios, want 1", len(res))
	}
}

func TestStartDegradationReplacesWithoutSnapBack(t *testing.T) {
	w, clk := manualWorld(t, 11)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(1, 0))
	cli, _ := dialPair(t, a, b)

	base := cli.Quality()
	cli.StartDegradation(2)
	clk.Advance(5 * time.Second)
	if q := cli.Quality(); q != base-10 {
		t.Fatalf("after 5s at rate 2: quality = %d, want %d", q, base-10)
	}

	// Replacing the rate keeps the accrued 10 units and continues at the
	// new rate — neither snapping back to base nor stacking both rates.
	cli.StartDegradation(1)
	if q := cli.Quality(); q != base-10 {
		t.Fatalf("immediately after replace: quality = %d, want %d", q, base-10)
	}
	clk.Advance(4 * time.Second)
	if q := cli.Quality(); q != base-14 {
		t.Fatalf("4s after replace: quality = %d, want %d (accrued 10 + 4×1)", q, base-14)
	}

	// Rate 0 cancels degradation entirely.
	cli.StartDegradation(0)
	if q := cli.Quality(); q != base {
		t.Fatalf("after cancel: quality = %d, want %d", q, base)
	}
}

func TestStartDegradationBreakRace(t *testing.T) {
	// Concurrent StartDegradation, Quality, and Break must be race-clean
	// (run under -race), and StartDegradation after Break a no-op.
	w, _ := manualWorld(t, 13)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(1, 0))
	cli, _ := dialPair(t, a, b)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(rate float64) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				cli.StartDegradation(rate)
				_ = cli.Quality()
			}
		}(float64(i))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cli.Break()
	}()
	wg.Wait()

	cli.StartDegradation(5)
	if q := cli.Quality(); q != 0 {
		t.Fatalf("quality on broken link = %d, want 0", q)
	}
}
