package simnet

import (
	"io"
	"sync"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/rng"
)

// link is one established connection: two Conn endpoints joined by a pair of
// unidirectional byte pipes.
type link struct {
	id        int64
	w         *World
	a, b      *Conn
	bandwidth float64 // bytes per simulated second

	mu          sync.Mutex
	broken      bool
	breakErr    error
	biasRate    float64 // quality units lost per simulated second
	biasStart   time.Time
	biasAccrued float64 // degradation banked by earlier rates
}

func newLink(w *World, id int64, ra, rb *Radio, bandwidth float64) *link {
	lk := &link{id: id, w: w, bandwidth: bandwidth}
	lk.a = &Conn{link: lk, local: ra, remote: rb}
	lk.b = &Conn{link: lk, local: rb, remote: ra}
	lk.a.peer, lk.b.peer = lk.b, lk.a
	lk.a.rd.init()
	lk.b.rd.init()
	return lk
}

// breakWith tears the link down abruptly: pending and future reads and
// writes on both endpoints fail with err. Idempotent.
func (lk *link) breakWith(err error) {
	lk.mu.Lock()
	if lk.broken {
		lk.mu.Unlock()
		return
	}
	lk.broken = true
	lk.breakErr = err
	lk.mu.Unlock()

	lk.a.rd.fail(err)
	lk.b.rd.fail(err)
	lk.w.removeLink(lk.id)
}

func (lk *link) brokenErr() error {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if lk.broken {
		return lk.breakErr
	}
	return nil
}

// bias returns the current artificial quality penalty (>= 0).
func (lk *link) bias() float64 {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	b := lk.biasAccrued
	if lk.biasRate != 0 {
		if elapsed := lk.w.clk.Since(lk.biasStart).Seconds(); elapsed > 0 {
			b += lk.biasRate * elapsed
		}
	}
	return b
}

// Conn is one endpoint of an established link. It implements
// io.ReadWriteCloser plus live link-quality sampling; writes are delayed to
// honour the technology's bandwidth.
type Conn struct {
	link   *link
	peer   *Conn
	local  *Radio
	remote *Radio
	rd     pipe

	// imp impairs writes from this endpoint (guarded by link.mu).
	imp *impairState

	closeOnce sync.Once
}

// LocalAddr returns the address of this endpoint's radio.
func (c *Conn) LocalAddr() device.Addr { return c.local.addr }

// RemoteAddr returns the address of the peer's radio.
func (c *Conn) RemoteAddr() device.Addr { return c.remote.addr }

// Read reads bytes sent by the peer. It blocks until data arrives, the peer
// closes (io.EOF after the buffer drains), or the link breaks (the break
// error immediately, discarding buffered data — the radio is gone).
func (c *Conn) Read(p []byte) (int, error) {
	return c.rd.read(p)
}

// Write sends bytes to the peer, sleeping to model the link's bandwidth
// and any impairment jitter. An impairment may silently drop the whole
// payload (loss is per Write call, so framed protocols lose whole frames,
// never fragments): the writer still sees success, as on a real radio.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.link.brokenErr(); err != nil {
		return 0, err
	}
	if c.rd.closedLocally() {
		return 0, ErrClosed
	}
	delay := time.Duration(0)
	if c.link.bandwidth > 0 && len(p) > 0 {
		delay = time.Duration(float64(len(p)) / c.link.bandwidth * float64(time.Second))
	}
	delay += c.link.writeJitter(c)
	if delay > 0 {
		c.link.w.clk.Sleep(delay)
	}
	// The sleep may have outlived the link.
	if err := c.link.brokenErr(); err != nil {
		return 0, err
	}
	if c.link.dropWrite(c) {
		w := c.link.w
		w.mu.Lock()
		w.stats.MessagesDropped++
		w.tFramesDropped.Inc()
		w.mu.Unlock()
		return len(p), nil
	}
	if err := c.peer.rd.write(p); err != nil {
		return 0, err
	}
	w := c.link.w
	w.mu.Lock()
	w.stats.BytesWritten += int64(len(p))
	w.stats.MessagesDelivered++
	w.tBytes.Add(uint64(len(p)))
	w.tFramesDelivered.Inc()
	w.mu.Unlock()
	return len(p), nil
}

// Close shuts this endpoint down: the peer's pending reads drain and then
// see io.EOF, this endpoint's reads and writes fail with ErrClosed. Closing
// the second endpoint removes the link. Close is idempotent.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.rd.closeLocal()
		c.peer.rd.closeWrite()
		if c.peer.rd.closedLocally() {
			// Both ends closed: retire the link unless already broken.
			c.link.mu.Lock()
			already := c.link.broken
			c.link.broken = true
			if c.link.breakErr == nil {
				c.link.breakErr = ErrClosed
			}
			c.link.mu.Unlock()
			if !already {
				c.link.w.removeLink(c.link.id)
			}
		}
	})
	return nil
}

// Quality returns the connection's current link quality on the 0–255 scale:
// the radio-to-radio quality minus any artificial degradation and
// impairment penalty, or 0 once the link is broken, out of range, or in an
// impairment burst outage. This is what the thesis' roaming and handover
// threads continuously monitor.
func (c *Conn) Quality() int {
	if c.link.brokenErr() != nil {
		return 0
	}
	penalty, outage := c.link.impairPenalty()
	if outage {
		return 0
	}
	base := c.local.QualityTo(c.remote.addr)
	q := float64(base) - c.link.bias() - float64(penalty)
	return int(rng.Clamp(q, 0, QualityMax))
}

// StartDegradation makes the connection's measured quality decay by rate
// units per simulated second from now on, reproducing the thesis'
// simulation device: "we simulate the first connection deterioration
// subtracting the monitored link quality value artificially by 1 every
// second" (§5.2.1). A second call replaces the rate: degradation accrued
// so far is kept (quality never snaps back up) and decay continues at the
// new rate — the two rates never stack. A rate of 0 cancels degradation
// entirely, discarding the accrued penalty. Calling on a broken link is a
// no-op.
func (c *Conn) StartDegradation(rate float64) {
	lk := c.link
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if lk.broken {
		return
	}
	now := lk.w.clk.Now()
	if rate == 0 {
		lk.biasRate, lk.biasAccrued = 0, 0
		return
	}
	if lk.biasRate != 0 {
		if elapsed := now.Sub(lk.biasStart).Seconds(); elapsed > 0 {
			lk.biasAccrued += lk.biasRate * elapsed
		}
	}
	lk.biasRate, lk.biasStart = rate, now
}

// Break forcibly severs the link (fault injection for tests/experiments).
func (c *Conn) Break() { c.link.breakWith(ErrLinkLost) }

// pipe is a unidirectional in-memory byte stream with blocking reads.
type pipe struct {
	mu          sync.Mutex
	cond        *sync.Cond
	buf         []byte
	writeClosed bool  // peer closed: EOF after drain
	localClosed bool  // this endpoint closed: reads fail ErrClosed
	err         error // link broke: reads fail immediately
}

func (p *pipe) init() {
	p.cond = sync.NewCond(&p.mu)
}

func (p *pipe) write(b []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	if p.localClosed || p.writeClosed {
		return ErrClosed
	}
	p.buf = append(p.buf, b...)
	p.cond.Broadcast()
	return nil
}

func (p *pipe) read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.err != nil {
			return 0, p.err
		}
		if p.localClosed {
			return 0, ErrClosed
		}
		if len(p.buf) > 0 {
			n := copy(b, p.buf)
			p.buf = p.buf[n:]
			if len(p.buf) == 0 {
				p.buf = nil
			}
			return n, nil
		}
		if p.writeClosed {
			return 0, io.EOF
		}
		p.cond.Wait()
	}
}

// fail makes all pending and future reads fail with err, discarding any
// buffered bytes (the link is gone; delivery guarantees are void).
func (p *pipe) fail(err error) {
	p.mu.Lock()
	p.err = err
	p.buf = nil
	p.cond.Broadcast()
	p.mu.Unlock()
}

// closeWrite marks the writer side closed: readers drain then see EOF.
func (p *pipe) closeWrite() {
	p.mu.Lock()
	p.writeClosed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// closeLocal marks the reading endpoint itself closed.
func (p *pipe) closeLocal() {
	p.mu.Lock()
	p.localClosed = true
	p.buf = nil
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *pipe) closedLocally() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.localClosed
}
