package simnet_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"peerhood/internal/faultplane"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/rng"
	"peerhood/internal/simnet"

	"peerhood/internal/device"
)

// chaosSoakRun drives one fully-stochastic sharded world (default tech
// parameters: response misses, connect faults, quality noise, AutoLink)
// through a fault script and returns every per-step digest, the complete
// discovery log, and the fault trace. The determinism contract says all
// three depend only on (seed, node specs, script, quantum, region size) —
// never on the shard count or on how many OS threads stepped the shards.
func chaosSoakRun(t *testing.T, shards int) (digests, discLog, trace []string) {
	t.Helper()
	const seed = 777
	src := rng.New(seed)

	sw := simnet.NewShardedWorld(simnet.ShardedConfig{
		Seed:         seed,
		Shards:       shards,
		QualityNoise: 2,
		AutoLink:     true,
		OnDiscovery: func(at time.Duration, node simnet.NodeID, tech device.Tech, results []simnet.ShardInquiry) {
			discLog = append(discLog, fmt.Sprintf("t=%s n=%d tech=%d res=%v", at, node, tech, results))
		},
	})
	defer sw.Close()

	names := make([]string, 120)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
		start := geo.Pt(src.Uniform(-120, 120), src.Uniform(-120, 120))
		var model mobility.Model
		switch i % 3 {
		case 0:
			model = mobility.Static{At: start}
		case 1:
			model = mobility.Walk(start, geo.Pt(src.Uniform(-120, 120), src.Uniform(-120, 120)), src.Uniform(0.5, 5))
		default:
			model = mobility.NewRandomWaypoint(start,
				geo.Rect{Min: geo.Pt(-130, -130), Max: geo.Pt(130, 130)},
				1, 6, time.Second, rng.New(int64(40_000+i)))
		}
		techs := []device.Tech{device.TechBluetooth}
		if i%2 == 0 {
			techs = append(techs, device.TechWLAN)
		}
		if _, err := sw.AddNode(simnet.ShardNodeSpec{
			Name: names[i], Model: model, Techs: techs,
			DiscoveryEvery: time.Duration(2+i%3) * time.Second,
			DiscoveryPhase: time.Duration(1+i%2) * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}

	plane, err := faultplane.NewShardPlane(faultplane.ShardConfig{World: sw, Resolve: equivResolve})
	if err != nil {
		t.Fatal(err)
	}
	run := plane.Load(faultplane.Script{Events: []faultplane.Event{
		{At: 3 * time.Second, Do: faultplane.Partition{Segments: [][]string{names[:40], names[40:90]}}},
		{At: 5 * time.Second, Do: faultplane.Blackout{
			Region:   geo.Rect{Min: geo.Pt(-60, -60), Max: geo.Pt(30, 30)},
			Duration: 4 * time.Second,
		}},
		{At: 7 * time.Second, Do: faultplane.Crash{Node: names[5]}},
		{At: 8 * time.Second, Do: faultplane.Impair{From: names[0], To: names[2],
			Profile: simnet.Impairment{LossProb: 0.3}, Symmetric: true}},
		{At: 10 * time.Second, Do: faultplane.Restart{Node: names[5]}},
		{At: 12 * time.Second, Do: faultplane.Heal{}},
		{At: 14 * time.Second, Do: faultplane.Partition{Segments: [][]string{names[90:]}}},
		{At: 18 * time.Second, Do: faultplane.Heal{}},
	}})

	for step := 0; step < 24; step++ {
		sw.Step()
		run.ApplyDue()
		digests = append(digests, sw.Digest())
	}
	if err := run.Err(); err != nil {
		t.Fatal(err)
	}
	if !run.Done() {
		t.Fatal("chaos script did not finish")
	}
	return digests, discLog, plane.Trace()
}

// TestShardedDeterminismAcrossParallelism is the determinism regression
// test: the same seed must replay byte-identically whatever the shard
// count and whatever GOMAXPROCS says — serial on one thread or parallel
// on all cores, per-step digests, discovery logs, and fault traces agree.
func TestShardedDeterminismAcrossParallelism(t *testing.T) {
	type config struct {
		procs  int
		shards int
	}
	configs := []config{
		{procs: 1, shards: 1},
		{procs: 1, shards: 8},
		{procs: runtime.NumCPU(), shards: 1},
		{procs: runtime.NumCPU(), shards: 3},
		{procs: runtime.NumCPU(), shards: 8},
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var refDigests, refDisc, refTrace []string
	for i, cfg := range configs {
		runtime.GOMAXPROCS(cfg.procs)
		digests, disc, trace := chaosSoakRun(t, cfg.shards)
		if i == 0 {
			refDigests, refDisc, refTrace = digests, disc, trace
			if len(disc) == 0 {
				t.Fatal("no discoveries fired")
			}
			continue
		}
		label := fmt.Sprintf("procs=%d shards=%d", cfg.procs, cfg.shards)
		for s := range refDigests {
			if digests[s] != refDigests[s] {
				t.Fatalf("%s: digest diverged at step %d: %s vs %s", label, s, digests[s], refDigests[s])
			}
		}
		if fmt.Sprint(disc) != fmt.Sprint(refDisc) {
			t.Fatalf("%s: discovery log diverged (%d vs %d entries)", label, len(disc), len(refDisc))
		}
		if fmt.Sprint(trace) != fmt.Sprint(refTrace) {
			t.Fatalf("%s: fault trace diverged:\n  got:  %v\n  want: %v", label, trace, refTrace)
		}
	}
}

// TestShardedSameSeedByteIdentical replays the chaos soak twice with the
// same configuration and demands byte-for-byte identical observables —
// the baseline replay guarantee the cross-parallelism test refines.
func TestShardedSameSeedByteIdentical(t *testing.T) {
	d1, l1, t1 := chaosSoakRun(t, 0) // 0 = default shard count
	d2, l2, t2 := chaosSoakRun(t, 0)
	if fmt.Sprint(d1) != fmt.Sprint(d2) {
		t.Fatal("same-seed digests diverged")
	}
	if fmt.Sprint(l1) != fmt.Sprint(l2) {
		t.Fatal("same-seed discovery logs diverged")
	}
	if fmt.Sprint(t1) != fmt.Sprint(t2) {
		t.Fatal("same-seed fault traces diverged")
	}
}
