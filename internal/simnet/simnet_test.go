package simnet

import (
	"errors"
	"io"
	"testing"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
)

// instantWorld returns a world where all technologies are deterministic and
// instantaneous, suitable for protocol-state assertions.
func instantWorld(t *testing.T, seed int64) *World {
	t.Helper()
	opts := []Option{WithQualityNoise(0)}
	for _, tech := range device.Techs() {
		opts = append(opts, WithParams(tech, DefaultParams(tech).Instant()))
	}
	return NewWorld(clock.Real(), seed, opts...)
}

func addBT(t *testing.T, w *World, name string, at geo.Point) *Radio {
	t.Helper()
	d, err := w.AddDevice(name, mobility.Static{At: at})
	if err != nil {
		t.Fatalf("AddDevice(%s): %v", name, err)
	}
	r, err := d.AddRadio(device.TechBluetooth)
	if err != nil {
		t.Fatalf("AddRadio(%s): %v", name, err)
	}
	return r
}

func TestAddDeviceDuplicate(t *testing.T) {
	w := instantWorld(t, 1)
	if _, err := w.AddDevice("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.AddDevice("a", nil); err == nil {
		t.Fatal("duplicate device accepted")
	}
}

func TestAddRadioAssignsUniqueMACs(t *testing.T) {
	w := instantWorld(t, 1)
	seen := make(map[device.Addr]bool)
	for i := 0; i < 5; i++ {
		r := addBT(t, w, string(rune('a'+i)), geo.Pt(0, 0))
		if seen[r.Addr()] {
			t.Fatalf("duplicate MAC %v", r.Addr())
		}
		seen[r.Addr()] = true
	}
}

func TestAddRadioRejectsDuplicateTech(t *testing.T) {
	w := instantWorld(t, 1)
	d, _ := w.AddDevice("a", nil)
	if _, err := d.AddRadio(device.TechBluetooth); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddRadio(device.TechBluetooth); err == nil {
		t.Fatal("duplicate radio accepted")
	}
	if _, err := d.AddRadio(device.Tech(77)); err == nil {
		t.Fatal("invalid tech accepted")
	}
}

func TestInquireFindsInRangeOnly(t *testing.T) {
	w := instantWorld(t, 2)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	addBT(t, w, "near", geo.Pt(5, 0))   // within 10m BT radius
	addBT(t, w, "far", geo.Pt(50, 0))   // out of range
	addBT(t, w, "edge", geo.Pt(9.9, 0)) // just inside

	res := a.Inquire()
	if len(res) != 2 {
		t.Fatalf("Inquire found %d radios, want 2: %v", len(res), res)
	}
	for _, r := range res {
		if r.Quality <= 0 || r.Quality > QualityMax {
			t.Fatalf("quality out of scale: %v", r)
		}
	}
}

func TestInquireIgnoresOtherTech(t *testing.T) {
	w := instantWorld(t, 3)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	d, _ := w.AddDevice("w", mobility.Static{At: geo.Pt(1, 0)})
	if _, err := d.AddRadio(device.TechWLAN); err != nil {
		t.Fatal(err)
	}
	if res := a.Inquire(); len(res) != 0 {
		t.Fatalf("BT inquiry found WLAN radio: %v", res)
	}
}

func TestInquireSkipsDownDevices(t *testing.T) {
	w := instantWorld(t, 4)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(3, 0))
	b.Device().SetDown(true)
	if res := a.Inquire(); len(res) != 0 {
		t.Fatalf("found downed device: %v", res)
	}
	b.Device().SetDown(false)
	if res := a.Inquire(); len(res) != 1 {
		t.Fatalf("did not find restored device: %v", res)
	}
}

func TestInquiryAsymmetry(t *testing.T) {
	// A radio that is itself mid-inquiry must not be discoverable on an
	// asymmetric technology (§3.4.2).
	p := DefaultParams(device.TechBluetooth).Instant()
	p.InquiryDuration = 200 * time.Millisecond // sim time
	p.Asymmetric = true
	w := NewWorld(clock.Scaled(10), 5, WithQualityNoise(0), WithParams(device.TechBluetooth, p))

	da, _ := w.AddDevice("a", mobility.Static{At: geo.Pt(0, 0)})
	a, _ := da.AddRadio(device.TechBluetooth)
	db, _ := w.AddDevice("b", mobility.Static{At: geo.Pt(2, 0)})
	b, _ := db.AddRadio(device.TechBluetooth)

	// Start b's long inquiry in the background, then inquire from a while b
	// is still busy.
	bStarted := make(chan struct{})
	bDone := make(chan []InquiryResult, 1)
	go func() {
		close(bStarted)
		bDone <- b.Inquire()
	}()
	<-bStarted
	time.Sleep(2 * time.Millisecond) // let b mark itself inquiring (20ms sim)
	res := a.Inquire()
	if len(res) != 0 {
		t.Fatalf("discovered a radio that was mid-inquiry: %v", res)
	}
	<-bDone

	// Afterwards b is discoverable again.
	if res := a.Inquire(); len(res) != 1 {
		t.Fatalf("radio not discoverable after inquiry finished: %v", res)
	}
}

func TestQualityDecreasesWithDistance(t *testing.T) {
	w := instantWorld(t, 6)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	near := addBT(t, w, "near", geo.Pt(1, 0))
	far := addBT(t, w, "far", geo.Pt(9, 0))

	qNear := a.QualityTo(near.Addr())
	qFar := a.QualityTo(far.Addr())
	if qNear <= qFar {
		t.Fatalf("quality not monotone: near=%d far=%d", qNear, qFar)
	}
	if qNear > QualityMax || qFar < DefaultParams(device.TechBluetooth).EdgeQuality-5 {
		t.Fatalf("quality out of calibrated band: near=%d far=%d", qNear, qFar)
	}
}

func TestQualityZeroOutOfRange(t *testing.T) {
	w := instantWorld(t, 7)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	far := addBT(t, w, "far", geo.Pt(100, 0))
	if q := a.QualityTo(far.Addr()); q != 0 {
		t.Fatalf("out-of-range quality = %d, want 0", q)
	}
	if q := a.QualityTo(device.Addr{Tech: device.TechBluetooth, MAC: "none"}); q != 0 {
		t.Fatalf("missing radio quality = %d, want 0", q)
	}
}

func TestThresholdSitsInsideCoverage(t *testing.T) {
	// The 230 threshold must be crossed strictly inside coverage so soft
	// handover has a window to act (design decision in DESIGN.md).
	w := instantWorld(t, 8)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	mid := addBT(t, w, "mid", geo.Pt(5, 0)) // 50% of radius
	edge := addBT(t, w, "edge", geo.Pt(9.5, 0))
	if q := a.QualityTo(mid.Addr()); q >= QualityThreshold {
		t.Fatalf("quality at 50%% radius = %d, want < %d (threshold must trip before edge)", q, QualityThreshold)
	}
	if q := a.QualityTo(edge.Addr()); q <= 0 {
		t.Fatalf("edge quality = %d, want > 0", q)
	}
}

func TestDialAndTransfer(t *testing.T) {
	w := instantWorld(t, 9)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(5, 0))

	l, err := b.Listen(10)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type acc struct {
		c   *Conn
		err error
	}
	got := make(chan acc, 1)
	go func() {
		c, err := l.Accept()
		got <- acc{c, err}
	}()

	cli, err := a.Dial(b.Addr(), 10)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	srvAcc := <-got
	if srvAcc.err != nil {
		t.Fatalf("Accept: %v", srvAcc.err)
	}
	srv := srvAcc.c

	if _, err := cli.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 16)
	n, err := srv.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}

	// And the reverse direction.
	if _, err := srv.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	n, err = cli.Read(buf)
	if err != nil || string(buf[:n]) != "world" {
		t.Fatalf("reverse Read = %q, %v", buf[:n], err)
	}

	if cli.RemoteAddr() != b.Addr() || srv.RemoteAddr() != a.Addr() {
		t.Fatal("addresses mismatched")
	}
}

func TestDialErrors(t *testing.T) {
	w := instantWorld(t, 10)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(5, 0))
	far := addBT(t, w, "far", geo.Pt(500, 0))

	if _, err := a.Dial(device.Addr{Tech: device.TechBluetooth, MAC: "zz"}, 10); !errors.Is(err, ErrNoSuchRadio) {
		t.Fatalf("missing radio: %v", err)
	}
	if _, err := a.Dial(far.Addr(), 10); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out of range: %v", err)
	}
	if _, err := a.Dial(b.Addr(), 10); !errors.Is(err, ErrRefused) {
		t.Fatalf("no listener: %v", err)
	}
	if _, err := a.Dial(device.Addr{Tech: device.TechWLAN, MAC: "zz"}, 10); !errors.Is(err, ErrTechMismatch) {
		t.Fatalf("tech mismatch: %v", err)
	}
	b.Device().SetDown(true)
	if _, err := a.Dial(b.Addr(), 10); !errors.Is(err, ErrRadioDown) {
		t.Fatalf("radio down: %v", err)
	}
}

func TestDialConnectionFaultRate(t *testing.T) {
	// With FaultProb=0.3 roughly 3 of 10 dials fail (§4.3). Use many trials.
	p := DefaultParams(device.TechBluetooth).Instant()
	p.FaultProb = 0.3
	w := NewWorld(clock.Real(), 11, WithQualityNoise(0), WithParams(device.TechBluetooth, p))
	da, _ := w.AddDevice("a", mobility.Static{At: geo.Pt(0, 0)})
	a, _ := da.AddRadio(device.TechBluetooth)
	db, _ := w.AddDevice("b", mobility.Static{At: geo.Pt(5, 0)})
	b, _ := db.AddRadio(device.TechBluetooth)
	l, _ := b.Listen(10)
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()

	faults := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		c, err := a.Dial(b.Addr(), 10)
		if errors.Is(err, ErrConnectFault) {
			faults++
			continue
		}
		if err != nil {
			t.Fatalf("unexpected dial error: %v", err)
		}
		_ = c.Close()
	}
	rate := float64(faults) / trials
	if rate < 0.22 || rate > 0.38 {
		t.Fatalf("fault rate = %v, want ~0.3", rate)
	}
}

func TestDialLatencyWithinConfiguredBand(t *testing.T) {
	p := DefaultParams(device.TechBluetooth).Reliable()
	p.ConnectMin = 100 * time.Millisecond
	p.ConnectMax = 200 * time.Millisecond
	clk := clock.Scaled(100)
	w := NewWorld(clk, 12, WithQualityNoise(0), WithParams(device.TechBluetooth, p))
	da, _ := w.AddDevice("a", mobility.Static{At: geo.Pt(0, 0)})
	a, _ := da.AddRadio(device.TechBluetooth)
	db, _ := w.AddDevice("b", mobility.Static{At: geo.Pt(5, 0)})
	b, _ := db.AddRadio(device.TechBluetooth)
	l, _ := b.Listen(10)
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()

	start := clk.Now()
	if _, err := a.Dial(b.Addr(), 10); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Since(start)
	if elapsed < 100*time.Millisecond || elapsed > 400*time.Millisecond {
		t.Fatalf("dial latency %v outside configured band", elapsed)
	}
}

func TestMovedAwayDuringConnectFails(t *testing.T) {
	// The dial re-checks coverage after the latency window: if the target
	// walked out meanwhile, the dial fails (§5.2.1's lost-before-connected).
	p := DefaultParams(device.TechBluetooth).Reliable()
	p.ConnectMin = 500 * time.Millisecond
	p.ConnectMax = 500 * time.Millisecond
	clk := clock.Scaled(100)
	w := NewWorld(clk, 13, WithQualityNoise(0), WithParams(device.TechBluetooth, p))
	da, _ := w.AddDevice("a", mobility.Static{At: geo.Pt(0, 0)})
	a, _ := da.AddRadio(device.TechBluetooth)
	// b sprints out of coverage within the connect window.
	db, _ := w.AddDevice("b", mobility.Linear{Start: geo.Pt(9, 0), Velocity: geo.Vector{DX: 50, DY: 0}})
	bRadio, _ := db.AddRadio(device.TechBluetooth)
	l, _ := bRadio.Listen(10)
	defer l.Close()

	_, err := a.Dial(bRadio.Addr(), 10)
	if !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("dial to fleeing device: err = %v, want ErrOutOfRange", err)
	}
}

func TestCloseGivesPeerEOFAfterDrain(t *testing.T) {
	w := instantWorld(t, 14)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(5, 0))
	l, _ := b.Listen(10)
	defer l.Close()
	srvCh := make(chan *Conn, 1)
	go func() {
		c, _ := l.Accept()
		srvCh <- c
	}()
	cli, err := a.Dial(b.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-srvCh

	if _, err := cli.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 8)
	n, err := srv.Read(buf)
	if err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("drain read = %q, %v", buf[:n], err)
	}
	if _, err := srv.Read(buf); err != io.EOF {
		t.Fatalf("post-drain read err = %v, want EOF", err)
	}
	// Writes towards the closed endpoint fail.
	if _, err := srv.Write([]byte("x")); err == nil {
		t.Fatal("write to closed endpoint succeeded")
	}
	// Local reads after own Close fail.
	if _, err := cli.Read(buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after own close: %v", err)
	}
}

func TestBreakDiscardsBufferAndFailsBothEnds(t *testing.T) {
	w := instantWorld(t, 15)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(5, 0))
	l, _ := b.Listen(10)
	defer l.Close()
	srvCh := make(chan *Conn, 1)
	go func() {
		c, _ := l.Accept()
		srvCh <- c
	}()
	cli, err := a.Dial(b.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-srvCh

	if _, err := cli.Write([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	cli.Break()

	buf := make([]byte, 8)
	if _, err := srv.Read(buf); !errors.Is(err, ErrLinkLost) {
		t.Fatalf("read after break: %v, want ErrLinkLost (no drain)", err)
	}
	if _, err := cli.Write([]byte("x")); !errors.Is(err, ErrLinkLost) {
		t.Fatalf("write after break: %v", err)
	}
	if q := cli.Quality(); q != 0 {
		t.Fatalf("quality after break = %d, want 0", q)
	}
	if w.ActiveLinks() != 0 {
		t.Fatalf("link not removed: %d active", w.ActiveLinks())
	}
}

func TestBlockedReadUnblocksOnBreak(t *testing.T) {
	w := instantWorld(t, 16)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(5, 0))
	l, _ := b.Listen(10)
	defer l.Close()
	srvCh := make(chan *Conn, 1)
	go func() {
		c, _ := l.Accept()
		srvCh <- c
	}()
	cli, err := a.Dial(b.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-srvCh

	readErr := make(chan error, 1)
	go func() {
		_, err := srv.Read(make([]byte, 1))
		readErr <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the read block
	cli.Break()
	select {
	case err := <-readErr:
		if !errors.Is(err, ErrLinkLost) {
			t.Fatalf("blocked read got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked read never unblocked after break")
	}
}

func TestCheckLinksBreaksOutOfRange(t *testing.T) {
	w := instantWorld(t, 17)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(5, 0))
	l, _ := b.Listen(10)
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	cli, err := a.Dial(b.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}

	if n := w.CheckLinks(); n != 0 {
		t.Fatalf("CheckLinks broke %d in-range links", n)
	}
	// Teleport b out of range and re-check.
	b.Device().SetModel(mobility.Static{At: geo.Pt(1000, 0)})
	if n := w.CheckLinks(); n != 1 {
		t.Fatalf("CheckLinks broke %d links, want 1", n)
	}
	if _, err := cli.Write([]byte("x")); !errors.Is(err, ErrLinkLost) {
		t.Fatalf("write on lost link: %v", err)
	}
}

func TestQualityDegradation(t *testing.T) {
	// StartDegradation reproduces the thesis' artificial 1-unit/s decay.
	clk := clock.Scaled(1000)
	p := DefaultParams(device.TechBluetooth).Instant()
	w := NewWorld(clk, 18, WithQualityNoise(0), WithParams(device.TechBluetooth, p))
	da, _ := w.AddDevice("a", mobility.Static{At: geo.Pt(0, 0)})
	a, _ := da.AddRadio(device.TechBluetooth)
	db, _ := w.AddDevice("b", mobility.Static{At: geo.Pt(1, 0)})
	b, _ := db.AddRadio(device.TechBluetooth)
	l, _ := b.Listen(10)
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	cli, err := a.Dial(b.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}

	q0 := cli.Quality()
	cli.StartDegradation(10) // 10 units per simulated second
	clk.Sleep(5 * time.Second)
	q1 := cli.Quality()
	drop := q0 - q1
	if drop < 30 || drop > 80 {
		t.Fatalf("degradation drop = %d after 5s at 10/s, want ~50", drop)
	}
	cli.StartDegradation(0)
	if q := cli.Quality(); q < q0-5 {
		t.Fatalf("cancelling degradation did not restore quality: %d vs %d", q, q0)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	w := instantWorld(t, 19)
	b := addBT(t, w, "b", geo.Pt(0, 0))
	l, _ := b.Listen(10)
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errCh <- err
	}()
	time.Sleep(2 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Accept after close: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept never unblocked")
	}
	// Port is released: can listen again.
	l2, err := b.Listen(10)
	if err != nil {
		t.Fatalf("re-listen: %v", err)
	}
	_ = l2.Close()
}

func TestListenDuplicatePort(t *testing.T) {
	w := instantWorld(t, 20)
	b := addBT(t, w, "b", geo.Pt(0, 0))
	l, _ := b.Listen(10)
	defer l.Close()
	if _, err := b.Listen(10); err == nil {
		t.Fatal("duplicate bind accepted")
	}
}

func TestAutoCheckBreaksLinksInBackground(t *testing.T) {
	clk := clock.Scaled(1000)
	p := DefaultParams(device.TechBluetooth).Instant()
	w := NewWorld(clk, 21, WithQualityNoise(0), WithParams(device.TechBluetooth, p))
	defer w.Close()
	da, _ := w.AddDevice("a", mobility.Static{At: geo.Pt(0, 0)})
	a, _ := da.AddRadio(device.TechBluetooth)
	// b walks away at 5 m/s; leaves 10m coverage after ~2s sim.
	db, _ := w.AddDevice("b", mobility.Linear{Start: geo.Pt(0.5, 0), Velocity: geo.Vector{DX: 5, DY: 0}})
	b, _ := db.AddRadio(device.TechBluetooth)
	l, _ := b.Listen(10)
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	cli, err := a.Dial(b.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}
	w.StartAutoCheck(200 * time.Millisecond)

	deadline := time.After(3 * time.Second) // wall guard
	for {
		if _, err := cli.Write([]byte("ping")); err != nil {
			if !errors.Is(err, ErrLinkLost) {
				t.Fatalf("unexpected error: %v", err)
			}
			return // link was broken by the auto-checker
		}
		select {
		case <-deadline:
			t.Fatal("link never broke although device left coverage")
		default:
		}
		clk.Sleep(100 * time.Millisecond)
	}
}

func TestBandwidthDelaysWrites(t *testing.T) {
	p := DefaultParams(device.TechBluetooth).Instant()
	p.Bandwidth = 1000 // 1000 B per sim second
	clk := clock.Scaled(1000)
	w := NewWorld(clk, 22, WithQualityNoise(0), WithParams(device.TechBluetooth, p))
	da, _ := w.AddDevice("a", mobility.Static{At: geo.Pt(0, 0)})
	a, _ := da.AddRadio(device.TechBluetooth)
	db, _ := w.AddDevice("b", mobility.Static{At: geo.Pt(1, 0)})
	b, _ := db.AddRadio(device.TechBluetooth)
	l, _ := b.Listen(10)
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	cli, err := a.Dial(b.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}

	start := clk.Now()
	if _, err := cli.Write(make([]byte, 2000)); err != nil { // 2 sim seconds
		t.Fatal(err)
	}
	if elapsed := clk.Since(start); elapsed < 1500*time.Millisecond {
		t.Fatalf("2000B at 1000B/s took %v sim, want >= ~2s", elapsed)
	}
}

func TestStatsCounters(t *testing.T) {
	w := instantWorld(t, 23)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(5, 0))
	l, _ := b.Listen(10)
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	a.Inquire()
	c, err := a.Dial(b.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("12345")); err != nil {
		t.Fatal(err)
	}

	s := w.Stats()
	if s.Inquiries != 1 || s.InquiryResponses != 1 {
		t.Fatalf("inquiry stats = %+v", s)
	}
	if s.DialsAttempted != 1 || s.DialsSucceeded != 1 {
		t.Fatalf("dial stats = %+v", s)
	}
	if s.BytesWritten != 5 {
		t.Fatalf("bytes = %d, want 5", s.BytesWritten)
	}
	w.ResetStats()
	if s := w.Stats(); s.DialsAttempted != 0 {
		t.Fatalf("ResetStats did not clear: %+v", s)
	}
}

func TestDeterministicInquiryWithSameSeed(t *testing.T) {
	run := func() []InquiryResult {
		p := DefaultParams(device.TechBluetooth).Instant()
		p.ResponseProb = 0.5
		w := NewWorld(clock.Real(), 99, WithQualityNoise(0), WithParams(device.TechBluetooth, p))
		a, _ := w.AddDevice("a", mobility.Static{At: geo.Pt(0, 0)})
		ra, _ := a.AddRadio(device.TechBluetooth)
		for i := 0; i < 6; i++ {
			d, _ := w.AddDevice(string(rune('b'+i)), mobility.Static{At: geo.Pt(float64(i), 1)})
			_, _ = d.AddRadio(device.TechBluetooth)
		}
		return ra.Inquire()
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("same seed, different response counts: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestWorldCloseBreaksLinksAndStopsChecker(t *testing.T) {
	w := instantWorld(t, 24)
	a := addBT(t, w, "a", geo.Pt(0, 0))
	b := addBT(t, w, "b", geo.Pt(5, 0))
	l, _ := b.Listen(10)
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	cli, err := a.Dial(b.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}
	w.StartAutoCheck(time.Second)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write([]byte("x")); err == nil {
		t.Fatal("write succeeded after world close")
	}
	// Close is idempotent.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
