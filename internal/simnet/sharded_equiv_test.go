package simnet_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/faultplane"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/rng"
	"peerhood/internal/simnet"
)

// The sharded world must be behaviourally identical to the classic
// single-lock world wherever their models overlap. With deterministic
// parameters (response probability 1, no quality noise, no connect
// faults) neither world consumes randomness on any compared observable,
// so the two substrates — one stepped by parallel shards and event
// queues, one by a global mutex and full scans — must agree exactly on
// discovery results, the evolving link set, and the fault-script trace.

// equivHandle is a no-op crash/restart handle for fault scripts.
type equivHandle struct{ name string }

func (h equivHandle) Name() string   { return h.name }
func (h equivHandle) Crash() error   { return nil }
func (h equivHandle) Restart() error { return nil }

func equivResolve(name string) (faultplane.NodeHandle, bool) {
	return equivHandle{name: name}, true
}

// exactParams strips every stochastic choice and latency from t's
// defaults and zeroes bandwidth so probe writes never sleep.
func exactParams(t device.Tech) simnet.TechParams {
	p := simnet.DefaultParams(t).Instant()
	p.Bandwidth = 0
	return p
}

// pairKey canonically names an (unordered) linked pair on one tech, in
// the sharded world's LinkKeys format (endpoints ordered by node id).
func pairKey(a, b int, names []string, tech device.Tech) string {
	if b < a {
		a, b = b, a
	}
	return fmt.Sprintf("%s<->%s/%v", names[a], names[b], tech)
}

// resultSet renders a discovery result as a canonical sorted set of
// name:quality entries, independent of substrate-specific ordering.
func resultSet(entries map[string]int) string {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	for _, k := range keys {
		b = append(b, fmt.Sprintf("%s:%d;", k, entries[k])...)
	}
	return string(b)
}

// TestShardedEquivalentToLinearScanWorld is the cross-substrate property
// test: randomized placements and mobility, a randomized fault script
// (partitions, blackouts, crash/restart, impair including error paths,
// heal), and randomized dialing — the sharded world and the classic
// WithLinearScan world must produce identical discovery results, link
// sets, and fault traces at every simulated second.
func TestShardedEquivalentToLinearScanWorld(t *testing.T) {
	const rounds = 28
	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			seed := int64(7100 + trial)
			src := rng.New(seed * 13)
			n := 16 + src.Intn(8)

			type spec struct {
				name  string
				techs []device.Tech
				model func() mobility.Model // fresh instance per world
			}
			specs := make([]spec, n)
			names := make([]string, n)
			for i := range specs {
				techs := []device.Tech{device.TechBluetooth}
				if src.Bool(0.5) {
					techs = append(techs, device.TechWLAN)
				}
				start := geo.Pt(src.Uniform(-60, 60), src.Uniform(-60, 60))
				var mk func() mobility.Model
				switch src.Intn(3) {
				case 0:
					mk = func() mobility.Model { return mobility.Static{At: start} }
				case 1:
					dest := geo.Pt(src.Uniform(-60, 60), src.Uniform(-60, 60))
					speed := src.Uniform(0.5, 4)
					mk = func() mobility.Model { return mobility.Walk(start, dest, speed) }
				default:
					rwSeed := src.Int63()
					mk = func() mobility.Model {
						return mobility.NewRandomWaypoint(start,
							geo.Rect{Min: geo.Pt(-70, -70), Max: geo.Pt(70, 70)},
							0.5, 5, 2*time.Second, rng.New(rwSeed))
					}
				}
				specs[i] = spec{name: fmt.Sprintf("d%d", i), techs: techs, model: mk}
				names[i] = specs[i].name
			}

			// Classic reference world: linear scan, one mutex, manual clock.
			clk := clock.NewManual()
			opts := []simnet.Option{simnet.WithQualityNoise(0), simnet.WithLinearScan()}
			for _, tech := range device.Techs() {
				opts = append(opts, simnet.WithParams(tech, exactParams(tech)))
			}
			lw := simnet.NewWorld(clk, seed, opts...)
			radios := make([]map[device.Tech]*simnet.Radio, n)
			listeners := make(map[device.Addr]*simnet.Listener)
			addrName := make(map[device.Addr]string)
			for i, sp := range specs {
				d, err := lw.AddDevice(sp.name, sp.model())
				if err != nil {
					t.Fatal(err)
				}
				radios[i] = make(map[device.Tech]*simnet.Radio)
				for _, tech := range sp.techs {
					r, err := d.AddRadio(tech)
					if err != nil {
						t.Fatal(err)
					}
					l, err := r.Listen(1)
					if err != nil {
						t.Fatal(err)
					}
					radios[i][tech] = r
					listeners[r.Addr()] = l
					addrName[r.Addr()] = sp.name
				}
			}
			defer lw.Close()

			// Sharded world: same nodes, every node inquiring once per
			// superstep so each simulated second is comparable.
			params := make(map[device.Tech]simnet.TechParams)
			for _, tech := range device.Techs() {
				params[tech] = exactParams(tech)
			}
			discovered := make(map[string]map[string]int)
			sw := simnet.NewShardedWorld(simnet.ShardedConfig{
				Seed:   seed,
				Params: params,
				OnDiscovery: func(at time.Duration, node simnet.NodeID, tech device.Tech, results []simnet.ShardInquiry) {
					set := make(map[string]int, len(results))
					for _, r := range results {
						set[specs[r.Node].name] = r.Quality
					}
					discovered[fmt.Sprintf("%s/%d/%d", at, node, tech)] = set
				},
			})
			for _, sp := range specs {
				if _, err := sw.AddNode(simnet.ShardNodeSpec{
					Name: sp.name, Model: sp.model(), Techs: sp.techs,
					DiscoveryEvery: time.Second,
				}); err != nil {
					t.Fatal(err)
				}
			}
			defer sw.Close()

			// Randomized fault script, shared verbatim by both planes.
			var script faultplane.Script
			addEvent := func(at time.Duration, do faultplane.Action) {
				script.Events = append(script.Events, faultplane.Event{At: at, Do: do})
			}
			var segA, segB []string
			for i := 0; i < n; i++ {
				if src.Bool(0.5) {
					segA = append(segA, specs[i].name)
				} else if src.Bool(0.5) {
					segB = append(segB, specs[i].name)
				}
			}
			addEvent(3*time.Second, faultplane.Partition{Segments: [][]string{segA, segB}})
			bx, by := src.Uniform(-50, 20), src.Uniform(-50, 20)
			addEvent(time.Duration(5+src.Intn(3))*time.Second, faultplane.Blackout{
				Region:   geo.Rect{Min: geo.Pt(bx, by), Max: geo.Pt(bx+40, by+40)},
				Duration: time.Duration(3+src.Intn(4)) * time.Second,
			})
			victim := specs[src.Intn(n)].name
			addEvent(9*time.Second, faultplane.Crash{Node: victim})
			addEvent(14*time.Second, faultplane.Restart{Node: victim})
			impA, impB := specs[src.Intn(n)].name, specs[src.Intn(n)].name
			if impA != impB {
				addEvent(11*time.Second, faultplane.Impair{From: impA, To: impB,
					Profile: simnet.Impairment{LossProb: 0.5}, Symmetric: true})
			}
			// Error-path parity: both planes must record identical err= lines.
			addEvent(12*time.Second, faultplane.Impair{From: "nosuch", To: specs[0].name,
				Profile: simnet.Impairment{LossProb: 1}})
			addEvent(16*time.Second, faultplane.Heal{})
			addEvent(18*time.Second, faultplane.Blackout{Region: geo.Rect{}, Duration: 0}) // errors on both
			addEvent(20*time.Second, faultplane.Partition{Segments: [][]string{{specs[0].name, specs[1].name}}})
			addEvent(24*time.Second, faultplane.Heal{})

			cPlane, err := faultplane.New(faultplane.Config{World: lw, Clock: clk, Resolve: equivResolve})
			if err != nil {
				t.Fatal(err)
			}
			sPlane, err := faultplane.NewShardPlane(faultplane.ShardConfig{World: sw, Resolve: equivResolve})
			if err != nil {
				t.Fatal(err)
			}
			cRun := cPlane.Load(script)
			sRun := sPlane.Load(script)

			conns := make(map[string]*simnet.Conn)
			for round := 1; round <= rounds; round++ {
				at := time.Duration(round) * time.Second
				sw.Step()
				clk.Advance(time.Second)

				// Discovery: every node, every tech, exact same result sets.
				for i, sp := range specs {
					for _, tech := range sp.techs {
						want := make(map[string]int)
						for _, res := range radios[i][tech].Inquire() {
							want[addrName[res.Addr]] = res.Quality
						}
						got := discovered[fmt.Sprintf("%s/%d/%d", at, simnet.NodeID(i), tech)]
						if resultSet(got) != resultSet(want) {
							t.Fatalf("round %d: %s/%v discovery diverged:\n  sharded: %v\n  classic: %v",
								round, sp.name, tech, got, want)
						}
					}
				}

				// Fault events due at this second fire on both substrates
				// (after the second's discoveries, so both see them from the
				// next round on).
				sRun.ApplyDue()
				cRun.ApplyDue()
				lw.CheckLinks()

				// Prune dead classic links by probing; the sharded world's
				// event-driven checks must have reaped exactly the same set.
				for key, conn := range conns {
					if _, err := conn.Write([]byte{0}); err != nil {
						delete(conns, key)
					}
				}
				cKeys := make([]string, 0, len(conns))
				for key := range conns {
					cKeys = append(cKeys, key)
				}
				sort.Strings(cKeys)
				sKeys := sw.LinkKeys()
				sort.Strings(sKeys)
				if fmt.Sprint(cKeys) != fmt.Sprint(sKeys) {
					t.Fatalf("round %d: link sets diverged:\n  classic: %v\n  sharded: %v", round, cKeys, sKeys)
				}

				// Randomized dialing: same pairs attempted on both; success
				// must agree.
				for k := 0; k < 3; k++ {
					i, j := src.Intn(n), src.Intn(n)
					if i == j {
						continue
					}
					tech := specs[i].techs[src.Intn(len(specs[i].techs))]
					rj, ok := radios[j][tech]
					if !ok {
						continue
					}
					key := pairKey(i, j, names, tech)
					if _, linked := conns[key]; linked {
						continue
					}
					conn, cErr := radios[i][tech].Dial(rj.Addr(), 1)
					sErr := sw.Connect(simnet.NodeID(i), simnet.NodeID(j), tech)
					if (cErr == nil) != (sErr == nil) {
						t.Fatalf("round %d: dial %s: classic err=%v, sharded err=%v", round, key, cErr, sErr)
					}
					if cErr == nil {
						if _, err := listeners[rj.Addr()].Accept(); err != nil {
							t.Fatal(err)
						}
						conns[key] = conn
					}
				}
			}

			cTrace, sTrace := cPlane.Trace(), sPlane.Trace()
			if fmt.Sprint(cTrace) != fmt.Sprint(sTrace) {
				t.Fatalf("fault traces diverged:\n  classic: %v\n  sharded: %v", cTrace, sTrace)
			}
			if len(cTrace) == 0 {
				t.Fatal("fault script never fired")
			}
		})
	}
}
