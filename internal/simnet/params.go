package simnet

import (
	"time"

	"peerhood/internal/device"
)

// TechParams calibrates one radio technology. Defaults reproduce the
// behaviour the thesis reports for its Bluetooth testbed and plausible
// values for the WLAN/GPRS plugins it names but does not measure.
type TechParams struct {
	// CoverageRadius is the maximum link distance in metres.
	CoverageRadius float64

	// ConnectMin/ConnectMax bound the connection-establishment latency,
	// sampled uniformly. The thesis measured 3–18 s for Bluetooth (§4.3).
	ConnectMin time.Duration
	ConnectMax time.Duration

	// FaultProb is the probability that a dial fails outright even in good
	// signal conditions. The thesis observed 3 failures in 10 attempts on
	// Bluetooth "even if the devices have strong enough signal" (§4.3).
	FaultProb float64

	// InquiryDuration is how long one device-discovery inquiry occupies the
	// radio. While inquiring, an asymmetric radio is not discoverable
	// (§3.4.2, Bluetooth inquiry asymmetry).
	InquiryDuration time.Duration

	// DiscoveryCycle is the nominal period between inquiry rounds.
	DiscoveryCycle time.Duration

	// ResponseProb is the probability that an in-range discoverable radio
	// answers a given inquiry (Bluetooth inquiries randomly miss devices).
	ResponseProb float64

	// Asymmetric marks technologies whose radios cannot be discovered while
	// they are themselves inquiring (Bluetooth).
	Asymmetric bool

	// Bandwidth is the sustained data rate in bytes per simulated second.
	Bandwidth float64

	// EdgeQuality is the link-quality reading at the very edge of coverage;
	// quality at distance 0 is QualityMax. With EdgeQuality 180 the thesis'
	// handover threshold of 230 sits at ~60% of the coverage radius.
	EdgeQuality int
}

// Link-quality scale (Bluetooth HCI convention, used throughout the thesis).
const (
	// QualityMax is the best possible link-quality reading.
	QualityMax = 255
	// QualityThreshold is the minimum acceptable per-hop quality: routes
	// whose hops fall below it are rejected and monitors count a "low"
	// signal (figs 3.9, 5.5; value 230 throughout the thesis).
	QualityThreshold = 230
)

// DefaultParams returns the calibrated parameters for t.
func DefaultParams(t device.Tech) TechParams {
	switch t {
	case device.TechBluetooth:
		// Calibration: the thesis reports 3–18 s to bring up a *bridged*
		// connection (two dials, §4.3), 4–15 s for handover
		// interconnection (§5.2.1), and 3 failures in 10 bridged attempts.
		// Per-dial latency of 2–9 s and per-dial fault probability 0.16
		// compose to those end-to-end figures (4–18 s; 1-0.84² ≈ 0.30).
		return TechParams{
			CoverageRadius:  10,
			ConnectMin:      2 * time.Second,
			ConnectMax:      9 * time.Second,
			FaultProb:       0.16,
			InquiryDuration: 2 * time.Second,
			DiscoveryCycle:  10 * time.Second,
			ResponseProb:    0.9,
			Asymmetric:      true,
			Bandwidth:       100 << 10, // ~100 KiB/s
			EdgeQuality:     180,
		}
	case device.TechWLAN:
		return TechParams{
			CoverageRadius:  30,
			ConnectMin:      500 * time.Millisecond,
			ConnectMax:      2 * time.Second,
			FaultProb:       0.05,
			InquiryDuration: 500 * time.Millisecond,
			DiscoveryCycle:  5 * time.Second,
			ResponseProb:    0.98,
			Asymmetric:      false,
			Bandwidth:       1 << 20, // 1 MiB/s
			EdgeQuality:     180,
		}
	case device.TechGPRS:
		return TechParams{
			CoverageRadius:  1000,
			ConnectMin:      1 * time.Second,
			ConnectMax:      3 * time.Second,
			FaultProb:       0.1,
			InquiryDuration: 1 * time.Second,
			DiscoveryCycle:  15 * time.Second,
			ResponseProb:    0.95,
			Asymmetric:      false,
			Bandwidth:       5 << 10, // 5 KiB/s
			EdgeQuality:     180,
		}
	default:
		return TechParams{
			CoverageRadius:  10,
			ConnectMin:      time.Second,
			ConnectMax:      2 * time.Second,
			FaultProb:       0.1,
			InquiryDuration: time.Second,
			DiscoveryCycle:  10 * time.Second,
			ResponseProb:    0.9,
			Bandwidth:       64 << 10,
			EdgeQuality:     180,
		}
	}
}

// Reliable returns p with all stochastic failure modes removed and
// connection latency pinned to its minimum. Tests that assert exact
// protocol state use reliable parameters; experiments that reproduce the
// thesis' fault statistics use the defaults.
func (p TechParams) Reliable() TechParams {
	p.FaultProb = 0
	p.ResponseProb = 1
	p.ConnectMax = p.ConnectMin
	return p
}

// Instant returns p with zero connection latency and inquiry time on top of
// Reliable, for unit tests that must not depend on any clock waiting.
// Bandwidth is kept: data transfers still take simulated time, so tests
// can exercise in-flight behaviour (swap a transport mid-upload).
// Scale harnesses that do not measure transfers zero it via SetParams.
func (p TechParams) Instant() TechParams {
	p = p.Reliable()
	p.ConnectMin = 0
	p.ConnectMax = 0
	p.InquiryDuration = 0
	return p
}
