package simnet

import (
	"math"
	"sort"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/metrics"
)

// The spatial grid index replaces the linear scan over every radio in the
// world with a per-technology bucketing of radios into square cells sized
// by the technology's coverage radius. A range query (Inquire) then only
// examines the 3x3 cell neighbourhood around the inquirer, so one
// discovery round across N uniformly spread nodes costs O(N * density)
// instead of O(N^2) distance checks.
//
// Positions are functions of time (mobility models), so buckets go stale
// as the clock advances. Each grid tracks when it last re-indexed and the
// world tracks an upper bound on device speed (mobility.SpeedBounded);
// their product bounds how far any radio can have drifted from its bucket.
// Staleness is absorbed in two tiers, keeping queries exact — provably a
// superset of the in-range set — at all times:
//
//  1. Cells carry gridSlack of extra width, so drift up to
//     gridSlack*radius costs nothing: the 3x3 neighbourhood still covers
//     radius plus drift.
//  2. Beyond that, queries widen to as many cell rings as the drift bound
//     requires (RingsFor), trading a few more candidates for not touching
//     the index. Only once drift exceeds refreshDriftRadii coverage radii
//     does the grid re-index every radio — an O(N) pass amortised over
//     the many O(cell) queries since the previous one.
//
// A world containing a model with no speed bound (drift +Inf) serves
// queries from the full per-technology radio list instead — the pre-grid
// linear scan cost, never worse. Note that the bound is the world-wide
// supremum: one very fast device quickens re-indexing for everyone, which
// GridStats.Refreshes makes visible.

// gridSlack is the fraction of the coverage radius added to the cell size
// to absorb inter-refresh movement. Larger slack means wider queries
// before ring expansion kicks in; 0.5 keeps the 3x3 neighbourhood at
// 2.25x the area of unslacked cells while letting every device move half
// a coverage radius between refreshes for free.
const gridSlack = 0.5

// refreshDriftRadii is how many coverage radii of drift the grid tolerates
// (by widening queries) before re-indexing. At 2, queries never widen past
// 2 rings (a 5x5 block): RingsFor(radius*(1+2), radius*(1+gridSlack)) = 2.
const refreshDriftRadii = 2.0

// radioGrid buckets one technology's radios by cell. All fields are
// guarded by World.mu.
type radioGrid struct {
	tech     device.Tech
	radius   float64 // coverage radius the grid was built for
	cellSize float64 // radius * (1 + gridSlack)
	cells    map[geo.Cell][]*Radio
	loc      map[*Radio]geo.Cell // bucket each radio currently occupies
	// deadCheb is the smallest Chebyshev cell distance at which two
	// bucketed radios are certainly out of mutual coverage, even if both
	// drifted the maximum refreshDriftRadii*radius since the last
	// refresh: (deadCheb-1)*cellSize > radius + 2*refreshDriftRadii*radius.
	deadCheb int
	// queryRings is how many cell rings the next candidates call must
	// examine to cover the coverage radius plus current drift; gridLocked
	// recomputes it on every query.
	queryRings  int
	lastRefresh time.Time
	refreshes   int64
}

func newRadioGrid(t device.Tech, radius float64, now time.Time) *radioGrid {
	size := radius * (1 + gridSlack)
	if size <= 0 {
		size = 1
	}
	return &radioGrid{
		tech:        t,
		radius:      radius,
		cellSize:    size,
		cells:       make(map[geo.Cell][]*Radio),
		loc:         make(map[*Radio]geo.Cell),
		deadCheb:    int(math.Floor((radius+2*refreshDriftRadii*radius)/size+1)) + 1,
		queryRings:  1,
		lastRefresh: now,
	}
}

func (g *radioGrid) insert(r *Radio, p geo.Point) {
	c := geo.CellOf(p, g.cellSize)
	g.loc[r] = c
	g.cells[c] = append(g.cells[c], r)
}

func (g *radioGrid) remove(r *Radio) {
	c, ok := g.loc[r]
	if !ok {
		return
	}
	delete(g.loc, r)
	s := g.cells[c]
	for i, x := range s {
		if x == r {
			s = append(s[:i], s[i+1:]...)
			break
		}
	}
	if len(s) == 0 {
		delete(g.cells, c)
	} else {
		g.cells[c] = s
	}
}

// refresh re-buckets every radio at its position now.
func (g *radioGrid) refresh(radios []*Radio, now time.Time) {
	clear(g.cells)
	clear(g.loc)
	for _, r := range radios {
		g.insert(r, r.dev.Position())
	}
	g.lastRefresh = now
	g.refreshes++
}

// scanAllRings is the queryRings sentinel for worlds whose speed bound is
// unknown (+Inf): buckets cannot be trusted after any time advance, so
// candidates falls back to the technology's full radio list — the same
// cost as the pre-grid linear scan, never worse.
const scanAllRings = -1

// candidates returns every radio bucketed within the grid's current query
// neighbourhood of p (3x3 cells, wider while drift demands it), in radio
// insertion order — the same relative order the full scan visits, so
// stochastic response draws consume the RNG identically. all is the
// technology's complete radio list, used when queryRings is scanAllRings.
func (g *radioGrid) candidates(p geo.Point, all []*Radio) []*Radio {
	if g.queryRings == scanAllRings {
		return all
	}
	center := geo.CellOf(p, g.cellSize)
	var out []*Radio
	center.Neighborhood(g.queryRings, func(c geo.Cell) {
		out = append(out, g.cells[c]...)
	})
	sort.Slice(out, func(i, j int) bool { return out[i].order < out[j].order })
	return out
}

// gridLocked returns the grid for t ready for a query: created on first
// use, query width matched to the current drift bound, and re-indexed once
// accumulated movement exceeds refreshDriftRadii coverage radii. Callers
// hold w.mu.
func (w *World) gridLocked(t device.Tech) *radioGrid {
	if w.speedDirty {
		// A SetModel lowered some device's speed; the cached supremum is
		// stale-high. One O(devices) pass here keeps every SetModel O(1).
		w.maxSpeed = 0
		for _, d := range w.devices {
			w.maxSpeed = math.Max(w.maxSpeed, d.speedBound())
		}
		w.speedDirty = false
	}
	g := w.grids[t]
	now := w.clk.Now()
	if g == nil {
		g = newRadioGrid(t, w.params[t].CoverageRadius, now)
		w.grids[t] = g
		g.refresh(w.techRadios[t], now)
		w.stats.GridRefreshes++
		return g
	}
	drift := 0.0
	if elapsed := now.Sub(g.lastRefresh).Seconds(); elapsed > 0 && w.maxSpeed > 0 {
		drift = w.maxSpeed * elapsed
	}
	if math.IsInf(drift, 1) {
		// Some device's model declares no speed bound: re-indexing now
		// would be invalidated by the very next clock tick, so don't
		// thrash — serve this query from the full per-technology list.
		// (Self-heals: once SetModel replaces the unbounded model, the
		// finite drift triggers one refresh and cell queries resume.)
		g.queryRings = scanAllRings
		return g
	}
	if drift > refreshDriftRadii*g.radius {
		g.refresh(w.techRadios[t], now)
		w.stats.GridRefreshes++
		drift = 0
	}
	g.queryRings = 1
	if drift > 0 {
		if rings := geo.RingsFor(g.radius+drift, g.cellSize); rings > 1 {
			g.queryRings = rings
		}
	}
	return g
}

// GridStats describes one technology's spatial index.
type GridStats struct {
	Tech device.Tech
	// CellSize is the cell edge length in metres.
	CellSize float64
	// Radios is how many radios the grid indexes.
	Radios int
	// Cells is how many cells are occupied.
	Cells int
	// Occupancy summarises radios per occupied cell; its Mean times 9 is
	// the expected candidate count per inquiry.
	Occupancy metrics.Summary
	// Refreshes counts full O(N) re-indexing passes.
	Refreshes int64
}

// GridStats returns a snapshot of every instantiated per-technology grid,
// in canonical technology order. Technologies whose grid has not been
// queried yet (or that WithLinearScan disabled) are absent.
func (w *World) GridStats() []GridStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []GridStats
	for _, t := range device.Techs() {
		g := w.grids[t]
		if g == nil {
			continue
		}
		occ := make([]float64, 0, len(g.cells))
		for _, rs := range g.cells {
			occ = append(occ, float64(len(rs)))
		}
		out = append(out, GridStats{
			Tech:      t,
			CellSize:  g.cellSize,
			Radios:    len(g.loc),
			Cells:     len(g.cells),
			Occupancy: metrics.Summarize(occ),
			Refreshes: g.refreshes,
		})
	}
	return out
}
