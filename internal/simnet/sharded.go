package simnet

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/rng"
)

// ShardedWorld is the scalable sibling of World: the plane is partitioned
// into square regions keyed on the same grid math as the PR 1 radio index,
// each superstep fans region-local work out to parallel shard workers, and
// an event-driven scheduler replaces per-tick polling so idle nodes cost
// nothing. It models the parts of the classic world whose per-tick scans
// dominate at scale — discovery, link lifecycle, and the fault plane's
// partitions/blackouts/crashes — plus a minimal byte transport
// (Dial/Listen/ShardConn, see shardconn.go) so scale runs can move real
// protocol frames over established links; bandwidth timing is not
// modelled there.
//
// # Determinism contract
//
// Same seed, same node set, same scripted inputs ⇒ byte-identical run,
// regardless of GOMAXPROCS or the configured shard count:
//
//   - every stochastic draw comes from a per-node stream derived purely
//     from (world seed, NodeID), and a node's stream is consumed only by
//     that node's own events;
//   - the parallel phase of a superstep computes effects against frozen
//     world state and mutates nothing shared;
//   - effects are applied in a serial merge, globally sorted by
//     (time, NodeID, kind), so the post-step state never depends on which
//     worker computed what, or when.
//
// Methods are NOT safe for concurrent use from multiple goroutines; the
// driving harness owns the world (the classic World keeps the
// one-goroutine-per-daemon concurrency story, this one trades it for
// scale).
type ShardedWorld struct {
	cfg        ShardedConfig
	params     map[device.Tech]TechParams
	quantum    time.Duration
	regionSize float64
	slack      float64

	mu          sync.Mutex
	initialized bool
	closed      bool
	now         time.Duration
	nodes       []shardNode // value slice: one slab, not 100k GC-traced objects
	byName      map[string]NodeID

	// Region membership as packed per-cell record buckets: each occupied
	// cell owns a []candRec slab, and a node's slot field points back at
	// its record, so a bucket move is an O(1) swap-remove plus append.
	// The candidate gather then concatenates nine contiguous slabs — no
	// per-node pointer chase. (An earlier intrusive-list layout was also
	// O(1) per move, but at a million nodes its dependent next-pointer
	// walks plus the per-candidate snapshot reads fell out of cache and
	// broke flat per-node scaling; the buckets are refreshed from the
	// snapshot once per active superstep instead, one independent read
	// per node.) Bucket order is arbitrary (swap-removes shuffle it); the
	// candidate gather sorts, so determinism is unaffected. Once-occupied
	// cells keep their empty bucket for reuse — the set of cells a world
	// ever touches is bounded by its area, and dropping slabs on every
	// transient empty would churn the allocator.
	regions    map[geo.Cell]*regionBucket
	bucketList []*regionBucket // dense iteration order for the refresh pass
	unbucketed []NodeID

	// Per-superstep snapshot of the candidate filter's hot fields, one
	// dense record per node. Positions are filled in parallel stripes
	// before the workers start; mask/down are kept current on
	// AddNode/SetDown. It feeds the bucket refresh (and posAt's snapshot
	// hit path), so each node's mobility model is asked for its position
	// once per active superstep instead of once per candidate visit. The
	// values are identical to what the models and nodes hold — the
	// snapshot exists because chasing scattered shardNode and
	// mobility-model pointers in the hot path is what breaks flat
	// per-node scaling, not because any state differs.
	snap   []nodeSnap
	snapAt time.Duration // snapshot position validity time; -1 until first snapshot
	shards []*shard

	// Established links live in a packed slab whose slots recycle through
	// a free list; linkIdx maps a canonical key to its slot. Link churn in
	// steady state allocates nothing, and the table costs one map entry
	// plus one inline record per live link instead of a GC-traced heap
	// object per link.
	links    []shardLink
	linkIdx  map[shardLinkKey]int32
	linkFree []int32
	linkKeys []shardLinkKey // sorted-key scratch, reused across sweeps
	runHead  []int          // merge-phase per-shard run cursors
	linkq    linkQueue
	stats    ShardStats

	// Byte-transport registries (shardconn.go); nil until the first
	// Listen/Dial, so pure simulation runs pay nothing for them.
	listeners map[shardPortKey]*ShardListener
	conns     map[shardLinkKey][]*ShardConn

	partitioned bool
	partSegs    []int32 // indexed by NodeID; meaningful when partitioned
	blackouts   []shardBlackout
	impairments map[[2]NodeID]Impairment
}

// NodeID identifies a node in a ShardedWorld. IDs are assigned densely in
// AddNode order, so they double as the deterministic tie-break in the
// merge phase.
type NodeID int

// ShardInquiry is one response to a sharded-world discovery round.
type ShardInquiry struct {
	Node    NodeID
	Quality int
}

// DiscoveryHook observes one technology's discovery results for one node.
// It runs inside the serial merge phase in deterministic order; it must
// not call back into the world. The results slice is backed by a buffer
// the next superstep reuses — copy the entries out to retain them.
type DiscoveryHook func(at time.Duration, node NodeID, tech device.Tech, results []ShardInquiry)

// ShardedConfig parametrises a ShardedWorld. The zero value of every
// field is usable.
type ShardedConfig struct {
	// Seed roots every per-node random stream.
	Seed int64

	// Shards is the number of event-queue shards, each stepped by its own
	// worker goroutine during the parallel phase. The default is 8 — a
	// constant, NOT NumCPU, so default-configured runs replay identically
	// across machines. Results are independent of the value either way.
	Shards int

	// Quantum is the superstep length (default 1s). Events due within a
	// superstep are computed in parallel and applied at its end.
	Quantum time.Duration

	// RegionSize is the region edge length in metres; 0 derives it as
	// twice the largest coverage radius among the technologies in use.
	RegionSize float64

	// QualityNoise is the stddev of Gaussian link-quality noise
	// (default 0: sharded runs are exact unless asked otherwise).
	QualityNoise float64

	// AutoLink establishes a link to every peer a discovery round finds
	// (the classic world's daemons dial explicitly; scale scenarios want
	// the churn without per-node goroutines).
	AutoLink bool

	// BruteForce disables crossing-event scheduling and re-buckets every
	// node every superstep. It is the reference the no-missed-wakeup
	// tests compare the event scheduler against, and must produce
	// identical discovery results.
	BruteForce bool

	// Params overrides technology parameters (nil entries fall back to
	// DefaultParams).
	Params map[device.Tech]TechParams

	// OnDiscovery observes discovery results; see DiscoveryHook.
	OnDiscovery DiscoveryHook
}

// ShardNodeSpec describes one node added to a ShardedWorld.
type ShardNodeSpec struct {
	// Name addresses the node in fault scripts; it must be unique.
	Name string
	// Model is the node's mobility model (nil = Static at the origin).
	Model mobility.Model
	// Techs lists the node's radio technologies (at least one).
	Techs []device.Tech
	// DiscoveryEvery is the period between discovery rounds; 0 makes the
	// node passive (it is discoverable but never inquires — and costs
	// nothing per superstep unless it also moves).
	DiscoveryEvery time.Duration
	// DiscoveryPhase offsets the first discovery round (default
	// DiscoveryEvery). Staggering phases avoids thundering herds.
	DiscoveryPhase time.Duration
}

// ShardStats counts sharded-world events.
type ShardStats struct {
	Steps             int64
	Inquiries         int64
	InquiryResponses  int64
	InquiryCandidates int64
	Rebuckets         int64
	DialsAttempted    int64
	DialsSucceeded    int64
	DialsFaulted      int64
	DialsOutOfRange   int64
	LinkChecks        int64
	LinksBroken       int64

	// Byte-transport counters (shardconn.go): the classic world's traffic
	// accounting, minus bandwidth timing. Drops come from impairment
	// profiles; the sharded transport never loses frames otherwise.
	BytesWritten      int64
	MessagesDelivered int64
	MessagesDropped   int64
}

func (s *ShardStats) add(o ShardStats) {
	s.Inquiries += o.Inquiries
	s.InquiryResponses += o.InquiryResponses
	s.InquiryCandidates += o.InquiryCandidates
	s.Rebuckets += o.Rebuckets
}

// shardNode is one node's state. Mutable fields are written only between
// supersteps or in the serial merge phase; the parallel phase reads them
// as frozen state.
type shardNode struct {
	id       NodeID
	name     string
	model    mobility.Model
	speed    float64 // mobility speed bound, m/s (+Inf if undeclared)
	slackEff float64 // region slack minus one quantum of worst-case drift
	techs    []device.Tech
	techMask uint8
	every    time.Duration
	phase    time.Duration
	src      *rng.Source // per-node stream; consumed only by this node's events

	down     bool
	bucketed bool
	cell     geo.Cell
	slot     int32            // index of this node's record in its cell's bucket
	inqUntil [4]time.Duration // per-tech inquiry-window end (asymmetric techs)
}

// nodeSnap is one node's entry in the per-superstep hot-field snapshot.
type nodeSnap struct {
	pos  geo.Point
	mask uint8
	down bool
}

type shardBlackout struct {
	region geo.Rect
	until  time.Duration
}

// shardLinkKey identifies a link; A < B canonically.
type shardLinkKey struct {
	A, B NodeID
	Tech device.Tech
}

func linkKeyOf(a, b NodeID, t device.Tech) shardLinkKey {
	if b < a {
		a, b = b, a
	}
	return shardLinkKey{A: a, B: b, Tech: t}
}

func linkKeyBefore(a, b shardLinkKey) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	return a.Tech < b.Tech
}

type shardLink struct {
	key         shardLinkKey
	established time.Duration
	// nextCheck is the scheduled re-check time; a popped queue entry whose
	// time does not match is stale and is skipped.
	nextCheck time.Duration
}

// linkEntry is one scheduled link re-check in the serial link queue.
type linkEntry struct {
	at  time.Duration
	key shardLinkKey
}

func linkEntryBefore(a, b linkEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return linkKeyBefore(a.key, b.key)
}

// linkQueue is a binary min-heap of linkEntries.
type linkQueue struct{ h []linkEntry }

func (q *linkQueue) push(e linkEntry) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !linkEntryBefore(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *linkQueue) peek() (linkEntry, bool) {
	if len(q.h) == 0 {
		return linkEntry{}, false
	}
	return q.h[0], true
}

func (q *linkQueue) pop() linkEntry {
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && linkEntryBefore(q.h[l], q.h[small]) {
			small = l
		}
		if r < last && linkEntryBefore(q.h[r], q.h[small]) {
			small = r
		}
		if small == i {
			break
		}
		q.h[i], q.h[small] = q.h[small], q.h[i]
		i = small
	}
	return top
}

// NewShardedWorld creates an empty sharded world.
func NewShardedWorld(cfg ShardedConfig) *ShardedWorld {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = time.Second
	}
	params := make(map[device.Tech]TechParams)
	for _, t := range device.Techs() {
		params[t] = DefaultParams(t)
		if cfg.Params != nil {
			if p, ok := cfg.Params[t]; ok {
				params[t] = p
			}
		}
	}
	w := &ShardedWorld{
		cfg:         cfg,
		params:      params,
		quantum:     cfg.Quantum,
		byName:      make(map[string]NodeID),
		regions:     make(map[geo.Cell]*regionBucket),
		linkIdx:     make(map[shardLinkKey]int32),
		impairments: make(map[[2]NodeID]Impairment),
		snapAt:      -1,
	}
	w.shards = make([]*shard, cfg.Shards)
	for i := range w.shards {
		w.shards[i] = &shard{}
	}
	return w
}

// singleTech holds one shared immutable []Tech per technology; AddNode
// hands it to every single-radio node. Indexed by the Tech value (1..3).
var singleTech = func() [4][]device.Tech {
	var a [4][]device.Tech
	for _, t := range device.Techs() {
		a[t] = []device.Tech{t}
	}
	return a
}()

// nodeSeed mixes the world seed with a node ID into an independent stream
// seed (splitmix64 finalizer). Per-node streams — rather than one world
// stream — are what make replay independent of shard count and scheduling.
func nodeSeed(seed int64, id NodeID) int64 {
	z := uint64(seed) + (uint64(id)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & math.MaxInt64)
}

// AddNode adds a node and returns its ID. Nodes may be added before or
// between supersteps, never concurrently with one.
func (w *ShardedWorld) AddNode(spec ShardNodeSpec) (NodeID, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if spec.Name == "" {
		return 0, fmt.Errorf("simnet: sharded node needs a name")
	}
	if _, dup := w.byName[spec.Name]; dup {
		return 0, fmt.Errorf("simnet: duplicate node %q", spec.Name)
	}
	if len(spec.Techs) == 0 {
		return 0, fmt.Errorf("simnet: node %q needs at least one technology", spec.Name)
	}
	var mask uint8
	for _, t := range spec.Techs {
		if !t.Valid() {
			return 0, fmt.Errorf("simnet: node %q: invalid technology %v", spec.Name, t)
		}
		mask |= 1 << uint(t)
	}
	model := spec.Model
	if model == nil {
		model = mobility.Static{}
	}
	techs := spec.Techs
	if len(techs) == 1 {
		// The overwhelmingly common single-radio node shares one immutable
		// per-tech slice instead of allocating its own one-element copy
		// (1M nodes would otherwise mean 1M slices held for the world's
		// whole lifetime).
		techs = singleTech[techs[0]]
	} else {
		techs = append([]device.Tech(nil), techs...)
	}
	id := NodeID(len(w.nodes))
	n := shardNode{
		id:       id,
		name:     spec.Name,
		model:    model,
		speed:    mobility.MaxSpeedOf(model),
		techs:    techs,
		techMask: mask,
		every:    spec.DiscoveryEvery,
		phase:    spec.DiscoveryPhase,
		src:      rng.NewCompact(nodeSeed(w.cfg.Seed, id)),
	}
	if n.phase <= 0 {
		n.phase = n.every
	}
	w.nodes = append(w.nodes, n)
	w.byName[spec.Name] = id
	w.snap = append(w.snap, nodeSnap{mask: mask})
	w.snapAt = -1 // any standing snapshot no longer covers all nodes
	if w.initialized {
		w.placeLocked(&w.nodes[id])
	}
	return id, nil
}

// snapshotPositionsLocked computes every node's position at `at` once, in
// parallel stripes of disjoint indices, so the parallel phase reads
// positions from one dense cache-resident slice instead of locking each
// candidate's mobility model per visit.
func (w *ShardedWorld) snapshotPositionsLocked(at time.Duration) {
	n := len(w.nodes)
	const parallelMin = 4096
	if workers := len(w.shards); workers > 1 && n >= parallelMin {
		stripe := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < n; lo += stripe {
			hi := lo + stripe
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					w.snap[i].pos = w.nodes[i].model.PositionAt(at)
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for i := 0; i < n; i++ {
			w.snap[i].pos = w.nodes[i].model.PositionAt(at)
		}
	}
	w.snapAt = at
}

// posAt returns a node's position at time at, served from the superstep
// snapshot when it covers that instant. The fallback asks the model
// directly, so callers never see a stale or missing value.
func (w *ShardedWorld) posAt(id NodeID, at time.Duration) geo.Point {
	if at == w.snapAt {
		return w.snap[id].pos
	}
	return w.nodes[id].model.PositionAt(at)
}

// initLocked freezes the region geometry and buckets/schedules every node.
// It runs at the first Step so all techs are known when the region size is
// derived.
func (w *ShardedWorld) initLocked() {
	if w.initialized {
		return
	}
	w.initialized = true
	if w.regionSize = w.cfg.RegionSize; w.regionSize <= 0 {
		var maxR float64
		var seen uint8
		for i := range w.nodes {
			seen |= w.nodes[i].techMask
		}
		for _, t := range device.Techs() {
			if seen&(1<<uint(t)) != 0 {
				maxR = math.Max(maxR, w.params[t].CoverageRadius)
			}
		}
		if maxR <= 0 {
			maxR = DefaultParams(device.TechBluetooth).CoverageRadius
		}
		w.regionSize = 2 * maxR
	}
	// With L = 2R and slack = L/4 = R/2, a query's 3x3 region
	// neighbourhood covers R + slack = 1.5R < 2R — the exactness margin.
	w.slack = w.regionSize / 4
	for i := range w.nodes {
		w.placeLocked(&w.nodes[i])
	}
}

// placeLocked buckets a node (or adds it to the always-candidate list when
// its drift cannot be bounded within the slack) and schedules its events.
func (w *ShardedWorld) placeLocked(n *shardNode) {
	drift := n.speed * w.quantum.Seconds()
	n.slackEff = w.slack - drift
	if math.IsInf(n.speed, 1) || drift >= w.slack {
		// The node can outrun the slack within one superstep: it cannot
		// be bucketed exactly. It joins the unbucketed list — a candidate
		// for every query — instead of degrading the whole world the way
		// the classic grid's full-scan fallback does.
		n.bucketed = false
		w.unbucketed = insertSorted(w.unbucketed, n.id)
	} else {
		pos := n.model.PositionAt(w.now)
		n.cell = geo.CellOf(pos, w.regionSize)
		n.bucketed = true
		w.regionInsertLocked(n.id, n.cell)
		if !w.cfg.BruteForce {
			if delay, ok := crossingAfter(pos, n.cell, w.regionSize, n.speed, n.slackEff); ok {
				w.pushEventLocked(shardEvent{at: w.now + delay, node: n.id, kind: evCrossing})
			}
		}
	}
	if n.every > 0 {
		w.pushEventLocked(shardEvent{at: w.now + n.phase, node: n.id, kind: evDiscovery})
	}
}

// regionBucket is one occupied cell's packed candidate records. recs is
// authoritative only for membership (ids); the hot filter fields inside
// each record are re-copied from the superstep snapshot by
// refreshBucketsLocked before any worker reads them.
type regionBucket struct {
	recs []candRec
}

// regionInsertLocked appends a node's record to its cell's bucket: O(1)
// amortised, no allocation once the slab has grown to its working size.
func (w *ShardedWorld) regionInsertLocked(id NodeID, c geo.Cell) {
	b := w.regions[c]
	if b == nil {
		b = &regionBucket{}
		w.regions[c] = b
		w.bucketList = append(w.bucketList, b)
	}
	w.nodes[id].slot = int32(len(b.recs))
	s := &w.snap[id]
	b.recs = append(b.recs, candRec{id: id, pos: s.pos, mask: s.mask, down: s.down})
}

// regionRemoveLocked swap-removes a node's record from its cell's bucket,
// repointing the moved record's owner at its new slot.
func (w *ShardedWorld) regionRemoveLocked(id NodeID, c geo.Cell) {
	b := w.regions[c]
	slot := w.nodes[id].slot
	last := int32(len(b.recs) - 1)
	if slot != last {
		moved := b.recs[last]
		b.recs[slot] = moved
		w.nodes[moved.id].slot = slot
	}
	b.recs = b.recs[:last]
}

// refreshBucketsLocked re-copies every bucketed record's hot filter fields
// from the just-taken superstep snapshot, in parallel stripes of disjoint
// buckets. This is the one pass that touches the snapshot randomly — one
// independent (prefetchable) read per node per active superstep — so the
// candidate gathers in the parallel phase become pure sequential copies.
// Stripes write disjoint buckets, and the result is the same whatever the
// striping, so determinism is unaffected.
func (w *ShardedWorld) refreshBucketsLocked() {
	refresh := func(buckets []*regionBucket) {
		for _, b := range buckets {
			for i := range b.recs {
				r := &b.recs[i]
				s := &w.snap[r.id]
				r.pos, r.mask, r.down = s.pos, s.mask, s.down
			}
		}
	}
	nb := len(w.bucketList)
	const parallelMin = 4096
	if workers := len(w.shards); workers > 1 && len(w.nodes) >= parallelMin && nb >= workers {
		stripe := (nb + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < nb; lo += stripe {
			hi := min(lo+stripe, nb)
			wg.Add(1)
			go func(buckets []*regionBucket) {
				defer wg.Done()
				refresh(buckets)
			}(w.bucketList[lo:hi])
		}
		wg.Wait()
	} else {
		refresh(w.bucketList)
	}
}

// linkAt resolves a link key to its slab record. The pointer is valid only
// until the slab next grows; callers use it within one locked region.
func (w *ShardedWorld) linkAt(key shardLinkKey) (*shardLink, bool) {
	i, ok := w.linkIdx[key]
	if !ok {
		return nil, false
	}
	return &w.links[i], true
}

// addLinkLocked installs a link record, reusing a freed slab slot when one
// is available.
func (w *ShardedWorld) addLinkLocked(lk shardLink) *shardLink {
	var i int32
	if n := len(w.linkFree); n > 0 {
		i = w.linkFree[n-1]
		w.linkFree = w.linkFree[:n-1]
		w.links[i] = lk
	} else {
		i = int32(len(w.links))
		w.links = append(w.links, lk)
	}
	w.linkIdx[lk.key] = i
	return &w.links[i]
}

// removeLinkLocked breaks a link, returning its slab slot to the free list.
func (w *ShardedWorld) removeLinkLocked(key shardLinkKey) {
	i, ok := w.linkIdx[key]
	if !ok {
		return
	}
	delete(w.linkIdx, key)
	w.links[i] = shardLink{}
	w.linkFree = append(w.linkFree, i)
	if len(w.conns) != 0 {
		w.failConnsLocked(key, ErrLinkLost)
	}
}

func insertSorted(s []NodeID, id NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

func removeSorted(s []NodeID, id NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// shardOfLocked returns the shard owning a node's events right now. The
// assignment keys on the node's region so one region's events drain on one
// worker; it only affects which queue holds an event, never the outcome.
func (w *ShardedWorld) shardOfLocked(n *shardNode) *shard {
	if !n.bucketed {
		return w.shards[int(uint64(n.id)%uint64(len(w.shards)))]
	}
	h := uint64(uint32(n.cell.CX))*0x9e3779b1 ^ uint64(uint32(n.cell.CY))*0x85ebca6b
	return w.shards[int(h%uint64(len(w.shards)))]
}

func (w *ShardedWorld) pushEventLocked(e shardEvent) {
	w.shardOfLocked(&w.nodes[e.node]).q.push(e)
}

// Now returns the current simulated time (duration since world start).
func (w *ShardedWorld) Now() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.now
}

// Quantum returns the superstep length.
func (w *ShardedWorld) Quantum() time.Duration { return w.quantum }

// RegionSize returns the region edge length (0 before the first Step).
func (w *ShardedWorld) RegionSize() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.regionSize
}

// NodeCount returns the number of nodes.
func (w *ShardedWorld) NodeCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.nodes)
}

// NodeByName resolves a node name.
func (w *ShardedWorld) NodeByName(name string) (NodeID, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	id, ok := w.byName[name]
	return id, ok
}

// NodeName returns a node's name.
func (w *ShardedWorld) NodeName(id NodeID) string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nodes[id].name
}

// NodeTechs returns a node's technologies.
func (w *ShardedWorld) NodeTechs(id NodeID) []device.Tech {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]device.Tech(nil), w.nodes[id].techs...)
}

// Position returns a node's position at the current simulated time.
func (w *ShardedWorld) Position(id NodeID) geo.Point {
	w.mu.Lock()
	model, now := w.nodes[id].model, w.now
	w.mu.Unlock()
	return model.PositionAt(now)
}

// SetDown powers a node off (true) or on (false). Links of a downed node
// break on the next CheckLinks or scheduled re-check.
func (w *ShardedWorld) SetDown(id NodeID, down bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nodes[id].down = down
	w.snap[id].down = down
}

// IsDown reports whether a node is powered off.
func (w *ShardedWorld) IsDown(id NodeID) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nodes[id].down
}

// Stats returns a snapshot of the world counters.
func (w *ShardedWorld) Stats() ShardStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// ActiveLinks reports how many links are currently established.
func (w *ShardedWorld) ActiveLinks() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.linkIdx)
}

// LinkKeys returns the established links as canonical "a<->b/tech" strings
// in sorted order (tests compare link sets across worlds with this).
func (w *ShardedWorld) LinkKeys() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	keys := w.sortedLinkKeysLocked()
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s<->%s/%v", w.nodes[k.A].name, w.nodes[k.B].name, k.Tech)
	}
	return out
}

func (w *ShardedWorld) sortedLinkKeysLocked() []shardLinkKey {
	keys := w.linkKeys[:0]
	for k := range w.linkIdx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return linkKeyBefore(keys[i], keys[j]) })
	w.linkKeys = keys
	return keys
}

// Linked reports whether a link is established between two nodes on tech.
func (w *ShardedWorld) Linked(a, b NodeID, tech device.Tech) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.linkIdx[linkKeyOf(a, b, tech)]
	return ok
}

// Partition splits the world into isolated segments by node name, exactly
// like the fault plane's Partition action: nodes in different segments
// cannot discover or link each other; unlisted nodes form an implicit
// segment of their own. A new partition replaces the previous one.
func (w *ShardedWorld) Partition(segments [][]string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.partitioned = true
	w.partSegs = make([]int32, len(w.nodes))
	for i, seg := range segments {
		for _, name := range seg {
			if id, ok := w.byName[name]; ok {
				w.partSegs[id] = int32(i + 1)
			}
		}
	}
}

// Blackout takes every node inside region off the air for d from the
// current simulated time: existing links touching it break on the next
// check, and no discoveries or links involve it until the window closes.
func (w *ShardedWorld) Blackout(region geo.Rect, d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("blackout duration %s must be positive", d)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.blackouts = append(w.blackouts, shardBlackout{region: region, until: w.now + d})
	return nil
}

// Heal clears the partition and every open blackout window (impairment
// bookkeeping is cleared by the fault plane, which installed it).
func (w *ShardedWorld) Heal() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.partitioned = false
	w.partSegs = nil
	w.blackouts = nil
}

// SetImpairment registers (or, with nil, clears) an impairment profile on
// the from->to direction. The sharded substrate does not move bytes, so
// the profile has no behavioural effect here; it is carried so fault
// scripts replay identically and future transport layers can consume it.
func (w *ShardedWorld) SetImpairment(from, to NodeID, imp *Impairment) {
	w.mu.Lock()
	defer w.mu.Unlock()
	k := [2]NodeID{from, to}
	if imp == nil {
		delete(w.impairments, k)
		return
	}
	w.impairments[k] = *imp
}

// ImpairmentFor returns the registered profile for a direction.
func (w *ShardedWorld) ImpairmentFor(from, to NodeID) (Impairment, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	imp, ok := w.impairments[[2]NodeID{from, to}]
	return imp, ok
}

// allowedAtLocked reports whether the fault state permits the pair at time
// at, given their positions. It is read-only: the parallel phase calls it
// concurrently, so expired blackout windows are skipped here and compacted
// only between supersteps.
func (w *ShardedWorld) allowedAtLocked(a, b NodeID, at time.Duration, pa, pb geo.Point) bool {
	if w.partitioned && w.partSegs[a] != w.partSegs[b] {
		return false
	}
	for _, bo := range w.blackouts {
		if bo.until > at && (bo.region.Contains(pa) || bo.region.Contains(pb)) {
			return false
		}
	}
	return true
}

// Connect establishes a link between two nodes on tech, mirroring the
// classic Dial's checks: both up, not partitioned or blacked out, within
// coverage, and surviving the technology's stochastic connect fault
// (drawn from the initiating node's stream). Established links are
// re-checked on the event schedule; Connect on an already-linked pair is
// a no-op.
func (w *ShardedWorld) Connect(from, to NodeID, tech device.Tech) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if from == to {
		return fmt.Errorf("simnet: node %v dialing itself", from)
	}
	a, b := &w.nodes[from], &w.nodes[to]
	if a.techMask&(1<<uint(tech)) == 0 || b.techMask&(1<<uint(tech)) == 0 {
		return fmt.Errorf("%w: %v", ErrTechMismatch, tech)
	}
	return w.connectLocked(from, to, tech, w.now)
}

func (w *ShardedWorld) connectLocked(from, to NodeID, tech device.Tech, at time.Duration) error {
	a, b := &w.nodes[from], &w.nodes[to]
	w.stats.DialsAttempted++
	if a.down || b.down {
		return ErrRadioDown
	}
	p := w.params[tech]
	pa, pb := w.posAt(from, at), w.posAt(to, at)
	if pa.Dist(pb) > p.CoverageRadius || !w.allowedAtLocked(from, to, at, pa, pb) {
		w.stats.DialsOutOfRange++
		return fmt.Errorf("%w: %s", ErrOutOfRange, b.name)
	}
	key := linkKeyOf(from, to, tech)
	if _, exists := w.linkIdx[key]; exists {
		return nil
	}
	if a.src.Bool(p.FaultProb) {
		w.stats.DialsFaulted++
		return fmt.Errorf("%w: dialing %s", ErrConnectFault, b.name)
	}
	lk := w.addLinkLocked(shardLink{key: key, established: at})
	w.stats.DialsSucceeded++
	w.scheduleLinkCheckLocked(lk, pa.Dist(pb), p.CoverageRadius, a.speed+b.speed, at)
	return nil
}

func (w *ShardedWorld) scheduleLinkCheckLocked(lk *shardLink, dist, radius, closing float64, from time.Duration) {
	if delay, ok := linkCheckAfter(dist, radius, closing, w.quantum); ok {
		lk.nextCheck = from + delay
		w.linkq.push(linkEntry{at: lk.nextCheck, key: lk.key})
	}
	// Static pairs (closing 0) get no schedule: only forced sweeps —
	// fault events, crashes — can break them.
}

// linkAliveLocked reports whether a link holds at time at.
func (w *ShardedWorld) linkAliveLocked(k shardLinkKey, at time.Duration) bool {
	a, b := &w.nodes[k.A], &w.nodes[k.B]
	if a.down || b.down {
		return false
	}
	pa, pb := w.posAt(k.A, at), w.posAt(k.B, at)
	if pa.Dist(pb) > w.params[k.Tech].CoverageRadius {
		return false
	}
	return w.allowedAtLocked(k.A, k.B, at, pa, pb)
}

// CheckLinks breaks every established link whose endpoints are no longer
// permitted or in mutual coverage, sweeping links in canonical key order.
// The fault plane forces a sweep after each applied action; steady-state
// breakage rides the event schedule instead.
func (w *ShardedWorld) CheckLinks() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	broken := 0
	for _, k := range w.sortedLinkKeysLocked() {
		if !w.linkAliveLocked(k, w.now) {
			w.removeLinkLocked(k)
			w.stats.LinksBroken++
			broken++
		}
	}
	return broken
}

// Digest returns a short canonical fingerprint of the full world state:
// clock, every node's power/bucket/inquiry state, the link set, fault
// state, and counters. Two runs are byte-identical iff their digests match
// at every compared step — the determinism regression tests pin exactly
// that across GOMAXPROCS and shard counts.
func (w *ShardedWorld) Digest() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	h := fnv.New64a()
	fmt.Fprintf(h, "now=%d q=%d L=%g\n", w.now, w.quantum, w.regionSize)
	for i := range w.nodes {
		n := &w.nodes[i]
		fmt.Fprintf(h, "n%d down=%t b=%t c=%d,%d inq=%d,%d,%d\n",
			n.id, n.down, n.bucketed, n.cell.CX, n.cell.CY,
			n.inqUntil[1], n.inqUntil[2], n.inqUntil[3])
	}
	for _, k := range w.sortedLinkKeysLocked() {
		lk, _ := w.linkAt(k)
		fmt.Fprintf(h, "l%d-%d/%d est=%d chk=%d\n", k.A, k.B, k.Tech, lk.established, lk.nextCheck)
	}
	fmt.Fprintf(h, "part=%t bo=%d imp=%d\n", w.partitioned, len(w.blackouts), len(w.impairments))
	fmt.Fprintf(h, "stats=%+v\n", w.stats)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Close breaks every link and drops all scheduled events. The sharded
// world spawns worker goroutines only for the duration of a Step, so
// Close leaves no goroutines behind by construction — the soak tests
// still verify that with a leak check.
func (w *ShardedWorld) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	for key := range w.conns {
		w.failConnsLocked(key, ErrClosed)
	}
	w.conns = nil
	for _, l := range w.listeners {
		l.fail()
	}
	w.listeners = nil
	w.stats.LinksBroken += int64(len(w.linkIdx))
	w.links = nil
	w.linkIdx = make(map[shardLinkKey]int32)
	w.linkFree = nil
	w.linkq = linkQueue{}
	for _, sh := range w.shards {
		sh.q = eventQueue{}
	}
	return nil
}
