package simnet

import (
	"slices"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/rng"
)

// Impairment describes one direction of a link's failure weather: silent
// frame loss, delivery jitter, Gilbert–Elliott burst outages, and a
// measured-quality penalty. Each established link direction carries its own
// impairment state with a forked deterministic random source, so runs
// replay bit-identically from the world seed when the write sequence is
// deterministic (manual-clock harnesses).
//
// A Write call is the simulator's unit of loss: protocol layers frame each
// message as a single Write (phproto frames, migration records), so a
// dropped Write is a dropped frame, never a torn one. Request/response
// protocols with no read deadline can therefore stall on a lossy link —
// scripted scenarios apply loss to streaming links and use blackouts or
// partitions (which *break* links, failing readers) for control traffic.
type Impairment struct {
	// LossProb is the probability that one Write's payload is silently
	// dropped while the direction is in the good state: the writer sees
	// success, the reader never sees the bytes.
	LossProb float64

	// JitterMin/JitterMax bound extra per-write delivery latency, sampled
	// uniformly. Like bandwidth, jitter sleeps simulated time — do not use
	// it on a manual clock unless something else advances the clock.
	JitterMin time.Duration
	JitterMax time.Duration

	// MeanGood and MeanBad are the Gilbert–Elliott dwell times: the
	// direction alternates between a good and a bad state with
	// exponentially distributed holding times. Both must be positive to
	// enable the burst model.
	MeanGood time.Duration
	MeanBad  time.Duration

	// BadLossProb is the per-write drop probability in the bad state;
	// zero means 1 (a full burst outage).
	BadLossProb float64

	// QualityPenalty is subtracted from the connection's measured quality
	// while the impairment is installed; during a bad burst the quality
	// reads 0 (the radio looks gone), which is what link monitors and
	// handover triggers key off.
	QualityPenalty int
}

// burstEnabled reports whether the Gilbert–Elliott chain is configured.
func (im Impairment) burstEnabled() bool {
	return im.MeanGood > 0 && im.MeanBad > 0
}

// impairKey addresses one link direction in the world registry.
type impairKey struct {
	from, to device.Addr
}

// impairState is the live per-direction impairment: the profile plus the
// evolving Gilbert–Elliott chain. Guarded by the owning link's mutex.
type impairState struct {
	prof Impairment
	src  *rng.Source
	bad  bool
	// next is the scheduled time of the next good<->bad flip; zero when
	// the burst model is disabled.
	next time.Time
}

func newImpairState(prof Impairment, src *rng.Source, now time.Time) *impairState {
	st := &impairState{prof: prof, src: src}
	if prof.burstEnabled() {
		st.next = now.Add(st.dwell(false))
	}
	return st
}

// dwell samples the holding time of the given state.
func (st *impairState) dwell(bad bool) time.Duration {
	mean := st.prof.MeanGood
	if bad {
		mean = st.prof.MeanBad
	}
	d := time.Duration(st.src.Exp(float64(mean)))
	if d <= 0 {
		d = 1
	}
	return d
}

// advance evolves the Gilbert–Elliott chain to now.
func (st *impairState) advance(now time.Time) {
	if st.next.IsZero() {
		return
	}
	for !st.next.After(now) {
		st.bad = !st.bad
		st.next = st.next.Add(st.dwell(st.bad))
	}
}

// drop decides whether one write at now is lost.
func (st *impairState) drop(now time.Time) bool {
	st.advance(now)
	if st.bad {
		p := st.prof.BadLossProb
		if p <= 0 {
			p = 1
		}
		return st.src.Bool(p)
	}
	return st.src.Bool(st.prof.LossProb)
}

// jitter samples this write's extra delivery latency.
func (st *impairState) jitter() time.Duration {
	if st.prof.JitterMax <= 0 {
		return 0
	}
	lo, hi := float64(st.prof.JitterMin), float64(st.prof.JitterMax)
	if hi < lo {
		hi = lo
	}
	return time.Duration(st.src.Uniform(lo, hi))
}

// SetLinkImpairment installs (or, with nil, clears) an impairment on the
// from->to direction of traffic between two radios: it applies to the
// matching direction of every established link between them and to links
// dialed later. Impair both directions for a symmetric profile; impair one
// for asymmetric up/down degradation.
func (w *World) SetLinkImpairment(from, to device.Addr, imp *Impairment) {
	key := impairKey{from: from, to: to}
	w.mu.Lock()
	defer w.mu.Unlock()
	if imp == nil {
		delete(w.impairments, key)
	} else {
		w.impairments[key] = *imp
	}
	// Visit live links in id order, not map order: each match consumes a
	// fork of the world rng, so the assignment order must be identical
	// across same-seed runs for the replay guarantee to hold.
	ids := make([]int64, 0, len(w.links))
	for id := range w.links {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		lk := w.links[id]
		for _, c := range [2]*Conn{lk.a, lk.b} {
			if c.local.addr == from && c.remote.addr == to {
				c.setImpairment(imp, w.src, w.clk.Now())
			}
		}
	}
}

// impairmentForLocked returns the registered profile for a direction.
// Callers hold w.mu.
func (w *World) impairmentForLocked(from, to device.Addr) (Impairment, bool) {
	imp, ok := w.impairments[impairKey{from: from, to: to}]
	return imp, ok
}

// SetImpairment installs (or, with nil, clears) an impairment on writes
// from this endpoint to its peer, for this link only. World-level
// registrations via SetLinkImpairment outlive the link; this does not.
func (c *Conn) SetImpairment(imp *Impairment) {
	c.setImpairment(imp, c.link.w.src, c.link.w.clk.Now())
}

func (c *Conn) setImpairment(imp *Impairment, src *rng.Source, now time.Time) {
	c.link.mu.Lock()
	defer c.link.mu.Unlock()
	if imp == nil {
		c.imp = nil
		return
	}
	c.imp = newImpairState(*imp, src.Fork(), now)
}

// dropWrite decides whether c's write of one payload is lost to
// impairment, evolving the burst chain as a side effect.
func (lk *link) dropWrite(c *Conn) bool {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if c.imp == nil {
		return false
	}
	return c.imp.drop(lk.w.clk.Now())
}

// writeJitter samples c's extra delivery latency for one write.
func (lk *link) writeJitter(c *Conn) time.Duration {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if c.imp == nil {
		return 0
	}
	return c.imp.jitter()
}

// impairPenalty returns the quality penalty both directions contribute,
// and whether either direction is in a burst outage (quality reads 0).
func (lk *link) impairPenalty() (penalty int, outage bool) {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	now := lk.w.clk.Now()
	for _, c := range [2]*Conn{lk.a, lk.b} {
		if c.imp == nil {
			continue
		}
		c.imp.advance(now)
		if c.imp.bad {
			return 0, true
		}
		penalty += c.imp.prof.QualityPenalty
	}
	return penalty, false
}
