package device

import (
	"testing"
	"testing/quick"
)

func TestTechString(t *testing.T) {
	cases := []struct {
		tech Tech
		want string
	}{
		{TechBluetooth, "bt"},
		{TechWLAN, "wlan"},
		{TechGPRS, "gprs"},
		{Tech(99), "tech(99)"},
	}
	for _, c := range cases {
		if got := c.tech.String(); got != c.want {
			t.Errorf("Tech(%d).String() = %q, want %q", c.tech, got, c.want)
		}
	}
}

func TestTechValid(t *testing.T) {
	for _, tech := range Techs() {
		if !tech.Valid() {
			t.Errorf("%v not valid", tech)
		}
	}
	if Tech(0).Valid() || Tech(42).Valid() {
		t.Error("invalid techs reported valid")
	}
}

func TestParseTechRoundTrip(t *testing.T) {
	for _, tech := range Techs() {
		got, err := ParseTech(tech.String())
		if err != nil {
			t.Fatalf("ParseTech(%q): %v", tech.String(), err)
		}
		if got != tech {
			t.Errorf("round trip %v -> %v", tech, got)
		}
	}
	if _, err := ParseTech("zigbee"); err == nil {
		t.Error("ParseTech accepted unknown tech")
	}
}

func TestAddrStringParseRoundTrip(t *testing.T) {
	a := Addr{Tech: TechBluetooth, MAC: "02:70:68:00:00:01"}
	s := a.String()
	if s != "bt:02:70:68:00:00:01" {
		t.Fatalf("String() = %q", s)
	}
	back, err := ParseAddr(s)
	if err != nil {
		t.Fatalf("ParseAddr: %v", err)
	}
	if back != a {
		t.Fatalf("round trip %v -> %v", a, back)
	}
}

func TestParseAddrErrors(t *testing.T) {
	for _, bad := range []string{"", "nocolon", "zigbee:aa:bb", "bt:"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", bad)
		}
	}
}

func TestAddrIsZero(t *testing.T) {
	if !(Addr{}).IsZero() {
		t.Error("zero Addr not IsZero")
	}
	if (Addr{Tech: TechWLAN, MAC: "x"}).IsZero() {
		t.Error("non-zero Addr IsZero")
	}
}

func TestMobilityWeights(t *testing.T) {
	// The thesis' comparison weights must be preserved exactly: §3.4.3.
	if Static != 0 || Hybrid != 1 || Dynamic != 3 {
		t.Fatalf("mobility weights changed: static=%d hybrid=%d dynamic=%d",
			Static, Hybrid, Dynamic)
	}
}

func TestMobilitySumTable(t *testing.T) {
	// Reproduces the §3.4.3 mobility-sum table (experiment T1): the sum of
	// route-node weights orders routes by stability.
	sums := []struct {
		a, b Mobility
		want int
	}{
		{Static, Static, 0},
		{Static, Hybrid, 1},
		{Hybrid, Static, 1},
		{Hybrid, Hybrid, 2},
		{Static, Dynamic, 3},
		{Dynamic, Static, 3},
		{Hybrid, Dynamic, 4},
		{Dynamic, Hybrid, 4},
		{Dynamic, Dynamic, 6},
	}
	for _, c := range sums {
		if got := int(c.a) + int(c.b); got != c.want {
			t.Errorf("%v+%v = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMobilityStringAndValid(t *testing.T) {
	cases := []struct {
		m     Mobility
		str   string
		valid bool
	}{
		{Static, "static", true},
		{Hybrid, "hybrid", true},
		{Dynamic, "dynamic", true},
		{Mobility(2), "mobility(2)", false},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
		if got := c.m.Valid(); got != c.valid {
			t.Errorf("%v.Valid() = %v, want %v", c.m, got, c.valid)
		}
	}
}

func TestInfoClone(t *testing.T) {
	orig := Info{
		Name:     "laptop",
		Addr:     Addr{Tech: TechBluetooth, MAC: "aa"},
		Mobility: Hybrid,
		Services: []ServiceInfo{{Name: "print", Port: 10}},
	}
	cl := orig.Clone()
	cl.Services[0].Name = "mutated"
	if orig.Services[0].Name != "print" {
		t.Fatal("Clone shares the services slice")
	}
}

func TestInfoCloneNilServices(t *testing.T) {
	cl := (Info{Name: "bare"}).Clone()
	if cl.Services != nil {
		t.Fatal("Clone invented a services slice")
	}
}

func TestFindService(t *testing.T) {
	i := Info{Services: []ServiceInfo{
		{Name: "a", Port: 10},
		{Name: "b", Port: 11},
	}}
	if s, ok := i.FindService("b"); !ok || s.Port != 11 {
		t.Fatalf("FindService(b) = %v, %v", s, ok)
	}
	if _, ok := i.FindService("zzz"); ok {
		t.Fatal("FindService found a missing service")
	}
}

func TestAddrRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(macBytes []byte) bool {
		if len(macBytes) == 0 {
			return true
		}
		// Render as hex-ish MAC; any non-empty string without a reserved
		// prefix works because MAC is free-form after the first colon.
		mac := ""
		for i, b := range macBytes {
			if i > 0 {
				mac += ":"
			}
			mac += string(rune('a' + int(b%26)))
		}
		a := Addr{Tech: TechWLAN, MAC: mac}
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServiceInfoString(t *testing.T) {
	s := ServiceInfo{Name: "img", Attr: "v1", Port: 12}
	if got := s.String(); got != "img@12(v1)" {
		t.Fatalf("String() = %q", got)
	}
}
