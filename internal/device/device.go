// Package device defines the identity model shared by every PeerHood
// component: network technologies, radio addresses, mobility classes
// (§3.4.3 of the thesis), and device/service descriptors.
package device

import (
	"errors"
	"fmt"
	"strings"
)

// Tech identifies a network technology. PeerHood abstracts all of them
// behind plugins (§2.2); the thesis implements Bluetooth and names WLAN and
// GPRS as the other supported prototypes.
type Tech int8

// Supported technologies.
const (
	TechBluetooth Tech = iota + 1
	TechWLAN
	TechGPRS
)

var techNames = map[Tech]string{
	TechBluetooth: "bt",
	TechWLAN:      "wlan",
	TechGPRS:      "gprs",
}

// String implements fmt.Stringer, returning the address-prefix form.
func (t Tech) String() string {
	if n, ok := techNames[t]; ok {
		return n
	}
	return fmt.Sprintf("tech(%d)", int8(t))
}

// Valid reports whether t is a known technology.
func (t Tech) Valid() bool { _, ok := techNames[t]; return ok }

// ParseTech converts the address-prefix form back to a Tech.
func ParseTech(s string) (Tech, error) {
	for t, n := range techNames {
		if n == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("device: unknown technology %q", s)
}

// Techs returns all known technologies in stable order.
func Techs() []Tech { return []Tech{TechBluetooth, TechWLAN, TechGPRS} }

// TechRank is a technology's static attribute profile, used by vertical-
// handover policies to compare candidate bearers. Values are ordinal ranks,
// not physical units: higher Bandwidth is faster, higher Cost is more
// expensive to the user (metered GPRS vs free local radio), higher Power
// drains the battery faster.
type TechRank struct {
	Bandwidth int
	Cost      int
	Power     int
}

// RankOf returns the attribute ranks for t. Unknown technologies rank worst
// on every axis so policies never prefer them by accident.
func RankOf(t Tech) TechRank {
	switch t {
	case TechBluetooth:
		return TechRank{Bandwidth: 2, Cost: 1, Power: 1}
	case TechWLAN:
		return TechRank{Bandwidth: 3, Cost: 1, Power: 3}
	case TechGPRS:
		// Wide-area and always on, but slow, metered, and battery-hungry
		// relative to its throughput.
		return TechRank{Bandwidth: 1, Cost: 3, Power: 2}
	default:
		return TechRank{Bandwidth: 0, Cost: 99, Power: 99}
	}
}

// Addr is the unique address of one radio interface: technology plus MAC.
// The thesis uses the interface MAC address as the device-unique identifier
// because it is unique even among interfaces of the same device (§2.3).
type Addr struct {
	Tech Tech
	MAC  string
}

// String renders the canonical "tech:MAC" form, e.g. "bt:02:70:68:00:00:01".
func (a Addr) String() string {
	return a.Tech.String() + ":" + a.MAC
}

// IsZero reports whether a is the zero address.
func (a Addr) IsZero() bool { return a.Tech == 0 && a.MAC == "" }

// Less orders addresses by (Tech, MAC): a deterministic sort order without
// the two String() allocations per comparison.
func (a Addr) Less(b Addr) bool {
	if a.Tech != b.Tech {
		return a.Tech < b.Tech
	}
	return a.MAC < b.MAC
}

// ErrBadAddr reports an unparseable address string.
var ErrBadAddr = errors.New("device: malformed address")

// ParseAddr parses the canonical "tech:MAC" form produced by Addr.String.
func ParseAddr(s string) (Addr, error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return Addr{}, fmt.Errorf("%w: %q", ErrBadAddr, s)
	}
	tech, err := ParseTech(s[:i])
	if err != nil {
		return Addr{}, fmt.Errorf("%w: %q", ErrBadAddr, s)
	}
	mac := s[i+1:]
	if mac == "" {
		return Addr{}, fmt.Errorf("%w: empty MAC in %q", ErrBadAddr, s)
	}
	return Addr{Tech: tech, MAC: mac}, nil
}

// Mobility classifies how a device moves (§3.4.3). The numeric values are
// the thesis' own comparison weights: {static, hybrid, dynamic} = {0, 1, 3}.
// Lower is preferred when selecting bridge routes; the sum over a route's
// nodes measures route instability (the mobility-sum table of §3.4.3).
type Mobility int8

// Mobility classes with the thesis' comparison weights.
const (
	Static  Mobility = 0
	Hybrid  Mobility = 1
	Dynamic Mobility = 3
)

// String implements fmt.Stringer.
func (m Mobility) String() string {
	switch m {
	case Static:
		return "static"
	case Hybrid:
		return "hybrid"
	case Dynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("mobility(%d)", int8(m))
	}
}

// Valid reports whether m is one of the three defined classes.
func (m Mobility) Valid() bool {
	return m == Static || m == Hybrid || m == Dynamic
}

// ServiceInfo describes one registered PeerHood service (§2.3): name,
// free-form attribute, and the logical port applications connect to.
type ServiceInfo struct {
	Name string
	Attr string
	Port uint16
}

// String implements fmt.Stringer.
func (s ServiceInfo) String() string {
	return fmt.Sprintf("%s@%d(%s)", s.Name, s.Port, s.Attr)
}

// Info is the descriptor a device advertises about itself during discovery:
// identity, mobility class, and its registered services. Checksum carries
// the daemon process ID; the thesis notes it is transmitted but unused.
type Info struct {
	Name     string
	Addr     Addr
	Checksum uint32
	Mobility Mobility
	Services []ServiceInfo
	// Siblings lists the device's other radio interfaces (§2.2's
	// multi-plugin design made explicit on the wire): a dual-radio device
	// advertises, on each interface, the addresses of the rest. Receivers
	// derive the cross-interface device identity from it (Identity);
	// legacy peers that never advertise siblings simply form singleton
	// identities, one per interface.
	Siblings []Addr
}

// ID is a stable cross-interface device identity: the canonical (smallest)
// radio address among all of a device's known interfaces. Two storage
// entries with the same ID are two radios of one physical device, which is
// what lets handover propose "same peer, different technology" routes.
type ID string

// Identity returns the device identity derived from the descriptor: the
// least address of {Addr} ∪ Siblings. An interface that advertises no
// siblings forms a singleton identity (the pre-identity behaviour), so
// identities degrade gracefully for legacy peers.
func (i Info) Identity() ID {
	least := i.Addr
	for _, s := range i.Siblings {
		if s.Less(least) {
			least = s
		}
	}
	return ID(least.String())
}

// Clone returns a deep copy of i, so stored descriptors cannot alias
// caller-held slices (copy-at-boundary).
func (i Info) Clone() Info {
	out := i
	if i.Services != nil {
		out.Services = append([]ServiceInfo(nil), i.Services...)
	}
	if i.Siblings != nil {
		out.Siblings = append([]Addr(nil), i.Siblings...)
	}
	return out
}

// FindService returns the first service with the given name.
func (i Info) FindService(name string) (ServiceInfo, bool) {
	for _, s := range i.Services {
		if s.Name == name {
			return s, true
		}
	}
	return ServiceInfo{}, false
}

// Well-known physical ports inside a PeerHood node. Every radio exposes the
// daemon's information responder on PortDaemon and the library engine on
// PortEngine; registered services are logical ports >= PortServiceBase that
// the engine demultiplexes (§2.2, §4.1).
const (
	PortDaemon      uint16 = 1
	PortEngine      uint16 = 2
	PortServiceBase uint16 = 10
)
