// Package telemetry is the daemon's observability plane: a registry of
// allocation-free counters, gauges, and fixed-bucket histograms, plus a
// span tracer for the handover and sync lifecycles (tracer.go).
//
// Two disciplines shape the design:
//
//   - The observe path is allocation-free and lock-free. Handles
//     (*Counter, *Gauge, *Histogram) are resolved by name once, at
//     construction time, and then mutated with plain atomics; the registry
//     mutex guards only registration and rendering. CI pins the observe
//     path at 0 allocs/op alongside the storage/codec budgets.
//
//   - Every handle method is nil-safe. A component built without a
//     registry (unit tests, bare libraries) carries nil handles and pays a
//     single predictable branch per observation, so instrumentation never
//     forces a dependency on the telemetry plane.
//
// Rendering follows the Prometheus text exposition format; names may embed
// a label set in braces (`events_dropped_total{type="link_lost"}`), which
// is rendered verbatim and grouped under the brace-free family name.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. By convention names end in
// `_total` so downstream scrapers can assert monotonicity.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value (queue depth, active conns).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value. Safe on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative to decrease). Safe on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value; zero on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed upper-bound buckets. Bounds are
// chosen at registration; the observe path is a linear scan over a handful
// of bounds plus three atomic ops — no locks, no allocation.
type Histogram struct {
	bounds []float64       // sorted upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS loop
}

// Observe records one sample. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations; zero on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values; zero on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DurationBuckets is the default bound set for phase-duration histograms,
// in seconds of simulated time: 1ms up to ~30s of handover/sync latency.
var DurationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// SizeBuckets is the default bound set for byte-size histograms.
var SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

const (
	kindCounter = iota
	kindGauge
	kindHistogram
)

type metricEntry struct {
	name string
	kind int
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds one daemon's metrics, keyed by name. Registration is
// idempotent: asking for an existing name returns the same handle, so
// components rebuilt across restarts can re-resolve without double
// counting within one registry's lifetime.
//
// All methods are safe on a nil *Registry and return nil handles, which
// in turn absorb observations — the instrumented packages never need to
// guard their telemetry calls.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metricEntry
	ordered []*metricEntry // insertion order; sorted at render time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metricEntry)}
}

func (r *Registry) lookup(name string, kind int) *metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different kind", name))
		}
		return e
	}
	e := &metricEntry{name: name, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	}
	r.byName[name] = e
	r.ordered = append(r.ordered, e)
	return e
}

// Counter returns the counter registered under name, creating it if
// needed. Nil-safe: a nil registry yields a nil (absorbing) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter).c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge).g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if needed. Bounds must be sorted
// ascending; histogram names must not embed a label set (the bucket
// rendering owns the braces). Bounds are copied.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if strings.ContainsRune(name, '{') {
		panic(fmt.Sprintf("telemetry: histogram %q must not embed labels", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != kindHistogram {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different kind", name))
		}
		return e.h
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not sorted", name))
		}
	}
	e := &metricEntry{name: name, kind: kindHistogram, h: &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}}
	r.byName[name] = e
	r.ordered = append(r.ordered, e)
	return e.h
}

// Point is one flattened sample: histograms are exploded into their
// `_bucket{le=...}`, `_sum`, and `_count` series, exactly as Prometheus
// renders them, so wire consumers and scrapers see the same shape.
type Point struct {
	Name  string
	Value float64
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// familyName strips the embedded label set, if any.
func familyName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func (r *Registry) sortedEntries() []*metricEntry {
	r.mu.Lock()
	es := make([]*metricEntry, len(r.ordered))
	copy(es, r.ordered)
	r.mu.Unlock()
	sort.Slice(es, func(i, j int) bool { return es[i].name < es[j].name })
	return es
}

// Snapshot returns every series as flattened points, sorted by name.
// Values are read with individual atomic loads — the snapshot is not a
// consistent cut, which is the standard contract for scrape-style metrics.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	var pts []Point
	for _, e := range r.sortedEntries() {
		switch e.kind {
		case kindCounter:
			pts = append(pts, Point{e.name, float64(e.c.Value())})
		case kindGauge:
			pts = append(pts, Point{e.name, float64(e.g.Value())})
		case kindHistogram:
			cum := uint64(0)
			for i := range e.h.counts {
				cum += e.h.counts[i].Load()
				le := "+Inf"
				if i < len(e.h.bounds) {
					le = formatFloat(e.h.bounds[i])
				}
				pts = append(pts, Point{e.name + `_bucket{le="` + le + `"}`, float64(cum)})
			}
			pts = append(pts, Point{e.name + "_sum", e.h.Sum()})
			pts = append(pts, Point{e.name + "_count", float64(e.h.Count())})
		}
	}
	return pts
}

// WritePrometheus renders every series in the Prometheus text exposition
// format, sorted by name, with one TYPE comment per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	lastFamily := ""
	for _, e := range r.sortedEntries() {
		fam := familyName(e.name)
		if fam != lastFamily {
			lastFamily = fam
			typ := "counter"
			switch e.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			b.WriteString("# TYPE " + fam + " " + typ + "\n")
		}
		switch e.kind {
		case kindCounter:
			b.WriteString(e.name + " " + strconv.FormatUint(e.c.Value(), 10) + "\n")
		case kindGauge:
			b.WriteString(e.name + " " + strconv.FormatInt(e.g.Value(), 10) + "\n")
		case kindHistogram:
			cum := uint64(0)
			for i := range e.h.counts {
				cum += e.h.counts[i].Load()
				le := "+Inf"
				if i < len(e.h.bounds) {
					le = formatFloat(e.h.bounds[i])
				}
				b.WriteString(e.name + `_bucket{le="` + le + `"} ` + strconv.FormatUint(cum, 10) + "\n")
			}
			b.WriteString(e.name + "_sum " + formatFloat(e.h.Sum()) + "\n")
			b.WriteString(e.name + "_count " + strconv.FormatUint(e.h.Count(), 10) + "\n")
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
