package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"

	"peerhood/internal/clock"
)

func TestRegistryIdempotentHandles(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total")
	c2 := r.Counter("x_total")
	if c1 != c2 {
		t.Fatal("same name returned distinct counter handles")
	}
	c1.Add(3)
	c2.Inc()
	if got := c1.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := r.Gauge("depth").Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	h1 := r.Histogram("lat_seconds", DurationBuckets)
	h2 := r.Histogram("lat_seconds", DurationBuckets)
	if h1 != h2 {
		t.Fatal("same name returned distinct histogram handles")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestNilRegistryAndHandlesAbsorb(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total")
	g := r.Gauge("b")
	h := r.Histogram("c", SizeBuckets)
	c.Inc()
	g.Set(9)
	h.Observe(123)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles did not absorb observations")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry render: %v", err)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 2, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 53.5 {
		t.Fatalf("sum = %v, want 53.5", h.Sum())
	}
	pts := r.Snapshot()
	want := map[string]float64{
		`h_bucket{le="1"}`:    2, // 0.5 and the boundary value 1 (le is inclusive)
		`h_bucket{le="10"}`:   3,
		`h_bucket{le="+Inf"}`: 4,
		"h_sum":               53.5,
		"h_count":             4,
	}
	got := map[string]float64{}
	for _, p := range pts {
		got[p.Name] = p.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`events_dropped_total{type="link_lost"}`).Add(2)
	r.Counter(`events_dropped_total{type="device_lost"}`).Add(1)
	r.Gauge("active_conns").Set(3)
	r.Histogram("lat", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE active_conns gauge\nactive_conns 3\n",
		"# TYPE events_dropped_total counter\n",
		`events_dropped_total{type="device_lost"} 1`,
		`events_dropped_total{type="link_lost"} 2`,
		"# TYPE lat histogram\n",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="+Inf"} 1`,
		"lat_sum 0.5\nlat_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family, even with two labeled series.
	if strings.Count(out, "# TYPE events_dropped_total") != 1 {
		t.Errorf("family TYPE comment not deduplicated:\n%s", out)
	}
	// Deterministic: a second render is byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("two renders of an unchanged registry differ")
	}
}

// TestRegistryConcurrency hammers registration and observation from many
// goroutines; run under -race this is the registry's thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", DurationBuckets).Observe(float64(j) / 100)
				if j%50 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Gauge("g").Value(); got != 8*500 {
		t.Fatalf("gauge = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("h", DurationBuckets).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestTracerDeterministicIDs(t *testing.T) {
	mk := func() string {
		clk := clock.NewManual()
		tr := NewTracer("node-1", clk, 64)
		root := tr.Begin("link.degrading", 0, "bt:01")
		clk.Advance(250 * time.Millisecond)
		child := tr.Begin("handover.switch", root.ID, "bt:01")
		clk.Advance(100 * time.Millisecond)
		tr.End(child, "ok")
		tr.End(root, "")
		tr.Event("sync.delta", root.ID, "wl:02", "entries=3")
		return tr.Log()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("same-seed trace logs differ:\n--- a\n%s--- b\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty trace log")
	}
	// Distinct origins must yield distinct ID spaces.
	other := NewTracer("node-2", clock.NewManual(), 64)
	if id := other.NextID(); id == NewTracer("node-1", clock.NewManual(), 64).NextID() {
		t.Fatalf("distinct origins produced colliding span IDs: %x", id)
	}
	if !strings.Contains(a, "parent=0000000000000000 link.degrading") {
		t.Errorf("root span malformed:\n%s", a)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer("n", clock.NewManual(), 4)
	for i := 0; i < 10; i++ {
		tr.Event("e", 0, "", "")
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	// Oldest-first: the retained spans are the last four recorded.
	for i, sp := range spans {
		if got, want := sp.ID&0xffffffff, uint64(7+i); got != want {
			t.Fatalf("span[%d] seq = %d, want %d", i, got, want)
		}
	}
}

func TestTracerSubscribeLossy(t *testing.T) {
	tr := NewTracer("n", clock.NewManual(), 16)
	sub := tr.Subscribe(2)
	for i := 0; i < 5; i++ {
		tr.Event("e", 0, "", "")
	}
	if sub.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", sub.Dropped())
	}
	got := 0
	for {
		select {
		case <-sub.C():
			got++
			continue
		default:
		}
		break
	}
	if got != 2 {
		t.Fatalf("received %d spans, want 2", got)
	}
	tr.Unsubscribe(sub)
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel not closed after Unsubscribe")
	}
	tr.Unsubscribe(sub) // idempotent
}

func TestNilTracerAbsorbs(t *testing.T) {
	var tr *Tracer
	if tr.NextID() != 0 {
		t.Fatal("nil tracer handed out a span ID")
	}
	sp := tr.Begin("x", 0, "")
	if sp.ID != 0 {
		t.Fatal("nil tracer began a real span")
	}
	tr.End(sp, "")
	if tr.Event("x", 0, "", "") != 0 {
		t.Fatal("nil tracer recorded an event")
	}
	if tr.Subscribe(1) != nil || tr.Spans() != nil || tr.Log() != "" || tr.Total() != 0 {
		t.Fatal("nil tracer leaked state")
	}
	tr.Unsubscribe(nil)
}
