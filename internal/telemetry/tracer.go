package telemetry

import (
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"peerhood/internal/clock"
)

// Span is one causally-linked step of a handover or sync lifecycle. A root
// span (Parent == 0) is opened where the lifecycle starts — typically the
// linkmon Stable→Degrading verdict — and children carry its ID through
// handover.Thread, discovery sync, and the vconn reconnect, so the whole
// chain can be reconstructed from the trace log or a live TRACE_SUBSCRIBE
// stream.
type Span struct {
	ID     uint64
	Parent uint64
	Name   string // lifecycle step: "link.degrading", "handover.switch", "sync.delta", ...
	Addr   string // peer address the step concerns, if any
	Start  time.Time
	End    time.Time
	Detail string
}

// String renders the span in the deterministic single-line form used by
// the trace log and `phctl trace`: same-seed manual-clock runs must
// produce byte-identical output, so everything here is fixed-width or
// value-derived — no wall-clock, no map iteration.
func (s Span) String() string {
	var b strings.Builder
	b.Grow(96 + len(s.Name) + len(s.Addr) + len(s.Detail))
	b.WriteString("span=")
	b.WriteString(hex16(s.ID))
	b.WriteString(" parent=")
	b.WriteString(hex16(s.Parent))
	b.WriteString(" ")
	b.WriteString(s.Name)
	b.WriteString(" start=")
	b.WriteString(strconv.FormatInt(s.Start.UnixNano(), 10))
	b.WriteString(" dur=")
	b.WriteString(s.End.Sub(s.Start).String())
	if s.Addr != "" {
		b.WriteString(" addr=")
		b.WriteString(s.Addr)
	}
	if s.Detail != "" {
		b.WriteString(" detail=")
		b.WriteString(s.Detail)
	}
	return b.String()
}

func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return string(buf[:])
}

// TraceSub is a lossy subscription to finished spans, mirroring the event
// bus discipline: a slow consumer drops spans rather than stalling the
// daemon.
type TraceSub struct {
	ch      chan Span
	dropped atomic.Uint64
}

// C returns the delivery channel.
func (s *TraceSub) C() <-chan Span { return s.ch }

// Dropped returns how many spans were discarded because the channel was
// full.
func (s *TraceSub) Dropped() uint64 { return s.dropped.Load() }

// Tracer records finished spans into a bounded ring and fans them out to
// subscribers. Span IDs are deterministic: the high 32 bits are an FNV
// hash of the tracer's origin (the daemon name), the low 32 bits a
// monotonic sequence — so same-seed manual-clock runs, which create spans
// in the same order, assign byte-identical IDs.
//
// All methods are nil-safe; a nil *Tracer absorbs spans and hands out
// ID 0, which every consumer treats as "no span".
type Tracer struct {
	clk    clock.Clock
	origin uint64
	seq    atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	next  int // ring write cursor
	total uint64
	subs  map[*TraceSub]struct{}
}

// DefaultTraceCapacity is the finished-span ring size used by daemons.
const DefaultTraceCapacity = 1024

// NewTracer returns a tracer whose span IDs are seeded from origin
// (typically the daemon name). capacity bounds the finished-span ring;
// values < 1 fall back to DefaultTraceCapacity.
func NewTracer(origin string, clk clock.Clock, capacity int) *Tracer {
	if clk == nil {
		clk = clock.Real()
	}
	if capacity < 1 {
		capacity = DefaultTraceCapacity
	}
	h := fnv.New64a()
	h.Write([]byte(origin))
	return &Tracer{
		clk:    clk,
		origin: h.Sum64() << 32,
		ring:   make([]Span, 0, capacity),
		subs:   make(map[*TraceSub]struct{}),
	}
}

// NextID allocates a fresh span ID without opening a span; zero on nil.
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.origin | (t.seq.Add(1) & 0xffffffff)
}

// Begin opens a span. The returned value is held by the caller (spans are
// plain values, not handles) and finished with End. On a nil tracer the
// zero Span is returned and End on it is a no-op.
func (t *Tracer) Begin(name string, parent uint64, addr string) Span {
	if t == nil {
		return Span{}
	}
	return Span{ID: t.NextID(), Parent: parent, Name: name, Addr: addr, Start: t.clk.Now()}
}

// End stamps the span's end time and records it. No-op on a nil tracer or
// a zero span.
func (t *Tracer) End(sp Span, detail string) {
	if t == nil || sp.ID == 0 {
		return
	}
	sp.End = t.clk.Now()
	if detail != "" {
		sp.Detail = detail
	}
	t.record(sp)
}

// Event records an instantaneous span (Start == End) and returns its ID,
// for lifecycle steps with no meaningful duration. Zero on a nil tracer.
func (t *Tracer) Event(name string, parent uint64, addr, detail string) uint64 {
	if t == nil {
		return 0
	}
	now := t.clk.Now()
	sp := Span{ID: t.NextID(), Parent: parent, Name: name, Addr: addr, Start: now, End: now, Detail: detail}
	t.record(sp)
	return sp.ID
}

func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	for s := range t.subs {
		select {
		case s.ch <- sp:
		default:
			s.dropped.Add(1)
		}
	}
	t.mu.Unlock()
}

// Subscribe registers a lossy subscription to finished spans. buffer < 1
// falls back to 64. Returns nil on a nil tracer.
func (t *Tracer) Subscribe(buffer int) *TraceSub {
	if t == nil {
		return nil
	}
	if buffer < 1 {
		buffer = 64
	}
	s := &TraceSub{ch: make(chan Span, buffer)}
	t.mu.Lock()
	t.subs[s] = struct{}{}
	t.mu.Unlock()
	return s
}

// Unsubscribe removes a subscription and closes its channel.
func (t *Tracer) Unsubscribe(s *TraceSub) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	if _, ok := t.subs[s]; ok {
		delete(t.subs, s)
		close(s.ch)
	}
	t.mu.Unlock()
}

// Spans returns the finished spans still in the ring, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		out = append(out, t.ring...)
		return out
	}
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total returns how many spans have ever been recorded (ring evictions
// included).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Log renders the retained spans as deterministic one-per-line text — the
// form pinned byte-identical across same-seed S4/S5 runs.
func (t *Tracer) Log() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, sp := range t.Spans() {
		b.WriteString(sp.String())
		b.WriteByte('\n')
	}
	return b.String()
}
