package telemetry

import (
	"testing"

	"peerhood/internal/race"
)

// The observe path — Counter.Add, Gauge.Set, Histogram.Observe, and their
// nil-handle forms — is the telemetry plane's admission ticket into the
// daemon's hot loops: it rides inside storage merges and bus publishes
// whose own budgets are 0 allocs/op, so any allocation here would break
// those contracts transitively. CI gates the benchmarks below through
// `benchjson -allocbudget` next to the PR 7 pins.
const observeBudget = 0

func TestObservePathAllocFree(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBuckets)
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	c.Inc() // warm
	h.Observe(0.5)
	allocs := testing.AllocsPerRun(200, func() {
		c.Add(2)
		g.Set(7)
		g.Add(-1)
		h.Observe(0.042)
		nc.Inc()
		ng.Set(1)
		nh.Observe(1)
	})
	if allocs > observeBudget {
		t.Fatalf("observe path = %.1f allocs/op, budget %d", allocs, observeBudget)
	}
}

func TestTracerEventAllocBounded(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	// Spans are values written into a preallocated ring; once the ring is
	// full, recording stops allocating entirely. Not a hot-loop path, but
	// pinning it keeps accidental per-span garbage out of handover steps.
	tr := NewTracer("n", nil, 8)
	for i := 0; i < 8; i++ {
		tr.Event("warm", 0, "", "")
	}
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Begin("handover.switch", 1, "bt:01")
		tr.End(sp, "")
	})
	if allocs > observeBudget {
		t.Fatalf("span record = %.1f allocs/op, budget %d", allocs, observeBudget)
	}
}

// BenchmarkTelemetryObserve is the CI-gated observe-path benchmark: one
// counter add, one gauge set, one histogram observation.
func BenchmarkTelemetryObserve(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h", DurationBuckets)
	c.Inc()
	h.Observe(0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(int64(i))
		h.Observe(float64(i&1023) / 100)
	}
}

// BenchmarkTelemetryObserveNil measures the disabled-telemetry tax: the
// nil-handle branch every instrumented hot path pays when no registry is
// attached.
func BenchmarkTelemetryObserveNil(b *testing.B) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(int64(i))
		h.Observe(1)
	}
}
