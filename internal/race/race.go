//go:build race

// Package race reports whether the race detector is compiled in, mirroring
// the runtime-internal convention. The allocation-budget tests skip under
// race builds: the detector's shadow-memory bookkeeping allocates on paths
// that are allocation-free in normal builds, so the pins would assert the
// instrumentation, not the code.
package race

// Enabled is true in -race builds.
const Enabled = true
