//go:build !race

package race

// Enabled is true in -race builds.
const Enabled = false
