package phtest

import (
	"testing"
	"time"

	"peerhood/internal/faultplane"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/simnet"
)

func TestInstantWorldNodesDiscoverEachOther(t *testing.T) {
	w := InstantWorld(t, 1)
	a := AddNode(t, w, "a", geo.Pt(0, 0), 0)
	b := AddNode(t, w, "b", geo.Pt(3, 0), 0)
	RunRounds([]*Node{a, b}, 1)

	if _, ok := a.Daemon.Storage().Lookup(b.Addr()); !ok {
		t.Fatal("a did not discover b")
	}
	if _, ok := b.Daemon.Storage().Lookup(a.Addr()); !ok {
		t.Fatal("b did not discover a")
	}
	if a.Name() != "a" || b.Addr() != b.Radio.Addr() {
		t.Fatal("node accessors inconsistent")
	}
}

func TestManualWorldOnlyMovesOnAdvance(t *testing.T) {
	w, clk := ManualWorld(t, 1)
	before := w.Clock().Now()
	a := AddNode(t, w, "a", geo.Pt(0, 0), 0)
	b := AddNode(t, w, "b", geo.Pt(3, 0), 0)
	RunRounds([]*Node{a, b}, 2) // instant params: no clock waiting needed
	if !w.Clock().Now().Equal(before) {
		t.Fatal("manual clock moved without Advance")
	}
	clk.Advance(5 * time.Second)
	if got := w.Clock().Since(before); got != 5*time.Second {
		t.Fatalf("Since = %v, want 5s", got)
	}
}

func TestScaledWorldAppliesOptions(t *testing.T) {
	w := ScaledWorld(t, 1, 1000, simnet.WithLinearScan())
	a := AddNode(t, w, "a", geo.Pt(0, 0), 0)
	AddNode(t, w, "b", geo.Pt(3, 0), 0)
	a.Daemon.RunDiscoveryRound()
	// WithLinearScan scans every radio per inquiry; the grid stays unused.
	if st := w.Stats(); st.GridRefreshes != 0 || st.InquiryCandidates == 0 {
		t.Fatalf("linear-scan option not in force: %+v", st)
	}
}

func TestAddMovingNodeFollowsModel(t *testing.T) {
	w, clk := ManualWorld(t, 1)
	n := AddMovingNode(t, w, "walker", mobility.Walk(geo.Pt(0, 0), geo.Pt(10, 0), 2), 0)
	clk.Advance(3 * time.Second)
	if got := n.Device.Position(); got.Dist(geo.Pt(6, 0)) > 1e-9 {
		t.Fatalf("walker at %v after 3s, want (6.0,0.0)", got)
	}
}

func TestAttachBridge(t *testing.T) {
	w := InstantWorld(t, 1)
	n := AddNode(t, w, "a", geo.Pt(0, 0), 0)
	if b := AttachBridge(t, n); n.Bridge != b || b == nil {
		t.Fatal("AttachBridge did not install the bridge")
	}
}

func TestCrashRestartGivesFreshEpoch(t *testing.T) {
	w := InstantWorld(t, 1)
	a := AddNode(t, w, "a", geo.Pt(0, 0), 0)
	b := AddNode(t, w, "b", geo.Pt(3, 0), 0)
	RunRounds([]*Node{a, b}, 1)

	oldEpoch := b.Daemon.Storage().Digest().Epoch
	if err := b.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := b.Crash(); err != nil {
		t.Fatalf("second Crash not idempotent: %v", err)
	}
	if err := b.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	dg := b.Daemon.Storage().Digest()
	if dg.Epoch == oldEpoch {
		t.Fatal("restart kept the old storage epoch")
	}
	if dg.Entries != 0 {
		t.Fatalf("restarted storage has %d entries, want empty", dg.Entries)
	}
	// The rebuilt daemon serves discovery again on the same radio.
	RunRounds([]*Node{a, b}, 1)
	if _, ok := b.Daemon.Storage().Lookup(a.Addr()); !ok {
		t.Fatal("restarted daemon did not rediscover a")
	}
}

func TestRestartWithoutCrashFails(t *testing.T) {
	w := InstantWorld(t, 1)
	n := AddNode(t, w, "a", geo.Pt(0, 0), 0)
	if err := n.Restart(); err == nil {
		t.Fatal("Restart on a live node succeeded")
	}
}

func TestNewPlaneRunsFaultScripts(t *testing.T) {
	w, clk := ManualWorld(t, 1)
	a := AddNode(t, w, "a", geo.Pt(0, 0), 0)
	b := AddNode(t, w, "b", geo.Pt(3, 0), 0)
	nodes := []*Node{a, b}
	RunRounds(nodes, 1)

	plane := NewPlane(t, w, nodes...)
	run := plane.Load(faultplane.Script{Events: []faultplane.Event{
		{At: time.Second, Do: faultplane.Partition{Segments: [][]string{{"a"}, {"b"}}}},
		{At: 2 * time.Second, Do: faultplane.Crash{Node: "b"}},
		{At: 3 * time.Second, Do: faultplane.Restart{Node: "b"}},
		{At: 4 * time.Second, Do: faultplane.Heal{}},
	}})

	clk.Advance(time.Second)
	run.ApplyDue()
	if res := a.Radio.Inquire(); len(res) != 0 {
		t.Fatal("partition did not hide b from a")
	}

	clk.Advance(time.Second)
	run.ApplyDue()
	if !b.Device.IsDown() {
		t.Fatal("crash did not power b down")
	}

	clk.Advance(2 * time.Second)
	run.ApplyDue()
	if err := run.Err(); err != nil {
		t.Fatalf("script errors: %v", err)
	}
	if !run.Done() {
		t.Fatal("script not done")
	}
	RunRounds(nodes, 1)
	if _, ok := b.Daemon.Storage().Lookup(a.Addr()); !ok {
		t.Fatal("restarted b did not rediscover a after heal")
	}
	if len(plane.Trace()) != 4 {
		t.Fatalf("trace = %v, want 4 entries", plane.Trace())
	}
}
