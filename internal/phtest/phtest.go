// Package phtest provides shared fixtures for integration tests: simulated
// worlds with PeerHood nodes (device + radio + plugin + daemon) wired
// together, with deterministic instant-network parameters by default.
package phtest

import (
	"errors"
	"testing"

	"peerhood/internal/bridge"
	"peerhood/internal/clock"
	"peerhood/internal/daemon"
	"peerhood/internal/device"
	"peerhood/internal/faultplane"
	"peerhood/internal/geo"
	"peerhood/internal/library"
	"peerhood/internal/mobility"
	"peerhood/internal/plugin"
	"peerhood/internal/simnet"
)

// InstantWorld returns a world on the real clock where every technology is
// deterministic and instantaneous: zero connect latency, zero inquiry time,
// no faults, no quality noise. Protocol-state tests use it.
func InstantWorld(t *testing.T, seed int64) *simnet.World {
	t.Helper()
	opts := []simnet.Option{simnet.WithQualityNoise(0)}
	for _, tech := range device.Techs() {
		opts = append(opts, simnet.WithParams(tech, simnet.DefaultParams(tech).Instant()))
	}
	w := simnet.NewWorld(clock.Real(), seed, opts...)
	t.Cleanup(func() { w.Close() })
	return w
}

// ManualWorld returns an instant-network world driven by a manual clock:
// nothing sleeps, and Now() only moves when the test advances it — the
// fixture for trend/prediction tests that need exact control over sample
// timestamps. Unlike InstantWorld, bandwidth is unlimited too: a write
// that slept simulated time would deadlock when nothing advances the
// clock concurrently.
func ManualWorld(t *testing.T, seed int64) (*simnet.World, *clock.Manual) {
	t.Helper()
	clk := clock.NewManual()
	opts := []simnet.Option{simnet.WithQualityNoise(0)}
	for _, tech := range device.Techs() {
		p := simnet.DefaultParams(tech).Instant()
		p.Bandwidth = 0
		opts = append(opts, simnet.WithParams(tech, p))
	}
	w := simnet.NewWorld(clk, seed, opts...)
	t.Cleanup(func() { w.Close() })
	return w, clk
}

// ScaledWorld returns a world on a scaled clock with the given per-tech
// parameters (nil keeps calibrated defaults). End-to-end timing tests use
// it.
func ScaledWorld(t *testing.T, seed int64, factor int, opts ...simnet.Option) *simnet.World {
	t.Helper()
	all := append([]simnet.Option{simnet.WithQualityNoise(0)}, opts...)
	w := simnet.NewWorld(clock.Scaled(factor), seed, all...)
	t.Cleanup(func() { w.Close() })
	return w
}

// Node bundles one simulated PeerHood device.
type Node struct {
	Device *simnet.Device
	Radio  *simnet.Radio
	Plugin *plugin.Sim
	Daemon *daemon.Daemon
	Lib    *library.Library
	Bridge *bridge.Service // nil unless AttachBridge was called

	w       *simnet.World
	crashed bool
}

// AttachBridge installs the hidden bridge service on the node.
func AttachBridge(t *testing.T, n *Node) *bridge.Service {
	t.Helper()
	b, err := bridge.Attach(bridge.Config{Library: n.Lib})
	if err != nil {
		t.Fatalf("bridge.Attach(%s): %v", n.Daemon.Name(), err)
	}
	t.Cleanup(func() { _ = b.Close() })
	n.Bridge = b
	return b
}

// Addr returns the node's Bluetooth address.
func (n *Node) Addr() device.Addr { return n.Radio.Addr() }

// NodeOpts tweaks AddNode.
type NodeOpts struct {
	Mobility device.Mobility
	Model    mobility.Model
	// DaemonConfig overrides individual daemon fields; Name/Clock are set
	// by AddNode.
	ServiceCheckInterval int // in discovery rounds... unused; keep simple
}

// AddNode creates a device at a fixed position with a Bluetooth radio and a
// started daemon (manual discovery). The daemon is stopped via t.Cleanup.
func AddNode(t *testing.T, w *simnet.World, name string, at geo.Point, mob device.Mobility) *Node {
	t.Helper()
	return AddMovingNode(t, w, name, mobility.Static{At: at}, mob)
}

// AddMovingNode is AddNode with an arbitrary mobility model.
func AddMovingNode(t *testing.T, w *simnet.World, name string, model mobility.Model, mob device.Mobility) *Node {
	t.Helper()
	dev, err := w.AddDevice(name, model)
	if err != nil {
		t.Fatalf("AddDevice(%s): %v", name, err)
	}
	radio, err := dev.AddRadio(device.TechBluetooth)
	if err != nil {
		t.Fatalf("AddRadio(%s): %v", name, err)
	}
	p := plugin.NewSim(w, radio)
	d, err := daemon.New(daemon.Config{Name: name, Mobility: mob, Clock: w.Clock()})
	if err != nil {
		t.Fatalf("daemon.New(%s): %v", name, err)
	}
	if err := d.AddPlugin(p); err != nil {
		t.Fatalf("AddPlugin(%s): %v", name, err)
	}
	if err := d.Start(false); err != nil {
		t.Fatalf("daemon.Start(%s): %v", name, err)
	}
	// Stop is idempotent, so the started daemon gets its own cleanup
	// immediately: a t.Fatalf below must not leak its goroutines.
	t.Cleanup(d.Stop)
	lib, err := library.New(library.Config{Daemon: d})
	if err != nil {
		t.Fatalf("library.New(%s): %v", name, err)
	}
	if err := lib.Start(); err != nil {
		t.Fatalf("library.Start(%s): %v", name, err)
	}
	n := &Node{Device: dev, Radio: radio, Plugin: p, Daemon: d, Lib: lib, w: w}
	// This cleanup reads the *current* daemon and library so that nodes a
	// fault script has crashed and restarted still shut down cleanly.
	t.Cleanup(func() {
		n.Lib.Stop()
		n.Daemon.Stop()
	})
	return n
}

// Name returns the node's device name.
func (n *Node) Name() string { return n.Device.Name() }

// Crash stops the node's daemon and library abruptly (the bridge, if
// attached, dies with its library). The simulated device stays in the
// world; pair with Device.SetDown or a faultplane.Crash event to take its
// radio off the air too. Idempotent.
func (n *Node) Crash() error {
	if n.crashed {
		return nil
	}
	n.crashed = true
	if n.Bridge != nil {
		_ = n.Bridge.Close()
		n.Bridge = nil
	}
	n.Lib.Stop()
	n.Daemon.Stop()
	return nil
}

// Restart rebuilds the crashed node's daemon and library on the same
// radio. The new daemon has a fresh storage epoch, so peers that had
// delta-synced with the old instance fall back to a full resync. A bridge
// is not re-attached; call AttachBridge again if the scenario needs one.
func (n *Node) Restart() error {
	if !n.crashed {
		return errors.New("phtest: Restart on a node that was not crashed")
	}
	d, err := daemon.New(n.Daemon.Config())
	if err != nil {
		return err
	}
	p := plugin.NewSim(n.w, n.Radio)
	if err := d.AddPlugin(p); err != nil {
		return err
	}
	if err := d.Start(false); err != nil {
		return err
	}
	lib, err := library.New(library.Config{Daemon: d})
	if err != nil {
		d.Stop()
		return err
	}
	if err := lib.Start(); err != nil {
		d.Stop()
		return err
	}
	n.Plugin, n.Daemon, n.Lib = p, d, lib
	n.crashed = false
	return nil
}

// NewPlane returns a fault-injection plane over w whose crash/restart
// events resolve against the given nodes. The plane's link filter is
// uninstalled when the test ends.
func NewPlane(t *testing.T, w *simnet.World, nodes ...*Node) *faultplane.Plane {
	t.Helper()
	byName := make(map[string]*Node, len(nodes))
	for _, n := range nodes {
		byName[n.Name()] = n
	}
	p, err := faultplane.New(faultplane.Config{
		World: w,
		Resolve: func(name string) (faultplane.NodeHandle, bool) {
			n, ok := byName[name]
			return n, ok
		},
	})
	if err != nil {
		t.Fatalf("faultplane.New: %v", err)
	}
	t.Cleanup(p.Detach)
	return p
}

// RunRounds drives n synchronous discovery rounds across all nodes, in
// order, so that information propagates deterministically. k rounds give
// every node awareness of devices up to k jumps away (fig 3.10).
func RunRounds(nodes []*Node, n int) {
	for i := 0; i < n; i++ {
		for _, node := range nodes {
			node.Daemon.RunDiscoveryRound()
		}
	}
}
