// Package phtest provides shared fixtures for integration tests: simulated
// worlds with PeerHood nodes (device + radio + plugin + daemon) wired
// together, with deterministic instant-network parameters by default.
package phtest

import (
	"testing"

	"peerhood/internal/bridge"
	"peerhood/internal/clock"
	"peerhood/internal/daemon"
	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/library"
	"peerhood/internal/mobility"
	"peerhood/internal/plugin"
	"peerhood/internal/simnet"
)

// InstantWorld returns a world on the real clock where every technology is
// deterministic and instantaneous: zero connect latency, zero inquiry time,
// no faults, no quality noise. Protocol-state tests use it.
func InstantWorld(t *testing.T, seed int64) *simnet.World {
	t.Helper()
	opts := []simnet.Option{simnet.WithQualityNoise(0)}
	for _, tech := range device.Techs() {
		opts = append(opts, simnet.WithParams(tech, simnet.DefaultParams(tech).Instant()))
	}
	w := simnet.NewWorld(clock.Real(), seed, opts...)
	t.Cleanup(func() { w.Close() })
	return w
}

// ManualWorld returns an instant-network world driven by a manual clock:
// nothing sleeps, and Now() only moves when the test advances it — the
// fixture for trend/prediction tests that need exact control over sample
// timestamps. Unlike InstantWorld, bandwidth is unlimited too: a write
// that slept simulated time would deadlock when nothing advances the
// clock concurrently.
func ManualWorld(t *testing.T, seed int64) (*simnet.World, *clock.Manual) {
	t.Helper()
	clk := clock.NewManual()
	opts := []simnet.Option{simnet.WithQualityNoise(0)}
	for _, tech := range device.Techs() {
		p := simnet.DefaultParams(tech).Instant()
		p.Bandwidth = 0
		opts = append(opts, simnet.WithParams(tech, p))
	}
	w := simnet.NewWorld(clk, seed, opts...)
	t.Cleanup(func() { w.Close() })
	return w, clk
}

// ScaledWorld returns a world on a scaled clock with the given per-tech
// parameters (nil keeps calibrated defaults). End-to-end timing tests use
// it.
func ScaledWorld(t *testing.T, seed int64, factor int, opts ...simnet.Option) *simnet.World {
	t.Helper()
	all := append([]simnet.Option{simnet.WithQualityNoise(0)}, opts...)
	w := simnet.NewWorld(clock.Scaled(factor), seed, all...)
	t.Cleanup(func() { w.Close() })
	return w
}

// Node bundles one simulated PeerHood device.
type Node struct {
	Device *simnet.Device
	Radio  *simnet.Radio
	Plugin *plugin.Sim
	Daemon *daemon.Daemon
	Lib    *library.Library
	Bridge *bridge.Service // nil unless AttachBridge was called
}

// AttachBridge installs the hidden bridge service on the node.
func AttachBridge(t *testing.T, n *Node) *bridge.Service {
	t.Helper()
	b, err := bridge.Attach(bridge.Config{Library: n.Lib})
	if err != nil {
		t.Fatalf("bridge.Attach(%s): %v", n.Daemon.Name(), err)
	}
	t.Cleanup(func() { _ = b.Close() })
	n.Bridge = b
	return b
}

// Addr returns the node's Bluetooth address.
func (n *Node) Addr() device.Addr { return n.Radio.Addr() }

// NodeOpts tweaks AddNode.
type NodeOpts struct {
	Mobility device.Mobility
	Model    mobility.Model
	// DaemonConfig overrides individual daemon fields; Name/Clock are set
	// by AddNode.
	ServiceCheckInterval int // in discovery rounds... unused; keep simple
}

// AddNode creates a device at a fixed position with a Bluetooth radio and a
// started daemon (manual discovery). The daemon is stopped via t.Cleanup.
func AddNode(t *testing.T, w *simnet.World, name string, at geo.Point, mob device.Mobility) *Node {
	t.Helper()
	return AddMovingNode(t, w, name, mobility.Static{At: at}, mob)
}

// AddMovingNode is AddNode with an arbitrary mobility model.
func AddMovingNode(t *testing.T, w *simnet.World, name string, model mobility.Model, mob device.Mobility) *Node {
	t.Helper()
	dev, err := w.AddDevice(name, model)
	if err != nil {
		t.Fatalf("AddDevice(%s): %v", name, err)
	}
	radio, err := dev.AddRadio(device.TechBluetooth)
	if err != nil {
		t.Fatalf("AddRadio(%s): %v", name, err)
	}
	p := plugin.NewSim(w, radio)
	d, err := daemon.New(daemon.Config{Name: name, Mobility: mob, Clock: w.Clock()})
	if err != nil {
		t.Fatalf("daemon.New(%s): %v", name, err)
	}
	if err := d.AddPlugin(p); err != nil {
		t.Fatalf("AddPlugin(%s): %v", name, err)
	}
	if err := d.Start(false); err != nil {
		t.Fatalf("daemon.Start(%s): %v", name, err)
	}
	t.Cleanup(d.Stop)
	lib, err := library.New(library.Config{Daemon: d})
	if err != nil {
		t.Fatalf("library.New(%s): %v", name, err)
	}
	if err := lib.Start(); err != nil {
		t.Fatalf("library.Start(%s): %v", name, err)
	}
	t.Cleanup(lib.Stop)
	return &Node{Device: dev, Radio: radio, Plugin: p, Daemon: d, Lib: lib}
}

// RunRounds drives n synchronous discovery rounds across all nodes, in
// order, so that information propagates deterministically. k rounds give
// every node awareness of devices up to k jumps away (fig 3.10).
func RunRounds(nodes []*Node, n int) {
	for i := 0; i < n; i++ {
		for _, node := range nodes {
			node.Daemon.RunDiscoveryRound()
		}
	}
}
