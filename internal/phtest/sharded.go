package phtest

import (
	"testing"

	"peerhood/internal/device"
	"peerhood/internal/faultplane"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/simnet"
)

// InstantShardedWorld returns a sharded world where every technology is
// deterministic and instantaneous (no faults, no response misses, no
// quality noise, zero bandwidth) — the sharded counterpart of
// ManualWorld. The world is closed via t.Cleanup.
func InstantShardedWorld(t *testing.T, seed int64) *simnet.ShardedWorld {
	t.Helper()
	return ShardedWorldWith(t, simnet.ShardedConfig{Seed: seed})
}

// ShardedWorldWith returns a sharded world built from cfg; technologies
// without explicit parameters get the deterministic instant defaults.
// The world is closed via t.Cleanup.
func ShardedWorldWith(t *testing.T, cfg simnet.ShardedConfig) *simnet.ShardedWorld {
	t.Helper()
	params := make(map[device.Tech]simnet.TechParams, len(device.Techs()))
	for _, tech := range device.Techs() {
		p := simnet.DefaultParams(tech).Instant()
		p.Bandwidth = 0
		params[tech] = p
	}
	for tech, p := range cfg.Params {
		params[tech] = p
	}
	cfg.Params = params
	w := simnet.NewShardedWorld(cfg)
	t.Cleanup(func() { w.Close() })
	return w
}

// AddShardNode adds a static node with the given technologies (Bluetooth
// if none are named) to a sharded world, failing the test on error.
func AddShardNode(t *testing.T, w *simnet.ShardedWorld, name string, at geo.Point, techs ...device.Tech) simnet.NodeID {
	t.Helper()
	return AddMovingShardNode(t, w, name, mobility.Static{At: at}, techs...)
}

// AddMovingShardNode is AddShardNode with an arbitrary mobility model.
func AddMovingShardNode(t *testing.T, w *simnet.ShardedWorld, name string, model mobility.Model, techs ...device.Tech) simnet.NodeID {
	t.Helper()
	if len(techs) == 0 {
		techs = []device.Tech{device.TechBluetooth}
	}
	id, err := w.AddNode(simnet.ShardNodeSpec{Name: name, Model: model, Techs: techs})
	if err != nil {
		t.Fatalf("AddNode(%s): %v", name, err)
	}
	return id
}

// NewShardPlane returns a fault-injection plane over the sharded world w
// whose crash/restart events resolve against the given handles.
func NewShardPlane(t *testing.T, w *simnet.ShardedWorld, nodes ...faultplane.NodeHandle) *faultplane.ShardPlane {
	t.Helper()
	byName := make(map[string]faultplane.NodeHandle, len(nodes))
	for _, n := range nodes {
		byName[n.Name()] = n
	}
	p, err := faultplane.NewShardPlane(faultplane.ShardConfig{
		World: w,
		Resolve: func(name string) (faultplane.NodeHandle, bool) {
			n, ok := byName[name]
			return n, ok
		},
	})
	if err != nil {
		t.Fatalf("faultplane.NewShardPlane: %v", err)
	}
	return p
}
