package phtest

import (
	"testing"

	"peerhood"
	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/experiments"
	"peerhood/internal/geo"
)

// This file is the multi-radio fixture: worlds whose nodes carry several
// technologies, on the S5 hotspot-archipelago radio profile
// (experiments.ArchipelagoParams — a 500 m GPRS umbrella, hard-edged 15 m
// WLAN islands, Bluetooth at its instant defaults), so unit-level
// multi-tech tests and the S5 experiment share one deterministic
// geometry. Unlike the rest of phtest these fixtures build nodes through
// the public peerhood API, because multi-radio nodes are exactly what
// that API bundles (daemon + library + bridge over every attached radio).

// MultiTechWorld returns a deterministic instant multi-radio world on the
// real clock. Drive discovery with World.RunDiscoveryRounds; the world is
// closed via t.Cleanup.
func MultiTechWorld(t *testing.T, seed int64) *peerhood.World {
	t.Helper()
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: seed, Instant: true})
	applyArchipelago(w)
	t.Cleanup(func() { _ = w.Close() })
	return w
}

// MultiTechManualWorld is MultiTechWorld on a manual clock: nothing
// sleeps, and time only moves when the test advances it — the fixture for
// the vertical-handover trigger and hysteresis pins.
func MultiTechManualWorld(t *testing.T, seed int64) (*peerhood.World, *clock.Manual) {
	t.Helper()
	clk := clock.NewManual()
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: seed, Clock: clk, Instant: true})
	applyArchipelago(w)
	t.Cleanup(func() { _ = w.Close() })
	return w, clk
}

func applyArchipelago(w *peerhood.World) {
	for _, tech := range device.Techs() {
		w.Sim().SetParams(tech, experiments.ArchipelagoParams(tech))
	}
}

// AddMultiTechNode creates a started node carrying the given radios (one
// Bluetooth radio when none are named) at a fixed position. The world's
// cleanup stops it.
func AddMultiTechNode(t *testing.T, w *peerhood.World, name string, at geo.Point, mob device.Mobility, techs ...device.Tech) *peerhood.Node {
	t.Helper()
	n, err := w.NewNode(peerhood.NodeConfig{
		Name:     name,
		Position: at,
		Mobility: mob,
		Techs:    techs,
	})
	if err != nil {
		t.Fatalf("NewNode(%s): %v", name, err)
	}
	return n
}
