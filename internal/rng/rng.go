// Package rng provides the deterministic randomness used across the PeerHood
// simulator. All stochastic behaviour — connection faults, connect latency,
// link-quality noise, inquiry response loss, topology generation — draws from
// a Source seeded per scenario, so every experiment and test is reproducible
// from its printed seed.
package rng

import (
	"math"
	"math/rand"
	"sync"
)

// Source is a concurrency-safe deterministic random source.
type Source struct {
	mu sync.Mutex
	r  *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// NewCompact returns a Source whose generator state is 32 bytes
// (xoshiro256++ seeded through a splitmix64 expander) instead of the
// ~5 KB additive-LFG state behind New. Same API, same determinism
// guarantees; the sequence differs from an identically-seeded New. Use it
// for per-entity streams in 100k-entity worlds, where the default
// generator's state alone would dominate the heap.
func NewCompact(seed int64) *Source {
	// One allocation for the whole Source→Rand→generator chain: at 100k+
	// streams the garbage collector's mark phase notices every object it
	// does not have to trace.
	b := &struct {
		src Source
		rnd rand.Rand
		x   xoshiro
	}{}
	b.x.Seed(seed)
	b.rnd = *rand.New(&b.x)
	b.src.r = &b.rnd
	return &b.src
}

// Fork derives an independent child source from s. Components that roll dice
// on their own cadence (e.g. each radio) get forked sources so that adding a
// component does not perturb the stream seen by the others.
func (s *Source) Fork() *Source {
	s.mu.Lock()
	defer s.mu.Unlock()
	return New(s.r.Int63())
}

// ForkCompact derives an independent child source with compact generator
// state; see NewCompact.
func (s *Source) ForkCompact() *Source {
	s.mu.Lock()
	defer s.mu.Unlock()
	return NewCompact(s.r.Int63())
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Float64()
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Intn(n)
}

// Int63 returns a non-negative 63-bit value.
func (s *Source) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Int63()
}

// Uniform returns a uniform value in [lo, hi). It panics if hi < lo.
func (s *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + (hi-lo)*s.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return mean + stddev*s.r.NormFloat64()
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.ExpFloat64() * mean
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Perm(n)
}

// Shuffle randomises the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.r.Shuffle(n, swap)
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// xoshiro is a xoshiro256++ generator implementing math/rand.Source64.
type xoshiro struct{ s [4]uint64 }

// Seed fills the state through a splitmix64 expander, as the xoshiro
// authors recommend (the raw seed must not reach the state directly: the
// all-zero state is a fixed point).
func (x *xoshiro) Seed(seed int64) {
	z := uint64(seed)
	for i := range x.s {
		z += 0x9e3779b97f4a7c15
		w := z
		w = (w ^ (w >> 30)) * 0xbf58476d1ce4e5b9
		w = (w ^ (w >> 27)) * 0x94d049bb133111eb
		x.s[i] = w ^ (w >> 31)
	}
}

func rotl(v uint64, k uint) uint64 { return v<<k | v>>(64-k) }

func (x *xoshiro) Uint64() uint64 {
	out := rotl(x.s[0]+x.s[3], 23) + x.s[0]
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return out
}

func (x *xoshiro) Int63() int64 { return int64(x.Uint64() >> 1) }
