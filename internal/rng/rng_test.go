package rng

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestDeterministicSameSeed(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("streams diverged at %d: %v vs %v", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork()
	// Draw from parent; the child stream must be unaffected by when we read it.
	parentDraws := make([]float64, 10)
	for i := range parentDraws {
		parentDraws[i] = parent.Float64()
	}
	c1First := c1.Float64()

	parent2 := New(7)
	c2 := parent2.Fork()
	c2First := c2.Float64()
	if c1First != c2First {
		t.Fatalf("forked child not reproducible: %v vs %v", c1First, c2First)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	if err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Bound magnitudes so hi-lo cannot overflow to +Inf.
		a, b = math.Mod(a, 1e12), math.Mod(b, 1e12)
		lo, hi := math.Min(a, b), math.Max(a, b)
		v := s.Uniform(lo, hi)
		return v >= lo && (v < hi || lo == hi)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformDegenerate(t *testing.T) {
	s := New(1)
	if v := s.Uniform(5, 5); v != 5 {
		t.Fatalf("Uniform(5,5) = %v, want 5", v)
	}
}

func TestUniformPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(hi<lo) did not panic")
		}
	}()
	New(1).Uniform(2, 1)
}

func TestBoolEdges(t *testing.T) {
	s := New(9)
	for i := 0; i < 20; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(11)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.27 || got > 0.33 {
		t.Fatalf("Bool(0.3) frequency = %v, want ~0.3", got)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Fatalf("Normal variance = %v, want ~4", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(5)
	}
	if mean := sum / float64(n); math.Abs(mean-5) > 0.2 {
		t.Fatalf("Exp mean = %v, want ~5", mean)
	}
}

func TestExpPanicsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(19)
	p := s.Perm(10)
	seen := make(map[int]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm(10) invalid: %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Perm(10) missing values: %v", p)
	}
}

func TestConcurrentAccessRace(t *testing.T) {
	s := New(23)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Float64()
				s.Intn(10)
				s.Bool(0.5)
			}
		}()
	}
	wg.Wait()
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}
