package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Manual is a Clock whose time only moves when Advance is called. It is the
// deterministic clock used by unit tests: code under test registers waiters
// via Sleep/After/NewTicker and the test advances time explicitly.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int64 // tiebreaker so equal deadlines fire in registration order
}

var _ Clock = (*Manual)(nil)

// NewManual returns a Manual clock starting at the Unix epoch.
func NewManual() *Manual {
	return &Manual{now: time.Unix(0, 0)}
}

// NewManualAt returns a Manual clock starting at t.
func NewManualAt(t time.Time) *Manual {
	return &Manual{now: t}
}

// Now returns the current manual time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since returns the manual time elapsed since t.
func (m *Manual) Since(t time.Time) time.Duration { return m.Now().Sub(t) }

// Sleep blocks until Advance has moved the clock at least d forward.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After returns a channel delivering the manual time once d has elapsed.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.push(&waiter{at: m.now.Add(d), ch: ch})
	return ch
}

// NewTicker returns a ticker driven by Advance.
func (m *Manual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive Ticker duration")
	}
	mt := &manualTicker{m: m, period: d, ch: make(chan time.Time, 1)}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &waiter{at: m.now.Add(d), tick: mt}
	mt.w = w
	m.push(w)
	return mt
}

// Advance moves the clock forward by d, firing every timer and ticker whose
// deadline is reached, in deadline order. It returns the number of waiters
// fired.
func (m *Manual) Advance(d time.Duration) int {
	m.mu.Lock()
	target := m.now.Add(d)
	fired := 0
	for len(m.waiters) > 0 && !m.waiters[0].at.After(target) {
		w := heap.Pop(&m.waiters).(*waiter)
		if w.cancelled {
			continue
		}
		m.now = w.at
		fired++
		if w.tick != nil {
			// Re-arm the ticker before delivering, like time.Ticker.
			nw := &waiter{at: w.at.Add(w.tick.period), tick: w.tick}
			w.tick.w = nw
			m.push(nw)
			select {
			case w.tick.ch <- m.now:
			default:
			}
			continue
		}
		w.ch <- m.now
	}
	m.now = target
	m.mu.Unlock()
	return fired
}

// PendingWaiters reports how many timers/tickers are currently registered.
func (m *Manual) PendingWaiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, w := range m.waiters {
		if !w.cancelled {
			n++
		}
	}
	return n
}

func (m *Manual) push(w *waiter) {
	w.seq = m.seq
	m.seq++
	heap.Push(&m.waiters, w)
}

type waiter struct {
	at        time.Time
	seq       int64
	ch        chan time.Time
	tick      *manualTicker
	cancelled bool
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

type manualTicker struct {
	m      *Manual
	period time.Duration
	ch     chan time.Time
	w      *waiter
}

func (mt *manualTicker) C() <-chan time.Time { return mt.ch }

func (mt *manualTicker) Stop() {
	mt.m.mu.Lock()
	defer mt.m.mu.Unlock()
	if mt.w != nil {
		mt.w.cancelled = true
		mt.w = nil
	}
}
