// Package clock abstracts time so that PeerHood protocol code can run
// against the real wall clock, a scaled clock (simulated seconds compressed
// into wall milliseconds), or a fully manual clock for deterministic tests.
//
// Every duration used by protocol code is expressed in *simulated* time; the
// clock implementation decides how long that takes on the wall. The scaled
// clock is what makes the thesis' experiments — minutes of walking, 3–18 s
// Bluetooth connection establishment — reproducible in milliseconds.
package clock

import (
	"sync"
	"time"
)

// Clock is the time source used by all PeerHood components.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current simulated time.
	Now() time.Time

	// Sleep blocks the calling goroutine for d of simulated time.
	// It returns immediately if d <= 0.
	Sleep(d time.Duration)

	// After returns a channel that delivers the simulated time after d has
	// elapsed. The channel has capacity one and is never closed.
	After(d time.Duration) <-chan time.Time

	// NewTicker returns a ticker firing every d of simulated time.
	// It panics if d <= 0, mirroring time.NewTicker.
	NewTicker(d time.Duration) Ticker

	// Since returns the simulated time elapsed since t.
	Since(t time.Time) time.Duration
}

// Ticker is the clock-agnostic analogue of *time.Ticker.
type Ticker interface {
	// C returns the delivery channel.
	C() <-chan time.Time
	// Stop releases the ticker's resources. After Stop returns no further
	// ticks are delivered.
	Stop()
}

// Real returns a Clock backed directly by the wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

var _ Clock = realClock{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }

func (realClock) NewTicker(d time.Duration) Ticker {
	return realTicker{t: time.NewTicker(d)}
}

type realTicker struct{ t *time.Ticker }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }

// Scaled returns a Clock in which simulated time passes factor times faster
// than wall time: Sleep(1*time.Second) on a 1000× clock blocks for 1 ms of
// wall time, and Now() advances 1000 simulated seconds per wall second.
//
// The epoch of the scaled clock is fixed at construction, so simulated
// timestamps from one Scaled clock are mutually comparable but unrelated to
// wall timestamps. factor must be >= 1.
func Scaled(factor int) Clock {
	if factor < 1 {
		factor = 1
	}
	return &scaledClock{
		factor: time.Duration(factor),
		start:  time.Now(),
		epoch:  time.Unix(0, 0),
	}
}

type scaledClock struct {
	factor time.Duration
	start  time.Time // wall time at construction
	epoch  time.Time // simulated time at construction
}

var _ Clock = (*scaledClock)(nil)

func (c *scaledClock) Now() time.Time {
	return c.epoch.Add(time.Since(c.start) * c.factor)
}

func (c *scaledClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(c.wall(d))
}

func (c *scaledClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	time.AfterFunc(c.wall(d), func() { ch <- c.Now() })
	return ch
}

func (c *scaledClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *scaledClock) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive Ticker duration")
	}
	wall := c.wall(d)
	t := time.NewTicker(wall)
	st := &scaledTicker{clk: c, inner: t, out: make(chan time.Time, 1), done: make(chan struct{})}
	go st.run()
	return st
}

// wall converts a simulated duration to the wall duration it occupies,
// rounding up to 1ns so that scaled waits never collapse to busy loops.
func (c *scaledClock) wall(d time.Duration) time.Duration {
	w := d / c.factor
	if w <= 0 && d > 0 {
		w = 1
	}
	return w
}

type scaledTicker struct {
	clk   *scaledClock
	inner *time.Ticker
	out   chan time.Time
	done  chan struct{}
	once  sync.Once
}

func (st *scaledTicker) run() {
	for {
		select {
		case <-st.inner.C:
			select {
			case st.out <- st.clk.Now():
			default: // receiver is slow; drop the tick like time.Ticker does
			}
		case <-st.done:
			return
		}
	}
}

func (st *scaledTicker) C() <-chan time.Time { return st.out }

func (st *scaledTicker) Stop() {
	st.once.Do(func() {
		st.inner.Stop()
		close(st.done)
	})
}
