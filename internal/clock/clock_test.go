package clock

import (
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	c := Real()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real().Now() = %v, want between %v and %v", got, before, after)
	}
}

func TestRealSince(t *testing.T) {
	c := Real()
	start := c.Now()
	c.Sleep(time.Millisecond)
	if d := c.Since(start); d < time.Millisecond {
		t.Fatalf("Since = %v, want >= 1ms", d)
	}
}

func TestScaledSleepCompresses(t *testing.T) {
	c := Scaled(1000)
	wallStart := time.Now()
	c.Sleep(1 * time.Second) // should take ~1ms wall
	if wall := time.Since(wallStart); wall > 500*time.Millisecond {
		t.Fatalf("scaled sleep of 1s took %v wall, want ~1ms", wall)
	}
}

func TestScaledNowAdvances(t *testing.T) {
	c := Scaled(1000)
	start := c.Now()
	time.Sleep(5 * time.Millisecond)
	elapsed := c.Since(start)
	if elapsed < 2*time.Second {
		t.Fatalf("scaled clock advanced %v in 5ms wall, want >= 2s simulated", elapsed)
	}
}

func TestScaledAfter(t *testing.T) {
	c := Scaled(1000)
	select {
	case <-c.After(1 * time.Second):
	case <-time.After(2 * time.Second): // wall-time guard
		t.Fatal("scaled After(1s) did not fire within 2s wall")
	}
}

func TestScaledFactorClamped(t *testing.T) {
	c := Scaled(0) // clamps to 1, i.e. real time
	start := time.Now()
	c.Sleep(2 * time.Millisecond)
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("factor-1 scaled clock slept less than requested")
	}
}

func TestScaledTicker(t *testing.T) {
	c := Scaled(1000)
	tk := c.NewTicker(100 * time.Millisecond) // 0.1ms wall per tick
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		select {
		case <-tk.C():
		case <-time.After(time.Second):
			t.Fatalf("tick %d did not arrive", i)
		}
	}
}

func TestScaledTickerStopIdempotent(t *testing.T) {
	c := Scaled(1000)
	tk := c.NewTicker(time.Second)
	tk.Stop()
	tk.Stop() // must not panic
}

func TestScaledTickerPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker(0) did not panic")
		}
	}()
	Scaled(10).NewTicker(0)
}

func TestManualNowFixedUntilAdvance(t *testing.T) {
	m := NewManual()
	t0 := m.Now()
	if got := m.Now(); !got.Equal(t0) {
		t.Fatalf("manual time moved without Advance: %v vs %v", got, t0)
	}
	m.Advance(5 * time.Second)
	if got := m.Since(t0); got != 5*time.Second {
		t.Fatalf("Since after Advance = %v, want 5s", got)
	}
}

func TestManualAfterFiresOnAdvance(t *testing.T) {
	m := NewManual()
	ch := m.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	m.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired too early")
	default:
	}
	m.Advance(1 * time.Second)
	select {
	case at := <-ch:
		want := time.Unix(0, 0).Add(10 * time.Second)
		if !at.Equal(want) {
			t.Fatalf("After delivered %v, want %v", at, want)
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
}

func TestManualAfterNonPositiveFiresImmediately(t *testing.T) {
	m := NewManual()
	select {
	case <-m.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestManualAdvanceFiresInDeadlineOrder(t *testing.T) {
	m := NewManual()
	var order []int
	ch2 := m.After(2 * time.Second)
	ch1 := m.After(1 * time.Second)
	ch3 := m.After(3 * time.Second)
	fired := m.Advance(5 * time.Second)
	if fired != 3 {
		t.Fatalf("Advance fired %d waiters, want 3", fired)
	}
	t1 := <-ch1
	t2 := <-ch2
	t3 := <-ch3
	if !t1.Before(t2) || !t2.Before(t3) {
		t.Fatalf("fire times out of order: %v %v %v", t1, t2, t3)
	}
	_ = order
}

func TestManualSleepBlocksUntilAdvance(t *testing.T) {
	m := NewManual()
	done := make(chan struct{})
	go func() {
		m.Sleep(time.Second)
		close(done)
	}()
	// Wait for the sleeper to register.
	for i := 0; i < 100 && m.PendingWaiters() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if m.PendingWaiters() != 1 {
		t.Fatal("sleeper never registered")
	}
	m.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestManualTicker(t *testing.T) {
	m := NewManual()
	tk := m.NewTicker(10 * time.Second)
	defer tk.Stop()
	m.Advance(10 * time.Second)
	select {
	case <-tk.C():
	default:
		t.Fatal("ticker did not fire on first period")
	}
	m.Advance(10 * time.Second)
	select {
	case <-tk.C():
	default:
		t.Fatal("ticker did not re-arm")
	}
}

func TestManualTickerDropsWhenSlow(t *testing.T) {
	m := NewManual()
	tk := m.NewTicker(time.Second)
	defer tk.Stop()
	// Three periods pass without anyone reading: only one tick is buffered.
	m.Advance(3 * time.Second)
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("buffered ticks = %d, want 1 (slow receivers drop ticks)", n)
	}
}

func TestManualTickerStop(t *testing.T) {
	m := NewManual()
	tk := m.NewTicker(time.Second)
	tk.Stop()
	m.Advance(10 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker delivered a tick")
	default:
	}
	if n := m.PendingWaiters(); n != 0 {
		t.Fatalf("PendingWaiters = %d after Stop, want 0", n)
	}
}

func TestManualAdvanceZero(t *testing.T) {
	m := NewManual()
	m.After(time.Second)
	if fired := m.Advance(0); fired != 0 {
		t.Fatalf("Advance(0) fired %d, want 0", fired)
	}
}

func TestManualEqualDeadlinesFireInRegistrationOrder(t *testing.T) {
	m := NewManual()
	first := m.After(time.Second)
	second := m.After(time.Second)
	m.Advance(time.Second)
	// Both fired; both channels hold the same timestamp. Mostly this checks
	// no deadlock/panic with equal deadlines.
	<-first
	<-second
}
