package events

import (
	"sync"
	"testing"
	"time"

	"peerhood/internal/race"
)

func TestBatchSubscribeDeliversBursts(t *testing.T) {
	b := NewBus(nil)
	defer b.Close()
	sub := b.SubscribeBatch(0)
	defer sub.Close()

	for i := 0; i < 5; i++ {
		b.Publish(Event{Type: DeviceAppeared, Addr: addr("aa")})
	}
	batch, ok := sub.NextBatch(nil)
	if !ok || len(batch) != 5 {
		t.Fatalf("batch = %d events, ok=%v, want 5", len(batch), ok)
	}
	for i, e := range batch {
		if e.Seq != uint64(i+1) {
			t.Fatalf("batch[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
	}

	// A blocked NextBatch wakes on the next publish.
	got := make(chan []Event, 1)
	go func() {
		nb, _ := sub.NextBatch(batch[:0])
		got <- nb
	}()
	time.Sleep(10 * time.Millisecond)
	b.Publish(Event{Type: DeviceLost, Addr: addr("bb")})
	select {
	case nb := <-got:
		if len(nb) != 1 || nb[0].Type != DeviceLost {
			t.Fatalf("woken batch = %+v", nb)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("NextBatch did not wake on publish")
	}
}

func TestBatchTryRecvIsSynchronous(t *testing.T) {
	b := NewBus(nil)
	defer b.Close()
	sub := b.SubscribeBatch(MaskOf(LinkLost))
	defer sub.Close()

	if _, ok := sub.TryRecv(); ok {
		t.Fatal("TryRecv on empty ring returned an event")
	}
	b.Publish(Event{Type: DeviceAppeared, Addr: addr("aa")}) // filtered
	b.Publish(Event{Type: LinkLost, Addr: addr("aa")})
	e, ok := sub.TryRecv()
	if !ok || e.Type != LinkLost {
		t.Fatalf("TryRecv = %+v, %v", e, ok)
	}
	if _, ok := sub.TryRecv(); ok {
		t.Fatal("drained ring still yields events")
	}
}

func TestBatchSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBus(nil)
	defer b.Close()
	sub := b.SubscribeBatch(0)
	defer sub.Close()

	total := SubscriptionBuffer + 9
	for i := 0; i < total; i++ {
		b.Publish(Event{Type: DeviceAppeared, Addr: addr("aa")})
	}
	if d := sub.Dropped(); d != 9 {
		t.Fatalf("dropped = %d, want 9", d)
	}
	batch, ok := sub.NextBatch(nil)
	if !ok || len(batch) != SubscriptionBuffer {
		t.Fatalf("batch = %d events, want %d", len(batch), SubscriptionBuffer)
	}
	if batch[0].Seq != 1 {
		t.Fatalf("first buffered seq = %d, want 1 (oldest kept)", batch[0].Seq)
	}
}

func TestBatchCloseDrainsThenEnds(t *testing.T) {
	b := NewBus(nil)
	sub := b.SubscribeBatch(0)
	b.Publish(Event{Type: DeviceLost, Addr: addr("aa")})
	b.Close()

	// Remaining ring content is readable after close, then ok=false.
	batch, ok := sub.NextBatch(nil)
	if !ok || len(batch) != 1 || batch[0].Type != DeviceLost {
		t.Fatalf("drain = %+v, %v", batch, ok)
	}
	if batch, ok = sub.NextBatch(batch[:0]); ok || len(batch) != 0 {
		t.Fatalf("NextBatch after drain = %+v, %v, want ok=false", batch, ok)
	}
	// Subscribing on the closed bus yields an already-ended subscription.
	late := b.SubscribeBatch(0)
	if _, ok := late.NextBatch(nil); ok {
		t.Fatal("late batch subscription delivered events")
	}
	late.Close()
	sub.Close()
}

func TestBatchSubscriptionCloseWakesBlockedConsumer(t *testing.T) {
	b := NewBus(nil)
	defer b.Close()
	sub := b.SubscribeBatch(0)
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.NextBatch(nil)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	sub.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("NextBatch returned ok=true after Close with empty ring")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the blocked NextBatch")
	}
}

func TestBatchConcurrentPublishDrain(t *testing.T) {
	b := NewBus(nil)
	defer b.Close()
	sub := b.SubscribeBatch(0)

	const total = 10000
	var wg sync.WaitGroup
	wg.Add(1)
	received := 0
	go func() {
		defer wg.Done()
		var buf []Event
		for {
			var ok bool
			buf, ok = sub.NextBatch(buf[:0])
			if !ok {
				return
			}
			received += len(buf)
		}
	}()
	for i := 0; i < total; i++ {
		b.Publish(Event{Type: DeviceAppeared, Addr: addr("aa")})
	}
	sub.Close()
	wg.Wait()
	if got := received + sub.Dropped(); got != total {
		t.Fatalf("received %d + dropped %d = %d, want %d", received, sub.Dropped(), got, total)
	}
}

func TestModeMisusePanics(t *testing.T) {
	b := NewBus(nil)
	defer b.Close()
	ch := b.Subscribe(0)
	defer ch.Close()
	ring := b.SubscribeBatch(0)
	defer ring.Close()

	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("C on batch sub", func() { _ = ring.C() })
	expectPanic("TryRecv on channel sub", func() { _, _ = ch.TryRecv() })
	expectPanic("NextBatch on channel sub", func() { _, _ = ch.NextBatch(nil) })
}

// publishBudget pins the satellite requirement: Publish with eight
// batch-mode subscribers performs no allocations — delivery is a ring
// append per subscriber, and the empty-to-non-empty wakeup is a
// non-blocking send on a pre-allocated channel.
const publishBudget = 0

func TestPublishAllocFreeWithEightSubscribers(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	b := NewBus(nil)
	defer b.Close()
	subs := make([]*Subscription, 8)
	for i := range subs {
		subs[i] = b.SubscribeBatch(0)
		defer subs[i].Close()
	}
	e := Event{Type: DeviceAppeared, Addr: addr("aa"), Quality: 240}
	drain := func() {
		for _, s := range subs {
			for {
				if _, ok := s.TryRecv(); !ok {
					break
				}
			}
		}
	}
	b.Publish(e)
	drain()
	allocs := testing.AllocsPerRun(200, func() {
		b.Publish(e)
		drain() // keep the rings from saturating mid-run
	})
	if allocs > publishBudget {
		t.Fatalf("Publish with 8 subscribers = %.1f allocs/op, budget %d", allocs, publishBudget)
	}
}

// BenchmarkBusPublish tracks the hot publish path (allocs/op gated by CI):
// one event fanned out to eight batch-mode subscribers, drained in bursts.
func BenchmarkBusPublish(b *testing.B) {
	bus := NewBus(nil)
	defer bus.Close()
	subs := make([]*Subscription, 8)
	for i := range subs {
		subs[i] = bus.SubscribeBatch(0)
		defer subs[i].Close()
	}
	e := Event{Type: DeviceAppeared, Addr: addr("aa"), Quality: 240}
	var buf []Event
	bus.Publish(e) // warm
	for _, s := range subs {
		buf, _ = s.NextBatch(buf[:0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(e)
		if i%32 == 31 {
			for _, s := range subs {
				buf, _ = s.NextBatch(buf[:0])
			}
		}
	}
}

// BenchmarkBusPublishChannel is the channel-mode baseline for comparison.
func BenchmarkBusPublishChannel(b *testing.B) {
	bus := NewBus(nil)
	defer bus.Close()
	subs := make([]*Subscription, 8)
	for i := range subs {
		subs[i] = bus.Subscribe(0)
		defer subs[i].Close()
	}
	e := Event{Type: DeviceAppeared, Addr: addr("aa"), Quality: 240}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(e)
		if i%32 == 31 {
			for _, s := range subs {
				for len(s.ch) > 0 {
					<-s.ch
				}
			}
		}
	}
}
