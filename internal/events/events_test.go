package events

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/telemetry"
)

func addr(mac string) device.Addr {
	return device.Addr{Tech: device.TechBluetooth, MAC: mac}
}

func TestPublishSubscribeRoundTrip(t *testing.T) {
	clk := clock.NewManual()
	b := NewBus(clk)
	defer b.Close()
	sub := b.Subscribe(0)
	defer sub.Close()

	clk.Advance(5 * time.Second)
	b.Publish(Event{Type: DeviceAppeared, Addr: addr("aa"), Quality: 240})
	b.Publish(Event{Type: LinkDegrading, Addr: addr("aa"), Quality: 231, TimeToThreshold: 3 * time.Second})

	e1 := <-sub.C()
	if e1.Type != DeviceAppeared || e1.Seq != 1 || e1.Addr != addr("aa") {
		t.Fatalf("e1 = %+v", e1)
	}
	if !e1.Time.Equal(clk.Now()) {
		t.Fatalf("e1.Time = %v, want %v", e1.Time, clk.Now())
	}
	e2 := <-sub.C()
	if e2.Type != LinkDegrading || e2.Seq != 2 || e2.TimeToThreshold != 3*time.Second {
		t.Fatalf("e2 = %+v", e2)
	}
}

func TestMaskFiltering(t *testing.T) {
	b := NewBus(nil)
	defer b.Close()
	sub := b.Subscribe(MaskOf(HandoverStarted, HandoverCompleted))
	defer sub.Close()

	b.Publish(Event{Type: DeviceAppeared, Addr: addr("aa")})
	b.Publish(Event{Type: HandoverStarted, Addr: addr("aa")})
	b.Publish(Event{Type: LinkLost, Addr: addr("aa")})
	b.Publish(Event{Type: HandoverCompleted, Addr: addr("aa")})

	got := []Type{(<-sub.C()).Type, (<-sub.C()).Type}
	if got[0] != HandoverStarted || got[1] != HandoverCompleted {
		t.Fatalf("got %v", got)
	}
	select {
	case e := <-sub.C():
		t.Fatalf("unexpected event %v", e)
	default:
	}
}

func TestZeroMaskMeansAll(t *testing.T) {
	var m Mask
	for ty := DeviceAppeared; ty <= maxType; ty++ {
		if !m.Has(ty) {
			t.Fatalf("zero mask rejects %v", ty)
		}
		if !MaskAll.Has(ty) {
			t.Fatalf("MaskAll rejects %v", ty)
		}
	}
	if MaskOf(DeviceLost).Has(DeviceAppeared) {
		t.Fatal("narrow mask accepts unselected type")
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBus(nil)
	defer b.Close()
	sub := b.Subscribe(0)
	defer sub.Close()

	total := SubscriptionBuffer + 7
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			b.Publish(Event{Type: DeviceAppeared, Addr: addr("aa")})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	if d := sub.Dropped(); d != 7 {
		t.Fatalf("dropped = %d, want 7", d)
	}
	// The buffered prefix is still intact and in order.
	first := <-sub.C()
	if first.Seq != 1 {
		t.Fatalf("first buffered seq = %d", first.Seq)
	}
}

func TestCloseBusClosesSubscriptions(t *testing.T) {
	b := NewBus(nil)
	sub := b.Subscribe(0)
	b.Publish(Event{Type: DeviceLost, Addr: addr("aa")})
	b.Close()
	b.Close() // idempotent

	// The buffered event drains, then the channel reports closed.
	if e, ok := <-sub.C(); !ok || e.Type != DeviceLost {
		t.Fatalf("drain = %+v, %v", e, ok)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel still open after bus close")
	}
	// Publishing and subscribing after close are safe no-ops.
	b.Publish(Event{Type: DeviceLost})
	late := b.Subscribe(0)
	if _, ok := <-late.C(); ok {
		t.Fatal("late subscription delivered an event")
	}
	late.Close()
	sub.Close()
}

func TestSubscriptionCloseUnsubscribes(t *testing.T) {
	b := NewBus(nil)
	defer b.Close()
	sub := b.Subscribe(0)
	if b.Subscribers() != 1 {
		t.Fatalf("subscribers = %d", b.Subscribers())
	}
	sub.Close()
	sub.Close() // idempotent
	if b.Subscribers() != 0 {
		t.Fatalf("subscribers after close = %d", b.Subscribers())
	}
	b.Publish(Event{Type: DeviceAppeared}) // must not panic on closed channel
}

func TestTypeStringsAndValidity(t *testing.T) {
	for ty := DeviceAppeared; ty <= maxType; ty++ {
		if !ty.Valid() {
			t.Fatalf("%v invalid", ty)
		}
		if s := ty.String(); s == "" || s[0] == 'e' {
			t.Fatalf("missing String for %d: %q", ty, s)
		}
	}
	if Type(0).Valid() || Type(250).Valid() {
		t.Fatal("out-of-range type valid")
	}
	if Type(250).String() != "event(250)" {
		t.Fatalf("fallback string = %q", Type(250).String())
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 3, Type: LinkDegrading, Addr: addr("aa"), Quality: 233, TimeToThreshold: 2 * time.Second, Detail: "x"}
	s := e.String()
	for _, want := range []string{"#3", "link-degrading", "q=233", "ttt=2s", "x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	quiet := Event{Seq: 1, Type: DeviceLost, Addr: addr("bb"), Quality: -1}
	if strings.Contains(quiet.String(), "q=") {
		t.Fatalf("quality rendered for quality-less event: %q", quiet.String())
	}
}

// TestBusInstrumented pins the telemetry surface: publishes and drops are
// counted per type, each subscriber gets an attributable drop counter, and
// the first drop (and only the first) warns.
func TestBusInstrumented(t *testing.T) {
	bus := NewBus(nil)
	defer bus.Close()
	reg := telemetry.NewRegistry()
	var warnings []string
	bus.Instrument(reg)
	bus.SetWarnf(func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	})
	sub := bus.Subscribe(MaskOf(DeviceAppeared))
	defer sub.Close()
	total := SubscriptionBuffer + 3
	for i := 0; i < total; i++ {
		bus.Publish(Event{Type: DeviceAppeared, Addr: addr("aa"), Quality: 240})
	}
	bus.Publish(Event{Type: DeviceLost, Addr: addr("aa"), Quality: -1})
	if got := reg.Counter(`peerhood_events_published_total{type="device-appeared"}`).Value(); got != uint64(total) {
		t.Fatalf("published{device-appeared} = %d, want %d", got, total)
	}
	if got := reg.Counter(`peerhood_events_published_total{type="device-lost"}`).Value(); got != 1 {
		t.Fatalf("published{device-lost} = %d, want 1", got)
	}
	if got := reg.Counter(`peerhood_events_dropped_total{type="device-appeared"}`).Value(); got != 3 {
		t.Fatalf("dropped{device-appeared} = %d, want 3", got)
	}
	if got := reg.Counter(subDropName(sub.id)).Value(); got != 3 {
		t.Fatalf("subscriber drop counter = %d, want 3", got)
	}
	if sub.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", sub.Dropped())
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "first event") {
		t.Fatalf("want exactly one first-drop warning, got %q", warnings)
	}
}

// TestBusInstrumentExistingSubscription checks Instrument retrofits drop
// counters onto subscriptions created before it was called.
func TestBusInstrumentExistingSubscription(t *testing.T) {
	bus := NewBus(nil)
	defer bus.Close()
	bus.SetWarnf(nil)
	sub := bus.SubscribeBatch(0)
	defer sub.Close()
	reg := telemetry.NewRegistry()
	bus.Instrument(reg)
	for i := 0; i < SubscriptionBuffer+2; i++ {
		bus.Publish(Event{Type: LinkLost, Addr: addr("aa"), Quality: 0})
	}
	if got := reg.Counter(subDropName(sub.id)).Value(); got != 2 {
		t.Fatalf("retrofitted subscriber drop counter = %d, want 2", got)
	}
}

// TestEventSpanDelivered checks the span ID rides through publish intact.
func TestEventSpanDelivered(t *testing.T) {
	bus := NewBus(nil)
	defer bus.Close()
	sub := bus.Subscribe(0)
	defer sub.Close()
	bus.Publish(Event{Type: LinkDegrading, Addr: addr("aa"), Quality: 200, Span: 0xabcdef01})
	e := <-sub.C()
	if e.Span != 0xabcdef01 {
		t.Fatalf("Span = %#x, want 0xabcdef01", e.Span)
	}
}
