// Package events is the neighbourhood event bus: a per-daemon in-process
// pub/sub channel over which discovery, the link monitor, and handover
// threads push typed connectivity-change notifications to applications,
// instead of applications polling the device storage. Adaptive-mobile-
// systems work argues the middleware must *feed* connectivity events to
// applications; this bus is that feed. Subscriptions are buffered and
// lossy under backpressure (a slow subscriber drops events rather than
// stalling the protocol stack), with the drop count observable.
package events

import (
	"fmt"
	"log"
	"sync"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/telemetry"
)

// Type identifies an event kind.
type Type uint8

// Event kinds. Wire encodings (phproto) transmit the raw value, so new
// kinds must be appended, never renumbered.
const (
	// DeviceAppeared fires when discovery successfully fetches a device
	// that was not in the storage.
	DeviceAppeared Type = iota + 1
	// DeviceLost fires when the aging sweep removes a device.
	DeviceLost
	// LinkDegrading fires when the link monitor classifies a link as
	// degrading: trend level falling with a predicted time-to-threshold.
	LinkDegrading
	// LinkRecovered fires when a previously degrading link stabilises.
	LinkRecovered
	// LinkLost fires when a monitored link's quality collapses to zero or
	// its device ages out.
	LinkLost
	// HandoverStarted fires when a handover thread begins re-routing a
	// connection (reactively or predictively).
	HandoverStarted
	// HandoverCompleted fires after a successful transport substitution.
	HandoverCompleted
	// HandoverFailed fires when every candidate route failed.
	HandoverFailed
	// VerticalHandover fires after a transport substitution that changed
	// the connection's bearer technology (same peer, different radio). It
	// accompanies the HandoverCompleted of the same switch, so bearer
	// changes are observable without parsing details.
	VerticalHandover
)

// maxType is the highest valid Type (bounds Mask construction and wire
// decoding).
const maxType = VerticalHandover

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case DeviceAppeared:
		return "device-appeared"
	case DeviceLost:
		return "device-lost"
	case LinkDegrading:
		return "link-degrading"
	case LinkRecovered:
		return "link-recovered"
	case LinkLost:
		return "link-lost"
	case HandoverStarted:
		return "handover-started"
	case HandoverCompleted:
		return "handover-completed"
	case HandoverFailed:
		return "handover-failed"
	case VerticalHandover:
		return "vertical-handover"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// Valid reports whether t names a known event kind.
func (t Type) Valid() bool { return t >= DeviceAppeared && t <= maxType }

// Mask filters event types as a bitmask; bit (t-1) selects type t.
// The zero Mask means "everything" so callers need no special case.
type Mask uint32

// MaskAll selects every event type explicitly.
const MaskAll Mask = 1<<uint(maxType) - 1

// MaskOf builds a mask selecting exactly the given types.
func MaskOf(types ...Type) Mask {
	var m Mask
	for _, t := range types {
		if t.Valid() {
			m |= 1 << (uint(t) - 1)
		}
	}
	return m
}

// Has reports whether the mask selects t. The zero mask selects all.
func (m Mask) Has(t Type) bool {
	if m == 0 {
		return true
	}
	return m&(1<<(uint(t)-1)) != 0
}

// Event is one neighbourhood notification.
type Event struct {
	// Seq is the bus-assigned monotonic sequence number.
	Seq uint64
	// Time is the (simulated) time the event was published.
	Time time.Time
	// Type is the event kind.
	Type Type
	// Addr is the subject device or link peer.
	Addr device.Addr
	// Quality is the sampled or smoothed link quality where meaningful
	// (link and handover events); -1 otherwise.
	Quality int
	// TimeToThreshold is the predicted time until the link crosses the
	// quality threshold (LinkDegrading only; 0 elsewhere).
	TimeToThreshold time.Duration
	// Detail is a free-form human-readable annotation.
	Detail string
	// Span is the telemetry span ID of the lifecycle this event belongs
	// to (0 when untraced): a LinkDegrading event carries the root span of
	// the degradation episode, and the handover events it triggers carry
	// IDs parented on it, so a consumer can stitch the causal chain
	// LinkDegrading → HandoverStarted → HandoverCompleted back together.
	Span uint64
}

// String implements fmt.Stringer.
func (e Event) String() string {
	s := fmt.Sprintf("#%d %s %v", e.Seq, e.Type, e.Addr)
	if e.Quality >= 0 {
		s += fmt.Sprintf(" q=%d", e.Quality)
	}
	if e.TimeToThreshold > 0 {
		s += fmt.Sprintf(" ttt=%s", e.TimeToThreshold)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// SubscriptionBuffer is each subscription's buffering capacity: the
// channel capacity of a channel-mode subscription, and the ring capacity
// of a batch-mode one.
const SubscriptionBuffer = 64

// subMode selects how a subscription is consumed.
type subMode uint8

const (
	// modeChannel delivers each event with a non-blocking channel send at
	// publish time; the subscriber reads C(). Delivery is synchronous with
	// Publish, which the deterministic simulation tests rely on.
	modeChannel subMode = iota
	// modeBatch appends each event to a per-subscriber ring at publish
	// time; the subscriber pops the accumulated batch with NextBatch (or
	// polls with TryRecv). This is the daemon hot path: a publish burst
	// costs one ring append per event instead of a channel handoff, and
	// the consumer drains the whole burst under one lock acquisition.
	modeBatch
)

// Bus is the per-daemon event bus.
type Bus struct {
	clk clock.Clock

	mu      sync.Mutex
	seq     uint64
	subs    map[*Subscription]struct{}
	closed  bool
	nextSub int

	// Telemetry, attached by Instrument: per-type publish/drop counters
	// indexed by Type (nil handles absorb when uninstrumented, so Publish
	// needs no telemetry branch), the registry for per-subscriber drop
	// counters, and the first-drop warning sink.
	reg       *telemetry.Registry
	published [maxType + 1]*telemetry.Counter
	dropByTyp [maxType + 1]*telemetry.Counter
	warnf     func(format string, args ...any)
}

// NewBus returns a Bus stamping event times from clk (nil uses the real
// clock).
func NewBus(clk clock.Clock) *Bus {
	if clk == nil {
		clk = clock.Real()
	}
	return &Bus{clk: clk, subs: make(map[*Subscription]struct{})}
}

// Instrument attaches a telemetry registry: every publish and drop is
// counted per event type, and each subscription (existing and future)
// gets its own drop counter, so a single slow consumer is attributable
// from a metrics scrape. The first drop on each subscription also logs a
// one-line warning (override the sink with SetWarnf). Call before or
// after subscriptions exist; nil reg is a no-op.
func (b *Bus) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reg = reg
	if b.warnf == nil {
		b.warnf = log.Printf
	}
	for t := DeviceAppeared; t <= maxType; t++ {
		b.published[t] = reg.Counter(`peerhood_events_published_total{type="` + t.String() + `"}`)
		b.dropByTyp[t] = reg.Counter(`peerhood_events_dropped_total{type="` + t.String() + `"}`)
	}
	for s := range b.subs {
		if s.dropCounter == nil {
			s.dropCounter = reg.Counter(subDropName(s.id))
		}
	}
}

// SetWarnf replaces the first-drop warning sink (nil silences it).
func (b *Bus) SetWarnf(f func(format string, args ...any)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.warnf = f
}

func subDropName(id int) string {
	return fmt.Sprintf(`peerhood_events_subscriber_dropped_total{sub="%d"}`, id)
}

// Publish stamps e with the next sequence number and the current time and
// delivers it to every matching subscription without blocking: a
// subscriber whose buffer is full loses the event (counted on the
// subscription). Publishing on a closed bus is a no-op.
func (b *Bus) Publish(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.seq++
	e.Seq = b.seq
	e.Time = b.clk.Now()
	if e.Type <= maxType {
		b.published[e.Type].Inc()
	}
	for s := range b.subs {
		if !s.mask.Has(e.Type) {
			continue
		}
		if s.mode == modeBatch {
			if s.n == len(s.ring) {
				s.noteDropLocked(&e)
				continue
			}
			s.ring[(s.head+s.n)%len(s.ring)] = e
			s.n++
			if s.n == 1 {
				s.signalLocked()
			}
			continue
		}
		select {
		case s.ch <- e:
		default:
			s.noteDropLocked(&e)
		}
	}
}

// noteDropLocked books one lost event on the subscription: the legacy
// per-subscription count, the telemetry counters (nil-safe when the bus is
// uninstrumented), and — exactly once per subscription — a warning, so an
// operator learns a consumer is too slow without the log scaling with the
// drop rate. Callers hold b.mu.
func (s *Subscription) noteDropLocked(e *Event) {
	s.dropped++
	b := s.bus
	s.dropCounter.Inc()
	if e.Type <= maxType {
		b.dropByTyp[e.Type].Inc()
	}
	if s.dropped == 1 && b.warnf != nil {
		b.warnf("events: subscriber %d dropped its first event (%s seq=%d); buffer full, further drops are only counted", s.id, e.Type, e.Seq)
	}
}

// Subscribe registers a new channel-mode subscription filtered by mask
// (zero mask = everything): events arrive on C() as they are published.
// On a closed bus the returned subscription is already closed.
func (b *Bus) Subscribe(mask Mask) *Subscription {
	s := &Subscription{bus: b, mask: mask, ch: make(chan Event, SubscriptionBuffer)}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(s.ch)
		s.closed = true
		return s
	}
	b.registerLocked(s)
	return s
}

// registerLocked assigns the subscription its bus-unique id and, on an
// instrumented bus, its drop counter. Callers hold b.mu.
func (b *Bus) registerLocked(s *Subscription) {
	b.nextSub++
	s.id = b.nextSub
	if b.reg != nil {
		s.dropCounter = b.reg.Counter(subDropName(s.id))
	}
	b.subs[s] = struct{}{}
}

// SubscribeBatch registers a new batch-mode subscription filtered by mask
// (zero mask = everything): publishes append to a per-subscriber ring and
// the subscriber drains whole bursts with NextBatch (or polls with
// TryRecv). Use it for high-rate consumers — per event it costs a ring
// append instead of a channel handoff, and the consumer takes the lock
// once per burst instead of once per event. On a closed bus the returned
// subscription is already closed (NextBatch returns ok=false at once).
func (b *Bus) SubscribeBatch(mask Mask) *Subscription {
	s := &Subscription{
		bus:    b,
		mask:   mask,
		mode:   modeBatch,
		ring:   make([]Event, SubscriptionBuffer),
		notify: make(chan struct{}, 1),
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		s.closed = true
		return s
	}
	b.registerLocked(s)
	return s
}

// Close closes the bus and every open subscription. Idempotent. Buffered
// events stay readable: a channel-mode C() drains before reporting closed,
// and a batch-mode NextBatch/TryRecv returns what the ring still holds
// before reporting ok=false.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		s.closed = true
		if s.mode == modeBatch {
			s.signalLocked()
			continue
		}
		close(s.ch)
	}
	b.subs = nil
}

// Subscribers returns how many subscriptions are open.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Subscription is one subscriber's buffered event feed, consumed either
// through C() (channel mode) or NextBatch/TryRecv (batch mode) according
// to how it was created.
type Subscription struct {
	bus  *Bus
	mask Mask
	mode subMode

	// id is the bus-unique subscriber number (labels the drop counter);
	// dropCounter is nil until the bus is instrumented.
	id          int
	dropCounter *telemetry.Counter

	// ch is the channel-mode delivery channel (nil in batch mode).
	// dropped and closed are guarded by bus.mu.
	ch      chan Event
	dropped int
	closed  bool

	// Batch-mode state, guarded by bus.mu: ring[head..head+n) holds the
	// undelivered events. notify carries an "empty became non-empty" (or
	// "closed") wakeup token for a blocked NextBatch; capacity 1 makes
	// the publish-side signal non-blocking and idempotent.
	ring    []Event
	head, n int
	notify  chan struct{}
}

// signalLocked wakes a blocked NextBatch, if any. Callers hold bus.mu.
func (s *Subscription) signalLocked() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// C returns the delivery channel of a channel-mode subscription. It is
// closed when the subscription or the bus closes; buffered events remain
// readable after that. It must not be called on a batch-mode subscription.
func (s *Subscription) C() <-chan Event {
	if s.mode != modeChannel {
		panic("events: C() on a batch-mode subscription (use NextBatch or TryRecv)")
	}
	return s.ch
}

// NextBatch appends every undelivered event to buf and returns it,
// blocking until at least one event is available. After the subscription
// (or bus) closes it keeps returning remaining buffered events, then
// returns ok=false. Passing buf with retained capacity (buf[:0] of the
// previous batch) makes a steady-state consumer allocation-free. It must
// only be called on a batch-mode subscription, from one goroutine at a
// time.
func (s *Subscription) NextBatch(buf []Event) (batch []Event, ok bool) {
	if s.mode != modeBatch {
		panic("events: NextBatch on a channel-mode subscription (use C)")
	}
	for {
		s.bus.mu.Lock()
		if s.n > 0 {
			buf = s.popAllLocked(buf)
			s.bus.mu.Unlock()
			return buf, true
		}
		closed := s.closed
		s.bus.mu.Unlock()
		if closed {
			return buf, false
		}
		<-s.notify
	}
}

// TryRecv pops the oldest undelivered event without blocking; ok is false
// when none is buffered. Poll-style consumers (the simulation experiment
// drains) use it — delivery stays synchronous with Publish, so a
// deterministic simulation drains deterministically. It must only be
// called on a batch-mode subscription.
func (s *Subscription) TryRecv() (Event, bool) {
	if s.mode != modeBatch {
		panic("events: TryRecv on a channel-mode subscription (use C)")
	}
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.n == 0 {
		return Event{}, false
	}
	e := s.ring[s.head]
	s.ring[s.head] = Event{} // release the Detail string
	s.head = (s.head + 1) % len(s.ring)
	s.n--
	return e, true
}

// popAllLocked moves the whole ring content into buf. Callers hold bus.mu.
func (s *Subscription) popAllLocked(buf []Event) []Event {
	for s.n > 0 {
		buf = append(buf, s.ring[s.head])
		s.ring[s.head] = Event{} // release the Detail string
		s.head = (s.head + 1) % len(s.ring)
		s.n--
	}
	s.head = 0
	return buf
}

// Mask returns the subscription's filter.
func (s *Subscription) Mask() Mask { return s.mask }

// Dropped returns how many events were lost to a full buffer.
func (s *Subscription) Dropped() int {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.dropped
}

// Close unsubscribes and ends delivery: channel mode closes the channel,
// batch mode wakes any blocked NextBatch (which drains the ring, then
// reports ok=false). Idempotent.
func (s *Subscription) Close() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(s.bus.subs, s)
	if s.mode == modeBatch {
		s.signalLocked()
		return
	}
	close(s.ch)
}
