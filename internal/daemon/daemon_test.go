package daemon_test

import (
	"errors"
	"testing"

	"peerhood/internal/daemon"
	"peerhood/internal/device"
	"peerhood/internal/discovery"
	"peerhood/internal/geo"
	"peerhood/internal/phproto"
	"peerhood/internal/phtest"
	"peerhood/internal/plugin"
)

func TestNewRequiresName(t *testing.T) {
	if _, err := daemon.New(daemon.Config{}); err == nil {
		t.Fatal("daemon without name accepted")
	}
}

func TestRegisterService(t *testing.T) {
	w := phtest.InstantWorld(t, 1)
	n := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Static)

	svc, err := n.Daemon.RegisterService("echo", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if svc.Port < device.PortServiceBase {
		t.Fatalf("allocated port %d below service base", svc.Port)
	}
	if _, err := n.Daemon.RegisterService("echo", "v1"); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := n.Daemon.RegisterService("", ""); err == nil {
		t.Fatal("empty name accepted")
	}
	got, ok := n.Daemon.LookupLocalService(svc.Port)
	if !ok || got.Name != "echo" {
		t.Fatalf("LookupLocalService = %v, %v", got, ok)
	}
	n.Daemon.UnregisterService("echo")
	if _, ok := n.Daemon.LookupLocalService(svc.Port); ok {
		t.Fatal("service survived unregistration")
	}
}

func TestInfoForIncludesServices(t *testing.T) {
	w := phtest.InstantWorld(t, 2)
	n := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Hybrid)
	if _, err := n.Daemon.RegisterService("print", "laser"); err != nil {
		t.Fatal(err)
	}
	info, ok := n.Daemon.InfoFor(device.TechBluetooth)
	if !ok {
		t.Fatal("no BT info")
	}
	if info.Name != "a" || info.Mobility != device.Hybrid {
		t.Fatalf("info = %+v", info)
	}
	if _, ok := info.FindService("print"); !ok {
		t.Fatal("service missing from advertised info")
	}
	if _, ok := n.Daemon.InfoFor(device.TechGPRS); ok {
		t.Fatal("info for unattached tech")
	}
}

func TestFetchAgainstLiveDaemon(t *testing.T) {
	w := phtest.InstantWorld(t, 3)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "b", geo.Pt(3, 0), device.Dynamic)
	if _, err := b.Daemon.RegisterService("echo", ""); err != nil {
		t.Fatal(err)
	}

	info, nb, err := discovery.Fetch(a.Plugin, b.Addr())
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if info.Name != "b" || info.Mobility != device.Dynamic {
		t.Fatalf("info = %+v", info)
	}
	if _, ok := info.FindService("echo"); !ok {
		t.Fatal("fetched info lacks service")
	}
	if len(nb) != 0 {
		t.Fatalf("fresh daemon advertises %d entries", len(nb))
	}
}

func TestFetchNonPeerHoodDeviceRefused(t *testing.T) {
	w := phtest.InstantWorld(t, 4)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Static)
	// A bare radio with no daemon: not PeerHood-capable.
	dev, _ := w.AddDevice("bare", nil)
	r, _ := dev.AddRadio(device.TechBluetooth)

	_, _, err := discovery.Fetch(a.Plugin, r.Addr())
	if !errors.Is(err, plugin.ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused (no PeerHood tag)", err)
	}
}

func TestDiscoveryRoundPopulatesStorage(t *testing.T) {
	w := phtest.InstantWorld(t, 5)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "b", geo.Pt(3, 0), device.Dynamic)

	rep := a.Daemon.RunDiscoveryRound()
	if len(rep) != 1 {
		t.Fatalf("reports = %d", len(rep))
	}
	if rep[0].Responses != 1 || rep[0].Fetches != 1 || rep[0].FetchErrors != 0 {
		t.Fatalf("report = %+v", rep[0])
	}
	e, ok := a.Daemon.Storage().Lookup(b.Addr())
	if !ok {
		t.Fatal("b not stored")
	}
	if e.Info.Name != "b" {
		t.Fatalf("stored info = %+v", e.Info)
	}
	best, _ := e.Best()
	if !best.Direct() {
		t.Fatalf("route = %+v, want direct", best)
	}
}

// TestFigure36EndToEnd reproduces fig 3.6 over the live protocol stack:
// the A/B/C/D/E topology where A hears B and C; B additionally covers E;
// C additionally covers D. After two rounds of everyone discovering, A's
// DeviceStorage must match the thesis' table exactly.
func TestFigure36EndToEnd(t *testing.T) {
	w := phtest.InstantWorld(t, 6)
	// Coverage radius is 10m. Lay out so that:
	//   A(0,0) — B(8,3) and C(8,-3) direct (dist ~8.5)
	//   B(8,3) — E(16,6) direct (dist ~8.5); A-E dist ~17 (out of range)
	//   C(8,-3) — D(16,-6) direct; A-D ~17; B-D, C-E etc. > 10.
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(8, 3), device.Dynamic)
	c := phtest.AddNode(t, w, "C", geo.Pt(8, -3), device.Dynamic)
	d := phtest.AddNode(t, w, "D", geo.Pt(16, -6), device.Dynamic)
	e := phtest.AddNode(t, w, "E", geo.Pt(16, 6), device.Dynamic)
	nodes := []*phtest.Node{a, b, c, d, e}

	// Round 1: everyone learns direct neighbours. Round 2: neighbourhood
	// reports propagate one extra jump (fig 3.10).
	phtest.RunRounds(nodes, 2)

	type row struct {
		jumps  int
		bridge string // device name; "" = direct
	}
	want := map[string]row{
		"B": {0, ""},
		"C": {0, ""},
		"D": {1, "C"},
		"E": {1, "B"},
	}
	snap := a.Daemon.Storage().Snapshot()
	if len(snap) != len(want) {
		t.Fatalf("A knows %d devices, want %d:\n%s", len(snap), len(want), a.Daemon.Storage())
	}
	nameByAddr := map[device.Addr]string{
		b.Addr(): "B", c.Addr(): "C", d.Addr(): "D", e.Addr(): "E",
	}
	for _, entry := range snap {
		name := nameByAddr[entry.Info.Addr]
		w, ok := want[name]
		if !ok {
			t.Fatalf("unexpected device %s in storage", name)
		}
		best, _ := entry.Best()
		if best.Jumps != w.jumps {
			t.Errorf("%s: jumps = %d, want %d", name, best.Jumps, w.jumps)
		}
		gotBridge := ""
		if !best.Bridge.IsZero() {
			gotBridge = nameByAddr[best.Bridge]
		}
		if gotBridge != w.bridge {
			t.Errorf("%s: bridge = %q, want %q", name, gotBridge, w.bridge)
		}
	}
}

// TestLineTopologyTotalAwareness checks §3.3's claim: in a line
// A-B-C-D-E-F where each only covers its neighbours, k rounds of discovery
// give awareness k jumps out, and enough rounds give total awareness.
func TestLineTopologyTotalAwareness(t *testing.T) {
	w := phtest.InstantWorld(t, 7)
	const n = 6
	nodes := make([]*phtest.Node, n)
	for i := 0; i < n; i++ {
		// 8m spacing: only adjacent nodes are within the 10m radius.
		nodes[i] = phtest.AddNode(t, w, string(rune('A'+i)), geo.Pt(float64(i)*8, 0), device.Static)
	}

	phtest.RunRounds(nodes, 1)
	if got := nodes[0].Daemon.Storage().Len(); got != 1 {
		t.Fatalf("after 1 round A knows %d devices, want 1 (just B)", got)
	}

	phtest.RunRounds(nodes, n)
	if got := nodes[0].Daemon.Storage().Len(); got != n-1 {
		t.Fatalf("A knows %d devices, want %d (total awareness):\n%s",
			got, n-1, nodes[0].Daemon.Storage())
	}
	// The far end must be reachable via the chain with increasing jumps.
	far, ok := nodes[0].Daemon.Storage().Lookup(nodes[n-1].Addr())
	if !ok {
		t.Fatal("far end unknown")
	}
	best, _ := far.Best()
	if best.Jumps != n-2 {
		t.Fatalf("far-end jumps = %d, want %d", best.Jumps, n-2)
	}
	if best.Bridge != nodes[1].Addr() {
		t.Fatalf("far-end first hop = %v, want B", best.Bridge)
	}
}

func TestDepartedDeviceAgesOut(t *testing.T) {
	w := phtest.InstantWorld(t, 8)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "b", geo.Pt(3, 0), device.Dynamic)
	nodes := []*phtest.Node{a, b}
	phtest.RunRounds(nodes, 1)
	if _, ok := a.Daemon.Storage().Lookup(b.Addr()); !ok {
		t.Fatal("b not discovered")
	}
	// b leaves coverage entirely.
	b.Device.SetDown(true)
	phtest.RunRounds([]*phtest.Node{a}, 4) // > MaxMissedLoops
	if _, ok := a.Daemon.Storage().Lookup(b.Addr()); ok {
		t.Fatalf("departed device still stored:\n%s", a.Daemon.Storage())
	}
}

func TestServiceVisibleAcrossJumps(t *testing.T) {
	// A service registered at the end of a 3-node line is discoverable by
	// the other end through neighbourhood propagation (§2.3 + ch. 3).
	w := phtest.InstantWorld(t, 9)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(8, 0), device.Static)
	c := phtest.AddNode(t, w, "c", geo.Pt(16, 0), device.Static)
	if _, err := c.Daemon.RegisterService("analysis", "img"); err != nil {
		t.Fatal(err)
	}
	phtest.RunRounds([]*phtest.Node{a, b, c}, 3)

	providers := a.Daemon.Storage().FindService("analysis")
	if len(providers) != 1 {
		t.Fatalf("providers = %d, want 1:\n%s", len(providers), a.Daemon.Storage())
	}
	if providers[0].Entry.Info.Name != "c" || providers[0].Service.Name != "analysis" {
		t.Fatalf("provider = %+v", providers[0])
	}
	best, _ := providers[0].Entry.Best()
	if best.Jumps != 1 || best.Bridge != b.Addr() {
		t.Fatalf("route to provider = %+v", best)
	}
}

func TestLoadPenaltyLowersAdvertisedQuality(t *testing.T) {
	w := phtest.InstantWorld(t, 10)
	penalty := 0
	dev, _ := w.AddDevice("loaded", nil)
	radio, _ := dev.AddRadio(device.TechBluetooth)
	d, err := daemon.New(daemon.Config{
		Name:        "loaded",
		Clock:       w.Clock(),
		LoadPenalty: func() int { return penalty },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddPlugin(plugin.NewSim(w, radio)); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(false); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	neighbor := phtest.AddNode(t, w, "n", geo.Pt(3, 0), device.Static)
	phtest.RunRounds([]*phtest.Node{{Device: dev, Radio: radio, Plugin: plugin.NewSim(w, radio), Daemon: d}}, 1)

	fetch := func() []phproto.NeighborEntry {
		_, nb, err := discovery.Fetch(neighbor.Plugin, radio.Addr())
		if err != nil {
			t.Fatalf("Fetch: %v", err)
		}
		return nb
	}
	before := fetch()
	if len(before) != 1 {
		t.Fatalf("advertised entries = %d, want 1", len(before))
	}
	penalty = 50
	after := fetch()
	drop := int(before[0].QualitySum) - int(after[0].QualitySum)
	if drop != 50 {
		t.Fatalf("advertised quality drop = %d, want 50", drop)
	}
}

func TestStopIsIdempotentAndFetchFailsAfter(t *testing.T) {
	w := phtest.InstantWorld(t, 11)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "b", geo.Pt(3, 0), device.Static)
	b.Daemon.Stop()
	b.Daemon.Stop()
	if _, _, err := discovery.Fetch(a.Plugin, b.Addr()); err == nil {
		t.Fatal("fetch from stopped daemon succeeded")
	}
}

func TestDuplicatePluginRejected(t *testing.T) {
	w := phtest.InstantWorld(t, 12)
	dev, _ := w.AddDevice("x", nil)
	r, _ := dev.AddRadio(device.TechBluetooth)
	d, _ := daemon.New(daemon.Config{Name: "x", Clock: w.Clock()})
	if err := d.AddPlugin(plugin.NewSim(w, r)); err != nil {
		t.Fatal(err)
	}
	if err := d.AddPlugin(plugin.NewSim(w, r)); err == nil {
		t.Fatal("duplicate tech plugin accepted")
	}
}

func TestStartWithoutPluginsFails(t *testing.T) {
	d, _ := daemon.New(daemon.Config{Name: "x"})
	if err := d.Start(false); err == nil {
		t.Fatal("start without plugins succeeded")
	}
}
