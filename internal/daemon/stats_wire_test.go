package daemon_test

import (
	"math"
	"sort"
	"strings"
	"testing"

	"peerhood/internal/daemon"
	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/phproto"
	"peerhood/internal/phtest"
	"peerhood/internal/plugin"
)

// TestServeStats fetches a telemetry snapshot over the wire, as phctl's
// stats subcommand does: unfiltered first, then prefix-filtered, checking
// the entries mirror the daemon's registry.
func TestServeStats(t *testing.T) {
	w := phtest.InstantWorld(t, 61)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "b", geo.Pt(3, 0), device.Dynamic)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	conn, err := a.Plugin.Dial(b.Addr(), device.PortDaemon)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := phproto.Write(conn, &phproto.StatsRequest{}); err != nil {
		t.Fatal(err)
	}
	full, err := phproto.ReadExpect[*phproto.Stats](conn)
	if err != nil {
		t.Fatalf("reading stats: %v", err)
	}
	if len(full.Entries) == 0 || full.UnixNanos == 0 {
		t.Fatalf("empty snapshot: %+v", full)
	}
	if !sort.SliceIsSorted(full.Entries, func(i, j int) bool {
		return full.Entries[i].Name < full.Entries[j].Name
	}) {
		t.Fatal("stats entries not name-sorted")
	}

	if err := phproto.Write(conn, &phproto.StatsRequest{Prefix: "peerhood_discovery"}); err != nil {
		t.Fatal(err)
	}
	filtered, err := phproto.ReadExpect[*phproto.Stats](conn)
	if err != nil {
		t.Fatalf("reading filtered stats: %v", err)
	}
	if len(filtered.Entries) == 0 || len(filtered.Entries) >= len(full.Entries) {
		t.Fatalf("filter did not narrow: %d of %d entries", len(filtered.Entries), len(full.Entries))
	}
	var rounds float64 = -1
	for _, en := range filtered.Entries {
		if !strings.HasPrefix(en.Name, "peerhood_discovery") {
			t.Fatalf("entry %q escaped the prefix filter", en.Name)
		}
		if en.Name == "peerhood_discovery_rounds_total" {
			rounds = math.Float64frombits(en.Value)
		}
	}
	if rounds < 1 {
		t.Fatalf("peerhood_discovery_rounds_total = %v after a discovery round", rounds)
	}
}

// TestServeStatsLegacyPresentation pins the interop story for daemons
// predating telemetry: with introspection disabled the daemon presents
// exactly like a legacy peer — it hangs up on the unknown command — so
// clients fall back instead of wedging.
func TestServeStatsLegacyPresentation(t *testing.T) {
	w := phtest.InstantWorld(t, 62)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Static)

	dev, err := w.AddDevice("legacy", mobility.Static{At: geo.Pt(3, 0)})
	if err != nil {
		t.Fatal(err)
	}
	radio, err := dev.AddRadio(device.TechBluetooth)
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.New(daemon.Config{
		Name: "legacy", Mobility: device.Static, Clock: w.Clock(),
		DisableIntrospection: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddPlugin(plugin.NewSim(w, radio)); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(false); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)

	conn, err := a.Plugin.Dial(radio.Addr(), device.PortDaemon)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := phproto.Write(conn, &phproto.StatsRequest{}); err != nil {
		t.Fatal(err)
	}
	if resp, err := phproto.ReadExpect[*phproto.Stats](conn); err == nil {
		t.Fatalf("legacy-presenting daemon answered STATS_REQUEST: %+v", resp)
	}

	// The same connection discipline as other info requests: an ordinary
	// request on a fresh connection still works.
	conn2, err := a.Plugin.Dial(radio.Addr(), device.PortDaemon)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := phproto.Write(conn2, &phproto.InfoRequest{Kind: phproto.InfoDevice}); err != nil {
		t.Fatal(err)
	}
	if _, err := phproto.ReadExpect[*phproto.DeviceInfo](conn2); err != nil {
		t.Fatalf("legacy-presenting daemon broke InfoDevice: %v", err)
	}
}
