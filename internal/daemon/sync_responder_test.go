package daemon_test

import (
	"sync/atomic"
	"testing"

	"peerhood/internal/daemon"
	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/phproto"
	"peerhood/internal/phtest"
	"peerhood/internal/plugin"
)

// TestServeInfoDigest fetches the storage digest over the wire, as phctl's
// digest subcommand does.
func TestServeInfoDigest(t *testing.T) {
	w := phtest.InstantWorld(t, 31)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "b", geo.Pt(3, 0), device.Dynamic)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	conn, err := a.Plugin.Dial(b.Addr(), device.PortDaemon)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := phproto.Write(conn, &phproto.InfoRequest{Kind: phproto.InfoDigest}); err != nil {
		t.Fatal(err)
	}
	dig, err := phproto.ReadExpect[*phproto.DigestInfo](conn)
	if err != nil {
		t.Fatal(err)
	}
	want := b.Daemon.Storage().Digest()
	if dig.Epoch != want.Epoch || dig.Gen != want.Gen || int(dig.Entries) != want.Entries || dig.Hash != want.Hash {
		t.Fatalf("wire digest %+v != storage digest %+v", dig, want)
	}
	if dig.Entries == 0 || dig.Gen == 0 {
		t.Fatalf("digest %+v after a discovery round, want entries and generation > 0", dig)
	}
}

// TestServeNeighborhoodSync runs the handshake against a live daemon: FULL
// on first contact, an empty DELTA when repeated at the returned
// generation, all on one connection.
func TestServeNeighborhoodSync(t *testing.T) {
	w := phtest.InstantWorld(t, 32)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "b", geo.Pt(3, 0), device.Dynamic)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	conn, err := a.Plugin.Dial(b.Addr(), device.PortDaemon)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := phproto.Write(conn, &phproto.NeighborhoodSyncRequest{}); err != nil {
		t.Fatal(err)
	}
	full, err := phproto.ReadExpect[*phproto.NeighborhoodSync](conn)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Full || len(full.Entries) == 0 {
		t.Fatalf("first contact answered %+v, want a populated FULL", full)
	}
	count, hash := phproto.DigestOf(full.Entries)
	if count != full.DigestCount || hash != full.DigestHash {
		t.Fatalf("FULL digest (n=%d h=%x) does not cover its entries (n=%d h=%x)",
			full.DigestCount, full.DigestHash, count, hash)
	}

	if err := phproto.Write(conn, &phproto.NeighborhoodSyncRequest{Epoch: full.Epoch, Gen: full.ToGen}); err != nil {
		t.Fatal(err)
	}
	delta, err := phproto.ReadExpect[*phproto.NeighborhoodSync](conn)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Full || len(delta.Entries) != 0 || len(delta.Tombstones) != 0 {
		t.Fatalf("up-to-date request answered %+v, want an empty delta", delta)
	}
	if delta.FromGen != full.ToGen || delta.ToGen != full.ToGen {
		t.Fatalf("delta generations %d->%d, want %d->%d", delta.FromGen, delta.ToGen, full.ToGen, full.ToGen)
	}
}

// TestNeighborhoodSyncUnderLoadPenalty pins the penalty interplay: while a
// load penalty skews advertised rows, sync answers must be FULL snapshots
// stamped epoch 0 (unsyncable), so fetchers never record penalised
// fingerprints against a real generation; once the penalty clears, delta
// sync re-establishes cleanly.
func TestNeighborhoodSyncUnderLoadPenalty(t *testing.T) {
	w := phtest.InstantWorld(t, 33)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Static)

	// A daemon like phtest's, but with a controllable load penalty.
	dev, err := w.AddDevice("busy", mobility.Static{At: geo.Pt(3, 0)})
	if err != nil {
		t.Fatal(err)
	}
	radio, err := dev.AddRadio(device.TechBluetooth)
	if err != nil {
		t.Fatal(err)
	}
	var penalty atomic.Int64
	d, err := daemon.New(daemon.Config{
		Name:        "busy",
		Clock:       w.Clock(),
		LoadPenalty: func() int { return int(penalty.Load()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddPlugin(plugin.NewSim(w, radio)); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(false); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	d.RunDiscoveryRound() // busy learns a, so it has a table to advertise

	conn, err := a.Plugin.Dial(radio.Addr(), device.PortDaemon)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sync := func(epoch, gen uint64) *phproto.NeighborhoodSync {
		t.Helper()
		if err := phproto.Write(conn, &phproto.NeighborhoodSyncRequest{Epoch: epoch, Gen: gen}); err != nil {
			t.Fatal(err)
		}
		resp, err := phproto.ReadExpect[*phproto.NeighborhoodSync](conn)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	penalty.Store(40)
	busy := sync(0, 0)
	if !busy.Full || busy.Epoch != 0 {
		t.Fatalf("penalised answer %+v, want FULL with epoch 0 (unsyncable)", busy)
	}
	if count, hash := phproto.DigestOf(busy.Entries); count != busy.DigestCount || hash != busy.DigestHash {
		t.Fatal("penalised FULL digest does not cover its transmitted entries")
	}
	// A fetcher that recorded (0, gen) keeps getting unsyncable FULLs.
	if again := sync(busy.Epoch, busy.ToGen); !again.Full || again.Epoch != 0 {
		t.Fatalf("second penalised answer %+v, want FULL with epoch 0", again)
	}

	penalty.Store(0)
	clean := sync(0, 0)
	if !clean.Full || clean.Epoch == 0 {
		t.Fatalf("post-penalty answer %+v, want FULL with the real epoch", clean)
	}
	if resynced := sync(clean.Epoch, clean.ToGen); resynced.Full || len(resynced.Entries) != 0 {
		t.Fatalf("delta sync did not re-establish after the penalty: %+v", resynced)
	}
}

// TestServeScopedAggregate drives the hierarchical exchange against a live
// daemon: the aggregate view's cells must partition the flat table — the
// cell hashes XOR to the table digest, the counts sum to its entry count —
// and refining every cell must reproduce the table row for row.
func TestServeScopedAggregate(t *testing.T) {
	w := phtest.InstantWorld(t, 34)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "b", geo.Pt(3, 0), device.Dynamic)
	c := phtest.AddNode(t, w, "c", geo.Pt(6, 0), device.Dynamic)
	phtest.RunRounds([]*phtest.Node{a, b, c}, 2)

	conn, err := a.Plugin.Dial(b.Addr(), device.PortDaemon)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := phproto.Write(conn, &phproto.NeighborhoodSyncRequest{
		Flags: phproto.SyncFlagSiblings, Scope: phproto.ScopeAggregate,
	}); err != nil {
		t.Fatal(err)
	}
	agg, err := phproto.ReadExpect[*phproto.NeighborhoodAggregate](conn)
	if err != nil {
		t.Fatal(err)
	}
	want := b.Daemon.Storage().Digest()
	if agg.Epoch != want.Epoch || agg.Gen != want.Gen || agg.DigestHash != want.Hash {
		t.Fatalf("aggregate header %+v != storage digest %+v", agg, want)
	}
	var count uint32
	var hash uint64
	for _, cs := range agg.Cells {
		count += cs.Count
		hash ^= cs.Hash
	}
	if count != agg.DigestCount || hash != agg.DigestHash {
		t.Fatalf("cells sum to (n=%d h=%x), digest says (n=%d h=%x)", count, hash, agg.DigestCount, agg.DigestHash)
	}

	// Refine every cell on the same connection; the union must be the
	// whole table.
	total := 0
	for _, cs := range agg.Cells {
		if err := phproto.Write(conn, &phproto.NeighborhoodSyncRequest{
			Flags: phproto.SyncFlagSiblings, Scope: phproto.ScopeCell, Cell: cs.Cell,
		}); err != nil {
			t.Fatal(err)
		}
		cell, err := phproto.ReadExpect[*phproto.NeighborhoodCell](conn)
		if err != nil {
			t.Fatal(err)
		}
		if cell.Cell != cs.Cell || cell.Hash != cs.Hash {
			t.Fatalf("cell %d answered (cell=%d hash=%x), aggregate advertised hash %x",
				cs.Cell, cell.Cell, cell.Hash, cs.Hash)
		}
		var h uint64
		for _, en := range cell.Entries {
			if phproto.CellOf(en.Info.Addr) != cs.Cell {
				t.Fatalf("row %v served in cell %d, hashes to %d", en.Info.Addr, cs.Cell, phproto.CellOf(en.Info.Addr))
			}
			h ^= en.Hash()
		}
		if h != cell.Hash {
			t.Fatalf("cell %d rows hash to %x, frame advertises %x", cs.Cell, h, cell.Hash)
		}
		total += len(cell.Entries)
	}
	if total != want.Entries {
		t.Fatalf("cells carried %d rows in total, table has %d", total, want.Entries)
	}
}

// TestScopedSyncWithoutSiblingsHangsUp: the hierarchical views render the
// extended entry forms, so a scoped request without the siblings
// capability gets the legacy treatment — the daemon hangs up and the
// fetcher is expected to fall back to the flat exchange.
func TestScopedSyncWithoutSiblingsHangsUp(t *testing.T) {
	w := phtest.InstantWorld(t, 35)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "b", geo.Pt(3, 0), device.Dynamic)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	conn, err := a.Plugin.Dial(b.Addr(), device.PortDaemon)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := phproto.Write(conn, &phproto.NeighborhoodSyncRequest{Scope: phproto.ScopeAggregate}); err != nil {
		t.Fatal(err)
	}
	if msg, err := phproto.Read(conn); err == nil {
		t.Fatalf("sibling-less scoped request answered with %v, want a hang-up", msg.Cmd())
	}

	// The flat exchange on a fresh connection still serves the full
	// snapshot — flagless fetchers are unaffected by the scope extension.
	conn2, err := a.Plugin.Dial(b.Addr(), device.PortDaemon)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := phproto.Write(conn2, &phproto.NeighborhoodSyncRequest{}); err != nil {
		t.Fatal(err)
	}
	full, err := phproto.ReadExpect[*phproto.NeighborhoodSync](conn2)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Full || len(full.Entries) == 0 {
		t.Fatalf("flagless fetch after a scoped hang-up answered %+v, want a populated FULL", full)
	}
}
