// Package daemon implements the PeerHood daemon (§2.2.1): the long-lived
// process owning the network plugins, the DeviceStorage, the per-plugin
// discovery loops, and the information responder that answers other
// devices' fetches on the daemon port. Applications never talk to the
// daemon directly; the library (internal/library) does.
package daemon

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/discovery"
	"peerhood/internal/events"
	"peerhood/internal/linkmon"
	"peerhood/internal/phproto"
	"peerhood/internal/plugin"
	"peerhood/internal/storage"
	"peerhood/internal/telemetry"
)

// Config parametrises a Daemon. Name is required.
type Config struct {
	// Name is the device's human-readable name, shown in device lists.
	Name string
	// Mobility is the device's own class, advertised during discovery and
	// used by peers for bridge selection (§3.4.3).
	Mobility device.Mobility
	// Clock drives all timing; defaults to the real clock.
	Clock clock.Clock
	// Checksum mirrors the thesis' daemon PID field (transmitted, unused).
	Checksum uint32

	// ServiceCheckInterval is the re-fetch staleness bound (fig 3.12);
	// zero fetches every round.
	ServiceCheckInterval time.Duration
	// LegacyOneHop runs discovery in the pre-thesis one-level mode
	// (baseline for experiment F3.3).
	LegacyOneHop bool
	// DisableDeltaSync makes this daemon's discoverers use the legacy
	// full-table neighbourhood exchange instead of the versioned delta
	// handshake (baseline for experiment S2). The responder still answers
	// sync requests from peers that ask.
	DisableDeltaSync bool
	// DisableIdentity makes this daemon behave like a pre-identity peer on
	// both sides of the wire: it advertises no sibling interfaces, closes
	// the connection on InfoDeviceEx (exactly as a legacy daemon presents),
	// strips sibling advertisements from everything it serves, and its
	// discoverers fetch without the identity capability bit. The interop
	// baseline for vertical handover.
	DisableIdentity bool
	// DisableIntrospection makes this daemon present as a pre-telemetry
	// peer: it closes the connection on STATS_REQUEST exactly as a legacy
	// daemon would on the unknown command byte. The interop baseline for
	// `phctl stats`' fallback path.
	DisableIntrospection bool
	// QualityThreshold, MaxJumps, MaxMissedLoops configure the storage;
	// zero values take the storage defaults (230, 8, 2).
	QualityThreshold int
	MaxJumps         int
	MaxMissedLoops   int
	// QualityFirst swaps route-selection priority from mobility to link
	// quality (ablation A1).
	QualityFirst bool

	// LoadPenalty, if set, returns a quality penalty subtracted from every
	// advertised route when this daemon answers neighbourhood fetches. The
	// bridge service wires its connection load in here, implementing the
	// §4 bottleneck-avoidance suggestion.
	LoadPenalty func() int

	// LinkHorizon is the link monitor's degradation-prediction horizon:
	// how far ahead a predicted threshold crossing classifies a link as
	// degrading. Zero takes the linkmon default (10 s).
	LinkHorizon time.Duration
	// LinkWindow is the link monitor's slope window in samples; larger
	// windows average more noise out of the trend at the cost of slower
	// reaction. Zero takes the linkmon default (8).
	LinkWindow int
}

// ErrStopped reports operations on a stopped daemon.
var ErrStopped = errors.New("daemon: stopped")

// Daemon is one device's PeerHood daemon.
type Daemon struct {
	cfg     Config
	clk     clock.Clock
	store   *storage.Storage
	bus     *events.Bus
	monitor *linkmon.Monitor
	reg     *telemetry.Registry
	tracer  *telemetry.Tracer

	mu          sync.Mutex
	plugins     []plugin.Plugin
	discoverers []*discovery.Discoverer
	listeners   []plugin.Listener
	services    map[string]device.ServiceInfo
	nextPort    uint16
	started     bool
	stopped     bool
	wg          sync.WaitGroup
	conns       map[io.Closer]struct{}
}

// New returns a Daemon with no plugins attached.
func New(cfg Config) (*Daemon, error) {
	if cfg.Name == "" {
		return nil, errors.New("daemon: Name is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	bus := events.NewBus(cfg.Clock)
	// The telemetry plane is per-daemon and always on: handles are plain
	// atomics, so an unscraped registry costs nothing measurable. The span
	// ID space is seeded from the daemon name, which manual-clock
	// experiments keep fixed — same-seed runs assign identical IDs.
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(cfg.Name, cfg.Clock, telemetry.DefaultTraceCapacity)
	bus.Instrument(reg)
	d := &Daemon{
		cfg: cfg,
		clk: cfg.Clock,
		store: storage.New(storage.Config{
			Clock:            cfg.Clock,
			QualityThreshold: cfg.QualityThreshold,
			MaxJumps:         cfg.MaxJumps,
			MaxMissedLoops:   cfg.MaxMissedLoops,
			QualityFirst:     cfg.QualityFirst,
			Registry:         reg,
		}),
		bus: bus,
		monitor: linkmon.New(linkmon.Config{
			Clock:     cfg.Clock,
			Bus:       bus,
			Threshold: cfg.QualityThreshold,
			Horizon:   cfg.LinkHorizon,
			Window:    cfg.LinkWindow,
			Registry:  reg,
			Tracer:    tracer,
		}),
		reg:      reg,
		tracer:   tracer,
		services: make(map[string]device.ServiceInfo),
		nextPort: device.PortServiceBase,
		conns:    make(map[io.Closer]struct{}),
	}
	return d, nil
}

// AddPlugin attaches a network plugin. Must be called before Start.
func (d *Daemon) AddPlugin(p plugin.Plugin) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started {
		return errors.New("daemon: cannot add plugins after Start")
	}
	for _, existing := range d.plugins {
		if existing.Tech() == p.Tech() {
			return fmt.Errorf("daemon: duplicate %v plugin", p.Tech())
		}
	}
	d.plugins = append(d.plugins, p)
	d.store.AddSelfAddr(p.Addr())
	return nil
}

// Name returns the device name.
func (d *Daemon) Name() string { return d.cfg.Name }

// Config returns a copy of the daemon's configuration. Crash/restart
// harnesses (the fault plane's churn events) rebuild a replacement daemon
// from it: a new Daemon gets a fresh storage epoch, so peers that had
// delta-synced with the old instance detect the restart and fall back to a
// full neighbourhood fetch.
func (d *Daemon) Config() Config { return d.cfg }

// Clock returns the daemon's clock.
func (d *Daemon) Clock() clock.Clock { return d.clk }

// Storage returns the daemon's device table.
func (d *Daemon) Storage() *storage.Storage { return d.store }

// Bus returns the daemon's neighbourhood event bus. Discovery, the link
// monitor, and handover threads publish on it; applications subscribe
// in-process (library.Events) or over the wire (EVENT_SUBSCRIBE).
func (d *Daemon) Bus() *events.Bus { return d.bus }

// LinkMonitor returns the daemon's link-quality monitor. Discovery feeds
// it every inquiry response; handover threads feed their connection
// samples and consume its degradation predictions.
func (d *Daemon) LinkMonitor() *linkmon.Monitor { return d.monitor }

// Registry returns the daemon's telemetry registry: every layer running
// under this daemon (storage, discovery, bus, handover threads) books its
// counters here, and the STATS wire command and the /metrics endpoint
// read from it.
func (d *Daemon) Registry() *telemetry.Registry { return d.reg }

// Tracer returns the daemon's span tracer (handover/sync lifecycles).
func (d *Daemon) Tracer() *telemetry.Tracer { return d.tracer }

// Plugins returns the attached plugins.
func (d *Daemon) Plugins() []plugin.Plugin {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]plugin.Plugin(nil), d.plugins...)
}

// PluginFor returns the plugin of the given technology.
func (d *Daemon) PluginFor(t device.Tech) (plugin.Plugin, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range d.plugins {
		if p.Tech() == t {
			return p, true
		}
	}
	return nil, false
}

// InfoFor returns the descriptor this daemon advertises on the given
// technology: identity, mobility, registered services, and — unless the
// identity plane is disabled — the device's other radio interfaces as
// sibling addresses, from which peers derive the cross-interface device
// identity.
func (d *Daemon) InfoFor(t device.Tech) (device.Info, bool) {
	p, ok := d.PluginFor(t)
	if !ok {
		return device.Info{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	info := device.Info{
		Name:     d.cfg.Name,
		Addr:     p.Addr(),
		Checksum: d.cfg.Checksum,
		Mobility: d.cfg.Mobility,
	}
	for _, s := range d.services {
		info.Services = append(info.Services, s)
	}
	if !d.cfg.DisableIdentity {
		for _, q := range d.plugins {
			if q.Tech() != t {
				info.Siblings = append(info.Siblings, q.Addr())
			}
		}
		sort.Slice(info.Siblings, func(i, j int) bool {
			return info.Siblings[i].Less(info.Siblings[j])
		})
	}
	return info, true
}

// RegisterService registers a named service and allocates its logical
// port. Registered services become discoverable by every device in the
// PeerHood network (§2.3).
func (d *Daemon) RegisterService(name, attr string) (device.ServiceInfo, error) {
	if name == "" {
		return device.ServiceInfo{}, errors.New("daemon: empty service name")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.services[name]; dup {
		return device.ServiceInfo{}, fmt.Errorf("daemon: service %q already registered", name)
	}
	svc := device.ServiceInfo{Name: name, Attr: attr, Port: d.nextPort}
	d.nextPort++
	d.services[name] = svc
	return svc, nil
}

// UnregisterService removes a registered service.
func (d *Daemon) UnregisterService(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.services, name)
}

// Services returns the locally registered services.
func (d *Daemon) Services() []device.ServiceInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]device.ServiceInfo, 0, len(d.services))
	for _, s := range d.services {
		out = append(out, s)
	}
	return out
}

// LookupLocalService returns the local service with the given port.
func (d *Daemon) LookupLocalService(port uint16) (device.ServiceInfo, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range d.services {
		if s.Port == port {
			return s, true
		}
	}
	return device.ServiceInfo{}, false
}

// Start binds the daemon information port on every plugin and begins
// serving fetches. If autoDiscover is true it also starts the per-plugin
// discovery loops; otherwise the embedder drives RunDiscoveryRound.
func (d *Daemon) Start(autoDiscover bool) error {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return errors.New("daemon: already started")
	}
	if d.stopped {
		d.mu.Unlock()
		return ErrStopped
	}
	if len(d.plugins) == 0 {
		d.mu.Unlock()
		return errors.New("daemon: no plugins attached")
	}
	d.started = true
	plugins := append([]plugin.Plugin(nil), d.plugins...)
	d.mu.Unlock()

	for _, p := range plugins {
		l, err := p.Listen(device.PortDaemon)
		if err != nil {
			d.Stop()
			return fmt.Errorf("daemon: binding info port on %v: %w", p.Tech(), err)
		}
		d.mu.Lock()
		d.listeners = append(d.listeners, l)
		d.mu.Unlock()
		d.wg.Add(1)
		go d.acceptLoop(p, l)

		disc := discovery.New(discovery.Config{
			Store:                d.store,
			Plugin:               p,
			Clock:                d.clk,
			ServiceCheckInterval: d.cfg.ServiceCheckInterval,
			LegacyOneHop:         d.cfg.LegacyOneHop,
			DisableDeltaSync:     d.cfg.DisableDeltaSync,
			DisableIdentity:      d.cfg.DisableIdentity,
			Bus:                  d.bus,
			Monitor:              d.monitor,
			Registry:             d.reg,
			Tracer:               d.tracer,
		})
		d.mu.Lock()
		d.discoverers = append(d.discoverers, disc)
		d.mu.Unlock()
		if autoDiscover {
			disc.Start()
		}
	}
	return nil
}

// RunDiscoveryRound performs one synchronous discovery round on every
// plugin and returns the per-plugin reports. Deterministic tests and the
// experiment harness use it instead of the background loops.
func (d *Daemon) RunDiscoveryRound() []discovery.RoundReport {
	d.mu.Lock()
	discs := append([]*discovery.Discoverer(nil), d.discoverers...)
	d.mu.Unlock()
	out := make([]discovery.RoundReport, 0, len(discs))
	for _, disc := range discs {
		out = append(out, disc.RunRound())
	}
	return out
}

// Stop halts discovery, closes listeners and in-flight responder
// connections, and waits for every daemon goroutine to exit. Idempotent.
func (d *Daemon) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	discs := d.discoverers
	listeners := d.listeners
	conns := make([]io.Closer, 0, len(d.conns))
	for c := range d.conns {
		conns = append(conns, c)
	}
	d.mu.Unlock()

	for _, disc := range discs {
		disc.Stop()
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	d.wg.Wait()
	// Closing the bus after the goroutines are gone means no publisher can
	// race the close; open subscriptions see their channels close.
	d.bus.Close()
}

// acceptLoop serves information fetches arriving on one plugin.
func (d *Daemon) acceptLoop(p plugin.Plugin, l plugin.Listener) {
	defer d.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		d.mu.Lock()
		if d.stopped {
			d.mu.Unlock()
			_ = conn.Close()
			return
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()

		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.serveInfo(p, conn)
			d.mu.Lock()
			delete(d.conns, conn)
			d.mu.Unlock()
		}()
	}
}

// serveInfo answers a sequence of information requests on one short
// connection (fig 3.7, unified per §3.4.1's suggestion): plain
// InfoRequests, and the versioned neighbourhood-sync handshake.
func (d *Daemon) serveInfo(p plugin.Plugin, conn plugin.Conn) {
	defer conn.Close()
	for {
		msg, err := phproto.Read(conn)
		if err != nil {
			return
		}
		var resp phproto.Message
		switch req := msg.(type) {
		case *phproto.InfoRequest:
			switch req.Kind {
			case phproto.InfoDevice:
				// The plain request predates the identity plane; strip the
				// sibling advertisement so the answer stays legacy-decodable.
				info, _ := d.InfoFor(p.Tech())
				info.Siblings = nil
				resp = &phproto.DeviceInfo{Info: info}
			case phproto.InfoDeviceEx:
				if d.cfg.DisableIdentity {
					// Present exactly as a legacy daemon: hang up.
					return
				}
				info, _ := d.InfoFor(p.Tech())
				resp = &phproto.DeviceInfo{Info: info}
			case phproto.InfoServices:
				resp = &phproto.ServiceList{Services: d.Services()}
			case phproto.InfoNeighborhood:
				resp = &phproto.Neighborhood{Entries: d.advertisedEntries()}
			case phproto.InfoDigest:
				dg := d.store.Digest()
				resp = &phproto.DigestInfo{Epoch: dg.Epoch, Gen: dg.Gen, Entries: uint32(dg.Entries), Hash: dg.Hash}
			default:
				return
			}
		case *phproto.NeighborhoodSyncRequest:
			resp = d.neighborhoodSync(req)
			if resp == nil {
				// Scoped request we do not serve (identity disabled, scope
				// unknown, or cell out of range): present exactly as a
				// legacy daemon and hang up, so the fetcher falls back to
				// the flat exchange.
				return
			}
		case *phproto.StatsRequest:
			if d.cfg.DisableIntrospection {
				// Present exactly as a legacy daemon: hang up.
				return
			}
			resp = d.statsSnapshot(req.Prefix)
		default:
			return
		}
		if err := phproto.Write(conn, resp); err != nil {
			return
		}
	}
}

// statsSnapshot flattens the telemetry registry into a STATS answer,
// optionally restricted to series names starting with prefix. Snapshot
// returns name-sorted points, so over-cap truncation keeps a
// deterministic prefix.
func (d *Daemon) statsSnapshot(prefix string) *phproto.Stats {
	pts := d.reg.Snapshot()
	out := &phproto.Stats{UnixNanos: d.clk.Now().UnixNano()}
	for _, p := range pts {
		if prefix != "" && !strings.HasPrefix(p.Name, prefix) {
			continue
		}
		if len(out.Entries) == phproto.MaxStatEntries {
			break
		}
		out.Entries = append(out.Entries, phproto.StatEntry{Name: p.Name, Value: math.Float64bits(p.Value)})
	}
	return out
}

// neighborhoodSync answers a versioned neighbourhood fetch. With an active
// load penalty the advertised rows are skewed away from the stored table,
// so no stored history can describe their changes: the responder serves a
// FULL table with the digest computed over exactly what it transmits, and
// stamps it epoch 0 — an unsyncable snapshot. Were it stamped with the real
// (epoch, gen), the fetcher would record penalised fingerprints against a
// genuine generation and every post-penalty delta would digest-mismatch
// into a wasted resync. With epoch 0 the fetcher keeps taking FULL tables
// while the penalty lasts and re-establishes delta sync on the first
// unpenalised fetch.
func (d *Daemon) neighborhoodSync(req *phproto.NeighborhoodSyncRequest) phproto.Message {
	wantSiblings := req.Flags&phproto.SyncFlagSiblings != 0 && !d.cfg.DisableIdentity
	if d.cfg.LoadPenalty != nil && d.cfg.LoadPenalty() > 0 {
		entries := d.advertisedEntries()
		if !wantSiblings {
			entries = phproto.StripSiblings(entries)
		}
		// A scoped fetcher receiving this flat answer treats it as
		// "responder declined the scope this round" and merges it whole.
		return phproto.FullSync(0, 0, entries)
	}
	if req.Scope != phproto.ScopeTable {
		// The hierarchical views render the extended entry forms the table
		// digest is computed over; a fetcher that did not negotiate them
		// (or a daemon posing as pre-identity) gets the legacy treatment —
		// nil here makes serveInfo hang up and the fetcher fall back.
		if !wantSiblings {
			return nil
		}
		switch req.Scope {
		case phproto.ScopeAggregate:
			cells, dg := d.store.CellSummaries()
			d.reg.Counter(`peerhood_daemon_scoped_syncs_total{scope="aggregate"}`).Inc()
			return &phproto.NeighborhoodAggregate{
				Epoch:       dg.Epoch,
				Gen:         dg.Gen,
				Cells:       cells,
				DigestCount: uint32(dg.Entries),
				DigestHash:  dg.Hash,
			}
		case phproto.ScopeCell:
			if req.Cell >= phproto.NumAggCells {
				return nil
			}
			entries, hash, dg := d.store.CellEntries(req.Cell)
			d.reg.Counter(`peerhood_daemon_scoped_syncs_total{scope="cell"}`).Inc()
			return &phproto.NeighborhoodCell{
				Cell:    req.Cell,
				Epoch:   dg.Epoch,
				Gen:     dg.Gen,
				Entries: entries,
				Hash:    hash,
			}
		default:
			return nil
		}
	}
	// The storage decides strip-vs-sync for non-capable fetchers under one
	// lock: a sibling-free table keeps the normal versioned answer
	// (including deltas), a sibling-carrying one is served stripped as an
	// unsyncable epoch-0 snapshot.
	return d.store.SyncResponse(req.Epoch, req.Gen, wantSiblings)
}

// advertisedEntries renders the storage for transmission, applying the
// load-based quality penalty if configured (§4's bottleneck avoidance:
// a busy bridge advertises routes as lower-quality, steering new
// connections elsewhere).
func (d *Daemon) advertisedEntries() []phproto.NeighborEntry {
	entries := d.store.WireEntries()
	if len(entries) > phproto.MaxEntries {
		// The wire's entry count is a u16 capped at MaxEntries; advertise
		// the deterministic prefix rather than an undecodable frame.
		entries = entries[:phproto.MaxEntries]
	}
	if d.cfg.LoadPenalty == nil {
		return entries
	}
	penalty := d.cfg.LoadPenalty()
	if penalty <= 0 {
		return entries
	}
	for i := range entries {
		q := int(entries[i].QualitySum) - penalty
		if q < 0 {
			q = 0
		}
		entries[i].QualitySum = uint32(q)
		m := int(entries[i].QualityMin) - penalty
		if m < 0 {
			m = 0
		}
		entries[i].QualityMin = uint8(m)
	}
	return entries
}
