package daemon_test

import (
	"testing"

	"peerhood/internal/device"
	"peerhood/internal/events"
	"peerhood/internal/geo"
	"peerhood/internal/linkmon"
	"peerhood/internal/mobility"
	"peerhood/internal/phtest"
)

// drain pulls every buffered event without blocking.
func drain(sub *events.Subscription) []events.Event {
	var out []events.Event
	for {
		select {
		case e := <-sub.C():
			out = append(out, e)
			continue
		default:
		}
		return out
	}
}

func TestDiscoveryPublishesAppearAndLost(t *testing.T) {
	w := phtest.InstantWorld(t, 21)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "B", geo.Pt(3, 0), device.Static)

	sub := a.Daemon.Bus().Subscribe(events.MaskOf(events.DeviceAppeared, events.DeviceLost))
	defer sub.Close()

	phtest.RunRounds([]*phtest.Node{a, b}, 1)
	got := drain(sub)
	if len(got) != 1 || got[0].Type != events.DeviceAppeared || got[0].Addr != b.Addr() {
		t.Fatalf("events after first round = %v", got)
	}
	if got[0].Detail != "B" {
		t.Fatalf("appear detail = %q, want device name", got[0].Detail)
	}

	// A second round of the same neighbourhood publishes nothing new.
	phtest.RunRounds([]*phtest.Node{a, b}, 1)
	if again := drain(sub); len(again) != 0 {
		t.Fatalf("duplicate appear events: %v", again)
	}

	// B leaves coverage; after MaxMissedLoops rounds the aging sweep
	// removes it and DeviceLost fires once.
	b.Device.SetModel(mobility.Static{At: geo.Pt(500, 0)})
	for i := 0; i < 4; i++ {
		a.Daemon.RunDiscoveryRound()
	}
	lost := drain(sub)
	if len(lost) != 1 || lost[0].Type != events.DeviceLost || lost[0].Addr != b.Addr() {
		t.Fatalf("events after departure = %v", lost)
	}
}

func TestDiscoveryFeedsLinkMonitor(t *testing.T) {
	w := phtest.InstantWorld(t, 22)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Static)
	b := phtest.AddNode(t, w, "B", geo.Pt(3, 0), device.Static)

	phtest.RunRounds([]*phtest.Node{a, b}, 2)
	st, ok := a.Daemon.LinkMonitor().State(b.Addr())
	if !ok {
		t.Fatal("monitor has no state for the discovered neighbour")
	}
	if st.Samples < 2 || st.Class != linkmon.ClassStable {
		t.Fatalf("state = %+v", st)
	}

	// Aging the device out marks the link lost and drops the state.
	b.Device.SetModel(mobility.Static{At: geo.Pt(500, 0)})
	for i := 0; i < 4; i++ {
		a.Daemon.RunDiscoveryRound()
	}
	if _, ok := a.Daemon.LinkMonitor().State(b.Addr()); ok {
		t.Fatal("monitor state survived device loss")
	}
}
