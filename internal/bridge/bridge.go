// Package bridge implements the thesis' interconnection system (ch. 4):
// the hidden bridge service every daemon runs. A PH_BRIDGE hello carries a
// destination address and service; the bridge selects the next hop from
// its own DeviceStorage (§4.2 — "the suitable prototype and route
// selection of next connection will always be carried out by the bridge
// server"), extends the chain, propagates the acknowledgement back, and
// then relays bytes in both directions without interpreting them.
//
// The thesis stores each relay's two connections as an even/odd pair in
// one list; here each relay is an explicit pair value with two pump
// goroutines. Connection caps and the load-based advertised-quality
// penalty implement §4's bottleneck-avoidance suggestion.
package bridge

import (
	"fmt"
	"sync"

	"peerhood/internal/device"
	"peerhood/internal/library"
	"peerhood/internal/phproto"
	"peerhood/internal/plugin"
)

// Defaults.
const (
	// DefaultMaxPairs bounds simultaneous relayed connections ("the
	// maximum connection number is adjusted by the device owner", §4).
	DefaultMaxPairs = 16
	// DefaultPenaltyScale is the advertised-quality penalty at full load.
	DefaultPenaltyScale = 50
)

// Config parametrises a bridge Service.
type Config struct {
	Library *library.Library
	// MaxPairs caps simultaneous relays; DefaultMaxPairs if zero.
	MaxPairs int
	// PenaltyScale scales the load penalty; DefaultPenaltyScale if zero.
	PenaltyScale int
	// Disabled turns the bridge off (mobile devices may switch bridging
	// off to save battery, §4 — at the cost of network visibility).
	Disabled bool
}

// Stats counts bridge activity.
type Stats struct {
	ChainsRequested   int64
	ChainsEstablished int64
	ChainsFailed      int64
	BytesRelayed      int64
}

// Service is one node's bridge service.
type Service struct {
	lib          *library.Library
	maxPairs     int
	penaltyScale int

	mu     sync.Mutex
	pairs  map[int64]*pair
	nextID int64
	stats  Stats
	closed bool
	wg     sync.WaitGroup
}

type pair struct {
	id  int64
	in  plugin.Conn // towards the connection originator
	out plugin.Conn // towards the destination (or next bridge)
}

// Attach creates the bridge service and installs it as the library's
// PH_BRIDGE handler. Per §4.2 the service is hidden: it has no entry in
// the registered service list.
func Attach(cfg Config) (*Service, error) {
	if cfg.Library == nil {
		return nil, fmt.Errorf("bridge: Library is required")
	}
	if cfg.MaxPairs == 0 {
		cfg.MaxPairs = DefaultMaxPairs
	}
	if cfg.PenaltyScale == 0 {
		cfg.PenaltyScale = DefaultPenaltyScale
	}
	s := &Service{
		lib:          cfg.Library,
		maxPairs:     cfg.MaxPairs,
		penaltyScale: cfg.PenaltyScale,
		pairs:        make(map[int64]*pair),
	}
	if !cfg.Disabled {
		cfg.Library.SetBridgeHandler(s.handle)
	}
	return s, nil
}

// ActivePairs returns the number of live relays.
func (s *Service) ActivePairs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pairs)
}

// Stats returns a snapshot of the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// LoadPenalty returns the advertised-quality penalty for the current load:
// 0 when idle, PenaltyScale when saturated (§4's "extra connection
// number / maximum connection number percentage ... proportionally the
// link quality parameter is decreased"). Wire it into the daemon's
// LoadPenalty hook.
func (s *Service) LoadPenalty() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maxPairs == 0 {
		return 0
	}
	return s.penaltyScale * len(s.pairs) / s.maxPairs
}

// Close tears down every relay and stops accepting new chains.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ps := make([]*pair, 0, len(s.pairs))
	for _, p := range s.pairs {
		ps = append(ps, p)
	}
	s.mu.Unlock()

	for _, p := range ps {
		_ = p.in.Close()
		_ = p.out.Close()
	}
	s.wg.Wait()
	return nil
}

// handle processes one PH_BRIDGE hello (fig 4.4's BridgeConnection).
func (s *Service) handle(conn plugin.Conn, hello *phproto.HelloBridge, via plugin.Plugin) {
	s.mu.Lock()
	s.stats.ChainsRequested++
	full := len(s.pairs) >= s.maxPairs
	closed := s.closed
	s.mu.Unlock()

	// A resume-flagged chain is acknowledged end to end with PH_RESUME_ACK
	// (it carries the endpoint's receive position); everything else keeps
	// the plain PH_OK/PH_FAIL of fig 4.3.
	resume := hello.Flags&phproto.HelloFlagResume != 0
	reject := func(reason string) {
		s.mu.Lock()
		s.stats.ChainsFailed++
		s.mu.Unlock()
		if resume {
			_ = phproto.Write(conn, &phproto.ResumeAck{OK: false, Reason: reason})
		} else {
			_ = phproto.Write(conn, &phproto.Ack{OK: false, Reason: reason})
		}
		_ = conn.Close()
	}

	switch {
	case closed:
		reject("bridge closed")
		return
	case full:
		// "whenever the maximum is reached, it is notified back to the
		// request device" (§4).
		reject("bridge at maximum connections")
		return
	case hello.TTL == 0:
		reject("bridge ttl exceeded")
		return
	}

	store := s.lib.Daemon().Storage()
	entry, ok := store.Lookup(hello.Dest)
	if !ok {
		reject("bridge: unknown destination")
		return
	}

	// Candidate next hops: never send the chain back to where it came
	// from; TTL bounds longer loops.
	prevHop := conn.RemoteAddr()
	var client *device.Info
	if hello.HasClient {
		c := hello.Client.Clone()
		client = &c
	}

	var out plugin.Conn
	var lastReason string
	var peerRecv uint32
	for _, route := range entry.Routes {
		if route.Bridge == prevHop {
			continue
		}
		if !route.Direct() && store.IsSelf(route.Bridge) {
			continue
		}
		if !route.Direct() && hello.TTL <= 1 {
			// Extending through another bridge needs TTL budget; a
			// decremented-to-zero TTL must not be mistaken for
			// ConnectVia's "use the default" sentinel.
			lastReason = "bridge ttl exhausted"
			continue
		}
		via := library.Via{
			Route:       route,
			Target:      hello.Dest,
			ServiceName: hello.ServiceName,
			ServicePort: hello.ServicePort,
			ConnID:      hello.ConnID,
			Reconnect:   hello.Reconnect,
			Client:      client,
			TTL:         hello.TTL - 1,
		}
		// Forward the continuity extension hop by hop: the session token
		// (and for a resume, the requester's receive position) must reach
		// the endpoint unchanged.
		switch {
		case resume:
			via.Resume = &library.ResumeInfo{Token: hello.Token, RecvSeq: hello.RecvSeq}
		case hello.Flags&phproto.HelloFlagContinuity != 0:
			via.Continuity = true
			via.Token = hello.Token
		}
		next, err := s.lib.ConnectVia(via)
		if err != nil {
			lastReason = err.Error()
			continue
		}
		if resume {
			peerRecv = via.Resume.PeerRecvSeq
		}
		out = next
		break
	}
	if out == nil {
		if lastReason == "" {
			lastReason = "bridge: no usable route to destination"
		}
		reject(lastReason)
		return
	}

	// Chain is up: propagate the acknowledgement to the requester
	// (fig 4.3's connection acknowledgement). A resume relays the
	// endpoint's PH_RESUME_ACK position instead.
	var ackMsg phproto.Message = &phproto.Ack{OK: true}
	if resume {
		ackMsg = &phproto.ResumeAck{OK: true, RecvSeq: peerRecv}
	}
	if err := phproto.Write(conn, ackMsg); err != nil {
		_ = conn.Close()
		_ = out.Close()
		s.mu.Lock()
		s.stats.ChainsFailed++
		s.mu.Unlock()
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Close()
		_ = out.Close()
		return
	}
	s.nextID++
	p := &pair{id: s.nextID, in: conn, out: out}
	s.pairs[p.id] = p
	s.stats.ChainsEstablished++
	// Add while still holding s.mu with closed re-checked above: once
	// Close has set closed under this lock it may already be past
	// wg.Wait, and an Add after that point races the Wait and leaks the
	// pumps.
	s.wg.Add(2)
	s.mu.Unlock()

	// Two pumps per pair (the even/odd directions of fig 4.4). The first
	// failure in either direction tears the pair down.
	go s.pump(p, p.in, p.out)
	go s.pump(p, p.out, p.in)
}

// pump relays bytes from src to dst until either side dies. "After the
// connection establishment, bridge won't interpret the traffic" (§4.2).
func (s *Service) pump(p *pair, src, dst plugin.Conn) {
	defer s.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
			s.mu.Lock()
			s.stats.BytesRelayed += int64(n)
			s.mu.Unlock()
		}
		if err != nil {
			break
		}
	}
	s.retire(p)
}

// retire closes both ends of a pair and removes it from the list.
func (s *Service) retire(p *pair) {
	s.mu.Lock()
	_, live := s.pairs[p.id]
	delete(s.pairs, p.id)
	s.mu.Unlock()
	if live {
		_ = p.in.Close()
		_ = p.out.Close()
	}
}
