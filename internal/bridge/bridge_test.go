package bridge_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"peerhood/internal/bridge"
	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/library"
	"peerhood/internal/phtest"
	"peerhood/internal/storage"
)

// lineWorld builds a line topology A-B-...-Z with 8m spacing (10m radius:
// only adjacent nodes in coverage), echo service on the last node, bridges
// everywhere, and runs enough discovery for total awareness.
func lineWorld(t *testing.T, seed int64, n int) []*phtest.Node {
	t.Helper()
	w := phtest.InstantWorld(t, seed)
	nodes := make([]*phtest.Node, n)
	for i := 0; i < n; i++ {
		mob := device.Static
		if i == 0 {
			mob = device.Dynamic
		}
		nodes[i] = phtest.AddNode(t, w, fmt.Sprintf("n%d", i), geo.Pt(float64(i)*8, 0), mob)
		phtest.AttachBridge(t, nodes[i])
	}
	registerEcho(t, nodes[n-1])
	phtest.RunRounds(nodes, n)
	return nodes
}

func registerEcho(t *testing.T, n *phtest.Node) {
	t.Helper()
	if _, err := n.Lib.RegisterService("echo", "", func(vc *library.VirtualConnection, meta library.ConnectionMeta) {
		defer vc.Close()
		buf := make([]byte, 512)
		for {
			nr, err := vc.Read(buf)
			if err != nil {
				return
			}
			if _, err := vc.Write(buf[:nr]); err != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func echoOnce(t *testing.T, vc *library.VirtualConnection, msg string) {
	t.Helper()
	if _, err := vc.Write([]byte(msg)); err != nil {
		t.Fatalf("write %q: %v", msg, err)
	}
	buf := make([]byte, len(msg)+16)
	n, err := vc.Read(buf)
	if err != nil || string(buf[:n]) != msg {
		t.Fatalf("echo = %q, %v (want %q)", buf[:n], err, msg)
	}
}

// TestSingleBridgeChain reproduces fig 4.1/4.2's basic scenario: A reaches
// a server two coverage areas away through one bridge.
func TestSingleBridgeChain(t *testing.T) {
	nodes := lineWorld(t, 1, 3)
	a, b, c := nodes[0], nodes[1], nodes[2]

	// A knows C only via B.
	entry, ok := a.Daemon.Storage().Lookup(c.Addr())
	if !ok {
		t.Fatalf("A does not know C:\n%s", a.Daemon.Storage())
	}
	best, _ := entry.Best()
	if best.Jumps != 1 || best.Bridge != b.Addr() {
		t.Fatalf("route = %+v, want 1 jump via B", best)
	}

	vc, err := a.Lib.Connect(c.Addr(), "echo")
	if err != nil {
		t.Fatalf("bridged Connect: %v", err)
	}
	defer vc.Close()

	for i := 0; i < 5; i++ {
		echoOnce(t, vc, fmt.Sprintf("msg-%d", i))
	}
	if vc.Bridge() != b.Addr() {
		t.Fatalf("vc.Bridge() = %v, want B", vc.Bridge())
	}
	if b.Bridge.ActivePairs() != 1 {
		t.Fatalf("B active pairs = %d, want 1", b.Bridge.ActivePairs())
	}
	st := b.Bridge.Stats()
	if st.ChainsEstablished != 1 || st.BytesRelayed == 0 {
		t.Fatalf("bridge stats = %+v", st)
	}
}

// TestMultiHopChain reproduces fig 4.1's A-B-C-E chain: two bridges.
func TestMultiHopChain(t *testing.T) {
	nodes := lineWorld(t, 2, 5)
	a, far := nodes[0], nodes[4]

	entry, _ := a.Daemon.Storage().Lookup(far.Addr())
	best, _ := entry.Best()
	if best.Jumps != 3 {
		t.Fatalf("route jumps = %d, want 3", best.Jumps)
	}

	vc, err := a.Lib.Connect(far.Addr(), "echo")
	if err != nil {
		t.Fatalf("multi-hop Connect: %v", err)
	}
	defer vc.Close()
	echoOnce(t, vc, "through-three-bridges")

	// Every intermediate node relays exactly one pair.
	for i := 1; i <= 3; i++ {
		if got := nodes[i].Bridge.ActivePairs(); got != 1 {
			t.Fatalf("node %d active pairs = %d, want 1", i, got)
		}
	}
}

func TestChainTearsDownOnClientClose(t *testing.T) {
	nodes := lineWorld(t, 3, 4)
	a := nodes[0]
	vc, err := a.Lib.Connect(nodes[3].Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	echoOnce(t, vc, "hello")
	_ = vc.Close()

	// Relays drain and retire.
	deadline := time.After(2 * time.Second)
	for {
		total := nodes[1].Bridge.ActivePairs() + nodes[2].Bridge.ActivePairs()
		if total == 0 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("relay pairs never retired: %d", total)
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestBridgeRejectsUnknownDestination(t *testing.T) {
	nodes := lineWorld(t, 4, 3)
	a, b := nodes[0], nodes[1]

	// Hand-craft a bridged connect towards a destination B cannot know.
	ghost := device.Addr{Tech: device.TechBluetooth, MAC: "no:such"}
	_, err := a.Lib.ConnectVia(library.Via{
		Route:       storage.Route{Jumps: 1, Bridge: b.Addr(), QualitySum: 240, QualityMin: 240},
		Target:      ghost,
		ServiceName: "echo",
		ServicePort: 10,
		ConnID:      42,
	})
	if !errors.Is(err, library.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestBridgeMaxPairsRejects(t *testing.T) {
	w := phtest.InstantWorld(t, 5)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(8, 0), device.Static)
	c := phtest.AddNode(t, w, "c", geo.Pt(16, 0), device.Static)
	// Bridge on B capped at 1 pair.
	bsvc, err := bridge.Attach(bridge.Config{Library: b.Lib, MaxPairs: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = bsvc.Close() })
	b.Bridge = bsvc
	registerEcho(t, c)
	phtest.RunRounds([]*phtest.Node{a, b, c}, 3)

	vc1, err := a.Lib.Connect(c.Addr(), "echo")
	if err != nil {
		t.Fatalf("first chain: %v", err)
	}
	defer vc1.Close()
	echoOnce(t, vc1, "first")

	if _, err := a.Lib.Connect(c.Addr(), "echo"); !errors.Is(err, library.ErrRejected) {
		t.Fatalf("second chain err = %v, want ErrRejected (bridge at max)", err)
	}
	if got := bsvc.LoadPenalty(); got != bridge.DefaultPenaltyScale {
		t.Fatalf("LoadPenalty at saturation = %d, want %d", got, bridge.DefaultPenaltyScale)
	}
}

func TestDisabledBridgeRejectsChains(t *testing.T) {
	w := phtest.InstantWorld(t, 6)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(8, 0), device.Static)
	c := phtest.AddNode(t, w, "c", geo.Pt(16, 0), device.Static)
	if _, err := bridge.Attach(bridge.Config{Library: b.Lib, Disabled: true}); err != nil {
		t.Fatal(err)
	}
	registerEcho(t, c)
	phtest.RunRounds([]*phtest.Node{a, b, c}, 3)

	_, err := a.Lib.Connect(c.Addr(), "echo")
	if !errors.Is(err, library.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected (no bridge service)", err)
	}
}

func TestReconnectThroughBridge(t *testing.T) {
	// A connects to C directly, then re-attaches the same logical
	// connection through bridge B — the §5.2.1 routing-handover transport
	// path, exercised without the handover thread.
	w := phtest.InstantWorld(t, 7)
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 3), device.Static)
	c := phtest.AddNode(t, w, "c", geo.Pt(8, 0), device.Static)
	phtest.AttachBridge(t, b)
	registerEcho(t, c)
	phtest.RunRounds([]*phtest.Node{a, b, c}, 3)

	vc, err := a.Lib.Connect(c.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	echoOnce(t, vc, "direct")

	// Alternate route via B must exist in A's storage.
	alts := a.Daemon.Storage().AlternateRoutes(c.Addr(), device.Addr{})
	var viaB *int
	for i, r := range alts {
		if r.Bridge == b.Addr() {
			viaB = &i
			break
		}
	}
	if viaB == nil {
		t.Fatalf("no alternate via B:\n%s", a.Daemon.Storage())
	}

	raw, err := a.Lib.ConnectVia(library.Via{
		Route:       alts[*viaB],
		Target:      c.Addr(),
		ServiceName: "echo",
		ServicePort: vc.Service().Port,
		ConnID:      vc.ID(),
		Reconnect:   true,
	})
	if err != nil {
		t.Fatalf("bridged reconnect: %v", err)
	}
	vc.SwapRoute(raw, b.Addr())
	echoOnce(t, vc, "via-bridge")
	if vc.Bridge() != b.Addr() {
		t.Fatalf("vc.Bridge() = %v after swap", vc.Bridge())
	}
}

func TestBridgeCloseTearsDownRelays(t *testing.T) {
	nodes := lineWorld(t, 8, 3)
	a, b := nodes[0], nodes[1]
	vc, err := a.Lib.Connect(nodes[2].Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	echoOnce(t, vc, "pre-close")

	if err := b.Bridge.Close(); err != nil {
		t.Fatal(err)
	}
	if b.Bridge.ActivePairs() != 0 {
		t.Fatal("pairs survived Close")
	}
	// Traffic now fails (no handover thread attached).
	vc.SetSending(false) // fail fast instead of waiting for swap
	if _, err := vc.Write([]byte("post-close")); err == nil {
		// One write may still land in a buffer; the echo read must fail.
		buf := make([]byte, 16)
		if _, err := vc.Read(buf); err == nil {
			t.Fatal("relay still alive after bridge Close")
		}
	}
}
