package bridge_test

import (
	"errors"
	"fmt"
	"testing"

	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/library"
	"peerhood/internal/phtest"
	"peerhood/internal/storage"
)

// TestTTLBoundsChainLength: a hello with TTL smaller than the required
// hop count must be rejected by the chain rather than relayed forever.
func TestTTLBoundsChainLength(t *testing.T) {
	nodes := lineWorld(t, 20, 5) // needs 3 bridges to reach the far end
	a, far := nodes[0], nodes[4]

	entry, _ := a.Daemon.Storage().Lookup(far.Addr())
	route, _ := entry.Best()
	svc, _ := entry.Info.FindService("echo")

	// TTL 1: the first bridge decrements to 0 and the second refuses.
	_, err := a.Lib.ConnectVia(library.Via{
		Route:       route,
		Target:      far.Addr(),
		ServiceName: svc.Name,
		ServicePort: svc.Port,
		ConnID:      1234,
		TTL:         1,
	})
	if !errors.Is(err, library.ErrRejected) {
		t.Fatalf("short-TTL chain err = %v, want ErrRejected", err)
	}

	// TTL 3 suffices for the 3-bridge chain.
	conn, err := a.Lib.ConnectVia(library.Via{
		Route:       route,
		Target:      far.Addr(),
		ServiceName: svc.Name,
		ServicePort: svc.Port,
		ConnID:      1235,
		TTL:         3,
	})
	if err != nil {
		t.Fatalf("sufficient-TTL chain: %v", err)
	}
	_ = conn.Close()
}

// TestBridgeNeverRoutesBackwards: the bridge must not select the
// requester itself as the next hop even when the requester advertises a
// route to the destination.
func TestBridgeNeverRoutesBackwards(t *testing.T) {
	w := phtest.InstantWorld(t, 21)
	// a - b in mutual coverage; target exists only in a's imagination:
	// b's only "route" to it would be back through a.
	a := phtest.AddNode(t, w, "a", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "b", geo.Pt(5, 0), device.Static)
	phtest.AttachBridge(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 2)

	ghost := device.Addr{Tech: device.TechBluetooth, MAC: "gh:os:t0"}
	// Plant a fake route in b's storage claiming the ghost is reachable
	// via a (simulating a stale report).
	b.Daemon.Storage().UpsertDirect(device.Info{Name: "ghost-carrier", Addr: a.Addr()}, 240)
	b.Daemon.Storage().MergeNeighborhood(a.Addr(), 240, nil)

	_, err := a.Lib.ConnectVia(library.Via{
		Route:       storage.Route{Jumps: 1, Bridge: b.Addr(), QualitySum: 480, QualityMin: 240},
		Target:      ghost,
		ServiceName: "echo",
		ServicePort: 10,
		ConnID:      77,
	})
	if !errors.Is(err, library.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected (no forward route)", err)
	}
}

// TestConcurrentChainsThroughOneBridge exercises the fig 4.2
// multi-connection scenario: several clients relayed simultaneously.
func TestConcurrentChainsThroughOneBridge(t *testing.T) {
	w := phtest.InstantWorld(t, 22)
	server := phtest.AddNode(t, w, "server", geo.Pt(16, 0), device.Static)
	bridgeNode := phtest.AddNode(t, w, "bridge", geo.Pt(8, 0), device.Static)
	phtest.AttachBridge(t, bridgeNode)
	registerEcho(t, server)

	const clients = 4
	var cs []*phtest.Node
	for i := 0; i < clients; i++ {
		cs = append(cs, phtest.AddNode(t, w, fmt.Sprintf("c%d", i), geo.Pt(0, float64(i)), device.Dynamic))
	}
	phtest.RunRounds(append(cs, server, bridgeNode), 3)

	type result struct {
		idx int
		err error
	}
	done := make(chan result, clients)
	for i, c := range cs {
		go func(idx int, n *phtest.Node) {
			vc, err := n.Lib.Connect(server.Addr(), "echo")
			if err != nil {
				done <- result{idx, err}
				return
			}
			defer vc.Close()
			msg := fmt.Sprintf("from-%d", idx)
			if _, err := vc.Write([]byte(msg)); err != nil {
				done <- result{idx, err}
				return
			}
			buf := make([]byte, 32)
			nr, err := vc.Read(buf)
			if err != nil {
				done <- result{idx, err}
				return
			}
			if string(buf[:nr]) != msg {
				done <- result{idx, fmt.Errorf("echo mismatch: %q", buf[:nr])}
				return
			}
			done <- result{idx, nil}
		}(i, c)
	}
	for i := 0; i < clients; i++ {
		r := <-done
		if r.err != nil {
			t.Fatalf("client %d: %v", r.idx, r.err)
		}
	}
	st := bridgeNode.Bridge.Stats()
	if st.ChainsEstablished != clients {
		t.Fatalf("chains established = %d, want %d", st.ChainsEstablished, clients)
	}
}
