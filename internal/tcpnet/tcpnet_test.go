package tcpnet_test

import (
	"errors"
	"testing"
	"time"

	"peerhood/internal/daemon"
	"peerhood/internal/device"
	"peerhood/internal/discovery"
	"peerhood/internal/library"
	"peerhood/internal/plugin"
	"peerhood/internal/tcpnet"
)

// newPair returns two loopback plugins that know each other as peers.
func newPair(t *testing.T) (*tcpnet.Plugin, *tcpnet.Plugin) {
	t.Helper()
	a, err := tcpnet.New(tcpnet.Config{Listen: "127.0.0.1:0", InquiryWait: 200 * time.Millisecond})
	if err != nil {
		t.Fatalf("plugin a: %v", err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b, err := tcpnet.New(tcpnet.Config{
		Listen:      "127.0.0.1:0",
		Peers:       []string{a.Addr().MAC},
		InquiryWait: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("plugin b: %v", err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return a, b
}

func TestInquiryOverUDP(t *testing.T) {
	a, b := newPair(t)
	res := b.Inquire()
	if len(res) != 1 {
		t.Fatalf("inquiry found %d peers, want 1", len(res))
	}
	if res[0].Addr != a.Addr() {
		t.Fatalf("found %v, want %v", res[0].Addr, a.Addr())
	}
	if res[0].Quality <= 0 || res[0].Quality > 255 {
		t.Fatalf("quality out of scale: %d", res[0].Quality)
	}
	if q := b.QualityTo(a.Addr()); q != res[0].Quality {
		t.Fatalf("QualityTo = %d, inquiry said %d", q, res[0].Quality)
	}
}

func TestDialAndEchoOverTCP(t *testing.T) {
	a, b := newPair(t)

	l, err := a.Listen(10)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 64)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}()

	conn, err := b.Dial(a.Addr(), 10)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("over-tcp")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "over-tcp" {
		t.Fatalf("echo = %q, %v", buf[:n], err)
	}
	if conn.Quality() <= 0 {
		t.Fatal("established connection reports zero quality")
	}
}

func TestDialUnboundPortRefused(t *testing.T) {
	a, b := newPair(t)
	_, err := b.Dial(a.Addr(), 99)
	if !errors.Is(err, plugin.ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}

func TestDialUnreachableHost(t *testing.T) {
	_, b := newPair(t)
	dead := device.Addr{Tech: device.TechWLAN, MAC: "127.0.0.1:1"} // nothing listens
	if _, err := b.Dial(dead, 10); !errors.Is(err, plugin.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestDuplicatePortRejected(t *testing.T) {
	a, _ := newPair(t)
	l, err := a.Listen(10)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := a.Listen(10); err == nil {
		t.Fatal("duplicate bind accepted")
	}
}

func TestListenerCloseReleasesPort(t *testing.T) {
	a, _ := newPair(t)
	l, err := a.Listen(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := a.Listen(10)
	if err != nil {
		t.Fatalf("re-listen: %v", err)
	}
	_ = l2.Close()
}

func TestPluginCloseIdempotent(t *testing.T) {
	a, err := tcpnet.New(tcpnet.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Listen(10); !errors.Is(err, plugin.ErrClosed) {
		t.Fatalf("listen after close: %v", err)
	}
}

// TestFullStackOverLoopback runs two complete PeerHood daemons over real
// TCP/UDP on loopback: discovery finds the peer, fetches its descriptor
// and services, and the library connects to a registered service —
// PeerHood without the simulator.
func TestFullStackOverLoopback(t *testing.T) {
	mk := func(name string, peers []string) (*daemon.Daemon, *library.Library, *tcpnet.Plugin) {
		p, err := tcpnet.New(tcpnet.Config{
			Listen:      "127.0.0.1:0",
			Peers:       peers,
			InquiryWait: 200 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.Close() })
		d, err := daemon.New(daemon.Config{Name: name, Mobility: device.Static})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.AddPlugin(p); err != nil {
			t.Fatal(err)
		}
		if err := d.Start(false); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Stop)
		lib, err := library.New(library.Config{Daemon: d})
		if err != nil {
			t.Fatal(err)
		}
		if err := lib.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(lib.Stop)
		return d, lib, p
	}

	_, serverLib, serverPlugin := mk("tcp-server", nil)
	clientDaemon, clientLib, _ := mk("tcp-client", []string{serverPlugin.Addr().MAC})

	if _, err := serverLib.RegisterService("echo", "tcp", func(vc *library.VirtualConnection, meta library.ConnectionMeta) {
		defer vc.Close()
		buf := make([]byte, 64)
		for {
			n, err := vc.Read(buf)
			if err != nil {
				return
			}
			if _, err := vc.Write(buf[:n]); err != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	clientDaemon.RunDiscoveryRound()

	entry, ok := clientDaemon.Storage().Lookup(serverPlugin.Addr())
	if !ok {
		t.Fatalf("server not discovered over UDP:\n%s", clientDaemon.Storage())
	}
	if entry.Info.Name != "tcp-server" {
		t.Fatalf("fetched info = %+v", entry.Info)
	}
	if _, ok := entry.Info.FindService("echo"); !ok {
		t.Fatal("service list not fetched over TCP")
	}

	vc, err := clientLib.Connect(serverPlugin.Addr(), "echo")
	if err != nil {
		t.Fatalf("Connect over TCP: %v", err)
	}
	defer vc.Close()
	if _, err := vc.Write([]byte("real-network")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := vc.Read(buf)
	if err != nil || string(buf[:n]) != "real-network" {
		t.Fatalf("echo = %q, %v", buf[:n], err)
	}
	_ = discovery.Fetch // keep import for doc cross-reference
}
