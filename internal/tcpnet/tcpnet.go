// Package tcpnet is a real-network PeerHood plugin: data connections run
// over TCP and device discovery over UDP datagrams, so daemons on a LAN
// (or loopback) form a PeerHood neighbourhood without the simulator.
//
// Discovery uses a static peer list rather than multicast, which keeps the
// transport usable in offline and containerised environments: an inquiry
// sends a probe datagram to every configured peer and collects responses
// for the inquiry duration. Link quality is synthesised from the measured
// round-trip time on the 0-255 scale used by the rest of the stack.
//
// PeerHood's logical ports (daemon port 1, engine port 2, service ports)
// are multiplexed over one TCP listener: the dialer sends a two-byte port
// preamble after connecting.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/plugin"
	"peerhood/internal/simnet"
	"peerhood/internal/telemetry"
)

// Config parametrises a Plugin.
type Config struct {
	// Listen is the local "host:port" for both TCP data and UDP
	// discovery.
	Listen string
	// Peers are the UDP addresses probed during inquiries.
	Peers []string
	// InquiryWait is how long an inquiry collects responses (default
	// 500 ms).
	InquiryWait time.Duration
	// DiscoveryCycle is the advertised cycle (default 5 s).
	DiscoveryCycle time.Duration
}

// Probe datagram types.
const (
	probeInquiry  = 0x01
	probeResponse = 0x02
)

// Plugin is the TCP/UDP implementation of plugin.Plugin.
type Plugin struct {
	cfg  Config
	addr device.Addr

	tcp *net.TCPListener
	udp *net.UDPConn

	mu        sync.Mutex
	listeners map[uint16]*muxListener
	quality   map[device.Addr]int // last measured per peer
	closed    bool
	wg        sync.WaitGroup

	// Telemetry handles, resolved by Instrument; nil-safe, so an
	// uninstrumented plugin pays one branch per event.
	tDialsOK       *telemetry.Counter
	tDialsRefused  *telemetry.Counter
	tDialsUnreach  *telemetry.Counter
	tAccepts       *telemetry.Counter
	tBytesRx       *telemetry.Counter
	tBytesTx       *telemetry.Counter
	tProbesSent    *telemetry.Counter
	tProbeReplies  *telemetry.Counter
	tProbeRequests *telemetry.Counter
}

// bump increments the handle field c points at, reading it under the
// plugin lock so Instrument can land while the accept and probe loops are
// already running.
func (p *Plugin) bump(c **telemetry.Counter) {
	p.mu.Lock()
	ctr := *c
	p.mu.Unlock()
	ctr.Inc()
}

// connCounters snapshots the byte counters for a new connection; the conn
// keeps them for its lifetime, so its hot path never touches the lock.
func (p *Plugin) connCounters() (rx, tx *telemetry.Counter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tBytesRx, p.tBytesTx
}

// Instrument resolves the plugin's telemetry handles against reg: dial
// outcomes, accepted connections, connection bytes by direction, and the
// UDP discovery probe traffic. Typically called right after the owning
// daemon is constructed; a nil registry leaves the plugin uninstrumented.
// Connections established before the call stay uncounted.
func (p *Plugin) Instrument(reg *telemetry.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tDialsOK = reg.Counter(`peerhood_tcpnet_dials_total{result="ok"}`)
	p.tDialsRefused = reg.Counter(`peerhood_tcpnet_dials_total{result="refused"}`)
	p.tDialsUnreach = reg.Counter(`peerhood_tcpnet_dials_total{result="unreachable"}`)
	p.tAccepts = reg.Counter(`peerhood_tcpnet_accepts_total`)
	p.tBytesRx = reg.Counter(`peerhood_tcpnet_bytes_total{dir="rx"}`)
	p.tBytesTx = reg.Counter(`peerhood_tcpnet_bytes_total{dir="tx"}`)
	p.tProbesSent = reg.Counter(`peerhood_tcpnet_probes_total{kind="sent"}`)
	p.tProbeReplies = reg.Counter(`peerhood_tcpnet_probes_total{kind="reply"}`)
	p.tProbeRequests = reg.Counter(`peerhood_tcpnet_probes_total{kind="answered"}`)
}

var _ plugin.Plugin = (*Plugin)(nil)

// New binds the TCP and UDP sockets and starts the accept/respond loops.
func New(cfg Config) (*Plugin, error) {
	if cfg.Listen == "" {
		return nil, errors.New("tcpnet: Listen is required")
	}
	if cfg.InquiryWait <= 0 {
		cfg.InquiryWait = 500 * time.Millisecond
	}
	if cfg.DiscoveryCycle <= 0 {
		cfg.DiscoveryCycle = 5 * time.Second
	}

	tcpAddr, err := net.ResolveTCPAddr("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: %w", err)
	}
	tcp, err := net.ListenTCP("tcp", tcpAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: %w", err)
	}
	// Bind UDP to the concrete port TCP got (supports Listen with :0).
	actual := tcp.Addr().(*net.TCPAddr)
	udpAddr := &net.UDPAddr{IP: actual.IP, Port: actual.Port}
	udp, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		_ = tcp.Close()
		return nil, fmt.Errorf("tcpnet: %w", err)
	}

	p := &Plugin{
		cfg:       cfg,
		addr:      device.Addr{Tech: device.TechWLAN, MAC: actual.String()},
		tcp:       tcp,
		udp:       udp,
		listeners: make(map[uint16]*muxListener),
		quality:   make(map[device.Addr]int),
	}
	p.wg.Add(2)
	go p.acceptLoop()
	go p.udpLoop()
	return p, nil
}

// Tech implements plugin.Plugin.
func (p *Plugin) Tech() device.Tech { return device.TechWLAN }

// Addr implements plugin.Plugin. The "MAC" is the bound host:port, which
// is unique per daemon on a network.
func (p *Plugin) Addr() device.Addr { return p.addr }

// DiscoveryCycle implements plugin.Plugin.
func (p *Plugin) DiscoveryCycle() time.Duration { return p.cfg.DiscoveryCycle }

// AddPeer adds a UDP discovery target (host:port) after construction.
// Daemons whose listen ports are kernel-assigned (Listen "host:0") cannot
// know each other's addresses up front; a full mesh is wired by creating
// every plugin first and then cross-registering.
func (p *Plugin) AddPeer(hostport string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, peer := range p.cfg.Peers {
		if peer == hostport {
			return
		}
	}
	p.cfg.Peers = append(p.cfg.Peers, hostport)
}

// Inquire implements plugin.Plugin: probe every configured peer over UDP
// and collect responses for the inquiry window.
func (p *Plugin) Inquire() []plugin.InquiryResult {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	peers := append([]string(nil), p.cfg.Peers...)
	p.mu.Unlock()

	probe := make([]byte, 1+8)
	probe[0] = probeInquiry
	binary.BigEndian.PutUint64(probe[1:], uint64(time.Now().UnixNano()))
	for _, peer := range peers {
		ua, err := net.ResolveUDPAddr("udp", peer)
		if err != nil {
			continue
		}
		_, _ = p.udp.WriteToUDP(probe, ua)
		p.bump(&p.tProbesSent)
	}

	// Responses accumulate in p.quality via udpLoop; wait out the window
	// and snapshot.
	time.Sleep(p.cfg.InquiryWait)

	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]plugin.InquiryResult, 0, len(p.quality))
	for a, q := range p.quality {
		out = append(out, plugin.InquiryResult{Addr: a, Quality: q})
	}
	return out
}

// QualityTo implements plugin.Plugin: the last RTT-derived measurement.
func (p *Plugin) QualityTo(a device.Addr) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quality[a]
}

// Dial implements plugin.Plugin: TCP connect plus the port preamble.
func (p *Plugin) Dial(to device.Addr, port uint16) (plugin.Conn, error) {
	if to.Tech != device.TechWLAN {
		return nil, fmt.Errorf("%w: tcpnet dialing %v", plugin.ErrUnreachable, to.Tech)
	}
	c, err := net.DialTimeout("tcp", to.MAC, 5*time.Second)
	if err != nil {
		p.bump(&p.tDialsUnreach)
		return nil, fmt.Errorf("%w: %v", plugin.ErrUnreachable, err)
	}
	var preamble [2]byte
	binary.BigEndian.PutUint16(preamble[:], port)
	if _, err := c.Write(preamble[:]); err != nil {
		_ = c.Close()
		p.bump(&p.tDialsUnreach)
		return nil, fmt.Errorf("%w: %v", plugin.ErrUnreachable, err)
	}
	// The accept side replies one byte: 1 = port bound, 0 = refused.
	var ok [1]byte
	if err := c.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("tcpnet: %w", err)
	}
	if _, err := io.ReadFull(c, ok[:]); err != nil {
		_ = c.Close()
		p.bump(&p.tDialsUnreach)
		return nil, fmt.Errorf("%w: %v", plugin.ErrUnreachable, err)
	}
	_ = c.SetReadDeadline(time.Time{})
	if ok[0] != 1 {
		_ = c.Close()
		p.bump(&p.tDialsRefused)
		return nil, fmt.Errorf("%w: port %d on %v", plugin.ErrRefused, port, to)
	}
	p.bump(&p.tDialsOK)
	rx, tx := p.connCounters()
	return &conn{Conn: c, plugin: p, local: p.addr, remote: to, rx: rx, tx: tx}, nil
}

// Listen implements plugin.Plugin.
func (p *Plugin) Listen(port uint16) (plugin.Listener, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, plugin.ErrClosed
	}
	if _, dup := p.listeners[port]; dup {
		return nil, fmt.Errorf("tcpnet: port %d already bound", port)
	}
	ml := &muxListener{
		plugin: p,
		port:   port,
		accept: make(chan plugin.Conn, 16),
		closed: make(chan struct{}),
	}
	p.listeners[port] = ml
	return ml, nil
}

// Close implements plugin.Plugin.
func (p *Plugin) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	listeners := make([]*muxListener, 0, len(p.listeners))
	for _, ml := range p.listeners {
		listeners = append(listeners, ml)
	}
	p.mu.Unlock()

	_ = p.tcp.Close()
	_ = p.udp.Close()
	for _, ml := range listeners {
		_ = ml.Close()
	}
	p.wg.Wait()
	return nil
}

// acceptLoop routes incoming TCP connections by their port preamble.
func (p *Plugin) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.tcp.AcceptTCP()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.routeIncoming(c)
		}()
	}
}

func (p *Plugin) routeIncoming(c *net.TCPConn) {
	var preamble [2]byte
	if err := c.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		_ = c.Close()
		return
	}
	if _, err := io.ReadFull(c, preamble[:]); err != nil {
		_ = c.Close()
		return
	}
	_ = c.SetReadDeadline(time.Time{})
	port := binary.BigEndian.Uint16(preamble[:])

	p.mu.Lock()
	ml, ok := p.listeners[port]
	p.mu.Unlock()
	if !ok {
		_, _ = c.Write([]byte{0})
		_ = c.Close()
		return
	}
	if _, err := c.Write([]byte{1}); err != nil {
		_ = c.Close()
		return
	}
	p.bump(&p.tAccepts)
	remote := device.Addr{Tech: device.TechWLAN, MAC: c.RemoteAddr().String()}
	rx, tx := p.connCounters()
	wrapped := &conn{Conn: c, plugin: p, local: p.addr, remote: remote, rx: rx, tx: tx}
	select {
	case ml.accept <- wrapped:
	case <-ml.closed:
		_ = c.Close()
	}
}

// udpLoop answers inquiry probes and records response RTTs.
func (p *Plugin) udpLoop() {
	defer p.wg.Done()
	buf := make([]byte, 64)
	for {
		n, from, err := p.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < 1 {
			continue
		}
		switch buf[0] {
		case probeInquiry:
			if n < 9 {
				continue
			}
			// Echo the probe's timestamp plus our canonical address, so
			// the inquirer can compute the RTT and identify us even
			// behind ephemeral source ports.
			resp := make([]byte, 0, 9+len(p.addr.MAC))
			resp = append(resp, probeResponse)
			resp = append(resp, buf[1:9]...)
			resp = append(resp, p.addr.MAC...)
			_, _ = p.udp.WriteToUDP(resp, from)
			p.bump(&p.tProbeRequests)
		case probeResponse:
			if n < 10 {
				continue
			}
			sent := time.Unix(0, int64(binary.BigEndian.Uint64(buf[1:9])))
			rtt := time.Since(sent)
			mac := string(buf[9:n])
			addr := device.Addr{Tech: device.TechWLAN, MAC: mac}
			p.mu.Lock()
			p.quality[addr] = rttQuality(rtt)
			ctr := p.tProbeReplies
			p.mu.Unlock()
			ctr.Inc()
		}
	}
}

// rttQuality maps an RTT to the 0-255 quality scale: sub-millisecond ~255,
// degrading to the edge value at ~75 ms.
func rttQuality(rtt time.Duration) int {
	ms := rtt.Seconds() * 1000
	q := simnet.QualityMax - int(ms)
	if q < 0 {
		return 0
	}
	return q
}

// conn wraps a TCP connection as a plugin.Conn. The byte counters are
// fixed at creation, so the data path stays lock-free.
type conn struct {
	net.Conn
	plugin *Plugin
	local  device.Addr
	remote device.Addr
	rx, tx *telemetry.Counter
}

var _ plugin.Conn = (*conn)(nil)

func (c *conn) LocalAddr() device.Addr  { return c.local }
func (c *conn) RemoteAddr() device.Addr { return c.remote }

func (c *conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.rx.Add(uint64(n))
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.tx.Add(uint64(n))
	return n, err
}

// Quality returns the plugin's last measurement towards the peer, falling
// back to "healthy" for peers we have no probe data on (an established
// TCP connection is, by definition, working).
func (c *conn) Quality() int {
	if q := c.plugin.QualityTo(c.remote); q > 0 {
		return q
	}
	return simnet.QualityMax - 5
}

// muxListener is one logical port's accept queue.
type muxListener struct {
	plugin *Plugin
	port   uint16
	accept chan plugin.Conn
	closed chan struct{}

	closeOnce sync.Once
}

var _ plugin.Listener = (*muxListener)(nil)

func (ml *muxListener) Accept() (plugin.Conn, error) {
	select {
	case c := <-ml.accept:
		return c, nil
	case <-ml.closed:
		return nil, plugin.ErrClosed
	}
}

func (ml *muxListener) Close() error {
	ml.closeOnce.Do(func() {
		ml.plugin.mu.Lock()
		delete(ml.plugin.listeners, ml.port)
		ml.plugin.mu.Unlock()
		close(ml.closed)
		for {
			select {
			case c := <-ml.accept:
				_ = c.Close()
			default:
				return
			}
		}
	})
	return nil
}
