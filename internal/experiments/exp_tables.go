package experiments

import (
	"fmt"

	"peerhood"
	"peerhood/internal/device"
	"peerhood/internal/phproto"
	"peerhood/internal/storage"
)

// RunMobilityTable reproduces the §3.4.3 mobility-sum table (experiment
// T1): route-stability weights for every pairing of the three classes.
func RunMobilityTable(cfg Config) (Result, error) {
	classes := []device.Mobility{device.Static, device.Hybrid, device.Dynamic}
	t := newTable("PAIR", "CLASSES", "SUM")
	type pair struct {
		a, b device.Mobility
	}
	pairs := []pair{
		{device.Static, device.Static},
		{device.Static, device.Hybrid},
		{device.Hybrid, device.Static},
		{device.Hybrid, device.Hybrid},
		{device.Static, device.Dynamic},
		{device.Dynamic, device.Static},
		{device.Hybrid, device.Dynamic},
		{device.Dynamic, device.Hybrid},
		{device.Dynamic, device.Dynamic},
	}
	for _, p := range pairs {
		t.add(
			fmt.Sprintf("%d + %d", int(p.a), int(p.b)),
			fmt.Sprintf("%s %s", p.a, p.b),
			fmt.Sprintf("%d", int(p.a)+int(p.b)),
		)
	}
	_ = classes
	return Result{
		Table: t.String(),
		Notes: []string{
			"paper: sums 0,1,1,2,3,3,4,4,6 — lower sum = more stable route",
			"measured: identical by construction; the weights are protocol constants",
		},
	}, nil
}

// RunStorageTable reproduces fig 3.6 (experiment F3.6): the five-device
// topology in which A hears B and C directly and learns D via C and E via
// B, with the exact jump counts and bridges of the thesis' table.
func RunStorageTable(cfg Config) (Result, error) {
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: cfg.Seed, Instant: true})
	defer w.Close()

	mk := func(name string, x, y float64) *peerhood.Node {
		n, err := w.NewNode(peerhood.NodeConfig{Name: name, Position: peerhood.Pt(x, y), Mobility: peerhood.Dynamic})
		if err != nil {
			panic(err)
		}
		return n
	}
	a := mk("A", 0, 0)
	b := mk("B", 8, 3)
	c := mk("C", 8, -3)
	d := mk("D", 16, -6)
	e := mk("E", 16, 6)

	w.RunDiscoveryRounds(2)

	nameOf := map[peerhood.Addr]string{
		b.Addr(): "B", c.Addr(): "C", d.Addr(): "D", e.Addr(): "E",
	}
	t := newTable("NEIGHBOUR", "JUMPS", "BRIDGE")
	for _, entry := range a.Devices() {
		best, ok := entry.Best()
		if !ok {
			continue
		}
		bridge := "(direct)"
		if !best.Bridge.IsZero() {
			bridge = nameOf[best.Bridge]
		}
		t.add(nameOf[entry.Info.Addr], fmt.Sprintf("%d", best.Jumps), bridge)
	}
	return Result{
		Table: t.String(),
		Notes: []string{
			"paper (fig 3.6 table): B jumps 0, C jumps 0, D jumps 1 via C, E jumps 1 via B",
			"measured over the live protocol stack after two discovery rounds",
		},
	}, nil
}

// RunQualityEquity reproduces fig 3.9 (experiment F3.9): two 2-hop routes
// to D with equal quality sums (230+230 vs 210+250); the route whose every
// hop clears the 230 threshold must be selected.
func RunQualityEquity(cfg Config) (Result, error) {
	st := storage.New(storage.Config{})
	st.AddSelfAddr(device.Addr{Tech: device.TechBluetooth, MAC: "A"})
	bAddr := device.Addr{Tech: device.TechBluetooth, MAC: "B"}
	cAddr := device.Addr{Tech: device.TechBluetooth, MAC: "C"}
	dAddr := device.Addr{Tech: device.TechBluetooth, MAC: "D"}

	st.UpsertDirect(device.Info{Name: "B", Addr: bAddr}, 230)
	st.UpsertDirect(device.Info{Name: "C", Addr: cAddr}, 210)
	st.MergeNeighborhood(bAddr, 230, []phproto.NeighborEntry{
		{Info: device.Info{Name: "D", Addr: dAddr}, QualitySum: 230, QualityMin: 230},
	})
	st.MergeNeighborhood(cAddr, 210, []phproto.NeighborEntry{
		{Info: device.Info{Name: "D", Addr: dAddr}, QualitySum: 250, QualityMin: 250},
	})

	t := newTable("ROUTE", "HOP QUALITIES", "SUM", "MIN>=230", "SELECTED")
	entry, _ := st.Lookup(dAddr)
	best, _ := entry.Best()
	for _, r := range entry.Routes {
		name := "A-C-D"
		hops := "210 + 250"
		if r.Bridge == bAddr {
			name = "A-B-D"
			hops = "230 + 230"
		}
		sel := ""
		if r == best {
			sel = "<== chosen"
		}
		meets := "no"
		if r.QualityMin >= 230 {
			meets = "yes"
		}
		t.add(name, hops, fmt.Sprintf("%d", r.QualitySum), meets, sel)
	}
	return Result{
		Table: t.String(),
		Notes: []string{
			"paper: \"the route A-C-D won't be accepted due to A-C being lower than the minimum threshold 230\"",
			"measured: selection matches; both candidates are retained as alternates for handover",
		},
	}, nil
}
