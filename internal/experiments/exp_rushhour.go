package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"peerhood/internal/daemon"
	"peerhood/internal/device"
	"peerhood/internal/library"
	"peerhood/internal/tcpnet"
)

// S8 "rush hour": a heavy-traffic soak of the REAL daemon stack — no
// simulator. Several complete peerhoodd instances run over internal/tcpnet
// on loopback (TCP data, UDP discovery), and a swarm of concurrent library
// clients hammers them with the connection lifecycle the thesis' usage
// scenarios imply at peak: connect to a service, stream request/response
// traffic, periodically tear the transport out from under the connection
// and PH_RECONNECT it (the §5.2.1 handover substitution), disconnect,
// repeat. The scenario reports throughput (connections/sec, bytes/sec) and
// tail latency (p50/p99 dial and per-message stream round trip) — the
// numbers the PR 7 allocation flattening exists to protect: every dial
// crosses the phproto hello/ack path, every stream message crosses the
// engine, and every discovery round behind the scenes crosses the storage
// merge, so steady-state garbage in any of them surfaces here as tail
// latency.

// Fixed scenario parameters.
const (
	rushMsgBytes   = 512 // request payload per stream message
	rushMsgsPerCon = 4   // stream round trips per connection
	rushChurnEvery = 3   // every Nth connection exercises PH_RECONNECT
)

func rushDaemons(quick bool) int {
	if quick {
		return 3
	}
	return 4
}

func rushClients(quick bool) int {
	if quick {
		return 48
	}
	return 1200
}

func rushDuration(quick bool) time.Duration {
	if quick {
		return 1500 * time.Millisecond
	}
	return 8 * time.Second
}

// rushNode is one complete daemon instance in the soak.
type rushNode struct {
	d   *daemon.Daemon
	lib *library.Library
	p   *tcpnet.Plugin
}

// rushWorkerStats is one client worker's private tally, merged after the
// run (per-worker accumulation keeps the workers from serialising on a
// shared lock, which would flatten the very contention the soak exists to
// produce).
type rushWorkerStats struct {
	conns      int
	reconnects int
	errs       int
	bytes      int64
	dial       []time.Duration
	stream     []time.Duration
}

// RushHourOutcome carries the raw S8 measurements, exported so the
// benchmark suite can report conns/sec and tail latency as custom metrics
// without re-parsing the rendered table.
type RushHourOutcome struct {
	Daemons    int
	Clients    int
	Peak       int64
	Elapsed    time.Duration
	Conns      int
	Reconnects int
	Errors     int
	Bytes      int64
	DialP50    time.Duration
	DialP99    time.Duration
	StreamP50  time.Duration
	StreamP99  time.Duration
	// Telemetry is the fleet's merged registry snapshot at soak end: the
	// transport- and discovery-side view of the same run, read from the
	// series a live peerhoodd serves on /metrics and phctl stats.
	Telemetry map[string]float64
}

// RunRushHour executes the S8 scenario and renders its table.
func RunRushHour(cfg Config) (Result, error) {
	o, err := RushHourSoak(cfg)
	if err != nil {
		return Result{}, err
	}
	connsPerSec := float64(o.Conns) / o.Elapsed.Seconds()
	mbPerSec := float64(o.Bytes) / (1 << 20) / o.Elapsed.Seconds()
	t := newTable("metric", "value")
	t.addf("daemons|%d", o.Daemons)
	t.addf("concurrent clients|%d", o.Clients)
	t.addf("peak in-flight conns|%d", o.Peak)
	t.addf("duration|%.2fs", o.Elapsed.Seconds())
	t.addf("connections|%d", o.Conns)
	t.addf("connections/sec|%.0f", connsPerSec)
	t.addf("payload bytes|%d", o.Bytes)
	t.addf("throughput|%.2f MiB/s", mbPerSec)
	t.addf("dial p50|%s", o.DialP50)
	t.addf("dial p99|%s", o.DialP99)
	t.addf("stream p50|%s", o.StreamP50)
	t.addf("stream p99|%s", o.StreamP99)
	t.addf("reconnect churns|%d", o.Reconnects)
	t.addf("errors|%d", o.Errors)
	// The transport's own view of the soak, read from the fleet's
	// telemetry registries (the same series a live daemon serves on
	// /metrics): every client dial and PH_RECONNECT crosses the tcpnet
	// accept path, so accepts bound conns from below, and the byte
	// counters include phproto framing the payload tally above excludes.
	t.addf("tcpnet accepts|%.0f", o.Telemetry[`peerhood_tcpnet_accepts_total`])
	t.addf("tcpnet dials ok|%.0f", o.Telemetry[`peerhood_tcpnet_dials_total{result="ok"}`])
	t.addf("tcpnet bytes rx|%.0f", o.Telemetry[`peerhood_tcpnet_bytes_total{dir="rx"}`])
	t.addf("tcpnet bytes tx|%.0f", o.Telemetry[`peerhood_tcpnet_bytes_total{dir="tx"}`])
	t.addf("discovery fetches|%.0f", telemetryPrefixSum(o.Telemetry, `peerhood_discovery_fetches_total`))

	notes := []string{
		fmt.Sprintf("%d daemons served %d connections (%0.f conns/sec, %.2f MiB/s) from %d concurrent clients over real TCP sockets",
			o.Daemons, o.Conns, connsPerSec, mbPerSec, o.Clients),
		fmt.Sprintf("dial p99 %s, stream p99 %s, %d PH_RECONNECT transport churns, %d errors",
			o.DialP99, o.StreamP99, o.Reconnects, o.Errors),
	}
	return Result{ID: "S8", Title: "Rush hour: heavy-traffic tcpnet soak", Table: t.String(), Notes: notes, Seed: cfg.withDefaults().Seed}, nil
}

// RushHourSoak stands up the daemons, runs the client swarm, and returns
// the merged measurements.
func RushHourSoak(cfg Config) (RushHourOutcome, error) {
	cfg = cfg.withDefaults()
	nd := rushDaemons(cfg.Quick)
	nc := rushClients(cfg.Quick)
	dur := rushDuration(cfg.Quick)

	nodes := make([]*rushNode, 0, nd)
	defer func() {
		for _, n := range nodes {
			n.lib.Stop()
			n.d.Stop()
			_ = n.p.Close()
		}
	}()

	// Build the daemons in two passes so every plugin can list every other
	// as a UDP discovery peer (a full mesh, like daemons sharing a LAN).
	plugs := make([]*tcpnet.Plugin, nd)
	for i := range plugs {
		p, err := tcpnet.New(tcpnet.Config{Listen: "127.0.0.1:0", InquiryWait: 150 * time.Millisecond})
		if err != nil {
			return RushHourOutcome{}, fmt.Errorf("S8: plugin %d: %w", i, err)
		}
		plugs[i] = p
	}
	for i, p := range plugs {
		for j, q := range plugs {
			if i != j {
				p.AddPeer(q.Addr().MAC)
			}
		}
	}
	for i, p := range plugs {
		d, err := daemon.New(daemon.Config{Name: fmt.Sprintf("rush%d", i), Mobility: device.Static})
		if err != nil {
			return RushHourOutcome{}, fmt.Errorf("S8: daemon %d: %w", i, err)
		}
		if err := d.AddPlugin(p); err != nil {
			return RushHourOutcome{}, err
		}
		p.Instrument(d.Registry())
		if err := d.Start(false); err != nil {
			return RushHourOutcome{}, err
		}
		lib, err := library.New(library.Config{Daemon: d})
		if err != nil {
			d.Stop()
			return RushHourOutcome{}, err
		}
		if err := lib.Start(); err != nil {
			d.Stop()
			return RushHourOutcome{}, err
		}
		nodes = append(nodes, &rushNode{d: d, lib: lib, p: p})
	}

	// Every daemon serves "echo": one request in, one response out, until
	// the client hangs up. Handlers survive PH_RECONNECT transparently —
	// the virtual connection re-reads across the transport swap.
	for _, n := range nodes {
		if _, err := n.lib.RegisterService("echo", "rush", func(vc *library.VirtualConnection, _ library.ConnectionMeta) {
			defer vc.Close()
			buf := make([]byte, rushMsgBytes)
			for {
				if _, err := io.ReadFull(vc, buf); err != nil {
					return
				}
				if _, err := vc.Write(buf); err != nil {
					return
				}
			}
		}); err != nil {
			return RushHourOutcome{}, err
		}
	}

	// Discovery: UDP inquiry finds the peers, TCP fetches descriptors and
	// service lists. Two rounds so second-hand knowledge settles.
	cfg.logf("S8: %d daemons discovering each other", nd)
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			n.d.RunDiscoveryRound()
		}
	}
	for i, n := range nodes {
		for j, m := range nodes {
			if i == j {
				continue
			}
			entry, ok := n.d.Storage().Lookup(m.p.Addr())
			if !ok {
				return RushHourOutcome{}, fmt.Errorf("S8: daemon %d never discovered daemon %d", i, j)
			}
			if _, ok := entry.Info.FindService("echo"); !ok {
				return RushHourOutcome{}, fmt.Errorf("S8: daemon %d missing daemon %d's service list", i, j)
			}
		}
	}

	// The swarm: nc workers spread across the daemons' libraries, each
	// targeting the other daemons round-robin.
	cfg.logf("S8: launching %d concurrent clients for %v", nc, dur)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var inFlight atomic.Int64
	var peak atomic.Int64
	stats := make([]rushWorkerStats, nc)
	start := time.Now()
	for w := 0; w < nc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			home := nodes[w%nd]
			st := &stats[w]
			req := make([]byte, rushMsgBytes)
			resp := make([]byte, rushMsgBytes)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				target := nodes[(w+1+i%(nd-1))%nd]
				if target == home {
					target = nodes[(w+1)%nd]
				}
				cur := inFlight.Add(1)
				if old := peak.Load(); cur > old {
					peak.CompareAndSwap(old, cur)
				}
				st.runOneConn(home, target.p.Addr(), i, req, resp)
				inFlight.Add(-1)
			}
		}(w)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	// Merge the per-worker tallies.
	var total rushWorkerStats
	for i := range stats {
		st := &stats[i]
		total.conns += st.conns
		total.reconnects += st.reconnects
		total.errs += st.errs
		total.bytes += st.bytes
		total.dial = append(total.dial, st.dial...)
		total.stream = append(total.stream, st.stream...)
	}
	if total.conns == 0 {
		return RushHourOutcome{}, fmt.Errorf("S8: no connection completed")
	}

	fleet := make([]*daemon.Daemon, len(nodes))
	for i, n := range nodes {
		fleet[i] = n.d
	}

	return RushHourOutcome{
		Daemons:    nd,
		Clients:    nc,
		Peak:       peak.Load(),
		Elapsed:    elapsed,
		Conns:      total.conns,
		Reconnects: total.reconnects,
		Errors:     total.errs,
		Bytes:      total.bytes,
		DialP50:    percentile(total.dial, 50),
		DialP99:    percentile(total.dial, 99),
		StreamP50:  percentile(total.stream, 50),
		StreamP99:  percentile(total.stream, 99),
		Telemetry:  telemetrySums(fleet...),
	}, nil
}

// runOneConn performs one full client lifecycle: dial, stream, maybe
// churn the transport with PH_RECONNECT, stream again, close.
func (st *rushWorkerStats) runOneConn(home *rushNode, target device.Addr, i int, req, resp []byte) {
	t0 := time.Now()
	vc, err := home.lib.Connect(target, "echo")
	if err != nil {
		st.errs++
		return
	}
	st.dial = append(st.dial, time.Since(t0))
	defer vc.Close()

	for m := 0; m < rushMsgsPerCon; m++ {
		t1 := time.Now()
		if _, err := vc.Write(req); err != nil {
			st.errs++
			return
		}
		if _, err := io.ReadFull(vc, resp); err != nil {
			st.errs++
			return
		}
		st.stream = append(st.stream, time.Since(t1))
		st.bytes += 2 * rushMsgBytes
	}

	if i%rushChurnEvery == 0 {
		// Handover churn: rebuild the transport with PH_RECONNECT — the
		// §5.2.1 substitution the handover thread performs — and prove the
		// logical connection survives by streaming over the new socket.
		entry, ok := home.d.Storage().Lookup(target)
		if ok {
			if route, has := entry.Best(); has {
				raw, err := home.lib.ConnectVia(library.Via{
					Route:       route,
					Target:      target,
					ServiceName: "echo",
					ConnID:      vc.ID(),
					Reconnect:   true,
				})
				if err == nil {
					vc.Swap(raw)
					st.reconnects++
					t2 := time.Now()
					if _, err := vc.Write(req); err == nil {
						if _, err := io.ReadFull(vc, resp); err == nil {
							st.stream = append(st.stream, time.Since(t2))
							st.bytes += 2 * rushMsgBytes
						}
					}
				} else {
					st.errs++
				}
			}
		}
	}
	st.conns++
}

// percentile returns the p-th percentile of the (unsorted) samples.
func percentile(samples []time.Duration, p int) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := len(samples) * p / 100
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return samples[idx]
}
