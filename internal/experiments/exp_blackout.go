package experiments

import (
	"fmt"
	"time"

	"peerhood"
	"peerhood/internal/clock"
	"peerhood/internal/daemon"
	"peerhood/internal/device"
	"peerhood/internal/events"
	"peerhood/internal/faultplane"
	"peerhood/internal/geo"
	"peerhood/internal/simnet"
)

// RunBlackout implements experiment S4, the urban blackout: the S3
// commuter corridor replayed under scripted failure weather — an
// interference window (impairment quality penalty), two regional
// blackouts (one swallowing the commuter's own neighbourhood, one taking
// the server end dark), and a relay crash/restart (fresh storage epoch,
// forcing peers through the full-resync fallback). Unlike S3's scaled
// clock, S4 runs on a manual clock with every component stepped
// synchronously from one goroutine, so a run is a pure function of its
// seed: two invocations produce byte-identical metrics and fault traces —
// the reproducibility property the OMNeT++ mobility literature argues
// simulator-level impairment models exist to provide.
//
// Reported per handover mode (reactive vs predictive): handovers and the
// predictive share, spurious handovers, sender-observed disruption time,
// stream messages sent/lost, the delta-vs-full neighbourhood sync split
// (full fetches spike after the epoch-changing restart), and event-bus
// delivery/drop counters.
func RunBlackout(cfg Config) (Result, error) {
	t := newTable("MODE", "HANDOVERS", "PREDICTIVE", "SPURIOUS", "DISRUPTION",
		"SENT", "LOST", "FULL SYNC", "DELTA SYNC", "BUS EV", "DEGRADING", "LINK LOST", "BUS DROP")
	var trials []blackoutStats
	for _, predictive := range []bool{false, true} {
		st, err := blackoutTrial(cfg, cfg.Seed, predictive)
		if err != nil {
			return Result{}, err
		}
		mode := "reactive"
		if predictive {
			mode = "predictive"
		}
		t.add(mode,
			fmt.Sprintf("%d", st.handovers),
			fmt.Sprintf("%d", st.predictive),
			fmt.Sprintf("%d", st.spurious),
			fmt.Sprintf("%.1fs", st.disruption.Seconds()),
			fmt.Sprintf("%d", st.sent),
			fmt.Sprintf("%d", st.lost),
			fmt.Sprintf("%d", st.fullFetches),
			fmt.Sprintf("%d", st.deltaFetches),
			fmt.Sprintf("%d", st.busEvents),
			fmt.Sprintf("%d", st.busDegrading),
			fmt.Sprintf("%d", st.busLinkLost),
			fmt.Sprintf("%d", st.busDropped),
		)
		cfg.logf("S4 %s: handovers=%d disruption=%.1fs lost=%d/%d full=%d delta=%d",
			mode, st.handovers, st.disruption.Seconds(), st.lost, st.sent, st.fullFetches, st.deltaFetches)
		trials = append(trials, st)
	}

	notes := []string{
		"manual-clock deterministic replay: same seed => byte-identical metrics and fault trace (asserted by TestBlackoutExperimentDeterministic)",
		"corridor: server at x=0, 6 relays every 3 m, commuter walks 1->22 m and back at 1.4 m/s streaming 64 B every 200 ms (sender-side loss accounting)",
		"script: t=4s interference on commuter<->server (quality -40) cleared at t=10s; t=8s blackout x in [5,13] for 5s (covers the commuter); t=16s crash relay5, t=21s restart with a fresh storage epoch; t=26s blackout x in [-1,6] for 3s (covers the server)",
		fmt.Sprintf("disruption %.1fs reactive vs %.1fs predictive: region-wide blackouts are trigger-independent (no route exists to re-route onto), so prediction buys handover headroom — %d of %d predictive-mode handovers fired proactively — not blackout immunity",
			trials[0].disruption.Seconds(), trials[1].disruption.Seconds(), trials[1].predictive, trials[1].handovers),
		fmt.Sprintf("full-sync fallbacks (%d reactive / %d predictive) combine the epoch-change recovery after relay5's restart, blackout-interrupted sync baselines, and loaded bridges' unsyncable epoch-0 snapshots",
			trials[0].fullFetches, trials[1].fullFetches),
		"storage MaxMissedLoops raised to 8 so a 5 s blackout ages tables without wiping them — recovery uses stale routes re-priced on first contact",
		fmt.Sprintf("sync split and span counts read from the telemetry registries (the series phctl stats serves): %d trace spans recorded in the predictive run, commuter span log byte-identical across same-seed replays (TestBlackoutTraceDeterministic)",
			trials[1].spanCount),
	}
	notes = append(notes, "fault trace (predictive run):")
	notes = append(notes, trials[1].trace...)
	return Result{Table: t.String(), Notes: notes}, nil
}

// blackoutNeededHandovers is the corridor's minimum handover count for the
// out-and-back walk: one per relay transition each way. Handovers beyond
// it count as spurious.
const blackoutNeededHandovers = 12

type blackoutStats struct {
	handovers    int64
	predictive   int64
	spurious     int64
	disruption   time.Duration
	sent, lost   int
	fullFetches  int
	deltaFetches int
	busEvents    int
	busDegrading int
	busLinkLost  int
	busDropped   int
	trace        []string
	// spanTrace is the commuter's rendered trace-span log — handover and
	// sync lifecycles with causal parent links — byte-identical across
	// same-seed runs (pinned by TestBlackoutTraceDeterministic).
	spanTrace string
	spanCount uint64
}

// blackoutTrial runs one deterministic corridor traversal under the S4
// fault script. Everything — discovery rounds, handover steps, stream
// writes, fault events — is driven synchronously from this goroutine
// between manual clock advances; no component runs on a background timer.
func blackoutTrial(cfg Config, seed int64, predictive bool) (blackoutStats, error) {
	const (
		tick     = 200 * time.Millisecond
		msgBytes = 64
		walkOut  = 15 * time.Second // 21 m at 1.4 m/s
		total    = 36 * time.Second // out + back + recovery drain
	)

	clk := clock.NewManual()
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: seed, Clock: clk, Instant: true})
	defer w.Close()

	// S3's short-setup micro-cell profile with a hard edge, made fully
	// deterministic: zero latencies and faults (Instant), unlimited
	// bandwidth (a bandwidth sleep would deadlock the manual clock), and
	// EdgeQuality 225 so the 230 threshold bites at ~8.3 m of the 10 m
	// cell.
	p := simnet.DefaultParams(device.TechBluetooth).Instant()
	p.Bandwidth = 0
	p.EdgeQuality = 225
	p.DiscoveryCycle = time.Second
	// Re-arm the two stochastic knobs that cost no simulated time: dial
	// faults and inquiry misses. They draw from the world's seeded rng in
	// a fixed order (everything runs on one goroutine), so different
	// seeds see different fault luck while the same seed replays exactly.
	p.FaultProb = 0.03
	p.ResponseProb = 0.97
	w.Sim().SetParams(device.TechBluetooth, p)

	mk := func(name string, at peerhood.Point) (*peerhood.Node, error) {
		return w.NewNode(peerhood.NodeConfig{Name: name, Position: at, MaxMissedLoops: 8})
	}
	server, err := mk("server", peerhood.Pt(0, 0))
	if err != nil {
		return blackoutStats{}, err
	}
	backbone := []*peerhood.Node{server}
	relays := make([]*peerhood.Node, 6)
	for i := range relays {
		relays[i], err = mk(fmt.Sprintf("relay%d", i+1), peerhood.Pt(3*float64(i+1), 0))
		if err != nil {
			return blackoutStats{}, err
		}
		backbone = append(backbone, relays[i])
	}
	// SwapWait -1 makes a write on a dead transport fail immediately
	// instead of blocking on the clock (the manual-clock driver is the
	// only goroutine that could advance it): the failed message is the
	// corridor's loss, and recovery is the handover thread's job.
	commuter, err := w.NewNode(peerhood.NodeConfig{
		Name: "commuter", Position: peerhood.Pt(1, 0.5), Mobility: peerhood.Dynamic,
		SwapWait: -1, LinkWindow: 8, MaxMissedLoops: 8,
	})
	if err != nil {
		return blackoutStats{}, err
	}

	if _, err := server.RegisterService("sink", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		defer c.Close()
		buf := make([]byte, 4096)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}); err != nil {
		return blackoutStats{}, err
	}

	w.RunDiscoveryRounds(3)

	conn, err := commuter.Connect(server.Addr(), "sink")
	if err != nil {
		return blackoutStats{}, fmt.Errorf("initial connect: %w", err)
	}
	defer conn.Close()

	th, err := commuter.MonitorHandover(conn, peerhood.HandoverConfig{
		Interval:         tick,
		ManualSteps:      true, // stepped from the walk loop below
		MaxRouteAttempts: 6,
		MaxFailures:      3,
		Predictive:       predictive,
		PredictHorizon:   5 * time.Second,
		PredictCooldown:  time.Second,
	})
	if err != nil {
		return blackoutStats{}, err
	}
	defer th.Stop()

	sub := commuter.Events(0)
	defer sub.Close()

	// The S4 failure weather. The interference impairment carries only a
	// quality penalty: silent frame loss on a pair that also carries
	// discovery and engine handshakes would hang their deadline-free
	// request/response reads (see the faultplane package comment), while
	// a quality sag drives exactly the monitoring/handover machinery the
	// experiment measures.
	run := w.Fault().Load(peerhood.FaultScript{Events: []peerhood.FaultEvent{
		{At: 4 * time.Second, Do: faultplane.Impair{
			From: "commuter", To: "server", Symmetric: true,
			Profile: peerhood.Impairment{QualityPenalty: 40},
		}},
		{At: 8 * time.Second, Do: faultplane.Blackout{
			Region:   peerhood.Rect{Min: geo.Pt(5, -2), Max: geo.Pt(13, 2)},
			Duration: 5 * time.Second,
		}},
		{At: 10 * time.Second, Do: faultplane.ClearImpair{From: "commuter", To: "server"}},
		{At: 16 * time.Second, Do: faultplane.Crash{Node: "relay5"}},
		{At: 21 * time.Second, Do: faultplane.Restart{Node: "relay5"}},
		{At: 26 * time.Second, Do: faultplane.Blackout{
			Region:   peerhood.Rect{Min: geo.Pt(-1, -2), Max: geo.Pt(6, 2)},
			Duration: 3 * time.Second,
		}},
	}})

	commuter.SetModel(peerhood.Walk(peerhood.Pt(1, 0.5), peerhood.Pt(22, 0.5), 1.4))

	var st blackoutStats
	counts := make(map[events.Type]int)
	drain := func() {
		for {
			select {
			case e, ok := <-sub.C():
				if !ok {
					return
				}
				counts[e.Type]++
			default:
				return
			}
		}
	}

	msg := make([]byte, msgBytes)
	start := clk.Now()
	walkEnd := start.Add(2 * walkOut)
	var outageStart time.Time
	inOutage := false
	ticks := int(total / tick)
	for i := 0; i < ticks; i++ {
		clk.Advance(tick)
		run.ApplyDue()
		w.CheckLinks()
		if clk.Since(start) == walkOut {
			commuter.SetModel(peerhood.Walk(peerhood.Pt(22, 0.5), peerhood.Pt(1, 0.5), 1.4))
		}
		if i%5 == 0 { // commuter discovers every simulated second
			commuter.Daemon().RunDiscoveryRound()
		}
		if i%10 == 0 { // the backbone refreshes every two seconds
			for _, n := range backbone {
				n.Daemon().RunDiscoveryRound()
			}
		}
		if walking := clk.Since(start) <= 2*walkOut; walking {
			st.sent++
			if _, werr := conn.Write(msg); werr != nil {
				st.lost++
				if !inOutage {
					inOutage, outageStart = true, clk.Now()
				}
			} else if inOutage {
				st.disruption += clk.Since(outageStart)
				inOutage = false
			}
		}
		th.Step()
		drain()
	}
	// An outage still open when the stream stops is credited only up to
	// the end of the send window: the drain ticks exist to let recovery
	// machinery settle, not to inflate the disruption metric.
	if inOutage {
		st.disruption += walkEnd.Sub(outageStart)
	}
	drain()

	hs := th.Stats()
	st.handovers = hs.Handovers
	st.predictive = hs.PredictiveHandovers
	if extra := hs.Handovers - blackoutNeededHandovers; extra > 0 {
		st.spurious = extra
	}
	for _, n := range counts {
		st.busEvents += n
	}
	st.busDegrading = counts[events.LinkDegrading]
	st.busLinkLost = counts[events.LinkLost]
	st.busDropped = sub.Dropped()
	st.trace = w.Fault().Trace()
	// The sync split is read from the fleet's telemetry registries — the
	// same `peerhood_discovery_fetches_total` series phctl stats exposes —
	// instead of a private tally. relay5's pre-crash fetches die with its
	// replaced daemon; its restart is what drives everyone ELSE full.
	fleet := make([]*daemon.Daemon, 0, len(backbone)+1)
	for _, n := range backbone {
		fleet = append(fleet, n.Daemon())
	}
	fleet = append(fleet, commuter.Daemon())
	tm := telemetrySums(fleet...)
	st.fullFetches = int(tm[`peerhood_discovery_fetches_total{kind="full"}`])
	st.deltaFetches = int(tm[`peerhood_discovery_fetches_total{kind="delta"}`])
	st.spanTrace = spanLog(commuter.Daemon())
	st.spanCount = spanTotal(fleet...)
	if err := run.Err(); err != nil {
		return blackoutStats{}, err
	}
	return st, nil
}
