package experiments

import (
	"fmt"
	"sync"
	"time"

	"peerhood"
	"peerhood/internal/device"
	"peerhood/internal/handover"
	"peerhood/internal/simnet"
)

// RunCorridorWalk reproduces the §5.2.1 corridor observation (experiment
// E3): at walking speed, Bluetooth link quality collapses within seconds
// while the bridged interconnection needs 4-15 s to establish — "more than
// probably the connection will be lost before we achieve the second route
// connection establishment". Sweeping the walking speed and the
// connection-establishment profile shows the §5.3 conclusion: routing
// handover only works for technologies with short connection setup.
func RunCorridorWalk(cfg Config) (Result, error) {
	type profile struct {
		name               string
		connectMin, cMax   time.Duration
		faultProb          float64
		perDialDescription string
	}
	profiles := []profile{
		{"bluetooth (2-9s/dial)", 2 * time.Second, 9 * time.Second, 0.16, "thesis hardware"},
		{"fast (0.3-1s/dial)", 300 * time.Millisecond, time.Second, 0.05, "short-setup technology"},
	}
	speeds := []float64{0.7, 1.4, 2.8}
	trials := cfg.trials(8, 2)
	const messages = 30

	t := newTable("PROFILE", "SPEED m/s", "HANDOVER OK", "TASK COMPLETE", "MSGS DELIVERED (of 30)", "MEAN RECOVERY GAP")
	for _, p := range profiles {
		for _, speed := range speeds {
			okCount, completeCount, deliveredSum := 0, 0, 0
			var gaps []time.Duration
			for trial := 0; trial < trials; trial++ {
				ok, delivered, gap, err := corridorTrial(cfg, cfg.Seed+int64(trial)*131+int64(speed*10), p.connectMin, p.cMax, p.faultProb, speed, messages)
				if err != nil {
					return Result{}, err
				}
				if ok {
					okCount++
					gaps = append(gaps, gap)
				}
				if delivered >= messages {
					completeCount++
				}
				deliveredSum += delivered
			}
			meanGap := "-"
			if len(gaps) > 0 {
				var sum time.Duration
				for _, g := range gaps {
					sum += g
				}
				meanGap = secs(sum / time.Duration(len(gaps)))
			}
			t.add(p.name,
				fmt.Sprintf("%.1f", speed),
				fmt.Sprintf("%d/%d", okCount, trials),
				fmt.Sprintf("%d/%d", completeCount, trials),
				fmt.Sprintf("%.1f", float64(deliveredSum)/float64(trials)),
				meanGap,
			)
			cfg.logf("%s speed=%.1f: ok=%d/%d complete=%d/%d delivered=%.1f",
				p.name, speed, okCount, trials, completeCount, trials, float64(deliveredSum)/float64(trials))
		}
	}

	return Result{
		Table: t.String(),
		Notes: []string{
			"paper: \"we can lose the connection in few seconds with a normal walking speed ... the interconnection time would be from 4 to 15 seconds\"",
			"paper: \"the Routing Handover is not suitable for all network technologies but only those [that] have a short connection establishment\" (§5.3)",
			"expected shape: success falls with speed on Bluetooth; the fast profile keeps the connection alive at walking speed",
		},
	}, nil
}

// corridorTrial runs one walk: server at the origin, bridges along the
// corridor, client walking away while sending one message per second.
// Returns whether a routing handover completed, messages delivered, and
// the outage gap between quality collapse and recovery.
func corridorTrial(cfg Config, seed int64, cMin, cMax time.Duration, fault float64, speed float64, messages int) (bool, int, time.Duration, error) {
	w := peerhood.NewWorld(peerhood.WorldConfig{
		Seed:              seed,
		TimeScale:         cfg.TimeScale,
		LinkCheckInterval: 500 * time.Millisecond,
	})
	defer w.Close()
	clk := w.Clock()

	// Override the Bluetooth connection profile for this sweep cell.
	p := simnet.DefaultParams(device.TechBluetooth)
	p.ConnectMin, p.ConnectMax, p.FaultProb = cMin, cMax, fault
	w.Sim().SetParams(device.TechBluetooth, p)

	server, err := w.NewNode(peerhood.NodeConfig{Name: "server", Position: peerhood.Pt(0, 0), AutoDiscover: true})
	if err != nil {
		return false, 0, 0, err
	}
	if _, err := w.NewNode(peerhood.NodeConfig{Name: "bridge1", Position: peerhood.Pt(6, 0), AutoDiscover: true}); err != nil {
		return false, 0, 0, err
	}
	if _, err := w.NewNode(peerhood.NodeConfig{Name: "bridge2", Position: peerhood.Pt(12, 0), AutoDiscover: true}); err != nil {
		return false, 0, 0, err
	}
	// The walker's writes fail after a short grace instead of buffering
	// indefinitely — the thesis' stack loses data on disconnection (§6).
	client, err := w.NewNode(peerhood.NodeConfig{
		Name: "walker", Position: peerhood.Pt(1, 0), Mobility: peerhood.Dynamic,
		SwapWait: 2 * time.Second, AutoDiscover: true,
	})
	if err != nil {
		return false, 0, 0, err
	}

	var mu sync.Mutex
	delivered := 0
	if _, err := server.RegisterService("print", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		defer c.Close()
		buf := make([]byte, 64)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if n > 0 {
				mu.Lock()
				delivered++
				mu.Unlock()
			}
		}
	}); err != nil {
		return false, 0, 0, err
	}

	// Warm up routes while the walker is still near the server.
	w.RunDiscoveryRounds(3)

	conn, err := client.Connect(server.Addr(), "print")
	if err != nil {
		// The initial connect itself can fault; count as a failed trial
		// with nothing delivered.
		return false, 0, 0, nil
	}
	defer conn.Close()

	var (
		evMu      sync.Mutex
		lowAt     time.Time
		doneAt    time.Time
		handovers int
	)
	th, err := client.MonitorHandover(conn, peerhood.HandoverConfig{
		Observer: func(e peerhood.HandoverEvent, detail string) {
			evMu.Lock()
			defer evMu.Unlock()
			switch e {
			case handover.EventQualityLow:
				if lowAt.IsZero() {
					lowAt = clk.Now()
				}
			case handover.EventHandoverDone:
				if doneAt.IsZero() {
					doneAt = clk.Now()
				}
				handovers++
			}
		},
	})
	if err != nil {
		return false, 0, 0, err
	}
	defer th.Stop()

	// Start walking down the corridor — past the last relay's coverage, so
	// a slow handover runs out of road (the thesis' "connection lost
	// before we achieve the second route connection establishment").
	client.SetModel(peerhood.Walk(peerhood.Pt(1, 0), peerhood.Pt(25, 0), speed))

	for i := 0; i < messages; i++ {
		// The thesis' client keeps printing regardless; messages written
		// into a dead link are simply lost.
		_, _ = conn.Write([]byte(fmt.Sprintf("msg-%02d", i)))
		clk.Sleep(time.Second)
	}
	clk.Sleep(2 * time.Second)

	evMu.Lock()
	ok := handovers > 0
	var gap time.Duration
	if ok && !lowAt.IsZero() {
		gap = doneAt.Sub(lowAt)
	}
	evMu.Unlock()
	mu.Lock()
	got := delivered
	mu.Unlock()
	return ok, got, gap, nil
}
