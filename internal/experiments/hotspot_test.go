package experiments

import (
	"reflect"
	"strings"
	"testing"

	"peerhood"
)

// TestHotspotExperimentDeterministic pins S5's replay guarantee: the whole
// experiment — all four modes' metrics and the notes — is a pure function
// of its seed. Two consecutive invocations must agree byte for byte.
func TestHotspotExperimentDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Quick: true}
	r1, err := Run("S5", cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, err := Run("S5", cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if r1.Table != r2.Table {
		t.Fatalf("same-seed tables differ:\n--- first\n%s--- second\n%s", r1.Table, r2.Table)
	}
	if !reflect.DeepEqual(r1.Notes, r2.Notes) {
		t.Fatalf("same-seed notes differ:\n%v\n%v", r1.Notes, r2.Notes)
	}
}

// TestHotspotExperimentShape is the S5 acceptance property: vertical
// handover (dual-radio, bandwidth-first policy) cuts disruption against
// the single-radio wlan-only baseline, rides the preferred bearer for a
// meaningful share of the stream, and the predictive trigger removes the
// below-threshold stream ticks the reactive trigger tolerates.
func TestHotspotExperimentShape(t *testing.T) {
	cfg := Config{Seed: 42, Quick: true}.withDefaults()
	run := func(m hotspotMode) hotspotStats {
		t.Helper()
		st, err := hotspotTrial(cfg, cfg.Seed, m)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		return st
	}
	gprs := run(hotspotMode{name: "gprs-only", techs: []peerhood.Tech{peerhood.GPRS}})
	wlan := run(hotspotMode{name: "wlan-only", techs: []peerhood.Tech{peerhood.WLAN}})
	reactive := run(hotspotMode{name: "dual/reactive", techs: []peerhood.Tech{peerhood.WLAN, peerhood.GPRS}})
	predictive := run(hotspotMode{name: "dual/predictive", techs: []peerhood.Tech{peerhood.WLAN, peerhood.GPRS}, predictive: true})

	// The umbrella baseline never needs a handover and never rides WLAN.
	if gprs.handovers != 0 || gprs.wlanBytes != 0 || gprs.disruption != 0 {
		t.Fatalf("gprs-only baseline not clean: %+v", gprs)
	}
	// The island-hopping baseline goes dark between islands.
	if wlan.disruption == 0 || wlan.lost == 0 {
		t.Fatalf("wlan-only baseline saw no gaps: %+v", wlan)
	}
	// Vertical handover is the acceptance headline: both dual modes must
	// switch bearers in both directions and cut disruption against the
	// single-radio island hopper.
	for _, st := range []hotspotStats{reactive, predictive} {
		if st.verticalUp == 0 || st.verticalDown == 0 {
			t.Fatalf("dual mode made no vertical switches: %+v", st)
		}
		if st.busVertical == 0 {
			t.Fatal("no VerticalHandover events on the bus")
		}
		if st.disruption*2 >= wlan.disruption {
			t.Fatalf("vertical handover did not cut disruption: dual %v vs wlan-only %v",
				st.disruption, wlan.disruption)
		}
		if st.wlanBytes == 0 {
			t.Fatalf("dual mode carried nothing on the preferred bearer: %+v", st)
		}
		if st.lost*10 > st.sent {
			t.Fatalf("dual mode lost too much: %+v", st)
		}
	}
	// Prediction moves the down-switch ahead of the 230 crossing.
	if predictive.predictive == 0 {
		t.Fatalf("predictive mode never fired proactively: %+v", predictive)
	}
	if predictive.lowTicks >= reactive.lowTicks {
		t.Fatalf("prediction did not reduce below-threshold stream ticks: predictive %d vs reactive %d",
			predictive.lowTicks, reactive.lowTicks)
	}
}

// TestHotspotLegacyInterop pins the acceptance requirement that peers
// without sibling advertisements still fully interoperate. A pre-identity
// peer is modelled with NodeConfig.DisableIdentity: it hangs up on
// InfoDeviceEx exactly as a legacy daemon would (forcing the modern
// fetcher through the legacy-exchange fallback), sends sync requests
// without the capability flag (forcing the modern responder onto stripped
// wire forms), and advertises no siblings.
func TestHotspotLegacyInterop(t *testing.T) {
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: 9, Instant: true})
	defer w.Close()
	for _, tech := range []peerhood.Tech{peerhood.WLAN, peerhood.GPRS} {
		w.Sim().SetParams(tech, ArchipelagoParams(tech))
	}

	legacy, err := w.NewNode(peerhood.NodeConfig{
		Name: "legacy", Position: peerhood.Pt(0, 0),
		Techs:           []peerhood.Tech{peerhood.WLAN, peerhood.GPRS},
		DisableIdentity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	modern, err := w.NewNode(peerhood.NodeConfig{
		Name: "modern", Position: peerhood.Pt(5, 0),
		Techs: []peerhood.Tech{peerhood.WLAN, peerhood.GPRS},
	})
	if err != nil {
		t.Fatal(err)
	}

	echo := func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		defer c.Close()
		buf := make([]byte, 64)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}
	if _, err := legacy.RegisterService("echo", "", echo); err != nil {
		t.Fatal(err)
	}
	if _, err := modern.RegisterService("echo", "", echo); err != nil {
		t.Fatal(err)
	}

	w.RunDiscoveryRounds(3)

	// Modern -> legacy: both interfaces discovered as independent rows
	// (no identity to group them), service reachable, preference a no-op.
	lgprs, _ := legacy.AddrFor(peerhood.GPRS)
	lwlan, _ := legacy.AddrFor(peerhood.WLAN)
	for _, a := range []peerhood.Addr{lgprs, lwlan} {
		if _, ok := modern.LookupDevice(a); !ok {
			t.Fatalf("modern node did not discover legacy interface %v", a)
		}
	}
	if sibs := modern.SiblingsOf(lgprs); len(sibs) != 0 {
		t.Fatalf("legacy peer grew siblings: %v", sibs)
	}
	conn, err := modern.Connect(lgprs, "echo", peerhood.WithTech(peerhood.WLAN))
	if err != nil {
		t.Fatalf("modern->legacy connect: %v", err)
	}
	if conn.Target() != lgprs {
		t.Fatalf("WithTech against a legacy peer retargeted to %v, want no-op %v", conn.Target(), lgprs)
	}
	roundTrip(t, conn)

	// Legacy -> modern: the no-flag fetcher receives stripped wire forms
	// and keeps full awareness of a sibling-advertising peer.
	mgprs, _ := modern.AddrFor(peerhood.GPRS)
	mwlan, _ := modern.AddrFor(peerhood.WLAN)
	for _, a := range []peerhood.Addr{mgprs, mwlan} {
		e, ok := legacy.LookupDevice(a)
		if !ok {
			t.Fatalf("legacy node did not discover modern interface %v", a)
		}
		if len(e.Info.Siblings) != 0 {
			t.Fatalf("stripped wire form leaked siblings to the legacy node: %v", e.Info.Siblings)
		}
	}
	conn2, err := legacy.Connect(mwlan, "echo")
	if err != nil {
		t.Fatalf("legacy->modern connect: %v", err)
	}
	roundTrip(t, conn2)
}

func roundTrip(t *testing.T, conn *peerhood.Connection) {
	t.Helper()
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 8)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("read: %v", err)
	}
}

// TestHotspotExperimentTable smoke-checks the rendered result.
func TestHotspotExperimentTable(t *testing.T) {
	res, err := Run("S5", Config{Seed: 42, Quick: true})
	if err != nil {
		t.Fatalf("Run(S5): %v", err)
	}
	for _, mode := range []string{"gprs-only", "wlan-only", "dual/reactive", "dual/predictive", "dual/predictive+cont"} {
		if !strings.Contains(res.Table, mode) {
			t.Fatalf("table missing %s row:\n%s", mode, res.Table)
		}
	}
}

// TestHotspotContinuityZeroLoss is the continuity acceptance gate: on the
// full S5 walk — vertical up- and down-switches included — the
// predictive+continuity mode must resume (not restart) every handover and
// deliver the stream exactly once: zero bytes dropped, zero bytes
// duplicated, every delivered byte matching the sender's pattern, all
// within the 4 KiB send window it was configured with.
func TestHotspotContinuityZeroLoss(t *testing.T) {
	cfg := Config{Seed: 42, Quick: true}.withDefaults()
	st, err := hotspotTrial(cfg, cfg.Seed, hotspotMode{
		name:       "dual/predictive+cont",
		techs:      []peerhood.Tech{peerhood.WLAN, peerhood.GPRS},
		predictive: true,
		continuity: true,
	})
	if err != nil {
		t.Fatalf("continuity trial: %v", err)
	}
	if st.verticalUp == 0 || st.verticalDown == 0 {
		t.Fatalf("walk exercised no vertical handover: up=%d down=%d", st.verticalUp, st.verticalDown)
	}
	if st.resumed == 0 {
		t.Fatalf("no handover resumed; all fell back to lossy restart: %+v", st)
	}
	if st.lost != 0 {
		t.Fatalf("continuity mode lost %d messages", st.lost)
	}
	if st.contDropped != 0 {
		t.Fatalf("dropped %d bytes across handover (want 0)", st.contDropped)
	}
	if st.contDupBytes != 0 {
		t.Fatalf("delivered %d duplicate bytes (want 0)", st.contDupBytes)
	}
	if st.contStreamErrs != 0 {
		t.Fatalf("%d delivered bytes disagree with the sender's pattern", st.contStreamErrs)
	}
	if st.contHighWater > 4096 {
		t.Fatalf("send window high water %d exceeds the 4096-byte bound", st.contHighWater)
	}
}
