package experiments

import (
	"fmt"
	"testing"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/phproto"
	"peerhood/internal/rng"
	"peerhood/internal/simnet"
	"peerhood/internal/storage"
)

// TestShardedPlazaByteTraffic is the S2 byte-traffic scenario ported onto
// the sharded substrate: a static plaza crowd discovers neighbours
// (AutoLink building the links), every node keeps a real DeviceStorage,
// and each discovered pair then runs the actual neighbourhood-sync wire
// protocol over sharded ShardConn streams. The S2 claim carries over
// unchanged: the first contact pays the full-table exchange, the
// steady-state round moves only versioned deltas — strictly fewer bytes —
// and every byte is accounted in the sharded world's stats.
func TestShardedPlazaByteTraffic(t *testing.T) {
	const n = 24
	type pair struct{ from, to simnet.NodeID }
	var pairs []pair
	seen := make(map[[2]simnet.NodeID]bool)
	sw := simnet.NewShardedWorld(simnet.ShardedConfig{
		Seed:     42,
		AutoLink: true,
		OnDiscovery: func(at time.Duration, node simnet.NodeID, tech device.Tech, res []simnet.ShardInquiry) {
			for _, r := range res {
				a, b := node, r.Node
				if b < a {
					a, b = b, a
				}
				if k := [2]simnet.NodeID{a, b}; !seen[k] {
					seen[k] = true
					pairs = append(pairs, pair{from: node, to: r.Node})
				}
			}
		},
	})
	defer sw.Close()

	src := rng.New(42)
	const side = 60.0
	for i := 0; i < n; i++ {
		if _, err := sw.AddNode(simnet.ShardNodeSpec{
			Name:           fmt.Sprintf("s2s-%02d", i),
			Model:          mobility.Static{At: geo.Pt(src.Uniform(0, side), src.Uniform(0, side))},
			Techs:          []device.Tech{device.TechWLAN},
			DiscoveryEvery: 2 * time.Second,
			DiscoveryPhase: time.Duration(1+i%4) * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 6; s++ {
		sw.Step()
	}
	if len(pairs) == 0 || sw.ActiveLinks() == 0 {
		t.Fatalf("plaza formed no links (%d pairs, %d links)", len(pairs), sw.ActiveLinks())
	}

	// Every node carries a real DeviceStorage advertising a few devices of
	// its own, and listens on the daemon port like any PeerHood node.
	stores := make([]*storage.Storage, n)
	listeners := make([]*simnet.ShardListener, n)
	for i := range stores {
		st := storage.New(storage.Config{Clock: clock.NewManual()})
		self := device.Addr{Tech: device.TechWLAN, MAC: sw.NodeName(simnet.NodeID(i))}
		st.AddSelfAddr(self)
		for j := 0; j < 5; j++ {
			nm := fmt.Sprintf("%s-dev%d", self.MAC, j)
			st.UpsertDirect(device.Info{Name: nm, Addr: device.Addr{Tech: device.TechWLAN, MAC: nm}}, 200+j)
		}
		stores[i] = st
		l, err := sw.Listen(simnet.NodeID(i), device.TechWLAN, device.PortDaemon)
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
	}

	// One stream per discovered pair, held across rounds like a daemon's
	// sync sessions; this single-goroutine harness plays both roles, so it
	// keeps both endpoints. The dial side is the node that discovered.
	type session struct {
		p          pair
		cli, srv   *simnet.ShardConn
		epoch, gen uint64
	}
	sessions := make([]*session, 0, len(pairs))
	for _, p := range pairs {
		c, err := sw.Dial(p.from, p.to, device.TechWLAN, device.PortDaemon)
		if err != nil {
			// AutoLink links can drop between supersteps; skip such pairs.
			continue
		}
		sconn, err := listeners[p.to].Accept()
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, &session{p: p, cli: c, srv: sconn})
	}
	if len(sessions) == 0 {
		t.Fatal("no sync sessions established")
	}

	// syncRound runs one full request/response sync cycle on every
	// session, serving responses from the remote node's storage, and
	// returns the bytes the sharded world moved for it.
	syncRound := func() int64 {
		before := sw.Stats().BytesWritten
		for _, s := range sessions {
			req := &phproto.NeighborhoodSyncRequest{Epoch: s.epoch, Gen: s.gen, Flags: phproto.SyncFlagSiblings}
			if err := phproto.Write(s.cli, req); err != nil {
				t.Fatal(err)
			}
			msg, err := phproto.Read(s.srv)
			if err != nil {
				t.Fatal(err)
			}
			rq, ok := msg.(*phproto.NeighborhoodSyncRequest)
			if !ok {
				t.Fatalf("server read %T, want the sync request", msg)
			}
			resp := stores[s.p.to].SyncResponse(rq.Epoch, rq.Gen, rq.Flags&phproto.SyncFlagSiblings != 0)
			if err := phproto.Write(s.srv, resp); err != nil {
				t.Fatal(err)
			}
			msg, err = phproto.Read(s.cli)
			if err != nil {
				t.Fatal(err)
			}
			sync, ok := msg.(*phproto.NeighborhoodSync)
			if !ok {
				t.Fatalf("expected a sync response, got %T", msg)
			}
			s.epoch, s.gen = sync.Epoch, sync.ToGen
		}
		return sw.Stats().BytesWritten - before
	}

	fullBytes := syncRound()
	if fullBytes == 0 {
		t.Fatal("first-contact round moved no bytes")
	}
	deltaBytes := syncRound()
	if deltaBytes == 0 || deltaBytes >= fullBytes {
		t.Fatalf("steady-state round moved %d bytes, first contact %d; deltas must cost strictly less",
			deltaBytes, fullBytes)
	}
	st := sw.Stats()
	if st.MessagesDelivered < int64(4*len(sessions)) {
		t.Fatalf("delivered %d frames over %d sessions, want at least %d",
			st.MessagesDelivered, len(sessions), 4*len(sessions))
	}
}
