package experiments

import (
	"fmt"
	"time"

	"peerhood"
	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/metrics"
	"peerhood/internal/mobility"
	"peerhood/internal/rng"
)

// RunPlaza is experiment S2, "dense plaza": a high-count, low-churn crowd —
// the workload where re-transmitting whole DeviceStorages every round is
// almost pure waste, because in a mostly static neighbourhood almost
// nothing a peer sends has changed since the last fetch. It runs the same
// scenario twice per churn level — once with the versioned delta sync and
// once forced to the legacy full exchange — and reports discovery bytes per
// round and merge time for each, plus a churn sweep (fraction of the crowd
// walking) showing delta cost degrading gracefully toward full-sync cost as
// churn approaches 100%.
func RunPlaza(cfg Config) (Result, error) {
	nodes := 120
	measured := 3
	warmup := 3
	churnLevels := []float64{0, 0.10, 0.50, 1.0}
	side := 30.0
	if cfg.Quick {
		nodes = 40
		measured = 2
		warmup = 2
		churnLevels = []float64{0, 1.0}
		side = 18.0
	}
	plaza := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(side, side)}

	type trial struct {
		bytesPerRound float64
		mergePerRound time.Duration
		deltaFetches  int
		fullFetches   int
	}

	runTrial := func(fullSync bool, churn float64) (trial, error) {
		w := peerhood.NewWorld(peerhood.WorldConfig{
			Seed:      cfg.Seed,
			TimeScale: cfg.TimeScale,
			Instant:   true,
		})
		defer w.Close()
		clk := w.Clock()
		// The fetch payloads are what S2 measures, not their transfer
		// time; lift the bandwidth cap so rounds do not sleep on it.
		for _, tech := range device.Techs() {
			p := w.Sim().Params(tech)
			p.Bandwidth = 0
			w.Sim().SetParams(tech, p)
		}

		src := rng.New(cfg.Seed)
		moving := int(churn * float64(nodes))
		all := make([]*peerhood.Node, nodes)
		for i := range all {
			start := geo.Pt(src.Uniform(plaza.Min.X, plaza.Max.X), src.Uniform(plaza.Min.Y, plaza.Max.Y))
			nc := peerhood.NodeConfig{
				Name:          fmt.Sprintf("s2-%04d", i),
				Mobility:      peerhood.Static,
				Position:      start,
				DisableBridge: true,
				FullSyncOnly:  fullSync,
				// Fetch every round: total environment awareness stays
				// per-round fresh in both modes; the sync protocol is the
				// only variable.
				ServiceCheckInterval: 0,
			}
			if i < moving {
				nc.Mobility = peerhood.Dynamic
				nc.Model = mobility.NewRandomWaypoint(start, plaza, 0.7, 2.0, 2*time.Second, src.Fork())
			}
			n, err := w.NewNode(nc)
			if err != nil {
				return trial{}, err
			}
			if _, err := n.RegisterService("presence", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
				_ = c.Close()
			}); err != nil {
				return trial{}, err
			}
			all[i] = n
		}

		step := func() {
			clk.Sleep(2 * time.Second) // simulated: the walkers walk
		}
		w.RunDiscoveryRounds(warmup)
		step()

		var t trial
		var traffic metrics.ByteCounter
		for r := 0; r < measured; r++ {
			var roundBytes int64
			for _, n := range all {
				for _, rep := range n.Daemon().RunDiscoveryRound() {
					roundBytes += rep.SyncBytes
					t.mergePerRound += rep.MergeTime
					t.deltaFetches += rep.DeltaFetches
					t.fullFetches += rep.FullFetches
				}
			}
			traffic.AddRound(roundBytes)
			step()
		}
		t.bytesPerRound = traffic.AvgPerRound()
		t.mergePerRound /= time.Duration(measured)
		return t, nil
	}

	t := newTable("CHURN", "SYNC", "BYTES/ROUND", "KB/ROUND/NODE", "MERGE MS/ROUND", "DELTA FETCHES", "FULL FETCHES", "VS FULL")
	var lowChurnReduction float64
	for _, churn := range churnLevels {
		cfg.logf("S2: churn %.0f%%, %d nodes", churn*100, nodes)
		full, err := runTrial(true, churn)
		if err != nil {
			return Result{}, err
		}
		delta, err := runTrial(false, churn)
		if err != nil {
			return Result{}, err
		}
		ratio := 0.0
		if delta.bytesPerRound > 0 {
			ratio = full.bytesPerRound / delta.bytesPerRound
		}
		if churn == churnLevels[0] {
			lowChurnReduction = ratio
		}
		for _, row := range []struct {
			mode string
			tr   trial
			vs   string
		}{
			{"full", full, "1.0x"},
			{"delta", delta, fmt.Sprintf("%.1fx less", ratio)},
		} {
			t.add(
				fmt.Sprintf("%.0f%%", churn*100),
				row.mode,
				fmt.Sprintf("%.0f", row.tr.bytesPerRound),
				fmt.Sprintf("%.2f", row.tr.bytesPerRound/1024/float64(nodes)),
				fmt.Sprintf("%.2f", float64(row.tr.mergePerRound.Microseconds())/1000),
				fmt.Sprintf("%d", row.tr.deltaFetches),
				fmt.Sprintf("%d", row.tr.fullFetches),
				row.vs,
			)
		}
	}

	return Result{
		Table: t.String(),
		Notes: []string{
			fmt.Sprintf("measured: at the lowest churn level delta sync moves %.1fx fewer bytes per round than retransmitting full DeviceStorages", lowChurnReduction),
			"delta cost grows with churn and approaches full-sync cost when the whole crowd moves — per-round traffic scales with change rate, not neighbourhood size",
			"paper: fig 3.12's re-check interval saves fetches; delta sync makes the fetches that remain proportional to what actually changed",
		},
	}, nil
}
