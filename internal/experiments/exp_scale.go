package experiments

import (
	"fmt"
	"time"

	"peerhood"
	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/metrics"
	"peerhood/internal/mobility"
	"peerhood/internal/rng"
)

// RunScale is experiment S1, "city block": the scale scenario the thesis'
// handful-of-laptops testbed could never reach. It packs a large
// pedestrian crowd — 1,000 mobile Bluetooth nodes by default — into a
// 250x250 m city block, drives full discovery rounds and link maintenance
// (establish, move, reap, re-establish) over the simulated substrate, and
// reports wall-clock throughput together with spatial-grid index
// statistics. With the pre-grid linear scan one discovery round costs
// O(N^2) distance checks; the grid's 3x3-cell lookups make the same round
// O(N * density), which this experiment quantifies via the candidates
// counter.
func RunScale(cfg Config) (Result, error) {
	nodes := 1000
	rounds := 3
	sweeps := 6
	if cfg.Quick {
		nodes = 250
		rounds = 2
		sweeps = 3
	}

	w := peerhood.NewWorld(peerhood.WorldConfig{
		Seed:      cfg.Seed,
		TimeScale: cfg.TimeScale,
		Instant:   true,
	})
	defer w.Close()
	clk := w.Clock()
	// Information fetches are part of the workload, but their payload
	// transfer time is not what S1 measures; lift the bandwidth cap so
	// rounds/sec reflects discovery and storage work.
	for _, tech := range device.Techs() {
		p := w.Sim().Params(tech)
		p.Bandwidth = 0
		w.Sim().SetParams(tech, p)
	}

	block := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(250, 250)}
	src := rng.New(cfg.Seed)

	cfg.logf("S1: creating %d nodes", nodes)
	setupStart := time.Now()
	all := make([]*peerhood.Node, nodes)
	for i := range all {
		start := geo.Pt(src.Uniform(block.Min.X, block.Max.X), src.Uniform(block.Min.Y, block.Max.Y))
		n, err := w.NewNode(peerhood.NodeConfig{
			Name:     fmt.Sprintf("s1-%04d", i),
			Mobility: peerhood.Dynamic,
			// Pedestrians wandering the block at 0.7-2 m/s.
			Model: mobility.NewRandomWaypoint(start, block, 0.7, 2.0, 2*time.Second, src.Fork()),
			// The bridge's relay goroutines are pointless overhead at this
			// density (§4 names disabling it as the battery-saving mode);
			// every pair that matters is in direct coverage.
			DisableBridge: true,
			// Cache fetched service lists: at city-block density a
			// per-round re-fetch of every neighbour would dominate the
			// run (fig 3.12's motivation, at scale).
			ServiceCheckInterval: 100 * time.Hour,
		})
		if err != nil {
			return Result{}, err
		}
		if _, err := n.RegisterService("ping", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
			defer c.Close()
			buf := make([]byte, 64)
			for {
				if _, err := c.Read(buf); err != nil {
					return
				}
			}
		}); err != nil {
			return Result{}, err
		}
		all[i] = n
	}
	setup := time.Since(setupStart)

	// Phase 1: full discovery rounds across the crowd.
	cfg.logf("S1: running %d discovery rounds", rounds)
	w.Sim().ResetStats()
	discStart := time.Now()
	w.RunDiscoveryRounds(rounds)
	disc := time.Since(discStart)
	st := w.Sim().Stats()

	avgCand := float64(st.InquiryCandidates) / float64(st.Inquiries)

	// Phase 2: link maintenance under mobility, scripted like a crosswalk.
	// The crowd pauses (a fresh discovery round sees current positions and
	// links form), walks (CheckLinks reaps out-of-range links), then
	// pauses again (discovery refreshes storage, links re-form) — the
	// discovery+reconnect half of the thesis' handover loop, at scale.
	freeze := func() {
		for _, n := range all {
			n.SetModel(nil) // static at the current position
		}
	}
	unfreeze := func() {
		for _, n := range all {
			n.SetModel(mobility.NewRandomWaypoint(n.Position(), block, 0.7, 2.0, 2*time.Second, src.Fork()))
		}
	}
	connectBatch := func(limit int) []*peerhood.Connection {
		var conns []*peerhood.Connection
		for _, n := range all {
			if len(conns) >= limit {
				break
			}
			provs := n.Providers("ping")
			if len(provs) == 0 {
				continue
			}
			c, err := n.Connect(provs[0].Entry.Info.Addr, "ping")
			if err != nil {
				continue
			}
			conns = append(conns, c)
		}
		return conns
	}

	target := nodes / 10
	freeze()
	w.RunDiscoveryRounds(1)
	conns := connectBatch(target)
	for _, c := range conns {
		defer c.Close()
	}

	cfg.logf("S1: %d links up, sweeping", len(conns))
	unfreeze()
	broken := 0
	sweepStart := time.Now()
	for s := 0; s < sweeps; s++ {
		clk.Sleep(20 * time.Second) // simulated seconds: the crowd walks
		broken += w.CheckLinks()
	}
	sweep := time.Since(sweepStart)

	freeze()
	w.RunDiscoveryRounds(1)
	reconns := connectBatch(target)
	for _, c := range reconns {
		defer c.Close()
	}
	reconnected := len(reconns)

	t := newTable("PHASE", "MEASURE", "VALUE")
	t.add("setup", "nodes", fmt.Sprintf("%d", nodes))
	t.add("setup", "wall time", fmt.Sprintf("%.2fs", setup.Seconds()))
	t.add("discovery", "rounds", fmt.Sprintf("%d", rounds))
	t.add("discovery", "rounds/sec (wall)", fmt.Sprintf("%.2f", metrics.Rate(rounds, disc)))
	t.add("discovery", "inquiries", fmt.Sprintf("%d", st.Inquiries))
	t.add("discovery", "inquiry responses", fmt.Sprintf("%d", st.InquiryResponses))
	t.add("discovery", "candidates/inquiry (grid)", fmt.Sprintf("%.0f", avgCand))
	t.add("discovery", "candidates/inquiry (full scan)", fmt.Sprintf("%d", nodes-1))
	t.add("discovery", "grid refreshes", fmt.Sprintf("%d", st.GridRefreshes))
	t.add("links", "established", fmt.Sprintf("%d", len(conns)))
	t.add("links", "broken by movement", fmt.Sprintf("%d", broken))
	t.add("links", "re-established", fmt.Sprintf("%d", reconnected))
	t.add("links", "CheckLinks sweeps/sec (wall)", fmt.Sprintf("%.0f", metrics.Rate(sweeps, sweep)))

	g := newTable("TECH", "CELL SIZE", "RADIOS", "CELLS", "OCC MEAN", "OCC P95", "REFRESHES")
	for _, gs := range w.GridStats() {
		g.add(
			gs.Tech.String(),
			fmt.Sprintf("%.1fm", gs.CellSize),
			fmt.Sprintf("%d", gs.Radios),
			fmt.Sprintf("%d", gs.Cells),
			fmt.Sprintf("%.1f", gs.Occupancy.Mean),
			fmt.Sprintf("%.1f", gs.Occupancy.P95),
			fmt.Sprintf("%d", gs.Refreshes),
		)
	}

	return Result{
		Table: t.String() + "\nSpatial grid:\n" + g.String(),
		Notes: []string{
			"paper: the thesis evaluates on a handful of devices; S1 is the production-scale workload the ROADMAP targets",
			fmt.Sprintf("measured: grid examines %.0f candidates per inquiry where the linear scan examines %d — O(cell occupancy) vs O(N)", avgCand, nodes-1),
			"link maintenance reaps out-of-range links and re-establishes from device storage, the discovery half of soft handover (§5.2)",
		},
	}, nil
}
