package experiments

import (
	"strings"
	"testing"

	"peerhood"
)

// TestBlackoutTraceDeterministic pins the telemetry half of S4's replay
// guarantee: the commuter's trace-span log — deterministic span IDs,
// manual-clock timestamps, causal parent links — is byte-identical across
// same-seed runs, and actually contains the handover and sync lifecycles
// the scenario exercises.
func TestBlackoutTraceDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Quick: true}.withDefaults()
	st1, err := blackoutTrial(cfg, cfg.Seed, true)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	st2, err := blackoutTrial(cfg, cfg.Seed, true)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if st1.spanTrace != st2.spanTrace {
		t.Fatalf("same-seed span logs differ:\n--- first\n%s--- second\n%s", st1.spanTrace, st2.spanTrace)
	}
	if st1.spanTrace == "" {
		t.Fatal("blackout run recorded no trace spans")
	}
	for _, want := range []string{"handover.routing", "handover.switch", "sync.fetch"} {
		if !strings.Contains(st1.spanTrace, want) {
			t.Errorf("span log missing %q spans:\n%s", want, st1.spanTrace)
		}
	}
	if st1.spanCount == 0 {
		t.Fatal("fleet span total is zero")
	}
}

// TestHotspotTraceDeterministic is the S5 counterpart: the dual-radio
// predictive walk's span log replays byte-identically and records the
// vertical switches as handover.switch spans under their degradation
// episodes.
func TestHotspotTraceDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Quick: true}.withDefaults()
	mode := hotspotMode{
		name:       "dual/predictive",
		techs:      []peerhood.Tech{peerhood.WLAN, peerhood.GPRS},
		predictive: true,
	}
	st1, err := hotspotTrial(cfg, cfg.Seed, mode)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	st2, err := hotspotTrial(cfg, cfg.Seed, mode)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if st1.spanTrace != st2.spanTrace {
		t.Fatalf("same-seed span logs differ:\n--- first\n%s--- second\n%s", st1.spanTrace, st2.spanTrace)
	}
	if !strings.Contains(st1.spanTrace, "handover.switch") {
		t.Fatalf("span log missing handover.switch spans:\n%s", st1.spanTrace)
	}
}
