package experiments

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/rng"
	"peerhood/internal/simnet"
	"peerhood/internal/telemetry"
)

// MetropolisMillionEnv gates the S6 million-node tier: the full run costs
// minutes of wall clock and ~1 GB of heap, so it only joins the scale
// sweep when this environment variable is "1" (the CI bench-trajectory
// job sets it; tier-1 test runs stay fast).
const MetropolisMillionEnv = "PH_S6_1M"

// metropolisMillion reports whether the 1M tier is enabled.
func metropolisMillion() bool { return os.Getenv(MetropolisMillionEnv) == "1" }

// MetropolisDensity is the S6 crowd density: nodes per square metre,
// held constant across scales so the per-node workload (neighbours per
// inquiry) does not change with the city size. 0.004/m² reproduces S1's
// city block (1,000 nodes on 250x250 m… scaled to WLAN coverage).
const MetropolisDensity = 0.004

// metropolisSide returns the district-grid side length for n nodes at
// constant density.
func metropolisSide(n int) float64 {
	return math.Sqrt(float64(n) / MetropolisDensity)
}

// MetropolisWorld builds the S6 city for n nodes: a district grid of side
// metropolisSide(n) with hotspot clusters (plazas, stations) holding 60%
// of the crowd and the rest wandering the whole city. Every node is
// mobile and carries a WLAN radio inquiring every 10 s on a staggered
// phase, so a one-second superstep carries ~n/10 discovery rounds. The
// world is deterministic in (seed, n) and must be driven by Step.
func MetropolisWorld(seed int64, n int) (*simnet.ShardedWorld, error) {
	src := rng.New(seed)
	side := metropolisSide(n)
	city := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(side, side)}

	sw := simnet.NewShardedWorld(simnet.ShardedConfig{Seed: seed})

	hotspots := n / 250
	if hotspots < 4 {
		hotspots = 4
	}
	centers := make([]geo.Point, hotspots)
	for i := range centers {
		centers[i] = geo.Pt(src.Uniform(city.Min.X, city.Max.X), src.Uniform(city.Min.Y, city.Max.Y))
	}

	for i := 0; i < n; i++ {
		var start geo.Point
		var bounds geo.Rect
		if i%5 < 3 {
			// Hotspot dweller: milling around one plaza.
			c := centers[i%hotspots]
			bounds = geo.Rect{Min: geo.Pt(c.X-50, c.Y-50), Max: geo.Pt(c.X+50, c.Y+50)}
			start = geo.Pt(src.Uniform(c.X-40, c.X+40), src.Uniform(c.Y-40, c.Y+40))
		} else {
			// Through-traffic: crossing the whole city.
			bounds = city
			start = geo.Pt(src.Uniform(city.Min.X, city.Max.X), src.Uniform(city.Min.Y, city.Max.Y))
		}
		// Speeds stay below slack/quantum (15 m/s for WLAN's 60 m regions)
		// so every walker remains exactly bucketable.
		model := mobility.NewRandomWaypoint(start, bounds, 0.7, 6, 2*time.Second, src.ForkCompact())
		if _, err := sw.AddNode(simnet.ShardNodeSpec{
			Name:           fmt.Sprintf("m%06d", i),
			Model:          model,
			Techs:          []device.Tech{device.TechWLAN},
			DiscoveryEvery: 10 * time.Second,
			DiscoveryPhase: time.Duration(1+i%10) * time.Second,
		}); err != nil {
			sw.Close()
			return nil, err
		}
	}
	return sw, nil
}

// RunMetropolis is experiment S6, "metropolis": the sharded substrate's
// scaling curve. It builds the constant-density city at 1k, 10k, and 100k
// mobile nodes (reduced in Quick mode), steps each for the same simulated
// span, and reports the deterministic workload counters — inquiries,
// candidate scans, crossing events — plus the world digest, per scale.
// The wall-clock per-node step cost goes to the Notes (it is measured,
// not simulated, so it stays out of the replay-compared table); the
// headline claim is that it is flat: event-driven scheduling makes one
// step cost O(active events), not O(n), so constant density means
// constant per-node cost from 1k to 100k.
func RunMetropolis(cfg Config) (Result, error) {
	scales := []int{1000, 10000, 100000}
	steps := 20
	if cfg.Quick {
		scales = []int{500, 2000, 8000}
		steps = 10
	} else if metropolisMillion() {
		scales = append(scales, 1000000)
	}

	const warmSteps = 12

	tab := newTable("nodes", "side", "steps", "inquiries", "candidates", "crossings", "digest")
	notes := make([]string, 0, len(scales)+2)
	costs := make([]float64, 0, len(scales))

	// The sharded substrate carries no per-daemon registries (nodes are
	// radio specs, not daemon stacks), so S6's adapter publishes the
	// workload counters into one scenario registry, labelled per scale,
	// and the table reads them back from the snapshot — the report quotes
	// the telemetry plane, not the substrate's private struct.
	reg := telemetry.NewRegistry()
	digests := make(map[int]string, len(scales))

	for _, n := range scales {
		cfg.logf("S6: building %d-node city (side %.0f m)", n, metropolisSide(n))
		runtime.GC()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		sw, err := MetropolisWorld(cfg.Seed, n)
		if err != nil {
			return Result{}, err
		}
		// Warm-up supersteps pay one-time placement, the full 10 s spread
		// of discovery phases, and the growth of the per-shard arenas to
		// their high-water marks; keep them out of the per-step cost
		// measurement so the flatness note compares steady states, not
		// arena growth (they still count toward the deterministic workload
		// counters and the digest — every run drives the same schedule).
		for s := 0; s < warmSteps; s++ {
			sw.Step()
		}

		wallStart := time.Now()
		for s := 0; s < steps; s++ {
			sw.Step()
		}
		wall := time.Since(wallStart)

		st := sw.Stats()
		lbl := fmt.Sprintf(`{nodes="%d"}`, n)
		reg.Counter(`peerhood_simnet_inquiries_total` + lbl).Add(uint64(st.Inquiries))
		reg.Counter(`peerhood_simnet_inquiry_candidates_total` + lbl).Add(uint64(st.InquiryCandidates))
		reg.Counter(`peerhood_simnet_crossings_total` + lbl).Add(uint64(st.Rebuckets))
		digests[n] = sw.Digest()[:8]
		perNodeStep := float64(wall.Nanoseconds()) / float64(n*steps)
		costs = append(costs, perNodeStep)
		// Live heap per node with the stepped world still referenced: the
		// memory-flat claim is about what a scale run retains, not what it
		// transiently allocates. Like the wall clock, this is measured, not
		// simulated, so it stays out of the replay-compared table.
		runtime.GC()
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		heapPerNode := 0.0
		if m1.HeapAlloc > m0.HeapAlloc {
			heapPerNode = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(n)
		}
		reg.Gauge(`peerhood_simnet_heap_bytes_per_node` + lbl).Set(int64(heapPerNode))
		notes = append(notes, fmt.Sprintf("%d nodes: %.0f ns per node-step (%s for %d steps), %.0f heap B/node",
			n, perNodeStep, wall.Round(time.Millisecond), steps, heapPerNode))
		if err := sw.Close(); err != nil {
			return Result{}, err
		}
	}

	series := make(map[string]float64)
	for _, p := range reg.Snapshot() {
		series[p.Name] = p.Value
	}
	for _, n := range scales {
		lbl := fmt.Sprintf(`{nodes="%d"}`, n)
		tab.addf("%d|%.0f m|%d|%.0f|%.0f|%.0f|%s",
			n, metropolisSide(n), steps+warmSteps,
			series[`peerhood_simnet_inquiries_total`+lbl],
			series[`peerhood_simnet_inquiry_candidates_total`+lbl],
			series[`peerhood_simnet_crossings_total`+lbl],
			digests[n])
	}

	minC, maxC := costs[0], costs[0]
	for _, c := range costs[1:] {
		minC = math.Min(minC, c)
		maxC = math.Max(maxC, c)
	}
	notes = append(notes, fmt.Sprintf(
		"per-node step cost spread %.2fx across a %dx scale range (flat = event-driven scheduling works)",
		maxC/minC, scales[len(scales)-1]/scales[0]))

	return Result{Table: tab.String(), Notes: notes}, nil
}
