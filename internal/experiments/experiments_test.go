package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Seed: 7, TimeScale: 1000, Quick: true}.withDefaults()
}

func TestRegistryListsAllIDs(t *testing.T) {
	ids := IDs()
	want := []string{"T1", "F3.3", "F3.6", "F3.9", "F3.10", "G1", "E1", "E2", "E3", "E4", "F6.1", "A1", "S1", "S2", "S3", "S4", "S5", "S6", "S8"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], id)
		}
	}
	for _, id := range ids {
		if _, ok := Title(id); !ok {
			t.Fatalf("no title for %s", id)
		}
	}
	if _, ok := Title("nope"); ok {
		t.Fatal("title for unknown id")
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("does-not-exist", quickCfg()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunIsCaseInsensitive(t *testing.T) {
	if _, err := Run("t1", quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestMobilityTableMatchesPaper(t *testing.T) {
	res, err := Run("T1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's exact sums must appear in order.
	for _, want := range []string{"0 + 0", "3 + 3", "dynamic dynamic  6"} {
		if !strings.Contains(res.Table, want) {
			t.Fatalf("table missing %q:\n%s", want, res.Table)
		}
	}
}

func TestStorageTableMatchesFig36(t *testing.T) {
	res, err := Run("F3.6", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []struct{ dev, jumps, bridge string }{
		{"B", "0", "(direct)"},
		{"C", "0", "(direct)"},
		{"D", "1", "C"},
		{"E", "1", "B"},
	} {
		found := false
		for _, line := range strings.Split(res.Table, "\n") {
			f := strings.Fields(line)
			if len(f) >= 3 && f[0] == row.dev && f[1] == row.jumps && f[2] == row.bridge {
				found = true
			}
		}
		if !found {
			t.Fatalf("fig 3.6 row %+v missing:\n%s", row, res.Table)
		}
	}
}

func TestQualityEquityChoosesThresholdRoute(t *testing.T) {
	res, err := Run("F3.9", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(res.Table, "\n") {
		if strings.Contains(line, "A-B-D") && !strings.Contains(line, "chosen") {
			t.Fatalf("A-B-D not chosen:\n%s", res.Table)
		}
		if strings.Contains(line, "A-C-D") && strings.Contains(line, "chosen") {
			t.Fatalf("A-C-D chosen despite threshold violation:\n%s", res.Table)
		}
	}
}

func TestExclusionShowsLegacyBlindness(t *testing.T) {
	res, err := Run("F3.3", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(res.Table, "\n") {
		f := strings.Fields(line)
		if len(f) < 5 {
			continue
		}
		switch f[0] {
		case "B", "C", "D":
			if f[2] != "no" {
				t.Fatalf("%s sees F&G under legacy discovery:\n%s", f[0], res.Table)
			}
			if f[4] != "yes" {
				t.Fatalf("%s blind under dynamic discovery:\n%s", f[0], res.Table)
			}
		}
	}
}

func TestDiscoveryDelayLinearInJumps(t *testing.T) {
	res, err := Run("F3.10", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(res.Table, "\n") {
		f := strings.Fields(line)
		if len(f) >= 2 && isDigits(f[0]) {
			if f[0] != f[1] {
				t.Fatalf("jumps %s took %s rounds, want equal:\n%s", f[0], f[1], res.Table)
			}
		}
	}
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func TestGnutellaTrafficGrows(t *testing.T) {
	res, err := Run("G1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table, "local table lookup") {
		t.Fatalf("table missing PeerHood query cost:\n%s", res.Table)
	}
}

func TestRouteAblationPrefersStatic(t *testing.T) {
	res, err := Run("A1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var thesisLine, ablatedLine string
	for _, line := range strings.Split(res.Table, "\n") {
		if strings.HasPrefix(line, "thesis") {
			thesisLine = line
		}
		if strings.HasPrefix(line, "ablated") {
			ablatedLine = line
		}
	}
	if thesisLine == "" || ablatedLine == "" {
		t.Fatalf("missing rows:\n%s", res.Table)
	}
	// The thesis policy must choose the static bridge strictly more often.
	if !strings.Contains(thesisLine, "3/3") || !strings.Contains(ablatedLine, "0/3") {
		t.Fatalf("ablation shape unexpected:\nthesis: %s\nablated: %s", thesisLine, ablatedLine)
	}
}

func TestBridgePerformanceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled-world experiment")
	}
	res, err := Run("E1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table, "connection attempts") {
		t.Fatalf("table malformed:\n%s", res.Table)
	}
}

func TestScaleScenarioQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("scale experiment")
	}
	res, err := Run("S1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table, "Spatial grid:") {
		t.Fatalf("grid stats missing:\n%s", res.Table)
	}
	// The crosswalk choreography must actually form and re-form links.
	for _, measure := range []string{"established", "re-established"} {
		found := false
		for _, line := range strings.Split(res.Table, "\n") {
			f := strings.Fields(line)
			if len(f) >= 3 && f[0] == "links" && f[1] == measure && f[2] != "0" {
				found = true
			}
		}
		if !found {
			t.Fatalf("no links %s:\n%s", measure, res.Table)
		}
	}
}

func TestDensePlazaDeltaBeatsFullSync(t *testing.T) {
	if testing.Short() {
		t.Skip("scale experiment")
	}
	res, err := Run("S2", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// At the lowest churn level the delta rows must report at least a 5x
	// byte reduction versus retransmitting full tables.
	var reduction float64
	for _, line := range strings.Split(res.Table, "\n") {
		f := strings.Fields(line)
		if len(f) >= 8 && f[0] == "0%" && f[1] == "delta" {
			if _, err := fmt.Sscanf(f[7], "%f", &reduction); err != nil {
				t.Fatalf("unparseable reduction %q:\n%s", f[7], res.Table)
			}
		}
	}
	if reduction < 5 {
		t.Fatalf("low-churn delta reduction = %.1fx, want >= 5x:\n%s", reduction, res.Table)
	}
	// Both sync modes must actually have run.
	if !strings.Contains(res.Table, "delta") || !strings.Contains(res.Table, "full") {
		t.Fatalf("table missing modes:\n%s", res.Table)
	}
}

func TestCommuterCorridorQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("scale experiment")
	}
	res, err := Run("S3", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Both trigger modes must have run in every sweep cell.
	for _, mode := range []string{"reactive", "predictive"} {
		if !strings.Contains(res.Table, mode) {
			t.Fatalf("table missing %s rows:\n%s", mode, res.Table)
		}
	}
	// The predictive machinery must actually have fired: at least one
	// predictive-mode row with a non-zero PREDICTIVE column, and every
	// reactive row pinned at zero. (The disruption *ordering* under
	// monotonic degradation is pinned deterministically by the manual-
	// clock property test in internal/handover; the corridor's timing
	// runs on a scaled wall clock, so the table is not bit-stable.)
	firedPredictive := false
	for _, line := range strings.Split(res.Table, "\n") {
		f := strings.Fields(line)
		if len(f) < 5 {
			continue
		}
		switch f[0] {
		case "predictive":
			if f[4] != "0.0" {
				firedPredictive = true
			}
		case "reactive":
			if f[4] != "0.0" {
				t.Fatalf("reactive row reports predictive handovers:\n%s", res.Table)
			}
		}
	}
	if !firedPredictive {
		t.Fatalf("no predictive handovers fired anywhere:\n%s", res.Table)
	}
	if len(res.Notes) == 0 || !strings.Contains(strings.Join(res.Notes, "\n"), "walking speed") {
		t.Fatalf("notes missing the walking-speed comparison: %v", res.Notes)
	}
}

func TestResultStringIncludesEverything(t *testing.T) {
	res, err := Run("T1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "T1") || !strings.Contains(s, "Notes:") {
		t.Fatalf("rendered result missing parts:\n%s", s)
	}
}
