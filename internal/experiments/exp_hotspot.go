package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"peerhood"
	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/events"
	"peerhood/internal/library"
	"peerhood/internal/simnet"
)

// RunHotspot implements experiment S5, the hotspot archipelago: a
// dual-radio commuter walks a corridor covered end to end by a wide-area
// GPRS umbrella while short-range WLAN islands — the server's own access
// zone and standalone dual-radio hotspots that bridge WLAN traffic onto
// the umbrella — dot the route. The commuter streams to the server
// throughout; the bandwidth-first selection policy rides each island
// (vertical up-switch onto WLAN) and falls back to the umbrella between
// them (vertical down-switch onto GPRS), both through the ordinary
// PH_RECONNECT path.
//
// Four modes are compared: the two single-radio baselines (gprs-only never
// leaves the umbrella; wlan-only island-hops and goes dark between
// islands) and the dual-radio commuter with the reactive and the
// predictive trigger. Reported per mode: handovers with the vertical
// up/down and predictive splits, sender-observed disruption, stream loss,
// below-threshold stream ticks, and bytes carried on the preferred (WLAN)
// bearer. Like S4 the run is manual-clock fully synchronous: a pure
// function of its seed, byte-identical across same-seed replays (pinned
// by TestHotspotExperimentDeterministic).
func RunHotspot(cfg Config) (Result, error) {
	t := newTable("MODE", "HANDOVERS", "VERT UP", "VERT DOWN", "PREDICTIVE",
		"DISRUPTION", "LOW-Q TICKS", "SENT", "LOST", "RESUMED", "DROPPED B", "DUP B",
		"WLAN BYTES", "WLAN SHARE")
	modes := []hotspotMode{
		{name: "gprs-only", techs: []peerhood.Tech{peerhood.GPRS}},
		{name: "wlan-only", techs: []peerhood.Tech{peerhood.WLAN}},
		{name: "dual/reactive", techs: []peerhood.Tech{peerhood.WLAN, peerhood.GPRS}},
		{name: "dual/predictive", techs: []peerhood.Tech{peerhood.WLAN, peerhood.GPRS}, predictive: true},
		{name: "dual/predictive+cont", techs: []peerhood.Tech{peerhood.WLAN, peerhood.GPRS}, predictive: true, continuity: true},
	}
	stats := make(map[string]hotspotStats, len(modes))
	for _, m := range modes {
		st, err := hotspotTrial(cfg, cfg.Seed, m)
		if err != nil {
			return Result{}, fmt.Errorf("mode %s: %w", m.name, err)
		}
		stats[m.name] = st
		dropped, dup := "-", "-"
		if m.continuity {
			dropped = fmt.Sprintf("%d", st.contDropped)
			dup = fmt.Sprintf("%d", st.contDupBytes)
		}
		t.add(m.name,
			fmt.Sprintf("%d", st.handovers),
			fmt.Sprintf("%d", st.verticalUp),
			fmt.Sprintf("%d", st.verticalDown),
			fmt.Sprintf("%d", st.predictive),
			fmt.Sprintf("%.1fs", st.disruption.Seconds()),
			fmt.Sprintf("%d", st.lowTicks),
			fmt.Sprintf("%d", st.sent),
			fmt.Sprintf("%d", st.lost),
			fmt.Sprintf("%d", st.resumed),
			dropped,
			dup,
			fmt.Sprintf("%d", st.wlanBytes),
			fmt.Sprintf("%.0f%%", st.wlanShare()*100),
		)
		cfg.logf("S5 %s: handovers=%d up=%d down=%d disruption=%.1fs lost=%d/%d resumed=%d wlan=%.0f%%",
			m.name, st.handovers, st.verticalUp, st.verticalDown,
			st.disruption.Seconds(), st.lost, st.sent, st.resumed, st.wlanShare()*100)
	}

	dual, wlan, gprs := stats["dual/predictive"], stats["wlan-only"], stats["gprs-only"]
	notes := []string{
		"corridor: server (WLAN+GPRS) at x=0 under a 500 m GPRS umbrella; 15 m WLAN islands at the server and at dual-radio hotspots that bridge WLAN traffic onto the umbrella; commuter walks the corridor at 1.4 m/s streaming 64 B every 200 ms",
		"dual modes run the bandwidth-first policy: vertical up-switch onto each island as it comes in good-class reach, down-switch onto GPRS (predictively: before the 230 crossing) when the island edge approaches; per-tech hold stops edge flapping",
		fmt.Sprintf("vertical handover vs single-radio: disruption %.1fs dual/predictive vs %.1fs wlan-only (islands only) and %.1fs gprs-only (umbrella only, 0%% preferred-bearer bytes)",
			dual.disruption.Seconds(), wlan.disruption.Seconds(), gprs.disruption.Seconds()),
		fmt.Sprintf("predictive vs reactive on identical geometry: %d vs %d below-threshold stream ticks — prediction moves the down-switch ahead of the crossing, so the stream rides a good-class bearer essentially always",
			stats["dual/predictive"].lowTicks, stats["dual/reactive"].lowTicks),
		"same-seed replays are byte-identical (manual clock, single-goroutine drive); legacy peers without sibling advertisements interoperate via the stripped wire forms (TestHotspotLegacyInterop)",
		fmt.Sprintf("dual/predictive+cont adds the session-continuity window (PH_RESUME, 4 KiB send window): every vertical switch resumes instead of restarting — %d resumes, %d B dropped, %d B duplicated end to end, vs %d lost messages on the lossy dual/predictive row over the same walk",
			stats["dual/predictive+cont"].resumed, stats["dual/predictive+cont"].contDropped,
			stats["dual/predictive+cont"].contDupBytes, stats["dual/predictive"].lost),
		"dual/predictive telemetry registry (the series phctl stats serves): " + telemetryLine(dual.tm,
			`peerhood_handover_completed_total`,
			`peerhood_handover_vertical_total{dir="up"}`,
			`peerhood_handover_vertical_total{dir="down"}`,
			`peerhood_handover_reconnects_total`,
			`peerhood_discovery_fetches_total{kind="delta"}`),
	}
	return Result{Table: t.String(), Notes: notes}, nil
}

// ArchipelagoParams returns the S5 radio profile for t: a deterministic
// (instant, zero-bandwidth) variant of the calibrated defaults with a
// 500 m GPRS umbrella and hard-edged 15 m WLAN islands (EdgeQuality 225
// puts the 230 threshold at 12.5 m of the 15 m cell). phtest's multi-radio
// fixture applies the same profile, so unit-level multi-tech worlds and S5
// share one geometry.
func ArchipelagoParams(t device.Tech) simnet.TechParams {
	p := simnet.DefaultParams(t).Instant()
	p.Bandwidth = 0
	p.DiscoveryCycle = time.Second
	switch t {
	case device.TechWLAN:
		p.CoverageRadius = hotspotIslandRadius
		p.EdgeQuality = 225
	case device.TechGPRS:
		p.CoverageRadius = 500
	}
	return p
}

// hotspotMode is one S5 table row's configuration.
type hotspotMode struct {
	name       string
	techs      []peerhood.Tech
	predictive bool
	// continuity runs the stream over the session-continuity window
	// (WithContinuityWindow): handovers resume with PH_RESUME instead of
	// restarting, and the trial verifies zero loss end to end.
	continuity bool
}

type hotspotStats struct {
	handovers    int64
	verticalUp   int64
	verticalDown int64
	predictive   int64
	disruption   time.Duration
	lowTicks     int
	sent, lost   int
	wlanBytes    int64
	totalBytes   int64
	busVertical  int
	// Continuity-mode accounting: resumed counts PH_RESUME re-attachments;
	// contDropped is accepted-minus-delivered bytes after the final Flush
	// (the zero-loss claim) and contDupBytes is delivered-minus-accepted
	// (the no-duplicate-delivery claim) — both zero means exactly-once.
	// contStreamErrs counts receiver bytes whose content disagrees with the
	// sender's deterministic pattern (an ordering or corruption slip that a
	// balanced byte count could mask); contHighWater is the send window's
	// peak occupancy (the bounded-memory claim).
	resumed        int64
	contDropped    int64
	contDupBytes   int64
	contStreamErrs int64
	contHighWater  int
	// tm is the commuter's merged telemetry snapshot at trial end; the
	// vertical-handover table columns quote its registry series. spanTrace
	// is the commuter's rendered span log, byte-identical across same-seed
	// runs (pinned by TestHotspotTraceDeterministic).
	tm        map[string]float64
	spanTrace string
}

func (s hotspotStats) wlanShare() float64 {
	if s.totalBytes == 0 {
		return 0
	}
	return float64(s.wlanBytes) / float64(s.totalBytes)
}

// Corridor geometry. Hotspots sit far enough apart that their islands do
// not touch the server's or each other's: the inter-island gaps are where
// wlan-only goes dark and dual falls back to the umbrella.
const (
	hotspotIslandRadius = 15.0
	hotspotWalkFrom     = 1.0
	hotspotSpeed        = 1.4
)

func hotspotPositions(quick bool) []float64 {
	if quick {
		return []float64{45}
	}
	return []float64{45, 90}
}

func hotspotWalkTo(quick bool) float64 {
	if quick {
		return 70
	}
	return 115
}

// hotspotTrial runs one deterministic corridor traversal. Everything —
// discovery rounds, handover steps, stream writes — is driven
// synchronously from this goroutine between manual clock advances, so the
// trial is a pure function of (seed, mode).
func hotspotTrial(cfg Config, seed int64, mode hotspotMode) (hotspotStats, error) {
	const (
		tick     = 200 * time.Millisecond
		msgBytes = 64
	)

	clk := clock.NewManual()
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: seed, Clock: clk, Instant: true})
	defer w.Close()

	for _, tech := range []device.Tech{device.TechWLAN, device.TechGPRS} {
		p := ArchipelagoParams(tech)
		// Re-arm the two stochastic knobs that cost no simulated time (the
		// S4 convention): dial faults and inquiry misses draw from the
		// world's seeded rng in a fixed order, so different seeds see
		// different luck while the same seed replays exactly.
		p.FaultProb = 0.02
		p.ResponseProb = 0.98
		w.Sim().SetParams(tech, p)
	}

	server, err := w.NewNode(peerhood.NodeConfig{
		Name:  "server",
		Techs: []peerhood.Tech{peerhood.WLAN, peerhood.GPRS},
	})
	if err != nil {
		return hotspotStats{}, err
	}
	backbone := []*peerhood.Node{server}
	for i, x := range hotspotPositions(cfg.Quick) {
		h, err := w.NewNode(peerhood.NodeConfig{
			Name:     fmt.Sprintf("hotspot%d", i+1),
			Position: peerhood.Pt(x, 0),
			Techs:    []peerhood.Tech{peerhood.WLAN, peerhood.GPRS},
		})
		if err != nil {
			return hotspotStats{}, err
		}
		backbone = append(backbone, h)
	}
	// SwapWait -1: a write on a dead transport fails immediately instead of
	// blocking on a clock only this goroutine could advance; the failed
	// message is the corridor's loss and recovery is the handover thread's
	// job (the S4 convention).
	commuter, err := w.NewNode(peerhood.NodeConfig{
		Name: "commuter", Position: peerhood.Pt(hotspotWalkFrom, 0.5), Mobility: peerhood.Dynamic,
		Techs: mode.techs, SwapWait: -1, LinkWindow: 8, MaxMissedLoops: 8,
		HandoverPolicy: peerhood.PolicyBandwidthFirst,
	})
	if err != nil {
		return hotspotStats{}, err
	}

	// The sink keeps the server-side connection observable: the continuity
	// mode settles its zero-loss books against the receiver's own counters.
	// In that mode every stream byte also carries a position-derived pattern
	// (message k is 64 bytes of k%251), so the receiver detects reordering
	// or corruption that a balanced byte count would mask.
	srvConnCh := make(chan *peerhood.Connection, 4)
	var streamOff, streamErrs atomic.Int64
	if _, err := server.RegisterService("sink", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		select {
		case srvConnCh <- c:
		default:
		}
		defer c.Close()
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(buf)
			if mode.continuity {
				for _, got := range buf[:n] {
					off := streamOff.Add(1) - 1
					if got != byte(off/msgBytes%251) {
						streamErrs.Add(1)
					}
				}
			}
			if err != nil {
				return
			}
		}
	}); err != nil {
		return hotspotStats{}, err
	}

	w.RunDiscoveryRounds(3)
	start := clk.Now()

	// Every mode names the same logical peer; the bearer preference (and
	// the identity-aware retarget it triggers) picks the interface. The
	// single-radio modes can only ever resolve their own technology.
	target := server.Addr() // primary = WLAN
	var opts []library.ConnectOption
	switch {
	case len(mode.techs) == 1 && mode.techs[0] == peerhood.GPRS:
		a, _ := server.AddrFor(peerhood.GPRS)
		target = a
	case len(mode.techs) == 2:
		a, _ := server.AddrFor(peerhood.GPRS)
		target = a
		opts = append(opts, peerhood.WithTech(peerhood.WLAN))
	}
	if mode.continuity {
		// 4 KiB bounds the replay buffer to 64 stream messages — enough to
		// absorb any handover window on this corridor, small enough that the
		// bounded-memory claim is a real constraint.
		opts = append(opts, peerhood.WithContinuityWindow(4096))
	}
	conn, err := commuter.Connect(target, "sink", opts...)
	if err != nil {
		return hotspotStats{}, fmt.Errorf("initial connect: %w", err)
	}
	defer conn.Close()

	th, err := commuter.MonitorHandover(conn, peerhood.HandoverConfig{
		Interval:         tick,
		ManualSteps:      true, // stepped from the walk loop below
		MaxRouteAttempts: 6,
		MaxFailures:      3,
		Predictive:       mode.predictive,
		PredictHorizon:   5 * time.Second,
		PredictCooldown:  time.Second,
		TechHold:         10 * time.Second,
	})
	if err != nil {
		return hotspotStats{}, err
	}
	defer th.Stop()

	sub := commuter.Events(peerhood.MaskOf(peerhood.EventVerticalHandover))
	defer sub.Close()

	walkTo := hotspotWalkTo(cfg.Quick)
	commuter.SetModel(peerhood.Walk(peerhood.Pt(hotspotWalkFrom, 0.5), peerhood.Pt(walkTo, 0.5), hotspotSpeed))

	var st hotspotStats
	drain := func() {
		for {
			select {
			case e, ok := <-sub.C():
				if !ok {
					return
				}
				if e.Type == events.VerticalHandover {
					st.busVertical++
				}
			default:
				return
			}
		}
	}

	msg := make([]byte, msgBytes)
	msgIdx := 0
	walkDur := time.Duration((walkTo - hotspotWalkFrom) / hotspotSpeed * float64(time.Second))
	total := walkDur + 4*time.Second // drain ticks let recovery settle
	var outageStart time.Time
	inOutage := false
	ticks := int(total / tick)
	for i := 0; i < ticks; i++ {
		clk.Advance(tick)
		w.CheckLinks()
		if i%5 == 0 { // commuter discovers every simulated second
			commuter.RunDiscoveryRound()
		}
		if i%10 == 0 { // the backbone refreshes every two seconds
			for _, n := range backbone {
				n.RunDiscoveryRound()
			}
		}
		if clk.Since(start) <= walkDur {
			st.sent++
			q := conn.Quality()
			if q > 0 && q < peerhood.QualityThreshold {
				st.lowTicks++
			}
			if mode.continuity {
				for j := range msg {
					msg[j] = byte(msgIdx % 251)
				}
			}
			if _, werr := conn.Write(msg); werr != nil {
				st.lost++
				if !inOutage {
					inOutage, outageStart = true, clk.Now()
				}
			} else {
				msgIdx++
				st.totalBytes += msgBytes
				if conn.RemoteAddr().Tech == peerhood.WLAN {
					st.wlanBytes += msgBytes
				}
				if inOutage {
					st.disruption += clk.Since(outageStart)
					inOutage = false
				}
			}
		}
		th.Step()
		drain()
	}
	// An outage still open when the stream stops is credited only up to the
	// end of the send window.
	if inOutage {
		st.disruption += start.Add(walkDur).Sub(outageStart)
	}
	drain()

	if mode.continuity {
		// Drain the send window over the surviving bearer, then settle the
		// zero-loss books against the receiver's counters: every byte Write
		// accepted must have been delivered exactly once.
		if err := conn.Flush(); err != nil {
			return hotspotStats{}, fmt.Errorf("final flush: %w", err)
		}
		srv := <-srvConnCh
		cst, sst := conn.ContinuityStats(), srv.ContinuityStats()
		if d := st.totalBytes - sst.DeliveredBytes; d > 0 {
			st.contDropped = d
		} else {
			st.contDupBytes = -d
		}
		st.contStreamErrs = streamErrs.Load()
		st.contHighWater = cst.SendHighWater
	}

	hs := th.Stats()
	st.handovers = hs.Handovers
	st.predictive = hs.PredictiveHandovers
	st.resumed = hs.Resumes
	// The vertical split comes from the commuter's telemetry registry —
	// the same `peerhood_handover_vertical_total{dir=...}` series phctl
	// stats serves — rather than the thread's private tally (the two are
	// incremented at the same switch site, so a drift is a bug).
	st.tm = telemetrySums(commuter.Daemon())
	st.verticalUp = int64(st.tm[`peerhood_handover_vertical_total{dir="up"}`])
	st.verticalDown = int64(st.tm[`peerhood_handover_vertical_total{dir="down"}`])
	st.spanTrace = spanLog(commuter.Daemon())
	return st, nil
}
