package experiments

import (
	"fmt"
	"strings"

	"peerhood/internal/daemon"
)

// This file is the scenario adapter between the telemetry plane and the
// experiment reports: instead of each scenario keeping private tallies,
// the S-series tables and notes quote the same registry series `phctl
// stats` and the daemon's /metrics endpoint expose. Reading through one
// adapter also keeps the reports honest — a counter that drifts from the
// scenario's own accounting surfaces as a visible table discrepancy.

// telemetrySums merges the telemetry registries of several daemons into
// one name -> value map. Values are summed per series name, so counters
// aggregate across the fleet while identically-named gauges average
// poorly — scenarios only quote counters through this path.
func telemetrySums(ds ...*daemon.Daemon) map[string]float64 {
	out := make(map[string]float64)
	for _, d := range ds {
		if d == nil {
			continue
		}
		for _, p := range d.Registry().Snapshot() {
			out[p.Name] += p.Value
		}
	}
	return out
}

// telemetryPrefixSum adds every merged series whose name starts with
// prefix — the label-collapsing view of a counter family (for example all
// `peerhood_tcpnet_dials_total{result=...}` outcomes together).
func telemetryPrefixSum(m map[string]float64, prefix string) float64 {
	var total float64
	for name, v := range m {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}

// telemetryLine renders the named series as one deterministic note line
// in the order given (map iteration order must not leak into replay-pinned
// notes). Missing series render as 0 so a line's shape is stable.
func telemetryLine(m map[string]float64, names ...string) string {
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%.0f", n, m[n])
	}
	return strings.Join(parts, " ")
}

// spanLog concatenates the daemons' retained trace spans in fleet order —
// the byte-identical-under-same-seed artifact the S4/S5 determinism tests
// pin.
func spanLog(ds ...*daemon.Daemon) string {
	var b strings.Builder
	for _, d := range ds {
		if d == nil {
			continue
		}
		b.WriteString(d.Tracer().Log())
	}
	return b.String()
}

// spanTotal sums how many spans the daemons ever recorded (ring evictions
// included).
func spanTotal(ds ...*daemon.Daemon) uint64 {
	var total uint64
	for _, d := range ds {
		if d == nil {
			continue
		}
		total += d.Tracer().Total()
	}
	return total
}
