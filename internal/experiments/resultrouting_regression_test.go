package experiments

import (
	"fmt"
	"testing"
	"time"

	"peerhood"
	"peerhood/internal/migration"
)

// TestResultRoutingSmallInline pins the E4 small-payload regime: the task
// completes inside coverage and the result returns inline (§5.3 case 1).
func TestResultRoutingSmallInline(t *testing.T) {
	w := peerhood.NewWorld(peerhood.WorldConfig{
		Seed:              1,
		TimeScale:         200,
		LinkCheckInterval: 500 * time.Millisecond,
	})
	defer w.Close()

	server, err := w.NewNode(peerhood.NodeConfig{Name: "analysis", Position: peerhood.Pt(0, 0), AutoDiscover: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.NewNode(peerhood.NodeConfig{Name: "bridge1", Position: peerhood.Pt(6, 0), AutoDiscover: true}); err != nil {
		t.Fatal(err)
	}
	phone, err := w.NewNode(peerhood.NodeConfig{Name: "phone", Position: peerhood.Pt(1, 0), Mobility: peerhood.Dynamic, AutoDiscover: true})
	if err != nil {
		t.Fatal(err)
	}

	srv, err := migration.NewServer(migration.ServerConfig{
		Library:        server.Library(),
		ProcessingRate: 64 << 10,
		DialBack:       true,
		Observer: func(ev migration.ServerEvent) {
			t.Logf("server event: %+v", ev)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = srv
	client, err := migration.NewClient(phone.Library())
	if err != nil {
		t.Fatal(err)
	}
	w.RunDiscoveryRounds(3)

	pkgs := make([][]byte, 4)
	for i := range pkgs {
		pkgs[i] = make([]byte, 32<<10)
	}
	out, err := client.Submit(migration.ClientConfig{
		Library:       phone.Library(),
		Provider:      server.Addr(),
		TaskID:        99,
		Packages:      pkgs,
		ResultTimeout: 60 * time.Second,
		OnConnect: func(vc *peerhood.Connection) {
			t.Logf("connected; starting walk; quality=%d", vc.Quality())
			phone.SetModel(peerhood.Walk(phone.Position(), peerhood.Pt(15, 0), 1.4))
		},
	})
	t.Logf("outcome: %+v err=%v", out, err)
	if err != nil {
		t.Fatalf("small payload must succeed inline: %v", err)
	}
	fmt.Println("delivery:", out.Delivery)
}
