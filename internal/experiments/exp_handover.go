package experiments

import (
	"fmt"
	"sync"
	"time"

	"peerhood"
	"peerhood/internal/handover"
	"peerhood/internal/metrics"
)

// degrader matches the simulated transport's artificial-degradation hook.
type degrader interface {
	StartDegradation(rate float64)
}

// RunHandoverSimulation reproduces the §5.2.1 routing-handover simulation
// (experiment E2, fig 5.8): a client prints 50 messages on a server while
// the monitored link quality is artificially decremented by 1 per second;
// once it stays under 230 for more than 3 samples, the HandoverThread
// re-routes the same logical connection through the bridge node.
func RunHandoverSimulation(cfg Config) (Result, error) {
	trials := cfg.trials(5, 2)
	const messages = 50

	type trialResult struct {
		triggered   time.Duration
		latency     time.Duration
		delivered   int
		viaBridge   bool
		handoverOK  bool
		faultEvents int
	}
	var results []trialResult

	for trial := 0; trial < trials; trial++ {
		res, err := func() (trialResult, error) {
			w := peerhood.NewWorld(peerhood.WorldConfig{Seed: cfg.Seed + int64(trial), TimeScale: cfg.TimeScale})
			defer w.Close()
			clk := w.Clock()

			// Fig 5.8's triangle: client A, server B, alternate route via C.
			server, err := w.NewNode(peerhood.NodeConfig{Name: "A-server", Position: peerhood.Pt(2, 0)})
			if err != nil {
				return trialResult{}, err
			}
			bridgeNode, err := w.NewNode(peerhood.NodeConfig{Name: "C-bridge", Position: peerhood.Pt(2, 2)})
			if err != nil {
				return trialResult{}, err
			}
			client, err := w.NewNode(peerhood.NodeConfig{Name: "B-client", Position: peerhood.Pt(0, 0), Mobility: peerhood.Dynamic})
			if err != nil {
				return trialResult{}, err
			}

			var mu sync.Mutex
			delivered := 0
			if _, err := server.RegisterService("print", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
				defer c.Close()
				buf := make([]byte, 64)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if n > 0 {
						mu.Lock()
						delivered++
						mu.Unlock()
					}
				}
			}); err != nil {
				return trialResult{}, err
			}

			// Enough rounds that the alternate route via C is reliably
			// learned despite inquiry misses and fetch faults.
			w.RunDiscoveryRounds(5)

			conn, err := client.Connect(server.Addr(), "print")
			if err != nil {
				return trialResult{}, fmt.Errorf("initial connect: %w", err)
			}
			defer conn.Close()

			var (
				evMu        sync.Mutex
				triggeredAt time.Time // first trigger (the thesis' ~14s point)
				attemptAt   time.Time // start of the attempt that succeeded
				doneAt      time.Time
				failures    int
			)
			start := clk.Now()
			th, err := client.MonitorHandover(conn, peerhood.HandoverConfig{
				Observer: func(e peerhood.HandoverEvent, detail string) {
					evMu.Lock()
					defer evMu.Unlock()
					switch e {
					case handover.EventHandoverStart:
						if triggeredAt.IsZero() {
							triggeredAt = clk.Now()
						}
						if doneAt.IsZero() {
							attemptAt = clk.Now()
						}
					case handover.EventHandoverDone:
						if doneAt.IsZero() {
							doneAt = clk.Now()
						}
					case handover.EventHandoverFailed:
						failures++
					}
				},
			})
			if err != nil {
				return trialResult{}, err
			}
			defer th.Stop()

			// "subtracting the monitored link quality value artificially
			// by 1 every second" (§5.2.1).
			if d, ok := conn.Transport().(degrader); ok {
				d.StartDegradation(1)
			} else {
				return trialResult{}, fmt.Errorf("transport does not support degradation")
			}

			// Print "good morning!" 50 times at 1-second intervals.
			for i := 0; i < messages; i++ {
				if _, err := conn.Write([]byte("good morning!")); err != nil {
					break
				}
				clk.Sleep(time.Second)
			}
			clk.Sleep(2 * time.Second) // drain

			evMu.Lock()
			tr := trialResult{faultEvents: failures}
			if !triggeredAt.IsZero() {
				tr.triggered = triggeredAt.Sub(start)
			}
			if !doneAt.IsZero() && !attemptAt.IsZero() {
				tr.latency = doneAt.Sub(attemptAt)
				tr.handoverOK = true
			}
			evMu.Unlock()
			mu.Lock()
			tr.delivered = delivered
			mu.Unlock()
			tr.viaBridge = conn.Bridge() == bridgeNode.Addr()
			return tr, nil
		}()
		if err != nil {
			return Result{}, err
		}
		results = append(results, res)
		cfg.logf("trial %d: trigger=%s latency=%s delivered=%d viaBridge=%v",
			trial+1, secs(res.triggered), secs(res.latency), res.delivered, res.viaBridge)
	}

	var latencies, triggers []time.Duration
	deliveredTotal, okCount, viaBridgeCount := 0, 0, 0
	for _, r := range results {
		if r.handoverOK {
			okCount++
			latencies = append(latencies, r.latency)
			triggers = append(triggers, r.triggered)
		}
		if r.viaBridge {
			viaBridgeCount++
		}
		deliveredTotal += r.delivered
	}
	lat := metrics.SummarizeDurations(latencies)
	trg := metrics.SummarizeDurations(triggers)

	t := newTable("METRIC", "MEASURED", "PAPER")
	t.add("trials", fmt.Sprintf("%d", trials), "several")
	t.add("handover completed", fmt.Sprintf("%d/%d", okCount, trials), "yes (apart from connection faults)")
	t.add("re-routed via bridge C", fmt.Sprintf("%d/%d", viaBridgeCount, trials), "yes")
	t.add("trigger time mean", fmt.Sprintf("%.1fs", trg.Mean), "~14s (threshold 230, lowCount>3 at 1/s decay)")
	t.add("handover latency mean", fmt.Sprintf("%.1fs", lat.Mean), "same as a normal interconnection (4-15s)")
	t.add("handover latency min/max", fmt.Sprintf("%.1fs / %.1fs", lat.Min, lat.Max), "4-15s")
	t.add("messages delivered mean", fmt.Sprintf("%.1f/%d", float64(deliveredTotal)/float64(trials), messages), "50 (connection changes without problem)")

	return Result{
		Table: t.String(),
		Notes: []string{
			"paper: \"the connection changes were carried out with the same time delay like a normal interconnection process\"",
			"the replacement transport is built with PH_RECONNECT through the bridge; the logical connection survives",
		},
	}, nil
}
