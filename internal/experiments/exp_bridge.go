package experiments

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"peerhood"
	"peerhood/internal/library"
	"peerhood/internal/metrics"
)

// RunBridgePerformance reproduces the §4.3 bridge test (experiment E1,
// fig 4.5): two clients connect to a server through one bridge node; each
// attempt sends 20 timestamped messages at 1-second intervals. The thesis
// reports 3 of 10 attempts failing on Bluetooth connection faults,
// connection establishment between 3 and 18 seconds, and "almost
// negligible" relay delay.
func RunBridgePerformance(cfg Config) (Result, error) {
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: cfg.Seed, TimeScale: cfg.TimeScale})
	defer w.Close()
	clk := w.Clock()

	server, err := w.NewNode(peerhood.NodeConfig{Name: "server", Position: peerhood.Pt(16, 0), DialRetries: -1})
	if err != nil {
		return Result{}, err
	}
	// The bridge must not retry its next-hop dials either: the thesis
	// stack had no retry anywhere (it proposes one in §4.3).
	if _, err := w.NewNode(peerhood.NodeConfig{Name: "bridge", Position: peerhood.Pt(8, 0), DialRetries: -1}); err != nil {
		return Result{}, err
	}
	client1, err := w.NewNode(peerhood.NodeConfig{
		Name: "client1", Position: peerhood.Pt(0, 0),
		Mobility: peerhood.Dynamic, DialRetries: -1, // the thesis had no retry
	})
	if err != nil {
		return Result{}, err
	}
	client2, err := w.NewNode(peerhood.NodeConfig{
		Name: "client2", Position: peerhood.Pt(0, 2),
		Mobility: peerhood.Dynamic, DialRetries: -1,
	})
	if err != nil {
		return Result{}, err
	}

	// The server prints received messages in the thesis; here it records
	// one-way relay delays from embedded timestamps.
	var mu sync.Mutex
	var delays []time.Duration
	received := 0
	if _, err := server.RegisterService("sink", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		defer c.Close()
		buf := make([]byte, 8)
		for {
			if _, err := readFull(c, buf); err != nil {
				return
			}
			sent := time.Unix(0, int64(binary.BigEndian.Uint64(buf)))
			d := clk.Since(sent)
			mu.Lock()
			delays = append(delays, d)
			received++
			mu.Unlock()
		}
	}); err != nil {
		return Result{}, err
	}

	w.RunDiscoveryRounds(3)

	attempts := cfg.trials(10, 4)
	const messagesPerAttempt = 20
	var connectTimes []time.Duration
	failures := 0

	clients := []*peerhood.Node{client1, client2}
	for i := 0; i < attempts; i++ {
		cli := clients[i%len(clients)]

		// One single-route chain attempt, exactly as the thesis measured:
		// no retries, no fallback to alternate routes.
		entry, ok := cli.LookupDevice(server.Addr())
		if !ok {
			return Result{}, fmt.Errorf("client never discovered the server")
		}
		svc, ok := entry.Info.FindService("sink")
		if !ok {
			return Result{}, fmt.Errorf("sink service not advertised")
		}
		route, _ := entry.Best()

		start := clk.Now()
		conn, err := cli.Library().ConnectVia(library.Via{
			Route:       route,
			Target:      server.Addr(),
			ServiceName: svc.Name,
			ServicePort: svc.Port,
			ConnID:      uint64(i + 1),
		})
		if err != nil {
			failures++
			cfg.logf("attempt %d (%s): connection fault: %v", i+1, cli.Name(), err)
			continue
		}
		connectTimes = append(connectTimes, clk.Since(start))
		sendOK := true
		for msg := 0; msg < messagesPerAttempt; msg++ {
			buf := make([]byte, 8)
			binary.BigEndian.PutUint64(buf, uint64(clk.Now().UnixNano()))
			if _, err := conn.Write(buf); err != nil {
				sendOK = false
				break
			}
			clk.Sleep(time.Second)
		}
		_ = conn.Close()
		cfg.logf("attempt %d (%s): connected in %s, messages ok=%v", i+1, cli.Name(), secs(connectTimes[len(connectTimes)-1]), sendOK)
	}

	// Let the last in-flight messages land.
	clk.Sleep(3 * time.Second)

	mu.Lock()
	delaySummary := metrics.SummarizeDurations(delays)
	got := received
	mu.Unlock()
	connSummary := metrics.SummarizeDurations(connectTimes)

	t := newTable("METRIC", "MEASURED", "PAPER")
	t.add("connection attempts", fmt.Sprintf("%d", attempts), "10")
	t.add("failed (connection fault)", fmt.Sprintf("%d (%s)", failures, metrics.Ratio(failures, attempts)), "3 (30%)")
	t.add("successful", fmt.Sprintf("%d", attempts-failures), "7")
	t.add("connect time min", fmt.Sprintf("%.1fs", connSummary.Min), "3s")
	t.add("connect time max", fmt.Sprintf("%.1fs", connSummary.Max), "18s")
	t.add("connect time mean", fmt.Sprintf("%.1fs", connSummary.Mean), "-")
	t.add("messages delivered", fmt.Sprintf("%d / %d", got, len(connectTimes)*messagesPerAttempt), "all")
	t.add("relay delay mean", fmt.Sprintf("%.0fms", delaySummary.Mean*1000), "negligible")
	t.add("relay delay p95", fmt.Sprintf("%.0fms", delaySummary.P95*1000), "negligible")

	return Result{
		Table: t.String(),
		Notes: []string{
			"paper: \"the time needed for the connection was between 3-18 seconds\"; data transfer \"with an almost negligible time delay\"",
			"the bridged setup performs two Bluetooth dials (client->bridge, bridge->server), each 2-9s",
			"per-attempt fault probability compounds over the two dials to ~30%, matching the thesis' 3/10",
		},
	}, nil
}

// readFull fills buf from c.
func readFull(c *peerhood.Connection, buf []byte) (int, error) {
	off := 0
	for off < len(buf) {
		n, err := c.Read(buf[off:])
		off += n
		if err != nil {
			return off, err
		}
	}
	return off, nil
}
