package experiments

import (
	"fmt"
	"sync"
	"time"

	"peerhood"
	"peerhood/internal/device"
	"peerhood/internal/simnet"
)

// RunCommuter implements experiment S3, the commuter corridor: a mobile
// node traverses a line of relay nodes with overlapping coverage zones
// while streaming to a server anchored at the corridor start, so the
// connection must hand over from relay to relay as zones are crossed. The
// reactive thesis trigger (wait for quality < 230) is compared A/B with
// the linkmon-driven predictive trigger (re-route when the predicted
// time-to-threshold falls inside the horizon), sweeping traversal speed
// and — at walking speed — relay churn (zones blinking off and on).
// Reported per cell: handovers (predictive share), spurious-handover
// rate, mean disruption time, and dropped bytes.
func RunCommuter(cfg Config) (Result, error) {
	type cell struct {
		speed float64
		churn float64
	}
	speedCells := []cell{{0.7, 0}, {1.4, 0}, {2.8, 0}, {8.3, 0}}
	churnCells := []cell{{1.4, 0.25}, {1.4, 0.5}}
	if cfg.Quick {
		speedCells = []cell{{1.4, 0}, {2.8, 0}}
		churnCells = []cell{{1.4, 0.5}}
	}
	trials := cfg.trials(6, 2)

	var regCompleted, regFailed, regSpans, regResumed int64
	run := func(t *table, c cell) (reactive, predictive commuterSummary, err error) {
		for _, predictiveMode := range []bool{false, true} {
			var agg commuterAgg
			for trial := 0; trial < trials; trial++ {
				seed := cfg.Seed + int64(trial)*977 + int64(c.speed*100) + int64(c.churn*10000)
				st, err := commuterTrial(cfg, seed, c.speed, c.churn, predictiveMode)
				if err != nil {
					return commuterSummary{}, commuterSummary{}, err
				}
				agg.add(st)
			}
			regCompleted += agg.regCompleted
			regFailed += agg.regFailed
			regSpans += agg.regSpans
			regResumed += agg.resumed
			sum := agg.summary(trials)
			mode := "reactive"
			if predictiveMode {
				mode = "predictive"
				predictive = sum
			} else {
				reactive = sum
			}
			t.add(mode,
				fmt.Sprintf("%.1f", c.speed),
				fmt.Sprintf("%.0f%%", c.churn*100),
				fmt.Sprintf("%.1f", sum.handovers),
				fmt.Sprintf("%.1f", sum.predictive),
				fmt.Sprintf("%.0f%%", sum.spuriousRate*100),
				fmt.Sprintf("%.2fs", sum.disruption),
				fmt.Sprintf("%.0f", sum.droppedBytes),
				fmt.Sprintf("%.0f%%", sum.delivery*100),
			)
			cfg.logf("S3 %s speed=%.1f churn=%.0f%%: handovers=%.1f disruption=%.2fs dropped=%.0fB",
				mode, c.speed, c.churn*100, sum.handovers, sum.disruption, sum.droppedBytes)
		}
		return reactive, predictive, nil
	}

	t := newTable("MODE", "SPEED m/s", "CHURN", "HANDOVERS", "PREDICTIVE", "SPURIOUS", "MEAN DISRUPTION", "DROPPED BYTES", "DELIVERY")
	var walkReactive, walkPredictive commuterSummary
	for _, c := range speedCells {
		r, p, err := run(t, c)
		if err != nil {
			return Result{}, err
		}
		if c.speed == 1.4 {
			walkReactive, walkPredictive = r, p
		}
	}
	for _, c := range churnCells {
		if _, _, err := run(t, c); err != nil {
			return Result{}, err
		}
	}

	notes := []string{
		"corridor: server at x=0, relays every 3 m to x=18 (10 m coverage, hard cell edge: threshold at 8.3 m), commuter walks 1->22 m streaming 64 B every 200 ms",
		"predictive = linkmon trend (EWMA level + windowed slope) triggers PH_RECONNECT when predicted time-to-threshold <= 5 s; reactive = thesis 230-threshold low-count trigger",
		fmt.Sprintf("spurious rate = handovers beyond the %d zone transitions the corridor requires, as a share of all handovers", commuterNeededHandovers),
		fmt.Sprintf("walking speed (1.4 m/s): mean disruption %.2fs predictive vs %.2fs reactive (%.1fx)",
			walkPredictive.disruption, walkReactive.disruption, safeRatio(walkReactive.disruption, walkPredictive.disruption)),
		"expected shape: predictive's edge peaks at walking/jogging speed; at stroll speed reactive already has margin (predictive's extra handovers show up as spurious rate), and at vehicle speed zones outpace any trigger (the thesis' short-setup caveat)",
		"relay churn narrows the edge: a proactive re-route can land on a zone that blinks off moments later",
		fmt.Sprintf("dropped bytes are the restart cost: the S3 stream runs a plain (pre-continuity) connection, so every completed handover restarted lossily (resumed %d of %d); S5's dual/predictive+cont row makes the same class of switches over the continuity window and drops 0 B",
			regResumed, regCompleted),
		fmt.Sprintf("telemetry registry across all trials (the series phctl stats serves): peerhood_handover_completed_total=%d, peerhood_handover_failed_total=%d, %d trace spans recorded",
			regCompleted, regFailed, regSpans),
	}
	return Result{Table: t.String(), Notes: notes}, nil
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		if a <= 0 {
			return 1
		}
		return a / 0.001
	}
	return a / b
}

// commuterStats is one trial's raw measurements.
type commuterStats struct {
	handovers  int64
	predictive int64
	spurious   int64
	disruption time.Duration
	sentBytes  int64
	gotBytes   int64
	// resumed splits handovers into zero-loss PH_RESUME re-attachments vs
	// lossy restarts (restarted = handovers - resumed). S3's stream runs a
	// plain connection, so this stays 0 and every switch pays the dropped-
	// bytes column; the S5 dual/predictive+cont row is the same walk with
	// the continuity window resuming instead.
	resumed int64
	// Registry-sourced cross-checks: the commuter's telemetry counters
	// (the series phctl stats serves) and its trace-span total.
	regCompleted int64
	regFailed    int64
	regSpans     int64
}

type commuterAgg struct {
	handovers, predictive, spurious float64
	disruption                      float64
	sent, got                       float64
	resumed                         int64
	regCompleted, regFailed         int64
	regSpans                        int64
}

func (a *commuterAgg) add(s commuterStats) {
	a.handovers += float64(s.handovers)
	a.predictive += float64(s.predictive)
	a.spurious += float64(s.spurious)
	a.disruption += s.disruption.Seconds()
	a.sent += float64(s.sentBytes)
	a.got += float64(s.gotBytes)
	a.resumed += s.resumed
	a.regCompleted += s.regCompleted
	a.regFailed += s.regFailed
	a.regSpans += s.regSpans
}

type commuterSummary struct {
	handovers, predictive float64
	spuriousRate          float64
	disruption            float64
	droppedBytes          float64
	delivery              float64
}

func (a commuterAgg) summary(trials int) commuterSummary {
	n := float64(trials)
	s := commuterSummary{
		handovers:  a.handovers / n,
		predictive: a.predictive / n,
		disruption: a.disruption / n,
		// sent - got is honest loss only because a write torn mid-frame
		// reports exactly the bytes the wire took and stops (pinned by
		// TestWritePartialAccountingReturnsImmediately); a whole-buffer
		// retry would re-send a prefix the receiver already counted and
		// this difference would mix duplication into the loss figure.
		droppedBytes: (a.sent - a.got) / n,
	}
	if a.handovers > 0 {
		s.spuriousRate = a.spurious / a.handovers
	}
	if a.sent > 0 {
		s.delivery = a.got / a.sent
	}
	return s
}

// Corridor geometry. The 230 threshold sits at a third of the 10 m
// coverage radius (handover_test.go's quality formula), so the healthy
// band of a link is only ~3.3 m wide: relays every 3 m keep a freshly
// handed-over link above the threshold long enough for a trend to form —
// and keep the relay backbone's own hops above the threshold too.
const (
	commuterRelaySpacing = 3.0
	commuterRelayCount   = 6
	commuterWalkFrom     = 1.0
	commuterWalkTo       = 22.0
	// commuterNeededHandovers is the corridor's minimum handover count:
	// one per relay the commuter progresses through (direct -> relay1 ->
	// ... -> relay6). Handovers beyond it are counted spurious.
	commuterNeededHandovers = commuterRelayCount
)

// commuterTrial runs one corridor traversal and measures it.
func commuterTrial(cfg Config, seed int64, speed, churn float64, predictive bool) (commuterStats, error) {
	const (
		msgBytes     = 64
		sendInterval = 200 * time.Millisecond
	)

	// The corridor compresses at most 100x: its cadences (200 ms sends,
	// sub-second dials) are finer than the thesis scenarios', and above
	// ~100x the wall-clock cost of protocol work itself starts eating
	// whole simulated seconds.
	scale := cfg.TimeScale
	if scale > 100 {
		scale = 100
	}
	w := peerhood.NewWorld(peerhood.WorldConfig{
		Seed:              seed,
		TimeScale:         scale,
		LinkCheckInterval: 250 * time.Millisecond,
	})
	defer w.Close()
	clk := w.Clock()

	// A short-setup micro-cell profile (the §5.3 conclusion: routing
	// handover needs one); the thesis' 2-9 s Bluetooth dial cannot follow
	// this corridor at any speed and would drown the A/B contrast in
	// connect faults. Discovery is tightened to match (zones are crossed
	// in seconds), and EdgeQuality 225 gives the cells a hard edge:
	// quality stays usable until ~8.3 m and the link breaks at 10 m, so a
	// trigger that waits for the 230 crossing has only ~1.7 m of corridor
	// left to complete its re-route — the regime proactive handover
	// exists for.
	p := simnet.DefaultParams(device.TechBluetooth)
	p.ConnectMin, p.ConnectMax, p.FaultProb = 50*time.Millisecond, 200*time.Millisecond, 0.03
	p.InquiryDuration, p.DiscoveryCycle = 200*time.Millisecond, time.Second
	p.ResponseProb, p.Asymmetric = 0.99, false
	p.EdgeQuality = 225
	w.Sim().SetParams(device.TechBluetooth, p)

	// The static backbone discovers itself during warmup and then stays
	// frozen (nothing it knows ever changes); only the commuter keeps
	// discovering, driven synchronously from the walk loop below so the
	// cadence is exact under time compression.
	server, err := w.NewNode(peerhood.NodeConfig{Name: "server", Position: peerhood.Pt(0, 0)})
	if err != nil {
		return commuterStats{}, err
	}
	relays := make([]*peerhood.Node, commuterRelayCount)
	for i := range relays {
		relays[i], err = w.NewNode(peerhood.NodeConfig{
			Name:     fmt.Sprintf("relay%d", i+1),
			Position: peerhood.Pt(commuterRelaySpacing*float64(i+1), 0),
		})
		if err != nil {
			return commuterStats{}, err
		}
	}
	// SwapWait is kept short so a write into a dead link fails fast (the
	// message is the corridor's loss) instead of stalling the walk loop.
	// The commuter's background discovery keeps its route prices tracking
	// its movement (1 s cycle); handover monitoring is stepped from the
	// walk loop for an exact sampling cadence.
	commuter, err := w.NewNode(peerhood.NodeConfig{
		Name: "commuter", Position: peerhood.Pt(commuterWalkFrom, 0.5), Mobility: peerhood.Dynamic,
		SwapWait: 50 * time.Millisecond, AutoDiscover: true,
		LinkWindow: 16, // average the quality noise over ~3 s of samples
	})
	if err != nil {
		return commuterStats{}, err
	}

	// The server's sink records each read's size and arrival time; the
	// receiver-side gap analysis below derives disruption from them.
	var (
		mu       sync.Mutex
		arrivals []time.Time
		gotBytes int64
	)
	if _, err := server.RegisterService("sink", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		defer c.Close()
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(buf)
			if n > 0 {
				mu.Lock()
				arrivals = append(arrivals, clk.Now())
				gotBytes += int64(n)
				mu.Unlock()
			}
			if err != nil {
				return
			}
		}
	}); err != nil {
		return commuterStats{}, err
	}

	w.RunDiscoveryRounds(3)

	conn, err := commuter.Connect(server.Addr(), "sink")
	if err != nil {
		// The initial dial can fault; an empty trial is a valid (bad) data
		// point rather than an error.
		return commuterStats{}, nil
	}
	defer conn.Close()

	// The monitor runs on its own loop, like the thesis' HandoverThread:
	// during a proactive re-route the stream keeps flowing on the old
	// link, which is the whole point of acting before the break. 200 ms
	// of simulated time is 2 ms of wall time at the clamped scale — fine
	// for a background ticker.
	th, err := commuter.MonitorHandover(conn, peerhood.HandoverConfig{
		Interval:         200 * time.Millisecond,
		MaxRouteAttempts: 6,
		Predictive:       predictive,
		PredictHorizon:   5 * time.Second,
		PredictCooldown:  time.Second,
	})
	if err != nil {
		return commuterStats{}, err
	}
	defer th.Stop()

	commuter.SetModel(peerhood.Walk(peerhood.Pt(commuterWalkFrom, 0.5), peerhood.Pt(commuterWalkTo, 0.5), speed))

	// Relay churn: a churn fraction of relays blink — 6 s up, 3 s down —
	// forcing recovery through whatever zone still stands.
	blinkers := int(churn * float64(len(relays)))
	start := clk.Now()
	setBlinkers := func(down bool) {
		for i := 0; i < blinkers; i++ {
			relays[i*len(relays)/blinkers].Device().SetDown(down)
		}
	}
	updateChurn := func() {
		if blinkers > 0 {
			setBlinkers(int(clk.Since(start)/(3*time.Second))%3 == 2)
		}
	}

	walkDur := time.Duration((commuterWalkTo - commuterWalkFrom) / speed * float64(time.Second))
	msg := make([]byte, msgBytes)
	var sentBytes int64
	for clk.Since(start) < walkDur {
		updateChurn()
		sentBytes += msgBytes
		_, _ = conn.Write(msg) // a lost message is data the corridor dropped
		clk.Sleep(sendInterval)
	}
	if blinkers > 0 {
		setBlinkers(false)
	}
	// Drain: let an in-flight recovery finish so its gap is measured.
	clk.Sleep(2 * time.Second)

	st := th.Stats()
	tm := telemetrySums(commuter.Daemon())
	out := commuterStats{
		handovers:    st.Handovers,
		predictive:   st.PredictiveHandovers,
		resumed:      st.Resumes,
		sentBytes:    sentBytes,
		regCompleted: int64(tm[`peerhood_handover_completed_total`]),
		regFailed:    int64(tm[`peerhood_handover_failed_total`]),
		regSpans:     int64(commuter.Daemon().Tracer().Total()),
	}
	if extra := st.Handovers - commuterNeededHandovers; extra > 0 {
		out.spurious = extra
	}
	mu.Lock()
	out.gotBytes = gotBytes
	out.disruption = arrivalGaps(arrivals, sendInterval)
	mu.Unlock()
	return out, nil
}

// arrivalGaps sums receiver-side silence beyond the sending cadence: any
// inter-arrival gap over 3x the send interval contributes (gap -
// interval) of disruption.
func arrivalGaps(arrivals []time.Time, interval time.Duration) time.Duration {
	var out time.Duration
	for i := 1; i < len(arrivals); i++ {
		if gap := arrivals[i].Sub(arrivals[i-1]); gap > 3*interval {
			out += gap - interval
		}
	}
	return out
}
