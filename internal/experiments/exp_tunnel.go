package experiments

import (
	"fmt"
	"time"

	"peerhood"
	"peerhood/internal/metrics"
)

// RunTunnel reproduces fig 6.1 (experiment F6.1): coverage amplification.
// A phone deep inside a tunnel has no direct path to the GPRS-equipped
// server at the mouth; a chain of Bluetooth bridge nodes installed along
// the tunnel relays the connection, giving the phone access to the
// server's "internet" service.
func RunTunnel(cfg Config) (Result, error) {
	trials := cfg.trials(5, 2)

	run := func(withRelays bool) (reached int, hops int, connects []time.Duration, err error) {
		for trial := 0; trial < trials; trial++ {
			w := peerhood.NewWorld(peerhood.WorldConfig{Seed: cfg.Seed + int64(trial), TimeScale: cfg.TimeScale})
			clk := w.Clock()

			server, err := w.NewNode(peerhood.NodeConfig{
				Name: "mouth-server", Position: peerhood.Pt(0, 0),
				Techs: []peerhood.Tech{peerhood.Bluetooth, peerhood.GPRS},
			})
			if err != nil {
				w.Close()
				return 0, 0, nil, err
			}
			if withRelays {
				for i, x := range []float64{8, 16, 24} {
					if _, err := w.NewNode(peerhood.NodeConfig{
						Name: fmt.Sprintf("relay%d", i+1), Position: peerhood.Pt(x, 0),
					}); err != nil {
						w.Close()
						return 0, 0, nil, err
					}
				}
			}
			phone, err := w.NewNode(peerhood.NodeConfig{
				Name: "phone", Position: peerhood.Pt(30, 0), Mobility: peerhood.Dynamic,
			})
			if err != nil {
				w.Close()
				return 0, 0, nil, err
			}

			if _, err := server.RegisterService("internet", "gprs-gateway", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
				defer c.Close()
				buf := make([]byte, 256)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}); err != nil {
				w.Close()
				return 0, 0, nil, err
			}

			w.RunDiscoveryRounds(5)

			entry, ok := phone.LookupDevice(serverBTAddr(server))
			if ok {
				if best, has := entry.Best(); has {
					hops = best.Jumps
				}
			}

			start := clk.Now()
			conn, err := phone.Connect(serverBTAddr(server), "internet")
			if err == nil {
				connects = append(connects, clk.Since(start))
				if _, err := conn.Write([]byte("GET /")); err == nil {
					buf := make([]byte, 16)
					if n, err := conn.Read(buf); err == nil && n > 0 {
						reached++
					}
				}
				_ = conn.Close()
			}
			w.Close()
		}
		return reached, hops, connects, nil
	}

	withReached, withHops, withConnects, err := run(true)
	if err != nil {
		return Result{}, err
	}
	withoutReached, _, _, err := run(false)
	if err != nil {
		return Result{}, err
	}

	cs := metrics.SummarizeDurations(withConnects)
	t := newTable("SCENARIO", "GPRS SERVICE REACHED", "ROUTE JUMPS", "CONNECT TIME MEAN")
	t.add("bare tunnel (no relays)", fmt.Sprintf("%d/%d", withoutReached, trials), "-", "-")
	t.add("bridged tunnel (3 relays)", fmt.Sprintf("%d/%d", withReached, trials), fmt.Sprintf("%d", withHops), fmt.Sprintf("%.1fs", cs.Mean))

	return Result{
		Table: t.String(),
		Notes: []string{
			"paper (fig 6.1): Bluetooth relays inside the tunnel let a phone reach the GPRS-equipped server at the mouth",
			"each extra bridge hop adds one dial's connection latency; the chain is acknowledged end-to-end before data flows",
		},
	}, nil
}

func serverBTAddr(n *peerhood.Node) peerhood.Addr {
	a, _ := n.AddrFor(peerhood.Bluetooth)
	return a
}
