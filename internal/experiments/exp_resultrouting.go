package experiments

import (
	"errors"
	"fmt"
	"time"

	"peerhood"
	"peerhood/internal/migration"
)

// RunResultRouting reproduces the §5.3 picture-analysis experiment
// (experiment E4, figs 5.9-5.10): a phone ships a picture to an analysis
// server while walking away. Payload size separates the thesis' three
// regimes: (1) small tasks finish inside coverage (inline result);
// (2) medium tasks lose the connection during processing and the server
// returns the result through its routing table (dial-back); (3) huge
// tasks break mid-upload and are lost ("connection lack"), because the
// §5.2 routing handover cannot beat Bluetooth's connection latency. A
// fourth row shows the integrated stack (handover attached) saving part of
// the huge uploads — the improvement the thesis projects for short-setup
// technologies.
func RunResultRouting(cfg Config) (Result, error) {
	type regime struct {
		name     string
		packages int
		handover bool
	}
	// 32 KiB packages over the 100 KiB/s Bluetooth link against a ~9 s
	// coverage window (walking from 1 m to the 10 m edge at 1.0 m/s), with
	// the analysis crunching 64 KiB/s.
	const pkgSize = 32 << 10
	regimes := []regime{
		{"small", 4, false},
		{"medium", 12, false},
		{"huge", 40, false},
		{"huge+handover", 40, true},
	}
	trials := cfg.trials(6, 2)
	// Fine-grained transfer timing needs head-room between wall-clock
	// scheduling overhead and simulated time: cap the compression.
	if cfg.TimeScale > 200 {
		cfg.TimeScale = 200
	}

	t := newTable("PAYLOAD", "PACKAGES", "KB", "INLINE", "DIAL-BACK", "LOST", "MEAN TIME")
	notes := []string{
		"paper case 1: \"with a smaller number of data packages ... the task could be carried out before the device leaves\"",
		"paper case 2: \"connection is broken during the processing ... server looks for the device in its neighborhood routing table and tries to send the result back\"",
		"paper case 3: \"connection is broken during the data packages transmission ... producing a connection lack\" — handover loses the race against Bluetooth connect latency",
		"extension row: with the §5.2 handover thread attached, some huge uploads survive by re-routing through the corridor bridges",
	}

	for _, r := range regimes {
		inline, dialback, lost := 0, 0, 0
		var durations []time.Duration
		for trial := 0; trial < trials; trial++ {
			outcome, err := resultRoutingTrial(cfg, cfg.Seed+int64(trial)*977+int64(r.packages)*7, r.packages, pkgSize, r.handover)
			if err != nil {
				return Result{}, err
			}
			switch outcome.delivery {
			case migration.DeliveryInline:
				inline++
				durations = append(durations, outcome.duration)
			case migration.DeliveryDialBack:
				dialback++
				durations = append(durations, outcome.duration)
			default:
				lost++
			}
		}
		meanTime := "-"
		if len(durations) > 0 {
			var sum time.Duration
			for _, d := range durations {
				sum += d
			}
			meanTime = secs(sum / time.Duration(len(durations)))
		}
		t.add(r.name,
			fmt.Sprintf("%d", r.packages),
			fmt.Sprintf("%d", r.packages*pkgSize/1024),
			fmt.Sprintf("%d/%d", inline, trials),
			fmt.Sprintf("%d/%d", dialback, trials),
			fmt.Sprintf("%d/%d", lost, trials),
			meanTime,
		)
		cfg.logf("%s: inline=%d dialback=%d lost=%d", r.name, inline, dialback, lost)
	}

	return Result{Table: t.String(), Notes: notes}, nil
}

type rrOutcome struct {
	delivery migration.Delivery
	duration time.Duration
}

func resultRoutingTrial(cfg Config, seed int64, packages, pkgSize int, attachHandover bool) (rrOutcome, error) {
	w := peerhood.NewWorld(peerhood.WorldConfig{
		Seed:              seed,
		TimeScale:         cfg.TimeScale,
		LinkCheckInterval: 500 * time.Millisecond,
	})
	defer w.Close()

	server, err := w.NewNode(peerhood.NodeConfig{Name: "analysis", Position: peerhood.Pt(0, 0), AutoDiscover: true})
	if err != nil {
		return rrOutcome{}, err
	}
	if _, err := w.NewNode(peerhood.NodeConfig{Name: "bridge1", Position: peerhood.Pt(6, 0), AutoDiscover: true}); err != nil {
		return rrOutcome{}, err
	}
	if _, err := w.NewNode(peerhood.NodeConfig{Name: "bridge2", Position: peerhood.Pt(12, 0), AutoDiscover: true}); err != nil {
		return rrOutcome{}, err
	}
	phone, err := w.NewNode(peerhood.NodeConfig{
		Name: "phone", Position: peerhood.Pt(1, 0),
		Mobility: peerhood.Dynamic, AutoDiscover: true,
		SwapWait: 5 * time.Second, // fail fast without a repaired transport
	})
	if err != nil {
		return rrOutcome{}, err
	}

	// 64 KiB/s processing: the medium picture takes ~6 s — the window in
	// which the walker leaves coverage.
	if _, err := migration.NewServer(migration.ServerConfig{
		Library:         server.Library(),
		ProcessingRate:  64 << 10,
		DialBack:        true,
		DialBackTimeout: 90 * time.Second,
	}); err != nil {
		return rrOutcome{}, err
	}
	client, err := migration.NewClient(phone.Library())
	if err != nil {
		return rrOutcome{}, err
	}

	w.RunDiscoveryRounds(3)

	// Build the picture.
	pkgs := make([][]byte, packages)
	for i := range pkgs {
		p := make([]byte, pkgSize)
		for j := range p {
			p[j] = byte(i * j)
		}
		pkgs[i] = p
	}

	out, err := client.Submit(migration.ClientConfig{
		Library:       phone.Library(),
		Provider:      server.Addr(),
		TaskID:        uint64(seed),
		Packages:      pkgs,
		ResultTimeout: 120 * time.Second,
		OnConnect: func(vc *peerhood.Connection) {
			// Fig 5.3 moment A: the device is connected and "the image
			// transmission is started" — the walk starts now, ending at
			// 15 m where only bridge2 still covers the phone.
			phone.SetModel(peerhood.Walk(phone.Position(), peerhood.Pt(15, 0), 1.0))
			if attachHandover {
				_, _ = phone.MonitorHandover(vc, peerhood.HandoverConfig{})
			}
		},
	})
	if err != nil {
		if errors.Is(err, migration.ErrResultTimeout) || errors.Is(err, migration.ErrUploadFailed) {
			return rrOutcome{delivery: migration.DeliveryNone}, nil
		}
		return rrOutcome{}, err
	}
	return rrOutcome{delivery: out.Delivery, duration: out.Duration}, nil
}
