package experiments

import (
	"strings"
	"testing"
)

// TestMetropolisRegistered: S6 is runnable through the registry like
// every other experiment.
func TestMetropolisRegistered(t *testing.T) {
	found := false
	for _, id := range IDs() {
		if id == "S6" {
			found = true
		}
	}
	if !found {
		t.Fatal("S6 not registered")
	}
	res, err := Run("s6", Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "S6" || res.Table == "" {
		t.Fatalf("unexpected result: %+v", res)
	}
	if len(res.Notes) == 0 || !strings.Contains(res.Notes[len(res.Notes)-1], "per-node step cost spread") {
		t.Fatalf("missing scaling note: %v", res.Notes)
	}
}

// TestMetropolisSameSeedReplayIsByteIdentical: the S6 table (counters and
// world digests, everything simulated) must replay byte-identically for
// the same seed. Wall-clock readings live in the Notes and are excluded.
func TestMetropolisSameSeedReplayIsByteIdentical(t *testing.T) {
	run := func() string {
		t.Helper()
		res, err := Run("S6", Config{Seed: 99, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Table
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("same-seed S6 tables diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestMetropolisMillionSameSeedReplay pins the determinism contract at
// the million-node tier: two same-seed cities, stepped the same number of
// supersteps, must land on byte-identical world digests. The tier costs
// minutes and ~1 GB, so like the 1M bench scale it only runs when
// PH_S6_1M=1 (the CI bench-trajectory job sets it).
func TestMetropolisMillionSameSeedReplay(t *testing.T) {
	if !metropolisMillion() {
		t.Skipf("set %s=1 to run the million-node replay", MetropolisMillionEnv)
	}
	run := func() string {
		t.Helper()
		sw, err := MetropolisWorld(7, 1000000)
		if err != nil {
			t.Fatal(err)
		}
		defer sw.Close()
		for s := 0; s < 5; s++ {
			sw.Step()
		}
		return sw.Digest()
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("same-seed 1M digests diverged: %s vs %s", first, second)
	}
}
