// Package experiments regenerates every empirical table and figure in the
// thesis' evaluation (see DESIGN.md §4 for the index). Each experiment
// builds a simulated world through the public peerhood API, runs the
// scenario, and renders a table in the style of the thesis' reported
// results. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config parametrises an experiment run.
type Config struct {
	// Seed makes the run reproducible; it is echoed in the result.
	Seed int64
	// TimeScale compresses simulated time (default 1000×).
	TimeScale int
	// Quick reduces trial counts for fast smoke runs (tests use it).
	Quick bool
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1000
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

func (c Config) trials(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

func (c Config) logf(format string, args ...interface{}) {
	fmt.Fprintf(c.Log, format+"\n", args...)
}

// Result is one experiment's rendered output.
type Result struct {
	ID    string
	Title string
	// Table is the formatted reproduction of the thesis' reported rows.
	Table string
	// Notes carry observations comparable to the thesis' prose findings.
	Notes []string
	// Seed echoes the configuration for reproducibility.
	Seed int64
}

// String renders the result for terminal output.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s (seed %d) ===\n", r.ID, r.Title, r.Seed)
	b.WriteString(r.Table)
	if len(r.Notes) > 0 {
		b.WriteString("\nNotes:\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "  - %s\n", n)
		}
	}
	return b.String()
}

// Runner executes one experiment.
type Runner func(cfg Config) (Result, error)

type registration struct {
	id     string
	title  string
	runner Runner
}

var registry = []registration{
	{"T1", "Mobility-sum table (§3.4.3)", RunMobilityTable},
	{"F3.3", "Coverage exclusion: legacy vs dynamic discovery (fig 3.3)", RunExclusion},
	{"F3.6", "Worked routing table on the 5-node topology (fig 3.6)", RunStorageTable},
	{"F3.9", "Link-quality equity rule (fig 3.9)", RunQualityEquity},
	{"F3.10", "Discovery notification delay vs jumps (fig 3.10)", RunDiscoveryDelay},
	{"G1", "Gnutella flooding vs PeerHood neighbour exchange (§3.2)", RunGnutellaComparison},
	{"E1", "Bridge interconnection performance (§4.3, fig 4.5)", RunBridgePerformance},
	{"E2", "Routing handover simulation (§5.2.1, fig 5.8)", RunHandoverSimulation},
	{"E3", "Corridor walk: handover vs connection latency (§5.2.1)", RunCorridorWalk},
	{"E4", "Result routing across payload sizes (§5.3, figs 5.9–5.10)", RunResultRouting},
	{"F6.1", "Coverage amplification through a bridge tunnel (fig 6.1)", RunTunnel},
	{"A1", "Ablation: route selection policies (§3.4)", RunRouteAblation},
	{"S1", "City block: 1,000 mobile nodes on the spatial-grid index", RunScale},
	{"S2", "Dense plaza: delta vs full neighbourhood sync under churn", RunPlaza},
	{"S3", "Commuter corridor: predictive vs reactive handover across coverage zones", RunCommuter},
	{"S4", "Urban blackout: scripted blackouts, crash/restart churn, deterministic replay", RunBlackout},
	{"S5", "Hotspot archipelago: policy-driven vertical handover across WLAN islands on a GPRS umbrella", RunHotspot},
	{"S6", "Metropolis: 100k-node constant-density city on the sharded event-driven substrate", RunMetropolis},
	{"S8", "Rush hour: heavy-traffic soak of real daemons over tcpnet sockets", RunRushHour},
}

// IDs returns the registered experiment IDs in canonical order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.id
	}
	return out
}

// Title returns an experiment's title.
func Title(id string) (string, bool) {
	for _, r := range registry {
		if strings.EqualFold(r.id, id) {
			return r.title, true
		}
	}
	return "", false
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (Result, error) {
	for _, r := range registry {
		if strings.EqualFold(r.id, id) {
			res, err := r.runner(cfg.withDefaults())
			if err != nil {
				return Result{}, fmt.Errorf("experiment %s: %w", r.id, err)
			}
			res.ID, res.Title = r.id, r.title
			res.Seed = cfg.withDefaults().Seed
			return res, nil
		}
	}
	return Result{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
}

// RunAll executes every experiment in order.
func RunAll(cfg Config) ([]Result, error) {
	out := make([]Result, 0, len(registry))
	for _, r := range registry {
		res, err := Run(r.id, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// table is a tiny fixed-width table builder.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...interface{}) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[minI(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// secs renders a simulated duration in seconds with sensible precision.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.1fs", d.Seconds())
}

// sortedKeys returns map keys in sorted order for deterministic tables.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
