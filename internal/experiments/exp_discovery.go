package experiments

import (
	"fmt"
	"time"

	"peerhood"
	"peerhood/internal/gnutella"
	"peerhood/internal/rng"
	"peerhood/internal/simnet"
)

// RunExclusion reproduces fig 3.3 (experiment F3.3): the 7-node star
// topology in which A covers B, C, D, E and E additionally covers F and G.
// Under the legacy one-level fetch, B/C/D never learn of F/G; dynamic
// discovery reaches total awareness.
func RunExclusion(cfg Config) (Result, error) {
	build := func(legacy bool) (map[string]int, map[string]bool) {
		w := peerhood.NewWorld(peerhood.WorldConfig{Seed: cfg.Seed, Instant: true})
		defer w.Close()
		mk := func(name string, x, y float64) *peerhood.Node {
			n, err := w.NewNode(peerhood.NodeConfig{
				Name: name, Position: peerhood.Pt(x, y),
				LegacyDiscovery: legacy,
			})
			if err != nil {
				panic(err)
			}
			return n
		}
		// A central; B,C,D,E inside A's 10m radius; F,G only inside E's.
		nodes := map[string]*peerhood.Node{
			"A": mk("A", 0, 0),
			"B": mk("B", -8, 0),
			"C": mk("C", 0, 8),
			"D": mk("D", 8, 0),
			"E": mk("E", 0, -8),
			"F": mk("F", 6, -14),
			"G": mk("G", -6, -14),
		}
		w.RunDiscoveryRounds(6)

		known := make(map[string]int, len(nodes))
		sawFG := make(map[string]bool, len(nodes))
		for name, n := range nodes {
			known[name] = len(n.Devices())
			_, f := n.FindDevice("F")
			_, g := n.FindDevice("G")
			if name == "F" {
				f = true
			}
			if name == "G" {
				g = true
			}
			sawFG[name] = f && g
		}
		return known, sawFG
	}

	legacyKnown, legacyFG := build(true)
	dynKnown, dynFG := build(false)

	t := newTable("NODE", "LEGACY KNOWN", "LEGACY SEES F&G", "DYNAMIC KNOWN", "DYNAMIC SEES F&G")
	for _, name := range []string{"A", "B", "C", "D", "E", "F", "G"} {
		t.add(name,
			fmt.Sprintf("%d", legacyKnown[name]), yesNo(legacyFG[name]),
			fmt.Sprintf("%d", dynKnown[name]), yesNo(dynFG[name]),
		)
	}
	return Result{
		Table: t.String(),
		Notes: []string{
			"paper: with one-level fetch \"B, C and D ... will never be notified of the existence of devices F and G\"",
			"measured: legacy B/C/D stop at two-jump vision; dynamic discovery reaches all 6 peers everywhere",
		},
	}, nil
}

// RunDiscoveryDelay reproduces fig 3.10 (experiment F3.10): the maximum
// delay for a change k jumps away to become visible is k discovery cycles
// (and worse under Bluetooth's asymmetric inquiry).
func RunDiscoveryDelay(cfg Config) (Result, error) {
	const n = 7 // line A..G, spacing 8m: only adjacent pairs in coverage
	w := peerhood.NewWorld(peerhood.WorldConfig{Seed: cfg.Seed, Instant: true})
	defer w.Close()

	nodes := make([]*peerhood.Node, n)
	for i := 0; i < n; i++ {
		node, err := w.NewNode(peerhood.NodeConfig{
			Name:     fmt.Sprintf("n%d", i),
			Position: peerhood.Pt(float64(i)*8, 0),
		})
		if err != nil {
			return Result{}, err
		}
		nodes[i] = node
	}

	// Warm up: full awareness.
	w.RunDiscoveryRounds(n)

	// Change: the far end registers a new service; count the rounds until
	// each node's storage reflects it.
	if _, err := nodes[n-1].RegisterService("new-service", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		_ = c.Close()
	}); err != nil {
		return Result{}, err
	}

	seenAt := make([]int, n)
	for i := range seenAt {
		seenAt[i] = -1
	}
	seenAt[n-1] = 0
	for round := 1; round <= 2*n; round++ {
		// One round everywhere, nearest-to-the-observer first: node i
		// inquires before node i+1 has refreshed, so the change crawls one
		// hop per cycle — fig 3.10's worst case.
		for i := 0; i < n; i++ {
			nodes[i].RunDiscoveryRound()
		}
		for i := 0; i < n; i++ {
			if seenAt[i] >= 0 {
				continue
			}
			if provs := nodes[i].Providers("new-service"); len(provs) > 0 {
				seenAt[i] = round
			}
		}
	}

	cycle := simnet.DefaultParams(peerhood.Bluetooth).DiscoveryCycle
	t := newTable("JUMPS FROM CHANGE", "ROUNDS TO NOTICE", "MAX DELAY (jumps x cycle)")
	for i := n - 2; i >= 0; i-- {
		jumps := n - 1 - i
		measured := "never"
		if seenAt[i] >= 0 {
			measured = fmt.Sprintf("%d", seenAt[i])
		}
		t.add(fmt.Sprintf("%d", jumps), measured, secs(time.Duration(jumps)*cycle))
	}
	return Result{
		Table: t.String(),
		Notes: []string{
			"paper: \"Max Delay = Num Jump * searching cycle time\" (fig 3.10)",
			"measured: a change k jumps away needs k discovery rounds to propagate",
			"Bluetooth asymmetric inquiry adds further random misses in live (non-deterministic) runs",
		},
	}, nil
}

// RunGnutellaComparison reproduces the §3.2 argument (experiment G1):
// Gnutella floods generate per-query traffic that grows with degree and
// TTL, while PeerHood pays a fixed per-round neighbour-exchange cost and
// answers queries from local storage.
func RunGnutellaComparison(cfg Config) (Result, error) {
	src := rng.New(cfg.Seed)
	queries := cfg.trials(50, 10)

	t := newTable("NODES", "AVG DEG", "GNUTELLA MSGS/QUERY", "PEERHOOD MSGS/ROUND", "PEERHOOD MSGS/QUERY", "WARMUP ROUNDS")
	for _, n := range []int{10, 20, 40, 80} {
		g := gnutella.RandomConnected(n, 4, src.Fork())
		totalMsgs := 0
		for q := 0; q < queries; q++ {
			from := src.Intn(n)
			holder := src.Intn(n)
			res := gnutella.Flood(g, from, 7, map[int]bool{holder: true})
			totalMsgs += res.Messages
		}
		avgDeg := float64(2*g.Edges()) / float64(n)
		t.add(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", avgDeg),
			fmt.Sprintf("%.0f", float64(totalMsgs)/float64(queries)),
			fmt.Sprintf("%d", gnutella.PeerHoodRoundMessages(g)),
			"0 (local table lookup)",
			fmt.Sprintf("%d", gnutella.Diameter(g)),
		)
	}
	return Result{
		Table: t.String(),
		Notes: []string{
			"paper: Gnutella's \"huge network traffic ... due to the high number of query messages\" is unsuitable for mobile devices",
			"measured: flooding costs grow with size and repeat per query; PeerHood's exchange is per-round, query cost is zero",
			"PeerHood's trade-off: total awareness needs diameter-many warm-up rounds (fig 3.10)",
		},
	}, nil
}

func yesNo(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
