package experiments

import (
	"fmt"

	"peerhood"
)

// RunRouteAblation quantifies the §3.4.3 design argument behind preferring
// static bridges (experiment A1): with the thesis policy
// (jumps → mobility → quality) the network routes through fixed devices;
// with a naive quality-first policy it picks the closer — but mobile —
// bridge, and loses the route when that device walks off.
func RunRouteAblation(cfg Config) (Result, error) {
	trials := cfg.trials(10, 3)

	type policyResult struct {
		choseStatic int
		survived    int
	}
	run := func(qualityFirst bool) (policyResult, error) {
		var pr policyResult
		for trial := 0; trial < trials; trial++ {
			w := peerhood.NewWorld(peerhood.WorldConfig{Seed: cfg.Seed + int64(trial), Instant: true})

			// Client and server out of mutual range; two candidate
			// bridges: a *static* one and a *dynamic* one that is closer
			// (better link quality) but will walk away.
			server, err := w.NewNode(peerhood.NodeConfig{Name: "server", Position: peerhood.Pt(16, 0)})
			if err != nil {
				w.Close()
				return pr, err
			}
			staticBridge, err := w.NewNode(peerhood.NodeConfig{
				Name: "static-bridge", Position: peerhood.Pt(8, 3), Mobility: peerhood.Static,
				QualityFirst: qualityFirst,
			})
			if err != nil {
				w.Close()
				return pr, err
			}
			dynBridge, err := w.NewNode(peerhood.NodeConfig{
				Name: "dyn-bridge", Position: peerhood.Pt(8, 0), Mobility: peerhood.Dynamic,
				QualityFirst: qualityFirst,
			})
			if err != nil {
				w.Close()
				return pr, err
			}
			client, err := w.NewNode(peerhood.NodeConfig{
				Name: "client", Position: peerhood.Pt(0, 0), Mobility: peerhood.Dynamic,
				QualityFirst: qualityFirst,
			})
			if err != nil {
				w.Close()
				return pr, err
			}

			if _, err := server.RegisterService("echo", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
				defer c.Close()
				buf := make([]byte, 64)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}); err != nil {
				w.Close()
				return pr, err
			}

			w.RunDiscoveryRounds(3)

			conn, err := client.Connect(server.Addr(), "echo")
			if err != nil {
				w.Close()
				continue
			}
			viaStatic := conn.Bridge() == staticBridge.Addr()
			if viaStatic {
				pr.choseStatic++
			}
			_ = dynBridge

			// The dynamic bridge leaves; any relay through it dies.
			dynBridge.Device().SetDown(true)
			w.CheckLinks()

			conn.SetSending(false) // fail fast: no handover attached
			if _, err := conn.Write([]byte("ping")); err == nil {
				buf := make([]byte, 8)
				if _, err := conn.Read(buf); err == nil {
					pr.survived++
				}
			}
			_ = conn.Close()
			w.Close()
		}
		return pr, nil
	}

	thesis, err := run(false)
	if err != nil {
		return Result{}, err
	}
	naive, err := run(true)
	if err != nil {
		return Result{}, err
	}

	t := newTable("POLICY", "CHOSE STATIC BRIDGE", "CONNECTION SURVIVED DEPARTURE")
	t.add("thesis (jumps, mobility, quality)", fmt.Sprintf("%d/%d", thesis.choseStatic, trials), fmt.Sprintf("%d/%d", thesis.survived, trials))
	t.add("ablated (jumps, quality, mobility)", fmt.Sprintf("%d/%d", naive.choseStatic, trials), fmt.Sprintf("%d/%d", naive.survived, trials))

	return Result{
		Table: t.String(),
		Notes: []string{
			"paper: \"we will always give preference to static terminals as a bridge ... converting them to the backbone of the network\" (§3.4.3)",
			"the dynamic bridge offers better instantaneous quality but takes the route down when it leaves",
		},
	}, nil
}
