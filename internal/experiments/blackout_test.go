package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestBlackoutExperimentDeterministic pins S4's headline guarantee: the
// whole experiment — stream metrics, sync counters, bus counters, and the
// fault trace embedded in the notes — is a pure function of its seed.
// Two consecutive invocations must agree byte for byte.
func TestBlackoutExperimentDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Quick: true}
	r1, err := Run("S4", cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	r2, err := Run("S4", cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if r1.Table != r2.Table {
		t.Fatalf("same-seed tables differ:\n--- first\n%s--- second\n%s", r1.Table, r2.Table)
	}
	if !reflect.DeepEqual(r1.Notes, r2.Notes) {
		t.Fatalf("same-seed notes (incl. fault trace) differ:\n%v\n%v", r1.Notes, r2.Notes)
	}
}

// TestBlackoutExperimentShape sanity-checks that the scripted weather
// actually bit: messages were lost, disruption accrued, handovers
// happened, and the epoch-changing restart forced full-sync fallbacks.
func TestBlackoutExperimentShape(t *testing.T) {
	res, err := Run("S4", Config{Seed: 42, Quick: true})
	if err != nil {
		t.Fatalf("Run(S4): %v", err)
	}
	for _, mode := range []string{"reactive", "predictive"} {
		if !strings.Contains(res.Table, mode) {
			t.Fatalf("table missing %s row:\n%s", mode, res.Table)
		}
	}
	st, err := blackoutTrial(Config{Seed: 42}.withDefaults(), 42, false)
	if err != nil {
		t.Fatalf("blackoutTrial: %v", err)
	}
	if st.sent == 0 || st.lost == 0 {
		t.Fatalf("no stream loss under scripted blackouts: sent=%d lost=%d", st.sent, st.lost)
	}
	if st.lost >= st.sent {
		t.Fatalf("nothing delivered: sent=%d lost=%d", st.sent, st.lost)
	}
	if st.disruption == 0 {
		t.Fatal("no disruption measured under two blackouts")
	}
	if st.handovers == 0 {
		t.Fatal("no handovers across the corridor")
	}
	if st.fullFetches == 0 {
		t.Fatal("relay restart with a fresh epoch forced no full-sync fallbacks")
	}
	if st.deltaFetches == 0 {
		t.Fatal("steady-state rounds produced no delta syncs")
	}
	if st.busEvents == 0 || st.busLinkLost == 0 {
		t.Fatalf("event bus silent: events=%d linkLost=%d", st.busEvents, st.busLinkLost)
	}
	if len(st.trace) != 6 {
		t.Fatalf("fault trace has %d entries, want 6:\n%s", len(st.trace), strings.Join(st.trace, "\n"))
	}
}
