package experiments

import (
	"strings"
	"testing"
)

// TestRushHourQuick runs the S8 soak in quick mode: 3 real daemons over
// tcpnet loopback sockets, 48 concurrent clients, ~1.5 s of churn. It is
// the race-detector stress test for the whole daemon+library+tcpnet stack
// under concurrent load (run with -race in CI).
func TestRushHourQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("S8 opens hundreds of real sockets; skipped with -short")
	}
	o, err := RushHourSoak(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if o.Daemons != 3 || o.Clients != 48 {
		t.Fatalf("quick shape = %d daemons / %d clients, want 3/48", o.Daemons, o.Clients)
	}
	if o.Conns == 0 {
		t.Fatal("no connection completed")
	}
	if o.Reconnects == 0 {
		t.Fatal("no PH_RECONNECT churn exercised")
	}
	// The soak runs on loopback with no fault injection: failures here are
	// real bugs (lost wakeups, swap races, leaked conns), not weather.
	// Allow a whisper of slack for teardown racing the stop signal.
	if o.Errors > o.Conns/100 {
		t.Fatalf("%d errors across %d connections", o.Errors, o.Conns)
	}
	if o.DialP99 <= 0 || o.StreamP99 <= 0 {
		t.Fatalf("missing latency percentiles: dial p99 %v, stream p99 %v", o.DialP99, o.StreamP99)
	}
}

// TestRushHourRendersTable checks the registry wiring and the rendered
// metrics the CI artifact greps for.
func TestRushHourRendersTable(t *testing.T) {
	if testing.Short() {
		t.Skip("S8 opens hundreds of real sockets; skipped with -short")
	}
	res, err := Run("S8", Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"connections/sec", "dial p99", "stream p99", "reconnect churns", "MiB/s"} {
		if !strings.Contains(res.Table, want) {
			t.Fatalf("table missing %q:\n%s", want, res.Table)
		}
	}
}
