// Package discovery implements the thesis' Dynamic Device Discovery
// (ch. 3): the per-plugin inquiry loop of fig 3.12 — inquire, fetch
// information from new or stale devices over short connections, fold their
// transmitted DeviceStorages into ours (AnalyzeNeighbourhoodDevices,
// fig 3.13), and age out devices that stopped responding.
package discovery

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/phproto"
	"peerhood/internal/plugin"
	"peerhood/internal/rng"
	"peerhood/internal/storage"
)

// Config parametrises one Discoverer (one per plugin, as in the thesis).
type Config struct {
	Store  *storage.Storage
	Plugin plugin.Plugin
	Clock  clock.Clock

	// Cycle is the period between inquiry rounds; zero takes the plugin's
	// nominal discovery cycle.
	Cycle time.Duration

	// ServiceCheckInterval is how stale a device's fetched information may
	// become before the next response triggers a re-fetch (fig 3.12's
	// energy-saving re-check interval). Zero means fetch every round.
	ServiceCheckInterval time.Duration

	// LegacyOneHop reproduces the pre-thesis PeerHood (§3.1, fig 3.3):
	// neighbourhood reports are only accepted for the reporter's *direct*
	// neighbours, so awareness stops at two jumps and the coverage
	// exclusion problem reappears. Used as the baseline in experiment
	// F3.3.
	LegacyOneHop bool
}

// RoundReport summarises one discovery round.
type RoundReport struct {
	// Responses is how many devices answered the inquiry.
	Responses int
	// Fetches is how many information fetches were performed.
	Fetches int
	// FetchErrors counts fetch attempts that failed (connection fault, or
	// the device is not PeerHood-capable and refused the daemon port).
	FetchErrors int
	// Merge accumulates the AnalyzeNeighbourhoodDevices results.
	Merge storage.MergeResult
	// Removed lists devices aged out this round.
	Removed []device.Addr
}

// Discoverer runs the discovery loop of one plugin.
type Discoverer struct {
	cfg Config
	src *rng.Source

	// roundMu serialises rounds: a manually driven round and the
	// background loop must never interleave their inquiry/aging phases.
	roundMu sync.Mutex

	mu     sync.Mutex
	rounds int64
	stop   chan struct{}
	done   chan struct{}
}

// New returns a Discoverer. It panics if Store, Plugin, or Clock is nil.
func New(cfg Config) *Discoverer {
	if cfg.Store == nil || cfg.Plugin == nil || cfg.Clock == nil {
		panic("discovery: Store, Plugin and Clock are required")
	}
	if cfg.Cycle <= 0 {
		cfg.Cycle = cfg.Plugin.DiscoveryCycle()
	}
	// Phase and jitter derive from the radio address: deterministic per
	// device, decorrelated across devices. Without this, loops started
	// together stay phase-locked and asymmetric radios (Bluetooth) never
	// see each other — each is mid-inquiry whenever the others look.
	h := fnv.New64a()
	_, _ = h.Write([]byte(cfg.Plugin.Addr().String()))
	return &Discoverer{cfg: cfg, src: rng.New(int64(h.Sum64()))}
}

// Rounds returns how many rounds have completed.
func (d *Discoverer) Rounds() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rounds
}

// RunRound performs one synchronous discovery round (fig 3.12). Tests and
// deterministic experiments call it directly; Start loops it. Rounds are
// serialised, so manual rounds and the background loop compose safely.
func (d *Discoverer) RunRound() RoundReport {
	d.roundMu.Lock()
	defer d.roundMu.Unlock()
	var rep RoundReport
	responses := d.cfg.Plugin.Inquire()
	rep.Responses = len(responses)

	responded := make(map[device.Addr]bool, len(responses))
	for _, r := range responses {
		responded[r.Addr] = true
		_, known := d.cfg.Store.Lookup(r.Addr)
		if known && !d.cfg.Store.NeedsFetch(r.Addr, d.cfg.ServiceCheckInterval) {
			// Known and fresh: refresh presence and quality only
			// (fig 3.12 "set timestamp = 0").
			d.cfg.Store.UpsertDirect(device.Info{Addr: r.Addr}, r.Quality)
			continue
		}
		rep.Fetches++
		info, nb, err := Fetch(d.cfg.Plugin, r.Addr)
		if err != nil {
			rep.FetchErrors++
			if known {
				// Fetch failed but the device did respond: keep it alive.
				d.cfg.Store.UpsertDirect(device.Info{Addr: r.Addr}, r.Quality)
			}
			continue
		}
		d.cfg.Store.UpsertDirect(info, r.Quality)
		d.cfg.Store.UpdateInfo(info)
		if d.cfg.LegacyOneHop {
			kept := nb[:0]
			for _, e := range nb {
				if e.Jumps == 0 {
					kept = append(kept, e)
				}
			}
			nb = kept
		}
		m := d.cfg.Store.MergeNeighborhood(r.Addr, r.Quality, nb)
		rep.Merge.Added += m.Added
		rep.Merge.Updated += m.Updated
		rep.Merge.Rejected += m.Rejected
		rep.Merge.Removed += m.Removed
	}

	rep.Removed = d.cfg.Store.AgeRound(d.cfg.Plugin.Tech(), responded)

	d.mu.Lock()
	d.rounds++
	d.mu.Unlock()
	return rep
}

// Start launches the discovery loop: one round per cycle until Stop. It is
// a no-op if already running.
func (d *Discoverer) Start() {
	d.mu.Lock()
	if d.stop != nil {
		d.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	d.stop, d.done = stop, done
	d.mu.Unlock()

	go func() {
		defer close(done)
		// Random initial phase so co-started devices don't inquire in
		// lockstep.
		initial := time.Duration(d.src.Float64() * float64(d.cfg.Cycle))
		select {
		case <-d.cfg.Clock.After(initial):
		case <-stop:
			return
		}
		for {
			d.RunRound()
			// ±10% per-round jitter keeps phases drifting apart.
			wait := time.Duration(float64(d.cfg.Cycle) * (0.9 + 0.2*d.src.Float64()))
			select {
			case <-d.cfg.Clock.After(wait):
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit. Idempotent.
func (d *Discoverer) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Fetch performs the information exchange of fig 3.7 against a device's
// daemon port: device information (including services) and the
// neighbourhood table, over one short connection. An ErrRefused dial means
// the device carries no PeerHood daemon — the SDP "PeerHood tag" check of
// §2.3 maps to this.
func Fetch(p plugin.Plugin, to device.Addr) (device.Info, []phproto.NeighborEntry, error) {
	conn, err := p.Dial(to, device.PortDaemon)
	if err != nil {
		return device.Info{}, nil, fmt.Errorf("discovery: fetching %v: %w", to, err)
	}
	defer conn.Close()

	if err := phproto.Write(conn, &phproto.InfoRequest{Kind: phproto.InfoDevice}); err != nil {
		return device.Info{}, nil, fmt.Errorf("discovery: requesting device info: %w", err)
	}
	di, err := phproto.ReadExpect[*phproto.DeviceInfo](conn)
	if err != nil {
		return device.Info{}, nil, fmt.Errorf("discovery: reading device info: %w", err)
	}

	if err := phproto.Write(conn, &phproto.InfoRequest{Kind: phproto.InfoNeighborhood}); err != nil {
		return device.Info{}, nil, fmt.Errorf("discovery: requesting neighbourhood: %w", err)
	}
	nb, err := phproto.ReadExpect[*phproto.Neighborhood](conn)
	if err != nil {
		return device.Info{}, nil, fmt.Errorf("discovery: reading neighbourhood: %w", err)
	}
	return di.Info, nb.Entries, nil
}
