// Package discovery implements the thesis' Dynamic Device Discovery
// (ch. 3): the per-plugin inquiry loop of fig 3.12 — inquire, fetch
// information from new or stale devices over short connections, fold their
// transmitted DeviceStorages into ours (AnalyzeNeighbourhoodDevices,
// fig 3.13), and age out devices that stopped responding.
//
// Neighbourhood fetches are versioned: the discoverer remembers the
// (epoch, generation) of each peer's storage it last merged and asks only
// for the delta since then, falling back to the legacy full exchange for
// peers that predate the handshake and to a full resync whenever the
// advertised table digest stops matching its reconstruction. Per-round
// discovery traffic therefore scales with neighbourhood churn instead of
// neighbourhood size.
package discovery

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/events"
	"peerhood/internal/linkmon"
	"peerhood/internal/phproto"
	"peerhood/internal/plugin"
	"peerhood/internal/rng"
	"peerhood/internal/storage"
	"peerhood/internal/telemetry"
)

// Config parametrises one Discoverer (one per plugin, as in the thesis).
type Config struct {
	Store  *storage.Storage
	Plugin plugin.Plugin
	Clock  clock.Clock

	// Cycle is the period between inquiry rounds; zero takes the plugin's
	// nominal discovery cycle.
	Cycle time.Duration

	// ServiceCheckInterval is how stale a device's fetched information may
	// become before the next response triggers a re-fetch (fig 3.12's
	// energy-saving re-check interval). Zero means fetch every round.
	ServiceCheckInterval time.Duration

	// LegacyOneHop reproduces the pre-thesis PeerHood (§3.1, fig 3.3):
	// neighbourhood reports are only accepted for the reporter's *direct*
	// neighbours, so awareness stops at two jumps and the coverage
	// exclusion problem reappears. Used as the baseline in experiment
	// F3.3. Implies DisableDeltaSync.
	LegacyOneHop bool

	// DisableDeltaSync forces the legacy full-table exchange on every
	// fetch instead of the versioned delta handshake — the baseline side
	// of experiment S2's delta-vs-full comparison.
	DisableDeltaSync bool

	// DisableIdentity makes this discoverer fetch like a pre-identity
	// peer: plain InfoDevice instead of InfoDeviceEx, and sync requests
	// without the SyncFlagSiblings capability bit (so responders serve
	// legacy-form entries). The interop baseline for the cross-interface
	// identity plane.
	DisableIdentity bool

	// Hierarchical switches neighbourhood fetches to the aggregate/refine
	// exchange: full rows are mirrored only for the best MaxLocalCells
	// aggregation cells of each peer's table, the far field is remembered
	// as per-cell digests, and distant cells are refined on demand
	// (RefineCell). Per-peer state is then O(local rows + NumAggCells)
	// instead of O(peer table). Ignored when DisableIdentity or
	// DisableDeltaSync is set; peers that hang up on the scoped request
	// fall back to the flat exchange like any other legacy peer.
	Hierarchical bool
	// MaxLocalCells caps how many cells are held as full rows per peer in
	// hierarchical mode; zero means 8.
	MaxLocalCells int

	// Bus, if set, receives DeviceAppeared when a never-before-stored
	// device is successfully fetched and DeviceLost when the aging sweep
	// removes one — the discovery half of the neighbourhood event feed.
	Bus *events.Bus
	// Monitor, if set, is fed every inquiry response's link quality, so
	// each discovery round doubles as a trend sample for every direct
	// neighbour.
	Monitor *linkmon.Monitor

	// Registry, if set, receives the discovery counters (rounds, fetches
	// by sync mode, errors, wire bytes, legacy fallbacks, digest
	// resyncs). Telemetry handles are nil-safe, so an unset registry
	// costs one predictable branch per observation.
	Registry *telemetry.Registry
	// Tracer, if set, records one span per neighbourhood fetch so
	// same-seed runs can be compared sync-for-sync.
	Tracer *telemetry.Tracer
}

// RoundReport summarises one discovery round.
type RoundReport struct {
	// Responses is how many devices answered the inquiry.
	Responses int
	// Fetches is how many information fetches were performed.
	Fetches int
	// FetchErrors counts fetch attempts that failed (connection fault, or
	// the device is not PeerHood-capable and refused the daemon port).
	FetchErrors int
	// Merge accumulates the AnalyzeNeighbourhoodDevices results.
	Merge storage.MergeResult
	// Removed lists devices aged out this round.
	Removed []device.Addr
	// DeltaFetches and FullFetches split the successful fetches by sync
	// mode; legacy exchanges count as full. AggregateFetches counts
	// hierarchical (aggregate/refine) fetches, with CellsRefined the cell
	// fetches they performed.
	DeltaFetches     int
	FullFetches      int
	AggregateFetches int
	CellsRefined     int
	// SyncBytes counts the wire bytes read and written on this round's
	// fetch connections — the traffic the delta handshake exists to shrink.
	SyncBytes int64
	// MergeTime is the wall-clock time spent folding fetched
	// neighbourhoods into the storage this round.
	MergeTime time.Duration
}

// Discoverer runs the discovery loop of one plugin.
type Discoverer struct {
	cfg Config
	src *rng.Source

	// roundMu serialises rounds: a manually driven round and the
	// background loop must never interleave their inquiry/aging phases.
	// peers is only touched under it.
	roundMu sync.Mutex
	// peers is the per-peer sync state of the versioned neighbourhood
	// exchange; entries die with the peer (AgeRound removal).
	peers map[device.Addr]*peerSync

	mu     sync.Mutex
	rounds int64
	stop   chan struct{}
	done   chan struct{}

	// Telemetry handles, resolved once in New; all nil-safe.
	roundsCtr    *telemetry.Counter
	fetchesFull  *telemetry.Counter
	fetchesDelta *telemetry.Counter
	fetchesAgg   *telemetry.Counter
	cellRefines  *telemetry.Counter
	fetchErrs    *telemetry.Counter
	syncBytes    *telemetry.Counter
	roundBytes   *telemetry.Gauge
	legacyFalls  *telemetry.Counter
	resyncs      *telemetry.Counter
}

// legacyReprobeInterval is how many legacy fetches pass before the
// handshake is attempted again. A "legacy" verdict can be a misread
// transient fault (the peer dropped the connection mid-handshake for radio
// reasons), so it must decay: a true legacy peer costs one extra dial per
// interval, a misjudged modern peer gets its delta sync back within it.
const legacyReprobeInterval = 16

// peerSync is what the discoverer remembers about one peer's storage
// between rounds: the (epoch, generation) it last merged, plus a shadow of
// the peer's transmitted table as per-entry fingerprints so every delta can
// be verified against the advertised digest end to end.
type peerSync struct {
	// legacy marks a peer that closed the connection on the sync
	// handshake; it is fetched with the pre-handshake full exchange until
	// the next re-probe (sinceProbe counts the fetches since the verdict).
	legacy     bool
	sinceProbe int
	epoch      uint64
	gen        uint64
	hashes     map[device.Addr]uint64
	digest     uint64
	// lastQuality and lastMobility are the first-hop link quality and
	// bridge mobility class every via-this-peer route was last priced at
	// (by a full merge or a RefreshBridgeLink pass); lastQuality is -1
	// until the first merge. A delta round whose inquiry and descriptor
	// report the same values can skip the refresh scan entirely.
	lastQuality  int
	lastMobility device.Mobility

	// Hierarchical-mode state: hier marks that hashes shadows only the
	// refined (local) cells; cellHash is the verified per-cell XOR hash of
	// each locally mirrored cell; far remembers the last aggregate summary
	// of every occupied cell we do not mirror. All empty in flat mode.
	hier     bool
	cellHash map[uint8]uint64
	far      map[uint8]phproto.CellSummary
}

// syncResult is one fetched neighbourhood, ready to merge.
type syncResult struct {
	full       bool
	aggregate  bool
	entries    []phproto.NeighborEntry
	tombstones []device.Addr
	refined    int
}

// apply folds a sync response into the shadow. It returns false when the
// response does not continue this state (wrong epoch or generation) or when
// the reconstructed digest misses the advertised one — the caller must then
// resync with a full fetch.
func (ps *peerSync) apply(resp *phproto.NeighborhoodSync) (syncResult, bool) {
	if resp.Full {
		ps.epoch, ps.gen = resp.Epoch, resp.ToGen
		ps.hashes = make(map[device.Addr]uint64, len(resp.Entries))
		ps.digest = 0
		for _, en := range resp.Entries {
			h := en.Hash()
			ps.hashes[en.Info.Addr] = h
			ps.digest ^= h
		}
		if uint32(len(ps.hashes)) != resp.DigestCount || ps.digest != resp.DigestHash {
			// The advertised digest does not cover what was sent: the
			// responder's own digest state diverged from its table. Merge
			// the entries — they are the freshest view available — but
			// record no sync state for a later delta to be verified
			// against; the next fetch starts over with a FULL request
			// instead of a doomed delta attempt plus in-connection resync.
			*ps = peerSync{legacy: ps.legacy, sinceProbe: ps.sinceProbe, lastQuality: ps.lastQuality, lastMobility: ps.lastMobility}
		}
		return syncResult{full: true, entries: resp.Entries}, true
	}
	// No shadow means no baseline to continue from: a DELTA answering a
	// first-contact (or post-reset) request is invalid even when its
	// (epoch, gen) echo the zeros we sent — reject it rather than trust
	// entries we cannot verify (a well-behaved responder answers FULL).
	if ps.hashes == nil || resp.Epoch != ps.epoch || resp.FromGen != ps.gen {
		return syncResult{}, false
	}
	for _, en := range resp.Entries {
		h := en.Hash()
		if old, ok := ps.hashes[en.Info.Addr]; ok {
			ps.digest ^= old
		}
		ps.hashes[en.Info.Addr] = h
		ps.digest ^= h
	}
	for _, a := range resp.Tombstones {
		if old, ok := ps.hashes[a]; ok {
			ps.digest ^= old
			delete(ps.hashes, a)
		}
	}
	if uint32(len(ps.hashes)) != resp.DigestCount || ps.digest != resp.DigestHash {
		return syncResult{}, false
	}
	ps.gen = resp.ToGen
	return syncResult{entries: resp.Entries, tombstones: resp.Tombstones}, true
}

// New returns a Discoverer. It panics if Store, Plugin, or Clock is nil.
func New(cfg Config) *Discoverer {
	if cfg.Store == nil || cfg.Plugin == nil || cfg.Clock == nil {
		panic("discovery: Store, Plugin and Clock are required")
	}
	if cfg.Cycle <= 0 {
		cfg.Cycle = cfg.Plugin.DiscoveryCycle()
	}
	// Phase and jitter derive from the radio address: deterministic per
	// device, decorrelated across devices. Without this, loops started
	// together stay phase-locked and asymmetric radios (Bluetooth) never
	// see each other — each is mid-inquiry whenever the others look.
	if cfg.LegacyOneHop {
		// The pre-thesis baseline predates the sync handshake too.
		cfg.DisableDeltaSync = true
	}
	if cfg.MaxLocalCells <= 0 {
		cfg.MaxLocalCells = 8
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(cfg.Plugin.Addr().String()))
	r := cfg.Registry
	return &Discoverer{
		cfg:          cfg,
		src:          rng.New(int64(h.Sum64())),
		peers:        make(map[device.Addr]*peerSync),
		roundsCtr:    r.Counter(`peerhood_discovery_rounds_total`),
		fetchesFull:  r.Counter(`peerhood_discovery_fetches_total{kind="full"}`),
		fetchesDelta: r.Counter(`peerhood_discovery_fetches_total{kind="delta"}`),
		fetchesAgg:   r.Counter(`peerhood_discovery_fetches_total{kind="aggregate"}`),
		cellRefines:  r.Counter(`peerhood_discovery_cells_refined_total`),
		fetchErrs:    r.Counter(`peerhood_discovery_fetch_errors_total`),
		syncBytes:    r.Counter(`peerhood_discovery_sync_bytes_total`),
		roundBytes:   r.Gauge(`peerhood_discovery_sync_bytes_round`),
		legacyFalls:  r.Counter(`peerhood_discovery_legacy_fallbacks_total`),
		resyncs:      r.Counter(`peerhood_discovery_resyncs_total`),
	}
}

// Rounds returns how many rounds have completed.
func (d *Discoverer) Rounds() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rounds
}

// RunRound performs one synchronous discovery round (fig 3.12). Tests and
// deterministic experiments call it directly; Start loops it. Rounds are
// serialised, so manual rounds and the background loop compose safely.
func (d *Discoverer) RunRound() RoundReport {
	d.roundMu.Lock()
	defer d.roundMu.Unlock()
	var rep RoundReport
	responses := d.cfg.Plugin.Inquire()
	rep.Responses = len(responses)

	responded := make(map[device.Addr]bool, len(responses))
	for _, r := range responses {
		responded[r.Addr] = true
		if d.cfg.Monitor != nil {
			d.cfg.Monitor.Observe(r.Addr, r.Quality)
		}
		_, known := d.cfg.Store.Lookup(r.Addr)
		if known && !d.cfg.Store.NeedsFetch(r.Addr, d.cfg.ServiceCheckInterval) {
			// Known and fresh: refresh presence and quality only
			// (fig 3.12 "set timestamp = 0").
			d.cfg.Store.UpsertDirect(device.Info{Addr: r.Addr}, r.Quality)
			continue
		}
		rep.Fetches++
		sp := d.cfg.Tracer.Begin("sync.fetch", 0, r.Addr.String())
		info, sr, err := d.fetchPeer(r.Addr, &rep)
		if err != nil {
			d.cfg.Tracer.End(sp, "error")
			rep.FetchErrors++
			d.fetchErrs.Inc()
			if known {
				// Fetch failed but the device did respond: keep it alive.
				d.cfg.Store.UpsertDirect(device.Info{Addr: r.Addr}, r.Quality)
			} else {
				// Never successfully fetched and not stored: drop the sync
				// state too, or non-PeerHood devices that answer inquiries
				// but refuse the daemon port would accumulate forever.
				delete(d.peers, r.Addr)
			}
			continue
		}
		d.cfg.Store.UpsertDirect(info, r.Quality)
		d.cfg.Store.UpdateInfo(info)
		if !known && d.cfg.Bus != nil {
			d.cfg.Bus.Publish(events.Event{
				Type:    events.DeviceAppeared,
				Addr:    r.Addr,
				Quality: r.Quality,
				Detail:  info.Name,
			})
		}
		if d.cfg.LegacyOneHop {
			kept := sr.entries[:0]
			for _, e := range sr.entries {
				if e.Jumps == 0 {
					kept = append(kept, e)
				}
			}
			sr.entries = kept
		}
		mergeStart := time.Now()
		var m storage.MergeResult
		ps := d.peers[r.Addr]
		if sr.full {
			rep.FullFetches++
			d.fetchesFull.Inc()
			d.cfg.Tracer.End(sp, "full")
			m = d.cfg.Store.MergeNeighborhood(r.Addr, r.Quality, sr.entries)
		} else {
			if sr.aggregate {
				rep.AggregateFetches++
				rep.CellsRefined += sr.refined
				d.fetchesAgg.Inc()
				d.cfg.Tracer.End(sp, "aggregate")
			} else {
				rep.DeltaFetches++
				d.fetchesDelta.Inc()
				d.cfg.Tracer.End(sp, "delta")
			}
			// The delta only carries the peer's changes; our own link to
			// the peer (and its mobility class) may have drifted since the
			// rows were merged. The refresh scan is skipped when neither
			// has: every via-peer route is already priced at
			// (lastQuality, lastMobility).
			if ps == nil || ps.lastQuality != r.Quality || ps.lastMobility != info.Mobility {
				d.cfg.Store.RefreshBridgeLink(r.Addr, r.Quality)
			}
			m = d.cfg.Store.MergeNeighborhoodDelta(r.Addr, r.Quality, sr.entries, sr.tombstones)
		}
		if ps != nil {
			ps.lastQuality = r.Quality
			ps.lastMobility = info.Mobility
		}
		rep.MergeTime += time.Since(mergeStart)
		rep.Merge.Added += m.Added
		rep.Merge.Updated += m.Updated
		rep.Merge.Rejected += m.Rejected
		rep.Merge.Removed += m.Removed
	}

	var lostBridges []device.Addr
	rep.Removed, lostBridges = d.cfg.Store.AgeRound(d.cfg.Plugin.Tech(), responded)
	for _, a := range rep.Removed {
		delete(d.peers, a)
		if d.cfg.Monitor != nil {
			d.cfg.Monitor.MarkLost(a)
		}
		if d.cfg.Bus != nil {
			d.cfg.Bus.Publish(events.Event{Type: events.DeviceLost, Addr: a, Quality: -1})
		}
	}
	for _, a := range lostBridges {
		// The aging sweep just deleted our via-a knowledge while a's own
		// storage may be unchanged — an empty delta from a would never
		// bring it back. Drop the sync state so a's next fetch is FULL.
		delete(d.peers, a)
	}
	for _, a := range d.cfg.Store.TakeEvictedBridges(d.cfg.Plugin.Tech()) {
		// Same hazard via the alternates cap: a device just became
		// unreachable whose via-a route was evicted locally, so a's
		// (unchanged) storage would never re-send it. A full fetch of a
		// restores it.
		delete(d.peers, a)
	}

	d.mu.Lock()
	d.rounds++
	d.mu.Unlock()
	d.roundsCtr.Inc()
	d.syncBytes.Add(uint64(rep.SyncBytes))
	// The per-round series the memory-flat work sizes against: with the
	// hierarchical exchange, this tracks O(local cells + changed far
	// cells), not neighbourhood population.
	d.roundBytes.Set(rep.SyncBytes)
	return rep
}

// Start launches the discovery loop: one round per cycle until Stop. It is
// a no-op if already running.
func (d *Discoverer) Start() {
	d.mu.Lock()
	if d.stop != nil {
		d.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	d.stop, d.done = stop, done
	d.mu.Unlock()

	go func() {
		defer close(done)
		// Random initial phase so co-started devices don't inquire in
		// lockstep.
		initial := time.Duration(d.src.Float64() * float64(d.cfg.Cycle))
		select {
		case <-d.cfg.Clock.After(initial):
		case <-stop:
			return
		}
		for {
			d.RunRound()
			// ±10% per-round jitter keeps phases drifting apart.
			wait := time.Duration(float64(d.cfg.Cycle) * (0.9 + 0.2*d.src.Float64()))
			select {
			case <-d.cfg.Clock.After(wait):
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit. Idempotent.
func (d *Discoverer) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// errSyncUnsupported marks a peer that dropped the connection on the sync
// handshake — a daemon predating the versioned exchange.
var errSyncUnsupported = errors.New("discovery: peer does not support neighbourhood sync")

// countingConn counts the bytes crossing a fetch connection in both
// directions, so experiments can report discovery traffic.
type countingConn struct {
	plugin.Conn
	n int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.n += int64(n)
	return n, err
}

// fetchPeer performs one information fetch against a direct neighbour,
// versioned when both sides support it. It returns the peer's descriptor
// and the neighbourhood (full table or delta) to merge.
func (d *Discoverer) fetchPeer(to device.Addr, rep *RoundReport) (device.Info, syncResult, error) {
	ps := d.peers[to]
	if ps == nil {
		ps = &peerSync{lastQuality: -1}
		d.peers[to] = ps
	}
	if ps.legacy {
		ps.sinceProbe++
		if ps.sinceProbe >= legacyReprobeInterval {
			// The verdict may have been a transient fault; try the
			// handshake again below.
			ps.legacy = false
			ps.sinceProbe = 0
		}
	}
	if d.cfg.DisableDeltaSync || ps.legacy {
		info, nb, err := d.fetchFull(to, rep)
		return info, syncResult{full: true, entries: nb}, err
	}
	var (
		info device.Info
		sr   syncResult
		err  error
	)
	if d.cfg.Hierarchical && !d.cfg.DisableIdentity {
		info, sr, err = d.fetchHierarchical(to, ps, rep)
	} else {
		info, sr, err = d.fetchVersioned(to, ps, rep)
	}
	if err == nil || !errors.Is(err, errSyncUnsupported) {
		return info, sr, err
	}
	// The peer hung up on the handshake: treat it as legacy until the next
	// re-probe and repeat this fetch as the full exchange.
	d.legacyFalls.Inc()
	ps.legacy = true
	ps.sinceProbe = 0
	info, nb, err := d.fetchFull(to, rep)
	return info, syncResult{full: true, entries: nb}, err
}

// dialCounted opens one fetch connection wrapped for byte accounting; the
// returned cleanup adds the connection's traffic to the report and closes it.
func (d *Discoverer) dialCounted(to device.Addr, rep *RoundReport) (*countingConn, func(), error) {
	conn, err := d.cfg.Plugin.Dial(to, device.PortDaemon)
	if err != nil {
		return nil, nil, fmt.Errorf("discovery: fetching %v: %w", to, err)
	}
	cc := &countingConn{Conn: conn}
	return cc, func() {
		rep.SyncBytes += cc.n
		_ = conn.Close()
	}, nil
}

// fetchVersioned runs the versioned exchange on one short connection:
// device info (extended, so the peer's sibling interfaces ride along),
// then the (epoch, generation) handshake, then — if the response does not
// continue the remembered state or its digest cannot be reproduced — an
// explicit full resync on the same connection.
func (d *Discoverer) fetchVersioned(to device.Addr, ps *peerSync, rep *RoundReport) (device.Info, syncResult, error) {
	cc, cleanup, err := d.dialCounted(to, rep)
	if err != nil {
		return device.Info{}, syncResult{}, err
	}
	defer cleanup()

	infoKind := phproto.InfoDeviceEx
	var flags uint8 = phproto.SyncFlagSiblings
	if d.cfg.DisableIdentity {
		infoKind, flags = phproto.InfoDevice, 0
	}
	info, err := requestDeviceInfoKind(cc, infoKind)
	if err != nil {
		if infoKind == phproto.InfoDeviceEx {
			// A hang-up on InfoDeviceEx is how a pre-identity daemon
			// presents; re-fetch with the legacy exchange (a transient
			// fault looks the same, but the legacy verdict decays).
			return device.Info{}, syncResult{}, fmt.Errorf("%w: %v", errSyncUnsupported, err)
		}
		return device.Info{}, syncResult{}, err
	}
	if err := phproto.Write(cc, &phproto.NeighborhoodSyncRequest{Epoch: ps.epoch, Gen: ps.gen, Flags: flags}); err != nil {
		return device.Info{}, syncResult{}, fmt.Errorf("discovery: requesting sync: %w", err)
	}
	resp, err := phproto.ReadExpect[*phproto.NeighborhoodSync](cc)
	if err != nil {
		// The device answered the info request but hung up on the sync
		// command: a legacy daemon.
		return device.Info{}, syncResult{}, fmt.Errorf("%w: %v", errSyncUnsupported, err)
	}
	sr, ok := ps.apply(resp)
	if !ok {
		// Wrong continuation or digest mismatch: resync from scratch.
		d.resyncs.Inc()
		if err := phproto.Write(cc, &phproto.NeighborhoodSyncRequest{Flags: flags}); err != nil {
			return device.Info{}, syncResult{}, fmt.Errorf("discovery: requesting resync: %w", err)
		}
		full, err := phproto.ReadExpect[*phproto.NeighborhoodSync](cc)
		if err != nil {
			return device.Info{}, syncResult{}, fmt.Errorf("discovery: reading resync: %w", err)
		}
		if !full.Full {
			return device.Info{}, syncResult{}, fmt.Errorf("discovery: resync of %v answered with a delta", to)
		}
		sr, _ = ps.apply(full)
	}
	return info, sr, nil
}

// fetchFull performs the legacy full exchange, counting its bytes.
func (d *Discoverer) fetchFull(to device.Addr, rep *RoundReport) (device.Info, []phproto.NeighborEntry, error) {
	cc, cleanup, err := d.dialCounted(to, rep)
	if err != nil {
		return device.Info{}, nil, err
	}
	defer cleanup()
	return fetchFullConn(cc)
}

// Fetch performs the legacy information exchange of fig 3.7 against a
// device's daemon port: device information (including services) and the
// full neighbourhood table, over one short connection. An ErrRefused dial
// means the device carries no PeerHood daemon — the SDP "PeerHood tag"
// check of §2.3 maps to this.
func Fetch(p plugin.Plugin, to device.Addr) (device.Info, []phproto.NeighborEntry, error) {
	conn, err := p.Dial(to, device.PortDaemon)
	if err != nil {
		return device.Info{}, nil, fmt.Errorf("discovery: fetching %v: %w", to, err)
	}
	defer conn.Close()
	return fetchFullConn(conn)
}

func fetchFullConn(conn plugin.Conn) (device.Info, []phproto.NeighborEntry, error) {
	info, err := requestDeviceInfo(conn)
	if err != nil {
		return device.Info{}, nil, err
	}
	if err := phproto.Write(conn, &phproto.InfoRequest{Kind: phproto.InfoNeighborhood}); err != nil {
		return device.Info{}, nil, fmt.Errorf("discovery: requesting neighbourhood: %w", err)
	}
	nb, err := phproto.ReadExpect[*phproto.Neighborhood](conn)
	if err != nil {
		return device.Info{}, nil, fmt.Errorf("discovery: reading neighbourhood: %w", err)
	}
	return info, nb.Entries, nil
}

func requestDeviceInfo(conn plugin.Conn) (device.Info, error) {
	return requestDeviceInfoKind(conn, phproto.InfoDevice)
}

func requestDeviceInfoKind(conn plugin.Conn, kind phproto.InfoKind) (device.Info, error) {
	if err := phproto.Write(conn, &phproto.InfoRequest{Kind: kind}); err != nil {
		return device.Info{}, fmt.Errorf("discovery: requesting device info: %w", err)
	}
	di, err := phproto.ReadExpect[*phproto.DeviceInfo](conn)
	if err != nil {
		return device.Info{}, fmt.Errorf("discovery: reading device info: %w", err)
	}
	return di.Info, nil
}
