package discovery

import (
	"testing"

	"peerhood/internal/device"
	"peerhood/internal/plugin"
)

// BenchmarkDiscoverySyncRound measures the steady-state per-round sync
// traffic against a 60-device peer in each exchange mode, reporting the
// wire bytes one round moves as sync-B/round. This is the series the
// hierarchical far-field state is sized against: flat versioned rounds
// already move only deltas, hierarchical rounds move one aggregate frame
// — O(occupied cells), independent of the peer's table size — and the
// benchmark trajectory records both so BENCH documents pin the claim.
func BenchmarkDiscoverySyncRound(b *testing.B) {
	for _, mode := range []struct {
		name string
		hier bool
	}{{"flat", false}, {"hierarchical", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var d *Discoverer
			var fp *fakePlugin
			if mode.hier {
				fp, _, d = newHierSetup(8)
			} else {
				fp, _, d = newFakeSetup(false)
			}
			peerStore := populatedPeerStore(60)
			fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
			fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: peerStore}
			first := d.RunRound() // first contact pays the mirror
			if first.FetchErrors != 0 {
				b.Fatalf("first contact failed: %+v", first)
			}
			var last int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := d.RunRound()
				if rep.FetchErrors != 0 {
					b.Fatalf("round failed: %+v", rep)
				}
				last = rep.SyncBytes
			}
			b.StopTimer()
			b.ReportMetric(float64(last), "sync-B/round")
		})
	}
}
