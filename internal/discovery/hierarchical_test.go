package discovery

import (
	"fmt"
	"testing"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/phproto"
	"peerhood/internal/plugin"
	"peerhood/internal/storage"
)

func newHierSetup(maxCells int) (*fakePlugin, *storage.Storage, *Discoverer) {
	fp := &fakePlugin{addr: bt("self"), fetch: make(map[string]fetchScript)}
	st := storage.New(storage.Config{Clock: clock.NewManual()})
	st.AddSelfAddr(fp.addr)
	d := New(Config{
		Store: st, Plugin: fp, Clock: clock.NewManual(),
		Hierarchical: true, MaxLocalCells: maxCells,
	})
	return fp, st, d
}

// populatedPeerStore builds a peer table big enough to spread over many
// aggregation cells, with varied link qualities so the cell ranking has
// something to rank.
func populatedPeerStore(n int) *storage.Storage {
	s := newPeerStore()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("dev%03d", i)
		s.UpsertDirect(device.Info{Name: name, Addr: bt(name)}, 200+i%56)
	}
	return s
}

// TestHierarchicalFetchBoundsLocalRows: a hierarchical round mirrors full
// rows only for MaxLocalCells cells; everything else is held as far-field
// digests whose counts and hashes tie back exactly to the peer's flat
// table digest.
func TestHierarchicalFetchBoundsLocalRows(t *testing.T) {
	fp, st, d := newHierSetup(2)
	peerStore := populatedPeerStore(60)
	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: peerStore}

	rep := d.RunRound()
	if rep.AggregateFetches != 1 || rep.FullFetches != 0 || rep.DeltaFetches != 0 {
		t.Fatalf("first contact: %+v, want one aggregate fetch", rep)
	}
	if rep.CellsRefined == 0 || rep.CellsRefined > 2 {
		t.Fatalf("refined %d cells, want 1..2", rep.CellsRefined)
	}
	peerDigest := peerStore.Digest()
	localRows := st.Len() - 1 // minus the direct row for B itself
	if localRows >= peerDigest.Entries {
		t.Fatalf("mirrored %d of %d rows; the far field was not aggregated", localRows, peerDigest.Entries)
	}
	far := d.FarCells(bt("B"))
	if len(far) == 0 {
		t.Fatal("no far-field summaries remembered")
	}
	// Counts: local rows + far-cell counts must cover the peer's whole
	// table; hashes: far hashes XOR local cell hashes must reproduce the
	// peer's table digest.
	covered := localRows
	hash := uint64(0)
	for _, cs := range far {
		covered += int(cs.Count)
		hash ^= cs.Hash
	}
	cells, _ := peerStore.CellSummaries()
	for _, c := range d.LocalCells(bt("B")) {
		for _, cs := range cells {
			if cs.Cell == c {
				hash ^= cs.Hash
			}
		}
	}
	// B's own direct row exists in the peer's table as our "B" upsert does
	// not — the peer table has no row for B (it is the peer itself), so
	// the covered count compares against the peer's entries exactly.
	if covered != peerDigest.Entries {
		t.Fatalf("local rows + far counts = %d, want %d", covered, peerDigest.Entries)
	}
	if hash != peerDigest.Hash {
		t.Fatalf("cell hash union %#x does not reproduce the table digest %#x", hash, peerDigest.Hash)
	}
}

// TestHierarchicalRefineReconstructsFullTable is the aggregation ≡ full
// property: the aggregate view refined cell by cell reconstructs exactly
// the table a flat fetcher mirrors — same entries, same storage digest.
func TestHierarchicalRefineReconstructsFullTable(t *testing.T) {
	peerStore := populatedPeerStore(48)

	hfp, hst, hd := newHierSetup(2)
	hfp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	hfp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: peerStore}

	ffp, fst, fd := newFakeSetup(false)
	ffp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	ffp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: peerStore}

	hd.RunRound()
	fd.RunRound()
	if hst.Len() >= fst.Len() {
		t.Fatalf("hierarchical mirror (%d rows) not smaller than flat (%d) before refinement", hst.Len(), fst.Len())
	}
	for _, cs := range hd.FarCells(bt("B")) {
		if err := hd.RefineCell(bt("B"), cs.Cell); err != nil {
			t.Fatalf("refining cell %d: %v", cs.Cell, err)
		}
	}
	if len(hd.FarCells(bt("B"))) != 0 {
		t.Fatal("far cells remain after refining every one of them")
	}
	hdg, fdg := hst.Digest(), fst.Digest()
	if hdg.Entries != fdg.Entries || hdg.Hash != fdg.Hash {
		t.Fatalf("refined table digest (%d, %#x) != flat table digest (%d, %#x)",
			hdg.Entries, hdg.Hash, fdg.Entries, fdg.Hash)
	}
}

// TestHierarchicalSteadyStateRefinesNothing: with the peer's table
// unchanged, a follow-up round sees the same (epoch, gen) on the aggregate
// and stops there — no cell fetches, nothing merged, fewer bytes than the
// first contact.
func TestHierarchicalSteadyStateRefinesNothing(t *testing.T) {
	fp, _, d := newHierSetup(4)
	peerStore := populatedPeerStore(30)
	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: peerStore}

	first := d.RunRound()
	if first.AggregateFetches != 1 || first.CellsRefined == 0 {
		t.Fatalf("first contact: %+v", first)
	}
	rep := d.RunRound()
	if rep.AggregateFetches != 1 || rep.CellsRefined != 0 {
		t.Fatalf("steady state: %+v, want an aggregate fetch refining nothing", rep)
	}
	if rep.Merge.Added != 0 || rep.Merge.Updated != 0 || rep.Merge.Removed != 0 {
		t.Fatalf("steady state merged something: %+v", rep.Merge)
	}
	if rep.SyncBytes >= first.SyncBytes {
		t.Fatalf("steady-state round moved %d bytes, first contact moved %d", rep.SyncBytes, first.SyncBytes)
	}
}

// TestHierarchicalFallsBackOnScopelessPeer: a responder that hangs up on
// the scoped request (a daemon predating the hierarchical exchange) gets
// the same legacy treatment as any pre-sync peer — the fetch repeats as
// the flat full exchange and still learns the table.
func TestHierarchicalFallsBackOnScopelessPeer(t *testing.T) {
	fp, st, d := newHierSetup(4)
	peerStore := populatedPeerStore(12)
	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: peerStore, scopeless: true}

	rep := d.RunRound()
	if rep.FetchErrors != 0 || rep.FullFetches != 1 || rep.AggregateFetches != 0 {
		t.Fatalf("scopeless peer round: %+v, want a full-exchange fallback", rep)
	}
	if st.Len()-1 != peerStore.Digest().Entries {
		t.Fatalf("fallback mirrored %d rows, want the peer's full %d", st.Len()-1, peerStore.Digest().Entries)
	}
}

// TestRefineCellRemovesDepartedRows: refining a cell whose devices left
// the peer's table tombstones the departed rows from the mirror.
func TestRefineCellRemovesDepartedRows(t *testing.T) {
	fp, st, d := newHierSetup(phproto.NumAggCells)
	peerStore := populatedPeerStore(20)
	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: peerStore}

	d.RunRound() // mirrors everything (MaxLocalCells covers all cells)
	victim := bt("dev007")
	if _, ok := st.Lookup(victim); !ok {
		t.Fatal("dev007 not mirrored")
	}
	peerStore.RemoveDirect(victim)
	if err := d.RefineCell(bt("B"), phproto.CellOf(victim)); err != nil {
		t.Fatalf("refine: %v", err)
	}
	if _, ok := st.Lookup(victim); ok {
		t.Fatal("departed device survived its cell refinement")
	}
}
