package discovery

import (
	"testing"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/phproto"
	"peerhood/internal/plugin"
	"peerhood/internal/storage"
)

func newPeerStore() *storage.Storage {
	s := storage.New(storage.Config{Clock: clock.NewManual()})
	s.AddSelfAddr(bt("B"))
	return s
}

// TestVersionedSyncDeltaFlow drives the full fetcher lifecycle against a
// sync-capable peer: FULL on first contact, empty DELTA while nothing
// changes, a one-row DELTA after a change, and a tombstone when the peer
// loses a device.
func TestVersionedSyncDeltaFlow(t *testing.T) {
	fp, st, d := newFakeSetup(false)
	peerStore := newPeerStore()
	peerStore.UpsertDirect(device.Info{Name: "C", Addr: bt("C")}, 238)
	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: peerStore}

	rep := d.RunRound()
	if rep.FullFetches != 1 || rep.DeltaFetches != 0 {
		t.Fatalf("first contact: %+v, want one full fetch", rep)
	}
	if _, ok := st.Lookup(bt("C")); !ok {
		t.Fatal("C not learned from the full sync")
	}
	fullBytes := rep.SyncBytes
	if fullBytes == 0 {
		t.Fatal("fetch bytes not counted")
	}

	rep = d.RunRound()
	if rep.DeltaFetches != 1 || rep.FullFetches != 0 {
		t.Fatalf("steady state: %+v, want one delta fetch", rep)
	}
	if rep.Merge.Added != 0 || rep.Merge.Updated != 0 {
		t.Fatalf("empty delta merged something: %+v", rep.Merge)
	}
	if rep.SyncBytes >= fullBytes {
		t.Fatalf("empty delta round moved %d bytes, full contact moved %d", rep.SyncBytes, fullBytes)
	}

	peerStore.UpsertDirect(device.Info{Name: "D", Addr: bt("D")}, 231)
	rep = d.RunRound()
	if rep.DeltaFetches != 1 || rep.Merge.Added != 1 {
		t.Fatalf("change round: %+v, want D added via delta", rep)
	}
	e, ok := st.Lookup(bt("D"))
	if !ok {
		t.Fatal("D not learned from the delta")
	}
	if best, _ := e.Best(); best.Bridge != bt("B") || best.Jumps != 1 {
		t.Fatalf("D route = %+v, want via B", best)
	}

	peerStore.RemoveDirect(bt("C"))
	rep = d.RunRound()
	if rep.DeltaFetches != 1 {
		t.Fatalf("tombstone round: %+v", rep)
	}
	if _, ok := st.Lookup(bt("C")); ok {
		t.Fatal("C survived its tombstone")
	}
}

// TestVersionedSyncPeerRestart swaps the peer's storage for a fresh one
// (new epoch): the fetcher must detect the restart through the epoch and
// take a FULL table instead of trusting stale generations.
func TestVersionedSyncPeerRestart(t *testing.T) {
	fp, st, d := newFakeSetup(false)
	peerStore := newPeerStore()
	peerStore.UpsertDirect(device.Info{Name: "C", Addr: bt("C")}, 238)
	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: peerStore}

	d.RunRound()
	if _, ok := st.Lookup(bt("C")); !ok {
		t.Fatal("C not learned")
	}

	restarted := newPeerStore()
	restarted.UpsertDirect(device.Info{Name: "E", Addr: bt("E")}, 233)
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: restarted}

	rep := d.RunRound()
	if rep.FullFetches != 1 || rep.DeltaFetches != 0 {
		t.Fatalf("restart round: %+v, want a full fetch", rep)
	}
	if _, ok := st.Lookup(bt("E")); !ok {
		t.Fatal("E not learned after the restart")
	}
	// The full merge's unreported sweep must drop the stale via-B route.
	if _, ok := st.Lookup(bt("C")); ok {
		t.Fatal("stale pre-restart device survived the full resync")
	}
}

// TestLegacyPeerFallsBackToFullExchange talks to a responder that hangs up
// on the sync handshake: the fetcher retries with the legacy exchange, and
// remembers not to bother the peer with the handshake again.
func TestLegacyPeerFallsBackToFullExchange(t *testing.T) {
	fp, st, d := newFakeSetup(false)
	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	fp.fetch["B"] = fetchScript{
		info: device.Info{Name: "B", Addr: bt("B")},
		nb: []phproto.NeighborEntry{
			{Info: device.Info{Name: "C", Addr: bt("C")}, QualitySum: 238, QualityMin: 238},
		},
	}

	rep := d.RunRound()
	if rep.FetchErrors != 0 || rep.FullFetches != 1 {
		t.Fatalf("legacy round: %+v", rep)
	}
	if _, ok := st.Lookup(bt("C")); !ok {
		t.Fatal("C not learned through the legacy fallback")
	}
	if fp.dials != 2 {
		t.Fatalf("first legacy contact took %d dials, want 2 (handshake + fallback)", fp.dials)
	}
	d.RunRound()
	if fp.dials != 3 {
		t.Fatalf("known-legacy round took %d extra dials, want 1", fp.dials-2)
	}
}

// TestLegacyVerdictDecays upgrades a peer that was (mis)judged legacy —
// perhaps a transient mid-handshake fault — back to delta sync: after
// legacyReprobeInterval legacy fetches the handshake must be retried.
func TestLegacyVerdictDecays(t *testing.T) {
	fp, _, d := newFakeSetup(false)
	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}}

	d.RunRound() // handshake refused: marked legacy
	// The peer "upgrades" (or the fault clears): now sync-capable.
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: newPeerStore()}

	recovered := -1
	for i := 0; i < legacyReprobeInterval+1; i++ {
		rep := d.RunRound()
		if rep.DeltaFetches > 0 {
			recovered = i
			break
		}
		if i < legacyReprobeInterval-1 && rep.FullFetches != 1 {
			t.Fatalf("round %d: %+v, want a legacy full fetch", i, rep)
		}
	}
	if recovered < 0 {
		t.Fatalf("peer never recovered delta sync within %d rounds", legacyReprobeInterval+1)
	}
	// And it must stay on deltas afterwards.
	if rep := d.RunRound(); rep.DeltaFetches != 1 {
		t.Fatalf("post-recovery round: %+v", rep)
	}
}

// TestRefusedPeersLeaveNoSyncState pins the d.peers lifecycle: a device
// that answers inquiries but refuses the daemon port (not PeerHood-capable)
// must not accumulate per-peer sync state round after round.
func TestRefusedPeersLeaveNoSyncState(t *testing.T) {
	fp, st, d := newFakeSetup(false)
	fp.responses = []plugin.InquiryResult{{Addr: bt("X"), Quality: 240}}
	fp.fetch["X"] = fetchScript{err: plugin.ErrRefused}
	for i := 0; i < 5; i++ {
		rep := d.RunRound()
		if rep.FetchErrors != 1 {
			t.Fatalf("round %d: %+v", i, rep)
		}
	}
	if st.Len() != 0 {
		t.Fatal("refused device stored")
	}
	if len(d.peers) != 0 {
		t.Fatalf("%d sync-state entries for never-fetched devices, want 0", len(d.peers))
	}
}

// TestSyncDigestMismatchForcesResync injects a delta whose digest cannot be
// reproduced; the fetcher must resync with an explicit full request on the
// same connection rather than merge unverified data.
func TestSyncDigestMismatchForcesResync(t *testing.T) {
	fp, st, d := newFakeSetup(false)
	peerStore := newPeerStore()
	peerStore.UpsertDirect(device.Info{Name: "C", Addr: bt("C")}, 238)
	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	script := fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: peerStore}
	script.sync = func(req *phproto.NeighborhoodSyncRequest) *phproto.NeighborhoodSync {
		resp := peerStore.SyncResponse(req.Epoch, req.Gen, true)
		if !resp.Full {
			resp.DigestHash ^= 0xBAD // corrupt every delta
		}
		return resp
	}
	fp.fetch["B"] = script

	rep := d.RunRound() // first contact: FULL, digest fine
	if rep.FullFetches != 1 {
		t.Fatalf("first round: %+v", rep)
	}
	peerStore.UpsertDirect(device.Info{Name: "D", Addr: bt("D")}, 231)

	rep = d.RunRound() // corrupted delta -> resync -> FULL applied
	if rep.FetchErrors != 0 || rep.FullFetches != 1 || rep.DeltaFetches != 0 {
		t.Fatalf("mismatch round: %+v, want a full resync", rep)
	}
	if _, ok := st.Lookup(bt("D")); !ok {
		t.Fatal("D not learned through the resync")
	}
}

// TestDeltaRoundRefreshesBridgeLinkQuality pins delta/full behavioural
// parity for the local hop: when our link to a bridge drifts while the
// bridge's table is unchanged (empty deltas), the stored via-bridge routes
// must be re-priced with the current inquiry quality, exactly as re-merging
// a full table would.
func TestDeltaRoundRefreshesBridgeLinkQuality(t *testing.T) {
	fp, st, d := newFakeSetup(false)
	peerStore := newPeerStore()
	peerStore.UpsertDirect(device.Info{Name: "X", Addr: bt("X")}, 236)
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: peerStore}

	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	d.RunRound()
	e, _ := st.Lookup(bt("X"))
	best, _ := e.Best()
	if best.QualitySum != 240+236 {
		t.Fatalf("initial X route = %+v", best)
	}

	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 185}}
	rep := d.RunRound()
	if rep.DeltaFetches != 1 {
		t.Fatalf("drift round: %+v, want a delta fetch", rep)
	}
	e, _ = st.Lookup(bt("X"))
	best, _ = e.Best()
	if best.QualitySum != 185+236 || best.QualityMin != 185 {
		t.Fatalf("X route after drift = %+v, want sum %d min 185 (stale bridge quality?)", best, 185+236)
	}
}

// TestBridgeBlipForcesFullResync reproduces the lost-knowledge hazard of
// delta sync: B (also reachable via C) misses enough inquiries that the
// aging sweep erases every via-B route — including X, known only through
// B. B's own storage never changed, so when B reappears an empty delta
// would leave X lost forever; the discoverer must drop B's sync state with
// the swept routes and take a FULL table instead.
func TestBridgeBlipForcesFullResync(t *testing.T) {
	fp, st, d := newFakeSetup(false)

	bStore := newPeerStore() // self "B"
	bStore.UpsertDirect(device.Info{Name: "X", Addr: bt("X")}, 236)
	cStore := storage.New(storage.Config{Clock: clock.NewManual()})
	cStore.AddSelfAddr(bt("C"))
	cStore.UpsertDirect(device.Info{Name: "B", Addr: bt("B")}, 234)

	respond := func(macs ...string) {
		fp.responses = nil
		for _, m := range macs {
			fp.responses = append(fp.responses, plugin.InquiryResult{Addr: bt(m), Quality: 240})
		}
	}
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: bStore}
	fp.fetch["C"] = fetchScript{info: device.Info{Name: "C", Addr: bt("C")}, store: cStore}

	respond("B", "C")
	d.RunRound()
	if _, ok := st.Lookup(bt("X")); !ok {
		t.Fatal("X not learned via B")
	}

	// B goes silent; C keeps vouching for it, so B survives via C while
	// the sweep erases B's direct route and the via-B knowledge (X).
	respond("C")
	for i := 0; i <= storage.DefaultMaxMissedLoops; i++ {
		d.RunRound()
	}
	if _, ok := st.Lookup(bt("X")); ok {
		t.Fatal("X survived the lost-bridge sweep")
	}
	if e, ok := st.Lookup(bt("B")); !ok || e.HasDirect() {
		t.Fatalf("B should persist via C without a direct route: %+v, %v", e, ok)
	}

	// B reappears, its storage unchanged: the fetch must be FULL (not an
	// empty delta) and X must come back.
	respond("B", "C")
	rep := d.RunRound()
	if rep.FullFetches == 0 {
		t.Fatalf("reappearance round: %+v, want a full fetch of B", rep)
	}
	if _, ok := st.Lookup(bt("X")); !ok {
		t.Fatal("X never re-learned after B reappeared — delta sync lost it")
	}
}

// TestDisableDeltaSyncUsesLegacyExchange pins the S2 baseline: with the
// flag set every fetch is a full exchange and no handshake is attempted.
func TestDisableDeltaSyncUsesLegacyExchange(t *testing.T) {
	fp := &fakePlugin{addr: bt("self"), fetch: make(map[string]fetchScript)}
	st := storage.New(storage.Config{Clock: clock.NewManual()})
	st.AddSelfAddr(fp.addr)
	d := New(Config{Store: st, Plugin: fp, Clock: clock.NewManual(), DisableDeltaSync: true})

	peerStore := newPeerStore()
	peerStore.UpsertDirect(device.Info{Name: "C", Addr: bt("C")}, 238)
	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}, store: peerStore}

	var bytes [2]int64
	for i := range bytes {
		rep := d.RunRound()
		if rep.FullFetches != 1 || rep.DeltaFetches != 0 {
			t.Fatalf("round %d: %+v, want full fetches only", i, rep)
		}
		bytes[i] = rep.SyncBytes
		if fp.dials != i+1 {
			t.Fatalf("round %d took %d dials total, want %d", i, fp.dials, i+1)
		}
	}
	// Nothing changed between the rounds, yet the full exchange re-sends
	// the table: that is exactly the redundancy delta sync removes.
	if bytes[1] != bytes[0] {
		t.Fatalf("full exchange bytes varied without changes: %v", bytes)
	}
}

// TestFullSyncDigestMismatchRecordsNoState: a FULL whose advertised digest
// does not cover its entries reveals a responder whose digest bookkeeping
// diverged from its table. The entries are still merged (freshest view
// available), but no sync state may be recorded — a delta verified against
// an unverifiable baseline would mismatch every round, degrading to a
// wasted delta attempt plus an in-connection resync forever.
func TestFullSyncDigestMismatchRecordsNoState(t *testing.T) {
	ps := &peerSync{lastQuality: 200}
	entries := []phproto.NeighborEntry{{
		Info: device.Info{Name: "C", Addr: bt("C")}, QualitySum: 238, QualityMin: 238,
	}}
	sr, ok := ps.apply(&phproto.NeighborhoodSync{
		Full: true, Epoch: 7, ToGen: 9, Entries: entries,
		DigestCount: 1, DigestHash: 0xdeadbeef, // does not match entries
	})
	if !ok || !sr.full || len(sr.entries) != 1 {
		t.Fatalf("unverifiable FULL not usable: %+v, %v", sr, ok)
	}
	if ps.epoch != 0 || ps.gen != 0 || ps.hashes != nil || ps.digest != 0 {
		t.Fatalf("sync state recorded from an unverifiable FULL: %+v", ps)
	}
	if ps.lastQuality != 200 {
		t.Fatalf("lastQuality = %d, want preserved", ps.lastQuality)
	}

	// A verifiable FULL records state as usual.
	count, hash := phproto.DigestOf(entries)
	sr, ok = ps.apply(&phproto.NeighborhoodSync{
		Full: true, Epoch: 7, ToGen: 9, Entries: entries,
		DigestCount: count, DigestHash: hash,
	})
	if !ok || !sr.full {
		t.Fatalf("verifiable FULL rejected: %+v, %v", sr, ok)
	}
	if ps.epoch != 7 || ps.gen != 9 || len(ps.hashes) != 1 {
		t.Fatalf("sync state not recorded from a verifiable FULL: %+v", ps)
	}
}

// TestDeltaWithoutBaselineRejected: a responder answering a first-contact
// (or post-reset) sync request with a DELTA echoing our zero (epoch, gen)
// offers entries against a baseline we never had. The fetcher must reject
// the frame and resync in full — not crash on its empty shadow.
func TestDeltaWithoutBaselineRejected(t *testing.T) {
	ps := &peerSync{lastQuality: -1}
	_, ok := ps.apply(&phproto.NeighborhoodSync{
		Entries:     []phproto.NeighborEntry{{Info: device.Info{Name: "C", Addr: bt("C")}}},
		DigestCount: 1,
	})
	if ok {
		t.Fatal("delta accepted with no FULL baseline")
	}
	if ps.epoch != 0 || ps.gen != 0 || ps.hashes != nil {
		t.Fatalf("rejected delta mutated state: %+v", ps)
	}
}
