package discovery

import (
	"fmt"
	"sort"

	"peerhood/internal/device"
	"peerhood/internal/phproto"
)

// Hierarchical neighbourhood fetches (Config.Hierarchical): instead of
// mirroring a peer's whole table, each round fetches the O(NumAggCells)
// aggregate view, mirrors full rows only for the best MaxLocalCells cells
// (ranked by best route quality, then population), and remembers the rest
// as far-field digests. Cells whose verified hash is unchanged cost
// nothing; distant cells can be pulled in on demand with RefineCell — the
// hook lookup and handover paths use when they need a row the local
// mirror does not hold. Per-peer memory and steady-state sync bytes are
// then O(local rows + NumAggCells) instead of O(peer table size).

// fetchHierarchical runs the aggregate/refine exchange on one short
// connection. A flat NeighborhoodSync answer (a load-penalised responder
// declining the scope) is merged whole; a hang-up after the device info
// means a pre-scope peer and surfaces as errSyncUnsupported so fetchPeer
// falls back to the flat exchange.
func (d *Discoverer) fetchHierarchical(to device.Addr, ps *peerSync, rep *RoundReport) (device.Info, syncResult, error) {
	cc, cleanup, err := d.dialCounted(to, rep)
	if err != nil {
		return device.Info{}, syncResult{}, err
	}
	defer cleanup()

	info, err := requestDeviceInfoKind(cc, phproto.InfoDeviceEx)
	if err != nil {
		// A hang-up on InfoDeviceEx is how a pre-identity daemon presents.
		return device.Info{}, syncResult{}, fmt.Errorf("%w: %v", errSyncUnsupported, err)
	}
	req := &phproto.NeighborhoodSyncRequest{
		Epoch: ps.epoch,
		Gen:   ps.gen,
		Flags: phproto.SyncFlagSiblings,
		Scope: phproto.ScopeAggregate,
	}
	if err := phproto.Write(cc, req); err != nil {
		return device.Info{}, syncResult{}, fmt.Errorf("discovery: requesting aggregate: %w", err)
	}
	msg, err := phproto.Read(cc)
	if err != nil {
		// Hung up on the scoped request: a daemon predating the
		// hierarchical exchange.
		return device.Info{}, syncResult{}, fmt.Errorf("%w: %v", errSyncUnsupported, err)
	}
	var agg *phproto.NeighborhoodAggregate
	switch resp := msg.(type) {
	case *phproto.NeighborhoodSync:
		// The responder declined the scope (load penalty serves its skewed
		// snapshot flat). Merge it whole; the flat shadow replaces any
		// hierarchical state until the next aggregate fetch.
		sr, ok := ps.apply(resp)
		if !ok {
			return device.Info{}, syncResult{}, fmt.Errorf("discovery: unexpected flat answer to aggregate request from %v", to)
		}
		ps.hier, ps.cellHash, ps.far = false, nil, nil
		return info, sr, nil
	case *phproto.NeighborhoodAggregate:
		agg = resp
	default:
		return device.Info{}, syncResult{}, fmt.Errorf("discovery: aggregate request answered with %v", msg.Cmd())
	}

	if ps.hier && agg.Epoch == ps.epoch && agg.Gen == ps.gen {
		// Nothing changed anywhere in the peer's table.
		return info, syncResult{aggregate: true}, nil
	}

	// Rank the occupied cells and mirror the best MaxLocalCells: best
	// route quality first (those are the routes worth paying full rows
	// for), population as the tie-break, cell id for determinism.
	ranked := append([]phproto.CellSummary(nil), agg.Cells...)
	sort.Slice(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if a.BestQuality != b.BestQuality {
			return a.BestQuality > b.BestQuality
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Cell < b.Cell
	})
	if len(ranked) > d.cfg.MaxLocalCells {
		ranked = ranked[:d.cfg.MaxLocalCells]
	}

	var sr syncResult
	sr.aggregate = true
	newCellHash := make(map[uint8]uint64, len(ranked))
	newHashes := make(map[device.Addr]uint64, len(ps.hashes))
	refined := make(map[uint8]bool, len(ranked))
	for _, cs := range ranked {
		if old, ok := ps.cellHash[cs.Cell]; ok && old == cs.Hash {
			// Verified mirror already current: keep its rows as-is.
			newCellHash[cs.Cell] = old
			continue
		}
		if err := phproto.Write(cc, &phproto.NeighborhoodSyncRequest{
			Flags: phproto.SyncFlagSiblings,
			Scope: phproto.ScopeCell,
			Cell:  cs.Cell,
		}); err != nil {
			return device.Info{}, syncResult{}, fmt.Errorf("discovery: refining cell %d: %w", cs.Cell, err)
		}
		cellMsg, err := phproto.ReadExpect[*phproto.NeighborhoodCell](cc)
		if err != nil {
			return device.Info{}, syncResult{}, fmt.Errorf("discovery: reading cell %d: %w", cs.Cell, err)
		}
		var h uint64
		for _, en := range cellMsg.Entries {
			eh := en.Hash()
			h ^= eh
			newHashes[en.Info.Addr] = eh
		}
		if h != cellMsg.Hash {
			// The rows do not reproduce their own advertised hash
			// (truncation past MaxEntries presents the same way): this
			// refinement cannot be trusted.
			return device.Info{}, syncResult{}, fmt.Errorf("discovery: cell %d of %v failed digest verification", cs.Cell, to)
		}
		d.cellRefines.Inc()
		sr.refined++
		newCellHash[cs.Cell] = h
		refined[cs.Cell] = true
		sr.entries = append(sr.entries, cellMsg.Entries...)
	}

	// Reconcile the old shadow: rows in cells no longer mirrored are
	// demoted to the far field, rows of refined cells that were not re-sent
	// left the peer's table. Both become tombstones; rows of kept (hash-
	// unchanged) cells carry over untouched.
	for addr, h := range ps.hashes {
		c := phproto.CellOf(addr)
		if _, local := newCellHash[c]; !local {
			sr.tombstones = append(sr.tombstones, addr)
			continue
		}
		if refined[c] {
			if _, present := newHashes[addr]; !present {
				sr.tombstones = append(sr.tombstones, addr)
			}
			continue
		}
		newHashes[addr] = h
	}
	// Map iteration fed the tombstones; sort them so merge order — and
	// with it the storage journal every downstream delta is cut from — is
	// deterministic under same-seed replay.
	sort.Slice(sr.tombstones, func(i, j int) bool { return sr.tombstones[i].Less(sr.tombstones[j]) })

	ps.hier = true
	ps.epoch, ps.gen = agg.Epoch, agg.Gen
	ps.hashes = newHashes
	ps.cellHash = newCellHash
	ps.digest = 0
	ps.far = make(map[uint8]phproto.CellSummary, len(agg.Cells))
	for _, cs := range agg.Cells {
		if _, local := newCellHash[cs.Cell]; !local {
			ps.far[cs.Cell] = cs
		}
	}
	return info, sr, nil
}

// RefineCell pulls one far-field cell of a peer's table into the local
// mirror on demand — the refinement trigger lookup and handover paths use
// when they need rows the steady-state mirror does not hold. The cell's
// rows are fetched with a ScopeCell request, verified against their
// advertised hash, and merged like a delta; the cell then counts as local
// until an aggregate round demotes it again.
func (d *Discoverer) RefineCell(to device.Addr, cell uint8) error {
	if cell >= phproto.NumAggCells {
		return fmt.Errorf("discovery: cell %d out of range", cell)
	}
	d.roundMu.Lock()
	defer d.roundMu.Unlock()
	ps := d.peers[to]
	if ps == nil || !ps.hier {
		return fmt.Errorf("discovery: no hierarchical sync state for %v", to)
	}
	if ps.lastQuality < 0 {
		return fmt.Errorf("discovery: no merged link quality for %v yet", to)
	}
	var rep RoundReport
	cc, cleanup, err := d.dialCounted(to, &rep)
	if err != nil {
		return err
	}
	defer func() {
		cleanup()
		d.syncBytes.Add(uint64(rep.SyncBytes))
	}()
	if err := phproto.Write(cc, &phproto.NeighborhoodSyncRequest{
		Flags: phproto.SyncFlagSiblings,
		Scope: phproto.ScopeCell,
		Cell:  cell,
	}); err != nil {
		return fmt.Errorf("discovery: refining cell %d: %w", cell, err)
	}
	cellMsg, err := phproto.ReadExpect[*phproto.NeighborhoodCell](cc)
	if err != nil {
		return fmt.Errorf("discovery: reading cell %d: %w", cell, err)
	}
	var h uint64
	present := make(map[device.Addr]uint64, len(cellMsg.Entries))
	for _, en := range cellMsg.Entries {
		eh := en.Hash()
		h ^= eh
		present[en.Info.Addr] = eh
	}
	if h != cellMsg.Hash {
		return fmt.Errorf("discovery: cell %d of %v failed digest verification", cell, to)
	}
	var tombstones []device.Addr
	for addr := range ps.hashes {
		if phproto.CellOf(addr) != cell {
			continue
		}
		if _, ok := present[addr]; !ok {
			tombstones = append(tombstones, addr)
		}
	}
	sort.Slice(tombstones, func(i, j int) bool { return tombstones[i].Less(tombstones[j]) })
	d.cfg.Store.MergeNeighborhoodDelta(to, ps.lastQuality, cellMsg.Entries, tombstones)
	for _, a := range tombstones {
		delete(ps.hashes, a)
	}
	for addr, eh := range present {
		ps.hashes[addr] = eh
	}
	ps.cellHash[cell] = h
	delete(ps.far, cell)
	d.cellRefines.Inc()
	return nil
}

// FarCells returns the far-field summaries remembered for a peer, in cell
// order: the aggregate digests of every occupied cell the local mirror
// does not hold full rows for. Empty when the peer is synced flat.
func (d *Discoverer) FarCells(to device.Addr) []phproto.CellSummary {
	d.roundMu.Lock()
	defer d.roundMu.Unlock()
	ps := d.peers[to]
	if ps == nil || len(ps.far) == 0 {
		return nil
	}
	out := make([]phproto.CellSummary, 0, len(ps.far))
	for _, cs := range ps.far {
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cell < out[j].Cell })
	return out
}

// LocalCells returns the cells currently mirrored as full rows for a peer,
// ascending. Empty when the peer is synced flat.
func (d *Discoverer) LocalCells(to device.Addr) []uint8 {
	d.roundMu.Lock()
	defer d.roundMu.Unlock()
	ps := d.peers[to]
	if ps == nil || len(ps.cellHash) == 0 {
		return nil
	}
	out := make([]uint8, 0, len(ps.cellHash))
	for c := range ps.cellHash {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
