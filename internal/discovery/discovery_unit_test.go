package discovery

import (
	"errors"
	"testing"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/phproto"
	"peerhood/internal/plugin"
	"peerhood/internal/storage"
)

// fakePlugin scripts inquiry responses and fetch results without a world.
type fakePlugin struct {
	addr      device.Addr
	responses []plugin.InquiryResult
	// fetch maps target MAC to a scripted daemon-port conversation.
	fetch    map[string]fetchScript
	inquired int
	dials    int
}

type fetchScript struct {
	info device.Info
	nb   []phproto.NeighborEntry
	err  error
	// store, when set, makes the fake a sync-capable responder answering
	// neighbourhood and versioned-sync requests from a live storage. When
	// nil the fake behaves like a legacy daemon: it hangs up on the sync
	// handshake.
	store *storage.Storage
	// sync, when set, overrides the sync answer (protocol-fault injection).
	sync func(*phproto.NeighborhoodSyncRequest) *phproto.NeighborhoodSync
	// scopeless, when set, makes the store-backed responder behave like a
	// daemon predating the hierarchical exchange: it hangs up on scoped
	// sync requests (a legacy decoder rejects the trailing bytes).
	scopeless bool
}

var _ plugin.Plugin = (*fakePlugin)(nil)

func (f *fakePlugin) Tech() device.Tech             { return device.TechBluetooth }
func (f *fakePlugin) Addr() device.Addr             { return f.addr }
func (f *fakePlugin) QualityTo(a device.Addr) int   { return 240 }
func (f *fakePlugin) DiscoveryCycle() time.Duration { return 10 * time.Second }
func (f *fakePlugin) Close() error                  { return nil }
func (f *fakePlugin) Inquire() []plugin.InquiryResult {
	f.inquired++
	return append([]plugin.InquiryResult(nil), f.responses...)
}

func (f *fakePlugin) Listen(port uint16) (plugin.Listener, error) {
	return nil, errors.New("fake: no listeners")
}

// Dial serves the scripted fetch conversation through an in-memory conn.
func (f *fakePlugin) Dial(to device.Addr, port uint16) (plugin.Conn, error) {
	f.dials++
	script, ok := f.fetch[to.MAC]
	if !ok {
		return nil, plugin.ErrRefused
	}
	if script.err != nil {
		return nil, script.err
	}
	a, b := newFakeConnPair(f.addr, to)
	go serveScript(b, script)
	return a, nil
}

func serveScript(c plugin.Conn, s fetchScript) {
	defer c.Close()
	for {
		msg, err := phproto.Read(c)
		if err != nil {
			return
		}
		switch req := msg.(type) {
		case *phproto.InfoRequest:
			switch req.Kind {
			case phproto.InfoDevice:
				info := s.info
				info.Siblings = nil
				_ = phproto.Write(c, &phproto.DeviceInfo{Info: info})
			case phproto.InfoDeviceEx:
				if s.store == nil && s.sync == nil {
					return // legacy daemon: hang up on identity requests
				}
				_ = phproto.Write(c, &phproto.DeviceInfo{Info: s.info})
			case phproto.InfoNeighborhood:
				nb := s.nb
				if s.store != nil {
					nb = s.store.WireEntries()
				}
				_ = phproto.Write(c, &phproto.Neighborhood{Entries: nb})
			default:
				return
			}
		case *phproto.NeighborhoodSyncRequest:
			switch {
			case s.sync != nil:
				_ = phproto.Write(c, s.sync(req))
			case s.store != nil && req.Scope != phproto.ScopeTable:
				// Mirror the daemon's scoped responder: a pre-scope or
				// sibling-less exchange presents as a legacy hang-up.
				if s.scopeless || req.Flags&phproto.SyncFlagSiblings == 0 {
					return
				}
				switch req.Scope {
				case phproto.ScopeAggregate:
					cells, dg := s.store.CellSummaries()
					_ = phproto.Write(c, &phproto.NeighborhoodAggregate{
						Epoch: dg.Epoch, Gen: dg.Gen, Cells: cells,
						DigestCount: uint32(dg.Entries), DigestHash: dg.Hash,
					})
				case phproto.ScopeCell:
					entries, hash, dg := s.store.CellEntries(req.Cell)
					_ = phproto.Write(c, &phproto.NeighborhoodCell{
						Cell: req.Cell, Epoch: dg.Epoch, Gen: dg.Gen,
						Entries: entries, Hash: hash,
					})
				default:
					return
				}
			case s.store != nil:
				_ = phproto.Write(c, s.store.SyncResponse(req.Epoch, req.Gen, req.Flags&phproto.SyncFlagSiblings != 0))
			default:
				return // legacy daemon: hang up on the handshake
			}
		default:
			return
		}
	}
}

// fakeConn is a minimal in-memory duplex plugin.Conn.
type fakeConn struct {
	in      chan []byte
	out     chan []byte
	local   device.Addr
	remote  device.Addr
	closed  chan struct{}
	pending []byte
}

func newFakeConnPair(a, b device.Addr) (plugin.Conn, plugin.Conn) {
	x := make(chan []byte, 64)
	y := make(chan []byte, 64)
	closed := make(chan struct{})
	return &fakeConn{in: x, out: y, local: a, remote: b, closed: closed},
		&fakeConn{in: y, out: x, local: b, remote: a, closed: closed}
}

func (c *fakeConn) Read(p []byte) (int, error) {
	if len(c.pending) == 0 {
		select {
		case data, ok := <-c.in:
			if !ok {
				return 0, errors.New("fake conn closed")
			}
			c.pending = data
		case <-c.closed:
			return 0, errors.New("fake conn closed")
		}
	}
	n := copy(p, c.pending)
	c.pending = c.pending[n:]
	return n, nil
}

func (c *fakeConn) Write(p []byte) (int, error) {
	buf := append([]byte(nil), p...)
	select {
	case c.out <- buf:
		return len(p), nil
	case <-c.closed:
		return 0, errors.New("fake conn closed")
	}
}

func (c *fakeConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}

func (c *fakeConn) LocalAddr() device.Addr  { return c.local }
func (c *fakeConn) RemoteAddr() device.Addr { return c.remote }
func (c *fakeConn) Quality() int            { return 240 }

func bt(mac string) device.Addr { return device.Addr{Tech: device.TechBluetooth, MAC: mac} }

func newFakeSetup(legacy bool) (*fakePlugin, *storage.Storage, *Discoverer) {
	fp := &fakePlugin{addr: bt("self"), fetch: make(map[string]fetchScript)}
	st := storage.New(storage.Config{Clock: clock.NewManual()})
	st.AddSelfAddr(fp.addr)
	d := New(Config{Store: st, Plugin: fp, Clock: clock.NewManual(), LegacyOneHop: legacy})
	return fp, st, d
}

func TestRoundFetchesAndMerges(t *testing.T) {
	fp, st, d := newFakeSetup(false)
	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	fp.fetch["B"] = fetchScript{
		info: device.Info{Name: "B", Addr: bt("B"), Mobility: device.Static},
		nb: []phproto.NeighborEntry{
			{Info: device.Info{Name: "C", Addr: bt("C")}, Jumps: 0, QualitySum: 238, QualityMin: 238},
		},
	}
	rep := d.RunRound()
	if rep.Responses != 1 || rep.Fetches != 1 || rep.FetchErrors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Merge.Added != 1 {
		t.Fatalf("merge = %+v, want C added", rep.Merge)
	}
	if st.Len() != 2 {
		t.Fatalf("storage = %d entries, want B and C", st.Len())
	}
	c, _ := st.Lookup(bt("C"))
	best, _ := c.Best()
	if best.Jumps != 1 || best.Bridge != bt("B") {
		t.Fatalf("C route = %+v", best)
	}
}

func TestLegacyModeDropsIndirectEntries(t *testing.T) {
	fp, st, d := newFakeSetup(true)
	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	fp.fetch["B"] = fetchScript{
		info: device.Info{Name: "B", Addr: bt("B")},
		nb: []phproto.NeighborEntry{
			{Info: device.Info{Name: "C", Addr: bt("C")}, Jumps: 0, QualitySum: 238, QualityMin: 238},
			{Info: device.Info{Name: "far", Addr: bt("F")}, Jumps: 1, Bridge: bt("C"), QualitySum: 470, QualityMin: 233},
		},
	}
	d.RunRound()
	if _, ok := st.Lookup(bt("C")); !ok {
		t.Fatal("direct neighbour of B not learned in legacy mode")
	}
	if _, ok := st.Lookup(bt("F")); ok {
		t.Fatal("legacy mode accepted a 2-jump entry (coverage exclusion should apply)")
	}
}

func TestFetchErrorCountsButKeepsKnownDeviceAlive(t *testing.T) {
	fp, st, d := newFakeSetup(false)
	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}}
	d.RunRound()
	if _, ok := st.Lookup(bt("B")); !ok {
		t.Fatal("B not learned")
	}

	// Now every fetch faults, but B still answers inquiries: it must not
	// age out (fig 3.12's refresh path). Force refetches by making the
	// store see the device as stale each round.
	fp.fetch["B"] = fetchScript{err: plugin.ErrConnectFault}
	for i := 0; i < 5; i++ {
		rep := d.RunRound()
		_ = rep
	}
	if _, ok := st.Lookup(bt("B")); !ok {
		t.Fatal("responding device aged out because its fetches failed")
	}
}

func TestUnknownDeviceWithFailingFetchNotStored(t *testing.T) {
	fp, st, d := newFakeSetup(false)
	fp.responses = []plugin.InquiryResult{{Addr: bt("X"), Quality: 240}}
	fp.fetch["X"] = fetchScript{err: plugin.ErrRefused} // not PeerHood capable
	rep := d.RunRound()
	if rep.FetchErrors != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if st.Len() != 0 {
		t.Fatal("non-PeerHood device stored")
	}
}

func TestServiceCheckIntervalSkipsFetch(t *testing.T) {
	fp := &fakePlugin{addr: bt("self"), fetch: make(map[string]fetchScript)}
	clk := clock.NewManual()
	st := storage.New(storage.Config{Clock: clk})
	st.AddSelfAddr(fp.addr)
	d := New(Config{Store: st, Plugin: fp, Clock: clk, ServiceCheckInterval: time.Minute})

	fp.responses = []plugin.InquiryResult{{Addr: bt("B"), Quality: 240}}
	fp.fetch["B"] = fetchScript{info: device.Info{Name: "B", Addr: bt("B")}}

	d.RunRound() // first round fetches
	dialsAfterFirst := fp.dials
	d.RunRound() // fresh: no fetch
	if fp.dials != dialsAfterFirst {
		t.Fatalf("second round fetched although info was fresh (%d -> %d dials)", dialsAfterFirst, fp.dials)
	}
	clk.Advance(2 * time.Minute)
	d.RunRound() // stale again: fetch
	if fp.dials != dialsAfterFirst+1 {
		t.Fatalf("stale round did not re-fetch (%d dials)", fp.dials)
	}
}

func TestRoundsCounterAndStartStop(t *testing.T) {
	fp, _, _ := newFakeSetup(false)
	clk := clock.NewManual()
	st := storage.New(storage.Config{Clock: clk})
	d := New(Config{Store: st, Plugin: fp, Clock: clk, Cycle: 10 * time.Second})

	if d.Rounds() != 0 {
		t.Fatal("fresh discoverer has rounds")
	}
	d.RunRound()
	if d.Rounds() != 1 {
		t.Fatalf("rounds = %d", d.Rounds())
	}
	d.Start()
	d.Start() // idempotent
	d.Stop()
	d.Stop() // idempotent
}

func TestNewPanicsOnMissingDeps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without deps did not panic")
		}
	}()
	New(Config{})
}
