package migration

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/library"
)

// Outcome summarises one migrated task from the client's perspective.
type Outcome struct {
	TaskID   uint64
	Packages int
	// Delivery is how the result arrived.
	Delivery Delivery
	// Resent counts packages retransmitted after handovers (the cost of
	// the §6 data-buffering layer).
	Resent int
	// Duration is the simulated time from submit to result.
	Duration time.Duration
	// ResultPackages is the number of per-package analysis entries
	// received.
	ResultPackages int
}

// ClientConfig parametrises Submit.
type ClientConfig struct {
	Library *library.Library
	// Provider is the analysis server's address.
	Provider device.Addr
	// ServiceName defaults to DefaultServiceName.
	ServiceName string
	// TaskID must be unique per task on this client.
	TaskID uint64
	// Packages is the picture, already chunked.
	Packages [][]byte
	// DisconnectAfterSend simulates the §5.3 movement: the client drops
	// the connection as soon as the upload finishes and relies on the
	// server's dial-back for the result.
	DisconnectAfterSend bool
	// ResultTimeout bounds the whole exchange.
	ResultTimeout time.Duration
	// OnConnect, if set, receives the virtual connection right after it is
	// established — the hook where callers attach a handover thread.
	OnConnect func(vc *library.VirtualConnection)
}

// Errors.
var (
	// ErrResultTimeout reports that no result arrived in time.
	ErrResultTimeout = errors.New("migration: result timed out")
	// ErrUploadFailed reports that the upload could not complete.
	ErrUploadFailed = errors.New("migration: upload failed")
)

// inbox collects results delivered by dial-back connections.
type inbox struct {
	mu      sync.Mutex
	results map[uint64]chan [][]byte
}

func (ib *inbox) channelFor(taskID uint64) chan [][]byte {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.results == nil {
		ib.results = make(map[uint64]chan [][]byte)
	}
	ch, ok := ib.results[taskID]
	if !ok {
		ch = make(chan [][]byte, 1)
		ib.results[taskID] = ch
	}
	return ch
}

// Client submits analysis tasks and receives results, including through
// the dial-back path. One Client can run many tasks.
type Client struct {
	lib       *library.Library
	clk       clock.Clock
	replyPort uint16
	ib        inbox
}

// NewClient registers the client's hidden reply service (the "client
// service" of §5.3 option 1, addressed by port per option 2) and returns
// the client.
func NewClient(lib *library.Library) (*Client, error) {
	if lib == nil {
		return nil, errors.New("migration: Library is required")
	}
	c := &Client{lib: lib, clk: lib.Clock()}
	svc, err := lib.RegisterService("mt-reply", "migration result inbox", c.handleReply)
	if err != nil {
		return nil, err
	}
	c.replyPort = svc.Port
	return c, nil
}

// ReplyPort returns the inbox's logical port.
func (c *Client) ReplyPort() uint16 { return c.replyPort }

// handleReply receives a dial-back result connection.
func (c *Client) handleReply(vc *library.VirtualConnection, meta library.ConnectionMeta) {
	defer vc.Close()
	vc.SetSending(false)
	res, taskID, err := readResult(NewRecordReader(vc))
	if err != nil {
		return
	}
	select {
	case c.ib.channelFor(taskID) <- res:
	default: // duplicate delivery
	}
}

// Submit migrates one task and waits for its result.
func (c *Client) Submit(cfg ClientConfig) (Outcome, error) {
	if cfg.ServiceName == "" {
		cfg.ServiceName = DefaultServiceName
	}
	if cfg.ResultTimeout <= 0 {
		cfg.ResultTimeout = 5 * time.Minute
	}
	start := c.clk.Now()
	out := Outcome{TaskID: cfg.TaskID, Packages: len(cfg.Packages)}

	vc, err := c.lib.Connect(cfg.Provider, cfg.ServiceName, library.WithClientInfo())
	if err != nil {
		return out, fmt.Errorf("%w: %v", ErrUploadFailed, err)
	}
	defer vc.Close()
	if cfg.OnConnect != nil {
		cfg.OnConnect(vc)
	}

	// One record reader spans the upload (acks) and the inline result:
	// bytes buffered past the final ack must not be lost between phases.
	rr := NewRecordReader(vc)

	resent, err := c.upload(vc, rr, cfg)
	out.Resent = resent
	if err != nil {
		return out, fmt.Errorf("%w: %v", ErrUploadFailed, err)
	}

	resultCh := c.ib.channelFor(cfg.TaskID)

	if cfg.DisconnectAfterSend {
		// Fig 5.9: the device moves on after the upload; the result comes
		// back via dial-back.
		_ = vc.Close()
		select {
		case res := <-resultCh:
			out.Delivery = DeliveryDialBack
			out.ResultPackages = len(res)
			out.Duration = c.clk.Since(start)
			return out, nil
		case <-c.clk.After(cfg.ResultTimeout):
			return out, ErrResultTimeout
		}
	}

	// Stay connected; the result normally comes inline, but a dial-back
	// can still win the race if the link breaks meanwhile.
	vc.SetSending(false) // quiescent wait: no handover repairs needed (§5.3)
	inlineCh := make(chan [][]byte, 1)
	inlineErr := make(chan error, 1)
	go func() {
		res, _, err := readResult(rr)
		if err != nil {
			inlineErr <- err
			return
		}
		inlineCh <- res
	}()

	select {
	case res := <-inlineCh:
		out.Delivery = DeliveryInline
		out.ResultPackages = len(res)
	case res := <-resultCh:
		out.Delivery = DeliveryDialBack
		out.ResultPackages = len(res)
	case err := <-inlineErr:
		// Inline path died; the dial-back may still deliver.
		select {
		case res := <-resultCh:
			out.Delivery = DeliveryDialBack
			out.ResultPackages = len(res)
		case <-c.clk.After(cfg.ResultTimeout):
			return out, fmt.Errorf("%w (inline path: %v)", ErrResultTimeout, err)
		}
	case <-c.clk.After(cfg.ResultTimeout):
		return out, ErrResultTimeout
	}
	out.Duration = c.clk.Since(start)
	return out, nil
}

// upload ships the header and packages, consuming acks and resuming after
// transport swaps (the §6 data-buffering extension). It returns the number
// of retransmitted packages.
func (c *Client) upload(vc *library.VirtualConnection, rr *RecordReader, cfg ClientConfig) (int, error) {
	count := uint32(len(cfg.Packages))

	// Ack consumption runs concurrently with sending; the shared reader is
	// released (goroutine exits) once the final ack arrives.
	var ackMu sync.Mutex
	var acked uint32
	allAcked := make(chan struct{})
	ackErr := make(chan error, 1)
	go func() {
		for {
			rec, err := rr.Next()
			if err != nil {
				select {
				case ackErr <- err:
				default:
				}
				return
			}
			if rec.Kind != KindAck || rec.TaskID != cfg.TaskID {
				continue
			}
			v, err := ParseU32Payload(rec.Payload)
			if err != nil {
				continue
			}
			ackMu.Lock()
			if v > acked {
				acked = v
			}
			done := acked >= count
			ackMu.Unlock()
			if done {
				close(allAcked)
				return
			}
		}
	}()

	writeHeader := func() error {
		return WriteRecord(vc, Record{
			TaskID:  cfg.TaskID,
			Kind:    KindHeader,
			Payload: HeaderPayload(count, c.replyPort, 0),
		})
	}
	if err := writeHeader(); err != nil {
		return 0, err
	}

	resent := 0
	lastGen := vc.Generation()
	seq := uint32(1)
	for seq <= count {
		if gen := vc.Generation(); gen != lastGen {
			// A handover replaced the transport: re-announce the task and
			// rewind to the last acked package. In-flight bytes on the old
			// transport may be torn; the server's record reader resyncs.
			lastGen = gen
			if err := writeHeader(); err != nil {
				return resent, err
			}
			ackMu.Lock()
			resume := acked + 1
			ackMu.Unlock()
			if resume < seq {
				resent += int(seq - resume)
				seq = resume
			}
		}
		err := WriteRecord(vc, Record{
			TaskID:  cfg.TaskID,
			Seq:     seq,
			Kind:    KindData,
			Payload: cfg.Packages[seq-1],
		})
		if err != nil {
			return resent, err
		}
		seq++
	}

	// Wait for the final ack so the upload is known complete.
	for {
		select {
		case <-allAcked:
			return resent, nil
		case err := <-ackErr:
			return resent, err
		case <-c.clk.After(cfg.ResultTimeout):
			return resent, ErrResultTimeout
		default:
		}
		// A swap can still require a resume while waiting for the ack.
		if gen := vc.Generation(); gen != lastGen {
			lastGen = gen
			if err := writeHeader(); err != nil {
				return resent, err
			}
			ackMu.Lock()
			resume := acked + 1
			ackMu.Unlock()
			for s := resume; s <= count; s++ {
				if err := WriteRecord(vc, Record{TaskID: cfg.TaskID, Seq: s, Kind: KindData, Payload: cfg.Packages[s-1]}); err != nil {
					return resent, err
				}
				resent++
			}
		}
		c.clk.Sleep(50 * time.Millisecond)
	}
}

// readResult consumes one result transfer from rr.
func readResult(rr *RecordReader) ([][]byte, uint64, error) {
	var (
		taskID  uint64
		count   uint32
		started bool
		out     map[uint32][]byte
	)
	for {
		rec, err := rr.Next()
		if err != nil {
			return nil, taskID, err
		}
		switch rec.Kind {
		case KindResultHeader:
			c, err := ParseU32Payload(rec.Payload)
			if err != nil {
				continue
			}
			taskID = rec.TaskID
			count = c
			started = true
			out = make(map[uint32][]byte, c)
		case KindResult:
			if !started || rec.TaskID != taskID {
				continue
			}
			out[rec.Seq] = rec.Payload
		case KindDone:
			if !started || rec.TaskID != taskID {
				continue
			}
			res := make([][]byte, 0, count)
			for s := uint32(1); s <= count; s++ {
				if p, ok := out[s]; ok {
					res = append(res, p)
				}
			}
			return res, taskID, nil
		}
	}
}
