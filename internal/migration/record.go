// Package migration implements the thesis' task-migration workload
// (ch. 5): a client ships a processing task (the picture-analysis example
// of fig 5.10) to a server and receives the result back, surviving
// handovers and disconnections.
//
// The thesis notes (§6) that PeerHood's raw streams can lose data across a
// connection substitution and that "an efficient Data Buffering is
// necessary to guarantee the data integrity". The record framing that
// provides that layer lives in internal/record (it is shared with the
// library's session-continuity window); this file re-exports the symbols
// migration's wire format is defined in terms of, so the task-transfer
// protocol reads as one package.
package migration

import (
	"io"

	"peerhood/internal/record"
)

// RecordKind discriminates migration records.
type RecordKind = record.RecordKind

// Record kinds used by the task-transfer protocol.
const (
	// KindHeader opens a task: payload = count(u32) | replyPort(u16) |
	// resumeFrom(u32).
	KindHeader = record.KindHeader
	// KindData carries one task package.
	KindData = record.KindData
	// KindAck is a receiver acknowledgement: payload = seq(u32).
	KindAck = record.KindAck
	// KindResultHeader opens the result stream: payload = count(u32).
	KindResultHeader = record.KindResultHeader
	// KindResult carries one result package.
	KindResult = record.KindResult
	// KindDone closes a transfer direction.
	KindDone = record.KindDone
)

// Record is one migration-layer frame.
type Record = record.Record

// RecordReader decodes records from a byte stream, resynchronising on
// corruption.
type RecordReader = record.RecordReader

// MaxRecordPayload bounds a single record payload.
const MaxRecordPayload = record.MaxRecordPayload

// ErrRecordTooLarge is returned for payloads over MaxRecordPayload.
var ErrRecordTooLarge = record.ErrRecordTooLarge

// AppendRecord appends r's wire encoding to buf.
func AppendRecord(buf []byte, r Record) ([]byte, error) {
	return record.AppendRecord(buf, r)
}

// WriteRecord writes r's wire encoding to w in a single Write call.
func WriteRecord(w io.Writer, r Record) error { return record.WriteRecord(w, r) }

// NewRecordReader wraps r for record decoding.
func NewRecordReader(r io.Reader) *RecordReader { return record.NewRecordReader(r) }

// HeaderPayload encodes a task header payload.
func HeaderPayload(count uint32, replyPort uint16, resumeFrom uint32) []byte {
	return record.HeaderPayload(count, replyPort, resumeFrom)
}

// ParseHeaderPayload decodes a task header payload.
func ParseHeaderPayload(p []byte) (count uint32, replyPort uint16, resumeFrom uint32, err error) {
	return record.ParseHeaderPayload(p)
}

// U32Payload encodes a 4-byte payload (acks, counts).
func U32Payload(v uint32) []byte { return record.U32Payload(v) }

// ParseU32Payload decodes a 4-byte payload.
func ParseU32Payload(p []byte) (uint32, error) { return record.ParseU32Payload(p) }
