package migration_test

import (
	"errors"
	"testing"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/library"
	"peerhood/internal/migration"
	"peerhood/internal/phtest"
)

func packages(n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, size)
		for j := range p {
			p[j] = byte(i + j)
		}
		out[i] = p
	}
	return out
}

func TestInlineTaskMigration(t *testing.T) {
	// §5.3 case 1: small task, client stays in coverage, result inline.
	w := phtest.InstantWorld(t, 1)
	cli := phtest.AddNode(t, w, "phone", geo.Pt(0, 0), device.Dynamic)
	srv := phtest.AddNode(t, w, "server", geo.Pt(3, 0), device.Static)

	server, err := migration.NewServer(migration.ServerConfig{
		Library:        srv.Lib,
		ProcessingRate: 1 << 30, // effectively instant
		DialBack:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := migration.NewClient(cli.Lib)
	if err != nil {
		t.Fatal(err)
	}
	phtest.RunRounds([]*phtest.Node{cli, srv}, 2)

	out, err := client.Submit(migration.ClientConfig{
		Library:  cli.Lib,
		Provider: srv.Addr(),
		TaskID:   1,
		Packages: packages(10, 128),
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if out.Delivery != migration.DeliveryInline {
		t.Fatalf("delivery = %v, want inline", out.Delivery)
	}
	if out.ResultPackages != 10 {
		t.Fatalf("result packages = %d, want 10", out.ResultPackages)
	}
	if out.Resent != 0 {
		t.Fatalf("resent = %d on a stable link", out.Resent)
	}

	evs := server.Events()
	if len(evs) != 1 || evs[0].Delivery != migration.DeliveryInline || evs[0].Packages != 10 {
		t.Fatalf("server events = %+v", evs)
	}
}

func TestDialBackAfterClientDisconnects(t *testing.T) {
	// §5.3 case 2: the client uploads, disconnects (walks away), and the
	// server later finds it in the routing table and dials the reply
	// service to deliver the result.
	w := phtest.InstantWorld(t, 2)
	cli := phtest.AddNode(t, w, "phone", geo.Pt(0, 0), device.Dynamic)
	srv := phtest.AddNode(t, w, "server", geo.Pt(3, 0), device.Static)

	// Processing takes ~0.4 s: the client's disconnect lands while the
	// server is crunching, exactly as in fig 5.9.
	if _, err := migration.NewServer(migration.ServerConfig{
		Library:        srv.Lib,
		ProcessingRate: 1024,
		DialBack:       true,
	}); err != nil {
		t.Fatal(err)
	}
	client, err := migration.NewClient(cli.Lib)
	if err != nil {
		t.Fatal(err)
	}
	// Both sides must know each other (the server needs the client in its
	// routing table for the dial-back).
	phtest.RunRounds([]*phtest.Node{cli, srv}, 2)

	out, err := client.Submit(migration.ClientConfig{
		Library:             cli.Lib,
		Provider:            srv.Addr(),
		TaskID:              7,
		Packages:            packages(6, 64),
		DisconnectAfterSend: true,
		ResultTimeout:       30 * time.Second,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if out.Delivery != migration.DeliveryDialBack {
		t.Fatalf("delivery = %v, want dial-back", out.Delivery)
	}
	if out.ResultPackages != 6 {
		t.Fatalf("result packages = %d", out.ResultPackages)
	}
}

func TestNoDialBackLosesResult(t *testing.T) {
	// Pre-thesis behaviour: DialBack disabled, client walks away, result
	// is lost — the client times out.
	w := phtest.InstantWorld(t, 3)
	cli := phtest.AddNode(t, w, "phone", geo.Pt(0, 0), device.Dynamic)
	srv := phtest.AddNode(t, w, "server", geo.Pt(3, 0), device.Static)

	// Processing outlasts the client's disconnect, so the inline result
	// write fails and, without dial-back, the result is simply lost.
	server, err := migration.NewServer(migration.ServerConfig{
		Library:        srv.Lib,
		ProcessingRate: 512,
		DialBack:       false,
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := migration.NewClient(cli.Lib)
	if err != nil {
		t.Fatal(err)
	}
	phtest.RunRounds([]*phtest.Node{cli, srv}, 2)

	_, err = client.Submit(migration.ClientConfig{
		Library:             cli.Lib,
		Provider:            srv.Addr(),
		TaskID:              9,
		Packages:            packages(4, 64),
		DisconnectAfterSend: true,
		ResultTimeout:       2 * time.Second,
	})
	if !errors.Is(err, migration.ErrResultTimeout) {
		t.Fatalf("err = %v, want ErrResultTimeout", err)
	}
	// The server recorded the lost delivery.
	deadline := time.After(2 * time.Second)
	for {
		evs := server.Events()
		if len(evs) == 1 {
			if evs[0].Delivery != migration.DeliveryNone {
				t.Fatalf("server event = %+v", evs[0])
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("server never recorded the task: %+v", evs)
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestUploadResumesAcrossManualHandover(t *testing.T) {
	// The §6 data-buffering extension: a transport swap mid-upload causes
	// the client to re-announce and resume from the last ack; the transfer
	// completes with correct content (verified by the result checksums).
	w := phtest.InstantWorld(t, 4)
	cli := phtest.AddNode(t, w, "phone", geo.Pt(0, 0), device.Dynamic)
	srv := phtest.AddNode(t, w, "server", geo.Pt(3, 0), device.Static)

	if _, err := migration.NewServer(migration.ServerConfig{
		Library:        srv.Lib,
		ProcessingRate: 1 << 30,
		DialBack:       true,
	}); err != nil {
		t.Fatal(err)
	}
	client, err := migration.NewClient(cli.Lib)
	if err != nil {
		t.Fatal(err)
	}
	phtest.RunRounds([]*phtest.Node{cli, srv}, 2)

	// Run the submit in the background and swap the transport under it,
	// exactly as a handover thread would.
	vcCh := make(chan *library.VirtualConnection, 1)
	type res struct {
		out migration.Outcome
		err error
	}
	done := make(chan res, 1)
	go func() {
		out, err := client.Submit(migration.ClientConfig{
			Library:       cli.Lib,
			Provider:      srv.Addr(),
			TaskID:        11,
			Packages:      packages(300, 512),
			ResultTimeout: time.Minute,
			OnConnect:     func(vc *library.VirtualConnection) { vcCh <- vc },
		})
		done <- res{out, err}
	}()
	vc := <-vcCh

	swaps := 0
	for i := 0; i < 2; i++ {
		time.Sleep(10 * time.Millisecond)
		if vc.Closed() {
			break // upload already finished
		}
		entry, ok := cli.Daemon.Storage().Lookup(srv.Addr())
		if !ok {
			t.Fatal("server vanished from storage")
		}
		route, _ := entry.Best()
		raw, err := cli.Lib.ConnectVia(library.Via{
			Route:       route,
			Target:      srv.Addr(),
			ServiceName: migration.DefaultServiceName,
			ServicePort: vc.Service().Port,
			ConnID:      vc.ID(),
			Reconnect:   true,
		})
		if err != nil {
			t.Fatalf("reconnect %d: %v", i, err)
		}
		vc.SwapRoute(raw, route.Bridge)
		swaps++
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("Submit after %d swaps: %v", swaps, r.err)
	}
	if r.out.ResultPackages != 300 {
		t.Fatalf("result packages = %d, want 300", r.out.ResultPackages)
	}
	if swaps > 0 && r.out.Resent == 0 {
		t.Logf("note: %d swaps, 0 resent (swap landed between packages)", swaps)
	}
}
