package migration

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/library"
)

// DefaultServiceName is the picture-analysis service name used throughout
// the examples and experiments.
const DefaultServiceName = "picture-analysis"

// ServerEvent describes a completed (or failed) task from the server's
// perspective — the three §5.3 regimes are distinguishable by Delivery.
type ServerEvent struct {
	TaskID    uint64
	Packages  int
	Delivery  Delivery
	Err       error
	Resyncs   int
	ResentDup int // duplicate packages dropped by the dedupe layer
}

// Delivery says how (whether) a result reached the client.
type Delivery int

// Delivery outcomes.
const (
	// DeliveryNone means the task never completed (§5.3 case 3 without
	// successful handover: "connection lack").
	DeliveryNone Delivery = iota
	// DeliveryInline means the result went back on the still-open
	// connection (§5.3 case 1).
	DeliveryInline
	// DeliveryDialBack means the connection was gone and the server
	// reconnected through its routing table to return the result
	// (§5.3 case 2, fig 5.10).
	DeliveryDialBack
)

// String implements fmt.Stringer.
func (d Delivery) String() string {
	switch d {
	case DeliveryInline:
		return "inline"
	case DeliveryDialBack:
		return "dial-back"
	default:
		return "none"
	}
}

// ServerConfig parametrises a picture-analysis server.
type ServerConfig struct {
	Library *library.Library
	// ServiceName defaults to DefaultServiceName.
	ServiceName string
	// Attr is the advertised service attribute.
	Attr string
	// ProcessingRate is the simulated analysis speed in bytes per second
	// of simulated time ("high processing power" fixed hosts, §1.1).
	ProcessingRate float64
	// AckEvery is how many packages between acknowledgements.
	AckEvery int
	// DialBack enables §5.3 result routing. When off, a broken connection
	// loses the result (the pre-thesis behaviour).
	DialBack bool
	// DialBackTimeout bounds the reconnect-and-deliver attempts.
	DialBackTimeout time.Duration
	// Observer receives one event per finished task; may be nil.
	Observer func(ServerEvent)
}

// Server is the fig 5.10 picture-analysis service.
type Server struct {
	lib *library.Library
	clk clock.Clock
	cfg ServerConfig
	svc device.ServiceInfo

	mu     sync.Mutex
	events []ServerEvent
}

// NewServer registers the analysis service on lib and returns the server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Library == nil {
		return nil, errors.New("migration: Library is required")
	}
	if cfg.ServiceName == "" {
		cfg.ServiceName = DefaultServiceName
	}
	if cfg.ProcessingRate <= 0 {
		cfg.ProcessingRate = 64 << 10 // 64 KiB/s
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 8
	}
	if cfg.DialBackTimeout <= 0 {
		cfg.DialBackTimeout = 2 * time.Minute
	}
	s := &Server{lib: cfg.Library, clk: cfg.Library.Clock(), cfg: cfg}
	svc, err := cfg.Library.RegisterService(cfg.ServiceName, cfg.Attr, s.handle)
	if err != nil {
		return nil, err
	}
	s.svc = svc
	return s, nil
}

// Service returns the registered service descriptor.
func (s *Server) Service() device.ServiceInfo { return s.svc }

// Events returns the recorded task events.
func (s *Server) Events() []ServerEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ServerEvent(nil), s.events...)
}

func (s *Server) record(ev ServerEvent) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
	if s.cfg.Observer != nil {
		s.cfg.Observer(ev)
	}
}

// handle serves one client connection (fig 5.10's activity diagram).
func (s *Server) handle(vc *library.VirtualConnection, meta library.ConnectionMeta) {
	defer vc.Close()
	rr := NewRecordReader(vc)

	var (
		taskID    uint64
		count     uint32
		replyPort uint16
		received  map[uint32][]byte
		dups      int
	)

	// Receive phase.
	for {
		rec, err := rr.Next()
		if err != nil {
			// Connection died mid-transfer (§5.3 case 3). If the client's
			// handover repaired the transport, reads continued above; this
			// error means it truly is gone.
			ev := ServerEvent{TaskID: taskID, Delivery: DeliveryNone, Err: err, Resyncs: rr.Resyncs, ResentDup: dups}
			if received != nil {
				ev.Packages = len(received)
			}
			s.record(ev)
			return
		}
		switch rec.Kind {
		case KindHeader:
			c, rp, _, err := ParseHeaderPayload(rec.Payload)
			if err != nil {
				continue
			}
			if received == nil || rec.TaskID != taskID {
				taskID = rec.TaskID
				count = c
				replyPort = rp
				received = make(map[uint32][]byte, c)
				dups = 0
			}
			// A repeated header with the same taskID is a post-handover
			// resume; state is kept and an ack tells the sender where to
			// resume from.
			_ = WriteRecord(vc, Record{TaskID: taskID, Kind: KindAck, Payload: U32Payload(s.contiguous(received))})
		case KindData:
			if received == nil || rec.TaskID != taskID {
				continue // stray package from an unknown task
			}
			if _, dup := received[rec.Seq]; dup {
				dups++
			} else {
				received[rec.Seq] = rec.Payload
			}
			if len(received) == int(count) {
				// All packages in: acknowledge and move to processing.
				_ = WriteRecord(vc, Record{TaskID: taskID, Kind: KindAck, Payload: U32Payload(count)})
				s.process(vc, meta, taskID, count, replyPort, received, rr.Resyncs, dups)
				return
			}
			if int(rec.Seq)%s.cfg.AckEvery == 0 {
				_ = WriteRecord(vc, Record{TaskID: taskID, Kind: KindAck, Payload: U32Payload(s.contiguous(received))})
			}
		default:
			// Ignore anything else during receive.
		}
	}
}

// contiguous returns the highest n such that packages 1..n are all
// present.
func (s *Server) contiguous(received map[uint32][]byte) uint32 {
	var n uint32
	for {
		if _, ok := received[n+1]; !ok {
			return n
		}
		n++
	}
}

// process runs the simulated analysis and returns the result — inline if
// the connection survived, through a dial-back otherwise.
func (s *Server) process(vc *library.VirtualConnection, meta library.ConnectionMeta, taskID uint64, count uint32, replyPort uint16, received map[uint32][]byte, resyncs, dups int) {
	var totalBytes int
	for _, p := range received {
		totalBytes += len(p)
	}
	// "The server will process the data": simulated crunch time.
	s.clk.Sleep(time.Duration(float64(totalBytes) / s.cfg.ProcessingRate * float64(time.Second)))

	result := s.analyze(received, count)

	// While processing, the client typically stops depending on the link
	// (fig 5.9); it may be gone entirely. Try inline first.
	vc.SetSending(false) // fail fast: no handover wait on the result path
	if err := s.sendResult(vc, taskID, result); err == nil {
		s.record(ServerEvent{TaskID: taskID, Packages: int(count), Delivery: DeliveryInline, Resyncs: resyncs, ResentDup: dups})
		return
	}

	if !s.cfg.DialBack || !meta.HasClient || replyPort == 0 {
		s.record(ServerEvent{TaskID: taskID, Packages: int(count), Delivery: DeliveryNone,
			Err: errors.New("migration: connection lost and dial-back unavailable"), Resyncs: resyncs, ResentDup: dups})
		return
	}

	// §5.3 case 2: "server looks for the device in its neighborhood
	// routing table and tries to send the result back".
	if err := s.dialBack(meta.Client, replyPort, taskID, result); err != nil {
		s.record(ServerEvent{TaskID: taskID, Packages: int(count), Delivery: DeliveryNone, Err: err, Resyncs: resyncs, ResentDup: dups})
		return
	}
	s.record(ServerEvent{TaskID: taskID, Packages: int(count), Delivery: DeliveryDialBack, Resyncs: resyncs, ResentDup: dups})
}

// analyze produces the per-package analysis summaries ("the people from
// the photo will be recognized and names added", simulated as checksums).
func (s *Server) analyze(received map[uint32][]byte, count uint32) [][]byte {
	out := make([][]byte, 0, count)
	for seq := uint32(1); seq <= count; seq++ {
		pkg := received[seq]
		sum := crc32.ChecksumIEEE(pkg)
		entry := make([]byte, 0, 8)
		entry = binary.BigEndian.AppendUint32(entry, seq)
		entry = binary.BigEndian.AppendUint32(entry, sum)
		out = append(out, entry)
	}
	return out
}

func (s *Server) sendResult(w interface {
	Write([]byte) (int, error)
}, taskID uint64, result [][]byte) error {
	if err := WriteRecord(w, Record{TaskID: taskID, Kind: KindResultHeader, Payload: U32Payload(uint32(len(result)))}); err != nil {
		return err
	}
	for i, r := range result {
		if err := WriteRecord(w, Record{TaskID: taskID, Seq: uint32(i + 1), Kind: KindResult, Payload: r}); err != nil {
			return err
		}
	}
	return WriteRecord(w, Record{TaskID: taskID, Kind: KindDone})
}

// dialBack locates the client in the routing table (waiting for discovery
// if needed) and delivers the result to its reply service.
func (s *Server) dialBack(client device.Info, replyPort uint16, taskID uint64, result [][]byte) error {
	deadline := s.clk.Now().Add(s.cfg.DialBackTimeout)
	var lastErr error = fmt.Errorf("migration: client %v never appeared in storage", client.Addr)
	for {
		if s.clk.Now().After(deadline) {
			return fmt.Errorf("migration: dial-back timed out: %w", lastErr)
		}
		entry, ok := s.lib.Daemon().Storage().Lookup(client.Addr)
		if !ok {
			s.clk.Sleep(time.Second)
			continue
		}
		for _, route := range entry.Routes {
			raw, err := s.lib.ConnectVia(library.Via{
				Route:       route,
				Target:      client.Addr,
				ServiceName: "", // reply service addressed by port
				ServicePort: replyPort,
				ConnID:      taskID,
			})
			if err != nil {
				lastErr = err
				continue
			}
			err = s.sendResult(raw, taskID, result)
			_ = raw.Close()
			if err != nil {
				lastErr = err
				continue
			}
			return nil
		}
		s.clk.Sleep(time.Second)
	}
}
