// Package linkmon is the per-daemon link-quality monitoring and
// prediction subsystem. The thesis' soft handover (ch. 5) is purely
// reactive — the per-connection thread waits for quality to sit below the
// 230 threshold before re-attaching, so every handover begins on an
// already-degraded link. The monitor closes that gap: every quality
// sample of an active link or discovered neighbour (discovery inquiry
// responses, handover-thread ticks) feeds a per-link trend — EWMA level
// plus a windowed least-squares slope — and each link is continuously
// classified as Stable, Degrading (with a predicted time until the level
// crosses the threshold), or Lost. Classification transitions publish
// LinkDegrading / LinkRecovered / LinkLost on the neighbourhood event
// bus, and the handover subsystem consumes the predictions to re-route
// *before* the break (micro-mobility studies show proactive state set up
// ahead of movement cuts disruption dramatically versus reactive repair).
package linkmon

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/events"
	"peerhood/internal/metrics"
	"peerhood/internal/telemetry"
)

// Class is a link's health classification.
type Class int

// Link classes.
const (
	// ClassStable: level above threshold and no imminent predicted
	// crossing.
	ClassStable Class = iota + 1
	// ClassDegrading: the trend predicts the level will cross the
	// threshold within the horizon (or already sits below it).
	ClassDegrading
	// ClassLost: quality collapsed to zero or the device aged out.
	ClassLost
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassStable:
		return "stable"
	case ClassDegrading:
		return "degrading"
	case ClassLost:
		return "lost"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// State is one monitored link's externally visible trend state.
type State struct {
	// Addr is the link peer (transport remote for active links, the
	// neighbour for discovery samples).
	Addr device.Addr
	// Class is the current classification.
	Class Class
	// Level is the EWMA-smoothed quality.
	Level float64
	// Slope is the windowed least-squares quality slope per second.
	Slope float64
	// TimeToThreshold is the predicted time until Level crosses the
	// threshold; 0 unless Class is ClassDegrading (0 there means the
	// level already sits at or below the threshold).
	TimeToThreshold time.Duration
	// Samples is how many quality samples this link has accumulated.
	Samples int
	// LastQuality is the most recent raw sample.
	LastQuality int
	// LastSample is when the most recent sample arrived.
	LastSample time.Time
	// Span is the trace span ID of the current degradation episode: a root
	// span opened on the Stable→Degrading transition and closed on
	// recovery or loss. Zero while stable (or when tracing is off).
	// Handover threads parent their spans on it, which is what links a
	// LinkDegrading verdict to the handover it triggered.
	Span uint64
}

// String implements fmt.Stringer.
func (s State) String() string {
	out := fmt.Sprintf("%v %s level=%.1f slope=%+.2f/s", s.Addr, s.Class, s.Level, s.Slope)
	if s.Class == ClassDegrading {
		out += fmt.Sprintf(" ttt=%s", s.TimeToThreshold)
	}
	return out
}

// Defaults.
const (
	// DefaultThreshold is the thesis' 230 link-quality threshold.
	DefaultThreshold = 230
	// DefaultHorizon is how far ahead a predicted crossing must lie for
	// the link to classify as degrading.
	DefaultHorizon = 10 * time.Second
	// DefaultAlpha is the EWMA smoothing factor.
	DefaultAlpha = 0.4
	// DefaultWindow is the slope window in samples.
	DefaultWindow = 8
	// DefaultMinSamples is how many samples a link needs before it may
	// classify as degrading — one noisy dip must not look like a trend.
	DefaultMinSamples = 3
	// DefaultMinFit is the minimum least-squares R² for a Degrading
	// verdict: quality oscillating around the threshold has a slope near
	// zero *and* a fit near zero, while genuine decay fits almost
	// perfectly — the gate is what keeps predictive handover from
	// flapping on noise.
	DefaultMinFit = 0.5
)

// Config parametrises a Monitor. All fields are optional except Clock
// when deterministic time matters (nil falls back to the real clock).
type Config struct {
	// Clock stamps samples; defaults to the real clock.
	Clock clock.Clock
	// Bus receives LinkDegrading/LinkRecovered/LinkLost transitions; nil
	// disables publishing.
	Bus *events.Bus
	// Threshold is the quality floor predictions are made against
	// (default 230).
	Threshold int
	// Horizon bounds how far ahead a predicted crossing classifies the
	// link as degrading (default 10 s).
	Horizon time.Duration
	// Alpha is the EWMA smoothing factor (default 0.4).
	Alpha float64
	// Window is the slope window in samples (default 8).
	Window int
	// MinSamples gates degrading classification (default 3).
	MinSamples int
	// MinFit is the minimum trend R² for a Degrading verdict (default
	// 0.5). Negative disables the gate.
	MinFit float64
	// Registry receives sample/transition counters; nil disables.
	Registry *telemetry.Registry
	// Tracer opens a root span per degradation episode; nil disables.
	Tracer *telemetry.Tracer
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.Threshold == 0 {
		c.Threshold = DefaultThreshold
	}
	if c.Horizon == 0 {
		c.Horizon = DefaultHorizon
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultMinSamples
	}
	switch {
	case c.MinFit == 0:
		c.MinFit = DefaultMinFit
	case c.MinFit < 0:
		c.MinFit = 0
	}
	return c
}

// Stats counts monitor activity.
type Stats struct {
	Samples     int64
	Degradation int64 // Stable->Degrading transitions
	Recoveries  int64 // Degrading->Stable transitions
	Losses      int64 // ->Lost transitions
}

// Monitor tracks the quality trend of every link it is fed samples for.
// It is sample-driven rather than loop-driven: discovery feeds inquiry
// qualities for every neighbour each round, and handover threads feed
// their connection's quality each monitoring tick — so "sampling rate"
// follows the subsystems that already touch the radio, and deterministic
// tests drive it sample by sample.
type Monitor struct {
	cfg Config

	// Telemetry handles resolved at construction (nil-safe when no
	// registry is configured); the observe path stays allocation-free.
	samples       *telemetry.Counter
	transDegraded *telemetry.Counter
	transStable   *telemetry.Counter
	transLost     *telemetry.Counter

	mu    sync.Mutex
	links map[device.Addr]*link
	stats Stats
}

type link struct {
	trend       *metrics.Trend
	class       Class
	ttt         time.Duration
	lastQuality int
	lastSample  time.Time
	// span is the open degradation-episode root span (zero ID while
	// stable or untraced).
	span telemetry.Span
}

// New returns a Monitor.
func New(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{
		cfg:           cfg,
		samples:       cfg.Registry.Counter("peerhood_link_samples_total"),
		transDegraded: cfg.Registry.Counter(`peerhood_link_transitions_total{to="degrading"}`),
		transStable:   cfg.Registry.Counter(`peerhood_link_transitions_total{to="stable"}`),
		transLost:     cfg.Registry.Counter(`peerhood_link_transitions_total{to="lost"}`),
		links:         make(map[device.Addr]*link),
	}
}

// Threshold returns the configured quality floor.
func (m *Monitor) Threshold() int { return m.cfg.Threshold }

// Horizon returns the configured degradation horizon.
func (m *Monitor) Horizon() time.Duration { return m.cfg.Horizon }

// Observe feeds one quality sample for a link and returns the updated
// state. A sample of 0 classifies the link as lost immediately (the
// radio reports 0 for broken or out-of-range links).
func (m *Monitor) Observe(addr device.Addr, quality int) State {
	now := m.cfg.Clock.Now()
	m.mu.Lock()
	lk := m.links[addr]
	if lk == nil {
		lk = &link{trend: metrics.NewTrend(m.cfg.Alpha, m.cfg.Window), class: ClassStable}
		m.links[addr] = lk
	}
	m.stats.Samples++
	m.samples.Inc()
	lk.trend.Observe(now, float64(quality))
	lk.lastQuality = quality
	lk.lastSample = now

	prev := lk.class
	lk.class, lk.ttt = m.classifyLocked(lk, quality)
	st := stateLocked(addr, lk)
	ev, publish := m.transitionLocked(prev, lk, st)
	// The transition may have opened (Degrading) or closed (Lost /
	// Recovered) the episode span; the returned state carries the final
	// word.
	st.Span = lk.span.ID
	// Publish while still holding m.mu: concurrent Observe calls for the
	// same link (discovery loop + handover tick) must not invert the
	// order of transition events on the bus, or subscribers would be left
	// believing a stale final state. Bus.Publish is non-blocking and
	// takes only the bus lock, which never calls back into the monitor.
	if publish && m.cfg.Bus != nil {
		m.cfg.Bus.Publish(ev)
	}
	m.mu.Unlock()
	return st
}

// classifyLocked derives (class, time-to-threshold) from the link trend.
// Degrading strictly means "a genuine downward trend predicted to cross
// (or having crossed) the threshold": the slope must be negative and the
// window's least-squares fit must clear MinFit, so noise oscillating
// around the threshold — slope near zero, fit near zero — stays Stable
// instead of flapping. A steadily *poor* link is also Stable by this
// definition; the reactive threshold logic owns that case.
func (m *Monitor) classifyLocked(lk *link, quality int) (Class, time.Duration) {
	if quality <= 0 {
		return ClassLost, 0
	}
	if lk.trend.N() < m.cfg.MinSamples {
		return ClassStable, 0
	}
	if lk.trend.Slope() >= 0 || lk.trend.Fit() < m.cfg.MinFit {
		return ClassStable, 0
	}
	ttt, crossing := lk.trend.TimeToCross(float64(m.cfg.Threshold))
	if crossing && ttt <= m.cfg.Horizon {
		return ClassDegrading, ttt
	}
	return ClassStable, 0
}

// transitionLocked updates transition counters and renders the bus event
// for a classification change, if any.
func (m *Monitor) transitionLocked(prev Class, lk *link, st State) (events.Event, bool) {
	if lk.class == prev {
		return events.Event{}, false
	}
	switch lk.class {
	case ClassDegrading:
		m.stats.Degradation++
		m.transDegraded.Inc()
		// Open the degradation-episode root span; everything the verdict
		// triggers (handover, reconnect, sync) parents on its ID.
		lk.span = m.cfg.Tracer.Begin("link.degrading", 0, st.Addr.String())
		return events.Event{
			Type:            events.LinkDegrading,
			Addr:            st.Addr,
			Quality:         int(st.Level),
			TimeToThreshold: st.TimeToThreshold,
			Detail:          fmt.Sprintf("slope=%+.2f/s", st.Slope),
			Span:            lk.span.ID,
		}, true
	case ClassLost:
		m.stats.Losses++
		m.transLost.Inc()
		ev := events.Event{Type: events.LinkLost, Addr: st.Addr, Quality: 0, Span: lk.span.ID}
		m.cfg.Tracer.End(lk.span, "lost")
		lk.span = telemetry.Span{}
		return ev, true
	default: // recovered to stable
		m.stats.Recoveries++
		m.transStable.Inc()
		ev := events.Event{Type: events.LinkRecovered, Addr: st.Addr, Quality: int(st.Level), Span: lk.span.ID}
		m.cfg.Tracer.End(lk.span, "recovered")
		lk.span = telemetry.Span{}
		return ev, true
	}
}

func stateLocked(addr device.Addr, lk *link) State {
	return State{
		Addr:            addr,
		Class:           lk.class,
		Level:           lk.trend.Level(),
		Slope:           lk.trend.Slope(),
		TimeToThreshold: lk.ttt,
		Samples:         lk.trend.N(),
		LastQuality:     lk.lastQuality,
		LastSample:      lk.lastSample,
		Span:            lk.span.ID,
	}
}

// MarkLost forces a link to the lost class (aging sweep removed its
// device) and publishes LinkLost if it was not already lost. The trend
// state is dropped: a device that reappears starts a fresh trend.
func (m *Monitor) MarkLost(addr device.Addr) {
	m.mu.Lock()
	lk, ok := m.links[addr]
	if ok {
		if lk.class != ClassLost {
			m.stats.Losses++
			m.transLost.Inc()
			ev := events.Event{Type: events.LinkLost, Addr: addr, Quality: 0, Span: lk.span.ID}
			m.cfg.Tracer.End(lk.span, "lost")
			if m.cfg.Bus != nil {
				// Under the lock for the same event-ordering reason as
				// Observe.
				m.cfg.Bus.Publish(ev)
			}
		}
		delete(m.links, addr)
	}
	m.mu.Unlock()
}

// Forget drops a link's trend state without publishing (e.g. after a
// handover abandons the link deliberately).
func (m *Monitor) Forget(addr device.Addr) {
	m.mu.Lock()
	delete(m.links, addr)
	m.mu.Unlock()
}

// State returns a link's current state.
func (m *Monitor) State(addr device.Addr) (State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	lk, ok := m.links[addr]
	if !ok {
		return State{}, false
	}
	return stateLocked(addr, lk), true
}

// States returns every monitored link's state, ordered by address for
// deterministic rendering.
func (m *Monitor) States() []State {
	m.mu.Lock()
	out := make([]State, 0, len(m.links))
	for a, lk := range m.links {
		out = append(out, stateLocked(a, lk))
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr.Tech != out[j].Addr.Tech {
			return out[i].Addr.Tech < out[j].Addr.Tech
		}
		return out[i].Addr.MAC < out[j].Addr.MAC
	})
	return out
}

// Stats returns a snapshot of the counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
