package linkmon

import (
	"testing"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/events"
)

func addr(mac string) device.Addr {
	return device.Addr{Tech: device.TechBluetooth, MAC: mac}
}

// feed observes a sequence of samples one simulated second apart.
func feed(m *Monitor, clk *clock.Manual, a device.Addr, qs ...int) State {
	var st State
	for i, q := range qs {
		if i > 0 {
			clk.Advance(time.Second)
		}
		st = m.Observe(a, q)
	}
	return st
}

func TestStableLinkStaysStable(t *testing.T) {
	clk := clock.NewManual()
	m := New(Config{Clock: clk})
	st := feed(m, clk, addr("aa"), 250, 249, 250, 251, 250, 250)
	if st.Class != ClassStable {
		t.Fatalf("class = %v, want stable", st.Class)
	}
	if st.Samples != 6 || st.LastQuality != 250 {
		t.Fatalf("state = %+v", st)
	}
	if s := m.Stats(); s.Degradation != 0 || s.Losses != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMonotonicDecayClassifiesDegradingWithPrediction(t *testing.T) {
	clk := clock.NewManual()
	bus := events.NewBus(clk)
	defer bus.Close()
	sub := bus.Subscribe(events.MaskOf(events.LinkDegrading))
	defer sub.Close()

	m := New(Config{Clock: clk, Bus: bus, Horizon: 30 * time.Second})
	// 255 down 1/s: level ~ t-ish above 230, slope -1 -> crossing within
	// the 30 s horizon once the level drops under 260-ish.
	st := feed(m, clk, addr("aa"), 255, 254, 253, 252, 251, 250)
	if st.Class != ClassDegrading {
		t.Fatalf("class = %v, want degrading (state %v)", st.Class, st)
	}
	if st.TimeToThreshold <= 0 || st.TimeToThreshold > 30*time.Second {
		t.Fatalf("ttt = %v", st.TimeToThreshold)
	}
	if st.Slope >= 0 {
		t.Fatalf("slope = %v, want negative", st.Slope)
	}
	select {
	case e := <-sub.C():
		if e.Type != events.LinkDegrading || e.Addr != addr("aa") || e.TimeToThreshold <= 0 {
			t.Fatalf("event = %+v", e)
		}
	default:
		t.Fatal("no LinkDegrading published")
	}
	// Exactly one transition event despite several degrading samples.
	feed(m, clk, addr("aa"), 249, 248)
	select {
	case e := <-sub.C():
		t.Fatalf("duplicate degrading event %v", e)
	default:
	}
}

func TestMinSamplesGateBlocksEarlyVerdict(t *testing.T) {
	clk := clock.NewManual()
	m := New(Config{Clock: clk, MinSamples: 4, Horizon: time.Hour})
	st := feed(m, clk, addr("aa"), 240, 200) // steep drop, but only 2 samples
	if st.Class != ClassStable {
		t.Fatalf("class = %v after %d samples, want stable", st.Class, st.Samples)
	}
}

func TestRecoveryPublishesLinkRecovered(t *testing.T) {
	clk := clock.NewManual()
	bus := events.NewBus(clk)
	defer bus.Close()
	sub := bus.Subscribe(0)
	defer sub.Close()

	m := New(Config{Clock: clk, Bus: bus, Horizon: 30 * time.Second})
	a := addr("aa")
	if st := feed(m, clk, a, 250, 247, 244, 241, 238); st.Class != ClassDegrading {
		t.Fatalf("setup: class = %v", st.Class)
	}
	// Quality climbs back: slope flips positive, classification recovers.
	st := feed(m, clk, a, 244, 250, 255, 255, 255, 255)
	if st.Class != ClassStable {
		t.Fatalf("class after recovery = %v (%v)", st.Class, st)
	}
	var got []events.Type
	for {
		select {
		case e := <-sub.C():
			got = append(got, e.Type)
			continue
		default:
		}
		break
	}
	want := []events.Type{events.LinkDegrading, events.LinkRecovered}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("events = %v, want %v", got, want)
	}
	if s := m.Stats(); s.Degradation != 1 || s.Recoveries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestZeroQualityIsLost(t *testing.T) {
	clk := clock.NewManual()
	bus := events.NewBus(clk)
	defer bus.Close()
	sub := bus.Subscribe(events.MaskOf(events.LinkLost))
	defer sub.Close()

	m := New(Config{Clock: clk, Bus: bus})
	st := feed(m, clk, addr("aa"), 240, 235, 0)
	if st.Class != ClassLost {
		t.Fatalf("class = %v, want lost", st.Class)
	}
	select {
	case e := <-sub.C():
		if e.Type != events.LinkLost {
			t.Fatalf("event = %v", e)
		}
	default:
		t.Fatal("no LinkLost published")
	}
}

func TestMarkLostPublishesOnceAndForgets(t *testing.T) {
	clk := clock.NewManual()
	bus := events.NewBus(clk)
	defer bus.Close()
	sub := bus.Subscribe(events.MaskOf(events.LinkLost))
	defer sub.Close()

	m := New(Config{Clock: clk, Bus: bus})
	a := addr("aa")
	feed(m, clk, a, 240, 238)
	m.MarkLost(a)
	m.MarkLost(a) // unknown now: no second event
	if _, ok := m.State(a); ok {
		t.Fatal("state survived MarkLost")
	}
	n := 0
	for {
		select {
		case <-sub.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("LinkLost events = %d, want 1", n)
	}
	// A re-appearing device starts a fresh trend with no stale slope.
	st := m.Observe(a, 240)
	if st.Samples != 1 || st.Class != ClassStable {
		t.Fatalf("fresh state = %+v", st)
	}
}

func TestForgetIsSilent(t *testing.T) {
	clk := clock.NewManual()
	bus := events.NewBus(clk)
	defer bus.Close()
	sub := bus.Subscribe(0)
	defer sub.Close()
	m := New(Config{Clock: clk, Bus: bus})
	feed(m, clk, addr("aa"), 240)
	m.Forget(addr("aa"))
	select {
	case e := <-sub.C():
		t.Fatalf("Forget published %v", e)
	default:
	}
	if _, ok := m.State(addr("aa")); ok {
		t.Fatal("state survived Forget")
	}
}

func TestOscillationAroundThresholdStaysStable(t *testing.T) {
	clk := clock.NewManual()
	m := New(Config{Clock: clk, Horizon: 10 * time.Second})
	a := addr("aa")
	qs := []int{235, 226, 236, 225, 235, 226, 236, 225, 235, 226, 236, 225}
	st := feed(m, clk, a, qs...)
	if st.Class != ClassStable {
		t.Fatalf("oscillation classified %v (%v)", st.Class, st)
	}
	if s := m.Stats(); s.Degradation != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStatesSortedAndComplete(t *testing.T) {
	clk := clock.NewManual()
	m := New(Config{Clock: clk})
	m.Observe(addr("bb"), 240)
	m.Observe(addr("aa"), 250)
	sts := m.States()
	if len(sts) != 2 || sts[0].Addr.MAC != "aa" || sts[1].Addr.MAC != "bb" {
		t.Fatalf("states = %v", sts)
	}
	if m.Threshold() != DefaultThreshold || m.Horizon() != DefaultHorizon {
		t.Fatalf("defaults: %d %v", m.Threshold(), m.Horizon())
	}
}
