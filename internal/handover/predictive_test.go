package handover_test

import (
	"sync"
	"testing"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/events"
	"peerhood/internal/geo"
	"peerhood/internal/handover"
	"peerhood/internal/mobility"
	"peerhood/internal/phtest"
)

// Geometry notes (see handover_test.go): quality(d) = 180 + 75*(1 - d/10),
// so 2 m reads 240, 1 m reads 247, and the 230 threshold sits at 3.33 m.

type degrader interface{ StartDegradation(rate float64) }

// eventLog records observer events with their tick index.
type eventLog struct {
	mu    sync.Mutex
	ticks map[handover.Event][]int
	tick  int
}

func newEventLog() *eventLog { return &eventLog{ticks: make(map[handover.Event][]int)} }

func (l *eventLog) observer() handover.Observer {
	return func(e handover.Event, detail string) {
		l.mu.Lock()
		l.ticks[e] = append(l.ticks[e], l.tick)
		l.mu.Unlock()
	}
}

func (l *eventLog) setTick(n int) {
	l.mu.Lock()
	l.tick = n
	l.mu.Unlock()
}

func (l *eventLog) first(e handover.Event) (int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ts := l.ticks[e]
	if len(ts) == 0 {
		return 0, false
	}
	return ts[0], true
}

func (l *eventLog) count(e handover.Event) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ticks[e])
}

// degradingScenario builds the fig 5.8 triangle on a manual clock — client
// A at (0,0), server B at (2,0) (quality 240, above threshold), bridge C
// at (1,0) — connects A to B, starts a 1 unit/s artificial degradation,
// and ticks the handover thread once per simulated second until a
// handover completes or maxTicks pass. It returns the tick at which the
// first handover-start event fired, the instantaneous quality at that
// tick, and the thread for stats inspection.
func degradingScenario(t *testing.T, seed int64, predictive bool, maxTicks int) (startTick, startQuality int, th *handover.Thread, log *eventLog) {
	t.Helper()
	w, clk := phtest.ManualWorld(t, seed)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(2, 0), device.Static)
	c := phtest.AddNode(t, w, "C", geo.Pt(1, 0), device.Static)
	phtest.AttachBridge(t, c)
	registerEcho(t, b)
	phtest.RunRounds([]*phtest.Node{a, b, c}, 3)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	t.Cleanup(func() { _ = vc.Close() })
	if q := vc.Quality(); q < 230 {
		t.Fatalf("initial quality = %d, want above threshold", q)
	}

	log = newEventLog()
	th, err = handover.New(handover.Config{
		Library:    a.Lib,
		Conn:       vc,
		Predictive: predictive,
		Observer:   log.observer(),
	})
	if err != nil {
		t.Fatal(err)
	}

	d, ok := vc.Transport().(degrader)
	if !ok {
		t.Fatal("transport does not support degradation")
	}
	d.StartDegradation(1)

	qualityAt := make(map[int]int)
	for tick := 1; tick <= maxTicks; tick++ {
		clk.Advance(time.Second)
		log.setTick(tick)
		qualityAt[tick] = vc.Quality()
		th.Step()
		if vc.Swaps() > 0 {
			break
		}
	}
	if vc.Swaps() != 1 {
		t.Fatalf("swaps = %d after %d ticks (stats %+v)", vc.Swaps(), maxTicks, th.Stats())
	}
	if vc.Bridge() != c.Addr() {
		t.Fatalf("handover bridge = %v, want C", vc.Bridge())
	}
	echoOnce(t, vc, "after")

	start := handover.EventHandoverStart
	if predictive {
		start = handover.EventPredictiveStart
	}
	tick, ok := log.first(start)
	if !ok {
		t.Fatalf("no %v event (log %v)", start, log.ticks)
	}
	return tick, qualityAt[tick], th, log
}

// TestPredictiveFiresStrictlyBeforeReactive is the acceptance property:
// under an identical monotonic 1/s degradation on a manual clock, the
// predictive trigger must fire strictly before the reactive 230-threshold
// trigger, while the link is still above the threshold.
func TestPredictiveFiresStrictlyBeforeReactive(t *testing.T) {
	reactTick, reactQ, reactTh, _ := degradingScenario(t, 31, false, 40)
	predTick, predQ, predTh, _ := degradingScenario(t, 31, true, 40)

	if predTick >= reactTick {
		t.Fatalf("predictive trigger tick %d not strictly before reactive %d", predTick, reactTick)
	}
	if predQ < handover.DefaultThreshold {
		t.Fatalf("predictive fired below threshold: quality %d", predQ)
	}
	if reactQ >= handover.DefaultThreshold {
		t.Fatalf("reactive fired above threshold: quality %d", reactQ)
	}
	if st := predTh.Stats(); st.PredictiveHandovers != 1 || st.Handovers != 1 {
		t.Fatalf("predictive stats = %+v", st)
	}
	if st := reactTh.Stats(); st.PredictiveHandovers != 0 || st.Handovers != 1 {
		t.Fatalf("reactive stats = %+v", st)
	}
	// The reactive baseline needs LowLimit+1 below-threshold samples; the
	// predictive path must not have spent any.
	if st := predTh.Stats(); st.QualityLowTicks != 0 {
		t.Fatalf("predictive consumed %d low ticks", st.QualityLowTicks)
	}
}

// TestOscillationDoesNotFlap pins the trigger hysteresis: quality
// bouncing just around the 230 threshold — with a viable alternate route
// available — must cause neither reactive nor predictive handover, and
// the low-tick/event accounting must match the below-threshold samples
// exactly.
func TestOscillationDoesNotFlap(t *testing.T) {
	w, clk := phtest.ManualWorld(t, 32)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(3.2, 0), device.Static)
	c := phtest.AddNode(t, w, "C", geo.Pt(1.6, 1), device.Static)
	phtest.AttachBridge(t, c)
	registerEcho(t, b)
	phtest.RunRounds([]*phtest.Node{a, b, c}, 3)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	log := newEventLog()
	th, err := handover.New(handover.Config{
		Library:    a.Lib,
		Conn:       vc,
		Predictive: true,
		Observer:   log.observer(),
	})
	if err != nil {
		t.Fatal(err)
	}

	const ticks = 40
	lowSamples := 0
	for i := 0; i < ticks; i++ {
		// Even ticks: 3.6 m -> 228 (low). Odd ticks: 3.2 m -> 231 (fine).
		at := geo.Pt(3.2, 0)
		if i%2 == 0 {
			at = geo.Pt(3.6, 0)
		}
		b.Device.SetModel(mobility.Static{At: at})
		clk.Advance(time.Second)
		log.setTick(i + 1)
		if vc.Quality() < handover.DefaultThreshold {
			lowSamples++
		}
		th.Step()
	}

	if vc.Swaps() != 0 {
		t.Fatalf("oscillation caused %d handovers", vc.Swaps())
	}
	st := th.Stats()
	if st.Handovers != 0 || st.FailedHandovers != 0 || st.PredictiveHandovers != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if lowSamples == 0 {
		t.Fatal("scenario never dipped below threshold — nothing was tested")
	}
	if st.QualityLowTicks != int64(lowSamples) {
		t.Fatalf("QualityLowTicks = %d, want %d", st.QualityLowTicks, lowSamples)
	}
	if got := log.count(handover.EventQualityLow); got != lowSamples {
		t.Fatalf("EventQualityLow count = %d, want %d", got, lowSamples)
	}
	for _, e := range []handover.Event{handover.EventHandoverStart, handover.EventPredictiveStart} {
		if n := log.count(e); n != 0 {
			t.Fatalf("%v fired %d times during oscillation", e, n)
		}
	}

	// Prove restraint, not inability: a sustained drop does hand over via C.
	b.Device.SetModel(mobility.Static{At: geo.Pt(6, 0)})
	for i := 0; i < 6; i++ {
		clk.Advance(time.Second)
		th.Step()
	}
	if vc.Swaps() != 1 || vc.Bridge() != c.Addr() {
		t.Fatalf("sustained drop: swaps = %d bridge = %v", vc.Swaps(), vc.Bridge())
	}
}

// TestPredictiveFailureDoesNotEscalate verifies a failed predictive
// attempt neither counts towards the service-reconnection escalation nor
// re-fires every tick (the cooldown bounds it).
func TestPredictiveFailureDoesNotEscalate(t *testing.T) {
	w, clk := phtest.ManualWorld(t, 33)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(2, 0), device.Static)
	registerEcho(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 2)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	log := newEventLog()
	th, err := handover.New(handover.Config{
		Library:         a.Lib,
		Conn:            vc,
		Predictive:      true,
		PredictCooldown: 10 * time.Second,
		Observer:        log.observer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	vc.Transport().(degrader).StartDegradation(1)

	// Ten above-threshold ticks: the prediction fires, finds no routes
	// (no bridge in this world), and must then hold off for the cooldown.
	for i := 1; i <= 10; i++ {
		clk.Advance(time.Second)
		log.setTick(i)
		if vc.Quality() < handover.DefaultThreshold {
			break
		}
		th.Step()
	}
	if n := log.count(handover.EventPredictiveStart); n != 1 {
		t.Fatalf("predictive fired %d times within one cooldown window", n)
	}
	st := th.Stats()
	if st.PredictiveHandovers != 0 || st.Reconnects != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if th.State() != handover.StateMonitoring {
		t.Fatalf("state = %v", th.State())
	}
}

// TestHandoverPublishesBusEvents checks the handover half of the
// neighbourhood event bus: a completed handover publishes
// HandoverStarted then HandoverCompleted for the target device.
func TestHandoverPublishesBusEvents(t *testing.T) {
	w, clk := phtest.ManualWorld(t, 34)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(2, 0), device.Static)
	c := phtest.AddNode(t, w, "C", geo.Pt(1, 0), device.Static)
	phtest.AttachBridge(t, c)
	registerEcho(t, b)
	phtest.RunRounds([]*phtest.Node{a, b, c}, 3)

	sub := a.Daemon.Bus().Subscribe(events.MaskOf(
		events.HandoverStarted, events.HandoverCompleted, events.LinkDegrading))
	defer sub.Close()

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	th, err := handover.New(handover.Config{Library: a.Lib, Conn: vc, Predictive: true})
	if err != nil {
		t.Fatal(err)
	}
	vc.Transport().(degrader).StartDegradation(1)
	for i := 0; i < 20 && vc.Swaps() == 0; i++ {
		clk.Advance(time.Second)
		th.Step()
	}
	if vc.Swaps() != 1 {
		t.Fatalf("no handover (stats %+v)", th.Stats())
	}

	var got []events.Type
	for {
		select {
		case e := <-sub.C():
			got = append(got, e.Type)
			continue
		default:
		}
		break
	}
	want := []events.Type{events.LinkDegrading, events.HandoverStarted, events.HandoverCompleted}
	if len(got) != len(want) {
		t.Fatalf("bus events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bus events = %v, want %v", got, want)
		}
	}
}
