package handover_test

import (
	"sync"
	"testing"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/handover"
	"peerhood/internal/library"
	"peerhood/internal/mobility"
	"peerhood/internal/phtest"
	"peerhood/internal/storage"
)

// Geometry notes: coverage radius 10 m, edge quality 180, so
// quality(d) = 180 + 75*(1 - d/10). The 230 threshold sits at d = 3.33 m:
// closer is "good", farther (but < 10 m) is "low but connected".

func registerEcho(t *testing.T, n *phtest.Node) {
	t.Helper()
	if _, err := n.Lib.RegisterService("echo", "", func(vc *library.VirtualConnection, meta library.ConnectionMeta) {
		defer vc.Close()
		buf := make([]byte, 512)
		for {
			nr, err := vc.Read(buf)
			if err != nil {
				return
			}
			if _, err := vc.Write(buf[:nr]); err != nil {
				return
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func echoOnce(t *testing.T, vc *library.VirtualConnection, msg string) {
	t.Helper()
	if _, err := vc.Write([]byte(msg)); err != nil {
		t.Fatalf("write %q: %v", msg, err)
	}
	buf := make([]byte, len(msg)+8)
	n, err := vc.Read(buf)
	if err != nil || string(buf[:n]) != msg {
		t.Fatalf("echo = %q, %v", buf[:n], err)
	}
}

// TestRoutingHandoverViaBridge reproduces the thesis' handover simulation
// (fig 5.8): client A is connected to server B on a deteriorating link;
// after lowCount exceeds 3 the HandoverThread builds a bridge route via C
// and substitutes the transport; traffic continues on the same logical
// connection.
func TestRoutingHandoverViaBridge(t *testing.T) {
	w := phtest.InstantWorld(t, 1)
	// A-B distance 6 m -> quality 210 (< 230). A-C and C-B 3 m -> ~232.
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(6, 0), device.Static)
	c := phtest.AddNode(t, w, "C", geo.Pt(3, 0), device.Static)
	phtest.AttachBridge(t, c)
	registerEcho(t, b)
	phtest.RunRounds([]*phtest.Node{a, b, c}, 3)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	defer vc.Close()
	echoOnce(t, vc, "before")

	var mu sync.Mutex
	var events []handover.Event
	th, err := handover.New(handover.Config{
		Library: a.Lib,
		Conn:    vc,
		Observer: func(e handover.Event, detail string) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Three low samples tolerated, the fourth triggers state 2.
	for i := 0; i < 3; i++ {
		th.Step()
		if got := th.LowCount(); got != i+1 {
			t.Fatalf("lowCount after step %d = %d", i+1, got)
		}
		if vc.Swaps() != 0 {
			t.Fatal("handover fired early")
		}
	}
	th.Step()

	if vc.Swaps() != 1 {
		t.Fatalf("swaps = %d, want 1 after 4th low sample", vc.Swaps())
	}
	if vc.Bridge() != c.Addr() {
		t.Fatalf("new route bridge = %v, want C", vc.Bridge())
	}
	echoOnce(t, vc, "after-handover")

	st := th.Stats()
	if st.Handovers != 1 || st.FailedHandovers != 0 {
		t.Fatalf("stats = %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	wantSeq := []handover.Event{
		handover.EventQualityLow, handover.EventQualityLow, handover.EventQualityLow,
		handover.EventQualityLow, handover.EventHandoverStart, handover.EventHandoverDone,
	}
	if len(events) != len(wantSeq) {
		t.Fatalf("events = %v", events)
	}
	for i, e := range wantSeq {
		if events[i] != e {
			t.Fatalf("event[%d] = %v, want %v (all: %v)", i, events[i], e, events)
		}
	}
}

func TestLowCountResetsOnRecovery(t *testing.T) {
	w := phtest.InstantWorld(t, 2)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(6, 0), device.Static)
	registerEcho(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	th, err := handover.New(handover.Config{Library: a.Lib, Conn: vc})
	if err != nil {
		t.Fatal(err)
	}
	th.Step()
	th.Step()
	if th.LowCount() != 2 {
		t.Fatalf("lowCount = %d", th.LowCount())
	}
	// B walks close: quality recovers above threshold.
	b.Device.SetModel(mobility.Static{At: geo.Pt(1, 0)})
	th.Step()
	if th.LowCount() != 0 {
		t.Fatalf("lowCount after recovery = %d, want 0", th.LowCount())
	}
	if th.State() != handover.StateMonitoring {
		t.Fatalf("state = %v", th.State())
	}
}

func TestNoHandoverWhileNotSending(t *testing.T) {
	// Result routing (§5.3): with the sending flag off, low quality and
	// even disconnection must not trigger repairs.
	w := phtest.InstantWorld(t, 3)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(6, 0), device.Static)
	c := phtest.AddNode(t, w, "C", geo.Pt(3, 0), device.Static)
	phtest.AttachBridge(t, c)
	registerEcho(t, b)
	phtest.RunRounds([]*phtest.Node{a, b, c}, 3)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	vc.SetSending(false)

	th, err := handover.New(handover.Config{Library: a.Lib, Conn: vc})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		th.Step()
	}
	if vc.Swaps() != 0 {
		t.Fatalf("swaps = %d while not sending", vc.Swaps())
	}
	if th.Stats().QualityLowTicks != 0 {
		t.Fatalf("quality sampled while not sending: %+v", th.Stats())
	}
}

func TestServiceReconnectionFallback(t *testing.T) {
	// No bridge exists, so routing handover cannot succeed; after
	// MaxFailures failed attempts the thread reconnects to another
	// provider of the same service (§5.2.2) and the app-level exchange
	// restarts there.
	w := phtest.InstantWorld(t, 4)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(6, 0), device.Static) // weak provider
	d := phtest.AddNode(t, w, "D", geo.Pt(2, 0), device.Static) // good provider
	registerEcho(t, b)
	registerEcho(t, d)
	phtest.RunRounds([]*phtest.Node{a, b, d}, 2)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	asked := 0
	th, err := handover.New(handover.Config{
		Library:     a.Lib,
		Conn:        vc,
		LowLimit:    1,
		MaxFailures: 1,
		AllowReconnect: func(p storage.ServiceProvider) bool {
			asked++
			if p.Entry.Info.Name != "D" {
				t.Errorf("offered provider = %s, want D", p.Entry.Info.Name)
			}
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// LowLimit 1: two low samples trigger a handover attempt, which fails
	// (no routes). MaxFailures 1: the second failed handover falls through
	// to service reconnection. Steps: 2 (fail #1) + 2 (fail #2 -> reconnect).
	for i := 0; i < 4; i++ {
		th.Step()
	}
	st := th.Stats()
	if st.Reconnects != 1 {
		t.Fatalf("stats = %+v, want 1 reconnect", st)
	}
	if asked != 1 {
		t.Fatalf("permission asked %d times, want 1", asked)
	}
	if vc.Target() != d.Addr() {
		t.Fatalf("target after reconnect = %v, want D", vc.Target())
	}
	if vc.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1", vc.Restarts())
	}
	// The exchange restarts on the new provider.
	echoOnce(t, vc, "restarted")
}

func TestServiceReconnectionRefused(t *testing.T) {
	// §5.2.2: "let him give the permission ... sometimes the user would
	// prefer to quit the connection".
	w := phtest.InstantWorld(t, 5)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(6, 0), device.Static)
	d := phtest.AddNode(t, w, "D", geo.Pt(2, 0), device.Static)
	registerEcho(t, b)
	registerEcho(t, d)
	phtest.RunRounds([]*phtest.Node{a, b, d}, 2)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	var gaveUp bool
	th, err := handover.New(handover.Config{
		Library:        a.Lib,
		Conn:           vc,
		LowLimit:       1,
		MaxFailures:    1,
		AllowReconnect: func(p storage.ServiceProvider) bool { return false },
		Observer: func(e handover.Event, detail string) {
			if e == handover.EventGaveUp {
				gaveUp = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		th.Step()
	}
	st := th.Stats()
	if st.Reconnects != 0 || st.RefusedReconnect != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !gaveUp {
		t.Fatal("no gave-up event")
	}
	if vc.Target() != b.Addr() {
		t.Fatal("target changed despite refusal")
	}
}

func TestDirectReturnExtension(t *testing.T) {
	// The thesis' implementation could never route back to a direct link
	// once bridged (fig 5.7). The extension allows it: A starts far from B
	// (bridged via C), walks next to B, and the handover swaps to direct.
	w := phtest.InstantWorld(t, 6)
	a := phtest.AddNode(t, w, "A", geo.Pt(12, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(0, 0), device.Static)
	c := phtest.AddNode(t, w, "C", geo.Pt(6, 0), device.Static)
	phtest.AttachBridge(t, c)
	registerEcho(t, b)
	phtest.RunRounds([]*phtest.Node{a, b, c}, 3)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	if vc.Bridge() != c.Addr() {
		t.Fatalf("initial route should be via C, got %v", vc.Bridge())
	}
	echoOnce(t, vc, "bridged")

	// A walks right next to B; discovery refreshes the storage.
	a.Device.SetModel(mobility.Static{At: geo.Pt(1, 0)})
	phtest.RunRounds([]*phtest.Node{a, b, c}, 2)

	th, err := handover.New(handover.Config{Library: a.Lib, Conn: vc, LowLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A(1,0) to C(6,0) is 5 m -> quality ~217 < 230: the bridge leg is now
	// the weak one, triggering handover; the direct route to B (1 m, ~247)
	// is the best alternate.
	th.Step()
	th.Step()

	if vc.Swaps() != 1 {
		t.Fatalf("swaps = %d, want 1", vc.Swaps())
	}
	if !vc.Bridge().IsZero() {
		t.Fatalf("route after return = via %v, want direct", vc.Bridge())
	}
	echoOnce(t, vc, "direct-again")
}

func TestThesisModeNeverReturnsDirect(t *testing.T) {
	// DisallowDirectReturn reproduces the fig 5.7 limitation: with only a
	// direct route as alternate, the handover must fail.
	w := phtest.InstantWorld(t, 7)
	a := phtest.AddNode(t, w, "A", geo.Pt(12, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(0, 0), device.Static)
	c := phtest.AddNode(t, w, "C", geo.Pt(6, 0), device.Static)
	phtest.AttachBridge(t, c)
	registerEcho(t, b)
	phtest.RunRounds([]*phtest.Node{a, b, c}, 3)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()

	a.Device.SetModel(mobility.Static{At: geo.Pt(1, 0)})
	phtest.RunRounds([]*phtest.Node{a, b, c}, 2)

	th, err := handover.New(handover.Config{
		Library:              a.Lib,
		Conn:                 vc,
		LowLimit:             1,
		DisallowDirectReturn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	th.Step()
	th.Step()
	if vc.Swaps() != 0 {
		t.Fatalf("thesis mode swapped to direct: swaps = %d", vc.Swaps())
	}
	if th.Stats().FailedHandovers != 1 {
		t.Fatalf("stats = %+v", th.Stats())
	}
}

func TestThreadStopsWhenConnectionCloses(t *testing.T) {
	w := phtest.InstantWorld(t, 8)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(2, 0), device.Static)
	registerEcho(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	th, err := handover.New(handover.Config{Library: a.Lib, Conn: vc})
	if err != nil {
		t.Fatal(err)
	}
	_ = vc.Close()
	th.Step()
	if th.State() != handover.StateStopped {
		t.Fatalf("state = %v after conn close", th.State())
	}
	// Steps after stop are harmless.
	th.Step()
}

func TestStartStopLifecycle(t *testing.T) {
	w := phtest.InstantWorld(t, 9)
	a := phtest.AddNode(t, w, "A", geo.Pt(0, 0), device.Dynamic)
	b := phtest.AddNode(t, w, "B", geo.Pt(2, 0), device.Static)
	registerEcho(t, b)
	phtest.RunRounds([]*phtest.Node{a, b}, 1)

	vc, err := a.Lib.Connect(b.Addr(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	th, err := handover.New(handover.Config{Library: a.Lib, Conn: vc, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	th.Start()
	th.Start() // idempotent
	// Give the loop a few ticks.
	deadline := time.After(time.Second)
	for th.Stats().Ticks == 0 {
		select {
		case <-deadline:
			t.Fatal("loop never ticked")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	th.Stop()
	th.Stop() // idempotent
	if th.State() != handover.StateStopped {
		t.Fatalf("state = %v after Stop", th.State())
	}
}
