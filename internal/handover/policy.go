package handover

import (
	"fmt"

	"peerhood/internal/device"
	"peerhood/internal/storage"
)

// Policy scores handover candidates. The thread ranks every candidate —
// routed alternates to the current interface and vertical ones on sibling
// interfaces alike — by descending score, both when rescuing a failing
// link (reactive or predictive) and when considering a discretionary
// upgrade onto a preferred bearer while the link is healthy.
//
// Scores are comparable only within one policy. Every built-in policy puts
// the fig 3.9 equity class first (candidates whose every hop clears the
// quality threshold beat candidates with a weak hop, whatever their other
// attributes), because switching onto an already-weak route would just
// re-trigger the monitor.
type Policy interface {
	// Name returns the policy's registry name.
	Name() string
	// Score returns the candidate's preference; higher is better.
	// threshold is the thread's quality floor (230 in the thesis).
	Score(c storage.Candidate, threshold int) float64
}

// Built-in policy names (NodeConfig.HandoverPolicy, HandoverConfig.Policy).
const (
	// PolicyStrongestLink reproduces the pre-identity ordering: above-
	// threshold candidates first, strongest first hop within each class.
	PolicyStrongestLink = "strongest-link"
	// PolicyBandwidthFirst prefers the bearer with the highest bandwidth
	// rank (WLAN > Bluetooth > GPRS), then link strength — the adaptive-
	// application profile: ride hotspot islands whenever one is in reach.
	PolicyBandwidthFirst = "bandwidth-first"
	// PolicyCostFirst prefers the cheapest bearer (free local radios over
	// metered GPRS), then link strength.
	PolicyCostFirst = "cost-first"
)

// PolicyByName resolves a policy name; the empty string means
// strongest-link.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", PolicyStrongestLink:
		return strongestLink{}, nil
	case PolicyBandwidthFirst:
		return bandwidthFirst{}, nil
	case PolicyCostFirst:
		return costFirst{}, nil
	default:
		return nil, fmt.Errorf("handover: unknown policy %q (have %s, %s, %s)",
			name, PolicyStrongestLink, PolicyBandwidthFirst, PolicyCostFirst)
	}
}

// firstHopQuality is the quality of the link this device would actually
// hold: the route's local first hop (the aggregates minus what the bridge
// reported for the rest of the route; the whole sum for direct routes).
func firstHopQuality(r storage.Route) int {
	return r.QualitySum - r.RemoteQualitySum
}

// goodClass reports the fig 3.9 equity class: every hop above threshold.
func goodClass(c storage.Candidate, threshold int) float64 {
	if c.Route.QualityMin >= threshold {
		return 1
	}
	return 0
}

// Score-band widths. Each criterion dominates everything below it.
const (
	classBand = 1e9
	rankBand  = 1e6
)

type strongestLink struct{}

func (strongestLink) Name() string { return PolicyStrongestLink }

func (strongestLink) Score(c storage.Candidate, threshold int) float64 {
	return goodClass(c, threshold)*classBand + float64(firstHopQuality(c.Route))
}

type bandwidthFirst struct{}

func (bandwidthFirst) Name() string { return PolicyBandwidthFirst }

func (bandwidthFirst) Score(c storage.Candidate, threshold int) float64 {
	rank := device.RankOf(c.FirstHop().Tech)
	return goodClass(c, threshold)*classBand +
		float64(rank.Bandwidth)*rankBand +
		float64(firstHopQuality(c.Route))
}

type costFirst struct{}

func (costFirst) Name() string { return PolicyCostFirst }

func (costFirst) Score(c storage.Candidate, threshold int) float64 {
	rank := device.RankOf(c.FirstHop().Tech)
	return goodClass(c, threshold)*classBand +
		float64(100-rank.Cost)*rankBand +
		float64(firstHopQuality(c.Route))
}
