package handover_test

import (
	"testing"
	"time"

	"peerhood"
	"peerhood/internal/handover"
	"peerhood/internal/phtest"
)

// The vertical-handover pins run on phtest's S5-backed multi-radio
// fixture: a WLAN+GPRS server under the archipelago radio profile (15 m
// hard-edged WLAN island over a 500 m GPRS umbrella), driven on a manual
// clock so every trigger tick is exact. WLAN quality is
// 225 + 30*(1 - d/15): the 230 threshold sits at 12.5 m, and walking away
// at 1.4 m/s decays it at 2.8/s.

// verticalScenario connects a dual-radio commuter to the server over WLAN
// (via the identity-plane tech preference), walks it out of the island,
// and ticks the thread once per simulated second until the first swap. It
// returns the tick of the swap and the instantaneous quality at it.
func verticalScenario(t *testing.T, seed int64, predictive bool) (swapTick, swapQuality int, conn *peerhood.Connection, th *peerhood.HandoverThread) {
	t.Helper()
	w, clk := phtest.MultiTechManualWorld(t, seed)
	server := phtest.AddMultiTechNode(t, w, "server", peerhood.Pt(0, 0), peerhood.Static,
		peerhood.WLAN, peerhood.GPRS)
	commuter := phtest.AddMultiTechNode(t, w, "commuter", peerhood.Pt(1, 0), peerhood.Dynamic,
		peerhood.WLAN, peerhood.GPRS)
	registerEchoNode(t, server)
	w.RunDiscoveryRounds(3)

	gprsAddr, _ := server.AddrFor(peerhood.GPRS)
	wlanAddr, _ := server.AddrFor(peerhood.WLAN)
	conn, err := commuter.Connect(gprsAddr, "echo", peerhood.WithTech(peerhood.WLAN))
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if conn.Target() != wlanAddr {
		t.Fatalf("preference dialed %v, want the WLAN interface", conn.Target())
	}
	if q := conn.Quality(); q < handover.DefaultThreshold {
		t.Fatalf("initial quality = %d, want above threshold", q)
	}

	th, err = commuter.MonitorHandover(conn, peerhood.HandoverConfig{
		ManualSteps: true,
		Predictive:  predictive,
		Policy:      peerhood.PolicyBandwidthFirst,
	})
	if err != nil {
		t.Fatal(err)
	}

	commuter.SetModel(peerhood.Walk(peerhood.Pt(1, 0), peerhood.Pt(30, 0), 1.4))
	qualityAt := make(map[int]int)
	for tick := 1; tick <= 20; tick++ {
		clk.Advance(time.Second)
		w.CheckLinks()
		commuter.RunDiscoveryRound()
		qualityAt[tick] = conn.Quality()
		th.Step()
		if conn.Swaps() > 0 {
			swapTick = tick
			break
		}
	}
	if conn.Swaps() != 1 {
		t.Fatalf("swaps = %d after walking out of the island (stats %+v)", conn.Swaps(), th.Stats())
	}
	return swapTick, qualityAt[swapTick], conn, th
}

// TestVerticalSwitchCompletesBeforeThreshold is the predictive-mode
// acceptance pin: walking out of the WLAN island, the vertical down-switch
// onto the GPRS umbrella must complete strictly before the 230 crossing —
// the sample that triggered it still reads above the threshold — while
// the reactive baseline on identical geometry switches only after it.
func TestVerticalSwitchCompletesBeforeThreshold(t *testing.T) {
	reactTick, reactQ, reactConn, reactTh := verticalScenario(t, 51, false)
	predTick, predQ, predConn, predTh := verticalScenario(t, 51, true)

	for name, conn := range map[string]*peerhood.Connection{"reactive": reactConn, "predictive": predConn} {
		if got := conn.RemoteAddr().Tech; got != peerhood.GPRS {
			t.Fatalf("%s: post-switch bearer = %v, want GPRS", name, got)
		}
		if got := conn.Target().Tech; got != peerhood.GPRS {
			t.Fatalf("%s: post-switch target = %v, want the GPRS sibling", name, conn.Target())
		}
	}
	if st := predTh.Stats(); st.VerticalDown != 1 || st.VerticalHandovers != 1 || st.PredictiveHandovers != 1 {
		t.Fatalf("predictive stats = %+v", st)
	}
	if st := reactTh.Stats(); st.VerticalDown != 1 || st.PredictiveHandovers != 0 {
		t.Fatalf("reactive stats = %+v", st)
	}
	if predQ < handover.DefaultThreshold {
		t.Fatalf("predictive vertical switch fired below threshold: quality %d", predQ)
	}
	if reactQ >= handover.DefaultThreshold {
		t.Fatalf("reactive vertical switch fired above threshold: quality %d", reactQ)
	}
	if predTick >= reactTick {
		t.Fatalf("predictive switch tick %d not strictly before reactive %d", predTick, reactTick)
	}
	// The predictive run must not have consumed any below-threshold ticks:
	// the stream never rode a bad link.
	if st := predTh.Stats(); st.QualityLowTicks != 0 {
		t.Fatalf("predictive consumed %d low ticks", st.QualityLowTicks)
	}
}

// TestVerticalHoldNoFlap pins the per-tech hysteresis (the PR 3 no-flap
// pin, lifted to bearers): WLAN quality oscillating around the threshold
// at the island edge — with the GPRS umbrella permanently available as a
// vertical candidate — must cause no bearer change at all; a sustained
// exit switches down exactly once; and the island coming back into
// comfortable reach must not pull the connection up again until the tech
// hold has elapsed.
func TestVerticalHoldNoFlap(t *testing.T) {
	const hold = 30 * time.Second
	w, clk := phtest.MultiTechManualWorld(t, 52)
	server := phtest.AddMultiTechNode(t, w, "server", peerhood.Pt(0, 0), peerhood.Static,
		peerhood.WLAN, peerhood.GPRS)
	commuter := phtest.AddMultiTechNode(t, w, "commuter", peerhood.Pt(12.0, 0), peerhood.Static,
		peerhood.WLAN, peerhood.GPRS)
	registerEchoNode(t, server)
	w.RunDiscoveryRounds(3)

	gprsAddr, _ := server.AddrFor(peerhood.GPRS)
	conn, err := commuter.Connect(gprsAddr, "echo", peerhood.WithTech(peerhood.WLAN))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	th, err := commuter.MonitorHandover(conn, peerhood.HandoverConfig{
		ManualSteps: true,
		Predictive:  true,
		Policy:      peerhood.PolicyBandwidthFirst,
		TechHold:    hold,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: oscillate the island edge. 12.0 m reads ~231 (fine),
	// 12.9 m reads ~229 (low). Neither trigger may fire: the lows are
	// never consecutive enough for the reactive counter, the trend fit
	// gate blocks prediction, and bandwidth-first never downgrades a
	// healthy WLAN link onto GPRS.
	lowSamples := 0
	for i := 0; i < 40; i++ {
		at := peerhood.Pt(12.0, 0)
		if i%2 == 0 {
			at = peerhood.Pt(12.9, 0)
		}
		commuter.SetModel(peerhood.StayAt(at))
		clk.Advance(time.Second)
		w.CheckLinks()
		commuter.RunDiscoveryRound()
		if conn.Quality() < handover.DefaultThreshold {
			lowSamples++
		}
		th.Step()
	}
	if lowSamples == 0 {
		t.Fatal("oscillation never dipped below threshold — nothing was tested")
	}
	if conn.Swaps() != 0 {
		t.Fatalf("edge oscillation flapped the bearer: %d swaps (stats %+v)", conn.Swaps(), th.Stats())
	}

	// Phase 2: a sustained exit switches down onto the umbrella once.
	commuter.SetModel(peerhood.StayAt(peerhood.Pt(20, 0)))
	for i := 0; i < 8 && conn.Swaps() == 0; i++ {
		clk.Advance(time.Second)
		w.CheckLinks()
		commuter.RunDiscoveryRound()
		th.Step()
	}
	if conn.Swaps() != 1 || conn.RemoteAddr().Tech != peerhood.GPRS {
		t.Fatalf("sustained exit: swaps=%d bearer=%v (stats %+v)",
			conn.Swaps(), conn.RemoteAddr().Tech, th.Stats())
	}
	downAt := clk.Now()

	// Phase 3: walk back deep into the island. The policy wants WLAN
	// back, but the tech hold must keep the bearer pinned to GPRS until
	// the dwell expires.
	commuter.SetModel(peerhood.StayAt(peerhood.Pt(5, 0)))
	for clk.Now().Sub(downAt) < hold-2*time.Second {
		clk.Advance(time.Second)
		w.CheckLinks()
		commuter.RunDiscoveryRound()
		th.Step()
		if conn.Swaps() != 1 {
			t.Fatalf("bearer changed %s into a %s tech hold (stats %+v)",
				clk.Now().Sub(downAt), hold, th.Stats())
		}
	}
	// Hold expired: the discretionary upgrade takes the island back.
	for i := 0; i < 10 && conn.Swaps() == 1; i++ {
		clk.Advance(time.Second)
		w.CheckLinks()
		commuter.RunDiscoveryRound()
		th.Step()
	}
	if conn.Swaps() != 2 || conn.RemoteAddr().Tech != peerhood.WLAN {
		t.Fatalf("post-hold upgrade: swaps=%d bearer=%v (stats %+v)",
			conn.Swaps(), conn.RemoteAddr().Tech, th.Stats())
	}
	st := th.Stats()
	if st.VerticalDown != 1 || st.VerticalUp != 1 {
		t.Fatalf("vertical accounting = %+v, want exactly one down and one up", st)
	}
}

func registerEchoNode(t *testing.T, n *peerhood.Node) {
	t.Helper()
	if _, err := n.RegisterService("echo", "", func(c *peerhood.Connection, m peerhood.ConnectionMeta) {
		defer c.Close()
		buf := make([]byte, 64)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}); err != nil {
		t.Fatalf("RegisterService: %v", err)
	}
}
