// Package handover implements the thesis' soft-handover system (ch. 5):
// a per-connection HandoverThread that (state 0) keeps the best alternate
// route to the peer warm, (state 1) monitors link quality against the 230
// threshold counting consecutive low readings, and (state 2) performs a
// routing handover — re-attaching the logical connection through a bridge
// node with PH_RECONNECT and substituting the transport under the
// application (fig 5.5). When routing handover is impossible or keeps
// failing it falls back to service reconnection on another provider
// (§5.2.2), asking the application for permission first. Connections whose
// "sending" flag is off are left alone (result routing, §5.3).
//
// On top of the thesis' reactive trigger, the thread can act on the link
// monitor's predictions (internal/linkmon): every quality sample is fed
// into the per-daemon monitor, and when the monitored link classifies as
// Degrading with a predicted time-to-threshold inside the configured
// horizon, the thread pre-warms the alternate-route candidates and
// executes the PH_RECONNECT *before* quality crosses 230 — so the
// replacement transport is built while the old link still carries
// traffic. The reactive path stays in place as the fallback (and as the
// A/B baseline for experiment S3). Lifecycle transitions are published on
// the daemon's neighbourhood event bus.
//
// The thread is technology-aware: candidates come from the storage's
// identity plane (AlternateRoutesByIdentity), so "same peer, different
// radio" — a sibling interface reached directly or through a
// cross-technology first hop — competes with routed alternates. A
// pluggable selection Policy ranks them (strongest-link by default;
// bandwidth-first and cost-first express bearer preferences), a per-tech
// hysteresis dwell keeps BT↔WLAN from flapping at an island edge, and a
// discretionary upgrade path switches onto a preferred bearer while the
// link is healthy. Vertical switches ride the existing PH_RECONNECT
// machinery and work in both reactive and predictive modes.
package handover

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/events"
	"peerhood/internal/library"
	"peerhood/internal/linkmon"
	"peerhood/internal/storage"
	"peerhood/internal/telemetry"
)

// State is the handover thread's externally visible state (fig 5.5).
type State int

// Thread states.
const (
	// StateMonitoring covers the thesis' states 0 and 1: scanning
	// alternates and watching quality.
	StateMonitoring State = iota + 1
	// StateHandover is a routing handover in progress (state 2).
	StateHandover
	// StateReconnecting is a service reconnection in progress (§5.2.2).
	StateReconnecting
	// StateStopped means the thread has finished (connection closed or
	// Stop called).
	StateStopped
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateMonitoring:
		return "monitoring"
	case StateHandover:
		return "handover"
	case StateReconnecting:
		return "reconnecting"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Event is a handover lifecycle notification.
type Event int

// Events delivered to the Observer.
const (
	// EventQualityLow fires on each below-threshold quality sample.
	EventQualityLow Event = iota + 1
	// EventHandoverStart fires when lowCount exceeds the limit and a
	// routing handover begins.
	EventHandoverStart
	// EventHandoverDone fires after a successful transport substitution.
	EventHandoverDone
	// EventHandoverFailed fires when every candidate route failed.
	EventHandoverFailed
	// EventServiceReconnect fires after a successful reconnection to a
	// different provider; the application must restart its exchange.
	EventServiceReconnect
	// EventGaveUp fires when neither routing handover nor service
	// reconnection is possible this round.
	EventGaveUp
	// EventPredictiveStart fires when the link monitor's degradation
	// prediction triggers a proactive handover while quality is still
	// above the threshold.
	EventPredictiveStart
	// EventVerticalHandover fires after a transport substitution that
	// changed the local bearer technology (same peer, different radio —
	// directly on a sibling interface or through a cross-technology first
	// hop). It follows the EventHandoverDone of the same switch.
	EventVerticalHandover
	// EventUpgradeStart fires when the selection policy starts a
	// discretionary vertical switch while the current link is healthy
	// (e.g. bandwidth-first riding into a WLAN island).
	EventUpgradeStart
)

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e {
	case EventQualityLow:
		return "quality-low"
	case EventHandoverStart:
		return "handover-start"
	case EventHandoverDone:
		return "handover-done"
	case EventHandoverFailed:
		return "handover-failed"
	case EventServiceReconnect:
		return "service-reconnect"
	case EventGaveUp:
		return "gave-up"
	case EventPredictiveStart:
		return "predictive-start"
	case EventVerticalHandover:
		return "vertical-handover"
	case EventUpgradeStart:
		return "upgrade-start"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// Observer receives handover lifecycle events.
type Observer func(e Event, detail string)

// Stats counts thread activity.
type Stats struct {
	Ticks            int64
	QualityLowTicks  int64
	Handovers        int64
	FailedHandovers  int64
	Reconnects       int64
	RefusedReconnect int64
	// PredictiveHandovers counts handovers triggered by the link
	// monitor's prediction while quality was still above the threshold
	// (included in Handovers).
	PredictiveHandovers int64
	// VerticalHandovers counts transport substitutions that changed the
	// local bearer technology (included in Handovers). VerticalUp moved to
	// a higher-bandwidth-rank bearer, VerticalDown to a lower one.
	VerticalHandovers int64
	VerticalUp        int64
	VerticalDown      int64
	// Resumes counts handovers that re-attached a continuity session with
	// PH_RESUME — zero in-flight loss (included in Handovers). A Handover
	// without a Resume on a continuity connection, or any Reconnect, is a
	// lossy restart; the split is what S3/S5 disruption accounting reads.
	Resumes int64
}

// Defaults mirror the thesis' simulation parameters (§5.2.1); the
// predictive additions default to a horizon of a few monitoring ticks.
const (
	DefaultThreshold        = 230
	DefaultLowLimit         = 3
	DefaultInterval         = time.Second
	DefaultMaxRouteAttempts = 3
	DefaultMaxFailures      = 2
	// DefaultPredictHorizon: act when the predicted threshold crossing is
	// within this much simulated time.
	DefaultPredictHorizon = 5 * time.Second
	// DefaultPredictCooldown: minimum spacing between predictive
	// triggers, so one long smooth decay cannot fire a second proactive
	// handover while the first swap's trend state is still settling.
	DefaultPredictCooldown = 10 * time.Second
	// DefaultTechHold is the per-tech hysteresis dwell: after a vertical
	// switch, discretionary (policy-upgrade) switches are suppressed and
	// rescue candidates keeping the current technology are preferred for
	// this long, so an island edge cannot flap BT↔WLAN↔BT.
	DefaultTechHold = 15 * time.Second
	// DefaultUpgradeMargin is how far above the threshold a candidate's
	// weakest hop must sit before a discretionary upgrade considers it:
	// jumping onto a barely-usable bearer would immediately re-trigger.
	DefaultUpgradeMargin = 10
	// DefaultUpgradeCooldown spaces failed discretionary upgrade attempts,
	// bounding dial churn when the preferred bearer keeps refusing.
	DefaultUpgradeCooldown = 5 * time.Second
)

// Config parametrises a handover thread.
type Config struct {
	Library *library.Library
	Conn    *library.VirtualConnection

	// Threshold is the minimum acceptable quality (230 in the thesis).
	Threshold int
	// LowLimit is how many consecutive low samples trigger state 2
	// ("if the signal has been too low for 3 times", fig 5.5).
	LowLimit int
	// Interval is the monitoring period.
	Interval time.Duration
	// MaxRouteAttempts bounds alternate routes tried per handover.
	MaxRouteAttempts int
	// MaxFailures is how many failed handovers are tolerated before
	// falling back to service reconnection ("after various attempts",
	// §5.2.2).
	MaxFailures int
	// AllowDirectReturn lets the thread swap back onto a direct route
	// when the peer is in coverage again. The thesis' implementation
	// could not do this (the fig 5.7 limitation); it is provided here as
	// an extension and can be disabled to reproduce the thesis behaviour.
	AllowDirectReturn bool
	// DisallowDirectReturn reproduces the thesis' fig 5.7 limitation.
	// Deprecated semantics guard: if both fields are false the extension
	// defaults to enabled.
	DisallowDirectReturn bool
	// AllowReconnect is consulted before a service reconnection; the
	// thesis wants the user notified and asked (§5.2.2). nil allows all.
	AllowReconnect func(p storage.ServiceProvider) bool
	// Observer receives lifecycle events; may be nil.
	Observer Observer

	// Predictive enables proactive handover: when the link monitor
	// classifies the connection's link as Degrading with a predicted
	// time-to-threshold within PredictHorizon, the thread re-routes
	// before quality crosses the threshold.
	Predictive bool
	// PredictHorizon is the act-ahead window (default 5 s).
	PredictHorizon time.Duration
	// PredictCooldown is the minimum spacing between predictive triggers
	// (default 10 s).
	PredictCooldown time.Duration
	// Monitor overrides the link monitor consulted for predictions; nil
	// uses the daemon's.
	Monitor *linkmon.Monitor

	// Policy ranks handover candidates — routed alternates and vertical
	// (sibling-interface) ones alike — and drives discretionary upgrades
	// onto preferred bearers. nil means strongest-link, which reproduces
	// the pre-identity ordering.
	Policy Policy
	// TechHold is the per-tech hysteresis dwell after a vertical switch
	// (default 15 s).
	TechHold time.Duration
	// UpgradeMargin is the quality headroom above the threshold a
	// candidate needs before a discretionary upgrade takes it (default 10).
	UpgradeMargin int
	// UpgradeCooldown spaces failed upgrade attempts (default 5 s).
	UpgradeCooldown time.Duration
}

// Thread is one connection's handover monitor.
type Thread struct {
	lib        *library.Library
	vc         *library.VirtualConnection
	clk        clock.Clock
	cfg        Config
	monitor    *linkmon.Monitor
	bus        *events.Bus
	multiRadio bool

	// Telemetry handles, resolved once from the daemon's registry and
	// tracer in New; all nil-safe, so threads on uninstrumented daemons
	// pay a branch per observation and nothing else.
	tracer       *telemetry.Tracer
	hoCompleted  *telemetry.Counter
	hoPredictive *telemetry.Counter
	hoFailed     *telemetry.Counter
	hoVertUp     *telemetry.Counter
	hoVertDown   *telemetry.Counter
	hoReconnects *telemetry.Counter
	hoResumes    *telemetry.Counter
	hoUpgrades   *telemetry.Counter
	hoSeconds    *telemetry.Histogram

	mu           sync.Mutex
	state        State
	lowCount     int
	failures     int
	stats        Stats
	lastPred     time.Time // last predictive trigger (cooldown anchor)
	havePred     bool
	lastVertical time.Time // last vertical switch (tech-hold anchor)
	haveVertical bool
	lastUpTry    time.Time // last failed discretionary upgrade attempt
	haveUpTry    bool
	warmCands    []storage.Candidate // pre-warmed candidates (fig 5.5 state 0)
	stop         chan struct{}
	done         chan struct{}
}

// ErrNoConnection reports a nil connection or library.
var ErrNoConnection = errors.New("handover: Library and Conn are required")

// New returns a handover thread for one virtual connection.
func New(cfg Config) (*Thread, error) {
	if cfg.Library == nil || cfg.Conn == nil {
		return nil, ErrNoConnection
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultThreshold
	}
	if cfg.LowLimit == 0 {
		cfg.LowLimit = DefaultLowLimit
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.MaxRouteAttempts == 0 {
		cfg.MaxRouteAttempts = DefaultMaxRouteAttempts
	}
	if cfg.MaxFailures == 0 {
		cfg.MaxFailures = DefaultMaxFailures
	}
	if !cfg.AllowDirectReturn && !cfg.DisallowDirectReturn {
		cfg.AllowDirectReturn = true
	}
	if cfg.PredictHorizon == 0 {
		cfg.PredictHorizon = DefaultPredictHorizon
	}
	if cfg.PredictCooldown == 0 {
		cfg.PredictCooldown = DefaultPredictCooldown
	}
	if cfg.Policy == nil {
		cfg.Policy, _ = PolicyByName(PolicyStrongestLink)
	}
	if cfg.TechHold == 0 {
		cfg.TechHold = DefaultTechHold
	}
	if cfg.UpgradeMargin == 0 {
		cfg.UpgradeMargin = DefaultUpgradeMargin
	}
	if cfg.UpgradeCooldown == 0 {
		cfg.UpgradeCooldown = DefaultUpgradeCooldown
	}
	monitor := cfg.Monitor
	if monitor == nil {
		monitor = cfg.Library.Daemon().LinkMonitor()
	}
	reg := cfg.Library.Daemon().Registry()
	return &Thread{
		lib:          cfg.Library,
		vc:           cfg.Conn,
		clk:          cfg.Library.Clock(),
		cfg:          cfg,
		monitor:      monitor,
		bus:          cfg.Library.Daemon().Bus(),
		tracer:       cfg.Library.Daemon().Tracer(),
		hoCompleted:  reg.Counter(`peerhood_handover_completed_total`),
		hoPredictive: reg.Counter(`peerhood_handover_predictive_total`),
		hoFailed:     reg.Counter(`peerhood_handover_failed_total`),
		hoVertUp:     reg.Counter(`peerhood_handover_vertical_total{dir="up"}`),
		hoVertDown:   reg.Counter(`peerhood_handover_vertical_total{dir="down"}`),
		hoReconnects: reg.Counter(`peerhood_handover_reconnects_total`),
		hoResumes:    reg.Counter(`peerhood_handover_resumes_total`),
		hoUpgrades:   reg.Counter(`peerhood_handover_upgrades_total`),
		hoSeconds:    reg.Histogram(`peerhood_handover_seconds`, telemetry.DurationBuckets),
		state:        StateMonitoring,
		// Plugins are fixed before the daemon starts, so this is stable
		// for the thread's life: a single-radio node can never produce a
		// candidate on another bearer, and the healthy-tick upgrade scan
		// would be pure waste.
		multiRadio: len(cfg.Library.Daemon().Plugins()) > 1,
	}, nil
}

// State returns the thread's current state.
func (t *Thread) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Stats returns a snapshot of the counters.
func (t *Thread) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// LowCount returns the current consecutive-low counter (state 1).
func (t *Thread) LowCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lowCount
}

func (t *Thread) emit(e Event, detail string) {
	if t.cfg.Observer != nil {
		t.cfg.Observer(e, detail)
	}
}

// publish pushes a handover lifecycle event onto the daemon's
// neighbourhood event bus, stamped with the trace span it belongs to so
// subscribers can causally link the lifecycle back through the link
// monitor's degradation episode.
func (t *Thread) publish(ty events.Type, quality int, detail string, span uint64) {
	if t.bus == nil {
		return
	}
	t.bus.Publish(events.Event{Type: ty, Addr: t.vc.Target(), Quality: quality, Detail: detail, Span: span})
}

// Step runs one monitoring tick. Deterministic tests and experiments call
// it directly; Start loops it on the configured interval.
func (t *Thread) Step() {
	t.mu.Lock()
	if t.state == StateStopped {
		t.mu.Unlock()
		return
	}
	t.stats.Ticks++
	t.mu.Unlock()

	if t.vc.Closed() {
		t.mu.Lock()
		t.state = StateStopped
		t.mu.Unlock()
		return
	}
	// Result routing: the connection is intentionally quiescent; a broken
	// link "is not needed to be repaired immediately" (§5.3).
	if !t.vc.Sending() {
		return
	}

	q := t.vc.Quality()
	remote := t.vc.RemoteAddr()
	var st linkmon.State
	if t.monitor != nil {
		// Every monitoring tick doubles as a trend sample for the active
		// link, so predictions stay current even between discovery rounds.
		st = t.monitor.Observe(remote, q)
	}

	t.mu.Lock()
	if q >= t.cfg.Threshold {
		t.lowCount = 0
		t.state = StateMonitoring
		t.mu.Unlock()
		t.aboveThreshold(q, st)
		return
	}
	t.lowCount++
	t.stats.QualityLowTicks++
	low := t.lowCount
	t.mu.Unlock()
	t.emit(EventQualityLow, fmt.Sprintf("quality=%d low=%d", q, low))

	if low <= t.cfg.LowLimit {
		return
	}

	t.mu.Lock()
	t.lowCount = 0
	t.state = StateHandover
	t.mu.Unlock()

	if t.routingHandover(st.Span) {
		t.mu.Lock()
		t.failures = 0
		t.state = StateMonitoring
		t.mu.Unlock()
		return
	}

	t.mu.Lock()
	t.failures++
	failures := t.failures
	t.state = StateMonitoring
	t.mu.Unlock()

	if failures <= t.cfg.MaxFailures {
		return
	}
	t.mu.Lock()
	t.failures = 0
	t.state = StateReconnecting
	t.mu.Unlock()
	t.serviceReconnect(st.Span)
	t.mu.Lock()
	if t.state == StateReconnecting {
		t.state = StateMonitoring
	}
	t.mu.Unlock()
}

// aboveThreshold runs the proactive half of the monitoring state: while
// quality is still acceptable, consult the link monitor's classification.
// A degrading link gets its alternate-route candidates pre-warmed
// (fig 5.5's state 0, refreshed on trend evidence rather than blindly),
// and — in predictive mode — a proactive handover once the predicted
// time-to-threshold falls inside the horizon.
func (t *Thread) aboveThreshold(q int, st linkmon.State) {
	if t.monitor == nil || st.Class != linkmon.ClassDegrading {
		t.mu.Lock()
		t.warmCands = nil
		t.mu.Unlock()
		// A healthy link is when discretionary vertical switches happen:
		// the selection policy may prefer another bearer that just came in
		// reach (fig 5.5's state 0, extended across technologies).
		t.maybeUpgrade(q)
		return
	}
	t.prewarm()
	if !t.cfg.Predictive {
		return
	}
	// The monitor predicts the crossing of the daemon-wide threshold.
	// When this thread watches a different floor, re-derive the crossing
	// time from the same trend (the Degrading class gate — min samples,
	// fit, negative slope — has already been applied by the monitor).
	ttt := st.TimeToThreshold
	if t.cfg.Threshold != t.monitor.Threshold() {
		if st.Slope >= 0 {
			return
		}
		if floor := float64(t.cfg.Threshold); st.Level > floor {
			secs := (st.Level - floor) / -st.Slope
			if secs > t.cfg.PredictHorizon.Seconds() {
				// Also guards the duration conversion against overflow on
				// near-zero slopes (see metrics.Trend.TimeToCross).
				return
			}
			ttt = time.Duration(secs * float64(time.Second))
		} else {
			ttt = 0
		}
	}
	if ttt > t.cfg.PredictHorizon {
		return
	}
	now := t.clk.Now()
	t.mu.Lock()
	if t.havePred && now.Sub(t.lastPred) < t.cfg.PredictCooldown {
		t.mu.Unlock()
		return
	}
	t.lastPred, t.havePred = now, true
	t.state = StateHandover
	t.mu.Unlock()

	t.emit(EventPredictiveStart, fmt.Sprintf("quality=%d ttt=%s slope=%+.2f/s", q, ttt, st.Slope))
	ok := t.routingHandover(st.Span)
	t.mu.Lock()
	if ok {
		t.stats.PredictiveHandovers++
		t.hoPredictive.Inc()
		t.failures = 0
	}
	// A failed predictive attempt does not count towards the service-
	// reconnection escalation: the link still works, and the reactive
	// fallback owns that decision once quality actually crosses.
	t.state = StateMonitoring
	t.mu.Unlock()
}

// prewarm refreshes the candidate list while the link is degrading, so the
// eventual handover (predictive or reactive) starts from an
// already-selected set.
func (t *Thread) prewarm() {
	cands := t.candidates()
	t.mu.Lock()
	t.warmCands = cands
	t.mu.Unlock()
}

// candidates gathers every identity-aware way to re-attach the connection:
// alternate routes to the current interface plus routes to each sibling
// interface of the peer's identity, minus the currently failing first hop
// and minus anything the local device has no radio to dial.
func (t *Thread) candidates() []storage.Candidate {
	cands := t.lib.Daemon().Storage().AlternateRoutesByIdentity(t.vc.Target(), t.vc.Bridge())
	kept := cands[:0]
	for _, c := range cands {
		if _, ok := t.lib.Daemon().PluginFor(c.FirstHop().Tech); !ok {
			continue
		}
		kept = append(kept, c)
	}
	return kept
}

// inTechHold reports whether the per-tech hysteresis dwell since the last
// vertical switch is still running.
func (t *Thread) inTechHold() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.haveVertical && t.clk.Now().Sub(t.lastVertical) < t.cfg.TechHold
}

// rank orders candidates by descending policy score. During the tech-hold
// dwell, candidates that keep the current bearer technology are tried
// first regardless of score — a rescue may still leave the technology when
// nothing same-tech works, but an island edge cannot flap the bearer back
// and forth within one dwell.
func (t *Thread) rank(cands []storage.Candidate) []storage.Candidate {
	currentTech := t.vc.RemoteAddr().Tech
	hold := t.inTechHold()
	scores := make([]float64, len(cands))
	for i, c := range cands {
		scores[i] = t.cfg.Policy.Score(c, t.cfg.Threshold)
	}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if hold {
			iSame := cands[i].FirstHop().Tech == currentTech
			jSame := cands[j].FirstHop().Tech == currentTech
			if iSame != jSame {
				return iSame
			}
		}
		return scores[i] > scores[j]
	})
	out := make([]storage.Candidate, len(cands))
	for i, j := range idx {
		out[i] = cands[j]
	}
	return out
}

// routingHandover implements fig 5.5's state 2, technology-aware: try the
// policy-ranked candidates — routed alternates and vertical ones — best
// first, re-attaching the logical connection with PH_RECONNECT. It reports
// success. parent is the trace span this handover descends from (the link
// monitor's degradation episode, or zero when the trigger had none), so
// same-seed traces link verdict → handover → switch causally.
func (t *Thread) routingHandover(parent uint64) bool {
	target := t.vc.Target()
	currentBridge := t.vc.Bridge()
	began := t.clk.Now()
	sp := t.tracer.Begin("handover.routing", parent, target.String())

	t.mu.Lock()
	cands := t.warmCands
	t.warmCands = nil
	t.mu.Unlock()
	if len(cands) == 0 {
		cands = t.candidates()
	}
	t.emit(EventHandoverStart, fmt.Sprintf("candidates=%d", len(cands)))
	t.publish(events.HandoverStarted, t.vc.Quality(), fmt.Sprintf("candidates=%d", len(cands)), sp.ID)

	// The policy encodes fig 5.5 state 0's "best quality way" (every
	// built-in ranks above-threshold candidates first — switching to a
	// route as weak as the current one would just re-trigger) plus
	// whatever bearer preference the application configured.
	cands = t.rank(cands)

	attempts := 0
	for _, c := range cands {
		if attempts >= t.cfg.MaxRouteAttempts {
			break
		}
		if c.Route.Direct() && !c.Vertical && !t.cfg.AllowDirectReturn {
			// Thesis-faithful mode: the implementation never returned to
			// a direct route (fig 5.7 limitation). Vertical directs are new
			// links, not returns — the limitation predates multi-radio.
			continue
		}
		if c.Route.Direct() && c.Target == target && currentBridge.IsZero() {
			// Already direct and direct is failing: dialing the same link
			// again cannot help.
			continue
		}
		attempts++
		if t.trySwitch(c, sp.ID) {
			t.hoSeconds.Observe(t.clk.Now().Sub(began).Seconds())
			t.tracer.End(sp, "done")
			return true
		}
	}
	t.mu.Lock()
	t.stats.FailedHandovers++
	t.mu.Unlock()
	t.hoFailed.Inc()
	t.hoSeconds.Observe(t.clk.Now().Sub(began).Seconds())
	t.tracer.End(sp, "failed")
	t.emit(EventHandoverFailed, fmt.Sprintf("attempts=%d", attempts))
	t.publish(events.HandoverFailed, t.vc.Quality(), fmt.Sprintf("attempts=%d", attempts), sp.ID)
	return false
}

// trySwitch builds the candidate's transport with PH_RECONNECT and, on
// success, substitutes it under the application, accounting for vertical
// switches (bearer-technology change) with their per-tech hold and events.
// parent is the routing/upgrade span this attempt belongs to.
func (t *Thread) trySwitch(c storage.Candidate, parent uint64) bool {
	svc := t.vc.Service()
	sp := t.tracer.Begin("handover.switch", parent, c.Route.String())
	via := library.Via{
		Route:       c.Route,
		Target:      c.Target,
		ServiceName: svc.Name,
		ServicePort: svc.Port,
		ConnID:      t.vc.ID(),
		Reconnect:   true,
	}
	// A continuity session re-attaches with PH_RESUME instead of
	// PH_RECONNECT: the endpoint's receive position comes back in the ack
	// and the un-acked tail is replayed on the new bearer — zero loss.
	resuming := t.vc.ContinuityEnabled()
	if resuming {
		via.Reconnect = false
		via.Resume = &library.ResumeInfo{
			Token:   t.vc.ContinuityToken(),
			RecvSeq: t.vc.ContinuityRecvSeq(),
		}
	}
	raw, err := t.lib.ConnectVia(via)
	if err != nil {
		t.tracer.End(sp, "dial-failed")
		return false
	}
	oldRemote := t.vc.RemoteAddr()
	prevTech := oldRemote.Tech
	switch {
	case resuming && c.Target != t.vc.Target():
		rsp := t.tracer.Begin("conn.resume", sp.ID, c.Target.String())
		t.vc.ResumeSwapTo(raw, c.Target, c.Route.Bridge, via.Resume.PeerRecvSeq)
		t.tracer.End(rsp, fmt.Sprintf("peer-recv=%d", via.Resume.PeerRecvSeq))
	case resuming:
		rsp := t.tracer.Begin("conn.resume", sp.ID, c.Target.String())
		t.vc.ResumeSwap(raw, c.Route.Bridge, via.Resume.PeerRecvSeq)
		t.tracer.End(rsp, fmt.Sprintf("peer-recv=%d", via.Resume.PeerRecvSeq))
	case c.Target != t.vc.Target():
		t.vc.SwapRouteTo(raw, c.Target, c.Route.Bridge)
	default:
		t.vc.SwapRoute(raw, c.Route.Bridge)
	}
	newTech := t.vc.RemoteAddr().Tech
	vertical := newTech != prevTech
	t.mu.Lock()
	t.stats.Handovers++
	if resuming {
		t.stats.Resumes++
	}
	if vertical {
		t.stats.VerticalHandovers++
		if device.RankOf(newTech).Bandwidth >= device.RankOf(prevTech).Bandwidth {
			t.stats.VerticalUp++
			t.hoVertUp.Inc()
		} else {
			t.stats.VerticalDown++
			t.hoVertDown.Inc()
		}
		t.lastVertical, t.haveVertical = t.clk.Now(), true
	}
	t.mu.Unlock()
	t.hoCompleted.Inc()
	if resuming {
		t.hoResumes.Inc()
	}
	t.tracer.End(sp, "done")
	if t.monitor != nil && oldRemote != t.vc.RemoteAddr() {
		// The abandoned link's trend must not ghost into the next
		// classification of the same peer.
		t.monitor.Forget(oldRemote)
	}
	t.emit(EventHandoverDone, c.Route.String())
	t.publish(events.HandoverCompleted, t.vc.Quality(), c.Route.String(), sp.ID)
	if vertical {
		detail := fmt.Sprintf("%v->%v %s", prevTech, newTech, c.Route)
		t.emit(EventVerticalHandover, detail)
		t.publish(events.VerticalHandover, t.vc.Quality(), detail, sp.ID)
	}
	return true
}

// maybeUpgrade runs the discretionary half of the policy: while the link
// is healthy, switch to a candidate on a *different* bearer technology
// that the policy scores strictly above the current transport and whose
// weakest hop clears the threshold with margin. Same-tech route churn is
// left to the rescue path; the tech hold and the upgrade cooldown bound
// flapping and dial churn.
func (t *Thread) maybeUpgrade(q int) {
	if !t.multiRadio || t.inTechHold() {
		return
	}
	now := t.clk.Now()
	t.mu.Lock()
	if t.haveUpTry && now.Sub(t.lastUpTry) < t.cfg.UpgradeCooldown {
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()

	currentTech := t.vc.RemoteAddr().Tech
	// The current transport as a candidate: its first hop is the link we
	// hold, measured at q just now.
	current := storage.Candidate{
		Target: t.vc.Target(),
		Route:  storage.Route{Bridge: t.vc.Bridge(), QualitySum: q, QualityMin: q},
	}
	if !t.vc.Bridge().IsZero() {
		current.Route.Jumps = 1
	}
	curScore := t.cfg.Policy.Score(current, t.cfg.Threshold)

	var best *storage.Candidate
	var bestScore float64
	for _, c := range t.candidates() {
		if c.FirstHop().Tech == currentTech {
			continue
		}
		if c.Route.QualityMin < t.cfg.Threshold+t.cfg.UpgradeMargin {
			continue
		}
		s := t.cfg.Policy.Score(c, t.cfg.Threshold)
		if best == nil || s > bestScore {
			best, bestScore = &c, s
		}
	}
	if best == nil || bestScore <= curScore {
		return
	}

	t.mu.Lock()
	t.state = StateHandover
	t.mu.Unlock()
	// Discretionary switches have no degradation episode to descend from:
	// the policy itself is the root cause, so the upgrade span is a root.
	sp := t.tracer.Begin("handover.upgrade", 0, t.vc.Target().String())
	t.emit(EventUpgradeStart, fmt.Sprintf("%v->%v score %.0f>%.0f", currentTech, best.FirstHop().Tech, bestScore, curScore))
	t.publish(events.HandoverStarted, q, fmt.Sprintf("policy-upgrade %v->%v", currentTech, best.FirstHop().Tech), sp.ID)
	ok := t.trySwitch(*best, sp.ID)
	t.mu.Lock()
	if !ok {
		t.lastUpTry, t.haveUpTry = now, true
	}
	t.state = StateMonitoring
	t.mu.Unlock()
	if !ok {
		t.tracer.End(sp, "failed")
		t.emit(EventHandoverFailed, "policy-upgrade attempt failed")
		t.publish(events.HandoverFailed, q, "policy-upgrade attempt failed", sp.ID)
		return
	}
	t.hoUpgrades.Inc()
	t.tracer.End(sp, "done")
}

// serviceReconnect implements §5.2.2: find another provider of the same
// service, ask permission, and restart the application-level exchange on
// it. "Another provider" means another device identity: the lost device's
// sibling interfaces advertise the same services but are the same peer —
// reaching them is the routing handover's job (PH_RECONNECT keeps the
// exchange), and reconnecting to one with a fresh PH_NEW under the same
// connection ID would displace the far end's live connection state.
func (t *Thread) serviceReconnect(parent uint64) {
	svc := t.vc.Service()
	target := t.vc.Target()
	store := t.lib.Daemon().Storage()
	sp := t.tracer.Begin("handover.reconnect", parent, target.String())

	// Siblings resolves the identity even when target's own row has aged
	// out (a surviving sibling that advertises it still links them) — a
	// Lookup-based identity would miss exactly the dead-interface case
	// this escalation runs in.
	exclude := map[device.Addr]bool{target: true}
	for _, sib := range store.Siblings(target) {
		exclude[sib.Info.Addr] = true
	}
	var chosen *storage.ServiceProvider
	for _, p := range store.FindService(svc.Name) {
		if exclude[p.Entry.Info.Addr] {
			continue // the device we are losing (any of its interfaces)
		}
		chosen = &p
		break
	}
	if chosen == nil {
		t.tracer.End(sp, "no-provider")
		t.emit(EventGaveUp, "no alternative provider")
		return
	}
	if t.cfg.AllowReconnect != nil && !t.cfg.AllowReconnect(*chosen) {
		t.mu.Lock()
		t.stats.RefusedReconnect++
		t.mu.Unlock()
		t.tracer.End(sp, "refused")
		t.emit(EventGaveUp, "reconnect refused by application")
		return
	}

	newTarget := chosen.Entry.Info.Addr
	for _, r := range chosen.Entry.Routes {
		via := library.Via{
			Route:       r,
			Target:      newTarget,
			ServiceName: chosen.Service.Name,
			ServicePort: chosen.Service.Port,
			ConnID:      t.vc.ID(),
			Reconnect:   false, // a fresh application-level connection
		}
		// A continuity session cannot resume on a different provider — the
		// old window state belongs to the dead peer — but it negotiates a
		// fresh session so continuity survives the *next* handover. A
		// provider that hangs up on the extended hello is a failed
		// candidate route (the application restart protocol expects framed
		// streams on both sides).
		var token uint64
		if t.vc.ContinuityEnabled() {
			token = t.lib.NewContinuityToken()
			via.Continuity = true
			via.Token = token
		}
		raw, err := t.lib.ConnectVia(via)
		if err != nil {
			continue
		}
		if t.vc.ContinuityEnabled() {
			t.vc.MarkRestartContinuity(raw, newTarget, r.Bridge, token)
		} else {
			t.vc.MarkRestart(raw, newTarget, r.Bridge)
		}
		t.mu.Lock()
		t.stats.Reconnects++
		t.mu.Unlock()
		t.hoReconnects.Inc()
		t.tracer.End(sp, "done")
		t.emit(EventServiceReconnect, fmt.Sprintf("provider=%s", chosen.Entry.Info.Name))
		return
	}
	t.tracer.End(sp, "failed")
	t.emit(EventGaveUp, "all routes to alternative provider failed")
}

// Start launches the monitoring loop. No-op if already running.
func (t *Thread) Start() {
	t.mu.Lock()
	if t.stop != nil || t.state == StateStopped {
		t.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	t.stop, t.done = stop, done
	t.mu.Unlock()

	go func() {
		defer close(done)
		tk := t.clk.NewTicker(t.cfg.Interval)
		defer tk.Stop()
		for {
			select {
			case <-tk.C():
				t.Step()
				if t.State() == StateStopped {
					return
				}
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the loop and waits for it to exit. Idempotent.
func (t *Thread) Stop() {
	t.mu.Lock()
	stop, done := t.stop, t.done
	t.stop, t.done = nil, nil
	if t.state != StateStopped {
		t.state = StateStopped
	}
	t.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// MonitorTarget exposes the monitored device address (for diagnostics).
func (t *Thread) MonitorTarget() device.Addr { return t.vc.Target() }
