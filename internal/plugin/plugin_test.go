package plugin_test

import (
	"errors"
	"io"
	"testing"
	"time"

	"peerhood/internal/clock"
	"peerhood/internal/device"
	"peerhood/internal/geo"
	"peerhood/internal/mobility"
	"peerhood/internal/plugin"
	"peerhood/internal/simnet"
)

func instantWorld(t *testing.T) *simnet.World {
	t.Helper()
	opts := []simnet.Option{simnet.WithQualityNoise(0)}
	for _, tech := range device.Techs() {
		opts = append(opts, simnet.WithParams(tech, simnet.DefaultParams(tech).Instant()))
	}
	w := simnet.NewWorld(clock.Real(), 1, opts...)
	t.Cleanup(func() { w.Close() })
	return w
}

func addSim(t *testing.T, w *simnet.World, name string, at geo.Point) *plugin.Sim {
	t.Helper()
	d, err := w.AddDevice(name, mobility.Static{At: at})
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.AddRadio(device.TechBluetooth)
	if err != nil {
		t.Fatal(err)
	}
	return plugin.NewSim(w, r)
}

func TestSimPluginBasics(t *testing.T) {
	w := instantWorld(t)
	a := addSim(t, w, "a", geo.Pt(0, 0))
	b := addSim(t, w, "b", geo.Pt(4, 0))

	if a.Tech() != device.TechBluetooth {
		t.Fatalf("tech = %v", a.Tech())
	}
	if a.Addr().IsZero() {
		t.Fatal("zero addr")
	}
	if a.DiscoveryCycle() <= 0 {
		t.Fatal("no discovery cycle")
	}
	if q := a.QualityTo(b.Addr()); q <= 0 {
		t.Fatalf("quality = %d", q)
	}
	res := a.Inquire()
	if len(res) != 1 || res[0].Addr != b.Addr() {
		t.Fatalf("inquire = %+v", res)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestErrorTranslation(t *testing.T) {
	w := instantWorld(t)
	a := addSim(t, w, "a", geo.Pt(0, 0))
	b := addSim(t, w, "b", geo.Pt(4, 0))
	far := addSim(t, w, "far", geo.Pt(500, 0))

	cases := []struct {
		name string
		to   device.Addr
		port uint16
		want error
	}{
		{"missing radio", device.Addr{Tech: device.TechBluetooth, MAC: "zz"}, 10, plugin.ErrUnreachable},
		{"out of range", far.Addr(), 10, plugin.ErrUnreachable},
		{"no listener", b.Addr(), 10, plugin.ErrRefused},
		{"tech mismatch", device.Addr{Tech: device.TechWLAN, MAC: "x"}, 10, plugin.ErrUnreachable},
	}
	for _, c := range cases {
		if _, err := a.Dial(c.to, c.port); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestConnectFaultTranslated(t *testing.T) {
	p := simnet.DefaultParams(device.TechBluetooth).Instant()
	p.FaultProb = 1 // always fault
	w := simnet.NewWorld(clock.Real(), 2, simnet.WithQualityNoise(0), simnet.WithParams(device.TechBluetooth, p))
	t.Cleanup(func() { w.Close() })
	d1, _ := w.AddDevice("a", mobility.Static{At: geo.Pt(0, 0)})
	r1, _ := d1.AddRadio(device.TechBluetooth)
	a := plugin.NewSim(w, r1)
	d2, _ := w.AddDevice("b", mobility.Static{At: geo.Pt(4, 0)})
	r2, _ := d2.AddRadio(device.TechBluetooth)
	b := plugin.NewSim(w, r2)
	l, err := b.Listen(10)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if _, err := a.Dial(b.Addr(), 10); !errors.Is(err, plugin.ErrConnectFault) {
		t.Fatalf("err = %v, want ErrConnectFault", err)
	}
}

func TestLinkLostTranslatedOnReadAndWrite(t *testing.T) {
	w := instantWorld(t)
	a := addSim(t, w, "a", geo.Pt(0, 0))
	b := addSim(t, w, "b", geo.Pt(4, 0))
	l, err := b.Listen(10)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan plugin.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := a.Dial(b.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted

	// Move b out of range and break the link.
	dev, _ := w.Device("b")
	dev.SetModel(mobility.Static{At: geo.Pt(1000, 0)})
	w.CheckLinks()

	if _, err := conn.Write([]byte("x")); !errors.Is(err, plugin.ErrLinkLost) {
		t.Fatalf("write err = %v, want ErrLinkLost", err)
	}
	if _, err := srv.Read(make([]byte, 4)); !errors.Is(err, plugin.ErrLinkLost) {
		t.Fatalf("read err = %v, want ErrLinkLost", err)
	}
}

func TestEOFPassesThroughUntranslated(t *testing.T) {
	w := instantWorld(t)
	a := addSim(t, w, "a", geo.Pt(0, 0))
	b := addSim(t, w, "b", geo.Pt(4, 0))
	l, err := b.Listen(10)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan plugin.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := a.Dial(b.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	_ = conn.Close()

	deadline := time.After(2 * time.Second)
	for {
		_, err := srv.Read(make([]byte, 4))
		if err == io.EOF {
			return // io.EOF must remain io.EOF, not a wrapped error
		}
		if err != nil {
			t.Fatalf("read err = %v, want io.EOF", err)
		}
		select {
		case <-deadline:
			t.Fatal("never saw EOF")
		default:
		}
	}
}

func TestListenerTranslation(t *testing.T) {
	w := instantWorld(t)
	b := addSim(t, w, "b", geo.Pt(0, 0))
	l, err := b.Listen(10)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	_ = l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, plugin.ErrClosed) {
			t.Fatalf("accept err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("accept never unblocked")
	}
}
