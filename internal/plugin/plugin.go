// Package plugin defines PeerHood's network-plugin abstraction (the
// thesis' AbstractPlugin / MAbstractConnection, §2.2): one implementation
// per network technology, hiding discovery and transport details from the
// daemon and library. The sim-backed implementation wraps a simnet radio;
// internal/tcpnet provides a real-network implementation for deployments.
package plugin

import (
	"errors"
	"fmt"
	"io"
	"time"

	"peerhood/internal/device"
	"peerhood/internal/simnet"
)

// Conn is the abstract connection handed to the library and applications.
type Conn interface {
	io.ReadWriteCloser
	// LocalAddr returns this endpoint's radio address.
	LocalAddr() device.Addr
	// RemoteAddr returns the peer radio's address.
	RemoteAddr() device.Addr
	// Quality returns the current link quality (0–255; 0 once lost), the
	// value PeerHood's connection monitoring listens to (§2.2.2).
	Quality() int
}

// Listener accepts incoming abstract connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
}

// InquiryResult is one device found by an inquiry.
type InquiryResult struct {
	Addr    device.Addr
	Quality int
}

// Plugin is one network technology attachment of a PeerHood node.
type Plugin interface {
	// Tech returns the plugin's technology.
	Tech() device.Tech
	// Addr returns the local radio address.
	Addr() device.Addr
	// Inquire performs one blocking device-discovery inquiry.
	Inquire() []InquiryResult
	// QualityTo samples the current link quality towards a device.
	QualityTo(a device.Addr) int
	// Dial opens a connection to a port on a remote radio.
	Dial(to device.Addr, port uint16) (Conn, error)
	// Listen binds a port on the local radio.
	Listen(port uint16) (Listener, error)
	// DiscoveryCycle returns the nominal period between inquiry rounds.
	DiscoveryCycle() time.Duration
	// Close releases plugin resources.
	Close() error
}

// Plugin-level error classes. Implementations translate their transport's
// failures into these so core code never depends on a specific transport.
var (
	// ErrUnreachable reports that the peer does not exist, is out of
	// coverage, or is powered down.
	ErrUnreachable = errors.New("plugin: peer unreachable")
	// ErrConnectFault reports a transient connection-establishment failure
	// worth retrying (§4.3's Bluetooth faults).
	ErrConnectFault = errors.New("plugin: connection fault")
	// ErrRefused reports that the peer is up but nothing listens there —
	// in PeerHood terms, the device is not PeerHood-capable (§2.3).
	ErrRefused = errors.New("plugin: connection refused")
	// ErrClosed reports use of a closed plugin, listener, or connection.
	ErrClosed = errors.New("plugin: closed")
	// ErrLinkLost reports that an established link broke.
	ErrLinkLost = errors.New("plugin: link lost")
)

// Sim is the simulator-backed Plugin. The three PeerHood plugins of the
// thesis (BTPlugin, WLANPlugin, GPRSPlugin) are Sim instances over radios
// of the respective technology.
type Sim struct {
	world *simnet.World
	radio *simnet.Radio
}

var _ Plugin = (*Sim)(nil)

// NewSim returns a Plugin backed by a simulated radio.
func NewSim(world *simnet.World, radio *simnet.Radio) *Sim {
	return &Sim{world: world, radio: radio}
}

// Tech implements Plugin.
func (s *Sim) Tech() device.Tech { return s.radio.Tech() }

// Addr implements Plugin.
func (s *Sim) Addr() device.Addr { return s.radio.Addr() }

// Inquire implements Plugin.
func (s *Sim) Inquire() []InquiryResult {
	rs := s.radio.Inquire()
	out := make([]InquiryResult, len(rs))
	for i, r := range rs {
		out[i] = InquiryResult{Addr: r.Addr, Quality: r.Quality}
	}
	return out
}

// QualityTo implements Plugin.
func (s *Sim) QualityTo(a device.Addr) int { return s.radio.QualityTo(a) }

// Dial implements Plugin.
func (s *Sim) Dial(to device.Addr, port uint16) (Conn, error) {
	c, err := s.radio.Dial(to, port)
	if err != nil {
		return nil, translateSimErr(err)
	}
	return simConn{c}, nil
}

// Listen implements Plugin.
func (s *Sim) Listen(port uint16) (Listener, error) {
	l, err := s.radio.Listen(port)
	if err != nil {
		return nil, err
	}
	return simListener{l}, nil
}

// DiscoveryCycle implements Plugin.
func (s *Sim) DiscoveryCycle() time.Duration {
	return s.world.Params(s.radio.Tech()).DiscoveryCycle
}

// Close implements Plugin. The radio itself stays in the world (a stopped
// daemon does not remove the hardware).
func (s *Sim) Close() error { return nil }

// translateSimErr maps simnet errors onto plugin error classes, preserving
// the original message.
func translateSimErr(err error) error {
	switch {
	case errors.Is(err, simnet.ErrNoSuchRadio),
		errors.Is(err, simnet.ErrOutOfRange),
		errors.Is(err, simnet.ErrRadioDown),
		errors.Is(err, simnet.ErrTechMismatch):
		return fmt.Errorf("%w: %v", ErrUnreachable, err)
	case errors.Is(err, simnet.ErrConnectFault):
		return fmt.Errorf("%w: %v", ErrConnectFault, err)
	case errors.Is(err, simnet.ErrRefused):
		return fmt.Errorf("%w: %v", ErrRefused, err)
	case errors.Is(err, simnet.ErrLinkLost):
		return fmt.Errorf("%w: %v", ErrLinkLost, err)
	case errors.Is(err, simnet.ErrClosed):
		return fmt.Errorf("%w: %v", ErrClosed, err)
	default:
		return err
	}
}

type simConn struct {
	*simnet.Conn
}

func (c simConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if err != nil && err != io.EOF {
		err = translateSimErr(err)
	}
	return n, err
}

func (c simConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if err != nil {
		err = translateSimErr(err)
	}
	return n, err
}

type simListener struct {
	l *simnet.Listener
}

func (sl simListener) Accept() (Conn, error) {
	c, err := sl.l.Accept()
	if err != nil {
		return nil, translateSimErr(err)
	}
	return simConn{c}, nil
}

func (sl simListener) Close() error { return sl.l.Close() }
