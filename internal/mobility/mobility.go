// Package mobility provides movement models for simulated devices. A model
// is a pure function from elapsed simulation time to position, which keeps
// the wireless world deterministic: the same seed and the same query times
// always produce the same trajectories.
//
// The thesis distinguishes three device classes — static, hybrid, dynamic
// (§3.4.3) — and its experiments move devices along straight lines (office →
// corridor walks at pedestrian speed). Static and Linear cover those; Path
// and RandomWaypoint support the richer scenarios in the experiment harness.
package mobility

import (
	"math"
	"sync"
	"time"

	"peerhood/internal/geo"
	"peerhood/internal/rng"
)

// Model yields a device's position after a given elapsed simulation time.
//
// Implementations must be safe for concurrent use and must be deterministic:
// PositionAt(t) depends only on t and construction parameters.
type Model interface {
	PositionAt(elapsed time.Duration) geo.Point
}

// SpeedBounded is implemented by models that can bound how fast they move.
// The simulator's spatial index uses the bound to decide how stale its
// buckets may become before positions must be re-indexed; models without a
// bound are treated as able to move arbitrarily fast, which stays correct
// but makes the index fall back to linear scanning.
type SpeedBounded interface {
	// MaxSpeed returns an upper bound on the model's speed in metres per
	// simulated second.
	MaxSpeed() float64
}

// MaxSpeedOf returns m's speed bound, or +Inf if m does not declare one.
func MaxSpeedOf(m Model) float64 {
	if sb, ok := m.(SpeedBounded); ok {
		return sb.MaxSpeed()
	}
	return math.Inf(1)
}

// Static is a Model that never moves.
type Static struct {
	At geo.Point
}

var _ Model = Static{}

// PositionAt implements Model.
func (s Static) PositionAt(time.Duration) geo.Point { return s.At }

// MaxSpeed implements SpeedBounded: a static device never moves.
func (Static) MaxSpeed() float64 { return 0 }

// Linear moves from Start at constant Velocity (metres/second). If Until is
// non-zero the device stops moving after that elapsed time (it reaches its
// final position and stays there).
type Linear struct {
	Start    geo.Point
	Velocity geo.Vector // metres per second
	Until    time.Duration
}

var _ Model = Linear{}

// PositionAt implements Model.
func (l Linear) PositionAt(elapsed time.Duration) geo.Point {
	if elapsed < 0 {
		elapsed = 0
	}
	if l.Until > 0 && elapsed > l.Until {
		elapsed = l.Until
	}
	secs := elapsed.Seconds()
	return l.Start.Add(l.Velocity.Scale(secs))
}

// MaxSpeed implements SpeedBounded.
func (l Linear) MaxSpeed() float64 { return l.Velocity.Len() }

// Walk returns a Linear model walking from start towards dest at speed
// metres/second, stopping on arrival. A speed of 1.4 m/s approximates the
// thesis' corridor walk.
func Walk(start, dest geo.Point, speed float64) Linear {
	d := dest.Sub(start)
	dist := d.Len()
	if dist == 0 || speed <= 0 {
		return Linear{Start: start}
	}
	return Linear{
		Start:    start,
		Velocity: d.Unit().Scale(speed),
		Until:    time.Duration(dist / speed * float64(time.Second)),
	}
}

// Path walks through a sequence of waypoints at constant speed, stopping at
// the final waypoint. It models scripted scenarios such as "walk out of the
// office, down the corridor, and back" (§5.2.1).
type Path struct {
	points []geo.Point
	speed  float64
	// legEnds[i] is the cumulative elapsed time at which waypoint i+1 is
	// reached.
	legEnds []time.Duration
}

var _ Model = (*Path)(nil)

// NewPath returns a Path through points at speed metres/second. It panics if
// fewer than one point is given or speed <= 0.
func NewPath(speed float64, points ...geo.Point) *Path {
	if len(points) == 0 {
		panic("mobility: NewPath needs at least one point")
	}
	if speed <= 0 {
		panic("mobility: NewPath needs positive speed")
	}
	p := &Path{points: append([]geo.Point(nil), points...), speed: speed}
	var cum time.Duration
	for i := 1; i < len(points); i++ {
		dist := points[i-1].Dist(points[i])
		cum += time.Duration(dist / speed * float64(time.Second))
		p.legEnds = append(p.legEnds, cum)
	}
	return p
}

// TotalDuration returns the elapsed time at which the path's final waypoint
// is reached.
func (p *Path) TotalDuration() time.Duration {
	if len(p.legEnds) == 0 {
		return 0
	}
	return p.legEnds[len(p.legEnds)-1]
}

// MaxSpeed implements SpeedBounded.
func (p *Path) MaxSpeed() float64 { return p.speed }

// PositionAt implements Model.
func (p *Path) PositionAt(elapsed time.Duration) geo.Point {
	if elapsed <= 0 || len(p.points) == 1 {
		return p.points[0]
	}
	var legStart time.Duration
	for i, end := range p.legEnds {
		if elapsed <= end {
			legDur := end - legStart
			if legDur <= 0 {
				return p.points[i+1]
			}
			t := float64(elapsed-legStart) / float64(legDur)
			return p.points[i].Lerp(p.points[i+1], t)
		}
		legStart = end
	}
	return p.points[len(p.points)-1]
}

// RandomWaypoint implements the classic random-waypoint model: pick a uniform
// destination in Bounds, travel to it at a uniform speed from [MinSpeed,
// MaxSpeed], pause for Pause, repeat. Trajectories are generated lazily but
// memoised, so PositionAt stays a deterministic function of elapsed time.
type RandomWaypoint struct {
	mu sync.Mutex

	bounds   geo.Rect
	minSpeed float64
	maxSpeed float64
	pause    time.Duration
	src      *rng.Source

	segs []rwSegment
}

type rwSegment struct {
	start, end time.Duration // elapsed-time window covered by this segment
	from, to   geo.Point     // equal during pause segments
}

var _ Model = (*RandomWaypoint)(nil)

// NewRandomWaypoint returns a RandomWaypoint model starting at start.
// It panics on invalid speeds.
func NewRandomWaypoint(start geo.Point, bounds geo.Rect, minSpeed, maxSpeed float64, pause time.Duration, src *rng.Source) *RandomWaypoint {
	if minSpeed <= 0 || maxSpeed < minSpeed {
		panic("mobility: invalid random-waypoint speeds")
	}
	rw := &RandomWaypoint{
		bounds:   bounds,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		pause:    pause,
		src:      src,
	}
	// Seed a zero-length segment so extension always has a tail position.
	rw.segs = []rwSegment{{start: 0, end: 0, from: bounds.Clamp(start), to: bounds.Clamp(start)}}
	return rw
}

// PositionAt implements Model.
func (rw *RandomWaypoint) PositionAt(elapsed time.Duration) geo.Point {
	if elapsed < 0 {
		elapsed = 0
	}
	rw.mu.Lock()
	defer rw.mu.Unlock()
	rw.extendTo(elapsed)
	// Binary search would be fine; linear from the back is typically O(1)
	// because queries advance monotonically.
	for i := len(rw.segs) - 1; i >= 0; i-- {
		s := rw.segs[i]
		if elapsed >= s.start {
			if s.end == s.start {
				return s.to
			}
			t := float64(elapsed-s.start) / float64(s.end-s.start)
			return s.from.Lerp(s.to, t)
		}
	}
	return rw.segs[0].from
}

// MaxSpeed implements SpeedBounded.
func (rw *RandomWaypoint) MaxSpeed() float64 { return rw.maxSpeed }

// rwRetain bounds the memoised history: once the segment log exceeds it,
// the older half is dropped. Values are unchanged — each segment is fixed
// once generated — so only queries that jump back past the retained
// window (hours of simulated time) would notice, and those get the oldest
// retained position instead of the exact one. Without the bound a
// 100k-node day-long run leaks gigabytes of dead history.
const rwRetain = 256

func (rw *RandomWaypoint) extendTo(elapsed time.Duration) {
	if len(rw.segs) > rwRetain {
		keep := rwRetain / 2
		n := copy(rw.segs, rw.segs[len(rw.segs)-keep:])
		rw.segs = rw.segs[:n]
	}
	for rw.segs[len(rw.segs)-1].end < elapsed {
		tail := rw.segs[len(rw.segs)-1]
		dest := geo.Pt(
			rw.src.Uniform(rw.bounds.Min.X, rw.bounds.Max.X),
			rw.src.Uniform(rw.bounds.Min.Y, rw.bounds.Max.Y),
		)
		speed := rw.src.Uniform(rw.minSpeed, rw.maxSpeed)
		dist := tail.to.Dist(dest)
		travel := time.Duration(dist / speed * float64(time.Second))
		if travel <= 0 {
			travel = time.Millisecond
		}
		rw.segs = append(rw.segs, rwSegment{
			start: tail.end, end: tail.end + travel, from: tail.to, to: dest,
		})
		if rw.pause > 0 {
			moved := rw.segs[len(rw.segs)-1]
			rw.segs = append(rw.segs, rwSegment{
				start: moved.end, end: moved.end + rw.pause, from: dest, to: dest,
			})
		}
	}
}
