package mobility

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"peerhood/internal/geo"
	"peerhood/internal/rng"
)

func TestStatic(t *testing.T) {
	m := Static{At: geo.Pt(3, 4)}
	for _, d := range []time.Duration{0, time.Second, time.Hour} {
		if got := m.PositionAt(d); got != geo.Pt(3, 4) {
			t.Fatalf("Static moved to %v at %v", got, d)
		}
	}
}

func TestLinearConstantVelocity(t *testing.T) {
	m := Linear{Start: geo.Pt(0, 0), Velocity: geo.Vector{DX: 2, DY: 0}}
	got := m.PositionAt(3 * time.Second)
	if math.Abs(got.X-6) > 1e-9 || got.Y != 0 {
		t.Fatalf("PositionAt(3s) = %v, want (6,0)", got)
	}
}

func TestLinearNegativeElapsed(t *testing.T) {
	m := Linear{Start: geo.Pt(1, 1), Velocity: geo.Vector{DX: 1, DY: 1}}
	if got := m.PositionAt(-time.Second); got != geo.Pt(1, 1) {
		t.Fatalf("negative elapsed moved device: %v", got)
	}
}

func TestLinearStopsAtUntil(t *testing.T) {
	m := Linear{Start: geo.Pt(0, 0), Velocity: geo.Vector{DX: 1, DY: 0}, Until: 5 * time.Second}
	at5 := m.PositionAt(5 * time.Second)
	at50 := m.PositionAt(50 * time.Second)
	if at5 != at50 {
		t.Fatalf("device kept moving past Until: %v vs %v", at5, at50)
	}
	if math.Abs(at5.X-5) > 1e-9 {
		t.Fatalf("final position = %v, want x=5", at5)
	}
}

func TestWalkReachesDestination(t *testing.T) {
	m := Walk(geo.Pt(0, 0), geo.Pt(14, 0), 1.4)
	// 14 m at 1.4 m/s = 10 s.
	end := m.PositionAt(10 * time.Second)
	if math.Abs(end.X-14) > 1e-6 || math.Abs(end.Y) > 1e-6 {
		t.Fatalf("end position = %v, want (14,0)", end)
	}
	after := m.PositionAt(time.Hour)
	if after.Dist(end) > 1e-6 {
		t.Fatalf("walker overshot destination: %v", after)
	}
}

func TestWalkHalfway(t *testing.T) {
	m := Walk(geo.Pt(0, 0), geo.Pt(10, 0), 2)
	mid := m.PositionAt(2500 * time.Millisecond)
	if math.Abs(mid.X-5) > 1e-6 {
		t.Fatalf("halfway = %v, want x=5", mid)
	}
}

func TestWalkDegenerate(t *testing.T) {
	m := Walk(geo.Pt(3, 3), geo.Pt(3, 3), 1.4)
	if got := m.PositionAt(time.Minute); got != geo.Pt(3, 3) {
		t.Fatalf("zero-length walk moved: %v", got)
	}
	m2 := Walk(geo.Pt(0, 0), geo.Pt(5, 0), 0)
	if got := m2.PositionAt(time.Minute); got != geo.Pt(0, 0) {
		t.Fatalf("zero-speed walk moved: %v", got)
	}
}

func TestPathVisitsWaypointsInOrder(t *testing.T) {
	p := NewPath(1, geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(10, 10))
	if d := p.TotalDuration(); d != 20*time.Second {
		t.Fatalf("TotalDuration = %v, want 20s", d)
	}
	at10 := p.PositionAt(10 * time.Second)
	if at10.Dist(geo.Pt(10, 0)) > 1e-6 {
		t.Fatalf("at 10s = %v, want corner (10,0)", at10)
	}
	at15 := p.PositionAt(15 * time.Second)
	if at15.Dist(geo.Pt(10, 5)) > 1e-6 {
		t.Fatalf("at 15s = %v, want (10,5)", at15)
	}
	atEnd := p.PositionAt(time.Hour)
	if atEnd.Dist(geo.Pt(10, 10)) > 1e-6 {
		t.Fatalf("end = %v, want (10,10)", atEnd)
	}
}

func TestPathSinglePoint(t *testing.T) {
	p := NewPath(1, geo.Pt(7, 7))
	if got := p.PositionAt(time.Minute); got != geo.Pt(7, 7) {
		t.Fatalf("single-point path moved: %v", got)
	}
	if p.TotalDuration() != 0 {
		t.Fatalf("TotalDuration = %v, want 0", p.TotalDuration())
	}
}

func TestPathPanicsOnBadArgs(t *testing.T) {
	mustPanic(t, func() { NewPath(1) })
	mustPanic(t, func() { NewPath(0, geo.Pt(0, 0)) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestRandomWaypointDeterministic(t *testing.T) {
	mk := func() *RandomWaypoint {
		return NewRandomWaypoint(geo.Pt(0, 0),
			geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)},
			1, 2, time.Second, rng.New(42))
	}
	a, b := mk(), mk()
	for _, d := range []time.Duration{0, 5 * time.Second, time.Minute, 10 * time.Minute} {
		pa, pb := a.PositionAt(d), b.PositionAt(d)
		if pa.Dist(pb) > 1e-9 {
			t.Fatalf("same-seed models diverge at %v: %v vs %v", d, pa, pb)
		}
	}
}

func TestRandomWaypointStaysInBounds(t *testing.T) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(50, 50)}
	rw := NewRandomWaypoint(geo.Pt(25, 25), bounds, 1, 3, 0, rng.New(7))
	for d := time.Duration(0); d < 10*time.Minute; d += 500 * time.Millisecond {
		p := rw.PositionAt(d)
		if !bounds.Contains(p) {
			t.Fatalf("escaped bounds at %v: %v", d, p)
		}
	}
}

func TestRandomWaypointNonMonotonicQueries(t *testing.T) {
	rw := NewRandomWaypoint(geo.Pt(0, 0),
		geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(100, 100)},
		1, 2, 0, rng.New(3))
	late := rw.PositionAt(time.Minute)
	early := rw.PositionAt(10 * time.Second)
	lateAgain := rw.PositionAt(time.Minute)
	if late.Dist(lateAgain) > 1e-9 {
		t.Fatalf("re-query changed trajectory: %v vs %v", late, lateAgain)
	}
	_ = early
}

func TestRandomWaypointSpeedBound(t *testing.T) {
	rw := NewRandomWaypoint(geo.Pt(0, 0),
		geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(200, 200)},
		1, 2, 0, rng.New(11))
	step := 250 * time.Millisecond
	prev := rw.PositionAt(0)
	for d := step; d < 5*time.Minute; d += step {
		cur := rw.PositionAt(d)
		speed := prev.Dist(cur) / step.Seconds()
		if speed > 2.0+1e-6 {
			t.Fatalf("instantaneous speed %v m/s exceeds max 2", speed)
		}
		prev = cur
	}
}

func TestRandomWaypointPanicsOnBadSpeeds(t *testing.T) {
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(1, 1)}
	mustPanic(t, func() { NewRandomWaypoint(geo.Pt(0, 0), bounds, 0, 1, 0, rng.New(1)) })
	mustPanic(t, func() { NewRandomWaypoint(geo.Pt(0, 0), bounds, 2, 1, 0, rng.New(1)) })
}

func TestLinearPositionIsPureFunction(t *testing.T) {
	m := Linear{Start: geo.Pt(0, 0), Velocity: geo.Vector{DX: 1.5, DY: -0.5}}
	if err := quick.Check(func(ms int64) bool {
		d := time.Duration(ms%3600000) * time.Millisecond
		return m.PositionAt(d) == m.PositionAt(d)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRandomWaypointRetentionStaysBounded pins the rwRetain trim under a
// long monotonic clock advance — the access pattern of a sharded
// million-step run. The memoised segment log must stay bounded the whole
// way (the trim keeps firing, not just once), and trimming must never
// change the trajectory: a fresh same-seed walker sampled at scattered
// instants sees exactly the positions the long-running walker reported.
func TestRandomWaypointRetentionStaysBounded(t *testing.T) {
	const steps = 1_000_000
	bounds := geo.Rect{Min: geo.Pt(0, 0), Max: geo.Pt(50, 50)}
	rw := NewRandomWaypoint(geo.Pt(25, 25), bounds, 0.7, 2.0, 2*time.Second, rng.NewCompact(99))

	// One trimmed walker advances second by second; remember a scattered
	// sample of what it said.
	type sample struct {
		at  time.Duration
		pos geo.Point
	}
	var samples []sample
	maxSegs := 0
	for i := 0; i <= steps; i++ {
		at := time.Duration(i) * time.Second
		pos := rw.PositionAt(at)
		if n := len(rw.segs); n > maxSegs {
			maxSegs = n
		}
		if i%100_003 == 0 {
			samples = append(samples, sample{at: at, pos: pos})
		}
		if !bounds.Contains(pos) {
			t.Fatalf("walker escaped bounds at %v: %v", at, pos)
		}
	}
	// extendTo trims before appending, so the log can exceed rwRetain by
	// the handful of segments one advance generates — but it must never
	// keep growing. Two windows is already a leak.
	if maxSegs > 2*rwRetain {
		t.Fatalf("segment log peaked at %d entries; the rwRetain=%d trim is not holding", maxSegs, rwRetain)
	}
	if len(rw.segs) > 2*rwRetain {
		t.Fatalf("final segment log holds %d entries, want <= %d", len(rw.segs), 2*rwRetain)
	}

	// Trimming is lossless for forward queries: a fresh walker with the
	// same seed, asked directly at the sampled instants, reproduces them.
	fresh := NewRandomWaypoint(geo.Pt(25, 25), bounds, 0.7, 2.0, 2*time.Second, rng.NewCompact(99))
	for _, s := range samples {
		if got := fresh.PositionAt(s.at); got != s.pos {
			t.Fatalf("fresh same-seed walker at %v = %v, long-running walker said %v", s.at, got, s.pos)
		}
	}
}
