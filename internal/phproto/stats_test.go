package phproto

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"peerhood/internal/device"
)

func TestStatsRoundTrip(t *testing.T) {
	in := &Stats{
		UnixNanos: 123456789,
		Entries: []StatEntry{
			{Name: "peerhood_handover_completed_total", Value: math.Float64bits(3)},
			{Name: `peerhood_events_dropped_total{type="link-lost"}`, Value: math.Float64bits(0.5)},
		},
	}
	got := roundTrip(t, in).(*Stats)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip = %+v, want %+v", got, in)
	}
	req := roundTrip(t, &StatsRequest{Prefix: "peerhood_storage"}).(*StatsRequest)
	if req.Prefix != "peerhood_storage" {
		t.Fatalf("prefix = %q", req.Prefix)
	}
}

func TestStatsRejectsOverCount(t *testing.T) {
	// A frame declaring more entries than MaxStatEntries must be rejected
	// before allocation.
	e := &encoder{}
	e.u64(0)
	e.u32(MaxStatEntries + 1)
	frame := append([]byte{byte(CmdStats), 0, 0, 0, byte(len(e.buf))}, e.buf...)
	if _, err := Read(bytes.NewReader(frame)); err == nil {
		t.Fatal("over-count STATS decoded")
	}
}

func TestTraceSpanRoundTrip(t *testing.T) {
	in := &TraceSpan{
		ID:             0x0102030400000007,
		Parent:         0x0102030400000003,
		Name:           "sync.fetch",
		Addr:           "bt:02:70:68:00:00:01",
		StartUnixNanos: 1000,
		EndUnixNanos:   2500,
		Detail:         "delta",
	}
	got := roundTrip(t, in).(*TraceSpan)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip = %+v, want %+v", got, in)
	}
	sub := roundTrip(t, &TraceSubscribe{Tail: 128}).(*TraceSubscribe)
	if sub.Tail != 128 {
		t.Fatalf("tail = %d", sub.Tail)
	}
}

// TestEventSpanExtensionBackCompat pins the negotiated-extension contract:
// the flagless/spanless forms encode byte-identically to the legacy wire
// (so old peers keep decoding them), while the extended forms carry the
// new fields through a round trip.
func TestEventSpanExtensionBackCompat(t *testing.T) {
	addr := device.Addr{Tech: device.TechBluetooth, MAC: "02:70:68:00:00:01"}

	legacySub := legacyFrame(t, &EventSubscribe{Mask: 0x1ff})
	var buf bytes.Buffer
	if err := Write(&buf, &EventSubscribe{Mask: 0x1ff, Flags: 0}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), legacySub) {
		t.Fatalf("flagless subscribe diverged from legacy wire:\n got  %x\n want %x", buf.Bytes(), legacySub)
	}

	spanless := &EventNotice{Seq: 1, UnixNanos: 2, Type: 3, Addr: addr, Quality: 4, Detail: "d"}
	legacyEv := legacyFrame(t, spanless)
	buf.Reset()
	if err := Write(&buf, spanless); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), legacyEv) {
		t.Fatalf("spanless notice diverged from legacy wire:\n got  %x\n want %x", buf.Bytes(), legacyEv)
	}

	sub := roundTrip(t, &EventSubscribe{Mask: 0x3, Flags: EventSubFlagSpans}).(*EventSubscribe)
	if sub.Mask != 0x3 || sub.Flags != EventSubFlagSpans {
		t.Fatalf("flagged subscribe = %+v", sub)
	}
	spanful := &EventNotice{Seq: 1, UnixNanos: 2, Type: 3, Addr: addr, Quality: 4, Detail: "d", Span: 0xfeed}
	got := roundTrip(t, spanful).(*EventNotice)
	if !reflect.DeepEqual(got, spanful) {
		t.Fatalf("spanful notice round trip = %+v, want %+v", got, spanful)
	}
	// A spanful frame is strictly longer: that length difference is the
	// legacy-reject signal (old decoders fail Read's trailing-bytes check).
	var spanfulBuf bytes.Buffer
	if err := Write(&spanfulBuf, spanful); err != nil {
		t.Fatal(err)
	}
	if spanfulBuf.Len() != len(legacyEv)+8 {
		t.Fatalf("spanful frame length = %d, want legacy+8 = %d", spanfulBuf.Len(), len(legacyEv)+8)
	}
}
