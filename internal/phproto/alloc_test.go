package phproto

import (
	"io"
	"testing"

	"peerhood/internal/device"
	"peerhood/internal/race"
)

// skipUnderRace skips allocation pins in -race builds: the detector's
// shadow-memory bookkeeping allocates on paths that are allocation-free in
// normal builds.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
}

// Allocation budgets for the encode hot paths. These are contracts, not
// observations: the daemon encodes a frame for every discovery fetch,
// sync response, and event notice, so a regression here multiplies across
// every connection the daemon serves. Budgets are asserted exactly where
// they are zero (a reused Encoder must not allocate at all in steady
// state) and as ceilings elsewhere.
const (
	// encoderEncodeBudget: a reused Encoder encoding a message with a
	// warm buffer performs no allocations.
	encoderEncodeBudget = 0
	// writeBudget: the pooled package-level Write may touch the pool but
	// must not rebuild buffers per frame.
	writeBudget = 0
	// hashBudget: NeighborEntry.Hash encodes into a pooled buffer and
	// folds FNV-64a inline.
	hashBudget = 0
)

func benchInfo() device.Info {
	return device.Info{
		Name:     "alloc-probe",
		Addr:     device.Addr{Tech: device.TechBluetooth, MAC: "02:70:68:00:00:01"},
		Checksum: 777,
		Mobility: device.Hybrid,
		Services: []device.ServiceInfo{{Name: "echo", Attr: "a", Port: 11}},
	}
}

// TestEncoderEncodeAllocFree pins the satellite requirement: encoding a
// DeviceInfo answer (the InfoDevice response) through a reused Encoder is
// allocation-free once the buffer is warm.
func TestEncoderEncodeAllocFree(t *testing.T) {
	skipUnderRace(t)
	var enc Encoder
	msg := &DeviceInfo{Info: benchInfo()}
	if _, err := enc.Encode(msg); err != nil { // warm the buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := enc.Encode(msg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > encoderEncodeBudget {
		t.Fatalf("Encoder.Encode(DeviceInfo) = %.1f allocs/op, budget %d", allocs, encoderEncodeBudget)
	}
}

func TestWriteAllocFlat(t *testing.T) {
	skipUnderRace(t)
	msg := &DeviceInfo{Info: benchInfo()}
	_ = Write(io.Discard, msg) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		if err := Write(io.Discard, msg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > writeBudget {
		t.Fatalf("Write = %.1f allocs/op, budget %d", allocs, writeBudget)
	}
}

func TestNeighborEntryHashAllocFree(t *testing.T) {
	skipUnderRace(t)
	en := NeighborEntry{Info: benchInfo(), Jumps: 2, QualitySum: 700, QualityMin: 231}
	_ = en.Hash()
	allocs := testing.AllocsPerRun(200, func() { _ = en.Hash() })
	if allocs > hashBudget {
		t.Fatalf("NeighborEntry.Hash = %.1f allocs/op, budget %d", allocs, hashBudget)
	}
}

// BenchmarkEncoderEncode tracks the zero-copy encode path in the benchmark
// trajectory (allocs/op is gated by CI).
func BenchmarkEncoderEncode(b *testing.B) {
	var enc Encoder
	msg := &DeviceInfo{Info: benchInfo()}
	if _, err := enc.Encode(msg); err != nil { // warm the encoder's buffer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWritePooled tracks the pooled package-level Write.
func BenchmarkWritePooled(b *testing.B) {
	msg := &DeviceInfo{Info: benchInfo()}
	if err := Write(io.Discard, msg); err != nil { // warm the encoder pool
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Write(io.Discard, msg); err != nil {
			b.Fatal(err)
		}
	}
}
