package phproto

// This file defines the live-introspection extension: `phctl stats` (and
// any other tool) dials the daemon information port and sends a
// STATS_REQUEST; an instrumented daemon answers with a STATS frame
// carrying its flattened telemetry registry. `phctl trace` dials the
// library engine port and sends a TRACE_SUBSCRIBE; after a PH_OK it
// receives TRACE_SPAN frames as handover and sync spans finish. Legacy
// daemons predate both commands and close the connection on the unknown
// byte — callers treat the hang-up as "not supported", the same fallback
// discipline as the versioned neighbourhood sync.

// MaxStatEntries caps one STATS frame; a registry beyond it is truncated
// by the responder (name-sorted, so the kept prefix is deterministic).
const MaxStatEntries = 4096

// StatEntry is one flattened metric point: counters and gauges one entry
// each, histograms flattened to their bucket/sum/count series. Value
// carries the float64 bits so integers and histogram sums share one wire
// form without loss.
type StatEntry struct {
	// Name is the full series name with any labels embedded
	// (`peerhood_events_dropped_total{type="link-lost"}`).
	Name string
	// Value is math.Float64bits of the point's value.
	Value uint64
}

// StatsRequest asks for a registry snapshot, optionally restricted to
// series whose name starts with Prefix.
type StatsRequest struct {
	Prefix string
}

// Cmd implements Message.
func (*StatsRequest) Cmd() Command { return CmdStatsRequest }

func (m *StatsRequest) encodeTo(e *encoder) { e.str(m.Prefix) }

func (m *StatsRequest) decodeFrom(d *decoder) error {
	m.Prefix = d.str()
	return d.err
}

// Stats answers a StatsRequest.
type Stats struct {
	// UnixNanos is the snapshot time (simulated time on simulated worlds).
	UnixNanos int64
	Entries   []StatEntry
}

// Cmd implements Message.
func (*Stats) Cmd() Command { return CmdStats }

func (m *Stats) encodeTo(e *encoder) {
	e.u64(uint64(m.UnixNanos))
	n := len(m.Entries)
	if n > MaxStatEntries {
		n = MaxStatEntries
	}
	e.u32(uint32(n))
	for _, en := range m.Entries[:n] {
		e.str(en.Name)
		e.u64(en.Value)
	}
}

func (m *Stats) decodeFrom(d *decoder) error {
	m.UnixNanos = int64(d.u64())
	n := int(d.u32())
	if d.err != nil {
		return d.err
	}
	if n > MaxStatEntries {
		d.failTooMany(n, "stat entries", MaxStatEntries)
		return d.err
	}
	m.Entries = make([]StatEntry, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		m.Entries = append(m.Entries, StatEntry{Name: d.str(), Value: d.u64()})
	}
	return d.err
}

// TraceSubscribe opens a trace-span stream on the library engine port.
type TraceSubscribe struct {
	// Tail asks the daemon to replay up to this many already-finished
	// spans from its ring before streaming live ones; zero replays none.
	Tail uint32
}

// Cmd implements Message.
func (*TraceSubscribe) Cmd() Command { return CmdTraceSubscribe }

func (m *TraceSubscribe) encodeTo(e *encoder) { e.u32(m.Tail) }

func (m *TraceSubscribe) decodeFrom(d *decoder) error {
	m.Tail = d.u32()
	return d.err
}

// TraceSpan carries one finished span. The fields mirror
// telemetry.Span; IDs are the tracer's deterministic 64-bit values, so
// spans streamed from a manual-clock daemon are comparable across
// same-seed runs.
type TraceSpan struct {
	ID     uint64
	Parent uint64
	Name   string
	// Addr is the rendered peer address the span concerns, empty when it
	// concerns none (rendered, not structured: spans may describe routes
	// and episodes, not just single radios).
	Addr           string
	StartUnixNanos int64
	EndUnixNanos   int64
	Detail         string
}

// Cmd implements Message.
func (*TraceSpan) Cmd() Command { return CmdTraceSpan }

func (m *TraceSpan) encodeTo(e *encoder) {
	e.u64(m.ID)
	e.u64(m.Parent)
	e.str(m.Name)
	e.str(m.Addr)
	e.u64(uint64(m.StartUnixNanos))
	e.u64(uint64(m.EndUnixNanos))
	e.str(m.Detail)
}

func (m *TraceSpan) decodeFrom(d *decoder) error {
	m.ID = d.u64()
	m.Parent = d.u64()
	m.Name = d.str()
	m.Addr = d.str()
	m.StartUnixNanos = int64(d.u64())
	m.EndUnixNanos = int64(d.u64())
	m.Detail = d.str()
	return d.err
}
