package phproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"peerhood/internal/device"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("Write(%v): %v", m.Cmd(), err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read(%v): %v", m.Cmd(), err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%v: %d bytes left in buffer", m.Cmd(), buf.Len())
	}
	return got
}

func sampleInfo() device.Info {
	return device.Info{
		Name:     "laptop-d",
		Addr:     device.Addr{Tech: device.TechBluetooth, MAC: "02:70:68:00:00:01"},
		Checksum: 4321,
		Mobility: device.Hybrid,
		Services: []device.ServiceInfo{
			{Name: "picture-analysis", Attr: "v2", Port: 12},
			{Name: "echo", Attr: "", Port: 11},
		},
	}
}

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		&InfoRequest{Kind: InfoNeighborhood},
		&DeviceInfo{Info: sampleInfo()},
		&ServiceList{Services: sampleInfo().Services},
		&Neighborhood{Entries: []NeighborEntry{
			{
				Info:       sampleInfo(),
				Jumps:      2,
				Bridge:     device.Addr{Tech: device.TechBluetooth, MAC: "02:70:68:00:00:09"},
				QualitySum: 700,
				QualityMin: 231,
			},
			{Info: device.Info{Name: "bare", Addr: device.Addr{Tech: device.TechWLAN, MAC: "aa"}}},
		}},
		&HelloNew{ServicePort: 12, ServiceName: "echo", ConnID: 77},
		&HelloNew{ServicePort: 12, ServiceName: "echo", ConnID: 78, HasClient: true, Client: sampleInfo()},
		&HelloBridge{
			Dest:        device.Addr{Tech: device.TechBluetooth, MAC: "02:70:68:00:00:05"},
			ServiceName: "picture-analysis",
			ServicePort: 12,
			ConnID:      99,
			TTL:         6,
		},
		&HelloBridge{Dest: device.Addr{Tech: device.TechGPRS, MAC: "x"}, TTL: 1, Reconnect: true, HasClient: true, Client: sampleInfo()},
		&HelloNew{ServicePort: 12, ServiceName: "echo", ConnID: 79, Flags: HelloFlagContinuity, Token: 0xfeedface},
		&HelloBridge{
			Dest:        device.Addr{Tech: device.TechGPRS, MAC: "g1"},
			ServiceName: "echo",
			ServicePort: 12,
			ConnID:      80,
			TTL:         2,
			Flags:       HelloFlagResume,
			Token:       0xfeedface,
			RecvSeq:     41,
		},
		&HelloReconnect{ConnID: 123456789},
		&HelloResume{ConnID: 80, Token: 0xfeedface, RecvSeq: 41},
		&ResumeAck{OK: true, RecvSeq: 17},
		&ResumeAck{OK: false, Reason: "unknown session"},
		&Ack{OK: true},
		&Ack{OK: false, Reason: "no route to destination"},
		&Data{Seq: 42, Payload: []byte("package-42")},
		&Data{Seq: 0, Payload: nil},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v round trip:\n sent %#v\n got  %#v", m.Cmd(), m, got)
		}
	}
}

func TestEmptyNeighborhood(t *testing.T) {
	got := roundTrip(t, &Neighborhood{}).(*Neighborhood)
	if len(got.Entries) != 0 {
		t.Fatalf("entries = %v, want empty", got.Entries)
	}
}

func TestCommandStrings(t *testing.T) {
	for _, c := range []Command{
		CmdInfoRequest, CmdDeviceInfo, CmdServiceList, CmdNeighborhood,
		CmdHelloNew, CmdHelloBridge, CmdHelloReconnect, CmdAck, CmdData,
		CmdNeighborhoodSyncRequest, CmdNeighborhoodSync, CmdDigest,
		CmdHelloResume, CmdResumeAck,
	} {
		if strings.HasPrefix(c.String(), "cmd(") {
			t.Errorf("command %d has no name", c)
		}
	}
	if Command(200).String() != "cmd(200)" {
		t.Error("unknown command string wrong")
	}
}

func TestInfoKindStrings(t *testing.T) {
	for _, k := range []InfoKind{InfoDevice, InfoServices, InfoNeighborhood, InfoDigest} {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestReadUnknownCommand(t *testing.T) {
	frame := []byte{0xEE, 0, 0, 0, 0}
	_, err := Read(bytes.NewReader(frame))
	if !errors.Is(err, ErrUnknownCommand) {
		t.Fatalf("err = %v, want ErrUnknownCommand", err)
	}
}

func TestReadOversizeFrameRejected(t *testing.T) {
	var hdr [5]byte
	hdr[0] = byte(CmdAck)
	binary.BigEndian.PutUint32(hdr[1:], MaxFrameSize+1)
	_, err := Read(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadTruncatedHeader(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte{byte(CmdAck), 0}))
	if err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestReadTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Ack{OK: true, Reason: "hello"}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 6; cut < len(full); cut++ {
		_, err := Read(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadTrailingGarbageRejected(t *testing.T) {
	// Hand-craft an Ack frame with an extra byte inside the payload.
	payload := []byte{1, 0, 0 /* ok=1, reason len=0 */, 0xFF}
	var hdr [5]byte
	hdr[0] = byte(CmdAck)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	_, err := Read(bytes.NewReader(append(hdr[:], payload...)))
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestMalformedNeighborhoodCount(t *testing.T) {
	// Declared 5000 entries (over MaxEntries) with no body.
	payload := []byte{0xFF, 0xFF}
	var hdr [5]byte
	hdr[0] = byte(CmdNeighborhood)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	_, err := Read(bytes.NewReader(append(hdr[:], payload...)))
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestCorruptBytesNeverPanic(t *testing.T) {
	// Fuzz-ish: every command with random payloads must error or decode,
	// never panic or over-read.
	payloads := [][]byte{
		nil,
		{0},
		{0xFF},
		{0xFF, 0xFF, 0xFF, 0xFF},
		bytes.Repeat([]byte{0xAB}, 64),
		bytes.Repeat([]byte{0x00}, 64),
	}
	for cmd := Command(1); cmd <= CmdDigest; cmd++ {
		for _, p := range payloads {
			var hdr [5]byte
			hdr[0] = byte(cmd)
			binary.BigEndian.PutUint32(hdr[1:], uint32(len(p)))
			_, _ = Read(bytes.NewReader(append(hdr[:], p...))) // must not panic
		}
	}
}

func TestReadExpect(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Ack{OK: true}); err != nil {
		t.Fatal(err)
	}
	ack, err := ReadExpect[*Ack](&buf)
	if err != nil || !ack.OK {
		t.Fatalf("ReadExpect = %v, %v", ack, err)
	}

	if err := Write(&buf, &HelloReconnect{ConnID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadExpect[*Ack](&buf); !errors.Is(err, ErrMalformed) {
		t.Fatalf("type mismatch err = %v, want ErrMalformed", err)
	}
}

func TestReadEOF(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestLongStringTruncatedOnEncode(t *testing.T) {
	long := strings.Repeat("x", MaxStringLen+100)
	got := roundTrip(t, &Ack{OK: false, Reason: long}).(*Ack)
	if len(got.Reason) != MaxStringLen {
		t.Fatalf("reason length = %d, want %d", len(got.Reason), MaxStringLen)
	}
}

func TestTooManyServicesTruncatedOnEncode(t *testing.T) {
	ss := make([]device.ServiceInfo, MaxServices+10)
	for i := range ss {
		ss[i] = device.ServiceInfo{Name: "s", Port: uint16(i)}
	}
	got := roundTrip(t, &ServiceList{Services: ss}).(*ServiceList)
	if len(got.Services) != MaxServices {
		t.Fatalf("services = %d, want %d", len(got.Services), MaxServices)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := Write(&buf, &Data{Seq: uint32(i), Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := Read(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		d := m.(*Data)
		if d.Seq != uint32(i) || d.Payload[0] != byte(i) {
			t.Fatalf("frame %d = %+v", i, d)
		}
	}
}

func TestHelloBridgeRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(mac string, svc string, port uint16, id uint64, ttl uint8) bool {
		if len(mac) == 0 || len(mac) > 64 || len(svc) > 64 {
			return true
		}
		m := &HelloBridge{
			Dest:        device.Addr{Tech: device.TechBluetooth, MAC: mac},
			ServiceName: svc,
			ServicePort: port,
			ConnID:      id,
			TTL:         ttl,
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDataRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(func(seq uint32, payload []byte) bool {
		if len(payload) > 1<<16 {
			return true
		}
		m := &Data{Seq: seq, Payload: payload}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		gd := got.(*Data)
		if gd.Seq != seq {
			return false
		}
		if len(payload) == 0 {
			return len(gd.Payload) == 0
		}
		return bytes.Equal(gd.Payload, payload)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDecodedPayloadDoesNotAliasInput(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Data{Seq: 1, Payload: []byte("aaaa")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	m, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	d := m.(*Data)
	for i := range raw {
		raw[i] = 'z'
	}
	if string(d.Payload) != "aaaa" {
		t.Fatal("decoded payload aliases the input buffer")
	}
}
