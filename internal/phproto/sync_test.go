package phproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"peerhood/internal/device"
)

func sampleEntry(mac string, jumps uint8) NeighborEntry {
	return NeighborEntry{
		Info: device.Info{
			Name:     "dev-" + mac,
			Addr:     device.Addr{Tech: device.TechBluetooth, MAC: mac},
			Mobility: device.Dynamic,
			Services: []device.ServiceInfo{{Name: "echo", Port: 11}},
		},
		Jumps:      jumps,
		Bridge:     device.Addr{Tech: device.TechBluetooth, MAC: "bridge"},
		QualitySum: 480,
		QualityMin: 233,
	}
}

func TestSyncMessagesRoundTrip(t *testing.T) {
	msgs := []Message{
		&NeighborhoodSyncRequest{},
		&NeighborhoodSyncRequest{Epoch: 0xDEAD, Gen: 42},
		&NeighborhoodSync{
			Full:        true,
			Epoch:       7,
			ToGen:       99,
			Entries:     []NeighborEntry{sampleEntry("aa", 0), sampleEntry("bb", 2)},
			DigestCount: 2,
			DigestHash:  0x1234,
		},
		&NeighborhoodSync{
			Epoch:       7,
			FromGen:     90,
			ToGen:       99,
			Entries:     []NeighborEntry{sampleEntry("aa", 1)},
			Tombstones:  []device.Addr{{Tech: device.TechBluetooth, MAC: "gone"}},
			DigestCount: 12,
			DigestHash:  0xFEED,
		},
		&NeighborhoodSync{Epoch: 1}, // empty delta: nothing changed
		&DigestInfo{Epoch: 3, Gen: 17, Entries: 4, Hash: 0xABCD},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v round trip:\n sent %#v\n got  %#v", m.Cmd(), m, got)
		}
	}
}

func TestSyncOversizeTombstoneCountRejected(t *testing.T) {
	// full=0, epoch+fromGen+toGen, 0 entries, then a tombstone count over
	// MaxEntries with no body.
	payload := []byte{0}
	payload = append(payload, make([]byte, 24)...) // three u64s
	payload = append(payload, 0, 0)                // zero entries
	payload = binary.BigEndian.AppendUint16(payload, 0xFFFF)
	var hdr [5]byte
	hdr[0] = byte(CmdNeighborhoodSync)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	_, err := Read(bytes.NewReader(append(hdr[:], payload...)))
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestEntryHashMatchesEncoding(t *testing.T) {
	a := sampleEntry("aa", 0)
	b := sampleEntry("aa", 0)
	if a.Hash() != b.Hash() {
		t.Fatal("equal entries hash differently")
	}
	b.QualitySum++
	if a.Hash() == b.Hash() {
		t.Fatal("distinct entries hash equal")
	}
	// Fields outside the wire encoding do not exist on NeighborEntry, so
	// hashing twice must be stable.
	if a.Hash() != a.Hash() {
		t.Fatal("hash not deterministic")
	}
}

func TestDigestOfIsOrderIndependent(t *testing.T) {
	e1, e2, e3 := sampleEntry("aa", 0), sampleEntry("bb", 1), sampleEntry("cc", 2)
	c1, h1 := DigestOf([]NeighborEntry{e1, e2, e3})
	c2, h2 := DigestOf([]NeighborEntry{e3, e1, e2})
	if c1 != c2 || h1 != h2 {
		t.Fatalf("digest order dependent: (%d,%x) vs (%d,%x)", c1, h1, c2, h2)
	}
	if c1 != 3 {
		t.Fatalf("count = %d", c1)
	}
	// Incremental maintenance: removing an entry XORs it out.
	_, h12 := DigestOf([]NeighborEntry{e1, e2})
	if h1^e3.Hash() != h12 {
		t.Fatal("digest is not incrementally maintainable by XOR")
	}
}

func TestFullSyncDigestCoversTransmittedEntries(t *testing.T) {
	entries := []NeighborEntry{sampleEntry("aa", 0), sampleEntry("bb", 1)}
	m := FullSync(5, 77, entries)
	count, hash := DigestOf(entries)
	if !m.Full || m.Epoch != 5 || m.ToGen != 77 || m.DigestCount != count || m.DigestHash != hash {
		t.Fatalf("FullSync = %+v", m)
	}
}
