package phproto

import (
	"time"

	"peerhood/internal/device"
)

// This file defines the neighbourhood event stream: applications (or
// remote tools like `phctl watch`) dial the library engine port, send an
// EVENT_SUBSCRIBE naming the event-type mask they care about, receive a
// PH_OK, and then a stream of EVENT frames until either side closes the
// connection. The frames mirror internal/events.Event; translation lives
// with the bus owner so this package stays free of bus imports.

// EventSubFlagSpans asks the daemon to stamp each EVENT frame with the
// trace span it originated from (EventNotice.Span). The flag rides in the
// subscribe's trailing-optional Flags byte: a legacy daemon fails the
// unexpected byte and closes, and the subscriber re-subscribes flagless.
const EventSubFlagSpans uint8 = 1 << 0

// EventSubscribe opens a neighbourhood event stream.
type EventSubscribe struct {
	// Mask is the events.Mask bitmask of types the subscriber wants; zero
	// subscribes to everything.
	Mask uint32
	// Flags is trailing-optional (encoded only when non-zero), so a
	// flagless subscribe stays byte-identical to the legacy form.
	Flags uint8
}

// Cmd implements Message.
func (*EventSubscribe) Cmd() Command { return CmdEventSubscribe }

func (m *EventSubscribe) encodeTo(e *encoder) {
	e.u32(m.Mask)
	if m.Flags != 0 {
		e.u8(m.Flags)
	}
}

func (m *EventSubscribe) decodeFrom(d *decoder) error {
	m.Mask = d.u32()
	if d.more() {
		m.Flags = d.u8()
	}
	return d.err
}

// EventNotice carries one neighbourhood event on a subscribed stream.
type EventNotice struct {
	// Seq is the bus-assigned monotonic sequence number. It is global to
	// the bus, not to this subscription: events filtered out by the
	// subscription mask consume numbers too, so gaps are normal on a
	// filtered stream and are NOT a loss signal.
	Seq uint64
	// UnixNanos is the publication time as nanoseconds since the Unix
	// epoch (simulated time on simulated worlds).
	UnixNanos int64
	// Type is the events.Type value.
	Type uint8
	// Addr is the subject device or link peer.
	Addr device.Addr
	// Quality is the sampled or smoothed link quality; -1 when the event
	// carries none.
	Quality int32
	// TimeToThreshold is the predicted time until the link crosses the
	// quality threshold (LinkDegrading only).
	TimeToThreshold time.Duration
	// Detail is a free-form annotation.
	Detail string
	// Span is the trace-span ID the event originated from (zero: none).
	// It is trailing-optional and only encoded when non-zero; senders must
	// leave it zero unless the subscriber asked via EventSubFlagSpans,
	// because a legacy subscriber rejects the extra bytes.
	Span uint64
}

// Cmd implements Message.
func (*EventNotice) Cmd() Command { return CmdEvent }

func (m *EventNotice) encodeTo(e *encoder) {
	e.u64(m.Seq)
	e.u64(uint64(m.UnixNanos))
	e.u8(m.Type)
	e.addr(m.Addr)
	e.u32(uint32(m.Quality))
	e.u64(uint64(m.TimeToThreshold))
	e.str(m.Detail)
	if m.Span != 0 {
		e.u64(m.Span)
	}
}

func (m *EventNotice) decodeFrom(d *decoder) error {
	m.Seq = d.u64()
	m.UnixNanos = int64(d.u64())
	m.Type = d.u8()
	m.Addr = d.addr()
	m.Quality = int32(d.u32())
	m.TimeToThreshold = time.Duration(d.u64())
	m.Detail = d.str()
	if d.more() {
		m.Span = d.u64()
	}
	return d.err
}
