package phproto

import (
	"bytes"
	"testing"
	"time"

	"peerhood/internal/device"
)

func TestEventSubscribeRoundTrip(t *testing.T) {
	got := roundTrip(t, &EventSubscribe{Mask: 0b101101}).(*EventSubscribe)
	if got.Mask != 0b101101 {
		t.Fatalf("mask = %b", got.Mask)
	}
	zero := roundTrip(t, &EventSubscribe{}).(*EventSubscribe)
	if zero.Mask != 0 {
		t.Fatalf("zero mask = %b", zero.Mask)
	}
}

func TestEventNoticeRoundTrip(t *testing.T) {
	in := &EventNotice{
		Seq:             42,
		UnixNanos:       time.Date(2026, 7, 29, 12, 0, 0, 0, time.UTC).UnixNano(),
		Type:            3,
		Addr:            device.Addr{Tech: device.TechWLAN, MAC: "aa:bb"},
		Quality:         231,
		TimeToThreshold: 2500 * time.Millisecond,
		Detail:          "slope=-1.00/s",
	}
	got := roundTrip(t, in).(*EventNotice)
	if *got != *in {
		t.Fatalf("round trip = %+v, want %+v", got, in)
	}
}

func TestEventNoticeNegativeQuality(t *testing.T) {
	in := &EventNotice{Seq: 1, Type: 1, Quality: -1}
	got := roundTrip(t, in).(*EventNotice)
	if got.Quality != -1 {
		t.Fatalf("quality = %d, want -1", got.Quality)
	}
}

func TestEventCommandStrings(t *testing.T) {
	if CmdEventSubscribe.String() != "EVENT_SUBSCRIBE" || CmdEvent.String() != "EVENT" {
		t.Fatalf("strings = %q, %q", CmdEventSubscribe.String(), CmdEvent.String())
	}
}

func TestEventNoticeTruncatedPayloadRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &EventNotice{Seq: 9, Detail: "x"}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Shrink the payload but keep the declared length intact: the decoder
	// must fail rather than fabricate fields.
	if _, err := Read(bytes.NewReader(b[:len(b)-1])); err == nil {
		t.Fatal("truncated frame accepted")
	}
}
