package phproto

import (
	"peerhood/internal/device"
)

// This file defines the versioned neighbourhood exchange that replaces the
// retransmit-everything fetch of fig 3.7 for peers that support it. The
// fetcher opens with the responder (epoch, generation) it last merged; the
// responder answers with a DELTA — only the entries whose transmitted form
// changed since that generation, plus tombstones for devices that left its
// table — or falls back to FULL when it cannot cover the gap (first
// contact, journal truncation, or a restart detected through the epoch).
// Legacy peers keep using CmdNeighborhood; both framings stay decodable.

// Sync-request capability flags.
const (
	// SyncFlagSiblings announces that the fetcher decodes the extended
	// (sibling-carrying) entry form. A responder answering a request
	// without it must serve legacy-form entries — and, because its table
	// digest covers the extended forms, it serves them as an unsyncable
	// epoch-0 snapshot (the load-penalty convention) rather than a delta
	// the fetcher could never digest-verify.
	SyncFlagSiblings uint8 = 1 << 0
)

// NeighborhoodSyncRequest opens a versioned neighbourhood fetch.
type NeighborhoodSyncRequest struct {
	// Epoch is the responder's storage epoch the fetcher last synced
	// against; zero means first contact.
	Epoch uint64
	// Gen is the responder generation the fetcher has fully merged.
	Gen uint64
	// Flags carries the fetcher's capability bits. It is a trailing
	// optional byte: requests from peers that predate it decode with
	// Flags 0, and a zero Flags encodes byte-identically to them.
	Flags uint8
	// Scope selects the answer shape (see ScopeTable/ScopeAggregate/
	// ScopeCell); Cell names the cell a ScopeCell request refines. They are
	// a second trailing-optional extension after Flags: a zero Scope
	// encodes byte-identically to scope-less requests, and a non-zero one
	// forces Flags onto the wire so field order is preserved.
	Scope uint8
	Cell  uint8
}

// Cmd implements Message.
func (*NeighborhoodSyncRequest) Cmd() Command { return CmdNeighborhoodSyncRequest }

func (m *NeighborhoodSyncRequest) encodeTo(e *encoder) {
	e.u64(m.Epoch)
	e.u64(m.Gen)
	if m.Flags != 0 || m.Scope != 0 {
		e.u8(m.Flags)
	}
	if m.Scope != 0 {
		e.u8(m.Scope)
		e.u8(m.Cell)
	}
}

func (m *NeighborhoodSyncRequest) decodeFrom(d *decoder) error {
	m.Epoch = d.u64()
	m.Gen = d.u64()
	if d.err == nil && d.off < len(d.buf) {
		m.Flags = d.u8()
	}
	if d.err == nil && d.off < len(d.buf) {
		m.Scope = d.u8()
		m.Cell = d.u8()
	}
	return d.err
}

// NeighborhoodSync answers a NeighborhoodSyncRequest.
type NeighborhoodSync struct {
	// Full marks a complete table transmission; Entries then holds every
	// wire-visible device and Tombstones is empty.
	Full bool
	// Epoch identifies the responder's storage instance; a change since the
	// last fetch means the responder restarted and counts from zero again.
	Epoch uint64
	// FromGen is the generation this delta starts from (the requested one);
	// zero for Full.
	FromGen uint64
	// ToGen is the responder generation the receiver reaches after applying
	// this message.
	ToGen uint64
	// Entries are the rows whose transmitted form changed in
	// (FromGen, ToGen] — or the whole table when Full.
	Entries []NeighborEntry
	// Tombstones lists devices that left the responder's table in
	// (FromGen, ToGen].
	Tombstones []device.Addr
	// DigestCount and DigestHash describe the responder's full table at
	// ToGen, so the fetcher can verify its reconstruction end to end and
	// fall back to a full fetch on mismatch.
	DigestCount uint32
	DigestHash  uint64
}

// Cmd implements Message.
func (*NeighborhoodSync) Cmd() Command { return CmdNeighborhoodSync }

func (m *NeighborhoodSync) encodeTo(e *encoder) {
	if m.Full {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.u64(m.Epoch)
	e.u64(m.FromGen)
	e.u64(m.ToGen)
	e.neighborEntries(m.Entries)
	e.addrs(m.Tombstones)
	e.u32(m.DigestCount)
	e.u64(m.DigestHash)
}

func (m *NeighborhoodSync) decodeFrom(d *decoder) error {
	m.Full = d.u8() == 1
	m.Epoch = d.u64()
	m.FromGen = d.u64()
	m.ToGen = d.u64()
	m.Entries = d.neighborEntries()
	m.Tombstones = d.addrs()
	m.DigestCount = d.u32()
	m.DigestHash = d.u64()
	return d.err
}

// FullSync builds a FULL NeighborhoodSync over the given entries, with the
// digest computed over exactly what is transmitted (the daemon uses it when
// a load penalty skews advertised entries away from the stored table).
func FullSync(epoch, gen uint64, entries []NeighborEntry) *NeighborhoodSync {
	count, hash := DigestOf(entries)
	return &NeighborhoodSync{
		Full:        true,
		Epoch:       epoch,
		ToGen:       gen,
		Entries:     entries,
		DigestCount: count,
		DigestHash:  hash,
	}
}

// DigestInfo carries a storage digest on the wire (the InfoDigest answer).
type DigestInfo struct {
	Epoch   uint64
	Gen     uint64
	Entries uint32
	Hash    uint64
}

// Cmd implements Message.
func (*DigestInfo) Cmd() Command { return CmdDigest }

func (m *DigestInfo) encodeTo(e *encoder) {
	e.u64(m.Epoch)
	e.u64(m.Gen)
	e.u32(m.Entries)
	e.u64(m.Hash)
}

func (m *DigestInfo) decodeFrom(d *decoder) error {
	m.Epoch = d.u64()
	m.Gen = d.u64()
	m.Entries = d.u32()
	m.Hash = d.u64()
	return d.err
}

// StripSiblings returns entries with every sibling advertisement removed,
// sharing the input slice when nothing carries one. Responders use it to
// render a table for peers that did not negotiate the extended entry form:
// a stripped entry encodes — and therefore hashes — exactly as the
// pre-identity wire did.
func StripSiblings(entries []NeighborEntry) []NeighborEntry {
	out := entries
	copied := false
	for i, en := range entries {
		if len(en.Info.Siblings) == 0 {
			continue
		}
		if !copied {
			out = append([]NeighborEntry(nil), entries...)
			copied = true
		}
		out[i].Info.Siblings = nil
	}
	return out
}

// Hash returns a stable fingerprint of the entry's transmitted form (FNV-64a
// over its wire encoding). Two entries hash equal iff they encode equal, so
// the storage can detect "this mutation changed nothing a peer would see"
// and skip bumping its generation.
func (en NeighborEntry) Hash() uint64 {
	enc := getEncoder()
	enc.enc.buf = enc.enc.buf[:0]
	enc.enc.neighborEntry(en)
	h := appendHash64(enc.enc.buf)
	putEncoder(enc)
	return h
}

// DigestOf summarises a transmitted table as (entry count, XOR of entry
// hashes). XOR makes the digest order-independent and incrementally
// maintainable: adding or removing an entry XORs its hash in or out.
func DigestOf(entries []NeighborEntry) (count uint32, hash uint64) {
	for _, en := range entries {
		hash ^= en.Hash()
	}
	return uint32(len(entries)), hash
}
