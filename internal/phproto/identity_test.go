package phproto

import (
	"bytes"
	"reflect"
	"testing"

	"peerhood/internal/device"
)

func btA(mac string) device.Addr { return device.Addr{Tech: device.TechBluetooth, MAC: mac} }

func siblingInfo() device.Info {
	return device.Info{
		Name:     "dual",
		Addr:     device.Addr{Tech: device.TechWLAN, MAC: "02:70:68:00:00:10"},
		Mobility: device.Hybrid,
		Services: []device.ServiceInfo{{Name: "echo", Port: 11}},
		Siblings: []device.Addr{
			{Tech: device.TechGPRS, MAC: "02:70:68:00:00:11"},
			btA("02:70:68:00:00:12"),
		},
	}
}

// TestDeviceInfoSiblingRoundTrip: a descriptor with siblings survives the
// extended encoding, and one without encodes byte-identically to the
// pre-identity wire (so legacy receivers keep decoding it).
func TestDeviceInfoSiblingRoundTrip(t *testing.T) {
	got := roundTrip(t, &DeviceInfo{Info: siblingInfo()}).(*DeviceInfo)
	if !reflect.DeepEqual(got.Info, siblingInfo()) {
		t.Fatalf("round trip changed the descriptor:\n%#v\n%#v", got.Info, siblingInfo())
	}

	plain := siblingInfo()
	plain.Siblings = nil
	var buf bytes.Buffer
	if err := Write(&buf, &DeviceInfo{Info: plain}); err != nil {
		t.Fatal(err)
	}
	// The legacy layout opens with the u16 name length — never the
	// extension marker.
	payload := buf.Bytes()[5:]
	if len(payload) >= 2 && payload[0] == 0xff && payload[1] == 0xff {
		t.Fatal("sibling-free descriptor used the extended encoding")
	}
}

// TestNeighborhoodSyncSiblingEntries: sibling-carrying entries survive the
// versioned sync framing, and their Hash covers the siblings (a sibling
// change must advance the storage generation and the table digest).
func TestNeighborhoodSyncSiblingEntries(t *testing.T) {
	en := NeighborEntry{Info: siblingInfo(), Jumps: 1, Bridge: btA("02:70:68:00:00:02"), QualitySum: 470, QualityMin: 235}
	msg := &NeighborhoodSync{Epoch: 3, FromGen: 1, ToGen: 2, Entries: []NeighborEntry{en}, DigestCount: 1, DigestHash: en.Hash()}
	got := roundTrip(t, msg).(*NeighborhoodSync)
	if !reflect.DeepEqual(got.Entries[0].Info.Siblings, en.Info.Siblings) {
		t.Fatalf("siblings lost in sync framing: %v", got.Entries[0].Info.Siblings)
	}

	stripped := StripSiblings([]NeighborEntry{en})[0]
	if stripped.Hash() == en.Hash() {
		t.Fatal("sibling advertisement is not hash-visible")
	}
	if len(en.Info.Siblings) == 0 {
		t.Fatal("StripSiblings mutated its input")
	}
	// A stripped entry hashes exactly as a never-sibling entry: the two
	// encode identically, which is what keeps legacy digests verifiable.
	plain := en
	plain.Info = en.Info.Clone()
	plain.Info.Siblings = nil
	if stripped.Hash() != plain.Hash() {
		t.Fatal("stripped entry hashes differently from a sibling-free one")
	}
}

// TestNeighborhoodAlwaysLegacyForm: the legacy full exchange must never
// emit extended entries, whatever the storage holds — pre-identity peers
// decode it.
func TestNeighborhoodAlwaysLegacyForm(t *testing.T) {
	en := NeighborEntry{Info: siblingInfo(), QualitySum: 240, QualityMin: 240}
	got := roundTrip(t, &Neighborhood{Entries: []NeighborEntry{en}}).(*Neighborhood)
	if len(got.Entries[0].Info.Siblings) != 0 {
		t.Fatalf("legacy neighbourhood carried siblings: %v", got.Entries[0].Info.Siblings)
	}
}

// TestSyncRequestFlagCompat: the capability byte is a trailing optional —
// a 16-byte pre-identity request decodes with Flags 0, a zero-flag request
// encodes to exactly those 16 bytes, and a flagged request round-trips.
func TestSyncRequestFlagCompat(t *testing.T) {
	var legacy bytes.Buffer
	if err := Write(&legacy, &NeighborhoodSyncRequest{Epoch: 7, Gen: 9}); err != nil {
		t.Fatal(err)
	}
	if got := len(legacy.Bytes()) - 5; got != 16 {
		t.Fatalf("zero-flag request payload = %d bytes, want the legacy 16", got)
	}
	m, err := Read(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	req := m.(*NeighborhoodSyncRequest)
	if req.Epoch != 7 || req.Gen != 9 || req.Flags != 0 {
		t.Fatalf("legacy request decoded as %+v", req)
	}

	got := roundTrip(t, &NeighborhoodSyncRequest{Epoch: 7, Gen: 9, Flags: SyncFlagSiblings}).(*NeighborhoodSyncRequest)
	if got.Flags != SyncFlagSiblings {
		t.Fatalf("flags lost: %+v", got)
	}
}

// TestExtendedEntryRejectsEmptySiblings: the extended form exists only to
// carry siblings; an empty list would re-encode legacy and break the
// canonical-encoding invariant, so the decoder rejects it.
func TestExtendedEntryRejectsEmptySiblings(t *testing.T) {
	e := &encoder{}
	e.u16(extMarker)
	e.u8(extVersion)
	e.info(device.Info{Name: "x", Addr: btA("02:70:68:00:00:01")})
	e.addrs(nil)
	d := &decoder{buf: e.buf}
	d.infoAny()
	if d.err == nil {
		t.Fatal("extended descriptor without siblings accepted")
	}
}
