package phproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"peerhood/internal/device"
)

func TestAggregateMessagesRoundTrip(t *testing.T) {
	msgs := []Message{
		&NeighborhoodSyncRequest{Epoch: 1, Gen: 2, Flags: SyncFlagSiblings, Scope: ScopeAggregate},
		&NeighborhoodSyncRequest{Scope: ScopeCell, Cell: 63},
		&NeighborhoodAggregate{Epoch: 9, Gen: 17, DigestCount: 0, DigestHash: 0},
		&NeighborhoodAggregate{
			Epoch: 9, Gen: 17,
			Cells: []CellSummary{
				{Cell: 0, Count: 3, TechMask: 0b10, BestQuality: 240, Hash: 0xA},
				{Cell: 63, Count: 1, TechMask: 0b110, BestQuality: 200, Hash: 0xB},
			},
			DigestCount: 4, DigestHash: 0xA ^ 0xB,
		},
		&NeighborhoodCell{Cell: 5, Epoch: 9, Gen: 17},
		&NeighborhoodCell{
			Cell: 5, Epoch: 9, Gen: 17,
			Entries: []NeighborEntry{sampleEntry("aa", 0), sampleEntry("bb", 2)},
			Hash:    0x77,
		},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v round trip:\n sent %#v\n got  %#v", m.Cmd(), m, got)
		}
	}
}

// TestScopeRidesAfterFlags pins the trailing-optional layout: a zero scope
// encodes byte-identically to pre-scope requests (with and without flags),
// and a non-zero scope forces the flags byte onto the wire so field order
// is preserved even when the flags are zero.
func TestScopeRidesAfterFlags(t *testing.T) {
	payloadLen := func(m Message) int {
		t.Helper()
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
		return buf.Len() - 5
	}
	if n := payloadLen(&NeighborhoodSyncRequest{Epoch: 1, Gen: 2}); n != 16 {
		t.Fatalf("flagless scope-less request payload = %d bytes, want the legacy 16", n)
	}
	if n := payloadLen(&NeighborhoodSyncRequest{Epoch: 1, Gen: 2, Flags: SyncFlagSiblings}); n != 17 {
		t.Fatalf("flagged scope-less request payload = %d bytes, want the legacy 17", n)
	}
	if n := payloadLen(&NeighborhoodSyncRequest{Epoch: 1, Gen: 2, Scope: ScopeAggregate}); n != 19 {
		t.Fatalf("flagless scoped request payload = %d bytes, want 19 (flags forced on)", n)
	}
}

func TestAggregateOversizeCellCountRejected(t *testing.T) {
	payload := make([]byte, 16) // epoch + gen
	payload = append(payload, NumAggCells+1)
	var hdr [5]byte
	hdr[0] = byte(CmdNeighborhoodAggregate)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	_, err := Read(bytes.NewReader(append(hdr[:], payload...)))
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

// TestCellOfStable pins the address-to-cell mapping as a wire constant:
// pure, in range, and sensitive to both the technology and the MAC (two
// sides disagreeing on a cell would make refinement silently lossy).
func TestCellOfStable(t *testing.T) {
	a := device.Addr{Tech: device.TechBluetooth, MAC: "aa:bb"}
	if CellOf(a) != CellOf(a) {
		t.Fatal("CellOf is not deterministic")
	}
	if c := CellOf(a); c >= NumAggCells {
		t.Fatalf("cell %d out of range", c)
	}
	b := device.Addr{Tech: device.TechWLAN, MAC: "aa:bb"}
	cells := map[uint8]bool{CellOf(a): true, CellOf(b): true}
	for i := 0; i < 256; i++ {
		cells[CellOf(device.Addr{Tech: device.TechWLAN, MAC: string(rune('a'+i%26)) + string(rune('0'+i%10))})] = true
	}
	if len(cells) < NumAggCells/2 {
		t.Fatalf("only %d cells hit across varied addresses — the hash is not spreading", len(cells))
	}
}
