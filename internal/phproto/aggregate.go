package phproto

import (
	"peerhood/internal/device"
)

// This file defines the hierarchical neighbourhood exchange: instead of
// mirroring a responder's whole table, a fetcher can ask for a per-cell
// AGGREGATE view — every address maps to one of NumAggCells hash cells, and
// the responder summarises each occupied cell as (count, tech mix, best
// route quality, XOR hash) — and then refine individual cells on demand
// with a CELL fetch that carries that cell's full rows. The cell XOR hashes
// are slices of the existing table digest (they XOR together to
// DigestHash), so a refined view stays end-to-end verifiable against the
// same fingerprint the flat exchange uses. Legacy peers are untouched:
// scope rides as trailing-optional bytes on NeighborhoodSyncRequest, and a
// legacy responder hangs up on them, which the fetcher treats as "not
// supported" exactly like every other extension here.

// NumAggCells is the number of aggregation cells an address space is hashed
// into. It bounds the aggregate view at O(NumAggCells) regardless of
// population, and both sides must agree on it, so it is a wire constant.
const NumAggCells = 64

// CellOf maps an address to its aggregation cell: FNV-64a over the
// canonical tech:MAC form, reduced modulo NumAggCells. A pure function of
// the address, so any node can place any device — including ones it has
// never heard of — without extra metadata.
func CellOf(a device.Addr) uint8 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(uint8(a.Tech))
	h *= prime64
	for i := 0; i < len(a.MAC); i++ {
		h ^= uint64(a.MAC[i])
		h *= prime64
	}
	return uint8(h % NumAggCells)
}

// Sync scope values (NeighborhoodSyncRequest.Scope). Zero is the flat
// exchange and encodes byte-identically to pre-scope requests.
const (
	// ScopeTable asks for the classic full/delta table exchange.
	ScopeTable uint8 = 0
	// ScopeAggregate asks for the per-cell aggregate view
	// (NeighborhoodAggregate).
	ScopeAggregate uint8 = 1
	// ScopeCell asks for the full rows of one cell (NeighborhoodCell); the
	// request's Cell field selects it.
	ScopeCell uint8 = 2
)

// CellSummary is one cell's aggregate digest.
type CellSummary struct {
	// Cell is the cell index (0..NumAggCells-1).
	Cell uint8
	// Count is the number of wire-visible entries hashing into the cell.
	Count uint32
	// TechMask is the OR of 1<<tech over the cell's entries — the tech mix.
	TechMask uint8
	// BestQuality is the best route quality in the cell: the maximum
	// QualityMin over its entries (the best weakest-hop quality reachable
	// through this responder).
	BestQuality uint8
	// Hash is the XOR of the cell's entry hashes — a slice of the table
	// digest: XOR-ing every cell's Hash yields DigestHash.
	Hash uint64
}

// NeighborhoodAggregate answers a ScopeAggregate sync request: the
// responder's table summarised per cell, plus the flat digest so the view
// ties back to the same fingerprint the classic exchange verifies against.
type NeighborhoodAggregate struct {
	// Epoch and Gen identify the table version this view renders, with the
	// same semantics as NeighborhoodSync.
	Epoch uint64
	Gen   uint64
	// Cells lists the occupied cells in ascending Cell order.
	Cells []CellSummary
	// DigestCount and DigestHash describe the full table (every cell
	// combined), as in NeighborhoodSync.
	DigestCount uint32
	DigestHash  uint64
}

// Cmd implements Message.
func (*NeighborhoodAggregate) Cmd() Command { return CmdNeighborhoodAggregate }

func (m *NeighborhoodAggregate) encodeTo(e *encoder) {
	e.u64(m.Epoch)
	e.u64(m.Gen)
	e.u8(uint8(len(m.Cells)))
	for _, c := range m.Cells {
		e.u8(c.Cell)
		e.u32(c.Count)
		e.u8(c.TechMask)
		e.u8(c.BestQuality)
		e.u64(c.Hash)
	}
	e.u32(m.DigestCount)
	e.u64(m.DigestHash)
}

func (m *NeighborhoodAggregate) decodeFrom(d *decoder) error {
	m.Epoch = d.u64()
	m.Gen = d.u64()
	n := int(d.u8())
	if d.err != nil {
		return d.err
	}
	if n > NumAggCells {
		d.failTooMany(n, "aggregate cells", NumAggCells)
		return d.err
	}
	if n > 0 {
		m.Cells = make([]CellSummary, 0, n)
		for i := 0; i < n; i++ {
			c := CellSummary{
				Cell:        d.u8(),
				Count:       d.u32(),
				TechMask:    d.u8(),
				BestQuality: d.u8(),
				Hash:        d.u64(),
			}
			if d.err != nil {
				return d.err
			}
			m.Cells = append(m.Cells, c)
		}
	}
	m.DigestCount = d.u32()
	m.DigestHash = d.u64()
	return d.err
}

// NeighborhoodCell answers a ScopeCell sync request: the full rows of one
// cell, with the cell's XOR hash so the fetcher can verify the refinement
// against the aggregate view it holds.
type NeighborhoodCell struct {
	// Cell is the refined cell's index.
	Cell uint8
	// Epoch and Gen identify the table version the rows were cut from.
	Epoch uint64
	Gen   uint64
	// Entries are every wire-visible row hashing into Cell, in address
	// order.
	Entries []NeighborEntry
	// Hash is the XOR of the entry hashes — must match the aggregate view's
	// CellSummary.Hash at the same Gen.
	Hash uint64
}

// Cmd implements Message.
func (*NeighborhoodCell) Cmd() Command { return CmdNeighborhoodCell }

func (m *NeighborhoodCell) encodeTo(e *encoder) {
	e.u8(m.Cell)
	e.u64(m.Epoch)
	e.u64(m.Gen)
	e.neighborEntries(m.Entries)
	e.u64(m.Hash)
}

func (m *NeighborhoodCell) decodeFrom(d *decoder) error {
	m.Cell = d.u8()
	m.Epoch = d.u64()
	m.Gen = d.u64()
	m.Entries = d.neighborEntries()
	m.Hash = d.u64()
	return d.err
}
