package phproto

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"hash/fnv"
	"testing"

	"peerhood/internal/device"
)

// legacyFrame builds a frame exactly the way the pre-pooling Write did: a
// fresh payload buffer, a fresh 5-byte header, one concatenation. The
// zero-copy Encoder must reproduce these bytes for every message or wire
// compatibility with deployed peers is broken.
func legacyFrame(t *testing.T, m Message) []byte {
	t.Helper()
	e := &encoder{}
	m.encodeTo(e)
	if len(e.buf) > MaxFrameSize {
		t.Fatalf("frame too large: %d", len(e.buf))
	}
	hdr := make([]byte, 5, 5+len(e.buf))
	hdr[0] = byte(m.Cmd())
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(e.buf)))
	return append(hdr, e.buf...)
}

// goldenMessages covers every message type, legacy and extended forms.
func goldenMessages() []Message {
	sib := []device.Addr{
		{Tech: device.TechBluetooth, MAC: "02:70:68:00:00:01"},
		{Tech: device.TechWLAN, MAC: "wl:01"},
	}
	return []Message{
		&InfoRequest{Kind: InfoDevice},
		&InfoRequest{Kind: InfoDigest},
		&DeviceInfo{Info: sampleInfo()},
		&DeviceInfo{Info: device.Info{Name: "multi", Addr: sib[0], Siblings: sib[1:]}},
		&ServiceList{Services: sampleInfo().Services},
		&Neighborhood{Entries: []NeighborEntry{{Info: sampleInfo(), Jumps: 2, QualitySum: 700, QualityMin: 231}}},
		&HelloNew{ServicePort: 12, ServiceName: "echo", ConnID: 77, HasClient: true, Client: sampleInfo()},
		&HelloNew{ServicePort: 12, ServiceName: "echo", ConnID: 78, Flags: HelloFlagContinuity, Token: 0x1122334455667788},
		&HelloBridge{Dest: sib[0], ServiceName: "pa", ServicePort: 12, ConnID: 99, TTL: 6, Reconnect: true},
		&HelloBridge{Dest: sib[0], ServiceName: "pa", ServicePort: 12, ConnID: 99, TTL: 6, Flags: HelloFlagResume, Token: 0x11, RecvSeq: 3},
		&HelloReconnect{ConnID: 123456789},
		&HelloResume{ConnID: 99, Token: 0x1122334455667788, RecvSeq: 7},
		&ResumeAck{OK: true, RecvSeq: 12},
		&Ack{OK: false, Reason: "no route"},
		&Data{Seq: 42, Payload: []byte("package-42")},
		&NeighborhoodSyncRequest{Epoch: 7, Gen: 9, Flags: SyncFlagSiblings},
		&NeighborhoodSync{Full: true, Epoch: 7, ToGen: 9, Entries: []NeighborEntry{{Info: sampleInfo()}}, DigestCount: 1, DigestHash: 0xdead},
		&NeighborhoodSync{Epoch: 7, FromGen: 3, ToGen: 9, Tombstones: sib, DigestCount: 0, DigestHash: 0},
		&EventSubscribe{Mask: 0x1ff},
		&EventNotice{Seq: 4, UnixNanos: 12345, Type: 3, Addr: sib[0], Quality: 222, Detail: "x"},
		&EventSubscribe{Mask: 0x1ff, Flags: EventSubFlagSpans},
		&EventNotice{Seq: 4, UnixNanos: 12345, Type: 3, Addr: sib[0], Quality: 222, Detail: "x", Span: 0xabcdef0102030405},
		&StatsRequest{Prefix: "peerhood_handover"},
		&Stats{UnixNanos: 99, Entries: []StatEntry{{Name: `peerhood_events_dropped_total{type="link-lost"}`, Value: 0x4000000000000000}}},
		&TraceSubscribe{Tail: 64},
		&TraceSpan{ID: 7, Parent: 3, Name: "handover.routing", Addr: "bt:01", StartUnixNanos: 5, EndUnixNanos: 9, Detail: "done"},
	}
}

// TestEncoderMatchesLegacyWire pins the pooled/zero-copy paths — the
// package-level Write and a reused Encoder — byte-identical to the legacy
// per-message-allocation framing, for every message form.
func TestEncoderMatchesLegacyWire(t *testing.T) {
	var enc Encoder
	for _, m := range goldenMessages() {
		want := legacyFrame(t, m)

		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("%v: Write: %v", m.Cmd(), err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%v: Write bytes diverge from legacy framing\n got  %x\n want %x", m.Cmd(), buf.Bytes(), want)
		}

		frame, err := enc.Encode(m)
		if err != nil {
			t.Fatalf("%v: Encode: %v", m.Cmd(), err)
		}
		if !bytes.Equal(frame, want) {
			t.Errorf("%v: Encoder bytes diverge from legacy framing\n got  %x\n want %x", m.Cmd(), frame, want)
		}
	}
}

// TestGoldenFrames pins exact wire bytes for representative frames, so a
// codec change that silently altered the encoding of deployed messages
// fails loudly rather than surviving as a self-consistent round trip.
func TestGoldenFrames(t *testing.T) {
	cases := []struct {
		name string
		msg  Message
		hex  string
	}{
		{
			name: "info-request",
			msg:  &InfoRequest{Kind: InfoNeighborhood},
			hex:  "010000000103",
		},
		{
			name: "ack-fail",
			msg:  &Ack{OK: false, Reason: "no route"},
			hex:  "08000000" + "0b" + "00" + "0008" + hex.EncodeToString([]byte("no route")),
		},
		{
			name: "hello-reconnect",
			msg:  &HelloReconnect{ConnID: 0x0102030405060708},
			hex:  "07000000080102030405060708",
		},
		{
			// A flagless PH_NEW must stay byte-identical to the pre-continuity
			// wire form: that identity IS the legacy interop story.
			name: "hello-new-flagless",
			msg:  &HelloNew{ServicePort: 12, ServiceName: "e", ConnID: 5},
			hex:  "050000000e" + "000c" + "0001" + "65" + "0000000000000005" + "00",
		},
		{
			name: "hello-new-continuity",
			msg:  &HelloNew{ServicePort: 12, ServiceName: "e", ConnID: 5, Flags: HelloFlagContinuity, Token: 0x10},
			hex:  "0500000017" + "000c" + "0001" + "65" + "0000000000000005" + "00" + "01" + "0000000000000010",
		},
		{
			name: "resume",
			msg:  &HelloResume{ConnID: 5, Token: 0x10, RecvSeq: 3},
			hex:  "1300000014" + "0000000000000005" + "0000000000000010" + "00000003",
		},
		{
			name: "resume-ack-ok",
			msg:  &ResumeAck{OK: true, RecvSeq: 9},
			hex:  "1400000007" + "01" + "0000" + "00000009",
		},
		{
			name: "sync-request-flagged",
			msg:  &NeighborhoodSyncRequest{Epoch: 1, Gen: 2, Flags: 1},
			hex:  "0a00000011" + "0000000000000001" + "0000000000000002" + "01",
		},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := Write(&buf, tc.msg); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := hex.EncodeToString(buf.Bytes()); got != tc.hex {
			t.Errorf("%s: frame = %s, want %s", tc.name, got, tc.hex)
		}
	}
}

// TestEncoderReuseDoesNotCorruptFrames drives one Encoder through frames of
// shrinking and growing sizes; every frame must decode back to its message
// (a stale-length or stale-suffix bug would surface as corruption).
func TestEncoderReuseDoesNotCorruptFrames(t *testing.T) {
	var enc Encoder
	msgs := goldenMessages()
	for i := 0; i < 3; i++ {
		for _, m := range msgs {
			frame, err := enc.Encode(m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Read(bytes.NewReader(frame))
			if err != nil {
				t.Fatalf("%v: decoding reused-encoder frame: %v", m.Cmd(), err)
			}
			if got.Cmd() != m.Cmd() {
				t.Fatalf("decoded %v, want %v", got.Cmd(), m.Cmd())
			}
		}
	}
}

// TestHashMatchesStdlibFNV pins the manual FNV-64a against hash/fnv: the
// storage digest protocol depends on every node computing identical entry
// hashes.
func TestHashMatchesStdlibFNV(t *testing.T) {
	for _, m := range goldenMessages() {
		e := &encoder{}
		m.encodeTo(e)
		h := fnv.New64a()
		_, _ = h.Write(e.buf)
		if got := appendHash64(e.buf); got != h.Sum64() {
			t.Fatalf("appendHash64 = %#x, fnv = %#x", got, h.Sum64())
		}
	}
}
