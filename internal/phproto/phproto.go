// Package phproto defines PeerHood's wire protocol: the commands exchanged
// on the daemon information port (device/service/neighbourhood fetching,
// fig 3.7) and on the library engine port (PH_NEW, PH_BRIDGE, PH_RECONNECT
// hellos and PH_OK/PH_FAIL acknowledgements, figs 2.5 and 4.3), with a
// compact binary framing.
//
// Frame layout: 1-byte command, 4-byte big-endian payload length, payload.
package phproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"peerhood/internal/device"
)

// Command identifies a frame type.
type Command uint8

// Wire commands. The PH_* names follow the thesis.
const (
	// CmdInfoRequest asks the daemon port for one information section.
	CmdInfoRequest Command = iota + 1
	// CmdDeviceInfo carries a device descriptor.
	CmdDeviceInfo
	// CmdServiceList carries the registered services of a device.
	CmdServiceList
	// CmdNeighborhood carries a device's routing table (DeviceStorage).
	CmdNeighborhood
	// CmdHelloNew opens an application connection to a service (PH_NEW).
	CmdHelloNew
	// CmdHelloBridge asks a bridge to extend the connection towards a
	// remote destination (PH_BRIDGE).
	CmdHelloBridge
	// CmdHelloReconnect re-attaches to an existing logical connection after
	// a handover (PH_RECONNECT).
	CmdHelloReconnect
	// CmdAck acknowledges a hello (PH_OK / PH_FAIL).
	CmdAck
	// CmdData carries one framed application payload; used by workloads
	// that need sequenced packages (task migration, §5.3).
	CmdData
	// CmdNeighborhoodSyncRequest opens a versioned neighbourhood fetch: the
	// fetcher states the responder epoch and generation it has already
	// merged, so the responder can answer with just the changes.
	CmdNeighborhoodSyncRequest
	// CmdNeighborhoodSync answers a sync request with either a DELTA
	// (changed entries + tombstones) or a FULL table, plus the responder's
	// table digest for end-to-end verification.
	CmdNeighborhoodSync
	// CmdDigest carries a storage digest (epoch, generation, entry count,
	// table hash) — the observability answer to InfoDigest.
	CmdDigest
	// CmdEventSubscribe opens a neighbourhood event stream on the library
	// engine port (EVENT_SUBSCRIBE): the subscriber states a type mask
	// and, after a PH_OK, receives EVENT frames until either side closes.
	CmdEventSubscribe
	// CmdEvent carries one neighbourhood event (EVENT) on a subscribed
	// stream.
	CmdEvent
	// CmdStatsRequest asks the daemon port for a snapshot of its telemetry
	// registry (STATS_REQUEST). Legacy daemons close the connection on it;
	// callers must treat that as "not supported".
	CmdStatsRequest
	// CmdStats answers a stats request with the flattened metric points.
	CmdStats
	// CmdTraceSubscribe opens a trace-span stream on the library engine
	// port (TRACE_SUBSCRIBE): after a PH_OK the subscriber receives
	// TRACE_SPAN frames until either side closes. Legacy daemons close the
	// connection on the subscribe.
	CmdTraceSubscribe
	// CmdTraceSpan carries one finished trace span on a subscribed stream.
	CmdTraceSpan
	// CmdHelloResume re-attaches to a continuity-enabled logical connection
	// after a handover (PH_RESUME): it proves the session identity (ConnID +
	// negotiated token) and states the client's receive position so the far
	// end can retransmit only the un-acked tail. Legacy engines close the
	// connection on it; callers fall back to PH_RECONNECT semantics.
	CmdHelloResume
	// CmdResumeAck answers a PH_RESUME with the responder's own receive
	// position (the resume offset the client retransmits from).
	CmdResumeAck
	// CmdNeighborhoodAggregate answers a ScopeAggregate sync request with
	// the per-cell aggregate view of the responder's table
	// (NEIGHBORHOOD_AGGREGATE). Legacy daemons close the connection on the
	// scoped request; callers fall back to the flat exchange.
	CmdNeighborhoodAggregate
	// CmdNeighborhoodCell answers a ScopeCell sync request with one cell's
	// full rows (NEIGHBORHOOD_CELL).
	CmdNeighborhoodCell
)

// String implements fmt.Stringer.
func (c Command) String() string {
	switch c {
	case CmdInfoRequest:
		return "INFO_REQUEST"
	case CmdDeviceInfo:
		return "DEVICE_INFO"
	case CmdServiceList:
		return "SERVICE_LIST"
	case CmdNeighborhood:
		return "NEIGHBORHOOD"
	case CmdHelloNew:
		return "PH_NEW"
	case CmdHelloBridge:
		return "PH_BRIDGE"
	case CmdHelloReconnect:
		return "PH_RECONNECT"
	case CmdAck:
		return "PH_ACK"
	case CmdData:
		return "PH_DATA"
	case CmdNeighborhoodSyncRequest:
		return "NEIGHBORHOOD_SYNC_REQUEST"
	case CmdNeighborhoodSync:
		return "NEIGHBORHOOD_SYNC"
	case CmdDigest:
		return "DIGEST"
	case CmdEventSubscribe:
		return "EVENT_SUBSCRIBE"
	case CmdEvent:
		return "EVENT"
	case CmdStatsRequest:
		return "STATS_REQUEST"
	case CmdStats:
		return "STATS"
	case CmdTraceSubscribe:
		return "TRACE_SUBSCRIBE"
	case CmdTraceSpan:
		return "TRACE_SPAN"
	case CmdHelloResume:
		return "PH_RESUME"
	case CmdResumeAck:
		return "PH_RESUME_ACK"
	case CmdNeighborhoodAggregate:
		return "NEIGHBORHOOD_AGGREGATE"
	case CmdNeighborhoodCell:
		return "NEIGHBORHOOD_CELL"
	default:
		return fmt.Sprintf("cmd(%d)", uint8(c))
	}
}

// Encoding limits. Frames beyond these are rejected before allocation, so a
// corrupt or hostile peer cannot force large allocations.
const (
	MaxFrameSize  = 1 << 20 // 1 MiB
	MaxStringLen  = 1 << 12
	MaxServices   = 256
	MaxEntries    = 4096
	MaxDataChunk  = MaxFrameSize - 64
	maxNameLength = MaxStringLen
)

// Codec errors.
var (
	// ErrFrameTooLarge reports a frame whose declared length exceeds
	// MaxFrameSize.
	ErrFrameTooLarge = errors.New("phproto: frame too large")
	// ErrMalformed reports a syntactically invalid payload.
	ErrMalformed = errors.New("phproto: malformed message")
	// ErrUnknownCommand reports an unrecognised command byte.
	ErrUnknownCommand = errors.New("phproto: unknown command")
)

// InfoKind selects which section an InfoRequest asks for. The previous
// PeerHood fetched device, prototype, service, and neighbourhood information
// over four short connections (fig 3.7); this implementation follows the
// thesis' own suggestion to unify them over one connection, as a sequence of
// requests.
type InfoKind uint8

// Information sections.
const (
	InfoDevice InfoKind = iota + 1
	InfoServices
	InfoNeighborhood
	// InfoDigest asks for the responder's storage digest (epoch,
	// generation, entry count, table hash). Legacy daemons close the
	// connection on it; callers must treat that as "not supported".
	InfoDigest
	// InfoDeviceEx asks for the device descriptor in its extended form,
	// which additionally advertises the responder's sibling interface
	// addresses (the cross-interface identity plane). Legacy daemons close
	// the connection on it; callers fall back to InfoDevice.
	InfoDeviceEx
)

// String implements fmt.Stringer.
func (k InfoKind) String() string {
	switch k {
	case InfoDevice:
		return "device"
	case InfoServices:
		return "services"
	case InfoNeighborhood:
		return "neighborhood"
	case InfoDigest:
		return "digest"
	case InfoDeviceEx:
		return "device-ex"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is one decoded protocol frame.
type Message interface {
	// Cmd returns the frame's command byte.
	Cmd() Command
	encodeTo(e *encoder)
	decodeFrom(d *decoder) error
}

// InfoRequest asks the daemon port for one information section.
type InfoRequest struct {
	Kind InfoKind
}

// Cmd implements Message.
func (*InfoRequest) Cmd() Command { return CmdInfoRequest }

func (m *InfoRequest) encodeTo(e *encoder) { e.u8(uint8(m.Kind)) }

func (m *InfoRequest) decodeFrom(d *decoder) error {
	m.Kind = InfoKind(d.u8())
	return d.err
}

// DeviceInfo carries one device descriptor. A descriptor with sibling
// interface addresses encodes in the extended form, which only InfoDeviceEx
// requesters receive — answers to plain InfoDevice are stripped by the
// responder so legacy fetchers keep decoding them.
type DeviceInfo struct {
	Info device.Info
}

// Cmd implements Message.
func (*DeviceInfo) Cmd() Command { return CmdDeviceInfo }

func (m *DeviceInfo) encodeTo(e *encoder) { e.infoAny(m.Info) }

func (m *DeviceInfo) decodeFrom(d *decoder) error {
	m.Info = d.infoAny()
	return d.err
}

// ServiceList carries the services registered on a device.
type ServiceList struct {
	Services []device.ServiceInfo
}

// Cmd implements Message.
func (*ServiceList) Cmd() Command { return CmdServiceList }

func (m *ServiceList) encodeTo(e *encoder) { e.services(m.Services) }

func (m *ServiceList) decodeFrom(d *decoder) error {
	m.Services = d.services()
	return d.err
}

// NeighborEntry is one row of a transmitted DeviceStorage: the remote
// device's descriptor plus the routing metadata the thesis adds in ch. 3 —
// jump count, bridge (next hop), and the route's link-quality aggregates.
type NeighborEntry struct {
	Info device.Info
	// Jumps is the hop count from the sender to Info's device; direct
	// neighbours have 0 (§3.3).
	Jumps uint8
	// Bridge is the sender's next hop towards the device; zero for direct
	// neighbours.
	Bridge device.Addr
	// QualitySum is the sum of per-hop link qualities along the sender's
	// route (the §3.4.1 addition rule).
	QualitySum uint32
	// QualityMin is the weakest per-hop link quality along the route (used
	// for the 230-threshold acceptance rule, fig 3.9).
	QualityMin uint8
}

// Neighborhood carries a device's routing table. It is the legacy full
// exchange, fetched by peers that may predate the identity plane, so it
// always encodes in the legacy entry form: sibling advertisements are
// stripped at encode time (identity-capable peers use the versioned sync
// exchange instead, which negotiates the extended form).
type Neighborhood struct {
	Entries []NeighborEntry
}

// Cmd implements Message.
func (*Neighborhood) Cmd() Command { return CmdNeighborhood }

func (m *Neighborhood) encodeTo(e *encoder) { e.neighborEntries(StripSiblings(m.Entries)) }
func (m *Neighborhood) decodeFrom(d *decoder) error {
	m.Entries = d.neighborEntries()
	return d.err
}

// Hello continuity flags: the negotiated-extension bits a continuity-capable
// caller appends to its hello. A legacy decoder rejects the trailing bytes
// and hangs up, which the caller treats as "not supported" and retries
// flagless — the same fallback discipline as every other extension here.
const (
	// HelloFlagContinuity asks the far end to enable the session-continuity
	// window (sequence-numbered framing + resume) on this connection.
	HelloFlagContinuity uint8 = 1 << 0
	// HelloFlagResume marks a bridged chain's final hop as a PH_RESUME
	// re-attachment rather than a PH_RECONNECT.
	HelloFlagResume uint8 = 1 << 1
)

// HelloNew opens an application connection to a service. The optional
// client descriptor implements the thesis' §5.3 "method 2": sending the
// client's identity up front so a server can reconnect to return results
// after a disconnection.
type HelloNew struct {
	ServicePort uint16
	ServiceName string
	ConnID      uint64
	// HasClient marks Client as meaningful.
	HasClient bool
	Client    device.Info
	// Flags carries the continuity extension bits; zero encodes in the
	// legacy form so flagless hellos stay byte-identical on the wire.
	Flags uint8
	// Token is the session-continuity secret proving later PH_RESUME calls
	// come from this connection's originator. Meaningful when Flags has
	// HelloFlagContinuity.
	Token uint64
}

// Cmd implements Message.
func (*HelloNew) Cmd() Command { return CmdHelloNew }

func (m *HelloNew) encodeTo(e *encoder) {
	e.u16(m.ServicePort)
	e.str(m.ServiceName)
	e.u64(m.ConnID)
	if m.HasClient {
		e.u8(1)
		e.info(m.Client)
	} else {
		e.u8(0)
	}
	if m.Flags != 0 {
		e.u8(m.Flags)
		e.u64(m.Token)
	}
}

func (m *HelloNew) decodeFrom(d *decoder) error {
	m.ServicePort = d.u16()
	m.ServiceName = d.str()
	m.ConnID = d.u64()
	if d.u8() == 1 {
		m.HasClient = true
		m.Client = d.info()
	}
	if d.more() {
		m.Flags = d.u8()
		m.Token = d.u64()
	}
	return d.err
}

// HelloBridge asks a bridge node to extend the connection to Dest's
// service, possibly through further bridges (fig 4.3). TTL bounds the chain
// length so routing loops cannot relay forever.
type HelloBridge struct {
	Dest        device.Addr
	ServiceName string
	ServicePort uint16
	ConnID      uint64
	TTL         uint8
	// Reconnect marks the chain as a routing-handover re-attachment: the
	// final hop delivers a PH_RECONNECT instead of a PH_NEW, so the far
	// end substitutes the transport under connection ConnID (§5.2.1).
	Reconnect bool
	// HasClient/Client mirror HelloNew and are forwarded hop by hop.
	HasClient bool
	Client    device.Info
	// Flags/Token/RecvSeq carry the continuity extension hop by hop: with
	// HelloFlagContinuity the final PH_NEW negotiates the window; with
	// HelloFlagResume the final hop delivers a PH_RESUME (Token proves the
	// identity, RecvSeq is the originator's receive position) and the
	// endpoint's PH_RESUME_ACK propagates back through the chain. Zero
	// flags encode in the legacy form.
	Flags   uint8
	Token   uint64
	RecvSeq uint32
}

// Cmd implements Message.
func (*HelloBridge) Cmd() Command { return CmdHelloBridge }

func (m *HelloBridge) encodeTo(e *encoder) {
	e.addr(m.Dest)
	e.str(m.ServiceName)
	e.u16(m.ServicePort)
	e.u64(m.ConnID)
	e.u8(m.TTL)
	if m.Reconnect {
		e.u8(1)
	} else {
		e.u8(0)
	}
	if m.HasClient {
		e.u8(1)
		e.info(m.Client)
	} else {
		e.u8(0)
	}
	if m.Flags != 0 {
		e.u8(m.Flags)
		e.u64(m.Token)
		e.u32(m.RecvSeq)
	}
}

func (m *HelloBridge) decodeFrom(d *decoder) error {
	m.Dest = d.addr()
	m.ServiceName = d.str()
	m.ServicePort = d.u16()
	m.ConnID = d.u64()
	m.TTL = d.u8()
	m.Reconnect = d.u8() == 1
	if d.u8() == 1 {
		m.HasClient = true
		m.Client = d.info()
	}
	if d.more() {
		m.Flags = d.u8()
		m.Token = d.u64()
		m.RecvSeq = d.u32()
	}
	return d.err
}

// HelloReconnect re-attaches to the logical connection ConnID after a
// routing handover; the engine matches it against monitored connections and
// substitutes the transport underneath the application (§5.2.1).
type HelloReconnect struct {
	ConnID uint64
}

// Cmd implements Message.
func (*HelloReconnect) Cmd() Command { return CmdHelloReconnect }

func (m *HelloReconnect) encodeTo(e *encoder) { e.u64(m.ConnID) }

func (m *HelloReconnect) decodeFrom(d *decoder) error {
	m.ConnID = d.u64()
	return d.err
}

// HelloResume re-attaches to a continuity-enabled logical connection after
// a handover. Unlike PH_RECONNECT it carries the session token negotiated at
// PH_NEW time and the caller's cumulative receive position, so both ends can
// retransmit exactly the un-acked tail over the new transport instead of
// abandoning it.
type HelloResume struct {
	ConnID uint64
	// Token must match the token the originator sent in its PH_NEW.
	Token uint64
	// RecvSeq is the caller's cumulative receive position: the highest
	// in-order frame sequence it has delivered.
	RecvSeq uint32
}

// Cmd implements Message.
func (*HelloResume) Cmd() Command { return CmdHelloResume }

func (m *HelloResume) encodeTo(e *encoder) {
	e.u64(m.ConnID)
	e.u64(m.Token)
	e.u32(m.RecvSeq)
}

func (m *HelloResume) decodeFrom(d *decoder) error {
	m.ConnID = d.u64()
	m.Token = d.u64()
	m.RecvSeq = d.u32()
	return d.err
}

// ResumeAck answers a PH_RESUME: on OK it carries the responder's own
// cumulative receive position, the offset from which the caller replays its
// un-acked frames. In a bridged chain each hop copies the endpoint's RecvSeq
// back so the originator sees the true far-end position.
type ResumeAck struct {
	OK     bool
	Reason string
	// RecvSeq is the responder's receive position (meaningful when OK).
	RecvSeq uint32
}

// Cmd implements Message.
func (*ResumeAck) Cmd() Command { return CmdResumeAck }

func (m *ResumeAck) encodeTo(e *encoder) {
	if m.OK {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.str(m.Reason)
	e.u32(m.RecvSeq)
}

func (m *ResumeAck) decodeFrom(d *decoder) error {
	m.OK = d.u8() == 1
	m.Reason = d.str()
	m.RecvSeq = d.u32()
	return d.err
}

// Ack acknowledges a hello: PH_OK (OK=true) or PH_FAIL with a reason. In a
// bridged chain the ack propagates back so the originator learns whether
// the whole chain came up (§4.1).
type Ack struct {
	OK     bool
	Reason string
}

// Cmd implements Message.
func (*Ack) Cmd() Command { return CmdAck }

func (m *Ack) encodeTo(e *encoder) {
	if m.OK {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.str(m.Reason)
}

func (m *Ack) decodeFrom(d *decoder) error {
	m.OK = d.u8() == 1
	m.Reason = d.str()
	return d.err
}

// Data carries one sequenced application payload.
type Data struct {
	Seq     uint32
	Payload []byte
}

// Cmd implements Message.
func (*Data) Cmd() Command { return CmdData }

func (m *Data) encodeTo(e *encoder) {
	e.u32(m.Seq)
	e.bytes(m.Payload)
}

func (m *Data) decodeFrom(d *decoder) error {
	m.Seq = d.u32()
	m.Payload = d.bytesLimited(MaxDataChunk)
	return d.err
}

// newMessage returns an empty message value for cmd.
func newMessage(cmd Command) (Message, error) {
	switch cmd {
	case CmdInfoRequest:
		return &InfoRequest{}, nil
	case CmdDeviceInfo:
		return &DeviceInfo{}, nil
	case CmdServiceList:
		return &ServiceList{}, nil
	case CmdNeighborhood:
		return &Neighborhood{}, nil
	case CmdHelloNew:
		return &HelloNew{}, nil
	case CmdHelloBridge:
		return &HelloBridge{}, nil
	case CmdHelloReconnect:
		return &HelloReconnect{}, nil
	case CmdAck:
		return &Ack{}, nil
	case CmdData:
		return &Data{}, nil
	case CmdNeighborhoodSyncRequest:
		return &NeighborhoodSyncRequest{}, nil
	case CmdNeighborhoodSync:
		return &NeighborhoodSync{}, nil
	case CmdDigest:
		return &DigestInfo{}, nil
	case CmdEventSubscribe:
		return &EventSubscribe{}, nil
	case CmdEvent:
		return &EventNotice{}, nil
	case CmdStatsRequest:
		return &StatsRequest{}, nil
	case CmdStats:
		return &Stats{}, nil
	case CmdTraceSubscribe:
		return &TraceSubscribe{}, nil
	case CmdTraceSpan:
		return &TraceSpan{}, nil
	case CmdHelloResume:
		return &HelloResume{}, nil
	case CmdResumeAck:
		return &ResumeAck{}, nil
	case CmdNeighborhoodAggregate:
		return &NeighborhoodAggregate{}, nil
	case CmdNeighborhoodCell:
		return &NeighborhoodCell{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownCommand, uint8(cmd))
	}
}

// Write encodes m as one frame onto w, using a pooled Encoder so the
// steady-state cost is the encode itself, not buffer churn.
func Write(w io.Writer, m Message) error {
	enc := getEncoder()
	err := enc.WriteMsg(w, m)
	putEncoder(enc)
	return err
}

// Read decodes the next frame from r. The payload is read into a pooled
// buffer; decoded messages never alias it (strings and byte fields are
// copied out), so the buffer is recycled on return.
func Read(r io.Reader) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	cmd := Command(hdr[0])
	size := binary.BigEndian.Uint32(hdr[1:5])
	if size > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, size)
	}
	bp := getReadBuf(int(size))
	defer putReadBuf(bp)
	payload := (*bp)[:size]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	m, err := newMessage(cmd)
	if err != nil {
		return nil, err
	}
	d := &decoder{buf: payload}
	if err := m.decodeFrom(d); err != nil {
		return nil, err
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("%w: %d trailing bytes after %v", ErrMalformed, len(d.buf)-d.off, cmd)
	}
	return m, nil
}

// ReadExpect reads the next frame and requires it to be of type T.
func ReadExpect[T Message](r io.Reader) (T, error) {
	var zero T
	m, err := Read(r)
	if err != nil {
		return zero, err
	}
	t, ok := m.(T)
	if !ok {
		return zero, fmt.Errorf("%w: got %v", ErrMalformed, m.Cmd())
	}
	return t, nil
}
