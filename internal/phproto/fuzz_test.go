package phproto

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"peerhood/internal/device"
)

// fuzzSeedMessages covers every frame type, weighted towards the
// structured payloads (NEIGHBORHOOD_SYNC, EVENT, neighbourhood tables)
// where decoder bugs would hide. The same encodings are checked in under
// testdata/fuzz/FuzzDecode as the committed seed corpus.
func fuzzSeedMessages() []Message {
	info := device.Info{
		Name:     "pda",
		Addr:     device.Addr{Tech: device.TechBluetooth, MAC: "02:70:68:00:00:01"},
		Checksum: 0xdeadbeef,
		Mobility: device.Dynamic,
		Services: []device.ServiceInfo{{Name: "echo", Attr: "v=1", Port: 4001}},
	}
	entry := NeighborEntry{
		Info:       info,
		Jumps:      2,
		Bridge:     device.Addr{Tech: device.TechBluetooth, MAC: "02:70:68:00:00:02"},
		QualitySum: 460,
		QualityMin: 231,
	}
	dual := info
	dual.Siblings = []device.Addr{
		{Tech: device.TechWLAN, MAC: "02:70:68:00:00:08"},
		{Tech: device.TechGPRS, MAC: "02:70:68:00:00:09"},
	}
	dualEntry := entry
	dualEntry.Info = dual
	return []Message{
		&InfoRequest{Kind: InfoNeighborhood},
		&InfoRequest{Kind: InfoDeviceEx},
		&DeviceInfo{Info: info},
		&DeviceInfo{Info: dual},
		&NeighborhoodSyncRequest{Epoch: 11, Gen: 42, Flags: SyncFlagSiblings},
		FullSync(12, 45, []NeighborEntry{dualEntry, entry}),
		&ServiceList{Services: info.Services},
		&Neighborhood{Entries: []NeighborEntry{entry}},
		&HelloNew{ServicePort: 4001, ServiceName: "echo", ConnID: 7, HasClient: true, Client: info},
		&HelloBridge{Dest: entry.Bridge, ServiceName: "echo", ServicePort: 4001, ConnID: 7, TTL: 3, Reconnect: true},
		&HelloReconnect{ConnID: 7},
		&HelloNew{ServicePort: 4001, ServiceName: "echo", ConnID: 8, Flags: HelloFlagContinuity, Token: 0xabad1dea},
		&HelloBridge{Dest: entry.Bridge, ServiceName: "echo", ServicePort: 4001, ConnID: 8, TTL: 3, Flags: HelloFlagResume, Token: 0xabad1dea, RecvSeq: 5},
		&HelloResume{ConnID: 8, Token: 0xabad1dea, RecvSeq: 5},
		&ResumeAck{OK: true, RecvSeq: 2},
		&Ack{OK: false, Reason: "no route"},
		&Data{Seq: 9, Payload: []byte("task package")},
		&NeighborhoodSyncRequest{Epoch: 11, Gen: 42},
		&NeighborhoodSync{
			Full:        false,
			Epoch:       11,
			FromGen:     42,
			ToGen:       44,
			Entries:     []NeighborEntry{entry},
			Tombstones:  []device.Addr{{Tech: device.TechBluetooth, MAC: "02:70:68:00:00:03"}},
			DigestCount: 5,
			DigestHash:  0x1234567890abcdef,
		},
		FullSync(11, 44, []NeighborEntry{entry}),
		&DigestInfo{Epoch: 11, Gen: 44, Entries: 5, Hash: 0xfeed},
		&EventSubscribe{Mask: 0b10110},
		&EventNotice{
			Seq: 88, UnixNanos: 1_700_000_000_000_000_000, Type: 3,
			Addr: entry.Bridge, Quality: 227, TimeToThreshold: 4 * time.Second,
			Detail: "slope=-1.2/s",
		},
	}
}

// FuzzDecode fuzzes the frame decoder with raw wire bytes: any input may
// error, but it must never panic, never over-allocate past the frame
// caps, and anything that decodes must survive an encode/decode round
// trip unchanged (the decoder accepts only canonical encodings, since
// Read rejects trailing bytes).
func FuzzDecode(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			f.Fatalf("seed encode %v: %v", m.Cmd(), err)
		}
		f.Add(buf.Bytes())
	}
	// A few malformed shapes: truncated header, oversized declared length,
	// unknown command, trailing garbage.
	f.Add([]byte{byte(CmdAck)})
	f.Add([]byte{byte(CmdNeighborhood), 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x77, 0, 0, 0, 0})
	f.Add([]byte{byte(CmdHelloReconnect), 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 1, 0xaa})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("re-encoding decoded %v: %v", m.Cmd(), err)
		}
		var enc Encoder
		if frame, err := enc.Encode(m); err != nil || !bytes.Equal(frame, buf.Bytes()) {
			t.Fatalf("Encoder.Encode diverges from Write for %v (err %v)", m.Cmd(), err)
		}
		m2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decoding %v: %v", m.Cmd(), err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip changed %v:\n%#v\n%#v", m.Cmd(), m, m2)
		}
	})
}
