package phproto

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// This file is the allocation-flat framing layer. The original Write built
// every frame with a fresh `make([]byte, 5, ...)` header plus an append of
// the separately-grown payload buffer, and Read allocated a payload slice
// per frame; on a daemon serving discovery fetches, sync responses, and
// event streams continuously, those per-message allocations dominated the
// steady-state heap churn. Frames are now built append-style into a
// reusable Encoder buffer (header reserved up front, length patched in
// after encoding) and read into pooled payload buffers. The wire bytes are
// unchanged — golden tests pin them against the legacy layout.

// Encoder renders protocol frames into one reusable buffer. The zero value
// is ready to use. An Encoder is not safe for concurrent use; the
// package-level Write uses a pool of them, and long-lived single-writer
// loops (event streams, responders) can hold their own to stay allocation-
// free regardless of pool pressure.
type Encoder struct {
	enc encoder
}

// Encode renders m as one complete frame — command byte, big-endian
// length, payload — into the Encoder's internal buffer and returns it.
// The returned slice is only valid until the next Encode/WriteMsg call on
// this Encoder; callers that keep frames must copy them.
func (enc *Encoder) Encode(m Message) ([]byte, error) {
	// Reserve the 5-byte header, encode the payload after it, then patch
	// the header in place: one buffer, no copy.
	enc.enc.buf = append(enc.enc.buf[:0], 0, 0, 0, 0, 0)
	m.encodeTo(&enc.enc)
	frame := enc.enc.buf
	payload := len(frame) - frameHeaderSize
	if payload > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, payload)
	}
	frame[0] = byte(m.Cmd())
	binary.BigEndian.PutUint32(frame[1:frameHeaderSize], uint32(payload))
	return frame, nil
}

// WriteMsg encodes m and writes the complete frame to w as a single Write
// call (frames must not interleave on shared transports, so the header and
// payload always travel in one Write).
func (enc *Encoder) WriteMsg(w io.Writer, m Message) error {
	frame, err := enc.Encode(m)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// frameHeaderSize is the 1-byte command plus 4-byte payload length.
const frameHeaderSize = 5

// maxPooledBuf caps the buffers retained by the encoder and read pools: a
// rare huge frame (up to MaxFrameSize) must not pin megabytes in every
// pool slot forever.
const maxPooledBuf = 1 << 16

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// getEncoder/putEncoder manage the shared encoder pool. Oversized buffers
// are dropped rather than pooled.
func getEncoder() *Encoder { return encoderPool.Get().(*Encoder) }

func putEncoder(enc *Encoder) {
	if cap(enc.enc.buf) <= maxPooledBuf {
		encoderPool.Put(enc)
	}
}

var readBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 2048)
		return &b
	},
}

// getReadBuf returns a pooled payload buffer of at least n bytes.
func getReadBuf(n int) *[]byte {
	bp := readBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return bp
}

func putReadBuf(bp *[]byte) {
	if cap(*bp) <= maxPooledBuf {
		readBufPool.Put(bp)
	}
}

// appendHash64 is FNV-64a over b, allocation-free (hash/fnv's New64a
// escapes to the heap through the hash.Hash64 interface).
func appendHash64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
