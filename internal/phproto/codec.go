package phproto

import (
	"encoding/binary"
	"fmt"

	"peerhood/internal/device"
)

// extMarker introduces an extended (sibling-carrying) encoding of a device
// descriptor or neighbourhood entry. Both start, in their legacy form, with
// a u16 string length that the codec caps at MaxStringLen (4096), so 0xFFFF
// can never open a legacy payload: a decoder that sees it knows an
// extension version byte and the extended layout follow, and a legacy
// payload decodes exactly as before. Extended forms are only sent to peers
// that negotiated them (InfoDeviceEx, SyncFlagSiblings).
const extMarker uint16 = 0xFFFF

// extVersion is the current extended-encoding version.
const extVersion uint8 = 1

// encoder builds a frame payload. Write order must mirror decoder exactly.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}
func (e *encoder) u32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}
func (e *encoder) u64(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

func (e *encoder) str(s string) {
	if len(s) > MaxStringLen {
		s = s[:MaxStringLen]
	}
	e.u16(uint16(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) addr(a device.Addr) {
	e.u8(uint8(a.Tech))
	e.str(a.MAC)
}

func (e *encoder) services(ss []device.ServiceInfo) {
	n := len(ss)
	if n > MaxServices {
		n = MaxServices
	}
	e.u16(uint16(n))
	for _, s := range ss[:n] {
		e.str(s.Name)
		e.str(s.Attr)
		e.u16(s.Port)
	}
}

// info writes the legacy descriptor layout. Siblings are NOT written here:
// they ride in the extended forms (infoAny, neighborEntry) so every message
// that embeds a descriptor without negotiation (hellos) stays legacy.
func (e *encoder) info(i device.Info) {
	e.str(i.Name)
	e.addr(i.Addr)
	e.u32(i.Checksum)
	e.u8(uint8(i.Mobility))
	e.services(i.Services)
}

// infoAny writes i in the extended form when it carries siblings and the
// legacy form otherwise, so descriptors without siblings encode (and hash)
// byte-identically to the pre-identity wire.
func (e *encoder) infoAny(i device.Info) {
	if len(i.Siblings) == 0 {
		e.info(i)
		return
	}
	e.u16(extMarker)
	e.u8(extVersion)
	e.info(i)
	e.addrs(i.Siblings)
}

// neighborEntry writes the entry, using the extended form only when its
// descriptor advertises siblings (see infoAny for the compatibility rule).
// Senders serving legacy peers must strip siblings first (StripSiblings).
func (e *encoder) neighborEntry(en NeighborEntry) {
	if len(en.Info.Siblings) == 0 {
		e.legacyNeighborEntry(en)
		return
	}
	e.u16(extMarker)
	e.u8(extVersion)
	e.legacyNeighborEntry(en)
	e.addrs(en.Info.Siblings)
}

func (e *encoder) legacyNeighborEntry(en NeighborEntry) {
	e.info(en.Info)
	e.u8(en.Jumps)
	e.addr(en.Bridge)
	e.u32(en.QualitySum)
	e.u8(en.QualityMin)
}

func (e *encoder) neighborEntries(entries []NeighborEntry) {
	e.u16(uint16(len(entries)))
	for _, en := range entries {
		e.neighborEntry(en)
	}
}

func (e *encoder) addrs(as []device.Addr) {
	e.u16(uint16(len(as)))
	for _, a := range as {
		e.addr(a)
	}
}

// decoder consumes a frame payload. The first error sticks; all subsequent
// reads return zero values, so message decoders can read unconditionally
// and check d.err once.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s at offset %d", ErrMalformed, what, d.off)
	}
}

// failTooMany reports a declared element count above the decodable cap —
// the frame read fine, it just announces more than any valid sender emits.
func (d *decoder) failTooMany(n int, what string, max int) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %d %s (max %d)", ErrMalformed, n, what, max)
	}
}

// peekExt reports whether the next two bytes announce an extended encoding,
// without consuming anything. A short remainder is simply "not extended" —
// the legacy decode path will produce the precise truncation error.
func (d *decoder) peekExt() bool {
	if d.err != nil || d.off+2 > len(d.buf) {
		return false
	}
	return binary.BigEndian.Uint16(d.buf[d.off:d.off+2]) == extMarker
}

// more reports whether undecoded payload bytes remain. Messages use it to
// decode trailing-optional fields: a newer sender appends them only when
// non-zero, an older decoder that never looks fails Read's trailing-bytes
// check and closes the connection — which is exactly the legacy-fallback
// signal the negotiated extensions rely on.
func (d *decoder) more() bool {
	return d.err == nil && d.off < len(d.buf)
}

// extHeader consumes an extended-encoding introducer (marker + version).
func (d *decoder) extHeader() {
	d.u16() // marker, already peeked
	if v := d.u8(); d.err == nil && v != extVersion {
		d.err = fmt.Errorf("%w: unsupported extension version %d", ErrMalformed, v)
	}
}

func (d *decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2, "u16")
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) str() string {
	n := int(d.u16())
	if n > MaxStringLen {
		d.fail("string length")
		return ""
	}
	b := d.take(n, "string")
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *decoder) bytesLimited(maxLen int) []byte {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n > maxLen {
		d.fail("bytes length")
		return nil
	}
	if n == 0 {
		return nil
	}
	b := d.take(n, "bytes")
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

func (d *decoder) addr() device.Addr {
	t := device.Tech(d.u8())
	mac := d.str()
	if d.err != nil {
		return device.Addr{}
	}
	return device.Addr{Tech: t, MAC: mac}
}

func (d *decoder) services() []device.ServiceInfo {
	n := int(d.u16())
	if d.err != nil {
		return nil
	}
	if n > MaxServices {
		d.failTooMany(n, "services", MaxServices)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]device.ServiceInfo, 0, n)
	for i := 0; i < n; i++ {
		s := device.ServiceInfo{Name: d.str(), Attr: d.str(), Port: d.u16()}
		if d.err != nil {
			return nil
		}
		out = append(out, s)
	}
	return out
}

func (d *decoder) neighborEntry() NeighborEntry {
	ext := d.peekExt()
	if ext {
		d.extHeader()
	}
	var en NeighborEntry
	en.Info = d.info()
	en.Jumps = d.u8()
	en.Bridge = d.addr()
	en.QualitySum = d.u32()
	en.QualityMin = d.u8()
	if ext {
		en.Info.Siblings = d.addrs()
		if d.err == nil && len(en.Info.Siblings) == 0 {
			// The extended form exists only to carry siblings; an empty list
			// would re-encode in the legacy form and break the canonical-
			// encoding invariant the fuzz round trip pins.
			d.err = fmt.Errorf("%w: extended entry without siblings", ErrMalformed)
		}
	}
	return en
}

// infoAny decodes a descriptor in either the legacy or the extended form
// (see encoder.infoAny).
func (d *decoder) infoAny() device.Info {
	ext := d.peekExt()
	if ext {
		d.extHeader()
	}
	i := d.info()
	if ext {
		i.Siblings = d.addrs()
		if d.err == nil && len(i.Siblings) == 0 {
			d.err = fmt.Errorf("%w: extended descriptor without siblings", ErrMalformed)
		}
	}
	return i
}

func (d *decoder) neighborEntries() []NeighborEntry {
	n := int(d.u16())
	if d.err != nil {
		return nil
	}
	if n > MaxEntries {
		d.failTooMany(n, "neighbourhood entries", MaxEntries)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]NeighborEntry, 0, n)
	for i := 0; i < n; i++ {
		en := d.neighborEntry()
		if d.err != nil {
			return nil
		}
		out = append(out, en)
	}
	return out
}

func (d *decoder) addrs() []device.Addr {
	n := int(d.u16())
	if d.err != nil {
		return nil
	}
	if n > MaxEntries {
		d.failTooMany(n, "addresses", MaxEntries)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]device.Addr, 0, n)
	for i := 0; i < n; i++ {
		a := d.addr()
		if d.err != nil {
			return nil
		}
		out = append(out, a)
	}
	return out
}

func (d *decoder) info() device.Info {
	i := device.Info{
		Name:     d.str(),
		Addr:     d.addr(),
		Checksum: d.u32(),
		Mobility: device.Mobility(d.u8()),
	}
	i.Services = d.services()
	if d.err != nil {
		return device.Info{}
	}
	return i
}
