package metrics

import (
	"math"
	"time"
)

// EWMA is an exponentially weighted moving average: each Observe folds a
// new sample into the running level with weight Alpha. The first sample
// initialises the level directly, so an EWMA never starts from an
// artificial zero.
type EWMA struct {
	alpha float64
	level float64
	n     int
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1];
// values outside that range are clamped. Higher alpha follows the signal
// faster, lower alpha smooths harder.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample into the average and returns the new level.
func (e *EWMA) Observe(v float64) float64 {
	if e.n == 0 {
		e.level = v
	} else {
		e.level += e.alpha * (v - e.level)
	}
	e.n++
	return e.level
}

// Level returns the current smoothed value (0 before any sample).
func (e *EWMA) Level() float64 { return e.level }

// N returns how many samples have been observed.
func (e *EWMA) N() int { return e.n }

// Reset discards all state.
func (e *EWMA) Reset() { e.level, e.n = 0, 0 }

// Trend estimates both the level and the slope of a sampled signal: an
// EWMA smooths the level while a sliding window of timestamped samples
// yields a least-squares slope in units per second. The link monitor uses
// it to predict when a degrading link will cross the quality threshold;
// it is equally usable standalone for experiment summaries.
type Trend struct {
	ewma   EWMA
	window int
	ts     []time.Time
	vs     []float64
}

// DefaultTrendWindow is the sliding-window length used when NewTrend is
// given a non-positive window.
const DefaultTrendWindow = 8

// NewTrend returns a Trend smoothing with alpha over a sliding window of
// the given sample count.
func NewTrend(alpha float64, window int) *Trend {
	if window <= 0 {
		window = DefaultTrendWindow
	}
	t := &Trend{window: window}
	t.ewma = *NewEWMA(alpha)
	return t
}

// Observe folds one timestamped sample into the trend.
func (t *Trend) Observe(at time.Time, v float64) {
	t.ewma.Observe(v)
	t.ts = append(t.ts, at)
	t.vs = append(t.vs, v)
	if len(t.vs) > t.window {
		// Shift rather than re-slice so the backing arrays stay bounded.
		copy(t.ts, t.ts[1:])
		copy(t.vs, t.vs[1:])
		t.ts = t.ts[:t.window]
		t.vs = t.vs[:t.window]
	}
}

// Level returns the EWMA-smoothed signal level.
func (t *Trend) Level() float64 { return t.ewma.Level() }

// N returns how many samples have ever been observed.
func (t *Trend) N() int { return t.ewma.N() }

// Window returns how many samples currently sit in the slope window.
func (t *Trend) Window() int { return len(t.vs) }

// Slope returns the least-squares slope over the sliding window in units
// per second: negative for a falling signal. With fewer than two samples,
// or a window of zero time span, it returns 0.
func (t *Trend) Slope() float64 {
	n := len(t.vs)
	if n < 2 {
		return 0
	}
	t0 := t.ts[0]
	var sumX, sumY, sumXY, sumXX float64
	for i := 0; i < n; i++ {
		x := t.ts[i].Sub(t0).Seconds()
		y := t.vs[i]
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	fn := float64(n)
	den := fn*sumXX - sumX*sumX
	if den == 0 || math.IsNaN(den) {
		return 0
	}
	return (fn*sumXY - sumX*sumY) / den
}

// Fit returns the R² of the window's least-squares line: 1 when the
// samples sit exactly on a line (a genuine trend), near 0 when the slope
// explains nothing (noise or oscillation). A constant signal fits its
// zero-slope line perfectly (1). Fewer than two samples yield 0.
func (t *Trend) Fit() float64 {
	n := len(t.vs)
	if n < 2 {
		return 0
	}
	t0 := t.ts[0]
	var sumX, sumY float64
	for i := 0; i < n; i++ {
		sumX += t.ts[i].Sub(t0).Seconds()
		sumY += t.vs[i]
	}
	meanX, meanY := sumX/float64(n), sumY/float64(n)
	var sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		dx := t.ts[i].Sub(t0).Seconds() - meanX
		dy := t.vs[i] - meanY
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if syy == 0 {
		return 1
	}
	if sxx == 0 {
		return 0
	}
	r2 := (sxy * sxy) / (sxx * syy)
	if math.IsNaN(r2) {
		return 0
	}
	return r2
}

// TimeToCross predicts how long until the trend's level reaches the given
// floor at the current slope. It returns (0, true) when the level is
// already at or below the floor, (d, true) for a falling signal that will
// cross in d, and (0, false) for a flat or rising signal that never will.
func (t *Trend) TimeToCross(floor float64) (time.Duration, bool) {
	level := t.Level()
	if t.N() == 0 {
		return 0, false
	}
	if level <= floor {
		return 0, true
	}
	slope := t.Slope()
	if slope >= 0 {
		return 0, false
	}
	secs := (level - floor) / -slope
	if math.IsInf(secs, 0) || math.IsNaN(secs) || secs < 0 {
		return 0, false
	}
	// A near-zero slope on a high level predicts a crossing further out
	// than time.Duration can hold; converting would overflow negative and
	// masquerade as an imminent crossing. Far beyond any horizon is
	// "never" for every caller.
	if secs > maxDurationSeconds {
		return 0, false
	}
	return time.Duration(secs * float64(time.Second)), true
}

// maxDurationSeconds is the largest second count representable as a
// time.Duration without overflow.
const maxDurationSeconds = float64(math.MaxInt64) / float64(time.Second)

// Reset discards all state.
func (t *Trend) Reset() {
	t.ewma.Reset()
	t.ts = t.ts[:0]
	t.vs = t.vs[:0]
}
