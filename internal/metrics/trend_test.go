package metrics

import (
	"math"
	"testing"
	"time"
)

func TestEWMAFirstSampleInitialises(t *testing.T) {
	e := NewEWMA(0.2)
	if e.Level() != 0 || e.N() != 0 {
		t.Fatalf("fresh EWMA = %v/%d", e.Level(), e.N())
	}
	e.Observe(100)
	if e.Level() != 100 {
		t.Fatalf("level after first sample = %v, want 100", e.Level())
	}
	e.Observe(0)
	if e.Level() != 80 { // 100 + 0.2*(0-100)
		t.Fatalf("level = %v, want 80", e.Level())
	}
	if e.N() != 2 {
		t.Fatalf("n = %d", e.N())
	}
}

func TestEWMAClampAlpha(t *testing.T) {
	e := NewEWMA(5)
	e.Observe(10)
	e.Observe(20)
	if e.Level() != 20 { // alpha clamped to 1: follows exactly
		t.Fatalf("level = %v, want 20", e.Level())
	}
	e2 := NewEWMA(-1)
	e2.Observe(10)
	e2.Observe(20)
	if e2.Level() <= 10 || e2.Level() >= 20 {
		t.Fatalf("level = %v, want within (10, 20)", e2.Level())
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(42)
	e.Reset()
	if e.Level() != 0 || e.N() != 0 {
		t.Fatalf("after reset: %v/%d", e.Level(), e.N())
	}
}

func trendAt(alpha float64, window int, start time.Time, step time.Duration, values ...float64) *Trend {
	tr := NewTrend(alpha, window)
	for i, v := range values {
		tr.Observe(start.Add(time.Duration(i)*step), v)
	}
	return tr
}

func TestTrendSlopeLinearSignal(t *testing.T) {
	start := time.Unix(0, 0)
	// 255, 254, ... one unit down per second: slope must be -1/s exactly.
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = 255 - float64(i)
	}
	tr := trendAt(1, 8, start, time.Second, vals...)
	if s := tr.Slope(); math.Abs(s-(-1)) > 1e-9 {
		t.Fatalf("slope = %v, want -1", s)
	}
	if tr.Window() != 8 {
		t.Fatalf("window = %d, want 8 (sliding)", tr.Window())
	}
	if tr.N() != 10 {
		t.Fatalf("n = %d, want 10", tr.N())
	}
}

func TestTrendSlopeFlatAndRising(t *testing.T) {
	start := time.Unix(0, 0)
	flat := trendAt(1, 8, start, time.Second, 230, 230, 230, 230)
	if s := flat.Slope(); s != 0 {
		t.Fatalf("flat slope = %v", s)
	}
	rising := trendAt(1, 8, start, time.Second, 200, 210, 220, 230)
	if s := rising.Slope(); math.Abs(s-10) > 1e-9 {
		t.Fatalf("rising slope = %v, want 10", s)
	}
}

func TestTrendSlopeDegenerate(t *testing.T) {
	start := time.Unix(0, 0)
	if s := NewTrend(1, 4).Slope(); s != 0 {
		t.Fatalf("empty slope = %v", s)
	}
	one := trendAt(1, 4, start, time.Second, 240)
	if s := one.Slope(); s != 0 {
		t.Fatalf("one-sample slope = %v", s)
	}
	// Two samples at the identical instant: zero time span must not divide
	// by zero.
	same := NewTrend(1, 4)
	same.Observe(start, 240)
	same.Observe(start, 200)
	if s := same.Slope(); s != 0 {
		t.Fatalf("zero-span slope = %v", s)
	}
}

func TestTrendOscillationHasNearZeroSlope(t *testing.T) {
	start := time.Unix(0, 0)
	// Quality bouncing around 230 must not read as a degradation trend.
	tr := trendAt(0.3, 8, start, time.Second, 235, 225, 236, 224, 235, 225, 236, 224)
	if s := tr.Slope(); math.Abs(s) > 1.5 {
		t.Fatalf("oscillation slope = %v, want ~0", s)
	}
	// A residual slope may predict an eventual crossing, but only far
	// beyond any realistic prediction horizon.
	if d, ok := tr.TimeToCross(100); ok && d < time.Minute {
		t.Fatalf("oscillation predicted an imminent crossing: %v", d)
	}
}

func TestTimeToCross(t *testing.T) {
	start := time.Unix(0, 0)
	// Level ~246 falling 1/s: threshold 230 is ~16 s ahead. Alpha 1 keeps
	// the EWMA equal to the latest sample so the arithmetic is exact.
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = 255 - float64(i)
	}
	tr := trendAt(1, 8, start, time.Second, vals...)
	d, ok := tr.TimeToCross(230)
	if !ok {
		t.Fatal("no crossing predicted for a falling signal")
	}
	if math.Abs(d.Seconds()-16) > 0.5 {
		t.Fatalf("time to cross = %v, want ~16s", d)
	}

	// Already below: immediate.
	low := trendAt(1, 8, start, time.Second, 200, 199)
	if d, ok := low.TimeToCross(230); !ok || d != 0 {
		t.Fatalf("below-floor crossing = %v, %v", d, ok)
	}

	// Rising: never.
	up := trendAt(1, 8, start, time.Second, 231, 240, 250)
	if _, ok := up.TimeToCross(230); ok {
		t.Fatal("rising signal predicted a crossing")
	}

	// No samples: never.
	if _, ok := NewTrend(1, 4).TimeToCross(230); ok {
		t.Fatal("empty trend predicted a crossing")
	}

	// Near-zero negative slope: the crossing is so far out that the
	// duration conversion would overflow negative and read as imminent
	// (the bug that made predictive handover fire on a healthy GPRS
	// umbrella). It must report "never" instead.
	flat := NewTrend(1, 8)
	for i := 0; i < 8; i++ {
		v := 250.0
		if i == 3 {
			v = 250 - 1e-9
		}
		flat.Observe(start.Add(time.Duration(i)*time.Second), v)
	}
	if d, ok := flat.TimeToCross(230); ok && d < 0 {
		t.Fatalf("near-flat trend produced a negative (overflowed) crossing: %v", d)
	}
	if d, ok := flat.TimeToCross(230); ok && d < time.Hour {
		t.Fatalf("near-flat trend predicted an imminent crossing: %v ", d)
	}
}

func TestTrendFit(t *testing.T) {
	start := time.Unix(0, 0)
	linear := trendAt(1, 8, start, time.Second, 255, 254, 253, 252, 251)
	if f := linear.Fit(); math.Abs(f-1) > 1e-9 {
		t.Fatalf("linear fit = %v, want 1", f)
	}
	osc := trendAt(1, 8, start, time.Second, 235, 225, 236, 224, 235, 225, 236, 224)
	if f := osc.Fit(); f > 0.2 {
		t.Fatalf("oscillation fit = %v, want near 0", f)
	}
	flat := trendAt(1, 8, start, time.Second, 230, 230, 230)
	if f := flat.Fit(); f != 1 {
		t.Fatalf("constant fit = %v, want 1", f)
	}
	if f := NewTrend(1, 4).Fit(); f != 0 {
		t.Fatalf("empty fit = %v", f)
	}
	same := NewTrend(1, 4)
	same.Observe(start, 240)
	same.Observe(start, 200)
	if f := same.Fit(); f != 0 {
		t.Fatalf("zero-span fit = %v", f)
	}
}

func TestTrendReset(t *testing.T) {
	tr := trendAt(0.5, 4, time.Unix(0, 0), time.Second, 1, 2, 3)
	tr.Reset()
	if tr.N() != 0 || tr.Window() != 0 || tr.Level() != 0 || tr.Slope() != 0 {
		t.Fatalf("after reset: n=%d window=%d level=%v slope=%v", tr.N(), tr.Window(), tr.Level(), tr.Slope())
	}
}
