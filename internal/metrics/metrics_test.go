package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || math.Abs(s.Mean-2) > 1e-9 || s.Sum != 6 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 2 {
		t.Fatalf("p50 = %v", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if math.Abs(s.Mean-2) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Percentile(sorted, 0) != 10 || Percentile(sorted, 1) != 40 {
		t.Fatal("percentile edges wrong")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile nonzero")
	}
	// Interpolation: p50 of 4 points = halfway between 20 and 30.
	if got := Percentile(sorted, 0.5); math.Abs(got-25) > 1e-9 {
		t.Fatalf("p50 = %v, want 25", got)
	}
}

func TestPercentileSingleSample(t *testing.T) {
	// Every percentile of a one-element sample is that element — the
	// interpolation rank degenerates to index 0 at any p.
	single := []float64{7.5}
	for _, p := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := Percentile(single, p); got != 7.5 {
			t.Fatalf("Percentile([7.5], %v) = %v, want 7.5", p, got)
		}
	}
	s := Summarize(single)
	if s.N != 1 || s.Min != 7.5 || s.Max != 7.5 || s.P50 != 7.5 || s.P95 != 7.5 {
		t.Fatalf("single-sample summary = %+v", s)
	}
}

func TestPercentileOutOfRange(t *testing.T) {
	// p outside [0, 1] clamps to the extremes rather than indexing out of
	// bounds; the empty sample stays 0 at any p.
	sorted := []float64{1, 2, 3}
	if got := Percentile(sorted, -0.5); got != 1 {
		t.Fatalf("p<0 = %v, want min", got)
	}
	if got := Percentile(sorted, 2); got != 3 {
		t.Fatalf("p>1 = %v, want max", got)
	}
	for _, p := range []float64{-1, 0, 1, 2} {
		if got := Percentile(nil, p); got != 0 {
			t.Fatalf("empty sample at p=%v = %v, want 0", p, got)
		}
	}
}

func TestPercentileMonotonic(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		sort.Float64s(vals)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			v := Percentile(vals, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMinLEMeanLEMax(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != "50%" {
		t.Fatalf("ratio = %s", Ratio(1, 2))
	}
	if Ratio(3, 0) != "n/a" {
		t.Fatal("division by zero not guarded")
	}
}

func TestByteCounter(t *testing.T) {
	var c ByteCounter
	if c.Total() != 0 || c.Rounds() != 0 || c.AvgPerRound() != 0 {
		t.Fatalf("zero counter: total=%d rounds=%d avg=%g", c.Total(), c.Rounds(), c.AvgPerRound())
	}
	c.AddRound(100)
	c.AddRound(300)
	if c.Total() != 400 || c.Rounds() != 2 {
		t.Fatalf("total=%d rounds=%d", c.Total(), c.Rounds())
	}
	if got := c.AvgPerRound(); got != 200 {
		t.Fatalf("avg = %g, want 200", got)
	}
	s := c.Summary()
	if s.N != 2 || s.Min != 100 || s.Max != 300 || s.Sum != 400 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("b", 1)
	c.Add("a", 2)
	c.Add("b", 3)
	if c.Get("b") != 4 || c.Get("a") != 2 || c.Get("zzz") != 0 {
		t.Fatal("counts wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("names = %v (want first-seen order)", names)
	}
}

func TestSummaryString(t *testing.T) {
	if Summarize([]float64{1}).String() == "" {
		t.Fatal("empty string")
	}
}
