// Package metrics provides the small statistics toolkit the experiment
// harness uses to summarise measured latencies, counts, and rates.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a sample set.
type Summary struct {
	N    int
	Min  float64
	Max  float64
	Mean float64
	P50  float64
	P95  float64
	Sum  float64
}

// Summarize computes a Summary over values. An empty input yields a zero
// Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		N:    len(sorted),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
		P50:  Percentile(sorted, 0.50),
		P95:  Percentile(sorted, 0.95),
		Sum:  sum,
	}
}

// SummarizeDurations is Summarize over durations, in seconds.
func SummarizeDurations(ds []time.Duration) Summary {
	vals := make([]float64, len(ds))
	for i, d := range ds {
		vals[i] = d.Seconds()
	}
	return Summarize(vals)
}

// Percentile returns the p-th percentile (0..1) of an already sorted
// sample using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g mean=%.3g p50=%.3g p95=%.3g max=%.3g",
		s.N, s.Min, s.Mean, s.P50, s.P95, s.Max)
}

// Rate renders n events over elapsed wall time as an events-per-second
// figure, guarding division by zero. Scale harnesses report throughput
// (discovery rounds/sec, link sweeps/sec) with it.
func Rate(n int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}

// Ratio renders a/b as a percentage string, guarding division by zero.
func Ratio(a, b int) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(a)/float64(b))
}

// ByteCounter accumulates per-round byte totals — discovery traffic in the
// delta-sync experiments. Each AddRound records one round's bytes; the
// summary answers "how much wire traffic does a round cost".
type ByteCounter struct {
	rounds []float64
	total  int64
}

// AddRound records one round's byte count.
func (c *ByteCounter) AddRound(n int64) {
	c.rounds = append(c.rounds, float64(n))
	c.total += n
}

// Total returns the bytes accumulated over all rounds.
func (c *ByteCounter) Total() int64 { return c.total }

// Rounds returns how many rounds were recorded.
func (c *ByteCounter) Rounds() int { return len(c.rounds) }

// AvgPerRound returns the mean bytes per round (0 with no rounds).
func (c *ByteCounter) AvgPerRound() float64 {
	if len(c.rounds) == 0 {
		return 0
	}
	return float64(c.total) / float64(len(c.rounds))
}

// Summary returns the full distribution of per-round byte counts.
func (c *ByteCounter) Summary() Summary { return Summarize(c.rounds) }

// Counter accumulates named integer counts with stable ordering.
type Counter struct {
	names  []string
	counts map[string]int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int)}
}

// Add increments a named count.
func (c *Counter) Add(name string, delta int) {
	if _, ok := c.counts[name]; !ok {
		c.names = append(c.names, name)
	}
	c.counts[name] += delta
}

// Get returns a named count.
func (c *Counter) Get(name string) int { return c.counts[name] }

// Names returns the names in first-seen order.
func (c *Counter) Names() []string { return append([]string(nil), c.names...) }
