package record

import (
	"bytes"
	"io"
	"testing"
)

// FuzzRecordReader fuzzes the migration record layer's resynchronising
// reader — the component that parses byte streams torn mid-record by a
// handover. Any input may yield any number of records and then an error,
// but the reader must never panic, never loop forever, and every record
// it yields must be well-formed (CRC-verified payload within bounds) and
// re-encodable to something it parses back identically.
func FuzzRecordReader(f *testing.F) {
	seed := func(recs ...Record) []byte {
		var buf []byte
		for _, r := range recs {
			b, err := AppendRecord(buf, r)
			if err != nil {
				f.Fatalf("seed record: %v", err)
			}
			buf = b
		}
		return buf
	}
	f.Add(seed(Record{TaskID: 1, Seq: 0, Kind: KindHeader, Payload: HeaderPayload(3, 4001, 0)}))
	f.Add(seed(
		Record{TaskID: 1, Seq: 1, Kind: KindData, Payload: []byte("package one")},
		Record{TaskID: 1, Seq: 2, Kind: KindAck, Payload: U32Payload(1)},
		Record{TaskID: 1, Seq: 3, Kind: KindDone},
	))
	// A record torn in half with garbage spliced in — the resync path.
	whole := seed(Record{TaskID: 7, Seq: 9, Kind: KindResult, Payload: bytes.Repeat([]byte("r"), 100)})
	torn := append([]byte("PHx garbage \xff\xfe"), whole[:20]...)
	torn = append(torn, whole...)
	f.Add(torn)
	f.Add([]byte("PH"))
	f.Add([]byte{'P'})
	// Continuity window traffic: data frames, cumulative acks, a probe —
	// the same reader parses these on the virtual-connection data path.
	f.Add(seed(
		Record{TaskID: 0xfeed, Seq: 1, Kind: KindWindowData, Payload: []byte("seg-one")},
		Record{TaskID: 0xfeed, Seq: 2, Kind: KindWindowData, Payload: []byte("seg-two")},
		Record{TaskID: 0xfeed, Seq: 2, Kind: KindWindowAck, Payload: U32Payload(2)},
		Record{TaskID: 0xfeed, Seq: 0, Kind: KindWindowProbe, Payload: U32Payload(0)},
	))
	// A retransmitted tail after a resume: duplicate seqs are the reader's
	// problem to pass through, the window's problem to drop.
	f.Add(seed(
		Record{TaskID: 0xbeef, Seq: 3, Kind: KindWindowData, Payload: []byte("dup")},
		Record{TaskID: 0xbeef, Seq: 3, Kind: KindWindowData, Payload: []byte("dup")},
		Record{TaskID: 0xbeef, Seq: 9, Kind: KindWindowAck, Payload: U32Payload(9)},
	))

	f.Fuzz(func(t *testing.T, data []byte) {
		rr := NewRecordReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			rec, err := rr.Next()
			if err != nil {
				if err != io.EOF && err != io.ErrNoProgress {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(rec.Payload) > MaxRecordPayload {
				t.Fatalf("yielded oversized payload: %d bytes", len(rec.Payload))
			}
			buf, err := AppendRecord(nil, rec)
			if err != nil {
				t.Fatalf("re-encoding yielded record: %v", err)
			}
			rr2 := NewRecordReader(bytes.NewReader(buf))
			rec2, err := rr2.Next()
			if err != nil {
				t.Fatalf("re-parsing re-encoded record: %v", err)
			}
			if rec2.TaskID != rec.TaskID || rec2.Seq != rec.Seq || rec2.Kind != rec.Kind ||
				!bytes.Equal(rec2.Payload, rec.Payload) {
				t.Fatalf("round trip changed record: %+v vs %+v", rec, rec2)
			}
		}
	})
}
