// Package record is the wire-level data-buffering layer the thesis says
// PeerHood needs to guarantee data integrity across connection
// substitutions (§6): self-delimiting, checksummed, sequence-numbered
// records with receiver-side resynchronisation, plus the bounded
// send/receive windows (window.go) the session-continuity layer builds on.
// It is a leaf package — both internal/migration (task transfer) and
// internal/library (VirtualConnection continuity) frame their streams with
// it.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// RecordKind discriminates record-layer frames.
type RecordKind uint8

// Record kinds.
const (
	// KindHeader opens a task: payload = count(u32) | replyPort(u16) |
	// resumeFrom(u32).
	KindHeader RecordKind = iota + 1
	// KindData carries one task package.
	KindData
	// KindAck acknowledges the highest contiguous package received
	// (payload = u32). Senders resume after it on handover.
	KindAck
	// KindResultHeader opens a result: payload = count(u32).
	KindResultHeader
	// KindResult carries one result package.
	KindResult
	// KindDone closes a result transfer.
	KindDone
)

// String implements fmt.Stringer.
func (k RecordKind) String() string {
	switch k {
	case KindHeader:
		return "header"
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindResultHeader:
		return "result-header"
	case KindResult:
		return "result"
	case KindDone:
		return "done"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one framed unit on the wire.
type Record struct {
	TaskID  uint64
	Seq     uint32
	Kind    RecordKind
	Payload []byte
}

// Wire layout: magic(2) len(u32) taskID(u64) seq(u32) kind(u8) payload crc(u32).
// len covers taskID..payload. The magic plus CRC let a reader resynchronise
// on a stream torn by a transport substitution.
var recordMagic = [2]byte{'P', 'H'}

const (
	recordHeaderLen = 2 + 4
	recordBodyMin   = 8 + 4 + 1
	// MaxRecordPayload bounds one record's payload.
	MaxRecordPayload = 256 << 10
)

// ErrRecordTooLarge reports an oversized payload.
var ErrRecordTooLarge = errors.New("record: record payload too large")

// AppendRecord serialises r onto buf.
func AppendRecord(buf []byte, r Record) ([]byte, error) {
	if len(r.Payload) > MaxRecordPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(r.Payload))
	}
	body := make([]byte, 0, recordBodyMin+len(r.Payload))
	body = binary.BigEndian.AppendUint64(body, r.TaskID)
	body = binary.BigEndian.AppendUint32(body, r.Seq)
	body = append(body, byte(r.Kind))
	body = append(body, r.Payload...)

	buf = append(buf, recordMagic[0], recordMagic[1])
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	return buf, nil
}

// WriteRecord writes one record to w as a single Write call, so transports
// with atomic writes never tear it locally (relays still can).
func WriteRecord(w io.Writer, r Record) error {
	buf, err := AppendRecord(nil, r)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// RecordReader decodes records from a byte stream, skipping garbage: after
// a handover tears the stream mid-record, the reader scans forward to the
// next magic whose length and CRC check out.
type RecordReader struct {
	r   io.Reader
	buf []byte
	// Resyncs counts how many times garbage was skipped (experiments
	// report it as the visible cost of torn streams).
	Resyncs int
}

// NewRecordReader returns a RecordReader over r.
func NewRecordReader(r io.Reader) *RecordReader {
	return &RecordReader{r: r}
}

// Next returns the next valid record, skipping any corrupt bytes. It
// returns the reader's error (io.EOF included) once the stream ends.
func (rr *RecordReader) Next() (Record, error) {
	for {
		rec, ok, err := rr.tryParse()
		if ok {
			return rec, nil
		}
		if err != nil {
			return Record{}, err
		}
		// Need more bytes.
		chunk := make([]byte, 4096)
		n, err := rr.r.Read(chunk)
		if n > 0 {
			rr.buf = append(rr.buf, chunk[:n]...)
			continue
		}
		if err == nil {
			err = io.ErrNoProgress
		}
		return Record{}, err
	}
}

// tryParse attempts to decode one record from the buffer, discarding
// garbage prefixes. ok=false with err=nil means "need more input".
func (rr *RecordReader) tryParse() (Record, bool, error) {
	for {
		// Discard until a magic candidate leads the buffer.
		idx := indexMagic(rr.buf)
		if idx < 0 {
			// Keep at most one byte (could be the first magic byte).
			if len(rr.buf) > 1 {
				rr.Resyncs++
				rr.buf = rr.buf[len(rr.buf)-1:]
			}
			return Record{}, false, nil
		}
		if idx > 0 {
			rr.Resyncs++
			rr.buf = rr.buf[idx:]
		}
		if len(rr.buf) < recordHeaderLen {
			return Record{}, false, nil
		}
		bodyLen := int(binary.BigEndian.Uint32(rr.buf[2:6]))
		if bodyLen < recordBodyMin || bodyLen > recordBodyMin+MaxRecordPayload {
			// Implausible length: not a real record boundary.
			rr.Resyncs++
			rr.buf = rr.buf[1:]
			continue
		}
		total := recordHeaderLen + bodyLen + 4
		if len(rr.buf) < total {
			return Record{}, false, nil
		}
		body := rr.buf[recordHeaderLen : recordHeaderLen+bodyLen]
		wantCRC := binary.BigEndian.Uint32(rr.buf[recordHeaderLen+bodyLen : total])
		if crc32.ChecksumIEEE(body) != wantCRC {
			rr.Resyncs++
			rr.buf = rr.buf[1:]
			continue
		}
		rec := Record{
			TaskID: binary.BigEndian.Uint64(body[0:8]),
			Seq:    binary.BigEndian.Uint32(body[8:12]),
			Kind:   RecordKind(body[12]),
		}
		if len(body) > 13 {
			rec.Payload = append([]byte(nil), body[13:]...)
		}
		rr.buf = append([]byte(nil), rr.buf[total:]...)
		return rec, true, nil
	}
}

func indexMagic(b []byte) int {
	for i := 0; i+1 < len(b); i++ {
		if b[i] == recordMagic[0] && b[i+1] == recordMagic[1] {
			return i
		}
	}
	// A trailing 'P' may start a magic.
	if len(b) > 0 && b[len(b)-1] == recordMagic[0] {
		return len(b) - 1
	}
	return -1
}

// Header payload helpers.

// HeaderPayload encodes a task header.
func HeaderPayload(count uint32, replyPort uint16, resumeFrom uint32) []byte {
	out := make([]byte, 0, 10)
	out = binary.BigEndian.AppendUint32(out, count)
	out = binary.BigEndian.AppendUint16(out, replyPort)
	out = binary.BigEndian.AppendUint32(out, resumeFrom)
	return out
}

// ParseHeaderPayload decodes a task header.
func ParseHeaderPayload(p []byte) (count uint32, replyPort uint16, resumeFrom uint32, err error) {
	if len(p) != 10 {
		return 0, 0, 0, fmt.Errorf("record: header payload %d bytes, want 10", len(p))
	}
	return binary.BigEndian.Uint32(p[0:4]),
		binary.BigEndian.Uint16(p[4:6]),
		binary.BigEndian.Uint32(p[6:10]), nil
}

// U32Payload encodes a bare uint32 payload (acks, result headers).
func U32Payload(v uint32) []byte {
	return binary.BigEndian.AppendUint32(nil, v)
}

// ParseU32Payload decodes a bare uint32 payload.
func ParseU32Payload(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("record: u32 payload %d bytes, want 4", len(p))
	}
	return binary.BigEndian.Uint32(p), nil
}
