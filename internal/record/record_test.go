package record

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{TaskID: 1, Seq: 0, Kind: KindHeader, Payload: HeaderPayload(10, 12, 0)},
		{TaskID: 1, Seq: 1, Kind: KindData, Payload: []byte("package-one")},
		{TaskID: 1, Seq: 0, Kind: KindAck, Payload: U32Payload(1)},
		{TaskID: 2, Seq: 0, Kind: KindResultHeader, Payload: U32Payload(3)},
		{TaskID: 2, Seq: 3, Kind: KindResult, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{TaskID: 2, Seq: 0, Kind: KindDone},
	}
	var buf bytes.Buffer
	for _, r := range recs {
		if err := WriteRecord(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	rr := NewRecordReader(&buf)
	for i, want := range recs {
		got, err := rr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.TaskID != want.TaskID || got.Seq != want.Seq || got.Kind != want.Kind || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("trailing read err = %v, want EOF", err)
	}
	if rr.Resyncs != 0 {
		t.Fatalf("resyncs on clean stream = %d", rr.Resyncs)
	}
}

func TestRecordReaderResyncsAcrossGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, Record{TaskID: 1, Seq: 1, Kind: KindData, Payload: []byte("first")}); err != nil {
		t.Fatal(err)
	}
	// A torn half-record: a handover cut the stream mid-write.
	half, err := AppendRecord(nil, Record{TaskID: 1, Seq: 2, Kind: KindData, Payload: []byte("torn-torn-torn")})
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(half[:len(half)/2])
	// The sender resumed on a new transport.
	if err := WriteRecord(&buf, Record{TaskID: 1, Seq: 2, Kind: KindData, Payload: []byte("resent")}); err != nil {
		t.Fatal(err)
	}

	rr := NewRecordReader(&buf)
	r1, err := rr.Next()
	if err != nil || string(r1.Payload) != "first" {
		t.Fatalf("first = %+v, %v", r1, err)
	}
	r2, err := rr.Next()
	if err != nil || string(r2.Payload) != "resent" {
		t.Fatalf("resynced = %+v, %v", r2, err)
	}
	if rr.Resyncs == 0 {
		t.Fatal("no resync counted despite torn bytes")
	}
}

func TestRecordReaderSkipsLeadingNoise(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xde, 0xad, 0xbe, 0xef, 'P', 'x', 0x00})
	if err := WriteRecord(&buf, Record{TaskID: 9, Seq: 1, Kind: KindData, Payload: []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	rr := NewRecordReader(&buf)
	r, err := rr.Next()
	if err != nil || string(r.Payload) != "ok" {
		t.Fatalf("r = %+v, %v", r, err)
	}
}

func TestRecordReaderRejectsCorruptCRC(t *testing.T) {
	raw, err := AppendRecord(nil, Record{TaskID: 5, Seq: 7, Kind: KindData, Payload: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // corrupt CRC
	good, err := AppendRecord(nil, Record{TaskID: 5, Seq: 8, Kind: KindData, Payload: []byte("good")})
	if err != nil {
		t.Fatal(err)
	}
	rr := NewRecordReader(bytes.NewReader(append(raw, good...)))
	r, err := rr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != 8 {
		t.Fatalf("got seq %d, want the CRC-valid record 8", r.Seq)
	}
}

func TestRecordReaderTruncatedAtEOF(t *testing.T) {
	// A record cut short by transport death with nothing after it: the
	// reader must return EOF (stream over), not hang or fabricate a record.
	whole, err := AppendRecord(nil, Record{TaskID: 3, Seq: 4, Kind: KindWindowData, Payload: []byte("in-flight tail")})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(whole); cut++ {
		rr := NewRecordReader(bytes.NewReader(whole[:cut]))
		if r, err := rr.Next(); err != io.EOF {
			t.Fatalf("cut=%d: got record %+v err %v, want EOF", cut, r, err)
		}
	}
	// Preceded by a good record, the truncation must not eat it.
	var buf bytes.Buffer
	if err := WriteRecord(&buf, Record{TaskID: 3, Seq: 3, Kind: KindWindowData, Payload: []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	buf.Write(whole[:len(whole)-3])
	rr := NewRecordReader(&buf)
	r, err := rr.Next()
	if err != nil || string(r.Payload) != "ok" {
		t.Fatalf("good record before truncation: %+v, %v", r, err)
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("after truncated tail: %v, want EOF", err)
	}
}

func TestRecordReaderCorruptWindowAckThenValid(t *testing.T) {
	// A window ack whose CRC was damaged in flight is skipped; the valid
	// ack behind it still decodes — the sender just sees a later
	// cumulative position (acks are cumulative, so nothing is lost).
	bad, err := AppendRecord(nil, Record{TaskID: 11, Seq: 4, Kind: KindWindowAck, Payload: U32Payload(4)})
	if err != nil {
		t.Fatal(err)
	}
	bad[len(bad)-2] ^= 0x55
	good, err := AppendRecord(nil, Record{TaskID: 11, Seq: 8, Kind: KindWindowAck, Payload: U32Payload(8)})
	if err != nil {
		t.Fatal(err)
	}
	rr := NewRecordReader(bytes.NewReader(append(bad, good...)))
	r, err := rr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != KindWindowAck || r.Seq != 8 {
		t.Fatalf("got %+v, want the valid ack 8", r)
	}
	if v, err := ParseU32Payload(r.Payload); err != nil || v != 8 {
		t.Fatalf("ack payload = %d, %v", v, err)
	}
	if rr.Resyncs == 0 {
		t.Fatal("corrupt ack consumed without a resync")
	}
}

func TestRecordTooLarge(t *testing.T) {
	_, err := AppendRecord(nil, Record{Payload: make([]byte, MaxRecordPayload+1)})
	if err == nil {
		t.Fatal("oversize payload accepted")
	}
}

func TestHeaderPayloadRoundTrip(t *testing.T) {
	if err := quick.Check(func(count uint32, port uint16, resume uint32) bool {
		c, p, r, err := ParseHeaderPayload(HeaderPayload(count, port, resume))
		return err == nil && c == count && p == port && r == resume
	}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ParseHeaderPayload([]byte{1, 2}); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestU32PayloadRoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint32) bool {
		got, err := ParseU32Payload(U32Payload(v))
		return err == nil && got == v
	}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseU32Payload([]byte{1}); err == nil {
		t.Fatal("short u32 accepted")
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(taskID uint64, seq uint32, kind uint8, payload []byte) bool {
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		want := Record{TaskID: taskID, Seq: seq, Kind: RecordKind(kind%6 + 1), Payload: payload}
		var buf bytes.Buffer
		if err := WriteRecord(&buf, want); err != nil {
			return false
		}
		rr := NewRecordReader(&buf)
		got, err := rr.Next()
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			return got.TaskID == want.TaskID && got.Seq == want.Seq && got.Kind == want.Kind && len(got.Payload) == 0
		}
		return got.TaskID == want.TaskID && got.Seq == want.Seq && got.Kind == want.Kind && bytes.Equal(got.Payload, want.Payload)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRecordStreamSurvivesArbitraryChunking(t *testing.T) {
	// Records must decode regardless of how the transport fragments them.
	var whole bytes.Buffer
	const n = 20
	for i := 1; i <= n; i++ {
		if err := WriteRecord(&whole, Record{TaskID: 3, Seq: uint32(i), Kind: KindData, Payload: bytes.Repeat([]byte{byte(i)}, i*7)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, chunk := range []int{1, 2, 3, 5, 17, 1000} {
		rr := NewRecordReader(&chunkedReader{data: whole.Bytes(), chunk: chunk})
		for i := 1; i <= n; i++ {
			r, err := rr.Next()
			if err != nil {
				t.Fatalf("chunk=%d record %d: %v", chunk, i, err)
			}
			if int(r.Seq) != i || len(r.Payload) != i*7 {
				t.Fatalf("chunk=%d record %d = %+v", chunk, i, r)
			}
		}
	}
}

type chunkedReader struct {
	data  []byte
	off   int
	chunk int
}

func (cr *chunkedReader) Read(p []byte) (int, error) {
	if cr.off >= len(cr.data) {
		return 0, io.EOF
	}
	n := cr.chunk
	if n > len(p) {
		n = len(p)
	}
	if cr.off+n > len(cr.data) {
		n = len(cr.data) - cr.off
	}
	copy(p, cr.data[cr.off:cr.off+n])
	cr.off += n
	return n, nil
}
