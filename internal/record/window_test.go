package record

import (
	"bytes"
	"io"
	"testing"
)

func TestSendWindowAppendAckTrim(t *testing.T) {
	w := NewSendWindow(100)
	if !w.Empty() || w.NextSeq() != 1 || w.Acked() != 0 {
		t.Fatalf("fresh window: empty=%v next=%d acked=%d", w.Empty(), w.NextSeq(), w.Acked())
	}
	for i := 0; i < 4; i++ {
		f := w.Append([]byte{byte(i), byte(i)})
		if f.Seq != uint32(i+1) {
			t.Fatalf("frame %d got seq %d", i, f.Seq)
		}
	}
	if w.Buffered() != 8 || w.HighWater() != 8 {
		t.Fatalf("buffered=%d highwater=%d", w.Buffered(), w.HighWater())
	}
	if freed := w.Ack(2); freed != 4 {
		t.Fatalf("ack(2) freed %d, want 4", freed)
	}
	if w.Acked() != 2 || w.Buffered() != 4 {
		t.Fatalf("after ack(2): acked=%d buffered=%d", w.Acked(), w.Buffered())
	}
	// Stale ack is a no-op.
	if freed := w.Ack(1); freed != 0 {
		t.Fatalf("stale ack freed %d", freed)
	}
	var seqs []uint32
	w.Unacked(func(f SendFrame) { seqs = append(seqs, f.Seq) })
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("unacked seqs = %v", seqs)
	}
	if freed := w.Ack(4); freed != 4 || !w.Empty() {
		t.Fatalf("final ack: freed=%d empty=%v", freed, w.Empty())
	}
	if w.HighWater() != 8 {
		t.Fatalf("highwater moved to %d", w.HighWater())
	}
}

func TestSendWindowSeqGapAckClamps(t *testing.T) {
	// An ack beyond anything sent (a seq-gap ack — corrupted or from a
	// confused peer) must clamp to the highest sent frame, not run ahead
	// and desynchronise the window.
	w := NewSendWindow(0)
	w.Append([]byte("a"))
	w.Append([]byte("bb"))
	if freed := w.Ack(99); freed != 3 {
		t.Fatalf("gap ack freed %d, want 3", freed)
	}
	if w.Acked() != 2 || !w.Empty() {
		t.Fatalf("after gap ack: acked=%d empty=%v", w.Acked(), w.Empty())
	}
	// A later real ack at the clamped position stays a no-op.
	if freed := w.Ack(2); freed != 0 {
		t.Fatalf("post-clamp ack freed %d", freed)
	}
	if w.NextSeq() != 3 {
		t.Fatalf("next seq %d, want 3", w.NextSeq())
	}
}

func TestSendWindowFitsAdmitsOversizeWhenEmpty(t *testing.T) {
	w := NewSendWindow(4)
	if !w.Fits(10) {
		t.Fatal("empty window refused an oversize frame")
	}
	w.Append(make([]byte, 10))
	if w.Fits(1) {
		t.Fatal("over-full window admitted another frame")
	}
	w.Ack(1)
	if !w.Fits(4) {
		t.Fatal("emptied window refused a fitting frame")
	}
}

func TestSendWindowRecyclesPayloads(t *testing.T) {
	w := NewSendWindow(0)
	f1 := w.Append(bytes.Repeat([]byte("x"), 64))
	w.Ack(f1.Seq)
	f2 := w.Append([]byte("y"))
	if cap(f2.Payload) < 64 {
		t.Fatalf("recycled capacity %d, want >= 64", cap(f2.Payload))
	}
	if string(f2.Payload) != "y" {
		t.Fatalf("recycled payload content %q", f2.Payload)
	}
}

func TestRecvWindowVerdicts(t *testing.T) {
	w := NewRecvWindow()
	if w.AckSeq() != 0 {
		t.Fatalf("fresh ack seq %d", w.AckSeq())
	}
	if v := w.Accept(1, 5); v != RecvDeliver {
		t.Fatalf("frame 1 verdict %v", v)
	}
	if v := w.Accept(3, 5); v != RecvGap {
		t.Fatalf("gap frame verdict %v", v)
	}
	if v := w.Accept(1, 5); v != RecvDuplicate {
		t.Fatalf("dup frame verdict %v", v)
	}
	if v := w.Accept(2, 5); v != RecvDeliver {
		t.Fatalf("frame 2 verdict %v", v)
	}
	if w.AckSeq() != 2 || w.Delivered != 10 || w.DupFrames != 1 || w.GapFrames != 1 {
		t.Fatalf("state = %+v ackseq=%d", w, w.AckSeq())
	}
	if w.DupBytes != 5 || w.GapBytes != 5 {
		t.Fatalf("dup/gap bytes = %d/%d", w.DupBytes, w.GapBytes)
	}
}

func TestWindowPairReplaysLossless(t *testing.T) {
	// Sender and receiver windows glued back-to-back with a lossy "wire":
	// every frame is sent twice (duplicating) and the first copy of every
	// third frame is dropped, then the unacked tail is replayed — the
	// receiver must still deliver the exact byte stream once.
	send := NewSendWindow(0)
	recv := NewRecvWindow()
	var delivered bytes.Buffer
	deliver := func(f SendFrame) {
		if recv.Accept(f.Seq, len(f.Payload)) == RecvDeliver {
			delivered.Write(f.Payload)
		}
	}
	var want bytes.Buffer
	for i := 0; i < 30; i++ {
		p := bytes.Repeat([]byte{byte('a' + i%26)}, i%7+1)
		want.Write(p)
		f := send.Append(p)
		if i%5 != 3 {
			deliver(f)
			deliver(f) // the duplicate copy
		}
		send.Ack(recv.AckSeq())
	}
	// Handover: replay the unacked tail until the receiver has everything.
	for !send.Empty() {
		send.Unacked(deliver)
		send.Ack(recv.AckSeq())
	}
	if !bytes.Equal(delivered.Bytes(), want.Bytes()) {
		t.Fatalf("delivered %d bytes, want %d; streams differ", delivered.Len(), want.Len())
	}
	if recv.Delivered != int64(want.Len()) {
		t.Fatalf("recv delivered %d, want %d", recv.Delivered, want.Len())
	}
	if recv.DupFrames == 0 || recv.GapFrames == 0 {
		t.Fatalf("lossy wire produced no dups (%d) or gaps (%d)?", recv.DupFrames, recv.GapFrames)
	}
}

func TestWindowRecordsRoundTripThroughRecordReader(t *testing.T) {
	// The continuity layer frames window traffic as migration records; the
	// kinds must survive the reader like any task record.
	var buf bytes.Buffer
	recs := []Record{
		{TaskID: 42, Seq: 1, Kind: KindWindowData, Payload: []byte("segment")},
		{TaskID: 42, Seq: 1, Kind: KindWindowAck, Payload: U32Payload(1)},
		{TaskID: 42, Seq: 0, Kind: KindWindowProbe, Payload: U32Payload(0)},
	}
	for _, r := range recs {
		if err := WriteRecord(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	rr := NewRecordReader(&buf)
	for i, want := range recs {
		got, err := rr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("trailing err = %v", err)
	}
}

// BenchmarkSendWindowCycle is the continuity hot path: append a frame,
// ack it, repeat — steady state must not allocate (the free list recycles
// payload buffers), which CI pins with -allocbudget.
func BenchmarkSendWindowCycle(b *testing.B) {
	w := NewSendWindow(4096)
	p := bytes.Repeat([]byte("m"), 64)
	// Warm the free list so -benchtime=1x reads steady state.
	for i := 0; i < 8; i++ {
		f := w.Append(p)
		w.Ack(f.Seq)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := w.Append(p)
		if w.Ack(f.Seq) != len(p) {
			b.Fatal("ack freed nothing")
		}
	}
}
