package record

// The continuity window: the record kinds and window state the library's
// VirtualConnection continuity layer is built on. The thesis' §6 "Data
// Buffering" requirement is implemented once, here, against the same
// self-delimiting record framing the task-migration workload uses — a
// virtual connection's byte stream is chopped into sequence-numbered
// KindWindowData records, the receiver deduplicates and acknowledges
// cumulatively, and the sender buffers the un-acked tail so a transport
// substitution can replay exactly what the dying bearer lost.
//
// The scheme is go-back-N, not selective repeat: the receiver delivers
// only in-order frames and drops anything else (counting it), so receiver
// memory is bounded by undelivered in-order data and the sender's window
// bound is the only buffer that grows with the ack round trip.

// Window record kinds, continuing the task-record space.
const (
	// KindWindowData carries one continuity stream segment; Seq is the
	// frame's stream sequence number (first frame = 1).
	KindWindowData RecordKind = 7
	// KindWindowAck acknowledges the highest in-order frame received
	// (payload = u32, cumulative). Senders trim their window to it.
	KindWindowAck RecordKind = 8
	// KindWindowProbe solicits an immediate KindWindowAck — the drain
	// handshake a sender uses to prove its window empty (Flush).
	KindWindowProbe RecordKind = 9
)

// DefaultWindowBytes bounds a send window's buffered payload when the
// caller does not choose a bound.
const DefaultWindowBytes = 64 << 10

// sendFreeListMax caps recycled payload buffers kept for reuse.
const sendFreeListMax = 32

// SendFrame is one buffered, sequence-numbered stream segment.
type SendFrame struct {
	Seq     uint32
	Payload []byte
}

// SendWindow is the sender half of the continuity window: a bounded FIFO
// of un-acked frames. It is not safe for concurrent use; callers hold
// their own lock.
type SendWindow struct {
	max       int
	frames    []SendFrame
	bytes     int
	nextSeq   uint32
	acked     uint32
	highWater int
	free      [][]byte
}

// NewSendWindow returns a window bounding buffered payload at maxBytes
// (DefaultWindowBytes when <= 0).
func NewSendWindow(maxBytes int) *SendWindow {
	if maxBytes <= 0 {
		maxBytes = DefaultWindowBytes
	}
	return &SendWindow{max: maxBytes, nextSeq: 1}
}

// Max returns the window's byte bound.
func (w *SendWindow) Max() int { return w.max }

// Buffered returns the payload bytes currently held.
func (w *SendWindow) Buffered() int { return w.bytes }

// HighWater returns the largest Buffered value ever observed — the
// window's actual memory cost.
func (w *SendWindow) HighWater() int { return w.highWater }

// Empty reports whether every sent frame has been acknowledged.
func (w *SendWindow) Empty() bool { return len(w.frames) == 0 }

// NextSeq returns the sequence number the next Append will take.
func (w *SendWindow) NextSeq() uint32 { return w.nextSeq }

// Acked returns the cumulative acknowledgement high mark.
func (w *SendWindow) Acked() uint32 { return w.acked }

// Fits reports whether n more payload bytes respect the bound. An empty
// window always admits one frame, so a frame larger than the bound still
// makes progress instead of deadlocking the writer.
func (w *SendWindow) Fits(n int) bool {
	return len(w.frames) == 0 || w.bytes+n <= w.max
}

// Append buffers a copy of p as the next frame and returns it. The
// returned frame's payload belongs to the window: it may be recycled as
// soon as the frame is acknowledged.
func (w *SendWindow) Append(p []byte) SendFrame {
	var buf []byte
	if n := len(w.free); n > 0 {
		buf = w.free[n-1][:0]
		w.free = w.free[:n-1]
	}
	buf = append(buf, p...)
	f := SendFrame{Seq: w.nextSeq, Payload: buf}
	w.nextSeq++
	w.frames = append(w.frames, f)
	w.bytes += len(p)
	if w.bytes > w.highWater {
		w.highWater = w.bytes
	}
	return f
}

// Ack trims every frame up to and including seq (cumulative). Stale acks
// are no-ops; acks beyond what was sent are clamped. It returns the
// payload bytes freed.
func (w *SendWindow) Ack(seq uint32) int {
	if seq >= w.nextSeq {
		seq = w.nextSeq - 1
	}
	if seq <= w.acked {
		return 0
	}
	freed, i := 0, 0
	for ; i < len(w.frames) && w.frames[i].Seq <= seq; i++ {
		freed += len(w.frames[i].Payload)
		if len(w.free) < sendFreeListMax {
			w.free = append(w.free, w.frames[i].Payload)
		}
		w.frames[i].Payload = nil
	}
	if i > 0 {
		w.frames = append(w.frames[:0], w.frames[i:]...)
	}
	w.bytes -= freed
	w.acked = seq
	return freed
}

// Unacked calls f for each buffered frame in sequence order — the
// retransmission sweep after a transport substitution.
func (w *SendWindow) Unacked(f func(SendFrame)) {
	for _, fr := range w.frames {
		f(fr)
	}
}

// RecvVerdict classifies one received frame.
type RecvVerdict int

// Verdicts.
const (
	// RecvDeliver: the frame is the next in order — deliver it.
	RecvDeliver RecvVerdict = iota + 1
	// RecvDuplicate: already delivered — drop it, re-ack so the sender
	// learns its retransmit landed.
	RecvDuplicate
	// RecvGap: ahead of the next expected frame — drop it (go-back-N) and
	// re-ack; the duplicate cumulative ack asks the sender to retransmit
	// from the gap.
	RecvGap
)

// RecvWindow is the receiver half: in-order delivery with sequence-number
// deduplication. Not safe for concurrent use.
type RecvWindow struct {
	next uint32
	// Delivered counts bytes accepted in order; DupFrames/DupBytes and
	// GapFrames/GapBytes count what deduplication dropped.
	Delivered int64
	DupFrames int64
	DupBytes  int64
	GapFrames int64
	GapBytes  int64
}

// NewRecvWindow returns a receive window expecting frame 1 first.
func NewRecvWindow() *RecvWindow { return &RecvWindow{next: 1} }

// Accept classifies frame seq carrying n payload bytes and advances the
// in-order position on delivery.
func (w *RecvWindow) Accept(seq uint32, n int) RecvVerdict {
	switch {
	case seq == w.next:
		w.next++
		w.Delivered += int64(n)
		return RecvDeliver
	case seq < w.next:
		w.DupFrames++
		w.DupBytes += int64(n)
		return RecvDuplicate
	default:
		w.GapFrames++
		w.GapBytes += int64(n)
		return RecvGap
	}
}

// AckSeq returns the cumulative acknowledgement to send: the highest
// in-order sequence delivered (0 before the first frame).
func (w *RecvWindow) AckSeq() uint32 { return w.next - 1 }
